// Closed-loop transport under incast: DCTCP vs open-loop injection.
//
// The transport PR's acceptance gate: at the same offered load (identical
// incast waves — same fan-in, bytes, period and arrival seed), the
// window-based DCTCP transport reacting to ECN marks must shed VOQ drops
// relative to open-loop injection, which slams every flow's cells into the
// fabric the slot they arrive. The fabric is a 64-node SORN with bounded
// VOQs (--max-queue) and an ECN threshold well below the cap, driven by
// --fanin:1 incast waves (>= 32:1 by default).
//
// Variants:
//
//   open-loop  — cells injected on arrival, drops absorbed by stall
//                retransmission
//   dctcp      — windowed injection, ECN-marked acks shrink cwnd
//
// The dctcp variant also runs at --threads 1 and 4 and byte-compares the
// metrics artifacts: the ECN mark decision reconstructs the sequential
// queue order inside the parallel merge, and the ack echo runs on the
// coordinating thread, so the artifacts must be identical. With --json the
// summary is written for ci/check_bench.py against BENCH_incast.json.
#include <cstdio>
#include <string>

#include "bench_args.h"
#include "obs/export.h"
#include "scenario/scenario_runner.h"
#include "util/table.h"

namespace {

using namespace sorn;

struct VariantResult {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t ecn_marked = 0;
  std::uint64_t retransmitted = 0;
  std::uint64_t flows = 0;
  double p99_fct_us = 0.0;
  std::string metrics_json;
  bool ok = false;
  std::string error;
};

VariantResult run_variant(const ScenarioConfig& cfg) {
  VariantResult r;
  auto runner = ScenarioRunner::create(cfg, &r.error);
  if (runner == nullptr) return r;
  if (!runner->run(&r.error)) return r;
  const SimMetrics& m = runner->metrics();
  r.delivered = m.delivered_cells();
  r.dropped = m.dropped_cells();
  r.ecn_marked = m.ecn_marked_cells();
  r.retransmitted = m.retransmitted_cells();
  r.flows = m.completed_flows();
  r.p99_fct_us = m.fct_ps().percentile(99.0) / 1e6;
  r.metrics_json = runner->metrics_json();
  r.ok = true;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sorn;
  bench::ArgParser args(argc, argv);
  const std::string json_path = args.get_string("--json", "");
  const auto nodes = static_cast<NodeId>(args.get_long("--nodes", 64, 4));
  const auto cliques = static_cast<CliqueId>(args.get_long("--cliques", 8, 1));
  const int fanin = static_cast<int>(args.get_long("--fanin", 32, 2));
  const auto bytes = static_cast<std::uint64_t>(
      args.get_long("--bytes", 16384, 256));
  const Slot period = args.get_long("--period", 400, 16);
  const Slot slots = args.get_long("--slots", 4000, 500);
  const auto max_queue =
      static_cast<std::uint32_t>(args.get_long("--max-queue", 32, 4));
  const auto ecn =
      static_cast<std::uint32_t>(args.get_long("--ecn-threshold", 8, 1));
  args.finish();
  if (fanin >= static_cast<int>(nodes)) {
    std::fprintf(stderr, "--fanin must be below --nodes\n");
    return 2;
  }

  ScenarioConfig base;
  base.design = "sorn";
  base.nodes = nodes;
  base.cliques = cliques;
  base.propagation_ns = 0;
  base.workload = WorkloadKind::kIncast;
  base.incast_fanin = fanin;
  base.incast_bytes = bytes;
  base.incast_period_slots = period;
  base.slots = slots;
  base.drain_slots = 50000;
  base.max_queue_cells = max_queue;
  base.threads = 1;
  // Drops must be survivable in both variants, or the open-loop run never
  // completes its flows.
  base.retransmit_timeout = 256;
  base.retransmit_max_attempts = 16;

  ScenarioConfig open_cfg = base;  // transport defaults to "open-loop"

  ScenarioConfig dctcp_cfg = base;
  dctcp_cfg.transport = "dctcp";
  dctcp_cfg.ecn_threshold_cells = ecn;
  dctcp_cfg.init_cwnd_cells = 8;
  dctcp_cfg.max_cwnd_cells = 256;
  dctcp_cfg.dctcp_gain = 0.0625;

  const VariantResult open_loop = run_variant(open_cfg);
  const VariantResult dctcp1 = run_variant(dctcp_cfg);
  ScenarioConfig dctcp4_cfg = dctcp_cfg;
  dctcp4_cfg.threads = 4;
  const VariantResult dctcp4 = run_variant(dctcp4_cfg);

  for (const auto* v : {&open_loop, &dctcp1, &dctcp4}) {
    if (!v->ok) {
      std::fprintf(stderr, "variant failed: %s\n", v->error.c_str());
      return 1;
    }
  }

  const bool equivalent = dctcp1.metrics_json == dctcp4.metrics_json;
  const bool sheds_drops = dctcp1.dropped < open_loop.dropped;
  const double drop_ratio =
      open_loop.dropped > 0
          ? static_cast<double>(dctcp1.dropped) /
                static_cast<double>(open_loop.dropped)
          : 1.0;

  std::printf(
      "Incast transport comparison: %d nodes, %d cliques, %d:1 fan-in, "
      "%llu B/sender every %lld slots, VOQ cap %u cells, ECN at %u\n\n",
      nodes, cliques, fanin, static_cast<unsigned long long>(bytes),
      static_cast<long long>(period), max_queue, ecn);
  TablePrinter table({"variant", "flows", "delivered", "dropped", "retx",
                      "ECN-marked", "p99 FCT (us)"});
  for (const auto& [name, v] :
       {std::pair<const char*, const VariantResult*>{"open-loop", &open_loop},
        {"dctcp", &dctcp1}}) {
    table.add_row({name, format("%llu", (unsigned long long)v->flows),
                   format("%llu", (unsigned long long)v->delivered),
                   format("%llu", (unsigned long long)v->dropped),
                   format("%llu", (unsigned long long)v->retransmitted),
                   format("%llu", (unsigned long long)v->ecn_marked),
                   format("%.1f", v->p99_fct_us)});
  }
  table.print();
  std::printf(
      "\ndctcp drops at %.3fx open-loop; 1-vs-4-thread artifacts %s\n",
      drop_ratio, equivalent ? "byte-identical" : "DIFFER");

  if (!json_path.empty()) {
    const std::string doc = format(
        "{\"bench\": \"bench_incast\", \"nodes\": %d, \"cliques\": %d, "
        "\"fanin\": %d, \"bytes\": %llu, \"period\": %lld, "
        "\"slots\": %lld, \"max_queue\": %u, \"ecn_threshold\": %u, "
        "\"metrics\": "
        "{\"openloop_dropped_cells\": %llu, "
        "\"dctcp_dropped_cells\": %llu, "
        "\"openloop_delivered_cells\": %llu, "
        "\"dctcp_delivered_cells\": %llu, "
        "\"dctcp_ecn_marked_cells\": %llu, "
        "\"dctcp_flows_completed\": %llu, "
        "\"equivalent\": %d}}\n",
        nodes, cliques, fanin, static_cast<unsigned long long>(bytes),
        static_cast<long long>(period), static_cast<long long>(slots),
        max_queue, ecn,
        static_cast<unsigned long long>(open_loop.dropped),
        static_cast<unsigned long long>(dctcp1.dropped),
        static_cast<unsigned long long>(open_loop.delivered),
        static_cast<unsigned long long>(dctcp1.delivered),
        static_cast<unsigned long long>(dctcp1.ecn_marked),
        static_cast<unsigned long long>(dctcp1.flows),
        equivalent ? 1 : 0);
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }

  if (!equivalent) {
    std::fprintf(stderr,
                 "FAIL: metrics artifact differs between 1 and 4 threads\n");
    return 1;
  }
  if (open_loop.dropped == 0) {
    std::fprintf(stderr,
                 "FAIL: open-loop run never overflowed a VOQ — raise "
                 "--fanin or lower --max-queue so the gate measures "
                 "something\n");
    return 1;
  }
  if (!sheds_drops) {
    std::fprintf(stderr,
                 "FAIL: dctcp dropped %llu cells, open-loop %llu — the "
                 "closed loop must shed drops at equal offered load\n",
                 static_cast<unsigned long long>(dctcp1.dropped),
                 static_cast<unsigned long long>(open_loop.dropped));
    return 1;
  }
  return 0;
}
