// Ablation of the clique count Nc (design choice of Sec. 4): "Increasing
// oversubscription q or number of cliques Nc lowers latency for local
// traffic, but increases latency across cliques."
//
// Sweeps Nc at the paper's Table 1 scale (N = 4096, x = 0.56, q = q*) and
// prints intra/inter intrinsic latency and their locality-weighted mean.
#include <cstdio>

#include "analysis/models.h"
#include "util/table.h"

int main() {
  using namespace sorn;
  const analysis::DeploymentParams base;
  const NodeId n = base.nodes;
  const double x = base.locality_x;
  const double q = analysis::sorn_optimal_q(x);

  std::printf(
      "Ablation: clique count Nc at N=%d, x=%.2f, q=%.3f "
      "(u=%d, slot=%.0fns, prop=%.0fns)\n\n",
      n, x, q, base.uplinks, base.slot_ns, base.propagation_ns);

  TablePrinter table({"Nc", "clique size", "dm intra", "dm inter",
                      "lat intra (us)", "lat inter (us)", "mean lat (us)"});
  for (const CliqueId nc : {4, 8, 16, 32, 64, 128, 256, 512}) {
    const double dmi = analysis::sorn_delta_m_intra(n, nc, q);
    const double dme = analysis::sorn_delta_m_inter_table(n, nc, q);
    const double li = analysis::min_latency_us(dmi, base.uplinks, base.slot_ns,
                                               2, base.propagation_ns);
    const double le = analysis::min_latency_us(dme, base.uplinks, base.slot_ns,
                                               3, base.propagation_ns);
    table.add_row({format("%d", nc), format("%d", n / nc),
                   format("%.0f", dmi), format("%.0f", dme),
                   format("%.2f", li), format("%.2f", le),
                   format("%.2f", x * li + (1.0 - x) * le)});
  }
  table.print();
  std::printf(
      "\nShape check: intra latency falls and inter latency rises with Nc;\n"
      "the locality-weighted mean has an interior optimum (Table 1 uses\n"
      "Nc = 64 and Nc = 32). Throughput is Nc-independent at %.2f%%.\n",
      analysis::sorn_throughput(x) * 100.0);
  return 0;
}
