// Chaos campaign driver: N seeded randomized fault-soup runs, invariants
// asserted every slot, thread-count byte-equivalence cross-checked per
// seed (scenario/chaos.h).
//
// Exit nonzero on the first failing seed, printing the one-line replay
// recipe — that command alone reproduces the failure anywhere. With
// --json a machine-readable summary (seeds passed, aggregate fault
// counts) is written; CI runs the nightly campaign through this binary
// and uploads failing seeds as artifacts.
#include <cstdio>
#include <string>

#include "bench_args.h"
#include "obs/export.h"
#include "scenario/chaos.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sorn;
  bench::ArgParser args(argc, argv);
  const std::string json_path = args.get_string("--json", "");
  const std::uint64_t first_seed =
      static_cast<std::uint64_t>(args.get_long("--seed", 1, 0));
  const long runs = args.get_long("--runs", 5, 1);
  ChaosKnobs knobs;
  knobs.nodes = static_cast<NodeId>(args.get_long("--nodes", 32, 4));
  knobs.slots = args.get_long("--slots", 3000, 500);
  knobs.compare_threads =
      static_cast<int>(args.get_long("--compare-threads", 3, 0));
  args.finish();

  std::uint64_t passed = 0;
  std::uint64_t total_faults = 0, total_gray = 0, total_outages = 0,
                 total_safe = 0, total_replans = 0, total_slots = 0;
  TablePrinter table({"seed", "faults", "gray drops", "ctrl outages",
                      "safe mode", "replans", "slots checked", "verdict"});
  for (long i = 0; i < runs; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    const ChaosResult r = run_chaos(seed, knobs);
    table.add_row(
        {format("%llu", static_cast<unsigned long long>(seed)),
         format("%llu", static_cast<unsigned long long>(r.faults_applied)),
         format("%llu", static_cast<unsigned long long>(r.gray_drops)),
         format("%llu",
                static_cast<unsigned long long>(r.controller_outages)),
         format("%llu",
                static_cast<unsigned long long>(r.safe_mode_activations)),
         format("%llu", static_cast<unsigned long long>(r.replans)),
         format("%llu", static_cast<unsigned long long>(r.invariant_slots)),
         r.ok ? "pass" : "FAIL"});
    if (!r.ok) {
      table.print();
      std::fprintf(stderr, "\nchaos seed %llu FAILED:\n%s\n\nreplay: %s\n",
                   static_cast<unsigned long long>(seed), r.error.c_str(),
                   r.replay.c_str());
      if (!json_path.empty()) {
        const std::string doc = format(
            "{\"bench\": \"bench_chaos\", \"first_seed\": %llu, "
            "\"runs\": %ld, \"failed_seed\": %llu, \"replay\": \"%s\", "
            "\"metrics\": {\"seeds_passed\": %llu, \"all_passed\": 0}}\n",
            static_cast<unsigned long long>(first_seed), runs,
            static_cast<unsigned long long>(seed), r.replay.c_str(),
            static_cast<unsigned long long>(passed));
        write_text_file(json_path, doc);
      }
      return 1;
    }
    ++passed;
    total_faults += r.faults_applied;
    total_gray += r.gray_drops;
    total_outages += r.controller_outages;
    total_safe += r.safe_mode_activations;
    total_replans += r.replans;
    total_slots += r.invariant_slots;
  }
  table.print();
  std::printf(
      "\n%llu/%ld seeds passed: %llu faults, %llu gray drops, %llu "
      "controller outages, %llu safe-mode entries, %llu replans, %llu "
      "slots invariant-checked.\n",
      static_cast<unsigned long long>(passed), runs,
      static_cast<unsigned long long>(total_faults),
      static_cast<unsigned long long>(total_gray),
      static_cast<unsigned long long>(total_outages),
      static_cast<unsigned long long>(total_safe),
      static_cast<unsigned long long>(total_replans),
      static_cast<unsigned long long>(total_slots));

  if (!json_path.empty()) {
    const std::string doc = format(
        "{\"bench\": \"bench_chaos\", \"first_seed\": %llu, \"runs\": %ld, "
        "\"total_faults\": %llu, \"total_gray_drops\": %llu, "
        "\"total_controller_outages\": %llu, \"total_replans\": %llu, "
        "\"metrics\": {\"seeds_passed\": %llu, \"all_passed\": 1}}\n",
        static_cast<unsigned long long>(first_seed), runs,
        static_cast<unsigned long long>(total_faults),
        static_cast<unsigned long long>(total_gray),
        static_cast<unsigned long long>(total_outages),
        static_cast<unsigned long long>(total_replans),
        static_cast<unsigned long long>(passed));
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
