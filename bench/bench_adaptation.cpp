// Sec. 5 experiment: periodic adaptation to macro-pattern shifts.
//
// A 64-node fabric carries traffic that is local (x = 0.7) under the
// *current* job placement. Mid-run the scheduler migrates jobs
// (placement shuffle) — which machines are co-located changes, so the
// macro pattern the old cliques were built for is gone. The control plane
// detects the shift from clique-level aggregates and swaps the schedule.
//
// The fabrics come from the scenario layer: the SORN is built through a
// ScenarioRunner with the control plane's clique assignment as an
// override (then adapted live via the runner's SornNetwork handle), and
// the flat 1D ORN baseline is the registry's "vlb" design driven through
// a full saturation scenario.
//
// Reported: saturation throughput in each phase, plus the flat baseline.
// Per the paper, the flat ORN's 50% is the throughput ceiling — SORN's
// win is holding ~1/(3-x) with an intrinsic latency an order of magnitude
// lower (delta_m printed at the end), and adaptation is what keeps it
// there across shifts.
// With `--json <file>` the table is also written machine-readably; with
// `--trace <file.jsonl>` the control plane's replan decisions (with
// trigger reasons) and the network's reconfigure events are traced.
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/models.h"
#include "bench_args.h"
#include "control/control_plane.h"
#include "core/sorn.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "scenario/scenario_runner.h"
#include "sim/saturation.h"
#include "traffic/patterns.h"
#include "traffic/trace.h"
#include "util/table.h"

namespace {

constexpr sorn::NodeId kNodes = 64;
constexpr double kLocality = 0.7;

double sat_throughput(sorn::SlottedNetwork& net,
                      const sorn::TrafficMatrix& tm) {
  sorn::SaturationSource source(&tm, sorn::SaturationConfig{});
  // Long warmup: after a swap, backlog routed under the previous schedule
  // must drain before the steady state is visible.
  return source.measure(net, 25000, 10000);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sorn;
  bench::ArgParser args(argc, argv);
  const std::string json_path = args.get_string("--json", "");
  const std::string trace_path = args.get_string("--trace", "");
  args.finish();
  Telemetry telemetry;
  std::unique_ptr<FileTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<FileTraceSink>(trace_path);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 1;
    }
    telemetry.set_trace_sink(trace_sink.get());
  }

  SyntheticTrace::Config tcfg;
  tcfg.nodes = kNodes;
  tcfg.group_size = 8;
  tcfg.burst_sigma = 0.4;
  tcfg.seed = 2024;
  SyntheticTrace trace(tcfg);

  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {8};
  opts.optimizer.max_q_denominator = 6;
  opts.replan_threshold = 0.3;
  ControlPlane cp(kNodes, opts);
  cp.set_tracer(&telemetry.tracer());

  // The demand the fabric must carry: locality-mix over the current
  // ground-truth placement (the paper's analysis workload). The control
  // plane only ever sees noisy epoch observations of it.
  auto current_demand = [&] {
    return patterns::locality_mix(trace.ground_truth_cliques(), kLocality);
  };
  auto observe_epochs = [&](int count) {
    bool replanned = false;
    for (int e = 0; e < count; ++e) {
      TrafficMatrix obs = current_demand();
      // Epoch-level burst noise on top of the macro pattern.
      Rng noise(1000 + static_cast<std::uint64_t>(e));
      for (NodeId i = 0; i < kNodes; ++i)
        for (NodeId j = 0; j < kNodes; ++j)
          if (i != j)
            obs.set(i, j, obs.at(i, j) * (0.5 + noise.next_double()));
      replanned |= cp.on_epoch(obs, 0);
    }
    return replanned;
  };

  observe_epochs(3);
  ScenarioConfig scfg;
  scfg.design = "sorn";
  scfg.nodes = kNodes;
  scfg.propagation_ns = 0;
  scfg.overrides.cliques = &cp.last_plan().cliques;
  std::string error;
  auto runner = ScenarioRunner::create(scfg, &error);
  if (runner == nullptr) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    return 1;
  }
  SornNetwork& net = *runner->design().sorn_network;
  SlottedNetwork& sim = runner->network();
  net.adapt(cp.last_plan().cliques, cp.last_plan().q);
  sim.reconfigure(&net.schedule(), &net.router());
  sim.set_telemetry(&telemetry);

  TablePrinter table({"Phase", "locality under plan", "throughput r"});

  const TrafficMatrix before = current_demand();
  table.add_row({"matched (pre-shift)",
                 format("%.3f", before.locality_ratio(net.cliques())),
                 format("%.4f", sat_throughput(sim, before))});

  // The shift: jobs migrate; co-location changes entirely.
  trace.shuffle_placement();
  const TrafficMatrix after = current_demand();
  table.add_row({"shifted, not adapted",
                 format("%.3f", after.locality_ratio(net.cliques())),
                 format("%.4f", sat_throughput(sim, after))});

  const bool replanned = observe_epochs(3);
  std::printf("control plane re-planned after shift: %s (replans=%llu)\n\n",
              replanned ? "yes" : "no",
              static_cast<unsigned long long>(cp.replans()));
  net.adapt(cp.last_plan().cliques, cp.last_plan().q);
  sim.reconfigure(&net.schedule(), &net.router());
  table.add_row({"shifted, adapted",
                 format("%.3f", after.locality_ratio(net.cliques())),
                 format("%.4f", sat_throughput(sim, after))});

  // Flat 1D ORN baseline, driven end to end through the scenario layer.
  ScenarioConfig fcfg;
  fcfg.design = "vlb";
  fcfg.nodes = kNodes;
  fcfg.propagation_ns = 0;
  fcfg.workload = WorkloadKind::kSaturation;
  fcfg.warmup_slots = 25000;
  fcfg.measure_slots = 10000;
  fcfg.overrides.traffic = &after;
  auto flat = ScenarioRunner::create(fcfg, &error);
  if (flat == nullptr || !flat->run(&error)) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    return 1;
  }
  table.add_row({"1D ORN baseline (oblivious)", "-",
                 format("%.4f", flat->saturation_r())});

  table.print();
  if (!json_path.empty()) {
    const std::string doc =
        "{\"bench\": \"bench_adaptation\", \"rows\": " + table.to_json() +
        "}\n";
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!trace_path.empty())
    std::printf("\nwrote event trace %s\n", trace_path.c_str());
  std::printf(
      "\nShape check: the shift collapses the locality the plan assumed and\n"
      "throughput drops toward the 1/((1-x)(q+1)) inter-link bound;\n"
      "adaptation restores r to ~1/(3-x) = %.3f. The 1D ORN holds 0.5 but\n"
      "pays delta_m = %d circuits vs SORN's intra %.0f (theory: %.3f).\n",
      analysis::sorn_throughput(kLocality), kNodes - 1, net.delta_m_intra(),
      analysis::sorn_throughput(kLocality));
  return 0;
}
