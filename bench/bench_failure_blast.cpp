// Sec. 6 ("Practicality benefits"): flat oblivious designs with random
// indirect hops inflate the blast radius of failures — a flow between any
// src-dst pair can be affected by any link failure. A modular (clique)
// design confines the impact.
//
// Metric (exact, by enumerating each design's possible path set): for a
// directed virtual link e, blast(e) = fraction of src-dst pairs that have
// at least one routable path through e. Reported per link class, plus the
// expected blast radius of a uniformly random link failure.
//
//   Flat 1D ORN + VLB: any pair (s, d) may route s -> m -> d for every m,
//   so link (a, b) is usable by every pair with s == a or d == b.
//
//   SORN: an intra-clique link (a, b) carries LB hops of flows sourced at
//   a and delivery hops of flows destined to b; an inter-clique link
//   (a, b) carries only flows from clique(a) to clique(b).
#include <cstdio>
#include <vector>

#include "routing/sorn_routing.h"
#include "routing/vlb.h"
#include "topo/schedule_builder.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 64;
constexpr CliqueId kCliques = 8;

struct BlastStats {
  double mean = 0.0;   // over links of this class
  double max = 0.0;
  int links = 0;
};

// Enumerate, for every directed link, how many pairs can route through it,
// given a predicate possible(s, d, a, b) that encodes the design's path
// set. O(N^4) with trivial constants: 16.7M checks at N=64.
template <typename Possible>
BlastStats enumerate(Possible possible,
                     const std::vector<std::pair<NodeId, NodeId>>& links) {
  const double total_pairs = static_cast<double>(kNodes) * (kNodes - 1);
  BlastStats stats;
  for (const auto& [a, b] : links) {
    int pairs = 0;
    for (NodeId s = 0; s < kNodes; ++s)
      for (NodeId d = 0; d < kNodes; ++d)
        if (s != d && possible(s, d, a, b)) ++pairs;
    const double frac = pairs / total_pairs;
    stats.mean += frac;
    stats.max = std::max(stats.max, frac);
    ++stats.links;
  }
  if (stats.links > 0) stats.mean /= stats.links;
  return stats;
}

}  // namespace

int main() {
  const auto cliques = CliqueAssignment::contiguous(kNodes, kCliques);

  // Link classes.
  std::vector<std::pair<NodeId, NodeId>> all_links;
  std::vector<std::pair<NodeId, NodeId>> intra_links;
  std::vector<std::pair<NodeId, NodeId>> inter_links;
  for (NodeId a = 0; a < kNodes; ++a) {
    for (NodeId b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      all_links.emplace_back(a, b);
      (cliques.same_clique(a, b) ? intra_links : inter_links)
          .emplace_back(a, b);
    }
  }

  // Flat VLB path set: s -> m -> d for all m, plus direct s -> d.
  auto vlb_possible = [](NodeId s, NodeId d, NodeId a, NodeId b) {
    return (s == a && d != a) || (d == b && s != b) || (s == a && d == b);
  };

  // SORN path set (paper Sec. 4 routing):
  //   intra pair: s -> m -> d, m in clique(s);
  //   inter pair: s -> lb -> landing -> d, lb in clique(s), landing in
  //   clique(d).
  auto sorn_possible = [&](NodeId s, NodeId d, NodeId a, NodeId b) {
    const bool link_intra = cliques.same_clique(a, b);
    if (cliques.same_clique(s, d)) {
      if (!link_intra || !cliques.same_clique(s, a)) return false;
      return s == a || d == b;  // LB hop out of s, or delivery hop into d
    }
    if (link_intra) {
      // LB hop (s == a, within s's clique) or delivery hop (d == b,
      // within d's clique).
      return (s == a && cliques.same_clique(s, a)) ||
             (d == b && cliques.same_clique(d, b));
    }
    // Inter hop: only flows clique(a) -> clique(b) use it.
    return cliques.clique_of(s) == cliques.clique_of(a) &&
           cliques.clique_of(d) == cliques.clique_of(b);
  };

  std::printf(
      "Failure blast radius, exact path-set enumeration "
      "(%d nodes, %d cliques)\n\n",
      kNodes, kCliques);

  TablePrinter table({"Design", "link class", "links", "mean blast",
                      "max blast"});
  const BlastStats flat = enumerate(vlb_possible, all_links);
  table.add_row({"Flat 1D ORN + VLB", "all", format("%d", flat.links),
                 format("%.4f", flat.mean), format("%.4f", flat.max)});
  const BlastStats s_all = enumerate(sorn_possible, all_links);
  const BlastStats s_intra = enumerate(sorn_possible, intra_links);
  const BlastStats s_inter = enumerate(sorn_possible, inter_links);
  table.add_row({"SORN", "all", format("%d", s_all.links),
                 format("%.4f", s_all.mean), format("%.4f", s_all.max)});
  table.add_row({"SORN", "intra-clique", format("%d", s_intra.links),
                 format("%.4f", s_intra.mean), format("%.4f", s_intra.max)});
  table.add_row({"SORN", "inter-clique", format("%d", s_inter.links),
                 format("%.4f", s_inter.mean), format("%.4f", s_inter.max)});
  table.print();

  std::printf(
      "\nExpected pairs affected by one random link failure: flat %.1f, "
      "SORN %.1f (%.2fx lower).\n"
      "Beyond the mean: in the flat design *any* link can affect *any*\n"
      "pair touching its endpoints; in SORN an inter-clique link failure\n"
      "affects exactly the clique(a)->clique(b) pairs — identifiable\n"
      "immediately, which is the ease-of-diagnosis argument of Sec. 6.\n",
      flat.mean * kNodes * (kNodes - 1), s_all.mean * kNodes * (kNodes - 1),
      flat.mean / s_all.mean);
  return 0;
}
