// Engine microbenchmarks (google-benchmark): schedule construction and
// lookup, route selection, and simulator slot throughput.
#include <benchmark/benchmark.h>

#include "core/sorn.h"
#include "routing/vlb.h"
#include "sim/saturation.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace {

using namespace sorn;

void BM_BuildRoundRobin(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    CircuitSchedule s = ScheduleBuilder::round_robin(n);
    benchmark::DoNotOptimize(s.period());
  }
}
BENCHMARK(BM_BuildRoundRobin)->Arg(64)->Arg(256)->Arg(1024);

void BM_BuildSornSchedule(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto cliques = CliqueAssignment::contiguous(n, 8);
  for (auto _ : state) {
    CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{9, 2});
    benchmark::DoNotOptimize(s.period());
  }
}
BENCHMARK(BM_BuildSornSchedule)->Arg(64)->Arg(128)->Arg(256);

void BM_ScheduleLookup(benchmark::State& state) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(1024);
  Slot t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.dst_of(static_cast<NodeId>(t % 1024), t));
    ++t;
  }
}
BENCHMARK(BM_ScheduleLookup);

void BM_SornRoute(benchmark::State& state) {
  const auto cliques = CliqueAssignment::contiguous(128, 8);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{9, 2});
  const SornRouter router(&s, &cliques, LbMode::kRandom);
  Rng rng(1);
  Slot t = 0;
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(t % 128);
    const auto dst = static_cast<NodeId>((t * 37 + 1) % 128);
    if (src != dst) {
      benchmark::DoNotOptimize(router.route(src, dst, t, rng));
    }
    ++t;
  }
}
BENCHMARK(BM_SornRoute);

void BM_VlbRoute(benchmark::State& state) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(128);
  const VlbRouter router(&s, LbMode::kRandom);
  Rng rng(1);
  Slot t = 0;
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(t % 128);
    const auto dst = static_cast<NodeId>((t * 37 + 1) % 128);
    if (src != dst) {
      benchmark::DoNotOptimize(router.route(src, dst, t, rng));
    }
    ++t;
  }
}
BENCHMARK(BM_VlbRoute);

void BM_NetworkSlot(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  SornConfig cfg;
  cfg.nodes = n;
  cfg.cliques = 8;
  cfg.locality_x = 0.56;
  cfg.q = Rational{9, 2};  // near q*(0.56) with a short schedule period
  cfg.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();
  const TrafficMatrix tm = patterns::locality_mix(net.cliques(), 0.56);
  SaturationSource source(&tm, SaturationConfig{});
  // Pre-fill queues so every slot does real work.
  for (int i = 0; i < 200; ++i) {
    source.pump(sim);
    sim.step();
  }
  for (auto _ : state) {
    source.pump(sim);
    sim.step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NetworkSlot)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
