// Parallel slot-engine scaling: slots/sec at 1/2/4/8 threads.
//
// Scenario: the Fig. 2(f) scale — a 128-node, 8-clique SORN fabric under
// saturation (closed-loop backlogged sources). Each slot, sources are
// pumped outside the timer and only SlottedNetwork::step() is timed, so
// the number reported is engine throughput, not workload-generation
// speed. The engine is byte-equivalent at every thread count, so the
// bench doubles as an equivalence check: delivered-cell counts must match
// across all thread counts or the bench fails.
//
// The fabric and traffic come from the scenario layer (one ScenarioConfig
// per rep); the timing loop itself stays hand-rolled because only
// SlottedNetwork::step() may sit inside the timer.
//
//   bench_parallel_scaling [--json out.json] [--threads 1,2,4,8]
//                          [--slots 20000] [--warmup 2000] [--reps 3]
//                          [--nodes 128] [--cliques 8]
//                          [--min-speedup 1.3] [--gate-threads 4]
//
// With --min-speedup, exits nonzero unless the --gate-threads row reaches
// that speedup over the single-thread row (the CI scaling gate; the
// generous 1.3x floor at 4 threads absorbs shared-runner noise).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.h"
#include "obs/export.h"
#include "scenario/scenario_runner.h"
#include "sim/parallel.h"
#include "sim/saturation.h"
#include "util/table.h"

namespace {

using namespace sorn;

struct Row {
  int threads = 1;
  double slots_per_sec = 0.0;
  double speedup = 1.0;
  std::uint64_t delivered = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args(argc, argv);
  const std::string json_path = args.get_string("--json", "");
  const std::vector<int> thread_counts =
      args.get_int_list("--threads", {1, 2, 4, 8}, 1);
  const Slot slots = args.get_long("--slots", 20000, 1);
  const Slot warmup = args.get_long("--warmup", 2000, 0);
  const int reps = static_cast<int>(args.get_long("--reps", 3, 1));
  const auto nodes = static_cast<NodeId>(args.get_long("--nodes", 128, 2));
  const auto cliques =
      static_cast<CliqueId>(args.get_long("--cliques", 8, 1));
  const double min_speedup = args.get_double("--min-speedup", 0.0, 0.0);
  const int gate_threads =
      static_cast<int>(args.get_long("--gate-threads", 4, 1));
  args.finish();
  if (thread_counts.empty() || thread_counts.front() != 1) {
    std::fprintf(stderr, "--threads list must start with 1 (the baseline)\n");
    return 2;
  }

  ScenarioConfig cfg;
  cfg.design = "sorn";
  cfg.nodes = nodes;
  cfg.cliques = cliques;
  cfg.locality_x = 0.6;
  cfg.propagation_ns = 0;
  cfg.workload = WorkloadKind::kSaturation;

  std::printf(
      "Parallel slot-engine scaling: %d nodes, %d cliques, saturated, "
      "%lld timed slots, best of %d (host reports %d hardware threads)\n\n",
      nodes, cliques, static_cast<long long>(slots), reps,
      ThreadPool::default_threads());

  std::vector<Row> rows;
  for (const int t : thread_counts) {
    if (t < 1) {
      std::fprintf(stderr, "thread counts must be >= 1\n");
      return 2;
    }
    double best_ns = 1e18;
    std::uint64_t delivered = 0;
    for (int rep = 0; rep < reps; ++rep) {
      ScenarioConfig run = cfg;
      run.threads = t;
      std::string error;
      auto runner = ScenarioRunner::create(run, &error);
      if (runner == nullptr) {
        std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
        return 1;
      }
      SlottedNetwork& sim = runner->network();
      SaturationSource source(&runner->traffic(), SaturationConfig{});
      for (Slot s = 0; s < warmup; ++s) {
        source.pump(sim);
        sim.step();
      }
      // Pump outside the timer: only the slot engine is measured.
      double ns = 0.0;
      for (Slot s = 0; s < slots; ++s) {
        source.pump(sim);
        const auto t0 = std::chrono::steady_clock::now();
        sim.step();
        const auto t1 = std::chrono::steady_clock::now();
        ns += static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
      }
      if (ns < best_ns) best_ns = ns;
      delivered = sim.metrics().delivered_cells();
    }
    Row row;
    row.threads = t;
    row.slots_per_sec = static_cast<double>(slots) / (best_ns * 1e-9);
    row.delivered = delivered;
    row.speedup = rows.empty() ? 1.0
                               : row.slots_per_sec / rows.front().slots_per_sec;
    rows.push_back(row);
  }

  // Byte-equivalence spot check: the same seed must deliver the same
  // cells at every thread count.
  bool equivalent = true;
  for (const Row& row : rows)
    if (row.delivered != rows.front().delivered) equivalent = false;

  TablePrinter table({"threads", "slots/sec", "speedup vs 1", "delivered"});
  for (const Row& row : rows) {
    table.add_row({format("%d", row.threads),
                   format("%.0f", row.slots_per_sec),
                   format("%.2fx", row.speedup),
                   format("%llu",
                          static_cast<unsigned long long>(row.delivered))});
  }
  table.print();
  std::printf("\nequivalence across thread counts: %s\n",
              equivalent ? "OK (identical delivered counts)" : "FAILED");

  if (!json_path.empty()) {
    // Flat numeric gates for ci/check_bench.py: deterministic delivered
    // count (near-exact) plus timing/speedup (loose ratio bounds).
    std::string metrics =
        "{\"equivalent\": " + std::string(equivalent ? "1" : "0") +
        ", \"delivered_cells\": " +
        format("%llu", static_cast<unsigned long long>(
                           rows.front().delivered));
    for (const Row& row : rows) {
      metrics += ", \"slots_per_sec_t" + format("%d", row.threads) +
                 "\": " + format("%.1f", row.slots_per_sec);
      if (row.threads != 1)
        metrics += ", \"speedup_t" + format("%d", row.threads) +
                   "\": " + format("%.3f", row.speedup);
    }
    metrics += "}";
    const std::string doc =
        "{\"bench\": \"bench_parallel_scaling\", \"nodes\": " +
        format("%d", nodes) + ", \"cliques\": " + format("%d", cliques) +
        ", \"slots\": " + format("%lld", static_cast<long long>(slots)) +
        ", \"equivalent\": " + (equivalent ? "true" : "false") +
        ", \"metrics\": " + metrics +
        ", \"rows\": " + table.to_json() + "}\n";
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!equivalent) return 1;
  if (min_speedup > 0.0) {
    const Row* gate = nullptr;
    for (const Row& row : rows)
      if (row.threads == gate_threads) gate = &row;
    if (gate == nullptr) gate = &rows.back();
    std::printf("gate: %.2fx at %d threads (floor %.2fx) — %s\n",
                gate->speedup, gate->threads, min_speedup,
                gate->speedup >= min_speedup ? "PASS" : "FAIL");
    if (gate->speedup < min_speedup) return 1;
  }
  return 0;
}
