// Ablation of the oversubscription ratio q (design choice of Sec. 4).
//
// At fixed locality x, the paper derives q* = 2/(1-x) by equating the
// intra- and inter-link utilization bounds. This bench sweeps q and shows
// both the analytic bound r(x, q) = min(q/(2q+2), 1/((1-x)(q+1))) and the
// simulated saturation throughput peaking at q*.
#include <cstdio>

#include "analysis/models.h"
#include "core/sorn.h"
#include "sim/saturation.h"
#include "traffic/patterns.h"
#include "util/table.h"

int main() {
  using namespace sorn;
  const NodeId kNodes = 64;
  const CliqueId kCliques = 8;
  const double x = 0.56;
  const double q_star = analysis::sorn_optimal_q(x);  // 4.545

  std::printf(
      "Ablation: throughput vs oversubscription q "
      "(%d nodes, %d cliques, x=%.2f, q* = %.3f)\n\n",
      kNodes, kCliques, x, q_star);

  const Rational sweep[] = {{1, 1}, {2, 1},  {3, 1},  {4, 1}, {50, 11},
                            {6, 1}, {8, 1},  {12, 1}, {20, 1}};

  TablePrinter table(
      {"q", "r theory", "intra bound", "inter bound", "r simulated"});
  for (const Rational q : sweep) {
    const double qv = q.value();
    const double intra_bound = qv / (2.0 * qv + 2.0);
    const double inter_bound = 1.0 / ((1.0 - x) * (qv + 1.0));
    const double r_theory = analysis::sorn_throughput_at_q(x, qv);

    SornConfig cfg;
    cfg.nodes = kNodes;
    cfg.cliques = kCliques;
    cfg.locality_x = x;
    cfg.q = q;
    cfg.propagation_per_hop = 0;
    const SornNetwork net = SornNetwork::build(cfg);
    SlottedNetwork sim = net.make_network();
    const TrafficMatrix tm = patterns::locality_mix(net.cliques(), x);
    SaturationSource source(&tm, SaturationConfig{});
    const double r_sim = source.measure(sim, 4000, 8000);

    table.add_row({format("%.3f", qv), format("%.4f", r_theory),
                   format("%.4f", intra_bound), format("%.4f", inter_bound),
                   format("%.4f", r_sim)});
  }
  table.print();
  std::printf(
      "\nShape check: throughput peaks where the two bounds cross "
      "(q = q* = %.3f -> r = %.4f).\n",
      q_star, analysis::sorn_throughput(x));
  return 0;
}
