// Shared strict CLI parsing for the benchmark executables.
//
// The implementation moved to src/util/args.h so sorn_tool (and any other
// non-bench binary) can use the same parser; this header keeps the
// historical include path and namespace for the benches.
#pragma once

#include "util/args.h"

namespace sorn::bench {

using ArgParser = ::sorn::ArgParser;

}  // namespace sorn::bench
