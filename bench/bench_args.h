// Shared strict CLI parsing for the benchmark executables.
//
// The implementation moved to src/util/args.h so sorn_tool (and any other
// non-bench binary) can use the same parser; this header keeps the
// historical include path and namespace for the benches.
#pragma once

#include <string>

#include "util/args.h"

namespace sorn::bench {

using ArgParser = ::sorn::ArgParser;

// Shared --profile / --profile-json wiring (obs/prof). Every bench that
// drives a ScenarioConfig parses these the same way; a non-empty
// --profile-json implies --profile.
struct ProfileOptions {
  bool enabled = false;
  std::string json_path;
};

inline ProfileOptions parse_profile_options(ArgParser& args) {
  ProfileOptions p;
  p.json_path = args.get_string("--profile-json", "");
  p.enabled = args.get_flag("--profile") || !p.json_path.empty();
  return p;
}

// Apply to any config with `profile` / `profile_json_path` members
// (ScenarioConfig; templated so this header needs no scenario include).
template <typename Config>
inline void apply_profile(const ProfileOptions& p, Config& cfg) {
  if (p.enabled) cfg.profile = true;
  if (!p.json_path.empty()) cfg.profile_json_path = p.json_path;
}

}  // namespace sorn::bench
