// Oblivious-floor degradation under a full control-plane outage.
//
// The semi-oblivious argument (paper Sec. 4-5) is that adaptivity is an
// optimization, not a dependency: when the controller dies, the data
// plane keeps serving a committed schedule and throughput degrades to —
// never below — an oblivious floor. This bench measures that floor.
//
// Four variants of the same fabric/workload (64-node SORN, locality mix,
// open-loop load above the VLB capacity so schedules differentiate):
//
//   adaptive     — closed control loop, no faults (the ceiling)
//   outage-hold  — controller dies at --outage-slot and never recovers;
//                  safe mode holds the last committed schedule
//   outage-vlb   — same outage; safe mode swaps to round-robin + VLB
//   floor        — the pure-oblivious vlb design end to end (the floor)
//
// Delivered cells/slot are measured in [--measure-from, --slots), fully
// inside the outage. Gates (exit nonzero on failure):
//
//   outage-hold >= --floor-tol x floor   (holding a committed SORN plan
//                                         must not underperform VLB)
//   outage-vlb  >= --floor-tol x floor   (safe-mode VLB IS the floor,
//                                         modulo swap transients)
//
// The outage-vlb variant also runs at --threads 1 and 4 and byte-compares
// the metrics artifacts: outages, safe-mode swaps and invariant hooks must
// not break the parallel-equivalence contract. With --json the summary is
// written for ci/check_bench.py against BENCH_degradation.json.
#include <cstdio>
#include <string>

#include "bench_args.h"
#include "obs/export.h"
#include "scenario/scenario_runner.h"
#include "util/table.h"

namespace {

using namespace sorn;

struct VariantResult {
  double cells_per_slot = 0.0;
  std::string metrics_json;
  bool ok = false;
  std::string error;
};

VariantResult run_variant(ScenarioConfig cfg, Slot measure_from,
                          Slot measure_to) {
  VariantResult r;
  auto runner = ScenarioRunner::create(cfg, &r.error);
  if (runner == nullptr) return r;
  std::uint64_t at_from = 0, at_to = 0;
  bool saw_from = false, saw_to = false;
  runner->set_slot_hook([&](SlottedNetwork& net, Slot now) {
    if (now == measure_from) {
      at_from = net.metrics().delivered_cells();
      saw_from = true;
    } else if (now == measure_to) {
      at_to = net.metrics().delivered_cells();
      saw_to = true;
    }
  });
  if (!runner->run(&r.error)) return r;
  if (!saw_from || !saw_to) {
    r.error = "measurement window not reached (horizon too short?)";
    return r;
  }
  r.cells_per_slot = static_cast<double>(at_to - at_from) /
                     static_cast<double>(measure_to - measure_from);
  r.metrics_json = runner->metrics_json();
  r.ok = true;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sorn;
  bench::ArgParser args(argc, argv);
  const std::string json_path = args.get_string("--json", "");
  const auto nodes = static_cast<NodeId>(args.get_long("--nodes", 64, 4));
  const auto cliques = static_cast<CliqueId>(args.get_long("--cliques", 8, 1));
  const double locality = args.get_double("--locality", 0.8, 0.0, 1.0);
  const double load = args.get_double("--load", 0.65, 0.01, 1.0);
  const Slot slots = args.get_long("--slots", 12000, 1000);
  const Slot outage_slot = args.get_long("--outage-slot", 4000, 1);
  const Slot measure_from = args.get_long("--measure-from", 6000, 1);
  const Slot epoch = args.get_long("--epoch-slots", 500, 10);
  const double floor_tol = args.get_double("--floor-tol", 0.85, 0.0, 1.0);
  args.finish();
  if (outage_slot >= measure_from || measure_from >= slots) {
    std::fprintf(stderr,
                 "need --outage-slot < --measure-from < --slots "
                 "(got %lld / %lld / %lld)\n",
                 static_cast<long long>(outage_slot),
                 static_cast<long long>(measure_from),
                 static_cast<long long>(slots));
    return 2;
  }

  ScenarioConfig base;
  base.design = "sorn";
  base.nodes = nodes;
  base.cliques = cliques;
  base.locality_x = locality;
  base.propagation_ns = 0;
  base.load = load;
  base.slots = slots;
  base.threads = 1;
  base.epoch_slots = epoch;
  base.check_invariants = true;
  base.flow_size = FlowSizeKind::kFixed;
  base.fixed_flow_bytes = 2560;

  // The outage runs from --outage-slot past the end of the horizon (and
  // the drain): the controller never comes back.
  ScenarioConfig outage = base;
  outage.control_outages = {outage_slot, slots * 100};

  ScenarioConfig floor_cfg = base;
  floor_cfg.design = "vlb";
  floor_cfg.epoch_slots = 0;  // no control loop to lose

  const VariantResult adaptive = run_variant(base, measure_from, slots);
  ScenarioConfig hold_cfg = outage;
  hold_cfg.safe_mode = "hold";
  const VariantResult hold = run_variant(hold_cfg, measure_from, slots);
  ScenarioConfig vlb_cfg = outage;
  vlb_cfg.safe_mode = "vlb";
  const VariantResult vlb1 = run_variant(vlb_cfg, measure_from, slots);
  ScenarioConfig vlb4_cfg = vlb_cfg;
  vlb4_cfg.threads = 4;
  const VariantResult vlb4 = run_variant(vlb4_cfg, measure_from, slots);
  const VariantResult floor = run_variant(floor_cfg, measure_from, slots);

  for (const auto* v : {&adaptive, &hold, &vlb1, &vlb4, &floor}) {
    if (!v->ok) {
      std::fprintf(stderr, "variant failed: %s\n", v->error.c_str());
      return 1;
    }
  }

  const bool equivalent = vlb1.metrics_json == vlb4.metrics_json;
  const double hold_over_floor =
      floor.cells_per_slot > 0.0 ? hold.cells_per_slot / floor.cells_per_slot
                                 : 0.0;
  const double vlb_over_floor =
      floor.cells_per_slot > 0.0 ? vlb1.cells_per_slot / floor.cells_per_slot
                                 : 0.0;
  const bool hold_ok = hold_over_floor >= floor_tol;
  const bool vlb_ok = vlb_over_floor >= floor_tol;

  std::printf(
      "Controller-outage degradation: %d nodes, %d cliques, x=%.2f, "
      "load=%.2f, outage at %lld, window [%lld, %lld)\n\n",
      nodes, cliques, locality, load, static_cast<long long>(outage_slot),
      static_cast<long long>(measure_from), static_cast<long long>(slots));
  TablePrinter table({"variant", "cells/slot", "vs floor"});
  table.add_row({"adaptive (no outage)",
                 format("%.2f", adaptive.cells_per_slot), "-"});
  table.add_row({"outage, safe mode hold",
                 format("%.2f", hold.cells_per_slot),
                 format("%.3f", hold_over_floor)});
  table.add_row({"outage, safe mode vlb",
                 format("%.2f", vlb1.cells_per_slot),
                 format("%.3f", vlb_over_floor)});
  table.add_row({"pure-oblivious floor (vlb design)",
                 format("%.2f", floor.cells_per_slot), "1.000"});
  table.print();
  std::printf(
      "\n1-vs-4-thread artifacts %s; gates (>= %.2f x floor): hold %s, "
      "vlb %s\n",
      equivalent ? "byte-identical" : "DIFFER", floor_tol,
      hold_ok ? "pass" : "FAIL", vlb_ok ? "pass" : "FAIL");

  if (!json_path.empty()) {
    const std::string doc = format(
        "{\"bench\": \"bench_degradation\", \"nodes\": %d, "
        "\"cliques\": %d, \"locality\": %.2f, \"load\": %.2f, "
        "\"slots\": %lld, \"outage_slot\": %lld, \"measure_from\": %lld, "
        "\"epoch_slots\": %lld, \"metrics\": "
        "{\"adaptive_cells_per_slot\": %.3f, "
        "\"hold_cells_per_slot\": %.3f, "
        "\"vlb_cells_per_slot\": %.3f, "
        "\"floor_cells_per_slot\": %.3f, "
        "\"hold_over_floor\": %.4f, \"vlb_over_floor\": %.4f, "
        "\"equivalent\": %d}}\n",
        nodes, cliques, locality, load, static_cast<long long>(slots),
        static_cast<long long>(outage_slot),
        static_cast<long long>(measure_from),
        static_cast<long long>(epoch), adaptive.cells_per_slot,
        hold.cells_per_slot, vlb1.cells_per_slot, floor.cells_per_slot,
        hold_over_floor, vlb_over_floor, equivalent ? 1 : 0);
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }

  if (!equivalent) {
    std::fprintf(stderr,
                 "FAIL: metrics artifact differs between 1 and 4 threads\n");
    return 1;
  }
  if (!hold_ok || !vlb_ok) {
    std::fprintf(stderr,
                 "FAIL: outage throughput fell below %.2f x the oblivious "
                 "floor\n",
                 floor_tol);
    return 1;
  }
  return 0;
}
