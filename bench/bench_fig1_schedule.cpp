// Regenerates Fig. 1 (the 5-node round-robin oblivious schedule) and the
// Sec. 2 cycle-time argument: a flat round robin's schedule grows linearly
// with N, so at 10,000 nodes and 50 ns slots a full cycle takes ~500 us —
// the scaling barrier that motivates SORN.
#include <cstdio>

#include "analysis/models.h"
#include "topo/schedule_builder.h"
#include "util/table.h"

int main() {
  using namespace sorn;

  std::printf("Fig. 1: oblivious round-robin schedule for 5 nodes\n\n");
  const CircuitSchedule fig1 = ScheduleBuilder::round_robin(5);
  TablePrinter grid({"Time slot", "A", "B", "C", "D", "E"});
  for (Slot t = 0; t < fig1.period(); ++t) {
    std::vector<std::string> row{format("%lld", static_cast<long long>(t + 1))};
    for (NodeId i = 0; i < 5; ++i)
      row.push_back(std::string(1, static_cast<char>('A' + fig1.dst_of(i, t))));
    grid.add_row(std::move(row));
  }
  grid.print();

  std::printf(
      "\nSec. 2: round-robin cycle time vs network size "
      "(50 ns slots, single uplink)\n\n");
  TablePrinter scaling(
      {"Nodes", "Schedule length", "Cycle time (us)", "Cycle time (us), u=16"});
  for (const NodeId n : {100, 1000, 4096, 10000, 65536}) {
    const double delta_m = analysis::orn1d_delta_m(n);
    scaling.add_row({format("%d", n), format("%.0f", delta_m),
                     format("%.2f", analysis::min_latency_us(delta_m, 1, 50,
                                                             0, 0)),
                     format("%.2f", analysis::min_latency_us(delta_m, 16, 50,
                                                             0, 0))});
  }
  scaling.print();
  std::printf(
      "\nShape check: 10,000 nodes x 50 ns => ~500 us per cycle "
      "(paper Sec. 2).\n");
  return 0;
}
