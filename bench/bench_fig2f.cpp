// Regenerates Fig. 2(f): worst-case throughput of the semi-oblivious design
// vs traffic locality ratio x.
//
// Two series, as in the paper:
//   theory — r(x) = 1/(3 - x), the closed form with q = q*(x);
//   sim    — saturation throughput measured on a 128-node, 8-clique SORN
//            (the paper's simulation scale), traffic drawn from a locality
//            mix whose flow population follows the pFabric web-search
//            workload [2] (cells are sprayed per flow; see DESIGN.md).
// Each measurement point is one ScenarioConfig driven through the
// ScenarioRunner, so this bench exercises the exact code path of
// `sorn_tool simulate --design sorn`.
// With `--json <file>` the table is additionally written as a JSON array
// of row objects (machine-readable BENCH_*.json trajectories).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/models.h"
#include "bench_args.h"
#include "obs/export.h"
#include "scenario/scenario_runner.h"
#include "sim/parallel.h"
#include "topo/schedule_builder.h"
#include "traffic/flow_size.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace sorn;

// One saturation measurement through the scenario layer; exits on a
// config/build error (a bug in the bench, not a runtime condition).
double measure_scenario(const ScenarioConfig& cfg) {
  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  if (runner == nullptr || !runner->run(&error)) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    std::exit(1);
  }
  return runner->saturation_r();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sorn;
  bench::ArgParser args(argc, argv);
  const std::string json_path = args.get_string("--json", "");
  const int threads = static_cast<int>(
      args.get_long("--threads", ThreadPool::default_threads(), 1));
  args.finish();
  const NodeId kNodes = 128;
  const CliqueId kCliques = 8;

  std::printf(
      "Fig. 2(f): worst-case throughput vs locality ratio "
      "(%d nodes, %d cliques, q = q*(x), %d engine threads)\n\n",
      kNodes, kCliques, threads);

  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();
  std::printf("flow sizes: %s (mean %.1f KB)\n\n", sizes.name().c_str(),
              sizes.mean_bytes() / 1e3);

  constexpr int kSeeds = 3;
  TablePrinter table({"x", "q*", "r theory", "r sim (cells)", "stddev",
                      "r sim (pfabric flows)", "sim/theory"});
  for (int step = 0; step <= 10; ++step) {
    const double x = step / 10.0;
    const double r_theory = analysis::sorn_throughput(x);
    const double q_star = analysis::sorn_optimal_q(x, 64.0);
    const Rational q = Rational::approximate(q_star, 8);

    ScenarioConfig cfg;
    cfg.design = "sorn";
    cfg.nodes = kNodes;
    cfg.cliques = kCliques;
    cfg.locality_x = x;
    cfg.q_num = q.num;
    cfg.q_den = q.den;
    cfg.propagation_ns = 0;  // throughput is propagation-independent
    cfg.threads = threads;
    cfg.workload = WorkloadKind::kSaturation;
    cfg.warmup_slots = 4000;
    cfg.measure_slots = 8000;

    RunningStats r_sim;
    for (int seed = 0; seed < kSeeds; ++seed) {
      ScenarioConfig run = cfg;
      run.seed = 42 + static_cast<std::uint64_t>(seed);
      run.workload_seed = 7 + static_cast<std::uint64_t>(seed);
      r_sim.add(measure_scenario(run));
    }

    // Flow-granular variant: sizes from the pFabric CDF; bursty per-pair
    // demand, the matrix only in aggregate.
    ScenarioConfig flow_cfg = cfg;
    flow_cfg.seed = 4242;
    flow_cfg.workload = WorkloadKind::kFlowSaturation;
    flow_cfg.warmup_slots = 5000;
    flow_cfg.measure_slots = 10000;
    const double r_flows = measure_scenario(flow_cfg);

    table.add_row({format("%.1f", x), format("%.2f", q.value()),
                   format("%.4f", r_theory), format("%.4f", r_sim.mean()),
                   format("%.4f", r_sim.stddev()), format("%.4f", r_flows),
                   format("%.3f", r_sim.mean() / r_theory)});
  }
  table.print();
  if (!json_path.empty()) {
    const std::string doc =
        "{\"bench\": \"bench_fig2f\", \"rows\": " + table.to_json() + "}\n";
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::printf(
      "\nShape check: r rises from ~1/3 at x=0 to ~1/2 at x=1 "
      "(paper Sec. 4: \"r is bounded between 1/3 and 1/2\").\n");
  return 0;
}
