// Regenerates Fig. 2(f): worst-case throughput of the semi-oblivious design
// vs traffic locality ratio x.
//
// Two series, as in the paper:
//   theory — r(x) = 1/(3 - x), the closed form with q = q*(x);
//   sim    — saturation throughput measured on a 128-node, 8-clique SORN
//            (the paper's simulation scale), traffic drawn from a locality
//            mix whose flow population follows the pFabric web-search
//            workload [2] (cells are sprayed per flow; see DESIGN.md).
// With `--json <file>` the table is additionally written as a JSON array
// of row objects (machine-readable BENCH_*.json trajectories).
#include <cstdio>
#include <string>

#include "analysis/models.h"
#include "bench_args.h"
#include "core/sorn.h"
#include "obs/export.h"
#include "sim/saturation.h"
#include "traffic/flow_size.h"
#include "traffic/patterns.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sorn;
  bench::ArgParser args(argc, argv);
  const std::string json_path = args.get_string("--json", "");
  const int threads = static_cast<int>(
      args.get_long("--threads", ThreadPool::default_threads(), 1));
  args.finish();
  const NodeId kNodes = 128;
  const CliqueId kCliques = 8;

  std::printf(
      "Fig. 2(f): worst-case throughput vs locality ratio "
      "(%d nodes, %d cliques, q = q*(x), %d engine threads)\n\n",
      kNodes, kCliques, threads);

  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();
  std::printf("flow sizes: %s (mean %.1f KB)\n\n", sizes.name().c_str(),
              sizes.mean_bytes() / 1e3);

  constexpr int kSeeds = 3;
  TablePrinter table({"x", "q*", "r theory", "r sim (cells)", "stddev",
                      "r sim (pfabric flows)", "sim/theory"});
  for (int step = 0; step <= 10; ++step) {
    const double x = step / 10.0;
    const double r_theory = analysis::sorn_throughput(x);
    const double q_star = analysis::sorn_optimal_q(x, 64.0);

    SornConfig cfg;
    cfg.nodes = kNodes;
    cfg.cliques = kCliques;
    cfg.locality_x = x;
    cfg.q = Rational::approximate(q_star, 8);
    cfg.propagation_per_hop = 0;  // throughput is propagation-independent
    const SornNetwork net = SornNetwork::build(cfg);
    const TrafficMatrix tm = patterns::locality_mix(net.cliques(), x);

    RunningStats r_sim;
    for (int seed = 0; seed < kSeeds; ++seed) {
      SlottedNetwork sim = net.make_network(42 + seed);
      sim.set_threads(threads);
      SaturationConfig sat;
      sat.seed = 7 + static_cast<std::uint64_t>(seed);
      SaturationSource source(&tm, sat);
      r_sim.add(source.measure(sim, 4000, 8000));
    }

    // Flow-granular variant: sizes from the pFabric CDF; bursty per-pair
    // demand, the matrix only in aggregate.
    SlottedNetwork flow_sim = net.make_network(4242);
    flow_sim.set_threads(threads);
    FlowSaturationSource flow_source(&tm, &sizes, SaturationConfig{});
    const double r_flows = flow_source.measure(flow_sim, 5000, 10000);

    table.add_row({format("%.1f", x), format("%.2f", cfg.q.value()),
                   format("%.4f", r_theory), format("%.4f", r_sim.mean()),
                   format("%.4f", r_sim.stddev()), format("%.4f", r_flows),
                   format("%.3f", r_sim.mean() / r_theory)});
  }
  table.print();
  if (!json_path.empty()) {
    const std::string doc =
        "{\"bench\": \"bench_fig2f\", \"rows\": " + table.to_json() + "}\n";
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::printf(
      "\nShape check: r rises from ~1/3 at x=0 to ~1/2 at x=1 "
      "(paper Sec. 4: \"r is bounded between 1/3 and 1/2\").\n");
  return 0;
}
