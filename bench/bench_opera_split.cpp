// Simulated counterpart of Table 1's Opera rows: on a slow rotor fabric,
// short flows ride always-up expander paths (latency on the hop scale)
// while bulk flows wait for the direct rotation circuit (latency on the
// rotation scale) — three orders of magnitude apart, exactly the split
// Table 1 reports (2 us vs 23,034 us at full scale).
//
// Scale-down: 64 nodes, 4 lanes, 90 us dwell (900 slots of 100 ns), vs
// the paper's 4096 nodes and 16 uplinks. SORN's single fabric serves the
// same mixed workload without the bulk penalty, at the cost of its
// schedule being oblivious only within the clique structure.
#include <cstdio>

#include "analysis/models.h"
#include "core/sorn.h"
#include "routing/rotor_routing.h"
#include "sim/network.h"
#include "traffic/arrivals.h"
#include "traffic/flow_size.h"
#include "traffic/patterns.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 64;
constexpr int kLanes = 4;
constexpr Slot kDwell = 900;  // 90 us at 100 ns slots
constexpr std::uint64_t kShortCutoff = 15 * 1000;  // Opera's 15 KB boundary

class BulkRouter : public Router {
 public:
  Path route(NodeId a, NodeId b, Slot, Rng&) const override {
    return RotorRouter::route_bulk(a, b);
  }
  int max_hops() const override { return 1; }
};

}  // namespace

int main() {
  std::printf(
      "Opera short/bulk split, simulated (%d nodes, %d lanes, dwell %lld "
      "slots = 90 us)\n\n",
      kNodes, kLanes, static_cast<long long>(kDwell));

  const CircuitSchedule rotor =
      ScheduleBuilder::rotor_random(kNodes, kDwell, /*seed=*/17);
  const RotorRouter short_router(&rotor, kLanes, 6);
  const BulkRouter bulk_router;
  NetworkConfig cfg;
  cfg.lanes = kLanes;
  SlottedNetwork net(&rotor, &short_router, cfg);

  // Light open-loop mix: data-mining sizes (mostly tiny flows, heavy
  // tail), classified at Opera's 15 KB boundary.
  const TrafficMatrix tm = patterns::uniform(kNodes);
  const FlowSizeDist sizes = FlowSizeDist::pfabric_data_mining();
  FlowArrivals arrivals(&tm, &sizes, 256.0 * 8.0 / 100e-9, 0.5, Rng(3));
  FlowId id = 1;
  std::uint64_t shorts = 0;
  std::uint64_t bulks = 0;
  FlowArrival a = arrivals.next();
  const Picoseconds horizon = 6000 * 1000 * 1000LL;  // 6 ms
  while (net.now() * cfg.slot_duration < horizon) {
    const Picoseconds slot_start = net.now() * cfg.slot_duration;
    while (a.time <= slot_start + cfg.slot_duration && a.time <= horizon) {
      // Cap bulk sizes so the demo drains in bounded time.
      const std::uint64_t bytes = std::min<std::uint64_t>(a.bytes, 1 << 20);
      if (bytes <= kShortCutoff) {
        net.inject_flow(id++, a.src, a.dst, bytes, 0);
        ++shorts;
      } else {
        net.inject_flow_with(bulk_router, id++, a.src, a.dst, bytes, 1);
        ++bulks;
      }
      a = arrivals.next();
    }
    net.step();
  }
  for (Slot s = 0; s < 400000 && net.cells_in_flight() > 0; ++s) net.step();

  const auto& short_fct = net.metrics().fct_ps_class(0);
  const auto& bulk_fct = net.metrics().fct_ps_class(1);
  TablePrinter table({"class", "flows", "FCT p50 (us)", "FCT p99 (us)"});
  table.add_row({"short (<=15 KB, expander multi-hop)",
                 format("%llu", static_cast<unsigned long long>(shorts)),
                 format("%.1f", short_fct.percentile(50.0) / 1e6),
                 format("%.1f", short_fct.percentile(99.0) / 1e6)});
  table.add_row({"bulk (direct rotation circuit)",
                 format("%llu", static_cast<unsigned long long>(bulks)),
                 format("%.1f", bulk_fct.percentile(50.0) / 1e6),
                 format("%.1f", bulk_fct.percentile(99.0) / 1e6)});
  table.print();

  const double rotation_us =
      static_cast<double>(kNodes - 1) / kLanes * to_us(kDwell * 100000LL);
  std::printf(
      "\nShape check (Table 1, Opera rows): short flows complete on the\n"
      "hop scale; bulk waits the rotation (full sweep here: %.0f us; at\n"
      "paper scale 4095/16 x 90 us = 23,034 us). SORN serves both classes\n"
      "from one schedule with delta_m(intra) = %.0f circuits.\n",
      rotation_us,
      analysis::sorn_delta_m_intra(kNodes, 8, analysis::sorn_optimal_q(0.56)));
  return 0;
}
