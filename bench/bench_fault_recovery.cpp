// Fault blast and recovery: throughput dip depth and time-to-recover.
//
// Scenario: a SORN fabric carries an open-loop pFabric workload with
// failure-aware routing and end-host retransmission enabled. At
// --fail-slot a scripted blast fails --fail-frac of the nodes (spread
// across cliques); at --heal-slot they all come back. Delivered cells are
// sampled in fixed windows, giving a throughput trajectory with three
// phases: steady pre-fault, degraded outage, and post-heal recovery.
//
// The fabric, workload, fault injection and retransmission all run
// through one ScenarioRunner (the blast timeline is handed over as a
// fault-script override; the window sampler is the runner's slot hook).
//
// Reported:
//   pre-fault throughput — mean delivered cells/window before the blast
//   dip depth            — worst outage window as a fraction of pre-fault
//   time-to-recover      — slots from the heal until delivered throughput
//                          holds >= 90% of pre-fault for two consecutive
//                          windows
//
// Exits nonzero if throughput never recovers or any flow is left
// permanently stalled (open at the end of the drain) — the acceptance
// gate for the fault-injection subsystem. With --json the summary is
// written machine-readably. --profile / --profile-json attach the
// self-profiler (phase timers land the fault tick under fault_tick and
// the window sampler under slot_hook).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.h"
#include "fault/fault_injector.h"
#include "obs/export.h"
#include "scenario/scenario_runner.h"
#include "sim/parallel.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sorn;
  bench::ArgParser args(argc, argv);
  const std::string json_path = args.get_string("--json", "");
  const auto nodes = static_cast<NodeId>(args.get_long("--nodes", 64, 4));
  const auto cliques =
      static_cast<CliqueId>(args.get_long("--cliques", 8, 1));
  const double locality = args.get_double("--locality", 0.6, 0.0, 1.0);
  const double load = args.get_double("--load", 0.4, 0.01, 1.0);
  const Slot slots = args.get_long("--slots", 24000, 1000);
  const Slot fail_slot = args.get_long("--fail-slot", 8000, 1);
  const Slot heal_slot = args.get_long("--heal-slot", 12000, 2);
  const double fail_frac = args.get_double("--fail-frac", 0.05, 0.0, 0.9);
  const Slot window = args.get_long("--window", 500, 10);
  const Slot timeout = args.get_long("--retransmit-timeout", 512, 1);
  const int threads = static_cast<int>(
      args.get_long("--threads", ThreadPool::default_threads(), 1));
  const bench::ProfileOptions popts = bench::parse_profile_options(args);
  args.finish();
  if (heal_slot <= fail_slot || slots <= heal_slot) {
    std::fprintf(stderr,
                 "need --fail-slot < --heal-slot < --slots "
                 "(got %lld / %lld / %lld)\n",
                 static_cast<long long>(fail_slot),
                 static_cast<long long>(heal_slot),
                 static_cast<long long>(slots));
    return 2;
  }

  // The blast: fail_frac of the nodes, spread evenly so every clique
  // takes a proportional hit, all down at fail_slot and back at heal_slot.
  const int blast =
      std::max(1, static_cast<int>(fail_frac * static_cast<double>(nodes)));
  const NodeId stride = std::max<NodeId>(1, nodes / blast);
  std::vector<FaultEvent> events;
  std::vector<NodeId> victims;
  for (int i = 0; i < blast; ++i) {
    const NodeId victim = static_cast<NodeId>(i) * stride % nodes;
    victims.push_back(victim);
    events.push_back({fail_slot, FaultKind::kFailNode, victim, 0});
    events.push_back({heal_slot, FaultKind::kHealNode, victim, 0});
  }
  const FaultScript script = FaultScript::from_events(events);

  ScenarioConfig cfg;
  cfg.design = "sorn";
  cfg.nodes = nodes;
  cfg.cliques = cliques;
  cfg.locality_x = locality;
  cfg.propagation_ns = 0;
  cfg.threads = threads;
  cfg.load = load;
  cfg.slots = slots;
  cfg.retransmit_timeout = timeout;
  cfg.overrides.fault_script = &script;
  bench::apply_profile(popts, cfg);

  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  if (runner == nullptr) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    return 1;
  }

  // Windowed delivered-cell trajectory, sampled on the coordinating
  // thread just before each window's first slot. The runner ticks the
  // fault injector from the same hook (after this sampler), so fault RNG
  // stays off the parallel sweep.
  std::vector<std::uint64_t> cumulative;
  Slot last_boundary = -1;
  runner->set_slot_hook([&](SlottedNetwork& n, Slot now) {
    if (now % window == 0 && now != last_boundary) {
      last_boundary = now;
      cumulative.push_back(n.metrics().delivered_cells());
    }
  });

  if (!runner->run(&error)) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    return 1;
  }
  const SimMetrics& metrics = runner->metrics();

  std::vector<double> per_window;  // delivered cells in window i
  for (std::size_t i = 1; i < cumulative.size(); ++i)
    per_window.push_back(
        static_cast<double>(cumulative[i] - cumulative[i - 1]));
  auto window_start = [&](std::size_t i) {
    return static_cast<Slot>(i) * window;
  };

  // Pre-fault throughput: windows entirely inside [warmup, fail_slot).
  const Slot warmup = std::min<Slot>(2000, fail_slot / 4);
  double pre_fault = 0.0;
  int pre_windows = 0;
  for (std::size_t i = 0; i < per_window.size(); ++i) {
    if (window_start(i) < warmup || window_start(i) + window > fail_slot)
      continue;
    pre_fault += per_window[i];
    ++pre_windows;
  }
  if (pre_windows == 0) {
    std::fprintf(stderr, "no full pre-fault window; lower --window\n");
    return 2;
  }
  pre_fault /= pre_windows;

  // Dip depth: worst outage window relative to pre-fault.
  double dip = pre_fault;
  for (std::size_t i = 0; i < per_window.size(); ++i)
    if (window_start(i) >= fail_slot && window_start(i) < heal_slot)
      dip = std::min(dip, per_window[i]);
  const double dip_frac = pre_fault > 0.0 ? dip / pre_fault : 0.0;

  // Time-to-recover: first post-heal window that opens a run of two
  // consecutive windows at >= 90% of pre-fault (while arrivals are still
  // flowing — drain windows decay by construction).
  const double floor_cells = 0.9 * pre_fault;
  Slot recovered_at = -1;
  for (std::size_t i = 0; i + 1 < per_window.size(); ++i) {
    if (window_start(i) < heal_slot || window_start(i + 1) + window > slots)
      continue;
    if (per_window[i] >= floor_cells && per_window[i + 1] >= floor_cells) {
      recovered_at = window_start(i) + window;  // end of the first window
      break;
    }
  }
  const bool recovered = recovered_at >= 0;
  const Slot time_to_recover = recovered ? recovered_at - heal_slot : -1;
  const std::uint64_t open = metrics.open_flows();

  std::printf(
      "Fault recovery: %d nodes, %d cliques, x=%.2f, load=%.2f, "
      "%d-node blast [%lld, %lld), %d threads\n\n",
      nodes, cliques, locality, load, blast,
      static_cast<long long>(fail_slot), static_cast<long long>(heal_slot),
      threads);

  TablePrinter table({"metric", "value"});
  table.add_row({"pre-fault throughput (cells/window)",
                 format("%.1f", pre_fault)});
  table.add_row({"dip depth (worst outage window)",
                 format("%.1f (%.1f%% of pre-fault)", dip, dip_frac * 100.0)});
  table.add_row({"time-to-recover (slots after heal)",
                 recovered ? format("%lld",
                                    static_cast<long long>(time_to_recover))
                           : "never"});
  table.add_row({"retransmit events",
                 format("%llu", static_cast<unsigned long long>(
                                    metrics.retransmit_events()))});
  table.add_row({"retransmitted cells",
                 format("%llu", static_cast<unsigned long long>(
                                    metrics.retransmitted_cells()))});
  table.add_row({"duplicate deliveries",
                 format("%llu", static_cast<unsigned long long>(
                                    metrics.duplicate_cells()))});
  table.add_row({"flows recovered from stall",
                 format("%llu (mean %.0f slots stalled)",
                        static_cast<unsigned long long>(
                            metrics.recovered_flows()),
                        metrics.mean_recovery_slots())});
  table.add_row({"flows still open after drain",
                 format("%llu", static_cast<unsigned long long>(open))});
  table.print();

  if (!json_path.empty()) {
    // Everything in "metrics" here is simulator-deterministic (same seed,
    // same windows), so check_bench.py compares it near-exactly.
    const std::string doc = format(
        "{\"bench\": \"bench_fault_recovery\", \"nodes\": %d, "
        "\"blast_nodes\": %d, \"fail_slot\": %lld, \"heal_slot\": %lld, "
        "\"pre_fault_cells_per_window\": %.2f, \"dip_frac\": %.4f, "
        "\"recovered\": %s, \"time_to_recover_slots\": %lld, "
        "\"retransmit_events\": %llu, \"retransmitted_cells\": %llu, "
        "\"duplicate_cells\": %llu, \"recovered_flows\": %llu, "
        "\"open_flows\": %llu, \"metrics\": "
        "{\"pre_fault_cells_per_window\": %.2f, \"dip_frac\": %.4f, "
        "\"recovered\": %d, \"time_to_recover_slots\": %lld, "
        "\"retransmitted_cells\": %llu, \"open_flows\": %llu}}\n",
        nodes, blast, static_cast<long long>(fail_slot),
        static_cast<long long>(heal_slot), pre_fault, dip_frac,
        recovered ? "true" : "false",
        static_cast<long long>(time_to_recover),
        static_cast<unsigned long long>(metrics.retransmit_events()),
        static_cast<unsigned long long>(metrics.retransmitted_cells()),
        static_cast<unsigned long long>(metrics.duplicate_cells()),
        static_cast<unsigned long long>(metrics.recovered_flows()),
        static_cast<unsigned long long>(open), pre_fault, dip_frac,
        recovered ? 1 : 0, static_cast<long long>(time_to_recover),
        static_cast<unsigned long long>(metrics.retransmitted_cells()),
        static_cast<unsigned long long>(open));
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf("\ngate: recovered %s, open flows %llu — %s\n",
              recovered ? "yes" : "NO",
              static_cast<unsigned long long>(open),
              recovered && open == 0 ? "PASS" : "FAIL");
  return recovered && open == 0 ? 0 : 1;
}
