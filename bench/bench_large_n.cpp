// Table-1 scale (N = 4096): sparse-VOQ memory ceiling + engine throughput.
//
// The dense N x N VOQ layout made this scale unreachable: ~16.7M deques
// (gigabytes of empty-queue overhead) before the first cell moved. With
// sparse per-node storage the whole 4096-node, 16-lane flow scenario has
// to fit under a hard RSS ceiling, so this bench doubles as the memory
// regression gate: it runs the scenario at each thread count, reports
// peak RSS (getrusage ru_maxrss — a process-wide high-water mark) and
// wall-clock slots/sec, and byte-compares the metrics JSON across thread
// counts (the parallel engine's equivalence contract at full scale).
//
//   bench_large_n [--json out.json] [--nodes 4096] [--cliques 64]
//                 [--lanes 16] [--slots 400] [--drain 4000] [--load 2.0]
//                 [--flow-bytes 40960] [--threads 1,4]
//                 [--traffic-backend procedural]
//                 [--max-rss-mb 2048] [--min-slots-per-sec 10]
//                 [--profile] [--profile-json profile.json]
//
// The demand defaults to the procedural backend (O(N) state) — the dense
// matrix would reintroduce the very O(N^2) dominator this bench gates.
// All backends produce byte-identical metrics, so --traffic-backend dense
// only changes the memory column.
//
// With --max-rss-mb / --min-slots-per-sec, exits nonzero when peak RSS
// exceeds the ceiling or the slowest thread count misses the floor (the
// CI gates; 0 disables either). Load is relative to single-lane node
// bandwidth, so 16 lanes leave plenty of headroom at the default 2.0.
// --profile-json is rewritten per thread count; the file left behind is
// the last (most-threaded) run's profile, the one with pool utilization.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.h"
#include "obs/export.h"
#include "scenario/scenario_runner.h"
#include "util/rusage.h"
#include "util/table.h"

namespace {

using namespace sorn;

struct Row {
  int threads = 1;
  double seconds = 0.0;
  double slots_per_sec = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed_flows = 0;
  std::string metrics_json;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args(argc, argv);
  const std::string json_path = args.get_string("--json", "");
  const auto nodes = static_cast<NodeId>(args.get_long("--nodes", 4096, 2));
  const auto cliques =
      static_cast<CliqueId>(args.get_long("--cliques", 64, 1));
  const int lanes = static_cast<int>(args.get_long("--lanes", 16, 1));
  const Slot slots = args.get_long("--slots", 400, 1);
  const Slot drain = args.get_long("--drain", 4000, 0);
  const double load = args.get_double("--load", 2.0, 0.0);
  const std::uint64_t flow_bytes = static_cast<std::uint64_t>(
      args.get_long("--flow-bytes", 40960, 256));
  const std::vector<int> thread_counts =
      args.get_int_list("--threads", {1, 4}, 1);
  const std::string backend_name =
      args.get_string("--traffic-backend", "procedural");
  DemandBackend traffic_backend = DemandBackend::kProcedural;
  if (!parse_demand_backend(backend_name, &traffic_backend)) {
    std::fprintf(stderr,
                 "--traffic-backend: unknown backend '%s' "
                 "(dense|sparse|procedural)\n",
                 backend_name.c_str());
    return 2;
  }
  const double max_rss_mb = args.get_double("--max-rss-mb", 0.0, 0.0);
  const double min_slots_per_sec =
      args.get_double("--min-slots-per-sec", 0.0, 0.0);
  const bench::ProfileOptions popts = bench::parse_profile_options(args);
  args.finish();

  std::printf(
      "Large-N scale check: %d nodes, %d cliques, %d lanes, load %.2f, "
      "%lld-slot horizon + %lld drain budget, fixed %llu-byte flows\n\n",
      nodes, cliques, lanes, load, static_cast<long long>(slots),
      static_cast<long long>(drain),
      static_cast<unsigned long long>(flow_bytes));

  std::vector<Row> rows;
  for (const int t : thread_counts) {
    ScenarioConfig cfg;
    cfg.design = "sorn";
    cfg.nodes = nodes;
    cfg.cliques = cliques;
    cfg.locality_x = 0.6;
    cfg.traffic_backend = traffic_backend;
    cfg.lanes = lanes;
    cfg.propagation_ns = 0;
    cfg.threads = t;
    cfg.workload = WorkloadKind::kFlows;
    cfg.load = load;
    cfg.slots = slots;
    cfg.drain_slots = drain;
    cfg.flow_size = FlowSizeKind::kFixed;
    cfg.fixed_flow_bytes = flow_bytes;
    bench::apply_profile(popts, cfg);

    std::string error;
    auto runner = ScenarioRunner::create(cfg, &error);
    if (runner == nullptr) {
      std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
      return 1;
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (!runner->run(&error)) {
      std::fprintf(stderr, "run failed: %s\n", error.c_str());
      return 1;
    }
    const auto t1 = std::chrono::steady_clock::now();

    Row row;
    row.threads = t;
    row.seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    row.slots_per_sec =
        static_cast<double>(runner->metrics().slots_run()) / row.seconds;
    row.delivered = runner->metrics().delivered_cells();
    row.dropped = runner->metrics().dropped_cells();
    row.completed_flows = runner->metrics().completed_flows();
    row.metrics_json = runner->metrics_json();
    rows.push_back(row);
  }

  // Full-scale equivalence: every thread count must produce the same
  // metrics document, byte for byte.
  bool equivalent = true;
  for (const Row& row : rows)
    if (row.metrics_json != rows.front().metrics_json) equivalent = false;

  const double rss_mb = peak_rss_mb();
  double slowest = rows.empty() ? 0.0 : rows.front().slots_per_sec;
  for (const Row& row : rows)
    if (row.slots_per_sec < slowest) slowest = row.slots_per_sec;

  TablePrinter table(
      {"threads", "seconds", "slots/sec", "delivered", "flows done"});
  for (const Row& row : rows) {
    table.add_row(
        {format("%d", row.threads), format("%.2f", row.seconds),
         format("%.0f", row.slots_per_sec),
         format("%llu", static_cast<unsigned long long>(row.delivered)),
         format("%llu",
                static_cast<unsigned long long>(row.completed_flows))});
  }
  table.print();
  std::printf("\npeak RSS: %.0f MB (process high-water mark)\n", rss_mb);
  std::printf("equivalence across thread counts: %s\n",
              equivalent ? "OK (identical metrics JSON)" : "FAILED");

  if (!json_path.empty()) {
    // "metrics" holds the flat numeric gates ci/check_bench.py compares
    // against the committed BENCH_large_n.json baseline: deterministic
    // sim counts (near-exact tolerance) plus timing/memory (loose ratio).
    std::string metrics =
        "{\"peak_rss_mb\": " + format("%.1f", rss_mb) +
        ", \"equivalent\": " + (equivalent ? "1" : "0") +
        ", \"delivered_cells\": " +
        format("%llu",
               static_cast<unsigned long long>(
                   rows.empty() ? 0 : rows.front().delivered)) +
        ", \"completed_flows\": " +
        format("%llu",
               static_cast<unsigned long long>(
                   rows.empty() ? 0 : rows.front().completed_flows));
    for (const Row& row : rows)
      metrics += ", \"slots_per_sec_t" + format("%d", row.threads) +
                 "\": " + format("%.1f", row.slots_per_sec);
    metrics += "}";
    const std::string doc =
        "{\"bench\": \"bench_large_n\", \"nodes\": " + format("%d", nodes) +
        ", \"cliques\": " + format("%d", cliques) +
        ", \"lanes\": " + format("%d", lanes) +
        ", \"slots\": " + format("%lld", static_cast<long long>(slots)) +
        ", \"peak_rss_mb\": " + format("%.1f", rss_mb) +
        ", \"equivalent\": " + (equivalent ? "true" : "false") +
        ", \"metrics\": " + metrics +
        ", \"rows\": " + table.to_json() + "}\n";
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!equivalent) return 1;
  if (max_rss_mb > 0.0) {
    std::printf("RSS gate: %.0f MB (ceiling %.0f MB) — %s\n", rss_mb,
                max_rss_mb, rss_mb <= max_rss_mb ? "PASS" : "FAIL");
    if (rss_mb > max_rss_mb) return 1;
  }
  if (min_slots_per_sec > 0.0) {
    std::printf("throughput gate: %.0f slots/sec (floor %.0f) — %s\n",
                slowest, min_slots_per_sec,
                slowest >= min_slots_per_sec ? "PASS" : "FAIL");
    if (slowest < min_slots_per_sec) return 1;
  }
  return 0;
}
