// Sec. 4 scaling claim: SORN lowers intrinsic latency by orders of
// magnitude versus a flat 1D ORN at datacenter scale, while keeping
// throughput near the 1D ORN's 50%.
//
// Sweeps N and prints min worst-case latency (us) for 1D, 2D, 3D ORNs and
// SORN (Nc chosen ~ sqrt(N), x = 0.56), plus each design's worst-case
// throughput.
#include <cmath>
#include <cstdio>

#include "analysis/models.h"
#include "util/table.h"

int main() {
  using namespace sorn;
  const analysis::DeploymentParams base;  // u=16, 100 ns slots, 500 ns prop
  const double x = base.locality_x;
  const double q = analysis::sorn_optimal_q(x);

  std::printf(
      "Latency scaling with network size (u=%d, slot=%.0fns, "
      "prop=%.0fns, x=%.2f)\n\n",
      base.uplinks, base.slot_ns, base.propagation_ns, x);

  TablePrinter table({"N", "1D ORN (us)", "2D ORN (us)", "3D ORN (us)",
                      "SORN intra (us)", "SORN inter (us)", "SORN Nc"});
  for (const NodeId n : {256, 1024, 4096, 16384, 65536}) {
    // Nc ~ sqrt(N), rounded to a power of two dividing N.
    CliqueId nc = 1;
    while (nc * 2 <= static_cast<CliqueId>(std::sqrt(n))) nc *= 2;
    const double l1 = analysis::min_latency_us(analysis::orn1d_delta_m(n),
                                               base.uplinks, base.slot_ns, 2,
                                               base.propagation_ns);
    const double l2 = analysis::min_latency_us(analysis::orn_hd_delta_m(n, 2),
                                               base.uplinks, base.slot_ns, 4,
                                               base.propagation_ns);
    const double l3 = analysis::min_latency_us(analysis::orn_hd_delta_m(n, 3),
                                               base.uplinks, base.slot_ns, 6,
                                               base.propagation_ns);
    const double li = analysis::min_latency_us(
        analysis::sorn_delta_m_intra(n, nc, q), base.uplinks, base.slot_ns, 2,
        base.propagation_ns);
    const double le = analysis::min_latency_us(
        analysis::sorn_delta_m_inter_table(n, nc, q), base.uplinks,
        base.slot_ns, 3, base.propagation_ns);
    table.add_row({format("%d", n), format("%.2f", l1), format("%.2f", l2),
                   format("%.2f", l3), format("%.2f", li), format("%.2f", le),
                   format("%d", nc)});
  }
  table.print();

  std::printf(
      "\nWorst-case throughput: 1D = 50%%, 2D = 25%%, 3D = 16.7%%, "
      "SORN(x=%.2f) = %.2f%%\n"
      "Shape check: SORN tracks the 2D ORN's latency scaling while keeping\n"
      "throughput near the 1D ORN's (paper Sec. 4, Table 1 discussion).\n",
      x, analysis::sorn_throughput(x) * 100.0);
  return 0;
}
