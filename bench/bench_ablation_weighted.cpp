// Ablation of weighted inter-clique schedules (paper Sec. 5,
// "Expressivity": "we may encode gravity models ... or generally allow
// higher provisioning between certain spatial groups").
//
// Workload: a clique-ring pattern — node loads are balanced, but most of
// each clique's inter-clique demand goes to one neighbor clique. The
// uniform SORN splits inter slots evenly across all Nc-1 clique pairs, so
// the ring pair saturates while the other pairs' slots idle; the weighted
// schedule (BvN-decomposed aggregate) provisions inter bandwidth in
// proportion to demand. Sweeps the demand share alpha from pure uniform
// to strongly demand-matched. (A gravity pattern with hot *cliques* would
// not show this: there the hot clique's node bandwidth binds first and no
// inter reweighting can help.)
#include <cstdio>

#include "core/sorn.h"
#include "sim/saturation.h"
#include "traffic/patterns.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 64;
constexpr CliqueId kCliques = 8;

double measure(const SornNetwork& net, const TrafficMatrix& tm) {
  SlottedNetwork sim = net.make_network();
  SaturationSource source(&tm, SaturationConfig{});
  return source.measure(sim, 5000, 8000);
}

}  // namespace

int main() {
  const auto cliques = CliqueAssignment::contiguous(kNodes, kCliques);
  // Balanced node loads, strongly skewed clique-pair structure: 85% of
  // each clique's inter traffic goes to the next clique in a ring.
  const TrafficMatrix tm = patterns::clique_ring(cliques, 0.4, 0.85);
  const double x = tm.locality_ratio(cliques);

  std::printf(
      "Ablation: weighted vs uniform inter-clique schedules on a clique-"
      "ring workload\n(%d nodes, %d cliques, 85%% of inter demand to the "
      "next clique; x=%.3f)\n\n",
      kNodes, kCliques, x);

  const Rational q = Rational::approximate(analysis::sorn_optimal_q(x), 8);

  TablePrinter table({"inter schedule", "demand share alpha", "throughput r"});

  {
    SornConfig cfg;
    cfg.nodes = kNodes;
    cfg.cliques = kCliques;
    cfg.q = q;
    cfg.propagation_per_hop = 0;
    const SornNetwork uniform_net = SornNetwork::build(cfg);
    table.add_row({"uniform round-robin", "-",
                   format("%.4f", measure(uniform_net, tm))});
  }

  for (const double alpha : {0.3, 0.5, 0.7, 0.9}) {
    SornConfig cfg;
    cfg.nodes = kNodes;
    cfg.cliques = kCliques;
    cfg.q = q;
    cfg.propagation_per_hop = 0;
    cfg.inter_clique_weights = tm.aggregate(cliques);
    cfg.weighted_options.demand_alpha = alpha;
    const SornNetwork weighted_net = SornNetwork::build(cfg);
    table.add_row({"BvN demand-weighted", format("%.1f", alpha),
                   format("%.4f", measure(weighted_net, tm))});
  }
  table.print();

  std::printf(
      "\nShape check: throughput rises with the demand share as inter\n"
      "bandwidth tracks the gravity aggregate (uniform schedules cap at\n"
      "the hottest clique pair's bottleneck).\n");
  return 0;
}
