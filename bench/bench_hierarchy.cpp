// Two-level hierarchical SORN (Sec. 6 extension): sweep the locality split
// (x1 = pod, x2 = cluster, x3 = rest) and compare against flat SORN built
// at pod granularity.
//
// The tradeoff the paper sketches: the extra hierarchy level costs some
// throughput on cluster-crossing traffic (a 4th hop: mean hops
// 2 + x2 + 2*x3 vs the flat 3 - x1) but buys intrinsic latency — waits are
// split across a pod-level and a cluster-level round robin instead of one
// robin over all pods — and shrinks synchronization domains (Sec. 6).
#include <cstdio>

#include "analysis/models.h"
#include "routing/hier_routing.h"
#include "sim/saturation.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 64;

}  // namespace

int main() {
  const Hierarchy h = Hierarchy::regular(kNodes, 4, 4);
  std::printf(
      "Hierarchical SORN: %d nodes = %d clusters x %d pods x %d "
      "(theory r = 1/(2 + x2 + 2*x3))\n\n",
      kNodes, h.cluster_count(), h.pods_per_cluster(), h.pod_size());

  TablePrinter table({"x1 (pod)", "x2 (cluster)", "r theory", "r simulated",
                      "flat-SORN r", "dm pod", "dm cluster", "dm global"});
  const double grid[][2] = {{0.7, 0.2}, {0.5, 0.3}, {0.4, 0.4},
                            {0.3, 0.3}, {0.2, 0.2}};
  for (const auto& [x1, x2] : grid) {
    const auto shares = analysis::hier_optimal_shares(x1, x2);
    const CircuitSchedule schedule = ScheduleBuilder::sorn_hierarchical(
        h, {shares.intra, shares.inter, shares.global});
    const HierSornRouter router(&schedule, &h, LbMode::kRandom);
    NetworkConfig cfg;
    cfg.propagation_per_hop = 0;
    SlottedNetwork net(&schedule, &router, cfg);
    const TrafficMatrix tm = patterns::hier_locality_mix(h, x1, x2);
    SaturationSource source(&tm, SaturationConfig{});
    const double r_sim = source.measure(net, 5000, 8000);

    table.add_row(
        {format("%.1f", x1), format("%.1f", x2),
         format("%.4f", analysis::hier_throughput(x1, x2)),
         format("%.4f", r_sim),
         format("%.4f", analysis::sorn_throughput(x1)),
         format("%.0f", analysis::hier_delta_m_pod(h.pod_size(), shares)),
         format("%.0f", analysis::hier_delta_m_cluster(
                            h.pod_size(), h.pods_per_cluster(), shares)),
         format("%.0f", analysis::hier_delta_m_global(
                            h.pod_size(), h.pods_per_cluster(),
                            h.cluster_count(), shares))});
  }
  table.print();

  // Latency comparison against flat SORN at pod granularity, Table 1
  // deployment parameters (N = 4096, 16 pods of 16 per cluster).
  std::printf(
      "\nIntrinsic latency at N=4096 (16 clusters x 16 pods x 16 nodes, "
      "x1=0.4, x2=0.3):\n");
  const auto big = analysis::hier_optimal_shares(0.4, 0.3);
  const double flat_q = analysis::sorn_optimal_q(0.4);
  TablePrinter lat({"design", "dm local", "dm mid", "dm far"});
  lat.add_row(
      {"flat SORN, 256 pod-cliques",
       format("%.0f", analysis::sorn_delta_m_intra(4096, 256, flat_q)),
       format("%.0f", analysis::sorn_delta_m_inter_table(4096, 256, flat_q)),
       "-"});
  lat.add_row({"hierarchical SORN",
               format("%.0f", analysis::hier_delta_m_pod(16, big)),
               format("%.0f", analysis::hier_delta_m_cluster(16, 16, big)),
               format("%.0f", analysis::hier_delta_m_global(16, 16, 16, big))});
  lat.print();
  std::printf(
      "\nShape check: the hierarchy splits one 255-pod robin into a 15-pod\n"
      "and a 15-cluster robin — far traffic waits two short robins instead\n"
      "of one long one, at a modest throughput cost vs flat pod-SORN.\n");
  return 0;
}
