// Regenerates Table 1 of the paper: latency and throughput of oblivious
// designs vs SORN for a 4096-rack DCN (16 uplinks, 100 ns slots, 500 ns
// propagation per hop, locality ratio 0.56, Opera at 90 us slots).
//
// Paper reference values are printed alongside for comparison; see
// EXPERIMENTS.md for the two sub-percent rounding deviations.
#include <cstdio>

#include "analysis/models.h"
#include "util/table.h"

namespace {

struct PaperRow {
  const char* delta_m;
  const char* latency_us;
  const char* throughput;
  const char* bw_cost;
};

}  // namespace

int main() {
  using namespace sorn;
  const analysis::DeploymentParams params;
  const auto rows = analysis::table1(params);

  // Values transcribed from the paper's Table 1, same row order.
  const PaperRow paper[] = {
      {"4095", "26.59", "50%", "2x"},      {"0", "2", "31.25%", "3.2x"},
      {"4095", "23034", "31.25%", "3.2x"}, {"252", "3.57", "25%", "4x"},
      {"77", "1.48", "40.98%", "2.44x"},   {"364", "3.77", "40.98%", "2.44x"},
      {"155", "1.97", "40.98%", "2.44x"},  {"296", "3.35", "40.98%", "2.44x"},
  };

  std::printf(
      "Table 1: latency/throughput comparison, %d-rack DCN "
      "(u=%d, slot=%.0fns, prop=%.0fns, x=%.2f)\n\n",
      params.nodes, params.uplinks, params.slot_ns, params.propagation_ns,
      params.locality_x);

  TablePrinter table({"System", "Traffic", "Max hops", "delta_m",
                      "Min latency (us)", "Thpt", "Norm BW cost",
                      "paper: dm", "paper: lat", "paper: thpt"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    table.add_row({r.system, r.traffic_class, format("%d", r.max_hops),
                   format("%.0f", r.delta_m),
                   format("%.2f", r.min_latency_us),
                   format("%.2f%%", r.throughput * 100.0),
                   format("%.2fx", r.bw_cost), paper[i].delta_m,
                   paper[i].latency_us, paper[i].throughput});
  }
  table.print();

  std::printf(
      "\nKey shape checks:\n"
      "  SORN vs 1D ORN latency reduction (inter, Nc=64): %.1fx\n"
      "  SORN vs 2D ORN throughput gain:                  %.2fx\n"
      "  SORN throughput vs 1D ORN:                       %.2fx\n",
      rows[0].min_latency_us / rows[5].min_latency_us,
      rows[4].throughput / rows[3].throughput,
      rows[4].throughput / rows[0].throughput);
  return 0;
}
