// Telemetry overhead on the simulator hot path.
//
// Acceptance gate for the observability subsystem: with telemetry
// disabled (no Telemetry attached — the default every existing caller
// gets), SlottedNetwork::step() must run within 2% of the seed baseline.
// The instrumentation compiled into the hot path is one null check per
// event site, so the "detached" mode below *is* the baseline path; the
// bench quantifies what each successive level of observability costs:
//
//   detached   — no Telemetry attached (seed-equivalent configuration;
//                the profiler's null check per phase site is part of it)
//   idle       — Telemetry attached, no trace sink, no sampler: every
//                event site takes its early-out branch
//   sampled    — time series sampled every 100 slots, still no sink
//   traced     — NullTraceSink attached (events are formatted to JSON
//                and discarded) + sampling every 100 slots
//   profiled   — Profiler attached (no Telemetry): every phase site takes
//                two steady_clock reads per slot, gauges sampled on the
//                accountant's cadence. Measured and reported, not gated:
//                attaching the profiler is an explicit opt-in.
//
// Saturated 64-node SORN fabric; best of `kReps` repetitions to shed
// scheduler noise. Pump cost is part of every mode equally. With --json,
// the per-mode ns/slot and overhead percentages are written
// machine-readably under a "metrics" key.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_args.h"
#include "core/sorn.h"
#include "obs/export.h"
#include "obs/prof/profiler.h"
#include "obs/telemetry.h"
#include "sim/saturation.h"
#include "traffic/patterns.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 64;
Slot g_warmup_slots = 2000;
Slot g_slots = 20000;
int g_reps = 5;

double run_once(Telemetry* telemetry, Profiler* profiler) {
  SornConfig cfg;
  cfg.nodes = kNodes;
  cfg.cliques = 8;
  cfg.locality_x = 0.6;
  cfg.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();
  if (telemetry != nullptr) sim.set_telemetry(telemetry);
  if (profiler != nullptr) sim.set_profiler(profiler);
  const TrafficMatrix tm = patterns::locality_mix(net.cliques(), 0.6);
  SaturationSource source(&tm, SaturationConfig{});
  for (Slot s = 0; s < g_warmup_slots; ++s) {
    source.pump(sim);
    sim.step();
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (Slot s = 0; s < g_slots; ++s) {
    source.pump(sim);
    sim.step();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return ns / static_cast<double>(g_slots);
}

double best_of(Telemetry* (*make)(), void (*destroy)(Telemetry*),
               bool profiled = false) {
  double best = 1e18;
  for (int r = 0; r < g_reps; ++r) {
    Telemetry* t = make();
    Profiler profiler;  // fresh per rep so counters never carry over
    const double ns = run_once(t, profiled ? &profiler : nullptr);
    destroy(t);
    if (ns < best) best = ns;
  }
  return best;
}

NullTraceSink null_sink;

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args(argc, argv);
  g_slots = args.get_long("--slots", g_slots, 1);
  g_warmup_slots = args.get_long("--warmup", g_warmup_slots, 0);
  g_reps = static_cast<int>(args.get_long("--reps", g_reps, 1));
  const std::string json_path = args.get_string("--json", "");
  args.finish();
  std::printf(
      "Telemetry overhead, %d-node saturated SORN fabric, %lld slots/run, "
      "best of %d:\n\n",
      kNodes, static_cast<long long>(g_slots), g_reps);

  const double detached = best_of(
      [] { return static_cast<Telemetry*>(nullptr); }, [](Telemetry*) {});
  const double idle = best_of([] { return new Telemetry(); },
                              [](Telemetry* t) { delete t; });
  const double sampled = best_of(
      [] { return new Telemetry(TelemetryOptions{.sample_every = 100}); },
      [](Telemetry* t) { delete t; });
  const double traced = best_of(
      [] {
        auto* t = new Telemetry(TelemetryOptions{.sample_every = 100});
        t->set_trace_sink(&null_sink);
        return t;
      },
      [](Telemetry* t) { delete t; });
  const double profiled =
      best_of([] { return static_cast<Telemetry*>(nullptr); },
              [](Telemetry*) {}, /*profiled=*/true);

  TablePrinter table({"mode", "ns/slot", "overhead vs detached"});
  auto pct = [&](double v) {
    return format("%+.2f%%", (v / detached - 1.0) * 100.0);
  };
  table.add_row({"detached (seed path)", format("%.1f", detached), "-"});
  table.add_row({"idle (attached, no sink)", format("%.1f", idle), pct(idle)});
  table.add_row(
      {"sampled (every 100 slots)", format("%.1f", sampled), pct(sampled)});
  table.add_row(
      {"traced (null sink + sampling)", format("%.1f", traced), pct(traced)});
  table.add_row(
      {"profiled (phase timers + gauges)", format("%.1f", profiled),
       pct(profiled)});
  table.print();

  const double idle_overhead = (idle / detached - 1.0) * 100.0;
  const double profiled_overhead = (profiled / detached - 1.0) * 100.0;
  std::printf(
      "\nGate: idle-telemetry overhead %.2f%% (budget 2%%) — %s.\n"
      "Attached-profiler overhead: %.2f%% (reported, not gated — the\n"
      "profiler is an explicit opt-in; detached, its cost is the same\n"
      "null check the gate above already covers).\n"
      "Note: 'detached' is byte-for-byte the configuration every caller\n"
      "gets unless it opts into telemetry; its only added cost over the\n"
      "pre-observability simulator is one predictable null check per slot\n"
      "and per drop/inject event site.\n",
      idle_overhead, idle_overhead <= 2.0 ? "PASS" : "FAIL",
      profiled_overhead);

  if (!json_path.empty()) {
    const std::string doc = format(
        "{\"bench\": \"bench_obs_overhead\", \"nodes\": %d, "
        "\"slots\": %lld, \"reps\": %d, \"metrics\": "
        "{\"detached_ns_per_slot\": %.1f, \"idle_ns_per_slot\": %.1f, "
        "\"sampled_ns_per_slot\": %.1f, \"traced_ns_per_slot\": %.1f, "
        "\"profiled_ns_per_slot\": %.1f, \"idle_overhead_pct\": %.2f, "
        "\"profiled_overhead_pct\": %.2f}}\n",
        kNodes, static_cast<long long>(g_slots), g_reps, detached, idle,
        sampled, traced, profiled, idle_overhead, profiled_overhead);
    if (!write_text_file(json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return idle_overhead <= 2.0 ? 0 : 1;
}
