// Sec. 6 claim: "Modularity can also relax time-synchronization
// requirements, as a node participates in independent schedules on each
// hierarchical level, reducing the diameter of an individual
// synchronization domain. Smaller schedules may also better tolerate
// larger time slots and synchronization overheads."
//
// A flat oblivious fabric synchronizes all N nodes into one domain; SORN
// synchronizes each clique independently (intra slots) plus a clique-level
// domain (inter slots). Guard time grows with domain size; this bench
// sweeps N and prints the slot efficiency of each design for two slot
// sizes, plus the SORN throughput including the guard penalty.
#include <cmath>
#include <cstdio>

#include "analysis/models.h"
#include "util/table.h"

int main() {
  using namespace sorn;
  // Guard model: 5 ns base skew, +3 ns per doubling of the sync domain.
  const double base_ns = 5.0;
  const double per_level_ns = 3.0;
  const double x = 0.56;

  std::printf(
      "Synchronization-overhead ablation (guard = %.0f ns + %.0f ns/log2 "
      "domain; x=%.2f)\n\n",
      base_ns, per_level_ns, x);

  for (const double slot_ns : {50.0, 100.0}) {
    std::printf("slot = %.0f ns:\n", slot_ns);
    TablePrinter table({"N", "flat guard (ns)", "flat eff.",
                        "SORN intra guard (ns)", "SORN weighted eff.",
                        "flat r x eff.", "SORN r x eff."});
    for (const NodeId n : {256, 1024, 4096, 16384, 65536}) {
      CliqueId nc = 1;
      while (nc * 2 <= static_cast<CliqueId>(std::sqrt(n))) nc *= 2;
      const NodeId clique = n / nc;
      const double flat_guard = analysis::sync_guard_ns(base_ns, per_level_ns, n);
      const double intra_guard =
          analysis::sync_guard_ns(base_ns, per_level_ns, clique);
      const double inter_guard =
          analysis::sync_guard_ns(base_ns, per_level_ns, nc);
      const double flat_eff = analysis::slot_efficiency(slot_ns, flat_guard);
      // SORN: intra slots (share q/(q+1)) sync within the clique, inter
      // slots within the clique-level domain.
      const double q = analysis::sorn_optimal_q(x);
      const double intra_share = q / (q + 1.0);
      const double sorn_eff =
          intra_share * analysis::slot_efficiency(slot_ns, intra_guard) +
          (1.0 - intra_share) * analysis::slot_efficiency(slot_ns, inter_guard);
      table.add_row(
          {format("%d", n), format("%.0f", flat_guard),
           format("%.3f", flat_eff), format("%.0f", intra_guard),
           format("%.3f", sorn_eff), format("%.3f", 0.5 * flat_eff),
           format("%.3f", analysis::sorn_throughput(x) * sorn_eff)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Shape check: the flat design's guard grows with log2(N) while\n"
      "SORN's dominant (intra) domain stays clique-sized; at small slots\n"
      "the guard erodes the flat design's 50%% headline faster than\n"
      "SORN's 1/(3-x).\n");
  return 0;
}
