// Traffic engineering with weighted schedules and hierarchy (paper Sec. 5
// "Expressivity" and Sec. 6): three fabrics for the same 64-node DCN whose
// inter-group demand follows a skewed ring, compared end to end:
//   1. flat SORN (uniform inter-clique round robin),
//   2. weighted SORN (BvN-provisioned inter slots),
//   3. hierarchical SORN (pods in clusters).
//
// All three are registry designs run through the same ScenarioRunner
// saturation scenario over one shared measured matrix (a traffic
// override, since the fabrics must be compared on identical demand).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/models.h"
#include "scenario/scenario_runner.h"
#include "topo/hierarchy.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 64;
constexpr CliqueId kCliques = 8;

double measure(const ScenarioConfig& cfg) {
  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  if (runner == nullptr || !runner->run(&error)) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    std::exit(1);
  }
  return runner->saturation_r();
}

}  // namespace

int main() {
  const auto cliques = CliqueAssignment::contiguous(kNodes, kCliques);
  const TrafficMatrix tm = patterns::clique_ring(cliques, 0.4, 0.85);
  const double x = tm.locality_ratio(cliques);
  const Rational q = Rational::approximate(analysis::sorn_optimal_q(x), 8);
  std::printf(
      "Traffic engineering on a skewed clique-ring workload "
      "(%d nodes, x=%.2f, 85%% of inter demand to the ring neighbor)\n\n",
      kNodes, x);

  ScenarioConfig base;
  base.nodes = kNodes;
  base.cliques = kCliques;
  base.propagation_ns = 0;
  base.workload = WorkloadKind::kSaturation;
  base.warmup_slots = 5000;
  base.measure_slots = 8000;
  base.overrides.traffic = &tm;

  TablePrinter table({"fabric", "throughput r", "notes"});

  {
    ScenarioConfig cfg = base;
    cfg.design = "sorn";
    cfg.q_num = q.num;
    cfg.q_den = q.den;
    table.add_row({"flat SORN, uniform inter", format("%.4f", measure(cfg)),
                   "inter slots split over all 7 clique pairs"});
  }
  {
    ScenarioConfig cfg = base;
    cfg.design = "sorn";
    cfg.q_num = q.num;
    cfg.q_den = q.den;
    cfg.inter_clique_weights = tm.aggregate(cliques);
    cfg.weighted_alpha = 0.85;
    table.add_row({"weighted SORN (BvN)", format("%.4f", measure(cfg)),
                   "inter slots track the measured aggregate"});
  }
  {
    // Hierarchy aligned with the ring: 4 clusters of 2 pods. Ring
    // neighbors often share a cluster, capturing part of the skew
    // structurally.
    ScenarioConfig cfg = base;
    cfg.design = "hier";
    cfg.clusters = 4;
    cfg.pods_per_cluster = 2;
    const Hierarchy h =
        Hierarchy::regular(kNodes, cfg.clusters, cfg.pods_per_cluster);
    const HierLocality loc = patterns::hier_locality(h, tm);
    cfg.pod_locality_x1 = loc.pod;
    cfg.cluster_locality_x2 = loc.cluster;
    table.add_row({"hierarchical SORN (4x2 pods)",
                   format("%.4f", measure(cfg)),
                   format("x1=%.2f x2=%.2f x3=%.2f", loc.pod, loc.cluster,
                          loc.global())});
  }
  table.print();

  std::printf(
      "\nThe weighted fabric provisions the hot clique pairs directly; the\n"
      "hierarchy helps only as far as the skew aligns with its levels.\n"
      "All three keep the fixed-superset-of-neighbors property, so any of\n"
      "them can be swapped in live by the reconfiguration manager.\n");
  return 0;
}
