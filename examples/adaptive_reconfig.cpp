// Demonstrates the full semi-oblivious control loop (paper Sec. 5): a
// running network observed over measurement epochs, a macro-pattern shift
// mid-run, change detection, and an epoch-synchronous schedule swap with
// in-flight traffic preserved.
#include <cstdio>

#include "control/control_plane.h"
#include "core/sorn.h"
#include "sim/saturation.h"
#include "traffic/patterns.h"
#include "traffic/trace.h"
#include "util/table.h"

int main() {
  using namespace sorn;
  constexpr NodeId kNodes = 64;
  constexpr Slot kEpochSlots = 4000;

  SyntheticTrace::Config tcfg;
  tcfg.nodes = kNodes;
  tcfg.group_size = 8;
  tcfg.burst_sigma = 0.4;
  tcfg.seed = 31;
  SyntheticTrace trace(tcfg);

  // Bootstrap network: flat SORN (singleton cliques) until the control
  // plane has learned something.
  SornConfig cfg;
  cfg.nodes = kNodes;
  cfg.cliques = kNodes;  // flat
  cfg.propagation_per_hop = 0;
  SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();

  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {4, 8};
  opts.optimizer.max_q_denominator = 6;
  opts.replan_threshold = 0.3;
  opts.reconfig.update_delay_slots = 100;  // control-plane push latency
  opts.reconfig.track_nic_rollout = true;  // model Fig. 2(c) table updates
  ControlPlane cp(kNodes, opts);

  TablePrinter timeline({"epoch", "event", "plan Nc", "plan locality",
                         "measured r"});

  for (int epoch = 0; epoch < 10; ++epoch) {
    if (epoch == 5) {
      trace.shuffle_placement();  // jobs migrate: co-location changes
    }
    const TrafficMatrix observed = trace.epoch_matrix();
    const bool replanned = cp.on_epoch(observed, sim.now());

    // Drive one epoch of saturated traffic, ticking the reconfig manager.
    // Demand follows the paper's analysis model: locality x = 0.7 under
    // the *current* placement.
    const TrafficMatrix demand =
        patterns::locality_mix(trace.ground_truth_cliques(), 0.7);
    SaturationSource source(&demand, SaturationConfig{});
    sim.reset_metrics();
    for (Slot s = 0; s < kEpochSlots; ++s) {
      cp.tick(sim, sim.now());
      source.pump(sim);
      sim.step();
    }
    const double r = sim.metrics().delivered_per_slot(kNodes, 1);

    std::string event;
    if (epoch == 5) event = "WORKLOAD SHIFT";
    if (replanned) event += event.empty() ? "replanned" : " + replanned";
    if (event.empty()) event = "-";
    timeline.add_row(
        {format("%d", epoch), event,
         format("%d", cp.last_plan().cliques.clique_count()),
         format("%.3f", cp.last_plan().locality_x), format("%.4f", r)});
  }
  timeline.print();

  std::printf(
      "\nreplans: %llu, swaps applied: %llu\n",
      static_cast<unsigned long long>(cp.replans()),
      static_cast<unsigned long long>(cp.reconfig().swaps_applied()));
  if (cp.reconfig().last_rollout().has_value()) {
    const auto& rollout = *cp.reconfig().last_rollout();
    std::printf(
        "last NIC rollout: %zu nodes, %zu table entries staged, %zu drain\n"
        "neighbors (fixed superset => 0), synchronized flip after %.0f us.\n",
        rollout.nodes, rollout.total_entries, rollout.drain_neighbors_total,
        rollout.total_update_us);
  }
  std::printf(
      "The plan re-locks onto the shifted structure within an epoch or two;\n"
      "throughput dips while mismatched and recovers after the swap.\n");
  return 0;
}
