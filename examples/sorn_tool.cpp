// sorn_tool — command-line frontend to the library.
//
//   sorn_tool plan --matrix tm.csv [--nc 4,8,16] [--weighted]
//       Read a measured traffic matrix (CSV) and print the control
//       plane's plan: clique assignment quality, q*, predicted
//       throughput and intrinsic latency.
//
//   sorn_tool schedule --nodes 16 --cliques 4 --qnum 3 --qden 1
//       Print one period of the SORN circuit schedule.
//
//   sorn_tool simulate --nodes 64 --cliques 8 --locality 0.56
//                      [--load 0.3] [--slots 30000] [--threads N]
//                      [--seed 42]
//                      [--trace run.jsonl] [--metrics-json run.json]
//                      [--timeseries-csv run.csv] [--sample-every 10]
//                      [--fault-script faults.txt]
//                      [--mtbf S --mttr S] [--circuit-mtbf S --circuit-mttr S]
//                      [--fault-seed 1]
//                      [--retransmit-timeout S] [--retransmit-max-attempts 8]
//       Run an open-loop pFabric workload on a SORN fabric and print
//       throughput/FCT metrics. --threads shards the slot engine across
//       N workers (default: hardware threads) with byte-identical output
//       at any N. The telemetry flags additionally write a JSONL event
//       trace, a full-run JSON summary, and/or a per-slot time-series CSV
//       (decimated to every k-th slot). The fault flags inject a scripted
//       and/or stochastic (MTBF/MTTR, in slots) failure timeline; with
//       --retransmit-timeout, stalled flows re-admit their missing cells
//       with exponential backoff. Fault RNG lives on the coordinating
//       thread, so faulted runs stay byte-identical at any --threads.
//
// Run without arguments for usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/models.h"
#include "fault/fault_injector.h"
#include "obs/export.h"
#include "control/hier_optimizer.h"
#include "control/optimizer.h"
#include "core/sorn.h"
#include "sim/workload_driver.h"
#include "traffic/matrix_io.h"
#include "traffic/patterns.h"
#include "util/table.h"

namespace {

using namespace sorn;

// Minimal --key value parser; flags without a value store "1".
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
      std::exit(2);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

long flag_long(const std::map<std::string, std::string>& flags,
               const std::string& key, long fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atol(it->second.c_str());
}

double flag_double(const std::map<std::string, std::string>& flags,
                   const std::string& key, double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

std::vector<CliqueId> parse_nc_list(const std::string& csv) {
  std::vector<CliqueId> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    out.push_back(static_cast<CliqueId>(std::atol(csv.c_str() + pos)));
    const std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int cmd_plan(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("matrix");
  if (it == flags.end()) {
    std::fprintf(stderr, "plan requires --matrix <file.csv>\n");
    return 2;
  }
  const auto tm = load_matrix_csv(it->second);
  if (!tm.has_value()) {
    std::fprintf(stderr, "could not read a traffic matrix from %s\n",
                 it->second.c_str());
    return 1;
  }
  SornOptimizer::Options opts;
  if (flags.count("nc") != 0)
    opts.candidate_nc = parse_nc_list(flags.at("nc"));
  opts.weighted_inter = flags.count("weighted") != 0;
  const SornOptimizer optimizer(opts);
  const SornPlan plan = optimizer.plan(*tm);

  std::printf("plan for %d nodes:\n", tm->node_count());
  std::printf("  cliques:            %d x %d nodes\n",
              plan.cliques.clique_count(),
              plan.cliques.clique_size(0));
  std::printf("  locality x:         %.4f\n", plan.locality_x);
  std::printf("  oversubscription q: %lld/%lld (%.3f)\n",
              static_cast<long long>(plan.q.num),
              static_cast<long long>(plan.q.den), plan.q.value());
  std::printf("  predicted r:        %.4f\n", plan.predicted_throughput);
  std::printf("  delta_m intra/inter: %.0f / %.0f circuits\n",
              plan.predicted_delta_m_intra, plan.predicted_delta_m_inter);
  std::printf("  weighted inter:     %s\n",
              plan.inter_weights.empty() ? "no (uniform)" : "yes (BvN)");
  std::printf("\nclique membership:\n");
  for (CliqueId c = 0; c < plan.cliques.clique_count(); ++c) {
    std::string line = format("  clique %2d:", c);
    for (const NodeId m : plan.cliques.members(c)) line += format(" %d", m);
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int cmd_hier_plan(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("matrix");
  if (it == flags.end()) {
    std::fprintf(stderr, "hier-plan requires --matrix <file.csv>\n");
    return 2;
  }
  const auto tm = load_matrix_csv(it->second);
  if (!tm.has_value()) {
    std::fprintf(stderr, "could not read a traffic matrix from %s\n",
                 it->second.c_str());
    return 1;
  }
  HierOptimizer::Options opts;
  opts.clusters = static_cast<CliqueId>(flag_long(flags, "clusters", 4));
  opts.pods_per_cluster = static_cast<CliqueId>(flag_long(flags, "pods", 4));
  const HierOptimizer optimizer(opts);
  const HierPlan plan = optimizer.plan(*tm);
  std::printf("hierarchical plan for %d nodes:\n", tm->node_count());
  std::printf("  layout:           %d clusters x %d pods x %d nodes\n",
              plan.clusters, plan.pods_per_cluster,
              tm->node_count() / (plan.clusters * plan.pods_per_cluster));
  std::printf("  locality:         x1=%.4f (pod), x2=%.4f (cluster), "
              "x3=%.4f\n",
              plan.x1, plan.x2, 1.0 - plan.x1 - plan.x2);
  std::printf("  slot shares:      intra %lld : inter %lld : global %lld\n",
              static_cast<long long>(plan.shares.intra),
              static_cast<long long>(plan.shares.inter),
              static_cast<long long>(plan.shares.global));
  std::printf("  predicted r:      %.4f (1/(2+x2+2*x3))\n",
              plan.predicted_throughput);
  std::printf("\nnode -> hierarchy position:\n ");
  for (NodeId v = 0; v < tm->node_count(); ++v)
    std::printf(" %d->%d", v,
                plan.position_of_node[static_cast<std::size_t>(v)]);
  std::printf("\n");
  return 0;
}

int cmd_schedule(const std::map<std::string, std::string>& flags) {
  const auto nodes = static_cast<NodeId>(flag_long(flags, "nodes", 16));
  const auto cliques = static_cast<CliqueId>(flag_long(flags, "cliques", 4));
  Rational q{flag_long(flags, "qnum", 2), flag_long(flags, "qden", 1)};
  const auto assignment = CliqueAssignment::contiguous(nodes, cliques);
  const CircuitSchedule sched = ScheduleBuilder::sorn(assignment, q);
  std::printf("SORN schedule: %d nodes, %d cliques, q = %.3f, period %lld\n\n",
              nodes, cliques, q.value(),
              static_cast<long long>(sched.period()));
  std::vector<std::string> headers{"slot", "kind"};
  for (NodeId i = 0; i < nodes; ++i) headers.push_back(format("%d", i));
  TablePrinter table(std::move(headers));
  for (Slot t = 0; t < sched.period(); ++t) {
    std::vector<std::string> row{
        format("%lld", static_cast<long long>(t)),
        sched.kind_at(t) == SlotKind::kIntra ? "intra" : "inter"};
    for (NodeId i = 0; i < nodes; ++i)
      row.push_back(format("%d", sched.dst_of(i, t)));
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}

int cmd_simulate(const std::map<std::string, std::string>& flags) {
  SornConfig cfg;
  cfg.nodes = static_cast<NodeId>(flag_long(flags, "nodes", 64));
  cfg.cliques = static_cast<CliqueId>(flag_long(flags, "cliques", 8));
  cfg.locality_x = flag_double(flags, "locality", 0.56);
  cfg.max_q_denominator = 6;
  cfg.propagation_per_hop = 0;
  const double load = flag_double(flags, "load", 0.3);
  const auto slots = static_cast<Slot>(flag_long(flags, "slots", 30000));
  const auto seed = static_cast<std::uint64_t>(flag_long(flags, "seed", 42));
  const long threads =
      flag_long(flags, "threads", ThreadPool::default_threads());
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1 (got %ld)\n", threads);
    return 1;
  }

  SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network(seed);
  // Same seed => same bytes at any thread count (the parallel engine is
  // byte-equivalent to the sequential one; see DESIGN.md).
  sim.set_threads(static_cast<int>(threads));

  // Fault injection: scripted timeline and/or stochastic MTBF/MTTR model.
  // Routing always consults the live failure state; with no faults the
  // view stays empty and the fast path is untouched.
  net.set_failure_view(&sim.failure_view());
  FaultScript script;
  if (flags.count("fault-script") != 0) {
    std::string error;
    if (!FaultScript::load(flags.at("fault-script"), &script, &error)) {
      std::fprintf(stderr, "--fault-script: %s\n", error.c_str());
      return 1;
    }
  }
  FaultInjectorOptions fopts;
  fopts.node_mtbf_slots = flag_double(flags, "mtbf", 0.0);
  fopts.node_mttr_slots = flag_double(flags, "mttr", 0.0);
  fopts.circuit_mtbf_slots = flag_double(flags, "circuit-mtbf", 0.0);
  fopts.circuit_mttr_slots = flag_double(flags, "circuit-mttr", 0.0);
  fopts.seed = static_cast<std::uint64_t>(flag_long(flags, "fault-seed", 1));
  if ((fopts.node_mtbf_slots > 0.0 && fopts.node_mttr_slots <= 0.0) ||
      (fopts.circuit_mtbf_slots > 0.0 && fopts.circuit_mttr_slots <= 0.0)) {
    std::fprintf(stderr, "an MTBF needs a matching positive MTTR\n");
    return 1;
  }
  const bool want_faults =
      !script.empty() || fopts.node_mtbf_slots > 0.0 ||
      fopts.circuit_mtbf_slots > 0.0;
  FaultInjector injector(std::move(script), fopts);

  // Telemetry: any of the export flags attaches the facade; tracing and
  // time-series sampling are each enabled only when asked for.
  const bool want_trace = flags.count("trace") != 0;
  const bool want_json = flags.count("metrics-json") != 0;
  const bool want_csv = flags.count("timeseries-csv") != 0;
  TelemetryOptions topts;
  if (want_csv || want_json) {
    const long every = flag_long(flags, "sample-every", 1);
    if (every < 1) {
      std::fprintf(stderr, "--sample-every must be >= 1 (got %ld)\n", every);
      return 1;
    }
    topts.sample_every = static_cast<Slot>(every);
  }
  Telemetry telemetry(topts);
  std::unique_ptr<FileTraceSink> trace_sink;
  if (want_trace) {
    trace_sink = std::make_unique<FileTraceSink>(flags.at("trace"));
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   flags.at("trace").c_str());
      return 1;
    }
    telemetry.set_trace_sink(trace_sink.get());
  }
  if (want_trace || want_json || want_csv) sim.set_telemetry(&telemetry);

  const TrafficMatrix tm =
      patterns::locality_mix(net.cliques(), cfg.locality_x);
  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();
  const double node_bw =
      static_cast<double>(sim.config().cell_bytes) * 8.0 /
      (static_cast<double>(sim.config().slot_duration) * 1e-12);
  FlowArrivals arrivals(&tm, &sizes, node_bw, load, Rng(1));
  WorkloadDriver driver(&arrivals);
  if (want_faults)
    driver.set_slot_hook(
        [&injector](SlottedNetwork& n, Slot) { injector.tick(n); });
  const long rto = flag_long(flags, "retransmit-timeout", 0);
  if (rto < 0) {
    std::fprintf(stderr, "--retransmit-timeout must be >= 0\n");
    return 1;
  }
  if (rto > 0) {
    WorkloadDriver::RetransmitOptions ropts;
    ropts.timeout_slots = static_cast<Slot>(rto);
    ropts.max_attempts = static_cast<std::uint32_t>(
        flag_long(flags, "retransmit-max-attempts", 8));
    driver.set_retransmit(ropts);
  }
  driver.run_until(sim, slots * sim.config().slot_duration, 200000);

  std::printf(
      "simulated %lld slots, %d nodes, %d cliques, x=%.2f, q=%.3f, "
      "load=%.2f, threads=%d\n",
      static_cast<long long>(sim.metrics().slots_run()), cfg.nodes,
      cfg.cliques, cfg.locality_x, net.q().value(), load, sim.threads());
  std::printf("  flows injected:   %llu (completed %llu)\n",
              static_cast<unsigned long long>(driver.flows_injected()),
              static_cast<unsigned long long>(sim.metrics().completed_flows()));
  std::printf("  cells delivered:  %llu (mean hops %.2f)\n",
              static_cast<unsigned long long>(sim.metrics().delivered_cells()),
              sim.metrics().mean_hops());
  std::printf("  cell latency p50: %.2f us, p99 %.2f us\n",
              sim.metrics().cell_latency_ps().percentile(50.0) / 1e6,
              sim.metrics().cell_latency_ps().percentile(99.0) / 1e6);
  std::printf("  FCT p50:          %.2f us, p99 %.2f us\n",
              sim.metrics().fct_ps().percentile(50.0) / 1e6,
              sim.metrics().fct_ps().percentile(99.0) / 1e6);
  std::printf("  predicted r:      %.4f (1/(3-x))\n",
              net.predicted_throughput());
  if (want_faults) {
    std::printf(
        "  faults applied:   %llu (scripted %llu, stochastic %llu fail / "
        "%llu heal; first at slot %lld)\n",
        static_cast<unsigned long long>(injector.faults_applied()),
        static_cast<unsigned long long>(injector.scripted_applied()),
        static_cast<unsigned long long>(injector.stochastic_failures()),
        static_cast<unsigned long long>(injector.stochastic_heals()),
        static_cast<long long>(injector.first_fault_slot()));
    std::printf("  failed at end:    %llu nodes, %llu circuits\n",
                static_cast<unsigned long long>(
                    sim.failure_view().failed_node_count()),
                static_cast<unsigned long long>(
                    sim.failure_view().failed_circuit_count()));
  }
  if (rto > 0 || sim.metrics().retransmit_events() > 0) {
    std::printf(
        "  retransmits:      %llu events, %llu cells (%llu duplicate "
        "deliveries)\n",
        static_cast<unsigned long long>(sim.metrics().retransmit_events()),
        static_cast<unsigned long long>(sim.metrics().retransmitted_cells()),
        static_cast<unsigned long long>(sim.metrics().duplicate_cells()));
    std::printf(
        "  stall recovery:   %llu flows recovered, mean %.0f slots "
        "stalled; %llu flows still open\n",
        static_cast<unsigned long long>(sim.metrics().recovered_flows()),
        sim.metrics().mean_recovery_slots(),
        static_cast<unsigned long long>(sim.metrics().open_flows()));
  }

  if (want_json) {
    ExportOptions eopts;
    eopts.nodes = cfg.nodes;
    eopts.lanes = sim.config().lanes;
    const std::string json = run_to_json(sim.metrics(), &telemetry, eopts);
    if (!write_text_file(flags.at("metrics-json"), json)) {
      std::fprintf(stderr, "cannot write %s\n",
                   flags.at("metrics-json").c_str());
      return 1;
    }
    std::printf("  metrics JSON:     %s\n", flags.at("metrics-json").c_str());
  }
  if (want_csv) {
    const std::string csv = timeseries_to_csv(*telemetry.timeseries());
    if (!write_text_file(flags.at("timeseries-csv"), csv)) {
      std::fprintf(stderr, "cannot write %s\n",
                   flags.at("timeseries-csv").c_str());
      return 1;
    }
    std::printf("  time series CSV:  %s (%zu samples)\n",
                flags.at("timeseries-csv").c_str(),
                telemetry.timeseries()->samples().size());
  }
  if (want_trace)
    std::printf("  event trace:      %s\n", flags.at("trace").c_str());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  sorn_tool plan --matrix tm.csv [--nc 4,8,16] [--weighted]\n"
      "  sorn_tool hier-plan --matrix tm.csv [--clusters 4] [--pods 4]\n"
      "  sorn_tool schedule --nodes 16 --cliques 4 --qnum 3 --qden 1\n"
      "  sorn_tool simulate --nodes 64 --cliques 8 --locality 0.56\n"
      "                     [--load 0.3] [--slots 30000] [--seed 42]\n"
      "                     [--threads N]  (default: hardware threads;\n"
      "                      same seed => same bytes at any N)\n"
      "                     [--trace run.jsonl] [--metrics-json run.json]\n"
      "                     [--timeseries-csv run.csv] [--sample-every 10]\n"
      "                     [--fault-script faults.txt]\n"
      "                     [--mtbf S --mttr S]\n"
      "                     [--circuit-mtbf S --circuit-mttr S]\n"
      "                     [--fault-seed 1]\n"
      "                     [--retransmit-timeout S]\n"
      "                     [--retransmit-max-attempts 8]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  if (cmd == "plan") return cmd_plan(flags);
  if (cmd == "hier-plan") return cmd_hier_plan(flags);
  if (cmd == "schedule") return cmd_schedule(flags);
  if (cmd == "simulate") return cmd_simulate(flags);
  return usage();
}
