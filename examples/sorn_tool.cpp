// sorn_tool — command-line frontend to the library.
//
//   sorn_tool plan --matrix tm.csv [--nc 4,8,16] [--weighted]
//       Read a measured traffic matrix (CSV) and print the control
//       plane's plan: clique assignment quality, q*, predicted
//       throughput and intrinsic latency.
//
//   sorn_tool schedule --nodes 16 --cliques 4 --qnum 3 --qden 1
//       Print one period of the SORN circuit schedule.
//
//   sorn_tool designs
//       List the designs registered in the DesignRegistry.
//
//   sorn_tool simulate [--design sorn] [--scenario file.json]
//                      [--save-scenario out.json]
//                      [--nodes 64] [--cliques 8] [--locality 0.56]
//                      [--load 0.3] [--slots 30000] [--threads N]
//                      [--seed 42]
//                      [--trace run.jsonl] [--metrics-json run.json]
//                      [--timeseries-csv run.csv] [--sample-every 10]
//                      [--profile] [--profile-json profile.json]
//                      [--fault-script faults.txt]
//                      [--mtbf S --mttr S] [--circuit-mtbf S --circuit-mttr S]
//                      [--fault-seed 1]
//                      [--retransmit-timeout S] [--retransmit-max-attempts 8]
//       Run a workload on the chosen design and print throughput/FCT
//       metrics. --workload picks the traffic shape: open-loop pFabric
//       flows (the default), closed-loop saturation sources, or the burst
//       workloads (incast waves, allreduce collectives, oversubscribed
//       racks). --transport dctcp swaps open-loop injection for the
//       windowed end-host transport with ECN marking at --ecn-threshold
//       VOQ cells. --scenario loads a full ScenarioConfig
//       JSON first; explicit flags then override individual fields, and
//       --save-scenario writes the effective config back out (the
//       reproducible artifact). --threads shards the slot engine across
//       N workers (default: hardware threads) with byte-identical output
//       at any N. The telemetry flags additionally write a JSONL event
//       trace, a full-run JSON summary, and/or a per-slot time-series CSV
//       (decimated to every k-th slot). The fault flags inject a scripted
//       and/or stochastic (MTBF/MTTR, in slots) failure timeline; with
//       --retransmit-timeout, stalled flows re-admit their missing cells
//       with exponential backoff. Fault RNG lives on the coordinating
//       thread, so faulted runs stay byte-identical at any --threads.
//
//   sorn_tool chaos [--seed 1] [--runs 1] [--nodes 32] [--slots 3000]
//       Seeded randomized fault-soup runs (gray failures, controller
//       outages, safe mode) with invariants asserted every slot and a
//       thread-count byte-equivalence cross-check. A failing seed prints
//       a one-line replay recipe.
//
//   sorn_tool compare [--designs sorn,vlb,...] [--nodes 64] [--cliques 8]
//                     [--locality 0.56] [--threads N]
//       Run every named design on the same fabric scale and traffic:
//       closed-loop saturation throughput, then FCT at 60% of each
//       design's own predicted capacity (one ScenarioRunner per run).
//
// Run without arguments for usage.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/models.h"
#include "control/control_faults.h"
#include "control/control_plane.h"
#include "control/hier_optimizer.h"
#include "control/optimizer.h"
#include "control/safe_mode.h"
#include "core/sorn.h"
#include "fault/fault_injector.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "scenario/chaos.h"
#include "scenario/scenario_runner.h"
#include "topo/schedule_builder.h"
#include "traffic/matrix_io.h"
#include "transport/transport.h"
#include "util/args.h"
#include "util/table.h"

namespace {

using namespace sorn;

int cmd_plan(ArgParser& args) {
  const std::string matrix = args.get_string("--matrix", "");
  const std::vector<int> nc = args.get_int_list("--nc", {}, 1);
  const bool weighted = args.get_flag("--weighted");
  args.finish();
  if (matrix.empty()) {
    std::fprintf(stderr, "plan requires --matrix <file.csv>\n");
    return 2;
  }
  const auto tm = load_matrix_csv(matrix);
  if (!tm.has_value()) {
    std::fprintf(stderr, "could not read a traffic matrix from %s\n",
                 matrix.c_str());
    return 1;
  }
  SornOptimizer::Options opts;
  if (!nc.empty()) {
    opts.candidate_nc.clear();
    for (const int c : nc)
      opts.candidate_nc.push_back(static_cast<CliqueId>(c));
  }
  opts.weighted_inter = weighted;
  const SornOptimizer optimizer(opts);
  const SornPlan plan = optimizer.plan(*tm);

  std::printf("plan for %d nodes:\n", tm->node_count());
  std::printf("  cliques:            %d x %d nodes\n",
              plan.cliques.clique_count(),
              plan.cliques.clique_size(0));
  std::printf("  locality x:         %.4f\n", plan.locality_x);
  std::printf("  oversubscription q: %lld/%lld (%.3f)\n",
              static_cast<long long>(plan.q.num),
              static_cast<long long>(plan.q.den), plan.q.value());
  std::printf("  predicted r:        %.4f\n", plan.predicted_throughput);
  std::printf("  delta_m intra/inter: %.0f / %.0f circuits\n",
              plan.predicted_delta_m_intra, plan.predicted_delta_m_inter);
  std::printf("  weighted inter:     %s\n",
              plan.inter_weights.empty() ? "no (uniform)" : "yes (BvN)");
  std::printf("\nclique membership:\n");
  for (CliqueId c = 0; c < plan.cliques.clique_count(); ++c) {
    std::string line = format("  clique %2d:", c);
    for (const NodeId m : plan.cliques.members(c)) line += format(" %d", m);
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int cmd_hier_plan(ArgParser& args) {
  const std::string matrix = args.get_string("--matrix", "");
  HierOptimizer::Options opts;
  opts.clusters = static_cast<CliqueId>(args.get_long("--clusters", 4, 1));
  opts.pods_per_cluster = static_cast<CliqueId>(args.get_long("--pods", 4, 1));
  args.finish();
  if (matrix.empty()) {
    std::fprintf(stderr, "hier-plan requires --matrix <file.csv>\n");
    return 2;
  }
  const auto tm = load_matrix_csv(matrix);
  if (!tm.has_value()) {
    std::fprintf(stderr, "could not read a traffic matrix from %s\n",
                 matrix.c_str());
    return 1;
  }
  const HierOptimizer optimizer(opts);
  const HierPlan plan = optimizer.plan(*tm);
  std::printf("hierarchical plan for %d nodes:\n", tm->node_count());
  std::printf("  layout:           %d clusters x %d pods x %d nodes\n",
              plan.clusters, plan.pods_per_cluster,
              tm->node_count() / (plan.clusters * plan.pods_per_cluster));
  std::printf("  locality:         x1=%.4f (pod), x2=%.4f (cluster), "
              "x3=%.4f\n",
              plan.x1, plan.x2, 1.0 - plan.x1 - plan.x2);
  std::printf("  slot shares:      intra %lld : inter %lld : global %lld\n",
              static_cast<long long>(plan.shares.intra),
              static_cast<long long>(plan.shares.inter),
              static_cast<long long>(plan.shares.global));
  std::printf("  predicted r:      %.4f (1/(2+x2+2*x3))\n",
              plan.predicted_throughput);
  std::printf("\nnode -> hierarchy position:\n ");
  for (NodeId v = 0; v < tm->node_count(); ++v)
    std::printf(" %d->%d", v,
                plan.position_of_node[static_cast<std::size_t>(v)]);
  std::printf("\n");
  return 0;
}

int cmd_schedule(ArgParser& args) {
  const auto nodes = static_cast<NodeId>(args.get_long("--nodes", 16, 2));
  const auto cliques = static_cast<CliqueId>(args.get_long("--cliques", 4, 1));
  Rational q{args.get_long("--qnum", 2, 0), args.get_long("--qden", 1, 1)};
  args.finish();
  const auto assignment = CliqueAssignment::contiguous(nodes, cliques);
  const CircuitSchedule sched = ScheduleBuilder::sorn(assignment, q);
  std::printf("SORN schedule: %d nodes, %d cliques, q = %.3f, period %lld\n\n",
              nodes, cliques, q.value(),
              static_cast<long long>(sched.period()));
  std::vector<std::string> headers{"slot", "kind"};
  for (NodeId i = 0; i < nodes; ++i) headers.push_back(format("%d", i));
  TablePrinter table(std::move(headers));
  for (Slot t = 0; t < sched.period(); ++t) {
    std::vector<std::string> row{
        format("%lld", static_cast<long long>(t)),
        sched.kind_at(t) == SlotKind::kIntra ? "intra" : "inter"};
    for (NodeId i = 0; i < nodes; ++i)
      row.push_back(format("%d", sched.dst_of(i, t)));
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}

int cmd_designs(ArgParser& args) {
  args.finish();
  const DesignRegistry& registry = DesignRegistry::instance();
  TablePrinter table({"design", "description"});
  for (const std::string& name : registry.names())
    table.add_row({name, registry.find(name)->description()});
  table.print();
  return 0;
}

// Scenario fields the simulate/compare flags can set, applied on top of
// whatever --scenario loaded (a flag's fallback is the loaded value, so
// absent flags change nothing).
void apply_fabric_flags(ArgParser& args, ScenarioConfig& cfg) {
  cfg.design = args.get_string("--design", cfg.design);
  cfg.nodes = static_cast<NodeId>(
      args.get_long("--nodes", cfg.nodes, 2));
  cfg.cliques = static_cast<CliqueId>(
      args.get_long("--cliques", cfg.cliques, 1));
  cfg.locality_x = args.get_double("--locality", cfg.locality_x, 0.0, 1.0);
  const std::string backend = args.get_string(
      "--traffic-backend", demand_backend_name(cfg.traffic_backend));
  if (!parse_demand_backend(backend, &cfg.traffic_backend)) {
    std::fprintf(stderr,
                 "--traffic-backend: unknown backend '%s' "
                 "(dense|sparse|procedural)\n",
                 backend.c_str());
    std::exit(2);
  }
  cfg.seed =
      static_cast<std::uint64_t>(args.get_long("--seed", cfg.seed, 0));
  cfg.threads =
      static_cast<int>(args.get_long("--threads", cfg.threads, 1));
}

int cmd_simulate(ArgParser& args) {
  ScenarioConfig cfg;
  // The open-loop default the tool has always run; a --scenario file can
  // reconfigure everything, including the workload kind.
  cfg.max_q_denominator = 6;
  cfg.propagation_ns = 0;
  const std::string scenario_path = args.get_string("--scenario", "");
  if (!scenario_path.empty()) {
    std::string error;
    if (!ScenarioConfig::load_file(scenario_path, &cfg, &error)) {
      std::fprintf(stderr, "--scenario: %s\n", error.c_str());
      return 1;
    }
  }
  apply_fabric_flags(args, cfg);
  const std::string workload = args.get_string(
      "--workload", workload_kind_name(cfg.workload));
  if (!parse_workload_kind(workload, &cfg.workload)) {
    std::fprintf(stderr,
                 "--workload: unknown workload '%s' (flows|saturation|"
                 "flow-saturation|incast|collective|oversub-rack)\n",
                 workload.c_str());
    return 2;
  }
  cfg.load = args.get_double("--load", cfg.load, 0.0);
  cfg.slots = args.get_long("--slots", cfg.slots, 1);
  // Burst workloads.
  cfg.incast_fanin = static_cast<NodeId>(
      args.get_long("--incast-fanin", cfg.incast_fanin, 1));
  cfg.incast_bytes = static_cast<std::uint64_t>(
      args.get_long("--incast-bytes", cfg.incast_bytes, 1));
  cfg.incast_period_slots =
      args.get_long("--incast-period", cfg.incast_period_slots, 1);
  cfg.collective_kind = args.get_string("--collective", cfg.collective_kind);
  cfg.collective_bytes = static_cast<std::uint64_t>(
      args.get_long("--collective-bytes", cfg.collective_bytes, 1));
  cfg.collective_phase_gap_slots = args.get_long(
      "--collective-gap", cfg.collective_phase_gap_slots, 1);
  cfg.rack_local_frac =
      args.get_double("--rack-local-frac", cfg.rack_local_frac, 0.0, 1.0);
  cfg.oversub_factor =
      args.get_double("--oversub-factor", cfg.oversub_factor, 1.0);
  // Closed-loop transport.
  cfg.transport = args.get_string("--transport", cfg.transport);
  cfg.ecn_threshold_cells = static_cast<std::uint64_t>(
      args.get_long("--ecn-threshold", cfg.ecn_threshold_cells, 0));
  cfg.init_cwnd_cells = static_cast<std::uint64_t>(
      args.get_long("--init-cwnd", cfg.init_cwnd_cells, 1));
  cfg.max_cwnd_cells = static_cast<std::uint64_t>(
      args.get_long("--max-cwnd", cfg.max_cwnd_cells, 1));
  cfg.dctcp_gain = args.get_double("--dctcp-gain", cfg.dctcp_gain, 0.0, 1.0);
  cfg.trace_path = args.get_string("--trace", cfg.trace_path);
  cfg.metrics_json_path =
      args.get_string("--metrics-json", cfg.metrics_json_path);
  cfg.timeseries_csv_path =
      args.get_string("--timeseries-csv", cfg.timeseries_csv_path);
  cfg.sample_every = args.get_long("--sample-every", cfg.sample_every, 1);
  if (args.get_flag("--profile")) cfg.profile = true;
  cfg.profile_json_path =
      args.get_string("--profile-json", cfg.profile_json_path);
  cfg.fault_script_path =
      args.get_string("--fault-script", cfg.fault_script_path);
  cfg.node_mtbf_slots = args.get_double("--mtbf", cfg.node_mtbf_slots, 0.0);
  cfg.node_mttr_slots = args.get_double("--mttr", cfg.node_mttr_slots, 0.0);
  cfg.circuit_mtbf_slots =
      args.get_double("--circuit-mtbf", cfg.circuit_mtbf_slots, 0.0);
  cfg.circuit_mttr_slots =
      args.get_double("--circuit-mttr", cfg.circuit_mttr_slots, 0.0);
  cfg.fault_seed = static_cast<std::uint64_t>(
      args.get_long("--fault-seed", cfg.fault_seed, 0));
  cfg.retransmit_timeout =
      args.get_long("--retransmit-timeout", cfg.retransmit_timeout, 0);
  cfg.retransmit_max_attempts = static_cast<std::uint32_t>(
      args.get_long("--retransmit-max-attempts", cfg.retransmit_max_attempts,
                    1));
  cfg.retransmit_jitter =
      args.get_double("--retransmit-jitter", cfg.retransmit_jitter, 0.0, 1.0);
  // Closed-loop control plane and its fault model.
  cfg.epoch_slots = args.get_long("--epoch-slots", cfg.epoch_slots, 0);
  cfg.update_delay_slots =
      args.get_long("--update-delay", cfg.update_delay_slots, 0);
  const std::string outages_csv = args.get_string("--control-outages", "");
  if (!outages_csv.empty()) {
    cfg.control_outages.clear();
    std::size_t pos = 0;
    while (pos < outages_csv.size()) {
      std::size_t comma = outages_csv.find(',', pos);
      if (comma == std::string::npos) comma = outages_csv.size();
      if (comma > pos) {
        cfg.control_outages.push_back(
            std::atoll(outages_csv.substr(pos, comma - pos).c_str()));
      }
      pos = comma + 1;
    }
  }
  cfg.controller_mtbf_slots =
      args.get_double("--controller-mtbf", cfg.controller_mtbf_slots, 0.0);
  cfg.controller_mttr_slots =
      args.get_double("--controller-mttr", cfg.controller_mttr_slots, 0.0);
  cfg.control_fault_seed = static_cast<std::uint64_t>(
      args.get_long("--control-fault-seed", cfg.control_fault_seed, 0));
  cfg.replan_apply_delay =
      args.get_long("--replan-apply-delay", cfg.replan_apply_delay, 0);
  cfg.estimate_stale_epochs =
      args.get_long("--estimate-stale-epochs", cfg.estimate_stale_epochs, 0);
  cfg.estimate_noise =
      args.get_double("--estimate-noise", cfg.estimate_noise, 0.0, 1.0);
  cfg.safe_mode = args.get_string("--safe-mode", cfg.safe_mode);
  if (args.get_flag("--check-invariants")) cfg.check_invariants = true;
  const std::string save_path = args.get_string("--save-scenario", "");
  args.finish();

  if (!save_path.empty() &&
      !write_text_file(save_path, cfg.to_json())) {
    std::fprintf(stderr, "cannot write %s\n", save_path.c_str());
    return 1;
  }

  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  if (runner == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (!runner->run(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  const SimMetrics& metrics = runner->metrics();
  const SlottedNetwork& sim = runner->network();
  if (cfg.design == "sorn" && runner->design().sorn_network != nullptr) {
    std::printf(
        "simulated %lld slots, %d nodes, %d cliques, x=%.2f, q=%.3f, "
        "load=%.2f, threads=%d\n",
        static_cast<long long>(metrics.slots_run()), cfg.nodes, cfg.cliques,
        cfg.locality_x, runner->design().sorn_network->q().value(), cfg.load,
        sim.threads());
  } else {
    std::printf(
        "simulated %lld slots, design %s (%s), %d nodes, load=%.2f, "
        "threads=%d\n",
        static_cast<long long>(metrics.slots_run()), cfg.design.c_str(),
        runner->design().summary.c_str(), cfg.nodes, cfg.load,
        sim.threads());
  }
  if (workload_uses_flow_driver(cfg.workload)) {
    std::printf("  flows injected:   %llu (completed %llu)\n",
                static_cast<unsigned long long>(runner->flows_injected()),
                static_cast<unsigned long long>(metrics.completed_flows()));
  } else {
    std::printf("  saturation r:     %.4f (delivered per node-slot-lane)\n",
                runner->saturation_r());
  }
  std::printf("  cells delivered:  %llu (mean hops %.2f)\n",
              static_cast<unsigned long long>(metrics.delivered_cells()),
              metrics.mean_hops());
  std::printf("  cell latency p50: %.2f us, p99 %.2f us\n",
              metrics.cell_latency_ps().percentile(50.0) / 1e6,
              metrics.cell_latency_ps().percentile(99.0) / 1e6);
  if (workload_uses_flow_driver(cfg.workload)) {
    std::printf("  FCT p50:          %.2f us, p99 %.2f us\n",
                metrics.fct_ps().percentile(50.0) / 1e6,
                metrics.fct_ps().percentile(99.0) / 1e6);
  }
  if (const DctcpTransport* transport = runner->transport()) {
    const TransportStats tstats = transport->stats();
    std::printf(
        "  transport:        dctcp, %llu flows opened / %llu completed, "
        "%llu/%llu acks ECN-marked\n",
        static_cast<unsigned long long>(tstats.flows_opened),
        static_cast<unsigned long long>(tstats.flows_completed),
        static_cast<unsigned long long>(tstats.ecn_acked_cells),
        static_cast<unsigned long long>(tstats.acked_cells));
    std::printf("  cwnd (cells):     mean %.1f, min %.0f, max %.0f "
                "(%llu ECN marks applied)\n",
                tstats.cwnd_cells.mean(), tstats.cwnd_cells.min(),
                tstats.cwnd_cells.max(),
                static_cast<unsigned long long>(metrics.ecn_marked_cells()));
  }
  if (cfg.design == "sorn") {
    std::printf("  predicted r:      %.4f (1/(3-x))\n",
                runner->design().predicted_throughput);
  } else {
    std::printf("  predicted r:      %.4f\n",
                runner->design().predicted_throughput);
  }
  if (const FaultInjector* injector = runner->injector()) {
    std::printf(
        "  faults applied:   %llu (scripted %llu, stochastic %llu fail / "
        "%llu heal; first at slot %lld)\n",
        static_cast<unsigned long long>(injector->faults_applied()),
        static_cast<unsigned long long>(injector->scripted_applied()),
        static_cast<unsigned long long>(injector->stochastic_failures()),
        static_cast<unsigned long long>(injector->stochastic_heals()),
        static_cast<long long>(injector->first_fault_slot()));
    std::printf("  failed at end:    %llu nodes, %llu circuits\n",
                static_cast<unsigned long long>(
                    sim.failure_view().failed_node_count()),
                static_cast<unsigned long long>(
                    sim.failure_view().failed_circuit_count()));
  }
  if (cfg.retransmit_timeout > 0 || metrics.retransmit_events() > 0) {
    std::printf(
        "  retransmits:      %llu events, %llu cells (%llu duplicate "
        "deliveries)\n",
        static_cast<unsigned long long>(metrics.retransmit_events()),
        static_cast<unsigned long long>(metrics.retransmitted_cells()),
        static_cast<unsigned long long>(metrics.duplicate_cells()));
    std::printf(
        "  stall recovery:   %llu flows recovered, mean %.0f slots "
        "stalled; %llu flows still open\n",
        static_cast<unsigned long long>(metrics.recovered_flows()),
        metrics.mean_recovery_slots(),
        static_cast<unsigned long long>(metrics.open_flows()));
  }
  if (const ControlPlane* control = runner->control()) {
    std::printf("  control plane:    %llu replans (epoch %lld slots)\n",
                static_cast<unsigned long long>(control->replans()),
                static_cast<long long>(cfg.epoch_slots));
    if (const ControlFaultModel* cf = runner->control_faults()) {
      std::printf(
          "  controller down:  %llu outages, %llu slots, %llu epochs "
          "suppressed\n",
          static_cast<unsigned long long>(cf->outages_started()),
          static_cast<unsigned long long>(cf->outage_slots()),
          static_cast<unsigned long long>(cf->suppressed_epochs()));
    }
    if (const SafeModeGuard* sm = runner->safe_mode()) {
      std::printf(
          "  safe mode (%s):  %llu activations, %llu slots\n",
          sm->policy() == SafeModePolicy::kVlb ? "vlb" : "hold",
          static_cast<unsigned long long>(sm->activations()),
          static_cast<unsigned long long>(sm->slots_in_safe_mode()));
    }
  }
  if (const InvariantChecker* inv = runner->invariant_checker()) {
    std::printf("  invariants:       %llu slots checked, %llu violations\n",
                static_cast<unsigned long long>(inv->slots_checked()),
                static_cast<unsigned long long>(inv->violation_count()));
  }

  if (!cfg.metrics_json_path.empty())
    std::printf("  metrics JSON:     %s\n", cfg.metrics_json_path.c_str());
  if (!cfg.timeseries_csv_path.empty()) {
    std::printf("  time series CSV:  %s (%zu samples)\n",
                cfg.timeseries_csv_path.c_str(),
                runner->telemetry() != nullptr &&
                        runner->telemetry()->timeseries() != nullptr
                    ? runner->telemetry()->timeseries()->samples().size()
                    : 0);
  }
  if (!cfg.trace_path.empty())
    std::printf("  event trace:      %s\n", cfg.trace_path.c_str());
  if (Profiler* prof = runner->profiler()) {
    const PhaseProfiler::PhaseStats& sweep =
        prof->phases().stats(ProfPhase::kLaneSweep);
    std::printf("  profile:          %llu slots timed, lane sweep %.1f ms "
                "total%s%s\n",
                static_cast<unsigned long long>(prof->phases().slots()),
                static_cast<double>(sweep.total_ns) / 1e6,
                cfg.profile_json_path.empty() ? "" : ", written to ",
                cfg.profile_json_path.c_str());
  }
  if (!save_path.empty())
    std::printf("  scenario JSON:    %s\n", save_path.c_str());
  return 0;
}

int cmd_compare(ArgParser& args) {
  ScenarioConfig base;
  base.max_q_denominator = 6;
  base.propagation_ns = 0;
  base.lb_first_available = true;  // the paper's latency semantics
  const std::string scenario_path = args.get_string("--scenario", "");
  if (!scenario_path.empty()) {
    std::string error;
    if (!ScenarioConfig::load_file(scenario_path, &base, &error)) {
      std::fprintf(stderr, "--scenario: %s\n", error.c_str());
      return 1;
    }
  }
  apply_fabric_flags(args, base);
  std::string design_csv;
  for (const std::string& name : DesignRegistry::instance().names()) {
    if (!design_csv.empty()) design_csv += ",";
    design_csv += name;
  }
  design_csv = args.get_string("--designs", design_csv);
  args.finish();

  std::vector<std::string> designs;
  for (std::size_t pos = 0; pos <= design_csv.size();) {
    std::size_t comma = design_csv.find(',', pos);
    if (comma == std::string::npos) comma = design_csv.size();
    if (comma > pos) designs.push_back(design_csv.substr(pos, comma - pos));
    pos = comma + 1;
  }

  std::printf(
      "design comparison: %d nodes, locality x=%.2f, identical workload\n\n",
      base.nodes, base.locality_x);
  TablePrinter table({"design", "r sim", "r theory", "mean hops",
                      "FCT p50 (us)", "FCT p99 (us)"});
  for (const std::string& name : designs) {
    std::string error;
    // Closed-loop saturation throughput.
    ScenarioConfig sat = base;
    sat.design = name;
    sat.workload = WorkloadKind::kSaturation;
    auto sat_runner = ScenarioRunner::create(sat, &error);
    if (sat_runner == nullptr) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), error.c_str());
      return 1;
    }
    if (!sat_runner->run(&error)) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), error.c_str());
      return 1;
    }
    const double r_theory = sat_runner->design().predicted_throughput;

    // FCT at 60% of the design's own predicted capacity (fair comparison:
    // every design moderately loaded relative to what it can carry).
    ScenarioConfig flows = base;
    flows.design = name;
    flows.workload = WorkloadKind::kFlows;
    flows.flow_size = FlowSizeKind::kFixed;
    flows.fixed_flow_bytes = 2560;
    flows.load = 0.6 * r_theory;
    flows.slots = 1500;
    flows.arrival_seed = 5;
    auto flow_runner = ScenarioRunner::create(flows, &error);
    if (flow_runner == nullptr || !flow_runner->run(&error)) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), error.c_str());
      return 1;
    }
    table.add_row(
        {name, format("%.4f", sat_runner->saturation_r()),
         format("%.4f", r_theory),
         format("%.2f", sat_runner->metrics().mean_hops()),
         format("%.2f",
                flow_runner->metrics().fct_ps().percentile(50.0) / 1e6),
         format("%.2f",
                flow_runner->metrics().fct_ps().percentile(99.0) / 1e6)});
  }
  table.print();
  return 0;
}

int cmd_chaos(ArgParser& args) {
  const std::uint64_t first_seed =
      static_cast<std::uint64_t>(args.get_long("--seed", 1, 0));
  const long runs = args.get_long("--runs", 1, 1);
  ChaosKnobs knobs;
  knobs.nodes = static_cast<NodeId>(args.get_long("--nodes", 32, 4));
  knobs.slots = args.get_long("--slots", 3000, 500);
  knobs.compare_threads =
      static_cast<int>(args.get_long("--compare-threads", 3, 0));
  args.finish();

  TablePrinter table({"seed", "faults", "gray drops", "ctrl outages",
                      "safe mode", "replans", "slots checked", "verdict"});
  for (long i = 0; i < runs; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    const ChaosResult r = run_chaos(seed, knobs);
    table.add_row(
        {format("%llu", static_cast<unsigned long long>(seed)),
         format("%llu", static_cast<unsigned long long>(r.faults_applied)),
         format("%llu", static_cast<unsigned long long>(r.gray_drops)),
         format("%llu",
                static_cast<unsigned long long>(r.controller_outages)),
         format("%llu",
                static_cast<unsigned long long>(r.safe_mode_activations)),
         format("%llu", static_cast<unsigned long long>(r.replans)),
         format("%llu", static_cast<unsigned long long>(r.invariant_slots)),
         r.ok ? "pass" : "FAIL"});
    if (!r.ok) {
      table.print();
      std::fprintf(stderr, "\nchaos seed %llu FAILED:\n%s\n\nreplay: %s\n",
                   static_cast<unsigned long long>(seed), r.error.c_str(),
                   r.replay.c_str());
      return 1;
    }
  }
  table.print();
  std::printf("%ld/%ld chaos seeds passed.\n", runs, runs);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  sorn_tool plan --matrix tm.csv [--nc 4,8,16] [--weighted]\n"
      "  sorn_tool hier-plan --matrix tm.csv [--clusters 4] [--pods 4]\n"
      "  sorn_tool schedule --nodes 16 --cliques 4 --qnum 3 --qden 1\n"
      "  sorn_tool designs\n"
      "  sorn_tool simulate [--design sorn] [--scenario file.json]\n"
      "                     [--save-scenario out.json]\n"
      "                     [--nodes 64] [--cliques 8] [--locality 0.56]\n"
      "                     [--workload flows|saturation|flow-saturation|\n"
      "                                 incast|collective|oversub-rack]\n"
      "                     [--incast-fanin 32] [--incast-bytes 16384]\n"
      "                     [--incast-period 512]\n"
      "                     [--collective ring|tree]\n"
      "                     [--collective-bytes 262144]\n"
      "                     [--collective-gap 256]\n"
      "                     [--rack-local-frac 0.6] [--oversub-factor 4]\n"
      "                     [--transport open-loop|dctcp]\n"
      "                     [--ecn-threshold 8] [--init-cwnd 8]\n"
      "                     [--max-cwnd 256] [--dctcp-gain 0.0625]\n"
      "                     [--load 0.3] [--slots 30000] [--seed 42]\n"
      "                     [--threads N]  (default: hardware threads;\n"
      "                      same seed => same bytes at any N)\n"
      "                     [--trace run.jsonl] [--metrics-json run.json]\n"
      "                     [--timeseries-csv run.csv] [--sample-every 10]\n"
      "                     [--profile] [--profile-json profile.json]\n"
      "                      (profiling never changes sim artifacts;\n"
      "                       profile.json itself is wall-clock data)\n"
      "                     [--fault-script faults.txt]\n"
      "                     [--mtbf S --mttr S]\n"
      "                     [--circuit-mtbf S --circuit-mttr S]\n"
      "                     [--fault-seed 1]\n"
      "                     [--retransmit-timeout S]\n"
      "                     [--retransmit-max-attempts 8]\n"
      "                     [--retransmit-jitter 0.25]\n"
      "                     [--epoch-slots 500] [--update-delay S]\n"
      "                      (closed control loop: replan every epoch)\n"
      "                     [--control-outages s0,e0,s1,e1,...]\n"
      "                     [--controller-mtbf S --controller-mttr S]\n"
      "                     [--control-fault-seed 1]\n"
      "                     [--replan-apply-delay S]\n"
      "                     [--estimate-stale-epochs K]\n"
      "                     [--estimate-noise 0.2]\n"
      "                     [--safe-mode hold|vlb] [--check-invariants]\n"
      "  sorn_tool chaos [--seed 1] [--runs 1] [--nodes 32] [--slots 3000]\n"
      "                  [--compare-threads 3]\n"
      "      Seeded randomized fault-soup campaign: gray failures,\n"
      "      controller outages, safe mode, invariants every slot, and a\n"
      "      1-vs-N-thread byte-equivalence cross-check per seed. Prints\n"
      "      a one-line replay recipe on failure.\n"
      "  sorn_tool compare [--designs sorn,vlb,...] [--nodes 64]\n"
      "                    [--cliques 8] [--locality 0.56] [--threads N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  ArgParser args(argc, argv, 2);
  if (cmd == "plan") return cmd_plan(args);
  if (cmd == "hier-plan") return cmd_hier_plan(args);
  if (cmd == "schedule") return cmd_schedule(args);
  if (cmd == "designs") return cmd_designs(args);
  if (cmd == "simulate") return cmd_simulate(args);
  if (cmd == "chaos") return cmd_chaos(args);
  if (cmd == "compare") return cmd_compare(args);
  return usage();
}
