// A realistic datacenter scenario (paper Sec. 3 & 6): a 128-node DCN whose
// machines host web, cache, hadoop and storage services with planted
// cluster structure. The control plane infers the cliques from noisy
// observations, a SORN is built for them, and a pFabric-style flow
// workload measures flow completion times against a flat 1D ORN — split
// into intra-clique and inter-clique flows, the two classes the paper's
// latency analysis distinguishes.
//
// Both fabrics run the same ScenarioRunner flow scenario: the inferred
// cliques ride in as an override (they also label the flow classes), the
// measured demand as a traffic override, and the 64 KB size cap and
// clique classifier are plain config fields.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "control/control_plane.h"
#include "core/sorn.h"
#include "scenario/scenario_runner.h"
#include "traffic/trace.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 128;
constexpr double kLoad = 0.3;
constexpr Slot kHorizonSlots = 15000;  // 1.5 ms fabric time at 100 ns slots
// pFabric web-search sizes, truncated at 64 KB so elephants don't dominate
// this short demo run (documented demo-scale concession).
constexpr std::uint64_t kSizeCap = 64 * 1024;

enum FlowClass : int { kIntraClique = 0, kInterClique = 1 };

struct RunResult {
  std::uint64_t flows;
  double intra_p50_us;
  double intra_p99_us;
  double inter_p50_us;
  double all_p50_us;
  double mean_hops;
};

std::unique_ptr<ScenarioRunner> create_or_die(const ScenarioConfig& cfg) {
  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  if (runner == nullptr) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    std::exit(1);
  }
  return runner;
}

RunResult run_workload(ScenarioRunner& runner) {
  std::string error;
  if (!runner.run(&error)) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    std::exit(1);
  }
  const SimMetrics& m = runner.metrics();
  const auto& intra = m.fct_ps_class(kIntraClique);
  const auto& inter = m.fct_ps_class(kInterClique);
  return RunResult{runner.flows_injected(),
                   intra.percentile(50.0) / 1e6,
                   intra.percentile(99.0) / 1e6,
                   inter.percentile(50.0) / 1e6,
                   m.fct_ps().percentile(50.0) / 1e6,
                   m.mean_hops()};
}

}  // namespace

int main() {
  // The datacenter: 16 groups of 8 machines, four service roles.
  SyntheticTrace::Config tcfg;
  tcfg.nodes = kNodes;
  tcfg.group_size = 8;
  tcfg.burst_sigma = 0.5;
  tcfg.seed = 7;
  SyntheticTrace trace(tcfg);
  std::printf("datacenter: %d nodes, %d service groups (", kNodes,
              trace.group_count());
  for (NodeId g = 0; g < trace.group_count(); ++g)
    std::printf("%s%s", g == 0 ? "" : " ",
                service_role_name(trace.role_of_group(g)));
  std::printf(")\n");

  // Control plane: infer cliques from three noisy epochs.
  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {8, 16};
  opts.optimizer.max_q_denominator = 6;
  ControlPlane cp(kNodes, opts);
  for (int e = 0; e < 3; ++e) cp.on_epoch(trace.epoch_matrix(), e);
  const SornPlan& plan = cp.last_plan();
  std::printf(
      "control plane plan: Nc=%d, q=%.2f, locality x=%.3f, predicted "
      "r=%.3f\n\n",
      plan.cliques.clique_count(), plan.q.value(), plan.locality_x,
      plan.predicted_throughput);

  // One scenario, two designs: SORN on the inferred cliques vs a flat
  // 1D ORN, both carrying the measured macro demand.
  const TrafficMatrix demand = trace.macro_matrix();
  ScenarioConfig base;
  base.nodes = kNodes;
  base.propagation_ns = 500;  // Table 1 fabric, propagation included
  base.load = kLoad;
  base.slots = kHorizonSlots;
  base.drain_slots = 500000;
  base.flow_size_cap = kSizeCap;
  base.classify = ClassifyKind::kClique;
  base.arrival_seed = 77;
  base.overrides.cliques = &plan.cliques;
  base.overrides.traffic = &demand;

  ScenarioConfig scfg = base;
  scfg.design = "sorn";
  scfg.locality_x = plan.locality_x;
  scfg.q_num = plan.q.num;
  scfg.q_den = plan.q.den;
  scfg.lb_first_available = true;  // latency-oriented LB choice
  auto sorn_runner = create_or_die(scfg);
  const double delta_m_intra =
      sorn_runner->design().sorn_network->delta_m_intra();
  const RunResult s = run_workload(*sorn_runner);

  ScenarioConfig ocfg = base;
  ocfg.design = "vlb";
  auto flat_runner = create_or_die(ocfg);
  const RunResult o = run_workload(*flat_runner);

  TablePrinter table({"Design", "flows", "intra FCT p50 (us)",
                      "intra FCT p99 (us)", "inter FCT p50 (us)",
                      "all FCT p50 (us)", "mean hops"});
  auto row = [&](const char* name, const RunResult& r) {
    table.add_row({name, format("%llu", static_cast<unsigned long long>(
                                            r.flows)),
                   format("%.1f", r.intra_p50_us),
                   format("%.1f", r.intra_p99_us),
                   format("%.1f", r.inter_p50_us),
                   format("%.1f", r.all_p50_us), format("%.2f", r.mean_hops)});
  };
  row("SORN (inferred cliques)", s);
  row("Flat 1D ORN + VLB", o);
  table.print();

  std::printf(
      "\nIntra-clique flows ride circuits that recur every ~%.0f slots on\n"
      "SORN vs %d on the flat schedule, so their completion times drop;\n"
      "inter-clique flows pay the third hop (SORN mean hops %.2f vs %.2f).\n",
      delta_m_intra, kNodes - 1, s.mean_hops, o.mean_hops);
  return 0;
}
