// A realistic datacenter scenario (paper Sec. 3 & 6): a 128-node DCN whose
// machines host web, cache, hadoop and storage services with planted
// cluster structure. The control plane infers the cliques from noisy
// observations, a SORN is built for them, and a pFabric-style flow
// workload measures flow completion times against a flat 1D ORN — split
// into intra-clique and inter-clique flows, the two classes the paper's
// latency analysis distinguishes.
#include <algorithm>
#include <cstdio>

#include "control/control_plane.h"
#include "core/sorn.h"
#include "routing/vlb.h"
#include "sim/workload_driver.h"
#include "traffic/trace.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 128;
constexpr double kLoad = 0.3;
constexpr Picoseconds kHorizon = 1500 * 1000 * 1000;  // 1.5 ms fabric time
// pFabric web-search sizes, truncated at 64 KB so elephants don't dominate
// this short demo run (documented demo-scale concession).
constexpr std::uint64_t kSizeCap = 64 * 1024;

enum FlowClass : int { kIntraClique = 0, kInterClique = 1 };

struct RunResult {
  std::uint64_t flows;
  double intra_p50_us;
  double intra_p99_us;
  double inter_p50_us;
  double all_p50_us;
  double mean_hops;
};

RunResult run_workload(const CircuitSchedule& sched, const Router& router,
                       const TrafficMatrix& tm,
                       const CliqueAssignment& cliques) {
  NetworkConfig cfg;
  cfg.cell_bytes = 256;
  SlottedNetwork net(&sched, &router, cfg);
  FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();
  const double node_bw = 256.0 * 8.0 / 100e-9;  // one cell per 100 ns slot
  FlowArrivals arrivals(&tm, &sizes, node_bw, kLoad, Rng(77));

  // Drive manually (instead of via WorkloadDriver) so sizes can be capped
  // and flows classified at injection.
  const Picoseconds slot_ps = net.config().slot_duration;
  FlowArrival pending = arrivals.next();
  pending.bytes = std::min(pending.bytes, kSizeCap);
  FlowId next_id = 1;
  std::uint64_t flows = 0;
  while (net.now() * slot_ps < kHorizon) {
    const Picoseconds slot_start = net.now() * slot_ps;
    while (pending.time <= slot_start + slot_ps && pending.time <= kHorizon) {
      const int cls = cliques.same_clique(pending.src, pending.dst)
                          ? kIntraClique
                          : kInterClique;
      net.inject_flow(next_id++, pending.src, pending.dst, pending.bytes,
                      cls);
      ++flows;
      pending = arrivals.next();
      pending.bytes = std::min(pending.bytes, kSizeCap);
    }
    net.step();
  }
  for (Slot s = 0; s < 500000 && net.cells_in_flight() > 0; ++s) net.step();

  const auto& intra = net.metrics().fct_ps_class(kIntraClique);
  const auto& inter = net.metrics().fct_ps_class(kInterClique);
  return RunResult{flows,
                   intra.percentile(50.0) / 1e6,
                   intra.percentile(99.0) / 1e6,
                   inter.percentile(50.0) / 1e6,
                   net.metrics().fct_ps().percentile(50.0) / 1e6,
                   net.metrics().mean_hops()};
}

}  // namespace

int main() {
  // The datacenter: 16 groups of 8 machines, four service roles.
  SyntheticTrace::Config tcfg;
  tcfg.nodes = kNodes;
  tcfg.group_size = 8;
  tcfg.burst_sigma = 0.5;
  tcfg.seed = 7;
  SyntheticTrace trace(tcfg);
  std::printf("datacenter: %d nodes, %d service groups (", kNodes,
              trace.group_count());
  for (NodeId g = 0; g < trace.group_count(); ++g)
    std::printf("%s%s", g == 0 ? "" : " ",
                service_role_name(trace.role_of_group(g)));
  std::printf(")\n");

  // Control plane: infer cliques from three noisy epochs.
  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {8, 16};
  opts.optimizer.max_q_denominator = 6;
  ControlPlane cp(kNodes, opts);
  for (int e = 0; e < 3; ++e) cp.on_epoch(trace.epoch_matrix(), e);
  const SornPlan& plan = cp.last_plan();
  std::printf(
      "control plane plan: Nc=%d, q=%.2f, locality x=%.3f, predicted "
      "r=%.3f\n\n",
      plan.cliques.clique_count(), plan.q.value(), plan.locality_x,
      plan.predicted_throughput);

  // Build SORN for the plan; compare against a flat 1D ORN.
  SornConfig cfg;
  cfg.nodes = kNodes;
  cfg.locality_x = plan.locality_x;
  cfg.q = plan.q;
  cfg.lb_mode = LbMode::kFirstAvailable;  // latency-oriented LB choice
  SornNetwork sorn_net = SornNetwork::build_with_assignment(cfg, plan.cliques);

  const TrafficMatrix demand = trace.macro_matrix();
  const RunResult s = run_workload(sorn_net.schedule(), sorn_net.router(),
                                   demand, sorn_net.cliques());
  const CircuitSchedule rr = ScheduleBuilder::round_robin(kNodes);
  const VlbRouter vlb(&rr, LbMode::kRandom);
  const RunResult o = run_workload(rr, vlb, demand, sorn_net.cliques());

  TablePrinter table({"Design", "flows", "intra FCT p50 (us)",
                      "intra FCT p99 (us)", "inter FCT p50 (us)",
                      "all FCT p50 (us)", "mean hops"});
  auto row = [&](const char* name, const RunResult& r) {
    table.add_row({name, format("%llu", static_cast<unsigned long long>(
                                            r.flows)),
                   format("%.1f", r.intra_p50_us),
                   format("%.1f", r.intra_p99_us),
                   format("%.1f", r.inter_p50_us),
                   format("%.1f", r.all_p50_us), format("%.2f", r.mean_hops)});
  };
  row("SORN (inferred cliques)", s);
  row("Flat 1D ORN + VLB", o);
  table.print();

  std::printf(
      "\nIntra-clique flows ride circuits that recur every ~%.0f slots on\n"
      "SORN vs %d on the flat schedule, so their completion times drop;\n"
      "inter-clique flows pay the third hop (SORN mean hops %.2f vs %.2f).\n",
      sorn_net.delta_m_intra(), kNodes - 1, s.mean_hops, o.mean_hops);
  return 0;
}
