// Head-to-head comparison of the three schedule/routing disciplines on the
// same fabric and the same workload (a simulation-scale version of the
// paper's Table 1): flat 1D ORN + VLB, 2D optimal ORN, and SORN with
// q = q*(x). Reports simulated saturation throughput, mean hops (the
// bandwidth tax) and median/99p cell latency at moderate load.
#include <cstdio>

#include "analysis/models.h"
#include "core/sorn.h"
#include "routing/orn_hd_routing.h"
#include "routing/vlb.h"
#include "sim/saturation.h"
#include "sim/workload_driver.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 64;  // 64 = 8^2: valid for the 2D ORN
constexpr double kLocality = 0.56;

struct Row {
  std::string name;
  double r_sim;
  double r_theory;
  double hops;
  double lat_p50_us;
  double lat_p99_us;
};

Row evaluate(const std::string& name, const CircuitSchedule& sched,
             const Router& router, const TrafficMatrix& tm,
             double r_theory) {
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  // Saturation throughput.
  SlottedNetwork sat_net(&sched, &router, cfg);
  SaturationSource source(&tm, SaturationConfig{});
  const double r_sim = source.measure(sat_net, 4000, 8000);
  const double hops = sat_net.metrics().mean_hops();

  // Latency at 60% of each design's own capacity (fair comparison: all
  // designs moderately loaded relative to what they can carry).
  SlottedNetwork lat_net(&sched, &router, cfg);
  const FlowSizeDist sizes = FlowSizeDist::fixed(2560);
  const double node_bw = 256.0 * 8.0 / 100e-9;
  FlowArrivals arrivals(&tm, &sizes, node_bw, 0.6 * r_theory, Rng(5));
  WorkloadDriver driver(&arrivals);
  driver.run_until(lat_net, 150 * 1000 * 1000, 200000);
  return Row{name,
             r_sim,
             r_theory,
             hops,
             lat_net.metrics().cell_latency_ps().percentile(50.0) / 1e6,
             lat_net.metrics().cell_latency_ps().percentile(99.0) / 1e6};
}

}  // namespace

int main() {
  const auto cliques = CliqueAssignment::contiguous(kNodes, 8);
  const TrafficMatrix tm = patterns::locality_mix(cliques, kLocality);

  std::printf(
      "Design comparison: %d nodes, locality x=%.2f, identical workload\n\n",
      kNodes, kLocality);

  std::vector<Row> rows;

  const CircuitSchedule rr = ScheduleBuilder::round_robin(kNodes);
  const VlbRouter vlb(&rr, LbMode::kRandom);
  rows.push_back(evaluate("1D ORN + VLB (Sirius-like)", rr, vlb, tm, 0.5));

  const CircuitSchedule hd = ScheduleBuilder::orn_hd(kNodes, 2);
  const OrnHdRouter hd_router(kNodes, 2);
  rows.push_back(evaluate("2D optimal ORN", hd, hd_router, tm, 0.25));

  SornConfig cfg;
  cfg.nodes = kNodes;
  cfg.cliques = 8;
  cfg.locality_x = kLocality;
  cfg.max_q_denominator = 6;
  // First-available load balancing: the paper's latency semantics (the
  // inter hop rides the next circuit into the target clique).
  cfg.lb_mode = LbMode::kFirstAvailable;
  const SornNetwork net = SornNetwork::build(cfg);
  const Row sorn_row =
      evaluate("SORN (8 cliques, q=q*)", net.schedule(), net.router(), tm,
               analysis::sorn_throughput(kLocality));
  rows.push_back(sorn_row);

  TablePrinter table({"Design", "r sim", "r theory", "mean hops",
                      "cell lat p50 (us)", "cell lat p99 (us)"});
  for (const Row& r : rows)
    table.add_row({r.name, format("%.4f", r.r_sim),
                   format("%.4f", r.r_theory), format("%.2f", r.hops),
                   format("%.2f", r.lat_p50_us), format("%.2f", r.lat_p99_us)});
  table.print();

  std::printf(
      "\nShape check (Table 1): SORN throughput sits between the 2D ORN\n"
      "and the 1D ORN while its latency beats the 1D ORN's.\n");
  return 0;
}
