// Head-to-head comparison of the three schedule/routing disciplines on the
// same fabric and the same workload (a simulation-scale version of the
// paper's Table 1): flat 1D ORN + VLB, 2D optimal ORN, and SORN with
// q = q*(x). Reports simulated saturation throughput, mean hops (the
// bandwidth tax) and median/99p cell latency at moderate load.
//
// Each design is driven through the scenario layer twice — one saturation
// scenario and one open-loop latency scenario at 60% of its own capacity
// — so all three share the exact `sorn_tool simulate` code path.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/models.h"
#include "scenario/scenario_runner.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 64;  // 64 = 8^2: valid for the 2D ORN
constexpr double kLocality = 0.56;

struct Row {
  std::string name;
  double r_sim;
  double r_theory;
  double hops;
  double lat_p50_us;
  double lat_p99_us;
};

std::unique_ptr<ScenarioRunner> run_or_die(const ScenarioConfig& cfg) {
  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  if (runner == nullptr || !runner->run(&error)) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    std::exit(1);
  }
  return runner;
}

// `base` selects the design; saturation throughput and hops come from a
// closed-loop scenario, latency from an open-loop one at 60% of the
// design's own capacity (fair comparison: all designs moderately loaded
// relative to what they can carry). r_theory defaults to the registry's
// prediction; the SORN row passes the uncapped closed form 1/(3-x).
Row evaluate(const std::string& name, const ScenarioConfig& base,
             double r_theory_override = 0.0) {
  ScenarioConfig sat = base;
  sat.workload = WorkloadKind::kSaturation;
  sat.warmup_slots = 4000;
  sat.measure_slots = 8000;
  auto sat_run = run_or_die(sat);
  const double r_theory = r_theory_override > 0.0
                              ? r_theory_override
                              : sat_run->design().predicted_throughput;

  ScenarioConfig lat = base;
  lat.workload = WorkloadKind::kFlows;
  lat.flow_size = FlowSizeKind::kFixed;
  lat.fixed_flow_bytes = 2560;
  lat.load = 0.6 * r_theory;
  lat.slots = 1500;  // 150 us horizon at the 100 ns slot
  lat.arrival_seed = 5;
  auto lat_run = run_or_die(lat);

  return Row{name,
             sat_run->saturation_r(),
             r_theory,
             sat_run->metrics().mean_hops(),
             lat_run->metrics().cell_latency_ps().percentile(50.0) / 1e6,
             lat_run->metrics().cell_latency_ps().percentile(99.0) / 1e6};
}

}  // namespace

int main() {
  std::printf(
      "Design comparison: %d nodes, locality x=%.2f, identical workload\n\n",
      kNodes, kLocality);

  ScenarioConfig base;
  base.nodes = kNodes;
  base.cliques = 8;
  base.locality_x = kLocality;
  base.propagation_ns = 0;

  std::vector<Row> rows;

  ScenarioConfig vlb = base;
  vlb.design = "vlb";
  rows.push_back(evaluate("1D ORN + VLB (Sirius-like)", vlb));

  ScenarioConfig hd = base;
  hd.design = "orn-hd";
  hd.orn_dims = 2;
  rows.push_back(evaluate("2D optimal ORN", hd));

  ScenarioConfig sorn = base;
  sorn.design = "sorn";
  sorn.max_q_denominator = 6;
  // First-available load balancing: the paper's latency semantics (the
  // inter hop rides the next circuit into the target clique).
  sorn.lb_first_available = true;
  rows.push_back(evaluate("SORN (8 cliques, q=q*)", sorn,
                          analysis::sorn_throughput(kLocality)));

  TablePrinter table({"Design", "r sim", "r theory", "mean hops",
                      "cell lat p50 (us)", "cell lat p99 (us)"});
  for (const Row& r : rows)
    table.add_row({r.name, format("%.4f", r.r_sim),
                   format("%.4f", r.r_theory), format("%.2f", r.hops),
                   format("%.2f", r.lat_p50_us), format("%.2f", r.lat_p99_us)});
  table.print();

  std::printf(
      "\nShape check (Table 1): SORN throughput sits between the 2D ORN\n"
      "and the 1D ORN while its latency beats the 1D ORN's.\n");
  return 0;
}
