// Failure drill (paper Sec. 6, "Practicality benefits"): inject a link
// failure and a node failure into a running SORN and watch containment —
// which traffic stalls, what keeps flowing, and how healing drains the
// backlog. Demonstrates the modular design's small blast radius and ease
// of diagnosis.
#include <cstdio>

#include "core/sorn.h"
#include "util/table.h"

namespace {

using namespace sorn;

constexpr NodeId kNodes = 32;
constexpr CliqueId kCliques = 4;

struct Probe {
  const char* name;
  NodeId src;
  NodeId dst;
};

// One probe flow per traffic relationship we care about.
constexpr Probe kProbes[] = {
    {"intra clique 0", 0, 5},
    {"clique 0 -> clique 1", 2, 10},
    {"clique 1 -> clique 0", 9, 3},
    {"clique 2 -> clique 3", 17, 28},
};

void run_probes(SlottedNetwork& net, TablePrinter& table, const char* phase) {
  net.reset_metrics();
  FlowId id = 1;
  for (const Probe& p : kProbes) {
    net.inject_flow(id, p.src, p.dst, 4 * 256, static_cast<int>(id));
    ++id;
  }
  net.run(3000);
  std::vector<std::string> row{phase};
  // Completed probes, in order.
  std::uint64_t done = net.metrics().completed_flows();
  row.push_back(format("%llu/4", static_cast<unsigned long long>(done)));
  row.push_back(format("%llu", static_cast<unsigned long long>(
                                   net.cells_in_flight())));
  table.add_row(std::move(row));
}

}  // namespace

int main() {
  SornConfig cfg;
  cfg.nodes = kNodes;
  cfg.cliques = kCliques;
  cfg.locality_x = 0.6;
  cfg.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();

  std::printf(
      "Failure drill: %d nodes, %d cliques. Probes: intra c0, c0->c1, "
      "c1->c0, c2->c3.\n\n",
      kNodes, kCliques);
  TablePrinter table({"phase", "probes completed", "cells stuck"});

  run_probes(sim, table, "healthy");

  // Fail every circuit from clique 0 into clique 1 (an inter-trunk cut).
  for (NodeId a = 0; a < 8; ++a)
    for (NodeId b = 8; b < 16; ++b) sim.fail_circuit(a, b);
  run_probes(sim, table, "c0->c1 trunk cut");

  // Heal, then fail one node in clique 2.
  for (NodeId a = 0; a < 8; ++a)
    for (NodeId b = 8; b < 16; ++b) sim.heal_circuit(a, b);
  sim.run(3000);  // drain the stuck probe
  sim.fail_node(17);
  run_probes(sim, table, "node 17 down");

  sim.heal_node(17);
  run_probes(sim, table, "healed");

  table.print();
  std::printf(
      "\nDiagnosis is immediate in a modular fabric: the trunk cut stalls\n"
      "exactly the c0->c1 probe (c1->c0 and everything else keep flowing);\n"
      "a node failure stalls only flows sourced at, destined to, or\n"
      "load-balanced through that node's clique paths. Healing drains the\n"
      "backlog without intervention because cells wait rather than drop.\n");
  return 0;
}
