// Quickstart: the paper's 8-node example (Fig. 2), end to end.
//
//   1. Build a SORN with two cliques of four and oversubscription q = 3 —
//      topology A of Fig. 2(d).
//   2. Inspect the schedule and the logical topology it emulates.
//   3. Route a few cells (including the paper's 0 -> 6 example).
//   4. Run the slot-level simulator and read latency metrics.
#include <cstdio>

#include "core/sorn.h"
#include "util/table.h"

int main() {
  using namespace sorn;

  // 1. Build.
  SornConfig config;
  config.nodes = 8;
  config.cliques = 2;
  config.q = Rational{3, 1};  // topology A: intra gets 3x inter bandwidth
  config.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(config);

  std::printf("SORN quickstart: %d nodes, %d cliques, q = %lld/%lld\n\n",
              config.nodes, config.cliques,
              static_cast<long long>(net.q().num),
              static_cast<long long>(net.q().den));

  // 2. The circuit schedule (one period).
  const CircuitSchedule& sched = net.schedule();
  std::printf("schedule period: %lld slots (intra share %.0f%%)\n",
              static_cast<long long>(sched.period()),
              sched.kind_fraction(SlotKind::kIntra) * 100.0);
  TablePrinter grid({"slot", "kind", "0", "1", "2", "3", "4", "5", "6", "7"});
  for (Slot t = 0; t < sched.period(); ++t) {
    std::vector<std::string> row{
        format("%lld", static_cast<long long>(t)),
        sched.kind_at(t) == SlotKind::kIntra ? "intra" : "inter"};
    for (NodeId i = 0; i < 8; ++i)
      row.push_back(format("%d", sched.dst_of(i, t)));
    grid.add_row(std::move(row));
  }
  grid.print();

  // Virtual-edge bandwidth (Fig. 2d: intra edges 3x the inter edges).
  const LogicalTopology topo = net.logical_topology();
  std::printf(
      "\nvirtual edge bandwidth (fraction of node bandwidth):\n"
      "  0 -> 1 (intra): %.3f\n"
      "  0 -> 4 (inter): %.3f\n"
      "  node 0 intra total: %.2f, inter total: %.2f\n",
      topo.edge_fraction(0, 1), topo.edge_fraction(0, 4),
      topo.intra_fraction(0, net.cliques()),
      topo.inter_fraction(0, net.cliques()));

  // 3. Routing: intra is 2 hops, inter is 3 (paper: 0->3->7->6 and
  // 0->1->4->6 are both possible for 0 -> 6).
  Rng rng(1);
  std::printf("\nsample routes:\n");
  for (int k = 0; k < 4; ++k) {
    const Path p = net.router().route(0, 6, k, rng);
    std::string s = "  0 -> 6 via";
    for (int h = 0; h < p.size(); ++h) s += format(" %d", p.at(h));
    std::printf("%s\n", s.c_str());
  }

  // 4. Simulate.
  SlottedNetwork sim = net.make_network();
  sim.inject_flow(/*flow=*/1, /*src=*/0, /*dst=*/3, /*bytes=*/2048);  // intra
  sim.inject_flow(/*flow=*/2, /*src=*/0, /*dst=*/6, /*bytes=*/2048);  // inter
  sim.run(200);
  std::printf(
      "\nsimulated: %llu cells delivered, mean hops %.2f, "
      "median cell latency %.0f ns, flows completed %llu\n",
      static_cast<unsigned long long>(sim.metrics().delivered_cells()),
      sim.metrics().mean_hops(),
      sim.metrics().cell_latency_ps().percentile(50.0) / 1e3,
      static_cast<unsigned long long>(sim.metrics().completed_flows()));

  // Closed-form predictions for this configuration.
  std::printf(
      "\npredicted (closed form): throughput %.1f%%, delta_m intra %.0f, "
      "inter %.0f\n",
      net.predicted_throughput() * 100.0, net.delta_m_intra(),
      net.delta_m_inter());
  return 0;
}
