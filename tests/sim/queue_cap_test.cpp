// Bounded NIC buffers: tail-drop semantics and accounting.
#include <gtest/gtest.h>

#include "routing/direct.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

NetworkConfig capped_config(std::uint64_t cap) {
  NetworkConfig c;
  c.propagation_per_hop = 0;
  c.max_queue_cells = cap;
  return c;
}

TEST(QueueCapTest, OverflowingCellsAreDropped) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, capped_config(3));
  for (int i = 0; i < 10; ++i) net.inject_cell(0, 2);
  EXPECT_EQ(net.metrics().dropped_cells(), 7u);
  EXPECT_EQ(net.cells_in_flight(), 3u);
  net.run(20);
  EXPECT_EQ(net.metrics().delivered_cells(), 3u);
}

TEST(QueueCapTest, ConservationIncludesDrops) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kRandom);
  SlottedNetwork net(&s, &router, capped_config(2));
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(8));
    auto dst = static_cast<NodeId>(rng.next_below(8));
    if (dst == src) dst = (dst + 1) % 8;
    net.inject_cell(src, dst);
    net.step();
  }
  EXPECT_EQ(net.metrics().injected_cells(),
            net.metrics().delivered_cells() + net.cells_in_flight() +
                net.metrics().dropped_cells());
}

TEST(QueueCapTest, ZeroCapMeansUnbounded) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, capped_config(0));
  for (int i = 0; i < 1000; ++i) net.inject_cell(0, 2);
  EXPECT_EQ(net.metrics().dropped_cells(), 0u);
  EXPECT_EQ(net.cells_in_flight(), 1000u);
}

TEST(QueueCapTest, SeparateFifosHaveSeparateCaps) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, capped_config(2));
  net.inject_cell(0, 1);
  net.inject_cell(0, 1);
  net.inject_cell(0, 2);  // different FIFO, not affected by 0->1's fill
  net.inject_cell(0, 2);
  EXPECT_EQ(net.metrics().dropped_cells(), 0u);
  net.inject_cell(0, 1);
  EXPECT_EQ(net.metrics().dropped_cells(), 1u);
}

}  // namespace
}  // namespace sorn
