// ThreadPool and shard-plan unit tests: shard coverage and in-shard
// ordering, exception propagation, and teardown while idle and mid-batch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/parallel.h"

namespace sorn {
namespace {

TEST(ShardRangesTest, CoversIndexSpaceContiguously) {
  for (const NodeId n : {1, 2, 7, 8, 64, 127, 128}) {
    for (const int shards : {1, 2, 3, 4, 7, 8, 200}) {
      const auto plan = shard_ranges(n, shards);
      ASSERT_FALSE(plan.empty());
      EXPECT_LE(static_cast<int>(plan.size()), shards);
      EXPECT_LE(plan.size(), static_cast<std::size_t>(n));
      NodeId expect_begin = 0;
      for (const ShardRange& r : plan) {
        EXPECT_EQ(r.begin, expect_begin);
        EXPECT_LT(r.begin, r.end) << "empty shard";
        expect_begin = r.end;
      }
      EXPECT_EQ(expect_begin, n) << "plan does not cover [0, n)";
    }
  }
}

TEST(ShardRangesTest, DeterministicAndBalanced) {
  const auto a = shard_ranges(128, 4);
  const auto b = shard_ranges(128, 4);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].end - a[i].begin, 32);
  }
}

TEST(ShardRangesTest, EmptyOnDegenerateInput) {
  EXPECT_TRUE(shard_ranges(0, 4).empty());
  EXPECT_TRUE(shard_ranges(16, 0).empty());
}

TEST(ThreadPoolTest, EveryShardRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kShards = 64;  // more shards than threads
  std::vector<std::atomic<int>> runs(kShards);
  for (auto& r : runs) r.store(0);
  pool.run_shards(kShards, [&](int s) { runs[s].fetch_add(1); });
  for (int s = 0; s < kShards; ++s) EXPECT_EQ(runs[s].load(), 1);
}

TEST(ThreadPoolTest, TaskOrderingWithinShardIsSequential) {
  ThreadPool pool(3);
  constexpr int kShards = 6;
  constexpr int kItemsPerShard = 50;
  std::vector<std::vector<int>> seen(kShards);
  pool.run_shards(kShards, [&](int s) {
    // Work items of one shard run on one thread, in submission order —
    // the property the engine's in-order staging buffers rely on.
    for (int k = 0; k < kItemsPerShard; ++k) seen[s].push_back(k);
  });
  for (int s = 0; s < kShards; ++s) {
    ASSERT_EQ(seen[s].size(), static_cast<std::size_t>(kItemsPerShard));
    for (int k = 0; k < kItemsPerShard; ++k) EXPECT_EQ(seen[s][k], k);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 200; ++batch)
    pool.run_shards(5, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1000);
}

// Regression for a stale-completion race: when wait() exits through its
// spin path, the finishing worker may only reach the mutex after the next
// batch has already begun. A completion flag set there would mark the
// *new* batch done and let its wait() return (via the cv path) while
// shards are still running. Alternate instant batches (spin-path exit)
// with slow batches (cv-path wait, forced by a shard that outlasts the
// spin window) and check no wait() ever returns before its batch drains.
TEST(ThreadPoolTest, SlowBatchAfterFastBatchWaitsForAllShards) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<int> fast{0};
    pool.run_shards(4, [&](int) { fast.fetch_add(1); });
    EXPECT_EQ(fast.load(), 4);
    std::atomic<int> slow{0};
    pool.run_shards(4, [&](int s) {
      if (s == 0) std::this_thread::sleep_for(std::chrono::milliseconds(3));
      slow.fetch_add(1);
    });
    EXPECT_EQ(slow.load(), 4) << "wait() returned with shards in flight";
  }
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToWait) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_shards(8,
                               [](int s) {
                                 if (s == 5) throw std::runtime_error("s5");
                               }),
               std::runtime_error);
  // The pool stays usable after a throwing batch.
  std::atomic<int> total{0};
  pool.run_shards(8, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPoolTest, LowestShardExceptionWinsDeterministically) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 10; ++rep) {
    try {
      pool.run_shards(8, [](int s) {
        if (s == 2 || s == 6) throw std::runtime_error("shard " +
                                                       std::to_string(s));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "shard 2");
    }
  }
}

TEST(ThreadPoolTest, InlinePoolRunsAndPropagatesExceptions) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<int> order;
  pool.run_shards(4, [&](int s) { order.push_back(s); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_THROW(
      pool.run_shards(2, [](int) { throw std::runtime_error("inline"); }),
      std::runtime_error);
}

TEST(ThreadPoolTest, TeardownWhileIdle) {
  auto pool = std::make_unique<ThreadPool>(4);
  pool->run_shards(4, [](int) {});
  pool.reset();  // workers parked or spinning; must join cleanly
  SUCCEED();
}

TEST(ThreadPoolTest, TeardownNeverUsed) {
  ThreadPool pool(3);
  SUCCEED();  // destructor joins workers that never saw a batch
}

TEST(ThreadPoolTest, TeardownMidBatchDrainsEveryTask) {
  std::vector<std::atomic<int>> runs(16);
  for (auto& r : runs) r.store(0);
  {
    ThreadPool pool(4);
    pool.begin(16, [&](int s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      runs[s].fetch_add(1);
    });
    // Destroyed without wait(): the destructor must drain the in-flight
    // batch before joining, never dropping or double-running a shard.
  }
  for (int s = 0; s < 16; ++s) EXPECT_EQ(runs[s].load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1);
}

}  // namespace
}  // namespace sorn
