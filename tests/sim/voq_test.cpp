#include "sim/voq.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

Cell make_cell(NodeId src, NodeId via, NodeId dst, Slot ready) {
  Cell c;
  c.flow = 1;
  c.path = Path::of({src, via, dst});
  c.hop = 0;
  c.inject_slot = 0;
  c.ready_slot = ready;
  return c;
}

TEST(VoqTest, PushPeekPop) {
  VoqSet voqs(4);
  voqs.push(make_cell(0, 1, 2, 0));
  EXPECT_EQ(voqs.total_queued(), 1u);
  EXPECT_EQ(voqs.queued_at(0), 1u);
  const Cell* head = voqs.peek(0, 1, 0);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->next_hop(), 1);
  voqs.pop(0, 1);
  EXPECT_EQ(voqs.total_queued(), 0u);
  EXPECT_EQ(voqs.peek(0, 1, 0), nullptr);
}

TEST(VoqTest, ReadySlotGatesTransmission) {
  VoqSet voqs(4);
  voqs.push(make_cell(0, 1, 2, 5));
  EXPECT_EQ(voqs.peek(0, 1, 4), nullptr);
  EXPECT_NE(voqs.peek(0, 1, 5), nullptr);
}

TEST(VoqTest, FifoOrderWithinQueue) {
  VoqSet voqs(4);
  Cell a = make_cell(0, 1, 2, 0);
  a.flow = 10;
  Cell b = make_cell(0, 1, 3, 0);
  b.flow = 20;
  voqs.push(a);
  voqs.push(b);
  EXPECT_EQ(voqs.peek(0, 1, 0)->flow, 10u);
  voqs.pop(0, 1);
  EXPECT_EQ(voqs.peek(0, 1, 0)->flow, 20u);
}

TEST(VoqTest, QueuesAreSeparatedByNextHop) {
  VoqSet voqs(4);
  voqs.push(make_cell(0, 1, 2, 0));
  voqs.push(make_cell(0, 2, 3, 0));
  EXPECT_NE(voqs.peek(0, 1, 0), nullptr);
  EXPECT_NE(voqs.peek(0, 2, 0), nullptr);
  EXPECT_EQ(voqs.peek(0, 3, 0), nullptr);
  EXPECT_EQ(voqs.queued_at(0), 2u);
}

TEST(VoqTest, MaxQueueDepth) {
  VoqSet voqs(4);
  for (int i = 0; i < 5; ++i) voqs.push(make_cell(0, 1, 2, 0));
  voqs.push(make_cell(1, 2, 3, 0));
  EXPECT_EQ(voqs.max_queue_depth(), 5u);
}

TEST(VoqTest, MaxQueueDepthTracksPushPopDropSequence) {
  // Pins the depth gauge across a mixed push / pop / refused-push
  // sequence: the sparse layout computes it from occupied queues only, and
  // it must match the dense layout's full-scan answer at every step.
  VoqSet voqs(4);
  EXPECT_EQ(voqs.max_queue_depth(), 0u);

  for (int i = 0; i < 3; ++i) voqs.push(make_cell(0, 1, 2, 0));
  EXPECT_EQ(voqs.max_queue_depth(), 3u);

  // A second, deeper queue takes over the max.
  for (int i = 0; i < 6; ++i) voqs.push(make_cell(2, 3, 1, 0));
  EXPECT_EQ(voqs.max_queue_depth(), 6u);

  // A refused push (tail-drop) must not move the gauge.
  EXPECT_FALSE(voqs.try_push(make_cell(2, 3, 1, 0), /*cap=*/6));
  EXPECT_EQ(voqs.max_queue_depth(), 6u);

  // Draining the deep queue hands the max back to the shallow one.
  for (int i = 0; i < 6; ++i) voqs.pop(2, 3);
  EXPECT_EQ(voqs.max_queue_depth(), 3u);

  // Draining everything returns the gauge to zero.
  for (int i = 0; i < 3; ++i) voqs.pop(0, 1);
  EXPECT_EQ(voqs.max_queue_depth(), 0u);
  EXPECT_EQ(voqs.total_queued(), 0u);
}

TEST(VoqTest, SizeOfUnmaterializedQueueIsZero) {
  VoqSet voqs(4);
  // Never-touched queue: no entry exists, size must read as 0 (the merge
  // phase's capacity check relies on this).
  EXPECT_EQ(voqs.size_of(1, 3), 0u);
  voqs.push(make_cell(1, 3, 2, 0));
  EXPECT_EQ(voqs.size_of(1, 3), 1u);
  // Drained queue: the sparse entry is erased, not left empty.
  voqs.pop(1, 3);
  EXPECT_EQ(voqs.size_of(1, 3), 0u);
  EXPECT_EQ(voqs.occupied_queues(), 0u);
}

TEST(VoqTest, OccupiedQueuesTracksLiveFanOut) {
  VoqSet voqs(8);
  EXPECT_EQ(voqs.occupied_queues(), 0u);
  voqs.push(make_cell(0, 1, 2, 0));
  voqs.push(make_cell(0, 1, 3, 0));  // same (0, 1) queue
  voqs.push(make_cell(0, 5, 3, 0));
  voqs.push(make_cell(4, 2, 6, 0));
  EXPECT_EQ(voqs.occupied_queues(), 3u);
  voqs.pop(0, 1);
  EXPECT_EQ(voqs.occupied_queues(), 3u) << "one cell left in (0, 1)";
  voqs.pop(0, 1);
  EXPECT_EQ(voqs.occupied_queues(), 2u) << "(0, 1) drained and erased";
  voqs.pop(0, 5);
  voqs.pop(4, 2);
  EXPECT_EQ(voqs.occupied_queues(), 0u);
}

TEST(VoqTest, ShardedPopsSettleIntoTotal) {
  // The parallel engine's contract: pop_sharded leaves total_queued
  // untouched (shards may not write shared state) and the coordinator
  // settles the sum once per lane.
  VoqSet voqs(4);
  voqs.push(make_cell(0, 1, 2, 0));
  voqs.push(make_cell(2, 3, 1, 0));
  voqs.pop_sharded(0, 1);
  voqs.pop_sharded(2, 3);
  EXPECT_EQ(voqs.total_queued(), 2u) << "sharded pops defer the total";
  EXPECT_EQ(voqs.queued_at(0), 0u) << "per-node state settles immediately";
  EXPECT_EQ(voqs.queued_at(2), 0u);
  voqs.settle_total(2);
  EXPECT_EQ(voqs.total_queued(), 0u);
}

TEST(VoqTest, RejectsDeliveredCell) {
  VoqSet voqs(4);
  Cell c = make_cell(0, 1, 2, 0);
  c.hop = 2;  // already at destination
  EXPECT_DEATH(voqs.push(c), "delivered");
}

TEST(VoqTest, PopEmptyAborts) {
  VoqSet voqs(2);
  EXPECT_DEATH(voqs.pop(0, 1), "empty");
}

}  // namespace
}  // namespace sorn
