#include "sim/voq.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

Cell make_cell(NodeId src, NodeId via, NodeId dst, Slot ready) {
  Cell c;
  c.flow = 1;
  c.path = Path::of({src, via, dst});
  c.hop = 0;
  c.inject_slot = 0;
  c.ready_slot = ready;
  return c;
}

TEST(VoqTest, PushPeekPop) {
  VoqSet voqs(4);
  voqs.push(make_cell(0, 1, 2, 0));
  EXPECT_EQ(voqs.total_queued(), 1u);
  EXPECT_EQ(voqs.queued_at(0), 1u);
  const Cell* head = voqs.peek(0, 1, 0);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->next_hop(), 1);
  voqs.pop(0, 1);
  EXPECT_EQ(voqs.total_queued(), 0u);
  EXPECT_EQ(voqs.peek(0, 1, 0), nullptr);
}

TEST(VoqTest, ReadySlotGatesTransmission) {
  VoqSet voqs(4);
  voqs.push(make_cell(0, 1, 2, 5));
  EXPECT_EQ(voqs.peek(0, 1, 4), nullptr);
  EXPECT_NE(voqs.peek(0, 1, 5), nullptr);
}

TEST(VoqTest, FifoOrderWithinQueue) {
  VoqSet voqs(4);
  Cell a = make_cell(0, 1, 2, 0);
  a.flow = 10;
  Cell b = make_cell(0, 1, 3, 0);
  b.flow = 20;
  voqs.push(a);
  voqs.push(b);
  EXPECT_EQ(voqs.peek(0, 1, 0)->flow, 10u);
  voqs.pop(0, 1);
  EXPECT_EQ(voqs.peek(0, 1, 0)->flow, 20u);
}

TEST(VoqTest, QueuesAreSeparatedByNextHop) {
  VoqSet voqs(4);
  voqs.push(make_cell(0, 1, 2, 0));
  voqs.push(make_cell(0, 2, 3, 0));
  EXPECT_NE(voqs.peek(0, 1, 0), nullptr);
  EXPECT_NE(voqs.peek(0, 2, 0), nullptr);
  EXPECT_EQ(voqs.peek(0, 3, 0), nullptr);
  EXPECT_EQ(voqs.queued_at(0), 2u);
}

TEST(VoqTest, MaxQueueDepth) {
  VoqSet voqs(4);
  for (int i = 0; i < 5; ++i) voqs.push(make_cell(0, 1, 2, 0));
  voqs.push(make_cell(1, 2, 3, 0));
  EXPECT_EQ(voqs.max_queue_depth(), 5u);
}

TEST(VoqTest, RejectsDeliveredCell) {
  VoqSet voqs(4);
  Cell c = make_cell(0, 1, 2, 0);
  c.hop = 2;  // already at destination
  EXPECT_DEATH(voqs.push(c), "delivered");
}

TEST(VoqTest, PopEmptyAborts) {
  VoqSet voqs(2);
  EXPECT_DEATH(voqs.pop(0, 1), "empty");
}

}  // namespace
}  // namespace sorn
