// Thread-count byte-equivalence for the closed-loop transport (satellite
// of the transport PR): DCTCP windows + ECN marking + stall
// retransmission under a gray-failure blast must produce byte-identical
// artifacts at 1, 4 and 7 engine threads. This puts the ECN mark's
// sequential-order queue-size reconstruction (the merge phase's
// popped_/adj bookkeeping) on the line together with the ack echo, which
// must happen on the coordinating thread only.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sorn.h"
#include "obs/export.h"
#include "sim/workload_driver.h"
#include "traffic/flow_size.h"
#include "traffic/patterns.h"
#include "traffic/workloads.h"
#include "transport/transport.h"

namespace sorn {
namespace {

struct Artifacts {
  std::string metrics_json;
  std::vector<std::string> trace_lines;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t ecn_marked = 0;
  std::uint64_t acked = 0;
  std::uint64_t in_flight = 0;
};

// Incast waves through DCTCP on a SORN fabric, with bounded queues, a
// tiny ECN threshold, stall retransmission, and a mid-run gray-failure
// blast (lossy + throttled circuits) that heals before the drain.
Artifacts run_gray_blast(int threads) {
  SornConfig cfg;
  cfg.nodes = 32;
  cfg.cliques = 8;
  cfg.locality_x = 0.5;
  cfg.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(cfg);
  NetworkConfig net_cfg;
  net_cfg.propagation_per_hop = 0;
  net_cfg.max_queue_cells = 24;
  net_cfg.ecn_threshold_cells = 6;
  SlottedNetwork sim(&net.schedule(), &net.router(), net_cfg);
  sim.set_threads(threads);

  Telemetry telemetry(TelemetryOptions{.sample_every = 10});
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  sim.set_telemetry(&telemetry);

  DctcpTransport::Options topts;
  topts.congestion.init_cwnd_cells = 8;
  topts.congestion.gain = 0.25;
  DctcpTransport transport(topts);
  sim.set_transport(&transport);

  IncastArrivals arrivals(cfg.nodes, /*fanin=*/12, /*bytes_per_sender=*/8192,
                          /*period_slots=*/200,
                          sim.config().slot_duration, Rng(21));
  WorkloadDriver driver(&arrivals);
  driver.set_transport(&transport);
  driver.set_retransmit({/*timeout_slots=*/128, /*max_attempts=*/8,
                         /*check_every=*/16});
  driver.set_slot_hook([](SlottedNetwork& n, Slot now) {
    if (now == 300) {
      n.degrade_circuit(1, 2, /*loss_p=*/0.5);
      n.degrade_circuit(5, 9, /*loss_p=*/0.25);
      n.throttle_circuit(3, 7, /*capacity=*/0.3);
    }
    if (now == 1500) n.restore_all_gray();
  });
  driver.run_until(sim, 2000 * sim.config().slot_duration, 30000);

  Artifacts out;
  ExportOptions eopts;
  eopts.nodes = cfg.nodes;
  const TransportStats tstats = transport.stats();
  eopts.transport = &tstats;
  out.metrics_json = run_to_json(sim.metrics(), &telemetry, eopts);
  out.trace_lines = sink.lines();
  out.delivered = sim.metrics().delivered_cells();
  out.dropped = sim.metrics().dropped_cells();
  out.ecn_marked = sim.metrics().ecn_marked_cells();
  out.acked = tstats.acked_cells;
  out.in_flight = sim.cells_in_flight();
  return out;
}

TEST(TransportEquivalenceTest, GrayBlastArtifactsAreByteIdentical) {
  const Artifacts base = run_gray_blast(1);
  ASSERT_GT(base.delivered, 0u);
  ASSERT_GT(base.ecn_marked, 0u) << "the blast must actually mark cells";
  ASSERT_GT(base.acked, 0u);
  for (const int threads : {4, 7}) {
    const Artifacts other = run_gray_blast(threads);
    EXPECT_EQ(base.metrics_json, other.metrics_json) << "threads=" << threads;
    EXPECT_EQ(base.trace_lines, other.trace_lines) << "threads=" << threads;
    EXPECT_EQ(base.delivered, other.delivered) << "threads=" << threads;
    EXPECT_EQ(base.dropped, other.dropped) << "threads=" << threads;
    EXPECT_EQ(base.ecn_marked, other.ecn_marked) << "threads=" << threads;
    EXPECT_EQ(base.acked, other.acked) << "threads=" << threads;
    EXPECT_EQ(base.in_flight, other.in_flight) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace sorn
