#include <gtest/gtest.h>

#include "routing/vlb.h"
#include "sim/saturation.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

NetworkConfig sim_config() {
  NetworkConfig c;
  c.propagation_per_hop = 0;
  return c;
}

TEST(FlowSaturationTest, FixedSizeFlowsMatchCellSaturation) {
  // With single-cell flows the flow-granular source degenerates to the
  // cell-granular one: same throughput within noise.
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kRandom);
  const TrafficMatrix tm = patterns::uniform(16);
  const FlowSizeDist one_cell = FlowSizeDist::fixed(256);

  SlottedNetwork cell_net(&s, &router, sim_config());
  SaturationSource cell_source(&tm, SaturationConfig{});
  const double r_cells = cell_source.measure(cell_net, 3000, 5000);

  SlottedNetwork flow_net(&s, &router, sim_config());
  FlowSaturationSource flow_source(&tm, &one_cell, SaturationConfig{});
  const double r_flows = flow_source.measure(flow_net, 3000, 5000);

  EXPECT_NEAR(r_flows, r_cells, 0.03);
}

TEST(FlowSaturationTest, HeavyTailsCostThroughput) {
  // Elephants concentrate a node's demand on one destination at a time;
  // saturation throughput under pFabric sizes is below the cell-level
  // worst-case bound but not collapsed.
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kRandom);
  const TrafficMatrix tm = patterns::uniform(16);
  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();

  SlottedNetwork net(&s, &router, sim_config());
  FlowSaturationSource source(&tm, &sizes, SaturationConfig{});
  const double r = source.measure(net, 5000, 8000);
  EXPECT_GT(r, 0.25);
  EXPECT_LT(r, 0.5);
}

TEST(FlowSaturationTest, MoreConcurrencyRecoversThroughput) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kRandom);
  const TrafficMatrix tm = patterns::uniform(16);
  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();

  auto measure = [&](int concurrency) {
    SlottedNetwork net(&s, &router, sim_config());
    FlowSaturationSource source(&tm, &sizes, SaturationConfig{}, concurrency);
    return source.measure(net, 5000, 8000);
  };
  EXPECT_GT(measure(16), measure(1) + 0.02);
}

TEST(FlowSaturationTest, RespectsInFlightCap) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kRandom);
  const TrafficMatrix tm = patterns::uniform(8);
  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();
  SlottedNetwork net(&s, &router, sim_config());
  SaturationConfig cfg;
  cfg.max_in_flight_per_node = 16;
  FlowSaturationSource source(&tm, &sizes, cfg);
  for (int i = 0; i < 300; ++i) {
    source.pump(net);
    net.step();
  }
  EXPECT_LE(net.cells_in_flight(), (16 + 2) * 8u);
}

}  // namespace
}  // namespace sorn
