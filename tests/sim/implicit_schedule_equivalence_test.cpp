// Implicit (compact shift) vs explicit matching storage: for the same
// seed, a simulation driven by a builder-emitted compact schedule must
// produce byte-identical artifacts — metrics JSON, per-slot time-series
// CSV, JSONL trace — to the same simulation driven by an explicitly
// materialized copy of that schedule, at any thread count.
//
// This is the acceptance pin of the implicit-schedule PR (DESIGN.md §11):
// the compact representation changes *where* dst_of comes from, never
// what it returns, so nothing downstream — VOQ order, drop decisions,
// RNG draw sequence, telemetry — may move. Scenarios cover the paths
// where a representation bug would surface: SORN intra/inter slot mixes
// with a fault blast, and a large-N (1024) run with bounded queues,
// drops, and a mid-run reconfigure onto a different compact family
// (orn-hd digit shifts).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "routing/sorn_routing.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/clique.h"
#include "topo/schedule.h"
#include "topo/schedule_builder.h"
#include "util/rng.h"

namespace sorn {
namespace {

constexpr int kThreadCounts[] = {1, 4, 7};

// An explicit-storage copy of a schedule: every slot's matching is
// materialized into a full destination vector, kinds preserved.
CircuitSchedule materialize(const CircuitSchedule& s) {
  std::vector<Matching> matchings;
  std::vector<SlotKind> kinds;
  matchings.reserve(static_cast<std::size_t>(s.period()));
  kinds.reserve(static_cast<std::size_t>(s.period()));
  for (Slot t = 0; t < s.period(); ++t) {
    matchings.push_back(s.matching_at(t).materialized());
    kinds.push_back(s.kind_at(t));
  }
  return CircuitSchedule(std::move(matchings), std::move(kinds));
}

void expect_all_compact(const CircuitSchedule& s) {
  for (Slot t = 0; t < s.period(); ++t) {
    ASSERT_TRUE(s.matching_at(t).is_compact()) << "slot " << t;
    ASSERT_EQ(s.matching_at(t).memory_bytes(), 0u) << "slot " << t;
  }
}

struct Artifacts {
  std::string metrics_json;
  std::string timeseries_csv;
  std::vector<std::string> trace_lines;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t in_flight = 0;
};

void expect_identical(const Artifacts& base, const Artifacts& other,
                      const std::string& label) {
  EXPECT_EQ(base.metrics_json, other.metrics_json) << label;
  EXPECT_EQ(base.timeseries_csv, other.timeseries_csv) << label;
  EXPECT_EQ(base.trace_lines, other.trace_lines) << label;
  EXPECT_EQ(base.delivered, other.delivered) << label;
  EXPECT_EQ(base.dropped, other.dropped) << label;
  EXPECT_EQ(base.forwarded, other.forwarded) << label;
  EXPECT_EQ(base.in_flight, other.in_flight) << label;
}

// SORN fabric (intra/inter slot mix) under a mid-run fault blast: failed
// nodes/circuits make transmit eligibility depend on exactly which
// circuit each slot realizes, so a compact slot computing even one wrong
// dst would shift deliveries, drops, and the trace.
Artifacts run_sorn_blast(const CircuitSchedule& schedule, int threads) {
  constexpr NodeId kNodes = 64;
  const CliqueAssignment cliques = CliqueAssignment::contiguous(kNodes, 8);
  const SornRouter router(&schedule, &cliques, LbMode::kRandom);
  NetworkConfig config;
  config.lanes = 2;
  config.propagation_per_hop = 0;
  SlottedNetwork net(&schedule, &router, config);
  net.set_threads(threads);

  Telemetry telemetry(TelemetryOptions{.sample_every = 5});
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  net.set_telemetry(&telemetry);

  Rng rng(21);
  auto pump = [&](int rounds, int cells) {
    for (int round = 0; round < rounds; ++round) {
      for (int k = 0; k < cells; ++k) {
        const auto src = static_cast<NodeId>(rng.next_below(kNodes));
        auto dst = static_cast<NodeId>(rng.next_below(kNodes));
        if (dst == src) dst = (dst + 1) % kNodes;
        net.inject_cell(src, dst);
      }
      net.step();
    }
  };
  pump(150, 24);
  net.fail_node(5);
  net.fail_node(42);
  net.fail_circuit(7, 13);
  pump(100, 24);
  net.heal_node(5);
  net.heal_node(42);
  net.heal_circuit(7, 13);
  pump(50, 24);
  net.run(400);

  Artifacts out;
  ExportOptions eopts;
  eopts.nodes = kNodes;
  eopts.lanes = config.lanes;
  out.metrics_json = run_to_json(net.metrics(), &telemetry, eopts);
  out.timeseries_csv = telemetry.timeseries()->to_csv();
  out.trace_lines = sink.lines();
  out.delivered = net.metrics().delivered_cells();
  out.dropped = net.metrics().dropped_cells();
  out.forwarded = net.metrics().forwarded_cells();
  out.in_flight = net.cells_in_flight();
  return out;
}

// N = 1024 with bounded queues (tail drops) and a mid-run reconfigure
// from the AWGR round robin onto the orn-hd digit-shift family — both
// compact in the implicit run, both materialized in the explicit run.
Artifacts run_large_reconfigure(const CircuitSchedule& rr,
                                const CircuitSchedule& orn, int threads) {
  constexpr NodeId kNodes = 1024;
  const VlbRouter vlb_rr(&rr, LbMode::kRandom);
  const VlbRouter vlb_orn(&orn, LbMode::kRandom);
  NetworkConfig config;
  config.propagation_per_hop = 0;
  config.max_queue_cells = 2;
  SlottedNetwork net(&rr, &vlb_rr, config);
  net.set_threads(threads);

  Telemetry telemetry(TelemetryOptions{.sample_every = 25});
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  net.set_telemetry(&telemetry);

  Rng rng(31);
  for (int round = 0; round < 120; ++round) {
    if (round == 60) net.reconfigure(&orn, &vlb_orn);
    for (int k = 0; k < 1024; ++k) {
      const auto src = static_cast<NodeId>(rng.next_below(kNodes));
      auto dst = static_cast<NodeId>(rng.next_below(kNodes));
      if (dst == src) dst = (dst + 1) % kNodes;
      net.inject_cell(src, dst);
    }
    net.step();
  }
  net.run(300);

  Artifacts out;
  ExportOptions eopts;
  eopts.nodes = kNodes;
  out.metrics_json = run_to_json(net.metrics(), &telemetry, eopts);
  out.timeseries_csv = telemetry.timeseries()->to_csv();
  out.trace_lines = sink.lines();
  out.delivered = net.metrics().delivered_cells();
  out.dropped = net.metrics().dropped_cells();
  out.forwarded = net.metrics().forwarded_cells();
  out.in_flight = net.cells_in_flight();
  return out;
}

TEST(ImplicitScheduleEquivalenceTest, SornFaultBlastArtifactsMatch) {
  const CircuitSchedule compact = ScheduleBuilder::sorn(
      CliqueAssignment::contiguous(64, 8), Rational{2, 1}, 1 << 18);
  expect_all_compact(compact);
  const CircuitSchedule explicit_copy = materialize(compact);
  ASSERT_EQ(explicit_copy.period(), compact.period());

  const Artifacts base = run_sorn_blast(compact, 1);
  ASSERT_GT(base.delivered, 0u);
  ASSERT_GT(base.forwarded, 0u);
  ASSERT_FALSE(base.trace_lines.empty());
  for (const int threads : kThreadCounts) {
    expect_identical(base, run_sorn_blast(explicit_copy, threads),
                     "explicit threads=" + std::to_string(threads));
    if (threads != 1)
      expect_identical(base, run_sorn_blast(compact, threads),
                       "compact threads=" + std::to_string(threads));
  }
}

TEST(ImplicitScheduleEquivalenceTest, LargeNReconfigureArtifactsMatch) {
  const CircuitSchedule rr = ScheduleBuilder::round_robin(1024);
  const CircuitSchedule orn = ScheduleBuilder::orn_hd(1024, 5);
  expect_all_compact(rr);
  expect_all_compact(orn);
  const CircuitSchedule rr_explicit = materialize(rr);
  const CircuitSchedule orn_explicit = materialize(orn);

  // The storage win the compact form exists for: the explicit copy pays
  // O(period * n) for its destination vectors, the compact one does not.
  EXPECT_GT(rr_explicit.memory_bytes(), 20 * rr.memory_bytes());

  const Artifacts base = run_large_reconfigure(rr, orn, 1);
  ASSERT_GT(base.delivered, 0u);
  ASSERT_GT(base.dropped, 0u) << "scenario must exercise tail drops";
  ASSERT_GT(base.forwarded, 0u);
  for (const int threads : kThreadCounts) {
    expect_identical(base, run_large_reconfigure(rr_explicit, orn_explicit,
                                                 threads),
                     "explicit threads=" + std::to_string(threads));
    if (threads != 1)
      expect_identical(base, run_large_reconfigure(rr, orn, threads),
                       "compact threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace sorn
