// End-host retransmission and outage recovery semantics.
//
// Regression suite for the fault-injection PR's acceptance criteria:
// cells queued behind a failed node resume after heal with FCT measured
// from the true inject slot (including across a mid-outage reconfig
// swap); flows whose cells were lost outright complete via retransmission
// with exponential backoff; and receiver dedup keeps the accounting exact
// when both an original and its retransmitted copy arrive.
#include <gtest/gtest.h>

#include "routing/sorn_routing.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

NetworkConfig fast_config() {
  NetworkConfig c;
  c.propagation_per_hop = 0;
  return c;
}

class DirectRouter : public Router {
 public:
  Path route(NodeId src, NodeId dst, Slot, Rng&) const override {
    return Path::of({src, dst});
  }
  int max_hops() const override { return 1; }
};

// Step `slots` slots, running the stall detector every `check` slots.
void run_with_retransmit(SlottedNetwork& net, Slot slots, Slot timeout,
                         Slot check) {
  for (Slot t = 0; t < slots; ++t) {
    if (net.now() % check == 0)
      net.retransmit_stalled({timeout, /*max_attempts=*/8});
    net.step();
  }
}

TEST(RetransmitTest, QueuedCellsResumeAfterHealWithTrueFct) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  net.fail_node(2);
  net.inject_flow(/*flow=*/1, /*src=*/0, /*dst=*/2, /*bytes=*/512);  // 2 cells
  constexpr Slot kOutage = 200;
  net.run(kOutage);
  EXPECT_EQ(net.metrics().delivered_cells(), 0u);
  EXPECT_EQ(net.metrics().completed_flows(), 0u);
  EXPECT_EQ(net.cells_in_flight(), 2u) << "outage queues, never drops";

  net.heal_node(2);
  net.run(50);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.cells_in_flight(), 0u);
  // FCT spans the outage: at least kOutage slots of wall time, measured
  // from the true inject slot, not from the heal.
  const double fct = net.metrics().fct_ps().percentile(50.0);
  EXPECT_GE(fct, static_cast<double>(kOutage) *
                     static_cast<double>(net.config().slot_duration));
}

TEST(RetransmitTest, MidOutageReconfigSwapKeepsFctAccounting) {
  // The flow is injected, the destination fails, and while it is down the
  // control plane swaps the schedule/router generation. The stranded
  // cells keep their old paths; after the heal they deliver under the new
  // generation and the FCT still spans the whole episode.
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  const VlbRouter vlb(&rr, LbMode::kFirstAvailable);
  SlottedNetwork net(&rr, &vlb, fast_config());

  net.inject_flow(/*flow=*/9, /*src=*/0, /*dst=*/5, /*bytes=*/1024);
  net.fail_node(5);
  constexpr Slot kOutage = 300;
  net.run(kOutage);
  EXPECT_EQ(net.metrics().completed_flows(), 0u);

  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule sorn_sched = ScheduleBuilder::sorn(cliques, {3, 1});
  const SornRouter sorn_router(&sorn_sched, &cliques, LbMode::kRandom);
  net.reconfigure(&sorn_sched, &sorn_router);

  net.heal_node(5);
  net.run(400);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.metrics().open_flows(), 0u);
  const double fct = net.metrics().fct_ps().percentile(50.0);
  EXPECT_GE(fct, static_cast<double>(kOutage) *
                     static_cast<double>(net.config().slot_duration));
}

TEST(RetransmitTest, RetransmissionRecoversCellsLostToDrops) {
  // A bounded source queue tail-drops most of a burst at injection: those
  // cells are gone, not queued, so only retransmission can complete the
  // flow. The stall detector must fire (with backoff) until every missing
  // seq has been re-admitted and delivered.
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  NetworkConfig config = fast_config();
  config.max_queue_cells = 4;
  SlottedNetwork net(&s, &router, config);

  net.inject_flow(/*flow=*/3, /*src=*/0, /*dst=*/1, /*bytes=*/20 * 256);
  EXPECT_GT(net.metrics().dropped_cells(), 0u) << "burst must overflow";

  run_with_retransmit(net, /*slots=*/4000, /*timeout=*/16, /*check=*/4);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.metrics().open_flows(), 0u);
  EXPECT_GT(net.metrics().retransmit_events(), 0u);
  EXPECT_GT(net.metrics().retransmitted_cells(), 0u);
  EXPECT_EQ(net.metrics().recovered_flows(), 1u);
  EXPECT_GT(net.metrics().mean_recovery_slots(), 0.0);
  // Conservation: every injected cell (originals + retransmitted copies)
  // is accounted for.
  EXPECT_EQ(net.metrics().injected_cells(),
            net.metrics().delivered_cells() + net.metrics().dropped_cells() +
                net.cells_in_flight());
}

TEST(RetransmitTest, ReceiverDedupKeepsFlowAccountingExact) {
  // Outage semantics keep the originals queued; retransmission re-admits
  // copies of the same seqs. After the heal both generations deliver —
  // the receiver must count the flow complete exactly once and tally the
  // surplus as duplicates.
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  net.fail_node(2);
  net.inject_flow(/*flow=*/5, /*src=*/0, /*dst=*/2, /*bytes=*/4 * 256);
  // Let the stall detector fire at least once while the originals are
  // stuck: copies pile up behind the same failed node.
  run_with_retransmit(net, /*slots=*/200, /*timeout=*/32, /*check=*/8);
  EXPECT_GT(net.metrics().retransmitted_cells(), 0u);

  net.heal_node(2);
  run_with_retransmit(net, /*slots=*/400, /*timeout=*/32, /*check=*/8);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.metrics().open_flows(), 0u);
  EXPECT_GT(net.metrics().duplicate_cells(), 0u)
      << "both the original and the copy of some seq must have arrived";
  // delivered counts every arriving copy; exactly 4 of them were firsts.
  EXPECT_EQ(net.metrics().delivered_cells(),
            4u + net.metrics().duplicate_cells());
  EXPECT_EQ(net.metrics().injected_cells(),
            net.metrics().delivered_cells() + net.metrics().dropped_cells() +
                net.cells_in_flight());
}

TEST(RetransmitTest, BackoffCapsAttempts) {
  // An unhealable outage: the destination stays down forever. The stall
  // detector must stop re-admitting after max_attempts rounds instead of
  // flooding the queues.
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  net.fail_node(2);
  net.inject_flow(/*flow=*/7, /*src=*/0, /*dst=*/2, /*bytes=*/256);
  for (Slot t = 0; t < 3000; ++t) {
    net.retransmit_stalled({/*timeout_slots=*/4, /*max_attempts=*/3});
    net.step();
  }
  EXPECT_EQ(net.metrics().retransmit_events(), 3u);
  EXPECT_EQ(net.metrics().completed_flows(), 0u);
  EXPECT_EQ(net.metrics().open_flows(), 1u);
}

}  // namespace
}  // namespace sorn
