// End-host retransmission and outage recovery semantics.
//
// Regression suite for the fault-injection PR's acceptance criteria:
// cells queued behind a failed node resume after heal with FCT measured
// from the true inject slot (including across a mid-outage reconfig
// swap); flows whose cells were lost outright complete via retransmission
// with exponential backoff; and receiver dedup keeps the accounting exact
// when both an original and its retransmitted copy arrive.
#include <gtest/gtest.h>

#include <cstdint>

#include "routing/sorn_routing.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "sim/workload_driver.h"
#include "topo/schedule_builder.h"
#include "traffic/arrivals.h"
#include "traffic/flow_size.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

NetworkConfig fast_config() {
  NetworkConfig c;
  c.propagation_per_hop = 0;
  return c;
}

class DirectRouter : public Router {
 public:
  Path route(NodeId src, NodeId dst, Slot, Rng&) const override {
    return Path::of({src, dst});
  }
  int max_hops() const override { return 1; }
};

// Delegates to an inner router and tallies route() calls, so tests can
// prove which path class served an injection or a retransmission.
class CountingRouter : public Router {
 public:
  explicit CountingRouter(const Router* inner) : inner_(inner) {}
  Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const override {
    ++calls_;
    return inner_->route(src, dst, now, rng);
  }
  int max_hops() const override { return inner_->max_hops(); }
  std::uint64_t calls() const { return calls_; }

 private:
  const Router* inner_;
  mutable std::uint64_t calls_ = 0;
};

// Step `slots` slots, running the stall detector every `check` slots.
void run_with_retransmit(SlottedNetwork& net, Slot slots, Slot timeout,
                         Slot check) {
  for (Slot t = 0; t < slots; ++t) {
    if (net.now() % check == 0)
      net.retransmit_stalled({timeout, /*max_attempts=*/8});
    net.step();
  }
}

TEST(RetransmitTest, QueuedCellsResumeAfterHealWithTrueFct) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  net.fail_node(2);
  net.inject_flow(/*flow=*/1, /*src=*/0, /*dst=*/2, /*bytes=*/512);  // 2 cells
  constexpr Slot kOutage = 200;
  net.run(kOutage);
  EXPECT_EQ(net.metrics().delivered_cells(), 0u);
  EXPECT_EQ(net.metrics().completed_flows(), 0u);
  EXPECT_EQ(net.cells_in_flight(), 2u) << "outage queues, never drops";

  net.heal_node(2);
  net.run(50);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.cells_in_flight(), 0u);
  // FCT spans the outage: at least kOutage slots of wall time, measured
  // from the true inject slot, not from the heal.
  const double fct = net.metrics().fct_ps().percentile(50.0);
  EXPECT_GE(fct, static_cast<double>(kOutage) *
                     static_cast<double>(net.config().slot_duration));
}

TEST(RetransmitTest, MidOutageReconfigSwapKeepsFctAccounting) {
  // The flow is injected, the destination fails, and while it is down the
  // control plane swaps the schedule/router generation. The stranded
  // cells keep their old paths; after the heal they deliver under the new
  // generation and the FCT still spans the whole episode.
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  const VlbRouter vlb(&rr, LbMode::kFirstAvailable);
  SlottedNetwork net(&rr, &vlb, fast_config());

  net.inject_flow(/*flow=*/9, /*src=*/0, /*dst=*/5, /*bytes=*/1024);
  net.fail_node(5);
  constexpr Slot kOutage = 300;
  net.run(kOutage);
  EXPECT_EQ(net.metrics().completed_flows(), 0u);

  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule sorn_sched = ScheduleBuilder::sorn(cliques, {3, 1});
  const SornRouter sorn_router(&sorn_sched, &cliques, LbMode::kRandom);
  net.reconfigure(&sorn_sched, &sorn_router);

  net.heal_node(5);
  net.run(400);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.metrics().open_flows(), 0u);
  const double fct = net.metrics().fct_ps().percentile(50.0);
  EXPECT_GE(fct, static_cast<double>(kOutage) *
                     static_cast<double>(net.config().slot_duration));
}

TEST(RetransmitTest, RetransmissionRecoversCellsLostToDrops) {
  // A bounded source queue tail-drops most of a burst at injection: those
  // cells are gone, not queued, so only retransmission can complete the
  // flow. The stall detector must fire (with backoff) until every missing
  // seq has been re-admitted and delivered.
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  NetworkConfig config = fast_config();
  config.max_queue_cells = 4;
  SlottedNetwork net(&s, &router, config);

  net.inject_flow(/*flow=*/3, /*src=*/0, /*dst=*/1, /*bytes=*/20 * 256);
  EXPECT_GT(net.metrics().dropped_cells(), 0u) << "burst must overflow";

  run_with_retransmit(net, /*slots=*/4000, /*timeout=*/16, /*check=*/4);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.metrics().open_flows(), 0u);
  EXPECT_GT(net.metrics().retransmit_events(), 0u);
  EXPECT_GT(net.metrics().retransmitted_cells(), 0u);
  EXPECT_EQ(net.metrics().recovered_flows(), 1u);
  EXPECT_GT(net.metrics().mean_recovery_slots(), 0.0);
  // Conservation: every injected cell (originals + retransmitted copies)
  // is accounted for.
  EXPECT_EQ(net.metrics().injected_cells(),
            net.metrics().delivered_cells() + net.metrics().dropped_cells() +
                net.cells_in_flight());
}

TEST(RetransmitTest, ReceiverDedupKeepsFlowAccountingExact) {
  // Outage semantics keep the originals queued; retransmission re-admits
  // copies of the same seqs. After the heal both generations deliver —
  // the receiver must count the flow complete exactly once and tally the
  // surplus as duplicates.
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  net.fail_node(2);
  net.inject_flow(/*flow=*/5, /*src=*/0, /*dst=*/2, /*bytes=*/4 * 256);
  // Let the stall detector fire at least once while the originals are
  // stuck: copies pile up behind the same failed node.
  run_with_retransmit(net, /*slots=*/200, /*timeout=*/32, /*check=*/8);
  EXPECT_GT(net.metrics().retransmitted_cells(), 0u);

  net.heal_node(2);
  run_with_retransmit(net, /*slots=*/400, /*timeout=*/32, /*check=*/8);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.metrics().open_flows(), 0u);
  EXPECT_GT(net.metrics().duplicate_cells(), 0u)
      << "both the original and the copy of some seq must have arrived";
  // delivered counts every arriving copy; exactly 4 of them were firsts.
  EXPECT_EQ(net.metrics().delivered_cells(),
            4u + net.metrics().duplicate_cells());
  EXPECT_EQ(net.metrics().injected_cells(),
            net.metrics().delivered_cells() + net.metrics().dropped_cells() +
                net.cells_in_flight());
}

TEST(RetransmitTest, BulkFlowsRetransmitThroughBulkRouter) {
  // Regression: retransmit_stalled used to re-route every stalled flow
  // through the primary router, even flows that were injected through the
  // bulk router (Opera's short/bulk split). Bulk flows must retransmit
  // through the bulk path class.
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter direct;
  const CountingRouter primary(&direct);
  const CountingRouter bulk(&direct);
  SlottedNetwork net(&s, &primary, fast_config());
  net.set_bulk_router(&bulk);

  // Both destinations are down, so both flows stall and retransmit.
  net.fail_node(2);
  net.fail_node(3);
  net.inject_flow_with(bulk, /*flow=*/1, /*src=*/0, /*dst=*/2,
                       /*bytes=*/2 * 256);
  net.inject_flow(/*flow=*/2, /*src=*/0, /*dst=*/3, /*bytes=*/2 * 256);
  EXPECT_EQ(bulk.calls(), 2u);
  EXPECT_EQ(primary.calls(), 2u);

  // One retransmission round: 2 missing cells per flow re-routed.
  net.run(64);
  const std::uint64_t readmitted =
      net.retransmit_stalled({/*timeout_slots=*/16, /*max_attempts=*/1});
  EXPECT_EQ(readmitted, 4u);
  EXPECT_EQ(bulk.calls(), 4u) << "bulk flow must re-route via bulk router";
  EXPECT_EQ(primary.calls(), 4u)
      << "short flow must re-route via primary router";
}

TEST(RetransmitTest, OperaSplitFaultBlastRetransmitsBulkViaBulkPaths) {
  // Driver-level flavor of the same regression: an Opera-style split where
  // every flow classifies as bulk (cutoff below the fixed flow size), plus
  // a mid-run fault blast that strands traffic and triggers the stall
  // detector. The primary router must never be consulted — not at
  // injection, and (the regression) not at retransmission either.
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter vlb(&s, LbMode::kFirstAvailable);
  const DirectRouter direct;
  const CountingRouter primary(&vlb);
  const CountingRouter bulk(&direct);
  NetworkConfig config = fast_config();
  SlottedNetwork net(&s, &primary, config);

  const TrafficMatrix tm = patterns::uniform(8);
  const FlowSizeDist sizes = FlowSizeDist::fixed(4 * 256);
  const double node_bw =
      static_cast<double>(config.cell_bytes) * 8.0 /
      (static_cast<double>(config.slot_duration) * 1e-12);
  FlowArrivals arrivals(&tm, &sizes, node_bw, /*load=*/0.2, Rng(11));
  WorkloadDriver driver(&arrivals);
  driver.set_bulk_router(&bulk, /*cutoff_bytes=*/1);
  driver.set_retransmit({/*timeout_slots=*/32, /*max_attempts=*/8,
                         /*check_every=*/8});
  // Fault blast: node 5 dies early and heals late, so flows toward it
  // stall long enough for at least one retransmission round.
  driver.set_slot_hook([](SlottedNetwork& n, Slot now) {
    if (now == 50) n.fail_node(5);
    if (now == 800) n.heal_node(5);
  });
  driver.run_until(net, 1000 * config.slot_duration, 4000);

  EXPECT_EQ(net.bulk_router(), &bulk) << "driver must register the split";
  EXPECT_GT(net.metrics().retransmit_events(), 0u) << "blast must stall flows";
  EXPECT_GT(bulk.calls(), 0u);
  EXPECT_EQ(primary.calls(), 0u)
      << "all-bulk traffic must never touch the primary router, including "
         "retransmissions";
  EXPECT_EQ(net.metrics().open_flows(), 0u) << "every flow recovers";
}

TEST(RetransmitTest, StallDetectorSkipsCellsNeverSent) {
  // Satellite audit pin: with a windowed transport only part of a flow
  // has been released when the stall detector fires. collect_retransmits
  // used to scan every seq below total_cells and "retransmit" cells that
  // were never injected, inflating injected/delivered accounting. The
  // scan must stop at the send frontier (FlowRecord::cells_sent).
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  // 8-cell flow, but only the first 2 cells have been sent (a window).
  net.fail_node(2);
  net.inject_flow_segment(router, /*flow=*/1, /*src=*/0, /*dst=*/2,
                          /*bytes=*/8 * 256, /*first_cell=*/0,
                          /*cell_count=*/2);
  EXPECT_EQ(net.metrics().injected_cells(), 2u);
  net.run(64);
  const std::uint64_t readmitted =
      net.retransmit_stalled({/*timeout_slots=*/16, /*max_attempts=*/1});
  EXPECT_EQ(readmitted, 2u)
      << "only the sent window may be re-admitted, never unsent seqs";
  EXPECT_EQ(net.metrics().injected_cells(), 4u);

  // Deliver everything (sending the rest of the flow too) and pin the
  // completion accounting: one flow, one FCT sample, exact dedup math.
  net.heal_node(2);
  net.inject_flow_segment(router, /*flow=*/1, /*src=*/0, /*dst=*/2,
                          /*bytes=*/8 * 256, /*first_cell=*/2,
                          /*cell_count=*/6);
  net.run(400);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.metrics().open_flows(), 0u);
  EXPECT_EQ(net.metrics().fct_ps().count(), 1u) << "one FCT per flow";
  EXPECT_EQ(net.metrics().delivered_cells(),
            8u + net.metrics().duplicate_cells());
  EXPECT_EQ(net.metrics().injected_cells(),
            net.metrics().delivered_cells() + net.metrics().dropped_cells() +
                net.cells_in_flight());
}

TEST(RetransmitTest, BackoffCapsAttempts) {
  // An unhealable outage: the destination stays down forever. The stall
  // detector must stop re-admitting after max_attempts rounds instead of
  // flooding the queues.
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  net.fail_node(2);
  net.inject_flow(/*flow=*/7, /*src=*/0, /*dst=*/2, /*bytes=*/256);
  for (Slot t = 0; t < 3000; ++t) {
    net.retransmit_stalled({/*timeout_slots=*/4, /*max_attempts=*/3});
    net.step();
  }
  EXPECT_EQ(net.metrics().retransmit_events(), 3u);
  EXPECT_EQ(net.metrics().completed_flows(), 0u);
  EXPECT_EQ(net.metrics().open_flows(), 1u);
}

}  // namespace
}  // namespace sorn
