#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "routing/direct.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

constexpr Picoseconds kSlot = 100 * 1000;  // 100 ns

Cell make_cell(FlowId flow, std::initializer_list<NodeId> path,
               Slot inject_slot) {
  Cell c;
  c.flow = flow;
  c.path = Path::of(path);
  c.hop = 0;
  c.inject_slot = inject_slot;
  c.ready_slot = inject_slot;
  return c;
}

TEST(SimMetricsTest, UnseenFlowClassYieldsEmptyPercentiles) {
  SimMetrics m(kSlot, 0);
  const Cell c = make_cell(1, {0, 1}, 0);
  m.on_inject(c, 1, 256, /*flow_class=*/2);
  m.on_deliver(c, 3);
  EXPECT_EQ(m.fct_ps_class(2).count(), 1u);
  EXPECT_EQ(m.fct_ps_class(99).count(), 0u);
  EXPECT_DOUBLE_EQ(m.fct_ps_class(99).percentile(50.0), 0.0);
  EXPECT_EQ(m.flow_classes(), std::vector<int>{2});
}

TEST(SimMetricsTest, MeanHopsAveragesDeliveredCells) {
  SimMetrics m(kSlot, 0);
  EXPECT_DOUBLE_EQ(m.mean_hops(), 0.0);  // no deliveries yet
  const Cell one_hop = make_cell(kNoFlow, {0, 1}, 0);
  const Cell two_hop = make_cell(kNoFlow, {0, 2, 1}, 0);
  m.on_inject(one_hop, 1, 256);
  m.on_inject(two_hop, 1, 256);
  m.on_deliver(one_hop, 1);
  m.on_deliver(two_hop, 2);
  EXPECT_DOUBLE_EQ(m.mean_hops(), 1.5);
}

TEST(SimMetricsTest, ResetCountersKeepsOpenFlows) {
  SimMetrics m(kSlot, 0);
  // A two-cell flow: one cell delivered before the reset, one after.
  const Cell a = make_cell(5, {0, 1}, 0);
  Cell b = make_cell(5, {0, 1}, 0);
  b.seq = 1;  // distinct cell of the same flow, not a retransmitted copy
  m.on_inject(a, 2, 512, /*flow_class=*/1);
  m.on_inject(b, 2, 512, /*flow_class=*/1);
  m.on_deliver(a, 1);
  EXPECT_EQ(m.open_flows(), 1u);

  m.reset_counters();
  EXPECT_EQ(m.injected_cells(), 0u);
  EXPECT_EQ(m.delivered_cells(), 0u);
  EXPECT_EQ(m.completed_flows(), 0u);
  EXPECT_EQ(m.open_flows(), 1u);  // the straddling flow survives

  m.on_deliver(b, 10);
  EXPECT_EQ(m.completed_flows(), 1u);
  EXPECT_EQ(m.open_flows(), 0u);
  // FCT spans the reset: 10 slots from the true inject slot.
  EXPECT_DOUBLE_EQ(m.fct_ps().percentile(50.0),
                   static_cast<double>(10 * kSlot));
  EXPECT_EQ(m.fct_ps_class(1).count(), 1u);
}

// The same property end-to-end: a flow in flight across
// SlottedNetwork::reset_metrics() (warmup exclusion) still completes and
// is counted after the reset.
TEST(SimMetricsTest, NetworkResetMetricsPreservesInFlightFlows) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&s, &router, cfg);
  // 4 cells to node 3; the 0->3 circuit is up once per 3-slot period, so
  // the flow cannot finish before the reset below.
  net.inject_flow(/*flow=*/1, /*src=*/0, /*dst=*/3, /*bytes=*/4 * 256);
  net.run(3);
  ASSERT_GT(net.cells_in_flight(), 0u);
  net.reset_metrics();
  EXPECT_EQ(net.metrics().completed_flows(), 0u);
  EXPECT_EQ(net.metrics().open_flows(), 1u);
  net.run(12);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_EQ(net.metrics().open_flows(), 0u);
}

TEST(SimMetricsTest, DropAccountingUnderQueueCap) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  cfg.max_queue_cells = 2;
  SlottedNetwork net(&s, &router, cfg);
  // 5 cells into the same (0 -> 3) VOQ with capacity 2: 3 tail-drops.
  for (int i = 0; i < 5; ++i) net.inject_cell(0, 3);
  EXPECT_EQ(net.metrics().injected_cells(), 5u);
  EXPECT_EQ(net.metrics().dropped_cells(), 3u);
  EXPECT_EQ(net.cells_in_flight(), 2u);
  // The queued cells still deliver; drops never do.
  net.run(12);
  EXPECT_EQ(net.metrics().delivered_cells(), 2u);
  EXPECT_EQ(net.metrics().dropped_cells(), 3u);
}

}  // namespace
}  // namespace sorn
