#include "sim/saturation.h"

#include <gtest/gtest.h>

#include "analysis/models.h"
#include "routing/sorn_routing.h"
#include "routing/vlb.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

class DirectRouter : public Router {
 public:
  Path route(NodeId src, NodeId dst, Slot, Rng&) const override {
    return Path::of({src, dst});
  }
  int max_hops() const override { return 1; }
};

NetworkConfig sim_config() {
  NetworkConfig c;
  c.lanes = 1;
  c.propagation_per_hop = 0;
  return c;
}

TEST(SaturationTest, DirectRoutingOnUniformApproachesFullCapacity) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, sim_config());
  const TrafficMatrix tm = patterns::uniform(16);
  SaturationSource source(&tm, SaturationConfig{});
  const double r = source.measure(net, 2000, 4000);
  EXPECT_GT(r, 0.9);
  EXPECT_LE(r, 1.0 + 1e-9);
}

TEST(SaturationTest, VlbOnUniformApproachesOneHalf) {
  // The classic ORN result: 2-hop VLB has worst-case throughput 1/2
  // (paper Sec. 2).
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kRandom);
  SlottedNetwork net(&s, &router, sim_config());
  const TrafficMatrix tm = patterns::uniform(16);
  SaturationSource source(&tm, SaturationConfig{});
  const double r = source.measure(net, 3000, 6000);
  EXPECT_NEAR(r, 0.5, 0.05);
}

TEST(SaturationTest, SornAtOptimalQMatchesTheory) {
  // x = 0.5 -> q* = 4, r = 1/(3 - 0.5) = 0.4.
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{4, 1});
  const SornRouter router(&s, &cliques, LbMode::kRandom);
  SlottedNetwork net(&s, &router, sim_config());
  const TrafficMatrix tm = patterns::locality_mix(cliques, 0.5);
  SaturationSource source(&tm, SaturationConfig{});
  const double r = source.measure(net, 4000, 8000);
  EXPECT_NEAR(r, analysis::sorn_throughput(0.5), 0.05);
}

TEST(SaturationTest, SornBeatsVlbUnderLocality) {
  // The headline claim: with locality, SORN exceeds the fully-oblivious
  // 50% VLB bound... at high x it approaches 1/2 while using a shorter
  // cycle; at x = 0.8 it should clearly beat the 2D ORN's 25% and sit
  // near 1/(3-0.8) = 0.4545.
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const double x = 0.8;
  const double q_star = analysis::sorn_optimal_q(x);  // 10
  const CircuitSchedule s = ScheduleBuilder::sorn(
      cliques, Rational::approximate(q_star, 12));
  const SornRouter router(&s, &cliques, LbMode::kRandom);
  SlottedNetwork net(&s, &router, sim_config());
  const TrafficMatrix tm = patterns::locality_mix(cliques, x);
  SaturationSource source(&tm, SaturationConfig{});
  const double r = source.measure(net, 4000, 8000);
  EXPECT_NEAR(r, analysis::sorn_throughput(x), 0.05);
  EXPECT_GT(r, 0.25);
}

TEST(SaturationTest, PumpRespectsInFlightCap) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kRandom);
  SlottedNetwork net(&s, &router, sim_config());
  const TrafficMatrix tm = patterns::uniform(8);
  SaturationConfig cfg;
  cfg.max_in_flight_per_node = 10;
  SaturationSource source(&tm, cfg);
  for (int i = 0; i < 500; ++i) {
    source.pump(net);
    net.step();
  }
  // Cap is per pump-call admission: at most cap + one pump's worth.
  EXPECT_LE(net.cells_in_flight(),
            (10 + 2) * 8u);
}

}  // namespace
}  // namespace sorn
