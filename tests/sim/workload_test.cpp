#include "sim/workload_driver.h"

#include <gtest/gtest.h>

#include "routing/vlb.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(WorkloadTest, FlowsCompleteUnderLightLoad) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kRandom);
  NetworkConfig nc;
  nc.propagation_per_hop = 0;
  nc.cell_bytes = 256;
  SlottedNetwork net(&s, &router, nc);

  const TrafficMatrix tm = patterns::uniform(16);
  const FlowSizeDist sizes = FlowSizeDist::fixed(2560);  // 10 cells
  // Node bandwidth: 256 B per 100 ns slot = 20.48 Gb/s.
  const double node_bw = 256.0 * 8.0 / 100e-9;
  FlowArrivals arrivals(&tm, &sizes, node_bw, 0.2, Rng(5));
  WorkloadDriver driver(&arrivals);
  driver.run_until(net, 200 * 1000 * 1000 /* 200 us */, 20000);

  EXPECT_GT(driver.flows_injected(), 50u);
  EXPECT_EQ(net.metrics().completed_flows(), driver.flows_injected());
  EXPECT_EQ(net.cells_in_flight(), 0u);
  EXPECT_GT(net.metrics().fct_ps().percentile(50.0), 0.0);
}

TEST(WorkloadTest, HigherLoadRaisesLatency) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kRandom);
  const TrafficMatrix tm = patterns::uniform(16);
  const FlowSizeDist sizes = FlowSizeDist::fixed(2560);
  const double node_bw = 256.0 * 8.0 / 100e-9;

  auto median_fct = [&](double load) {
    NetworkConfig nc;
    nc.propagation_per_hop = 0;
    SlottedNetwork net(&s, &router, nc);
    FlowArrivals arrivals(&tm, &sizes, node_bw, load, Rng(6));
    WorkloadDriver driver(&arrivals);
    driver.run_until(net, 300 * 1000 * 1000, 50000);
    return net.metrics().fct_ps().percentile(50.0);
  };

  const double light = median_fct(0.1);
  const double heavy = median_fct(0.42);  // near the 0.5 VLB limit
  EXPECT_GT(heavy, light);
}

TEST(WorkloadTest, FlowSizeCapAppliesBeforeClassification) {
  // Satellite audit pin: the cap must truncate the arrival BEFORE the
  // classifier runs, so a size-based classifier sees the capped bytes —
  // a flow drawn above the cap must land in the small class, and the
  // injected cell count must reflect the cap too.
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kRandom);
  NetworkConfig nc;
  nc.propagation_per_hop = 0;
  SlottedNetwork net(&s, &router, nc);
  const TrafficMatrix tm = patterns::uniform(8);
  // Every flow draws 16 KiB; the cap truncates to 1 KiB (4 cells).
  const FlowSizeDist sizes = FlowSizeDist::fixed(16 * 1024);
  const double node_bw = 256.0 * 8.0 / 100e-9;
  FlowArrivals arrivals(&tm, &sizes, node_bw, 0.2, Rng(9));
  // Size classifier with the cutoff between the cap and the drawn size:
  // uncapped arrivals would all classify as class 1.
  WorkloadDriver driver(&arrivals, [](const FlowArrival& a) {
    return a.bytes > 4096 ? 1 : 0;
  });
  driver.set_flow_size_cap(1024);
  driver.run_until(net, 20 * 1000 * 1000, 100000);

  ASSERT_GT(driver.flows_injected(), 0u);
  EXPECT_EQ(net.metrics().completed_flows(), driver.flows_injected());
  // Capped size reached the classifier: only class 0 exists.
  ASSERT_EQ(net.metrics().flow_classes().size(), 1u);
  EXPECT_EQ(net.metrics().flow_classes()[0], 0);
  EXPECT_EQ(net.metrics().fct_ps_class(0).count(),
            net.metrics().fct_ps().count());
  // Capped size reached injection: 4 cells per flow, not 64.
  EXPECT_EQ(net.metrics().injected_cells(), 4u * driver.flows_injected());
}

TEST(WorkloadTest, DrainDeliversEverything) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kRandom);
  NetworkConfig nc;
  nc.propagation_per_hop = 0;
  SlottedNetwork net(&s, &router, nc);
  const TrafficMatrix tm = patterns::uniform(8);
  const FlowSizeDist sizes = FlowSizeDist::fixed(1024);
  const double node_bw = 256.0 * 8.0 / 100e-9;
  FlowArrivals arrivals(&tm, &sizes, node_bw, 0.3, Rng(7));
  WorkloadDriver driver(&arrivals);
  driver.run_until(net, 50 * 1000 * 1000, 100000);
  EXPECT_EQ(net.cells_in_flight(), 0u);
  EXPECT_EQ(net.metrics().injected_cells(), net.metrics().delivered_cells());
}

}  // namespace
}  // namespace sorn
