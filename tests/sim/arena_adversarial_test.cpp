// Adversarial PooledFifo/ChunkPool interleaves (satellite of the
// transport PR): push/pop sequences engineered to land exactly on chunk
// boundaries, drain-to-empty mid-chunk, interleave many FIFOs over one
// shared pool, and recycle chunks across FIFOs — the access patterns the
// VOQ merge phase produces when windowed transports trickle cells in
// while shards drain them.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "util/arena.h"
#include "util/rng.h"

namespace sorn {
namespace {

// Tiny chunks make boundary crossings constant, not rare.
constexpr std::size_t kChunk = 4;
using Pool = ChunkPool<std::uint64_t, kChunk>;
using Fifo = PooledFifo<std::uint64_t, kChunk>;

TEST(ArenaAdversarialTest, BoundaryExactPushPopCycles) {
  Pool pool;
  Fifo fifo;
  // Repeatedly fill exactly one chunk, then drain exactly one chunk: the
  // FIFO walks the boundary on both ends every cycle.
  std::uint64_t next_push = 0, next_pop = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (std::size_t i = 0; i < kChunk; ++i)
      fifo.push_back(pool, next_push++);
    for (std::size_t i = 0; i < kChunk; ++i) {
      ASSERT_EQ(fifo.front(), next_pop++);
      fifo.pop_front(pool);
    }
    ASSERT_TRUE(fifo.empty());
  }
  // Boundary-exact cycles touch at most two chunks at a time; the pool
  // must recycle instead of growing per cycle.
  EXPECT_LE(pool.chunks_allocated(), 2u);
}

TEST(ArenaAdversarialTest, DrainToEmptyMidChunkReleasesTheLastChunk) {
  Pool pool;
  Fifo fifo;
  // Leave the head mid-chunk when the FIFO empties: the release path must
  // hand the (single, head == tail) chunk back exactly once.
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(round) % (2 * kChunk);
    for (std::size_t i = 0; i < n; ++i)
      fifo.push_back(pool, static_cast<std::uint64_t>(i));
    for (std::size_t i = 0; i < n; ++i) fifo.pop_front(pool);
    ASSERT_TRUE(fifo.empty());
    ASSERT_EQ(pool.free_chunks(), pool.chunks_allocated())
        << "an empty FIFO must hold no chunks (round " << round << ")";
  }
}

TEST(ArenaAdversarialTest, ManyFifosInterleavedOverOneSharedPool) {
  // The VoqSet shape: many queues, one pool, pushes and pops interleaved
  // across queues in a seeded adversarial order, checked against
  // std::deque references at every step.
  Pool pool;
  constexpr int kFifos = 17;
  std::vector<Fifo> fifos(kFifos);
  std::vector<std::deque<std::uint64_t>> model(kFifos);
  Rng rng(1234);
  std::uint64_t stamp = 0;
  for (int step = 0; step < 20000; ++step) {
    const int q = static_cast<int>(rng.next_below(kFifos));
    const bool push = model[q].empty() || rng.next_below(100) < 55;
    if (push) {
      fifos[q].push_back(pool, stamp);
      model[q].push_back(stamp);
      ++stamp;
    } else {
      ASSERT_EQ(fifos[q].front(), model[q].front()) << "step " << step;
      fifos[q].pop_front(pool);
      model[q].pop_front();
    }
    ASSERT_EQ(fifos[q].size(), model[q].size());
  }
  // Drain everything; order must survive the churn.
  for (int q = 0; q < kFifos; ++q) {
    while (!model[q].empty()) {
      ASSERT_EQ(fifos[q].front(), model[q].front());
      fifos[q].pop_front(pool);
      model[q].pop_front();
    }
    EXPECT_TRUE(fifos[q].empty());
  }
  EXPECT_EQ(pool.free_chunks(), pool.chunks_allocated())
      << "every chunk returns to the pool once all FIFOs drain";
}

TEST(ArenaAdversarialTest, ChunksRecycleAcrossFifos) {
  Pool pool;
  // FIFO a grows a long chain, drains, and FIFO b must reuse a's chunks
  // rather than allocating new ones.
  {
    Fifo a;
    for (std::uint64_t i = 0; i < 10 * kChunk; ++i) a.push_back(pool, i);
    while (!a.empty()) a.pop_front(pool);
  }
  const std::uint64_t after_a = pool.chunks_allocated();
  {
    Fifo b;
    for (std::uint64_t i = 0; i < 10 * kChunk; ++i) b.push_back(pool, i);
    EXPECT_EQ(pool.chunks_allocated(), after_a)
        << "b's chain must come from the free list";
    b.clear(pool);
  }
  EXPECT_EQ(pool.free_chunks(), after_a);
}

TEST(ArenaAdversarialTest, ClearReleasesWholeChainAndFifoIsReusable) {
  Pool pool;
  Fifo fifo;
  for (std::uint64_t i = 0; i < 7 * kChunk + 3; ++i) fifo.push_back(pool, i);
  fifo.clear(pool);
  EXPECT_TRUE(fifo.empty());
  EXPECT_EQ(pool.free_chunks(), pool.chunks_allocated());
  // The cleared FIFO starts over cleanly.
  for (std::uint64_t i = 0; i < 2 * kChunk; ++i) fifo.push_back(pool, 100 + i);
  for (std::uint64_t i = 0; i < 2 * kChunk; ++i) {
    ASSERT_EQ(fifo.front(), 100 + i);
    fifo.pop_front(pool);
  }
}

TEST(ArenaAdversarialTest, SlotArenaRecyclesIndicesUnderChurn) {
  // FlowRecord-style churn: allocate/release in a seeded order; released
  // indices must be recycled before the arena grows, and live slots keep
  // their contents across unrelated churn.
  SlotArena<std::vector<int>> arena;
  Rng rng(77);
  std::vector<std::uint32_t> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.next_below(100) < 50) {
      const std::uint32_t idx = arena.allocate();
      arena[idx].assign(3, static_cast<int>(idx));
      live.push_back(idx);
    } else {
      const std::size_t pick = rng.next_below(live.size());
      const std::uint32_t idx = live[pick];
      ASSERT_EQ(arena[idx].size(), 3u);
      ASSERT_EQ(arena[idx][0], static_cast<int>(idx));
      arena.release(idx);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(arena.live(), live.size());
  EXPECT_LE(arena.capacity(), 5000u);
}

}  // namespace
}  // namespace sorn
