// Parallel engine equivalence: for the same seed, the sharded slot engine
// must produce byte-identical artifacts — metrics JSON, per-slot
// time-series CSV, JSONL trace — at any thread count, including thread
// counts that do not divide the node count and exceed the host's cores.
//
// Scenarios deliberately cover the paths where parallel execution could
// diverge from the sequential sweep: multi-hop relaying (deferred pushes),
// bounded queues with tail drops (the merge's sequential-order capacity
// reconstruction), multiple lanes, failures, and a full open-loop
// workload with telemetry attached.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sorn.h"
#include "fault/fault_injector.h"
#include "obs/export.h"
#include "routing/vlb.h"
#include "sim/workload_driver.h"
#include "topo/schedule_builder.h"
#include "traffic/flow_size.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

constexpr int kThreadCounts[] = {1, 2, 7};

struct Artifacts {
  std::string metrics_json;
  std::string timeseries_csv;
  std::vector<std::string> trace_lines;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t in_flight = 0;
};

// Full pipeline: SORN fabric, open-loop pFabric workload, telemetry with
// trace + time series, exported artifacts.
Artifacts run_workload(int threads) {
  SornConfig cfg;
  cfg.nodes = 32;
  cfg.cliques = 8;
  cfg.locality_x = 0.5;
  cfg.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();
  sim.set_threads(threads);

  Telemetry telemetry(TelemetryOptions{.sample_every = 5});
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  sim.set_telemetry(&telemetry);

  const TrafficMatrix tm = patterns::locality_mix(net.cliques(), 0.5);
  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();
  const double node_bw =
      static_cast<double>(sim.config().cell_bytes) * 8.0 /
      (static_cast<double>(sim.config().slot_duration) * 1e-12);
  FlowArrivals arrivals(&tm, &sizes, node_bw, /*load=*/0.4, Rng(1));
  WorkloadDriver driver(&arrivals);
  driver.run_until(sim, 2500 * sim.config().slot_duration, 2000);

  Artifacts out;
  ExportOptions eopts;
  eopts.nodes = cfg.nodes;
  out.metrics_json = run_to_json(sim.metrics(), &telemetry, eopts);
  out.timeseries_csv = telemetry.timeseries()->to_csv();
  out.trace_lines = sink.lines();
  out.delivered = sim.metrics().delivered_cells();
  out.dropped = sim.metrics().dropped_cells();
  out.forwarded = sim.metrics().forwarded_cells();
  out.in_flight = sim.cells_in_flight();
  return out;
}

// Bounded queues under sustained overload: relays tail-drop, so the merge
// phase's capacity reconstruction (not just its event replay) is on the
// line. Two lanes shift the schedule per lane.
Artifacts run_capped(int threads) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kRandom);
  NetworkConfig config;
  config.lanes = 2;
  config.propagation_per_hop = 0;
  config.max_queue_cells = 2;
  SlottedNetwork net(&s, &router, config);
  net.set_threads(threads);

  Telemetry telemetry;
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  net.set_telemetry(&telemetry);

  Rng rng(99);
  for (int round = 0; round < 400; ++round) {
    for (int k = 0; k < 6; ++k) {
      const auto src = static_cast<NodeId>(rng.next_below(16));
      auto dst = static_cast<NodeId>(rng.next_below(16));
      if (dst == src) dst = (dst + 1) % 16;
      net.inject_cell(src, dst);
    }
    net.step();
  }
  net.run(64);

  Artifacts out;
  ExportOptions eopts;
  eopts.nodes = 16;
  eopts.lanes = config.lanes;
  out.metrics_json = run_to_json(net.metrics(), &telemetry, eopts);
  out.trace_lines = sink.lines();
  out.delivered = net.metrics().delivered_cells();
  out.dropped = net.metrics().dropped_cells();
  out.forwarded = net.metrics().forwarded_cells();
  out.in_flight = net.cells_in_flight();
  return out;
}

// Failure injection mid-run: failed nodes/circuits skip transmits, which
// must shard identically.
Artifacts run_failures(int threads) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(12);
  const VlbRouter router(&s, LbMode::kRandom);
  NetworkConfig config;
  config.propagation_per_hop = 0;
  SlottedNetwork net(&s, &router, config);
  net.set_threads(threads);

  Rng rng(7);
  auto pump = [&](int cells) {
    for (int k = 0; k < cells; ++k) {
      const auto src = static_cast<NodeId>(rng.next_below(12));
      auto dst = static_cast<NodeId>(rng.next_below(12));
      if (dst == src) dst = (dst + 1) % 12;
      net.inject_cell(src, dst);
    }
  };
  pump(200);
  net.run(10);
  net.fail_node(3);
  net.fail_circuit(1, 5);
  pump(100);
  net.run(30);
  net.heal_node(3);
  net.heal_circuit(1, 5);
  net.run(200);

  Artifacts out;
  out.delivered = net.metrics().delivered_cells();
  out.dropped = net.metrics().dropped_cells();
  out.forwarded = net.metrics().forwarded_cells();
  out.in_flight = net.cells_in_flight();
  return out;
}

// Table-1-scale sharding: N = 1024 with bounded queues under a drop-heavy
// load and a mid-run schedule/router swap. At this size every thread count
// carves the node range into different shard boundaries than the small-N
// scenarios, and the sparse VOQ layout (lazily materialized queues, erased
// on drain) is hit with ~10^6 distinct (node, next-hop) queues — the merge
// phase's capacity reconstruction must still replay the sequential order
// exactly.
Artifacts run_large_reconfigure(int threads) {
  constexpr NodeId kNodes = 1024;
  const CircuitSchedule rr = ScheduleBuilder::round_robin(kNodes);
  const VlbRouter vlb(&rr, LbMode::kRandom);
  const CircuitSchedule rotor =
      ScheduleBuilder::rotor_random(kNodes, /*dwell_slots=*/1, /*seed=*/77);
  const VlbRouter vlb_rotor(&rotor, LbMode::kRandom);
  NetworkConfig config;
  config.propagation_per_hop = 0;
  config.max_queue_cells = 2;
  SlottedNetwork net(&rr, &vlb, config);
  net.set_threads(threads);

  Telemetry telemetry(TelemetryOptions{.sample_every = 25});
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  net.set_telemetry(&telemetry);

  Rng rng(13);
  for (int round = 0; round < 300; ++round) {
    if (round == 150) net.reconfigure(&rotor, &vlb_rotor);
    // 2x the per-slot service rate: queues build toward the cap and
    // tail-drop, with circuits to any given next hop ~1000 slots apart.
    for (int k = 0; k < 2048; ++k) {
      const auto src = static_cast<NodeId>(rng.next_below(kNodes));
      auto dst = static_cast<NodeId>(rng.next_below(kNodes));
      if (dst == src) dst = (dst + 1) % kNodes;
      net.inject_cell(src, dst);
    }
    net.step();
  }
  net.run(400);

  Artifacts out;
  ExportOptions eopts;
  eopts.nodes = kNodes;
  out.metrics_json = run_to_json(net.metrics(), &telemetry, eopts);
  out.timeseries_csv = telemetry.timeseries()->to_csv();
  out.trace_lines = sink.lines();
  out.delivered = net.metrics().delivered_cells();
  out.dropped = net.metrics().dropped_cells();
  out.forwarded = net.metrics().forwarded_cells();
  out.in_flight = net.cells_in_flight();
  return out;
}

// Stochastic fault injection + failure-aware routing + end-host
// retransmission, the full fault pipeline of this PR. All fault RNG is
// drawn on the coordinating thread (FaultInjector::tick via the driver's
// slot hook), so the artifacts must stay byte-identical at any thread
// count even with faults firing mid-run.
Artifacts run_faulted_workload(int threads) {
  SornConfig cfg;
  cfg.nodes = 32;
  cfg.cliques = 8;
  cfg.locality_x = 0.5;
  cfg.propagation_per_hop = 0;
  SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();
  sim.set_threads(threads);
  net.set_failure_view(&sim.failure_view());

  Telemetry telemetry(TelemetryOptions{.sample_every = 5});
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  sim.set_telemetry(&telemetry);

  FaultInjectorOptions fopts;
  fopts.node_mtbf_slots = 900.0;
  fopts.node_mttr_slots = 300.0;
  fopts.seed = 17;
  FaultInjector injector(FaultScript{}, fopts);

  const TrafficMatrix tm = patterns::locality_mix(net.cliques(), 0.5);
  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();
  const double node_bw =
      static_cast<double>(sim.config().cell_bytes) * 8.0 /
      (static_cast<double>(sim.config().slot_duration) * 1e-12);
  FlowArrivals arrivals(&tm, &sizes, node_bw, /*load=*/0.4, Rng(1));
  WorkloadDriver driver(&arrivals);
  driver.set_slot_hook(
      [&injector](SlottedNetwork& n, Slot) { injector.tick(n); });
  WorkloadDriver::RetransmitOptions ropts;
  ropts.timeout_slots = 64;
  driver.set_retransmit(ropts);
  driver.run_until(sim, 2500 * sim.config().slot_duration, 2000);

  EXPECT_GT(injector.faults_applied(), 0u)
      << "the scenario must actually fault (threads=" << threads << ")";

  Artifacts out;
  ExportOptions eopts;
  eopts.nodes = cfg.nodes;
  out.metrics_json = run_to_json(sim.metrics(), &telemetry, eopts);
  out.timeseries_csv = telemetry.timeseries()->to_csv();
  out.trace_lines = sink.lines();
  out.delivered = sim.metrics().delivered_cells();
  out.dropped = sim.metrics().dropped_cells();
  out.forwarded = sim.metrics().forwarded_cells();
  out.in_flight = sim.cells_in_flight();
  return out;
}

void expect_identical(const Artifacts& base, const Artifacts& other,
                      int threads) {
  EXPECT_EQ(base.metrics_json, other.metrics_json) << "threads=" << threads;
  EXPECT_EQ(base.timeseries_csv, other.timeseries_csv)
      << "threads=" << threads;
  EXPECT_EQ(base.trace_lines, other.trace_lines) << "threads=" << threads;
  EXPECT_EQ(base.delivered, other.delivered) << "threads=" << threads;
  EXPECT_EQ(base.dropped, other.dropped) << "threads=" << threads;
  EXPECT_EQ(base.forwarded, other.forwarded) << "threads=" << threads;
  EXPECT_EQ(base.in_flight, other.in_flight) << "threads=" << threads;
}

TEST(ParallelEquivalenceTest, WorkloadArtifactsAreByteIdentical) {
  const Artifacts base = run_workload(1);
  ASSERT_GT(base.delivered, 0u);
  ASSERT_GT(base.forwarded, 0u);  // relayed cells exercise deferred pushes
  ASSERT_FALSE(base.trace_lines.empty());
  for (const int threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_identical(base, run_workload(threads), threads);
  }
}

TEST(ParallelEquivalenceTest, CappedQueuesDropIdentically) {
  const Artifacts base = run_capped(1);
  ASSERT_GT(base.dropped, 0u) << "scenario must exercise tail drops";
  ASSERT_GT(base.forwarded, 0u);
  for (const int threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_identical(base, run_capped(threads), threads);
  }
}

// Acceptance criterion of the fault-injection PR: stochastic faults plus
// retransmission, byte-identical at 1 vs 4 threads (and a non-dividing
// count for good measure).
TEST(ParallelEquivalenceTest, FaultInjectionArtifactsAreByteIdentical) {
  const Artifacts base = run_faulted_workload(1);
  ASSERT_GT(base.delivered, 0u);
  ASSERT_FALSE(base.trace_lines.empty());
  bool saw_fault_event = false;
  for (const std::string& line : base.trace_lines)
    if (line.find("\"ev\":\"node_fail\"") != std::string::npos)
      saw_fault_event = true;
  EXPECT_TRUE(saw_fault_event) << "faults must appear in the trace";
  for (const int threads : {4, 7})
    expect_identical(base, run_faulted_workload(threads), threads);
}

// Acceptance criterion of the sparse-VOQ PR: large-N artifacts (drops +
// mid-run reconfigure) byte-identical at 1 vs 2 vs 7 threads.
TEST(ParallelEquivalenceTest, LargeNReconfigureArtifactsAreByteIdentical) {
  const Artifacts base = run_large_reconfigure(1);
  ASSERT_GT(base.dropped, 0u) << "scenario must exercise tail drops";
  ASSERT_GT(base.forwarded, 0u);
  ASSERT_GT(base.delivered, 0u);
  for (const int threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_identical(base, run_large_reconfigure(threads), threads);
  }
}

TEST(ParallelEquivalenceTest, FailuresShardIdentically) {
  const Artifacts base = run_failures(1);
  ASSERT_GT(base.delivered, 0u);
  for (const int threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_identical(base, run_failures(threads), threads);
  }
}

TEST(ParallelEquivalenceTest, SwitchingThreadCountsMidRunIsSeamless) {
  // One network, thread count changed between (not within) slots: the
  // trajectory must match an all-sequential run.
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kRandom);
  NetworkConfig config;
  config.propagation_per_hop = 0;

  auto run = [&](bool reshard) {
    SlottedNetwork net(&s, &router, config);
    Rng rng(5);
    for (int round = 0; round < 120; ++round) {
      if (reshard && round % 30 == 0) net.set_threads(1 + (round / 30) % 4);
      const auto src = static_cast<NodeId>(rng.next_below(8));
      auto dst = static_cast<NodeId>(rng.next_below(8));
      if (dst == src) dst = (dst + 1) % 8;
      net.inject_cell(src, dst);
      net.step();
    }
    net.run(50);
    return net.metrics().delivered_cells();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace sorn
