// RNG-vs-parallelism regression.
//
// Every random draw in a simulation — Poisson arrivals, flow sizes, VLB
// waypoint picks, per-cell load balancing — happens at injection time,
// between slots, on the coordinating thread. None may move inside the
// parallel sweep: a draw there would consume the stream in
// thread-schedule order and silently break "same seed => same bytes at
// any thread count". (SlottedNetwork additionally asserts that nothing
// injects mid-sweep.)
//
// These tests would catch such a regression: they pin the exact arrival
// sequence (flow_inject trace events carry flow id, src, dst, bytes and
// slot) and the routing-draw consumption order across thread counts and
// across repeated runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sorn.h"
#include "obs/export.h"
#include "sim/workload_driver.h"
#include "traffic/flow_size.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

struct InjectLog {
  std::vector<std::string> inject_events;  // flow_inject lines, in order
  std::uint64_t flows_injected = 0;
  std::string metrics_json;
};

InjectLog run(int threads) {
  SornConfig cfg;
  cfg.nodes = 24;
  cfg.cliques = 4;
  cfg.locality_x = 0.4;
  cfg.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();
  sim.set_threads(threads);

  Telemetry telemetry;
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  sim.set_telemetry(&telemetry);

  const TrafficMatrix tm = patterns::locality_mix(net.cliques(), 0.4);
  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();
  const double node_bw =
      static_cast<double>(sim.config().cell_bytes) * 8.0 /
      (static_cast<double>(sim.config().slot_duration) * 1e-12);
  FlowArrivals arrivals(&tm, &sizes, node_bw, /*load=*/0.5, Rng(11));
  WorkloadDriver driver(&arrivals);
  driver.run_until(sim, 1500 * sim.config().slot_duration, 1500);

  InjectLog out;
  for (const std::string& line : sink.lines())
    if (line.find("\"ev\":\"flow_inject\"") != std::string::npos)
      out.inject_events.push_back(line);
  out.flows_injected = driver.flows_injected();
  ExportOptions eopts;
  eopts.nodes = cfg.nodes;
  out.metrics_json = run_to_json(sim.metrics(), &telemetry, eopts);
  return out;
}

TEST(ParallelRngTest, ArrivalSequenceIsIndependentOfThreadCount) {
  const InjectLog base = run(1);
  ASSERT_GT(base.flows_injected, 0u);
  ASSERT_EQ(base.inject_events.size(), base.flows_injected);
  for (const int threads : {2, 3, 7}) {
    const InjectLog other = run(threads);
    EXPECT_EQ(base.flows_injected, other.flows_injected)
        << "threads=" << threads;
    EXPECT_EQ(base.inject_events, other.inject_events)
        << "threads=" << threads;
    // The metrics JSON also pins routing-RNG consumption: a single draw
    // moved into (or reordered by) the parallel sweep changes paths,
    // hence hop counts and latencies.
    EXPECT_EQ(base.metrics_json, other.metrics_json)
        << "threads=" << threads;
  }
}

TEST(ParallelRngTest, RepeatedParallelRunsAreIdentical) {
  // Nondeterministic draws usually differ run-to-run even at a fixed
  // thread count; two runs at 3 threads must match exactly.
  const InjectLog a = run(3);
  const InjectLog b = run(3);
  EXPECT_EQ(a.inject_events, b.inject_events);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

}  // namespace
}  // namespace sorn
