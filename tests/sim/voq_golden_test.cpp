// Golden N=128 metrics pinned across the VOQ storage migration.
//
// The values below were captured from the dense N x N VoqSet layout
// (one deque per (node, next-hop) pair) immediately before it was
// replaced by the sparse per-node layout. The sparse layout must be
// observationally identical — same FIFO semantics, same capacity
// checks, same max-depth gauge — so every number here is required to
// survive the migration bit-for-bit. Any change to these values means
// the VOQ storage changed simulator behavior, not just its memory
// footprint.
//
// The scenario deliberately exercises every VoqSet entry point: two
// lanes (phase-shifted sweeps), bounded queues under overload
// (try_push refusals + the parallel merge's size_of reconstruction),
// multi-hop relaying (push after pop), and decimated telemetry
// sampling (max_queue_depth).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sorn.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "sim/workload_driver.h"
#include "traffic/flow_size.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

struct GoldenRun {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t completed_flows = 0;
  double mean_hops = 0.0;
  double cell_lat_p50_ps = 0.0;
  std::uint64_t max_depth_seen = 0;  // max over sampled max_voq_depth
  std::vector<std::string> csv_rows;
  std::string metrics_json;
};

GoldenRun run_n128(int threads) {
  SornConfig cfg;
  cfg.nodes = 128;
  cfg.cliques = 8;
  cfg.locality_x = 0.5;
  cfg.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(cfg);

  NetworkConfig ncfg;
  ncfg.lanes = 2;
  ncfg.propagation_per_hop = 0;
  ncfg.max_queue_cells = 8;  // overload must tail-drop
  SlottedNetwork sim(&net.schedule(), &net.router(), ncfg);
  sim.set_threads(threads);

  Telemetry telemetry(TelemetryOptions{.sample_every = 25});
  sim.set_telemetry(&telemetry);

  const TrafficMatrix tm = patterns::locality_mix(net.cliques(), 0.5);
  const FlowSizeDist sizes = FlowSizeDist::fixed(2560);  // 10 cells per flow
  const double node_bw =
      static_cast<double>(sim.config().cell_bytes) * 8.0 /
      (static_cast<double>(sim.config().slot_duration) * 1e-12);
  FlowArrivals arrivals(&tm, &sizes, node_bw, /*load=*/0.9, Rng(3));
  WorkloadDriver driver(&arrivals);
  driver.run_until(sim, 3000 * sim.config().slot_duration, 2000);

  GoldenRun out;
  out.injected = sim.metrics().injected_cells();
  out.delivered = sim.metrics().delivered_cells();
  out.dropped = sim.metrics().dropped_cells();
  out.forwarded = sim.metrics().forwarded_cells();
  out.completed_flows = sim.metrics().completed_flows();
  out.mean_hops = sim.metrics().mean_hops();
  out.cell_lat_p50_ps = sim.metrics().cell_latency_ps().percentile(50.0);
  for (const SlotSample& s : telemetry.timeseries()->samples())
    out.max_depth_seen = std::max(out.max_depth_seen, s.max_voq_depth);
  const std::string csv = telemetry.timeseries()->to_csv();
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find('\n', start);
    if (end == std::string::npos) end = csv.size();
    out.csv_rows.push_back(csv.substr(start, end - start));
    start = end + 1;
  }
  ExportOptions eopts;
  eopts.nodes = cfg.nodes;
  eopts.lanes = ncfg.lanes;
  out.metrics_json = run_to_json(sim.metrics(), &telemetry, eopts);
  return out;
}

TEST(VoqGoldenTest, N128MetricsMatchDenseLayoutCapture) {
  const GoldenRun run = run_n128(1);
  EXPECT_EQ(run.injected, 346690u);
  EXPECT_EQ(run.delivered, 295880u);
  EXPECT_EQ(run.dropped, 50480u);
  EXPECT_EQ(run.forwarded, 452467u);
  EXPECT_EQ(run.completed_flows, 10727u);
  EXPECT_NEAR(run.mean_hops, 2.435937, 1e-6);
  EXPECT_DOUBLE_EQ(run.cell_lat_p50_ps, 12600000.0);
  EXPECT_EQ(run.max_depth_seen, 8u);  // queues saturate at the cap
  // Two decimated telemetry rows pinned verbatim: the max_voq_depth
  // column is the O(active)-scan gauge the migration reimplemented.
  ASSERT_GT(run.csv_rows.size(), 60u);
  EXPECT_EQ(run.csv_rows[40], "975,2810,2146,402,3499,26221,8,8448");
  EXPECT_EQ(run.csv_rows[60], "1475,2800,2131,427,3610,32358,8,12922");
}

TEST(VoqGoldenTest, N128ArtifactsIdenticalAcrossThreadCounts) {
  const GoldenRun one = run_n128(1);
  ASSERT_GT(one.dropped, 0u) << "scenario must exercise tail drops";
  ASSERT_GT(one.forwarded, 0u);
  for (const int threads : {4, 7}) {
    const GoldenRun other = run_n128(threads);
    EXPECT_EQ(one.metrics_json, other.metrics_json) << threads;
    EXPECT_EQ(one.csv_rows, other.csv_rows) << threads;
  }
}

}  // namespace
}  // namespace sorn
