// Failure-injection semantics (paper Sec. 6): failed nodes/circuits stop
// carrying traffic, unaffected pairs keep flowing, and healing resumes
// stranded cells.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "routing/sorn_routing.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

class DirectRouter : public Router {
 public:
  Path route(NodeId src, NodeId dst, Slot, Rng&) const override {
    return Path::of({src, dst});
  }
  int max_hops() const override { return 1; }
};

NetworkConfig fast_config() {
  NetworkConfig c;
  c.propagation_per_hop = 0;
  return c;
}

TEST(FailureTest, FailedCircuitBlocksOnlyThatEdge) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  net.fail_circuit(0, 1);
  net.inject_cell(0, 1);  // blocked
  net.inject_cell(2, 3);  // same matching slot, unaffected
  net.run(10);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
  EXPECT_EQ(net.cells_in_flight(), 1u);
}

TEST(FailureTest, HealResumesStrandedCells) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  net.fail_circuit(0, 2);
  net.inject_cell(0, 2);
  net.run(10);
  EXPECT_EQ(net.metrics().delivered_cells(), 0u);
  net.heal_circuit(0, 2);
  net.run(10);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

TEST(FailureTest, FailedCircuitListMirrorsBitmap) {
  // FailureView keeps a sorted list of failed circuits alongside the dense
  // bitmap so consumers (heal_all, recovery sweeps) can iterate exactly
  // the failed set instead of scanning all N^2 pairs.
  FailureView view(6);
  EXPECT_TRUE(view.failed_circuits().empty());

  // Insert out of sorted order; the list must come back sorted by (s, d).
  view.fail_circuit(4, 1);
  view.fail_circuit(0, 3);
  view.fail_circuit(4, 0);
  const std::vector<std::pair<NodeId, NodeId>> expected{
      {0, 3}, {4, 0}, {4, 1}};
  EXPECT_EQ(view.failed_circuits(), expected);

  // Idempotent re-failure must not duplicate the entry.
  EXPECT_FALSE(view.fail_circuit(0, 3));
  EXPECT_EQ(view.failed_circuits().size(), 3u);

  view.heal_circuit(4, 0);
  const std::vector<std::pair<NodeId, NodeId>> after{{0, 3}, {4, 1}};
  EXPECT_EQ(view.failed_circuits(), after);
  EXPECT_FALSE(view.is_circuit_failed(4, 0));
  EXPECT_TRUE(view.is_circuit_failed(4, 1));

  view.heal_all();
  EXPECT_TRUE(view.failed_circuits().empty());
  EXPECT_FALSE(view.any_failures());
}

TEST(FailureTest, HealAllHealsEveryEntityAndResumesTraffic) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(6);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  net.fail_node(3);
  net.fail_circuit(0, 2);
  net.fail_circuit(4, 5);
  net.inject_cell(0, 2);
  net.inject_cell(4, 5);
  net.inject_cell(1, 3);
  net.run(20);
  EXPECT_EQ(net.metrics().delivered_cells(), 0u);
  EXPECT_EQ(net.cells_in_flight(), 3u);

  EXPECT_EQ(net.heal_all(), 3u) << "one node + two circuits";
  EXPECT_FALSE(net.is_failed(3));
  EXPECT_FALSE(net.is_circuit_failed(0, 2));
  EXPECT_FALSE(net.is_circuit_failed(4, 5));
  net.run(20);
  EXPECT_EQ(net.metrics().delivered_cells(), 3u);
  EXPECT_EQ(net.heal_all(), 0u) << "idempotent on a healthy network";
}

TEST(FailureTest, FailedNodeNeitherSendsNorReceives) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  net.fail_node(1);
  net.inject_cell(1, 2);  // cannot send
  net.inject_cell(0, 1);  // cannot be received
  net.inject_cell(2, 0);  // unaffected
  net.run(10);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
  EXPECT_EQ(net.cells_in_flight(), 2u);
  net.heal_node(1);
  net.run(10);
  EXPECT_EQ(net.metrics().delivered_cells(), 3u);
}

TEST(FailureTest, RelayFailureStrandsMultiHopCells) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kFirstAvailable);
  SlottedNetwork net(&s, &router, fast_config());
  // At slot 0, node 0's first available neighbor is 1: route 0 -> 1 -> 5.
  net.fail_node(1);
  net.inject_cell(0, 5);
  net.run(50);
  EXPECT_EQ(net.metrics().delivered_cells(), 0u);
  net.heal_node(1);
  net.run(50);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

// Simulation counterpart of the blast-radius analysis: an inter-clique
// circuit failure in SORN affects only pairs between those two cliques.
TEST(FailureTest, SornInterCliqueFailureIsContained) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{2, 1});
  const SornRouter router(&s, &cliques, LbMode::kRandom);
  SlottedNetwork net(&s, &router, fast_config());
  // Fail every circuit from clique 0 into clique 1 (nodes 0-3 -> 4-7).
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 4; b < 8; ++b) net.fail_circuit(a, b);

  // Pairs not involving clique0 -> clique1 still complete.
  net.inject_cell(0, 2);    // intra clique 0
  net.inject_cell(8, 13);   // clique 2 -> 3
  net.inject_cell(4, 1);    // clique 1 -> 0 (reverse direction unaffected)
  net.run(400);
  EXPECT_EQ(net.metrics().delivered_cells(), 3u);

  // clique 0 -> clique 1 pairs are stuck at the inter hop.
  net.inject_cell(1, 6);
  net.run(400);
  EXPECT_EQ(net.metrics().delivered_cells(), 3u);
  EXPECT_EQ(net.cells_in_flight(), 1u);
}

TEST(FailureTest, ReconfigureAroundFailedNodeRestoresOtherTraffic) {
  // The control plane can also route around persistent failures by
  // re-cliquing; here we just verify a swap with failures in place works.
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  const VlbRouter vlb(&rr, LbMode::kRandom);
  SlottedNetwork net(&rr, &vlb, fast_config());
  net.fail_node(7);
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule sorn_sched = ScheduleBuilder::sorn(cliques, {3, 1});
  const auto router =
      SornRouter(&sorn_sched, &cliques, LbMode::kRandom);
  net.reconfigure(&sorn_sched, &router);
  net.inject_cell(0, 3);
  net.run(100);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

}  // namespace
}  // namespace sorn
