// Gray (partial) circuit failures: the stateless seeded verdicts must
// track the configured probabilities, stay deterministic across
// identically-seeded views, and the network must count a gray drop as a
// drop (recoverable by retransmission) while a throttle queues instead.
#include "sim/gray_failures.h"

#include <gtest/gtest.h>

#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

class DirectRouter : public Router {
 public:
  Path route(NodeId src, NodeId dst, Slot, Rng&) const override {
    return Path::of({src, dst});
  }
  int max_hops() const override { return 1; }
};

NetworkConfig fast_config() {
  NetworkConfig c;
  c.lanes = 1;
  c.slot_duration = 100 * 1000;
  c.propagation_per_hop = 0;
  return c;
}

Cell make_cell(FlowId flow, std::uint32_t seq) {
  Cell cell;
  cell.flow = flow;
  cell.path = Path::of({0, 1});
  cell.seq = seq;
  cell.hop = 0;
  return cell;
}

TEST(GrayFailureViewTest, LossVerdictsTrackProbabilityDeterministically) {
  GrayFailureView view(8);
  view.set_seed(42);
  view.degrade_circuit(0, 1, 0.3);
  GrayFailureView twin(8);
  twin.set_seed(42);
  twin.degrade_circuit(0, 1, 0.3);
  const GrayCircuit* g = view.find(0, 1);
  const GrayCircuit* tg = twin.find(0, 1);
  ASSERT_NE(g, nullptr);
  ASSERT_NE(tg, nullptr);

  const int kTrials = 20000;
  int lost = 0;
  for (int i = 0; i < kTrials; ++i) {
    const Cell cell = make_cell(i % 7, static_cast<std::uint32_t>(i));
    const bool verdict = view.cell_lost(i, 0, 1, *g, cell);
    // Same (seed, slot, circuit, cell) => same verdict, in any view.
    EXPECT_EQ(verdict, twin.cell_lost(i, 0, 1, *tg, cell));
    lost += verdict ? 1 : 0;
  }
  const double rate = static_cast<double>(lost) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(GrayFailureViewTest, RetransmittedCopyRerollsItsFate) {
  // The loss hash keys on the slot, so a retransmitted copy of the same
  // cell crossing the same circuit in a later slot is a fresh coin flip —
  // losses are not sticky per cell.
  GrayFailureView view(8);
  view.set_seed(7);
  view.degrade_circuit(0, 1, 0.5);
  const GrayCircuit* g = view.find(0, 1);
  const Cell cell = make_cell(3, 11);
  bool saw_lost = false, saw_kept = false;
  for (Slot slot = 0; slot < 64; ++slot) {
    (view.cell_lost(slot, 0, 1, *g, cell) ? saw_lost : saw_kept) = true;
  }
  EXPECT_TRUE(saw_lost);
  EXPECT_TRUE(saw_kept);
}

TEST(GrayFailureViewTest, ThrottleActiveFractionTracksCapacity) {
  GrayFailureView view(8);
  view.set_seed(5);
  view.throttle_circuit(2, 3, 0.4);
  const GrayCircuit* g = view.find(2, 3);
  ASSERT_NE(g, nullptr);
  int active = 0;
  const int kSlots = 20000;
  for (Slot slot = 0; slot < kSlots; ++slot)
    active += view.slot_active(slot, 2, 3, *g) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(active) / kSlots, 0.4, 0.02);
}

TEST(GrayFailureViewTest, HealthyPointPrunesFromTheView) {
  GrayFailureView view(8);
  EXPECT_FALSE(view.any());
  EXPECT_TRUE(view.degrade_circuit(0, 1, 0.25));
  EXPECT_TRUE(view.any());
  // Degrading back to the healthy point removes the entry entirely, so
  // the sweep's any() fast path stays exact.
  view.degrade_circuit(0, 1, 0.0);
  EXPECT_FALSE(view.any());
  EXPECT_EQ(view.find(0, 1), nullptr);

  view.throttle_circuit(4, 5, 0.5);
  EXPECT_TRUE(view.restore_circuit(4, 5));
  EXPECT_FALSE(view.restore_circuit(4, 5));  // idempotent
  EXPECT_FALSE(view.any());
}

TEST(GrayFailureNetworkTest, FullLossDropsAndCountsCells) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  net.degrade_circuit(0, 1, 1.0);
  net.inject_cell(0, 1);  // circuit 0->1 is up at slot 0
  net.step();
  EXPECT_EQ(net.metrics().delivered_cells(), 0u);
  EXPECT_EQ(net.metrics().gray_dropped_cells(), 1u);
  EXPECT_EQ(net.metrics().dropped_cells(), 1u);
  EXPECT_EQ(net.cells_in_flight(), 0u);  // lost, not queued
}

TEST(GrayFailureNetworkTest, ZeroCapacityThrottleQueuesThenRestores) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  net.throttle_circuit(0, 1, 0.0);
  net.inject_cell(0, 1);
  net.run(8);  // two periods: the circuit never serves a slot
  EXPECT_EQ(net.metrics().delivered_cells(), 0u);
  EXPECT_EQ(net.metrics().gray_dropped_cells(), 0u);
  EXPECT_EQ(net.cells_in_flight(), 1u);  // still queued, not lost
  net.restore_circuit(0, 1);
  net.run(4);  // the 0->1 slot comes around again
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

TEST(GrayFailureViewTest, DegradedCircuitsReportSorted) {
  GrayFailureView view(8);
  view.degrade_circuit(5, 2, 0.1);
  view.throttle_circuit(1, 7, 0.6);
  view.degrade_circuit(1, 3, 0.2);
  const auto list = view.degraded_circuits();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(std::get<0>(list[0]), 1);
  EXPECT_EQ(std::get<1>(list[0]), 3);
  EXPECT_EQ(std::get<0>(list[1]), 1);
  EXPECT_EQ(std::get<1>(list[1]), 7);
  EXPECT_EQ(std::get<0>(list[2]), 5);
  EXPECT_DOUBLE_EQ(std::get<2>(list[1]).capacity, 0.6);
}

}  // namespace
}  // namespace sorn
