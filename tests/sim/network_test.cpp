#include "sim/network.h"

#include <gtest/gtest.h>

#include "routing/vlb.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

// Test-only router that always routes directly (single hop).
class DirectRouter : public Router {
 public:
  Path route(NodeId src, NodeId dst, Slot, Rng&) const override {
    return Path::of({src, dst});
  }
  int max_hops() const override { return 1; }
};

NetworkConfig fast_config() {
  NetworkConfig c;
  c.lanes = 1;
  c.slot_duration = 100 * 1000;   // 100 ns
  c.propagation_per_hop = 0;      // keep slot arithmetic exact
  return c;
}

TEST(NetworkTest, SingleCellDirectDelivery) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  net.inject_cell(0, 1);  // circuit 0->1 is up at slot 0
  net.step();
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
  EXPECT_EQ(net.cells_in_flight(), 0u);
  // Delivered at end of slot 0: one slot of latency, no propagation.
  EXPECT_DOUBLE_EQ(net.metrics().cell_latency_ps().percentile(50.0),
                   100e3);
}

TEST(NetworkTest, CellWaitsForItsCircuit) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  // Circuit 0->3 is up at slot 2 (shift k = 3).
  net.inject_cell(0, 3);
  net.step();
  net.step();
  EXPECT_EQ(net.metrics().delivered_cells(), 0u);
  net.step();
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

TEST(NetworkTest, TwoHopRelayDelivery) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const VlbRouter router(&s, LbMode::kFirstAvailable);
  SlottedNetwork net(&s, &router, fast_config());
  net.inject_cell(0, 2);
  net.run(10);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
  EXPECT_LE(net.metrics().mean_hops(), 2.0);
}

TEST(NetworkTest, ConservationOfCells) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kRandom);
  SlottedNetwork net(&s, &router, fast_config());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(8));
    auto dst = static_cast<NodeId>(rng.next_below(8));
    if (dst == src) dst = (dst + 1) % 8;
    net.inject_cell(src, dst);
  }
  net.run(5);
  EXPECT_EQ(net.metrics().injected_cells(),
            net.metrics().delivered_cells() + net.cells_in_flight());
  net.run(200);
  EXPECT_EQ(net.metrics().delivered_cells(), 200u);
  EXPECT_EQ(net.cells_in_flight(), 0u);
}

TEST(NetworkTest, FlowInjectionSplitsIntoCells) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  NetworkConfig c = fast_config();
  c.cell_bytes = 100;
  SlottedNetwork net(&s, &router, c);
  net.inject_flow(7, 0, 1, 950);  // ceil(950/100) = 10 cells
  EXPECT_EQ(net.metrics().injected_cells(), 10u);
  net.run(40);
  EXPECT_EQ(net.metrics().delivered_cells(), 10u);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_GT(net.metrics().fct_ps().count(), 0u);
}

TEST(NetworkTest, LanesAccelerateDelivery) {
  // With u lanes a node sweeps its circuits u times faster: draining a
  // burst of direct cells to every destination takes ~period/lanes slots.
  const CircuitSchedule s1 = ScheduleBuilder::round_robin(16);
  const DirectRouter router;
  NetworkConfig one_lane = fast_config();
  NetworkConfig four_lanes = fast_config();
  four_lanes.lanes = 4;
  SlottedNetwork slow(&s1, &router, one_lane);
  SlottedNetwork fast(&s1, &router, four_lanes);
  for (NodeId dst = 1; dst < 16; ++dst) {
    slow.inject_cell(0, dst);
    fast.inject_cell(0, dst);
  }
  slow.run(5);
  fast.run(5);
  EXPECT_GT(fast.metrics().delivered_cells(),
            slow.metrics().delivered_cells());
  fast.run(5);
  EXPECT_EQ(fast.metrics().delivered_cells(), 15u);
}

TEST(NetworkTest, PropagationDelaysRelayAvailability) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const VlbRouter router(&s, LbMode::kFirstAvailable);
  NetworkConfig with_prop = fast_config();
  with_prop.propagation_per_hop = 500 * 1000;  // 5 slots
  SlottedNetwork net(&s, &router, with_prop);
  net.inject_cell(0, 2);
  net.run(3);
  // The relay cannot have forwarded it yet: it only became ready at +6.
  EXPECT_EQ(net.metrics().delivered_cells(), 0u);
  net.run(20);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

TEST(NetworkTest, ReconfigureSwapsScheduleMidRun) {
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule sorn_sched = ScheduleBuilder::sorn(cliques, {3, 1});
  const VlbRouter vlb(&rr, LbMode::kRandom);
  SlottedNetwork net(&rr, &vlb, fast_config());
  net.inject_cell(0, 5);
  net.run(2);
  net.reconfigure(&sorn_sched, &vlb);
  net.run(40);
  // The in-flight cell still completes: the SORN schedule reaches all
  // pairs within its period.
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

TEST(NetworkTest, ResetMetricsKeepsQueuedCells) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  net.inject_cell(0, 3);
  net.reset_metrics();
  EXPECT_EQ(net.metrics().injected_cells(), 0u);
  EXPECT_EQ(net.cells_in_flight(), 1u);
  net.run(5);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

}  // namespace
}  // namespace sorn
