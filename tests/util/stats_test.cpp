#include "util/stats.h"

#include <gtest/gtest.h>

#include <limits>

namespace sorn {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, EmptyExtremaAreInfinitiesAsDocumented) {
  // stats.h documents min() -> +inf and max() -> -inf on the empty
  // object (the identity elements of min/max); lock the behavior in.
  RunningStats s;
  EXPECT_EQ(s.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.max(), -std::numeric_limits<double>::infinity());
  // The first sample replaces both extrema, even when negative.
  s.add(-3.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(PercentilesTest, EmptyIsAllZeros) {
  // stats.h documents percentile() -> 0 on the empty set; the profiler's
  // phase export relies on it (phases that never ran serialize as zeroed
  // percentile blocks, not NaNs). Lock the whole empty surface in.
  Percentiles p;
  EXPECT_EQ(p.count(), 0u);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(p.percentile(100.0), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
}

TEST(PercentilesTest, MedianOfOddCount) {
  Percentiles p;
  for (double x : {5.0, 1.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(PercentilesTest, InterpolatesBetweenSamples) {
  Percentiles p;
  for (double x : {0.0, 10.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.percentile(100.0), 10.0);
}

TEST(PercentilesTest, TailPercentile) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_NEAR(p.percentile(99.0), 99.01, 0.011);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(PercentilesTest, SortedSamplesAccessor) {
  Percentiles p;
  for (double x : {3.0, 1.0, 2.0}) p.add(x);
  EXPECT_EQ(p.sorted(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(PercentilesTest, AddAfterQueryStaysConsistent) {
  Percentiles p;
  p.add(1.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.median(), 2.0);
  p.add(100.0);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);       // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);      // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 7);
  EXPECT_EQ(h.bin_count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

}  // namespace
}  // namespace sorn
