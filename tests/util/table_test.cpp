#include "util/table.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(TableTest, CsvRoundTrip) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"x"});  // short rows pad
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\nx,\n");
}

TEST(TableTest, JsonRowsKeyedByHeader) {
  TablePrinter t({"x", "r"});
  t.add_row({"0.5", "0.4"});
  t.add_row({"1.0", "0.5"});
  EXPECT_EQ(t.to_json(),
            "[\n"
            "  {\"x\": \"0.5\", \"r\": \"0.4\"},\n"
            "  {\"x\": \"1.0\", \"r\": \"0.5\"}\n"
            "]\n");
}

TEST(TableTest, JsonEscapesQuotesAndHandlesEmptyTable) {
  TablePrinter t({"a\"b"});
  t.add_row({"x\\y"});
  EXPECT_EQ(t.to_json(), "[\n  {\"a\\\"b\": \"x\\\\y\"}\n]\n");
  TablePrinter empty({"h"});
  EXPECT_EQ(empty.to_json(), "[\n]\n");
}

TEST(FormatTest, FormatsLikePrintf) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(FormatTest, LongStringsDoNotTruncate) {
  const std::string s(500, 'y');
  EXPECT_EQ(format("%s", s.c_str()).size(), 500u);
}

}  // namespace
}  // namespace sorn
