#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sorn {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(15);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(RngTest, SplitStreamsAreIndependentlySeeded) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace sorn
