// Arena allocators (util/arena.h): chunk reuse, FIFO semantics across
// chunk boundaries, and slot recycling that keeps grown capacity.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sorn {
namespace {

TEST(ChunkPoolTest, ReleasedChunksAreReused) {
  ChunkPool<int, 4> pool;
  auto* a = pool.acquire();
  auto* b = pool.acquire();
  EXPECT_EQ(pool.chunks_allocated(), 2u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.free_chunks(), 2u);
  // LIFO free list: the most recently released chunk comes back first,
  // and no new storage is allocated.
  EXPECT_EQ(pool.acquire(), b);
  EXPECT_EQ(pool.acquire(), a);
  EXPECT_EQ(pool.chunks_allocated(), 2u);
  EXPECT_EQ(pool.free_chunks(), 0u);
}

TEST(PooledFifoTest, FifoOrderAcrossChunkBoundaries) {
  ChunkPool<int, 4> pool;
  PooledFifo<int, 4> fifo;
  for (int i = 0; i < 11; ++i) fifo.push_back(pool, i);
  EXPECT_EQ(fifo.size(), 11u);
  EXPECT_EQ(pool.chunks_allocated(), 3u);
  for (int i = 0; i < 11; ++i) {
    ASSERT_FALSE(fifo.empty());
    EXPECT_EQ(fifo.front(), i);
    fifo.pop_front(pool);
  }
  EXPECT_TRUE(fifo.empty());
  // Every chunk went back to the pool as the head drained.
  EXPECT_EQ(pool.free_chunks(), 3u);
}

TEST(PooledFifoTest, SteadyStateChurnAllocatesNothingNew) {
  ChunkPool<int, 4> pool;
  PooledFifo<int, 4> fifo;
  for (int i = 0; i < 8; ++i) fifo.push_back(pool, i);
  // Warm up: the rolling chain needs one chunk beyond the initial fill
  // (a partially-drained head plus a partially-filled tail).
  for (int round = 0; round < 8; ++round) {
    fifo.push_back(pool, round);
    fifo.pop_front(pool);
  }
  const std::uint64_t warm = pool.chunks_allocated();
  // Bounded-depth churn: every push is matched by a pop, so the chunk
  // chain rolls forward through recycled chunks only.
  for (int round = 0; round < 1000; ++round) {
    fifo.push_back(pool, round);
    fifo.pop_front(pool);
  }
  EXPECT_EQ(pool.chunks_allocated(), warm)
      << "steady-state churn must not grow the pool";
  EXPECT_EQ(fifo.size(), 8u);
}

TEST(PooledFifoTest, InterleavedQueuesShareOnePool) {
  ChunkPool<int, 4> pool;
  PooledFifo<int, 4> a;
  PooledFifo<int, 4> b;
  for (int i = 0; i < 6; ++i) {
    a.push_back(pool, i);
    b.push_back(pool, 100 + i);
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(a.front(), i);
    EXPECT_EQ(b.front(), 100 + i);
    a.pop_front(pool);
    b.pop_front(pool);
  }
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.free_chunks(), pool.chunks_allocated());
}

TEST(PooledFifoTest, ClearReturnsEveryChunk) {
  ChunkPool<int, 4> pool;
  PooledFifo<int, 4> fifo;
  for (int i = 0; i < 10; ++i) fifo.push_back(pool, i);
  fifo.clear(pool);
  EXPECT_TRUE(fifo.empty());
  EXPECT_EQ(pool.free_chunks(), pool.chunks_allocated());
  // The cleared FIFO is reusable.
  fifo.push_back(pool, 42);
  EXPECT_EQ(fifo.front(), 42);
}

TEST(PooledFifoTest, MoveTransfersOwnership) {
  ChunkPool<int, 4> pool;
  PooledFifo<int, 4> fifo;
  for (int i = 0; i < 5; ++i) fifo.push_back(pool, i);
  PooledFifo<int, 4> moved = std::move(fifo);
  EXPECT_TRUE(fifo.empty());  // NOLINT(bugprone-use-after-move): pinned
  EXPECT_EQ(moved.size(), 5u);
  EXPECT_EQ(moved.front(), 0);
  moved.clear(pool);
}

TEST(SlotArenaTest, ReleasedSlotsAreRecycled) {
  SlotArena<int> arena;
  const std::uint32_t a = arena.allocate();
  const std::uint32_t b = arena.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.live(), 2u);
  arena.release(a);
  EXPECT_EQ(arena.live(), 1u);
  // The freed index comes back before any new slot is created.
  EXPECT_EQ(arena.allocate(), a);
  EXPECT_EQ(arena.capacity(), 2u);
}

TEST(SlotArenaTest, RecycledObjectKeepsGrownCapacity) {
  SlotArena<std::vector<int>> arena;
  const std::uint32_t i = arena.allocate();
  arena[i].resize(1000);
  const std::size_t grown = arena[i].capacity();
  arena.release(i);
  // The object is recycled, not reconstructed: its buffer survives, so
  // the next user's assign/resize within that capacity is heap-free.
  const std::uint32_t j = arena.allocate();
  EXPECT_EQ(j, i);
  EXPECT_GE(arena[j].capacity(), grown);
  // Caller responsibility: recycled contents must be re-initialized.
  arena[j].assign(10, 7);
  EXPECT_EQ(arena[j].size(), 10u);
  EXPECT_EQ(arena[j][9], 7);
}

TEST(SlotArenaTest, ReferencesSurviveGrowth) {
  SlotArena<std::string> arena;
  const std::uint32_t first = arena.allocate();
  arena[first] = "pinned";
  const std::string* addr = &arena[first];
  for (int i = 0; i < 1000; ++i) arena.allocate();
  EXPECT_EQ(&arena[first], addr) << "deque storage must not relocate slots";
  EXPECT_EQ(arena[first], "pinned");
}

TEST(SlotArenaTest, MemoryBytesTracksSlots) {
  SlotArena<std::uint64_t> arena;
  EXPECT_EQ(arena.memory_bytes(), 0u);
  for (int i = 0; i < 16; ++i) arena.allocate();
  EXPECT_GE(arena.memory_bytes(), 16 * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace sorn
