#include "core/sorn.h"

#include <gtest/gtest.h>

#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(SornNetworkTest, BuildDerivesOptimalQFromLocality) {
  SornConfig cfg;
  cfg.nodes = 32;
  cfg.cliques = 4;
  cfg.locality_x = 0.5;
  const SornNetwork net = SornNetwork::build(cfg);
  EXPECT_NEAR(net.q().value(), 4.0, 1e-9);
  EXPECT_NEAR(net.predicted_throughput(), 0.4, 1e-9);
}

TEST(SornNetworkTest, ExplicitQOverridesLocality) {
  SornConfig cfg;
  cfg.nodes = 16;
  cfg.cliques = 2;
  cfg.locality_x = 0.5;
  cfg.q = Rational{3, 1};
  const SornNetwork net = SornNetwork::build(cfg);
  EXPECT_DOUBLE_EQ(net.q().value(), 3.0);
}

TEST(SornNetworkTest, PredictionsUseTableCalibratedForms) {
  SornConfig cfg;
  cfg.nodes = 4096;
  cfg.cliques = 64;
  cfg.locality_x = 0.56;
  cfg.uplinks = 16;
  cfg.max_q_denominator = 11;
  cfg.max_period = 1 << 24;
  // Building the full 4096-node schedule is expensive; only the analytic
  // accessors are exercised here via a smaller build with equal ratios.
  // Use the closed forms directly through a small instance instead.
  SornConfig small = cfg;
  small.nodes = 128;
  small.cliques = 8;
  const SornNetwork net = SornNetwork::build(small);
  EXPECT_NEAR(net.q().value(), 50.0 / 11.0, 1e-9);
  EXPECT_GT(net.delta_m_inter(), net.delta_m_intra());
  EXPECT_GT(net.min_latency_inter_us(), net.min_latency_intra_us());
}

TEST(SornNetworkTest, LogicalTopologyReflectsOversubscription) {
  SornConfig cfg;
  cfg.nodes = 8;
  cfg.cliques = 2;
  cfg.q = Rational{3, 1};
  const SornNetwork net = SornNetwork::build(cfg);
  const LogicalTopology topo = net.logical_topology();
  EXPECT_NEAR(topo.intra_fraction(0, net.cliques()), 0.75, 1e-12);
  EXPECT_NEAR(topo.inter_fraction(0, net.cliques()), 0.25, 1e-12);
}

TEST(SornNetworkTest, MakeNetworkRunsTraffic) {
  SornConfig cfg;
  cfg.nodes = 16;
  cfg.cliques = 4;
  cfg.locality_x = 0.5;
  cfg.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();
  sim.inject_cell(0, 3);    // intra
  sim.inject_cell(0, 12);   // inter
  sim.run(300);
  EXPECT_EQ(sim.metrics().delivered_cells(), 2u);
}

TEST(SornNetworkTest, AdaptRebuildsScheduleAndRouter) {
  SornConfig cfg;
  cfg.nodes = 16;
  cfg.cliques = 4;
  cfg.locality_x = 0.5;
  cfg.propagation_per_hop = 0;
  SornNetwork net = SornNetwork::build(cfg);
  const double old_intra = net.delta_m_intra();

  net.adapt(CliqueAssignment::contiguous(16, 2), Rational{5, 1});
  EXPECT_EQ(net.cliques().clique_count(), 2);
  EXPECT_DOUBLE_EQ(net.q().value(), 5.0);
  EXPECT_NE(net.delta_m_intra(), old_intra);

  SlottedNetwork sim = net.make_network();
  sim.inject_cell(0, 9);
  sim.run(300);
  EXPECT_EQ(sim.metrics().delivered_cells(), 1u);
}

TEST(SornNetworkTest, BuildWithAssignmentAcceptsNonContiguous) {
  std::vector<CliqueId> map(16);
  for (NodeId i = 0; i < 16; ++i) map[static_cast<std::size_t>(i)] = i % 4;
  SornConfig cfg;
  cfg.nodes = 16;
  cfg.cliques = 4;
  const SornNetwork net =
      SornNetwork::build_with_assignment(cfg, CliqueAssignment(map));
  EXPECT_TRUE(net.cliques().same_clique(0, 4));
  EXPECT_FALSE(net.cliques().same_clique(0, 1));
}

TEST(SornNetworkTest, RejectsIndivisibleCliques) {
  SornConfig cfg;
  cfg.nodes = 10;
  cfg.cliques = 4;
  EXPECT_DEATH(SornNetwork::build(cfg), "equal cliques");
}

}  // namespace
}  // namespace sorn
