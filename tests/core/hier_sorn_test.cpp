#include "core/hier_sorn.h"

#include <gtest/gtest.h>

#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(HierSornNetworkTest, BuildDerivesOptimalShares) {
  HierSornConfig cfg;
  cfg.nodes = 64;
  cfg.clusters = 4;
  cfg.pods_per_cluster = 4;
  cfg.pod_locality_x1 = 0.5;
  cfg.cluster_locality_x2 = 0.3;
  const HierSornNetwork net = HierSornNetwork::build(cfg);
  // Optimal ratio 2 : 0.5 : 0.2 (x3 = 0.2), scaled by 12: 24 : 6 : 2.
  EXPECT_EQ(net.shares().intra, 24);
  EXPECT_EQ(net.shares().inter, 6);
  EXPECT_EQ(net.shares().global, 2);
  EXPECT_NEAR(net.predicted_throughput(), 1.0 / 2.7, 1e-12);
}

TEST(HierSornNetworkTest, ExplicitSharesOverrideLocality) {
  HierSornConfig cfg;
  cfg.nodes = 16;
  cfg.clusters = 2;
  cfg.pods_per_cluster = 2;
  cfg.shares = {4, 2, 1};
  const HierSornNetwork net = HierSornNetwork::build(cfg);
  EXPECT_EQ(net.shares().intra, 4);
  EXPECT_EQ(net.shares().inter, 2);
  EXPECT_EQ(net.shares().global, 1);
}

TEST(HierSornNetworkTest, DeltaMOrdering) {
  HierSornConfig cfg;
  cfg.nodes = 64;
  cfg.clusters = 4;
  cfg.pods_per_cluster = 4;
  const HierSornNetwork net = HierSornNetwork::build(cfg);
  EXPECT_LT(net.delta_m_pod(), net.delta_m_cluster());
  EXPECT_LT(net.delta_m_cluster(), net.delta_m_global());
}

TEST(HierSornNetworkTest, SimulationDeliversAllClasses) {
  HierSornConfig cfg;
  cfg.nodes = 64;
  cfg.clusters = 4;
  cfg.pods_per_cluster = 4;
  cfg.propagation_per_hop = 0;
  const HierSornNetwork net = HierSornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();
  sim.inject_cell(0, 2);    // same pod
  sim.inject_cell(0, 9);    // same cluster
  sim.inject_cell(0, 40);   // cross cluster
  sim.run(2000);
  EXPECT_EQ(sim.metrics().delivered_cells(), 3u);
}

}  // namespace
}  // namespace sorn
