// Cross-module integration: the full semi-oblivious loop of the paper —
// simulate traffic with planted macro structure, let the control plane
// infer cliques and reconfigure, and verify performance follows.
#include <gtest/gtest.h>

#include "control/control_plane.h"
#include "core/sorn.h"
#include "sim/saturation.h"
#include "traffic/patterns.h"
#include "traffic/trace.h"

namespace sorn {
namespace {

// Saturation throughput of a SORN built for grouping `built_for`, when the
// actual traffic is local under `truth`.
double measure_throughput(const CliqueAssignment& built_for,
                          const CliqueAssignment& truth, double x,
                          Rational q) {
  const CircuitSchedule schedule = ScheduleBuilder::sorn(built_for, q);
  const SornRouter router(&schedule, &built_for, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&schedule, &router, cfg);
  const TrafficMatrix tm = patterns::locality_mix(truth, x);
  SaturationSource source(&tm, SaturationConfig{});
  return source.measure(net, 3000, 6000);
}

TEST(EndToEndTest, MatchedCliquesOutperformMismatched) {
  // Traffic is local under an interleaved grouping. A SORN built for the
  // right grouping sustains ~1/(3-x); one built for the wrong grouping
  // treats all traffic as inter-clique and loses throughput.
  std::vector<CliqueId> hidden(32);
  for (NodeId i = 0; i < 32; ++i) hidden[static_cast<std::size_t>(i)] = i % 4;
  const CliqueAssignment truth(hidden);
  const CliqueAssignment wrong = CliqueAssignment::contiguous(32, 4);
  const double x = 0.7;
  const Rational q = Rational::approximate(analysis::sorn_optimal_q(x), 12);

  const double matched = measure_throughput(truth, truth, x, q);
  const double mismatched = measure_throughput(wrong, truth, x, q);
  EXPECT_NEAR(matched, analysis::sorn_throughput(x), 0.05);
  EXPECT_GT(matched, mismatched + 0.05);
}

TEST(EndToEndTest, ControlPlaneRecoversHiddenStructure) {
  // The clusterer, fed only noisy epoch observations, should recover a
  // grouping whose locality is close to the planted macro structure's.
  SyntheticTrace::Config cfg;
  cfg.nodes = 32;
  cfg.group_size = 8;
  cfg.burst_sigma = 0.5;
  SyntheticTrace trace(cfg);

  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {4};
  ControlPlane cp(32, opts);
  for (int e = 0; e < 4; ++e) cp.on_epoch(trace.epoch_matrix(), e);

  const double planted =
      trace.macro_matrix().locality_ratio(trace.ground_truth_cliques());
  const double recovered =
      trace.macro_matrix().locality_ratio(cp.last_plan().cliques);
  EXPECT_GT(recovered, planted - 0.05);
}

TEST(EndToEndTest, AdaptationRestoresThroughputAfterShift) {
  // Build for grouping A, run traffic local under grouping B, adapt, and
  // verify measured throughput improves.
  std::vector<CliqueId> interleaved(32);
  for (NodeId i = 0; i < 32; ++i)
    interleaved[static_cast<std::size_t>(i)] = i % 4;
  const CliqueAssignment truth(interleaved);
  const double x = 0.7;
  const TrafficMatrix tm = patterns::locality_mix(truth, x);

  SornConfig cfg;
  cfg.nodes = 32;
  cfg.cliques = 4;  // contiguous: mismatched with `truth`
  cfg.locality_x = x;
  cfg.propagation_per_hop = 0;
  SornNetwork net = SornNetwork::build(cfg);

  SlottedNetwork sim = net.make_network();
  SaturationSource source(&tm, SaturationConfig{});
  const double before = source.measure(sim, 3000, 5000);

  // Control-plane step: cluster the (true) demand and adapt. The long
  // warmup lets backlog routed under the mismatched schedule drain.
  SornOptimizer optimizer;
  const SornPlan plan = optimizer.plan_for_nc(tm, 4);
  net.adapt(plan.cliques, plan.q);
  sim.reconfigure(&net.schedule(), &net.router());
  const double after = source.measure(sim, 12000, 8000);

  EXPECT_GT(after, before + 0.05);
  EXPECT_NEAR(after, analysis::sorn_throughput(x), 0.06);
}

TEST(EndToEndTest, FlatSornEquals1dOrn) {
  // Degenerate configuration check: singleton cliques give the flat
  // oblivious design, with the classic ~50% uniform-traffic throughput...
  // routed direct (single hop) because both load-balancing hops vanish,
  // which under uniform traffic actually delivers full capacity.
  const CliqueAssignment flat = CliqueAssignment::flat(16);
  const CircuitSchedule schedule = ScheduleBuilder::sorn(flat, Rational{1, 1});
  const SornRouter router(&schedule, &flat, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&schedule, &router, cfg);
  const TrafficMatrix tm = patterns::uniform(16);
  SaturationSource source(&tm, SaturationConfig{});
  const double r = source.measure(net, 2000, 4000);
  EXPECT_GT(r, 0.9);
}

}  // namespace
}  // namespace sorn
