// Cross-design simulator invariants: for every schedule/router family in
// the library, under random traffic and random lane counts, the fabric
// conserves cells, delivers everything once sources stop, and never
// delivers a cell to the wrong node (checked implicitly: flow completion
// accounting would diverge).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "routing/direct.h"
#include "routing/hier_routing.h"
#include "sim/network.h"
#include "routing/orn_hd_routing.h"
#include "routing/orn_mixed_routing.h"
#include "routing/rotor_routing.h"
#include "routing/sorn_routing.h"
#include "routing/vlb.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

struct Fabric {
  std::string name;
  std::unique_ptr<CircuitSchedule> schedule;
  std::unique_ptr<Router> router;
  // Keep ownership of auxiliary structures alive.
  std::shared_ptr<void> aux;
};

std::vector<Fabric> all_fabrics() {
  std::vector<Fabric> fabrics;
  {
    Fabric f;
    f.name = "1D ORN + VLB";
    f.schedule =
        std::make_unique<CircuitSchedule>(ScheduleBuilder::round_robin(16));
    f.router = std::make_unique<VlbRouter>(f.schedule.get(), LbMode::kRandom);
    fabrics.push_back(std::move(f));
  }
  {
    Fabric f;
    f.name = "2D ORN";
    f.schedule =
        std::make_unique<CircuitSchedule>(ScheduleBuilder::orn_hd(16, 2));
    f.router = std::make_unique<OrnHdRouter>(16, 2);
    fabrics.push_back(std::move(f));
  }
  {
    Fabric f;
    f.name = "mixed-radix ORN";
    f.schedule = std::make_unique<CircuitSchedule>(
        ScheduleBuilder::orn_mixed(16, {4, 2, 2}));
    f.router = std::make_unique<OrnMixedRouter>(
        16, std::vector<NodeId>{4, 2, 2});
    fabrics.push_back(std::move(f));
  }
  {
    Fabric f;
    f.name = "SORN";
    auto cliques = std::make_shared<CliqueAssignment>(
        CliqueAssignment::contiguous(16, 4));
    f.schedule = std::make_unique<CircuitSchedule>(
        ScheduleBuilder::sorn(*cliques, {2, 1}));
    f.router = std::make_unique<SornRouter>(f.schedule.get(), cliques.get(),
                                            LbMode::kRandom);
    f.aux = cliques;
    fabrics.push_back(std::move(f));
  }
  {
    Fabric f;
    f.name = "weighted SORN";
    auto cliques = std::make_shared<CliqueAssignment>(
        CliqueAssignment::contiguous(16, 4));
    std::vector<double> w(16, 1.0);
    w[0 * 4 + 1] = 4.0;
    f.schedule = std::make_unique<CircuitSchedule>(
        ScheduleBuilder::sorn_weighted(*cliques, {2, 1}, w));
    f.router = std::make_unique<SornRouter>(f.schedule.get(), cliques.get(),
                                            LbMode::kFirstAvailable);
    f.aux = cliques;
    fabrics.push_back(std::move(f));
  }
  {
    Fabric f;
    f.name = "hierarchical SORN";
    auto hierarchy =
        std::make_shared<Hierarchy>(Hierarchy::regular(16, 2, 2));
    f.schedule = std::make_unique<CircuitSchedule>(
        ScheduleBuilder::sorn_hierarchical(*hierarchy, {2, 1, 1}));
    f.router = std::make_unique<HierSornRouter>(
        f.schedule.get(), hierarchy.get(), LbMode::kRandom);
    f.aux = hierarchy;
    fabrics.push_back(std::move(f));
  }
  {
    Fabric f;
    f.name = "rotor (Opera)";
    f.schedule = std::make_unique<CircuitSchedule>(
        ScheduleBuilder::rotor_random(16, 10, 3));
    f.router = std::make_unique<RotorRouter>(f.schedule.get(), 2, 6);
    fabrics.push_back(std::move(f));
  }
  {
    Fabric f;
    f.name = "direct";
    f.schedule =
        std::make_unique<CircuitSchedule>(ScheduleBuilder::round_robin(16));
    f.router = std::make_unique<DirectRouter>();
    fabrics.push_back(std::move(f));
  }
  return fabrics;
}

class FabricInvariants : public ::testing::TestWithParam<int> {};

TEST_P(FabricInvariants, ConservationAndCompleteDelivery) {
  const int lanes = GetParam();
  for (Fabric& f : all_fabrics()) {
    NetworkConfig cfg;
    cfg.lanes = lanes;
    cfg.propagation_per_hop = 0;
    SlottedNetwork net(f.schedule.get(), f.router.get(), cfg);
    Rng rng(1000 + static_cast<std::uint64_t>(lanes));
    std::uint64_t injected = 0;
    for (int i = 0; i < 150; ++i) {
      const auto src = static_cast<NodeId>(rng.next_below(16));
      auto dst = static_cast<NodeId>(rng.next_below(16));
      if (dst == src) dst = (dst + 1) % 16;
      net.inject_cell(src, dst);
      ++injected;
      if (i % 3 == 0) net.step();
    }
    // Mid-run conservation.
    EXPECT_EQ(net.metrics().injected_cells(),
              net.metrics().delivered_cells() + net.cells_in_flight())
        << f.name;
    // Complete delivery after sources stop (generous horizon: the rotor
    // fabric needs a full rotation).
    for (Slot t = 0; t < 5000 && net.cells_in_flight() > 0; ++t) net.step();
    EXPECT_EQ(net.metrics().delivered_cells(), injected) << f.name;
    EXPECT_EQ(net.cells_in_flight(), 0u) << f.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, FabricInvariants, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "lanes" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sorn
