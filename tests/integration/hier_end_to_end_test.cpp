// Hierarchical loop end to end: scrambled two-level demand -> HierOptimizer
// recovers the structure -> hierarchical schedule + router over the
// position space -> simulated throughput matches the closed form.
#include <gtest/gtest.h>

#include "control/hier_optimizer.h"
#include "routing/hier_routing.h"
#include "sim/saturation.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(HierEndToEndTest, PlannedFabricCarriesTheScrambledDemand) {
  const NodeId n = 64;
  const Hierarchy truth = Hierarchy::regular(n, 4, 4);
  const double x1 = 0.5;
  const double x2 = 0.3;
  const TrafficMatrix clean = patterns::hier_locality_mix(truth, x1, x2);

  // Scramble node identities: the physical demand the planner observes.
  Rng rng(99);
  std::vector<NodeId> scramble(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) scramble[static_cast<std::size_t>(i)] = i;
  rng.shuffle(scramble);
  const TrafficMatrix observed = permute_matrix(clean, scramble);

  // Plan.
  HierOptimizer::Options opts;
  opts.clusters = 4;
  opts.pods_per_cluster = 4;
  const HierOptimizer optimizer(opts);
  const HierPlan plan = optimizer.plan(observed);
  EXPECT_NEAR(plan.x1, x1, 0.06);
  EXPECT_NEAR(plan.x2, x2, 0.08);

  // Build the fabric in position space and drive it with the demand
  // reindexed by the plan's relabeling (each physical node sits at its
  // assigned position).
  const Hierarchy h = plan.hierarchy(n);
  const CircuitSchedule schedule = ScheduleBuilder::sorn_hierarchical(
      h, {plan.shares.intra, plan.shares.inter, plan.shares.global});
  const HierSornRouter router(&schedule, &h, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&schedule, &router, cfg);
  const TrafficMatrix in_position =
      permute_matrix(observed, plan.position_of_node);
  SaturationSource source(&in_position, SaturationConfig{});
  const double r = source.measure(net, 6000, 8000);
  EXPECT_NEAR(r, plan.predicted_throughput, 0.06);
}

TEST(HierEndToEndTest, MisplannedHierarchyLosesThroughput) {
  // Feeding the fabric the raw (scrambled) demand without applying the
  // plan's relabeling destroys the locality and throughput drops.
  const NodeId n = 64;
  const Hierarchy truth = Hierarchy::regular(n, 4, 4);
  const TrafficMatrix clean = patterns::hier_locality_mix(truth, 0.6, 0.25);
  Rng rng(7);
  std::vector<NodeId> scramble(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) scramble[static_cast<std::size_t>(i)] = i;
  rng.shuffle(scramble);
  const TrafficMatrix observed = permute_matrix(clean, scramble);

  const Hierarchy h = Hierarchy::regular(n, 4, 4);
  const auto shares = analysis::hier_optimal_shares(0.6, 0.25);
  const CircuitSchedule schedule = ScheduleBuilder::sorn_hierarchical(
      h, {shares.intra, shares.inter, shares.global});
  const HierSornRouter router(&schedule, &h, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;

  SlottedNetwork planned(&schedule, &router, cfg);
  const HierOptimizer optimizer([] {
    HierOptimizer::Options o;
    o.clusters = 4;
    o.pods_per_cluster = 4;
    return o;
  }());
  const HierPlan plan = optimizer.plan(observed);
  const TrafficMatrix matched =
      permute_matrix(observed, plan.position_of_node);
  SaturationSource match_source(&matched, SaturationConfig{});
  const double r_matched = match_source.measure(planned, 5000, 6000);

  SlottedNetwork unplanned(&schedule, &router, cfg);
  SaturationSource raw_source(&observed, SaturationConfig{});
  const double r_raw = raw_source.measure(unplanned, 5000, 6000);

  EXPECT_GT(r_matched, r_raw + 0.05);
}

}  // namespace
}  // namespace sorn
