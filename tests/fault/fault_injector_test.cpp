// Fault-injection harness: script grammar, scripted timeline application,
// and the determinism of the stochastic MTBF/MTTR model.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

NetworkConfig fast_config() {
  NetworkConfig c;
  c.propagation_per_hop = 0;
  return c;
}

TEST(FaultScriptTest, ParsesAllEventKindsAndSortsBySlot) {
  const char* text =
      "# blast at 100, heal later\n"
      "200 heal-node 3\n"
      "\n"
      "100 fail-node 3\n"
      "100 fail-circuit 1 5\n"
      "250 heal-circuit 1 5\n";
  FaultScript script;
  std::string error;
  ASSERT_TRUE(FaultScript::parse(text, 0, &script, &error)) << error;
  ASSERT_EQ(script.events().size(), 4u);
  // Stable-sorted by slot; same-slot events keep file order.
  EXPECT_EQ(script.events()[0].slot, 100);
  EXPECT_EQ(script.events()[0].kind, FaultKind::kFailNode);
  EXPECT_EQ(script.events()[0].a, 3);
  EXPECT_EQ(script.events()[1].kind, FaultKind::kFailCircuit);
  EXPECT_EQ(script.events()[1].a, 1);
  EXPECT_EQ(script.events()[1].b, 5);
  EXPECT_EQ(script.events()[2].slot, 200);
  EXPECT_EQ(script.events()[2].kind, FaultKind::kHealNode);
  EXPECT_EQ(script.events()[3].slot, 250);
  EXPECT_EQ(script.events()[3].kind, FaultKind::kHealCircuit);
}

TEST(FaultScriptTest, ParsesGrayActionsAndExpandsFlaps) {
  const char* text =
      "10 degrade-circuit 1 5 0.25\n"
      "20 throttle-circuit 2 6 0.5\n"
      "30 restore-circuit 1 5\n"
      "40 flap-circuit 0 3 2 5 10\n";
  FaultScript script;
  std::string error;
  ASSERT_TRUE(FaultScript::parse(text, 8, &script, &error)) << error;
  // 3 gray events + 2 flap cycles x (fail, heal).
  ASSERT_EQ(script.events().size(), 7u);
  EXPECT_EQ(script.events()[0].kind, FaultKind::kDegradeCircuit);
  EXPECT_DOUBLE_EQ(script.events()[0].value, 0.25);
  EXPECT_EQ(script.events()[1].kind, FaultKind::kThrottleCircuit);
  EXPECT_DOUBLE_EQ(script.events()[1].value, 0.5);
  EXPECT_EQ(script.events()[2].kind, FaultKind::kRestoreCircuit);
  // flap: fail@40, heal@45, fail@55, heal@60.
  EXPECT_EQ(script.events()[3].slot, 40);
  EXPECT_EQ(script.events()[3].kind, FaultKind::kFailCircuit);
  EXPECT_EQ(script.events()[4].slot, 45);
  EXPECT_EQ(script.events()[4].kind, FaultKind::kHealCircuit);
  EXPECT_EQ(script.events()[5].slot, 55);
  EXPECT_EQ(script.events()[6].slot, 60);
  EXPECT_EQ(script.events()[6].b, 3);
}

TEST(FaultScriptTest, RejectsMalformedLinesNamingTheLine) {
  const struct {
    const char* text;
    NodeId nodes;      // topology size for range validation (0 = skip)
    const char* line;  // expected substring of the error
  } cases[] = {
      {"10 melt-node 3\n", 0, "line 1"},          // unknown action
      {"\n10 fail-node\n", 0, "line 2"},          // missing argument
      {"10 fail-node 3 4\n", 0, "line 1"},        // extra argument
      {"ten fail-node 3\n", 0, "line 1"},         // non-numeric slot
      {"-5 fail-node 3\n", 0, "line 1"},          // negative slot
      {"10 fail-circuit 2 2\n", 0, "line 1"},     // degenerate circuit
      {"10 fail-node 3x\n", 0, "line 1"},         // trailing garbage
      {"10 fail-node 8\n", 8, "line 1"},          // node id out of range
      {"\n\n10 fail-circuit 0 9\n", 8, "line 3"}, // dst out of range
      {"10 degrade-circuit 0 1 1.5\n", 8, "line 1"},   // loss_p > 1
      {"10 degrade-circuit 0 1 -0.1\n", 8, "line 1"},  // loss_p < 0
      {"10 throttle-circuit 0 1 two\n", 8, "line 1"},  // non-numeric value
      {"10 degrade-circuit 0 1\n", 8, "line 1"},       // missing value
      {"10 flap-circuit 0 1 0 5 5\n", 8, "line 1"},    // zero cycles
      {"10 flap-circuit 0 1 2 5\n", 8, "line 1"},      // missing up_slots
  };
  for (const auto& c : cases) {
    FaultScript script;
    std::string error;
    EXPECT_FALSE(FaultScript::parse(c.text, c.nodes, &script, &error))
        << c.text;
    EXPECT_NE(error.find(c.line), std::string::npos)
        << "error for \"" << c.text << "\" was: " << error;
    EXPECT_TRUE(script.empty()) << "out must be untouched on failure";
  }
}

TEST(FaultScriptTest, ValidatesIdsAgainstTopologyAtParseTime) {
  FaultScript script;
  std::string error;
  // In range for 16 nodes: fine.
  ASSERT_TRUE(
      FaultScript::parse("10 fail-node 15\n", 16, &script, &error));
  // Same script against an 8-node topology: parse-time error naming both
  // the line and the topology size, not a runtime assert.
  EXPECT_FALSE(FaultScript::parse("10 fail-node 15\n", 8, &script, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  EXPECT_NE(error.find("8-node"), std::string::npos) << error;
  // nodes = 0 skips the range check (programmatic use).
  EXPECT_TRUE(FaultScript::parse("10 fail-node 15\n", 0, &script, &error));
}

TEST(FaultInjectorTest, ScriptedTimelineAppliesAtTheRightSlots) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kFirstAvailable);
  SlottedNetwork net(&s, &router, fast_config());

  FaultScript script;
  std::string error;
  ASSERT_TRUE(FaultScript::parse(
      "5 fail-node 2\n5 fail-circuit 0 4\n12 heal-node 2\n", 8, &script,
      &error))
      << error;
  FaultInjector injector(std::move(script));

  for (Slot t = 0; t < 20; ++t) {
    injector.tick(net);
    if (t < 5) {
      EXPECT_FALSE(net.is_failed(2)) << "slot " << t;
    } else if (t < 12) {
      EXPECT_TRUE(net.is_failed(2)) << "slot " << t;
      EXPECT_TRUE(net.is_circuit_failed(0, 4)) << "slot " << t;
    } else {
      EXPECT_FALSE(net.is_failed(2)) << "slot " << t;
      EXPECT_TRUE(net.is_circuit_failed(0, 4)) << "never healed";
    }
    net.step();
  }
  EXPECT_EQ(injector.scripted_applied(), 3u);
  EXPECT_EQ(injector.first_fault_slot(), 5);
  EXPECT_FALSE(injector.stochastic());
}

TEST(FaultInjectorTest, RedundantScriptedEventsAreSilentNoOps) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const VlbRouter router(&s, LbMode::kFirstAvailable);
  SlottedNetwork net(&s, &router, fast_config());

  FaultScript script;
  std::string error;
  ASSERT_TRUE(FaultScript::parse("1 fail-node 0\n2 fail-node 0\n", 4, &script,
                                 &error));
  FaultInjector injector(std::move(script));
  for (Slot t = 0; t < 5; ++t) {
    injector.tick(net);
    net.step();
  }
  // Only the first event changed state.
  EXPECT_EQ(injector.scripted_applied(), 1u);
  EXPECT_TRUE(net.is_failed(0));
}

// The stochastic model's timeline is a function of the injector seed
// alone: two runs with the same seed produce the identical failure-state
// trajectory, a different seed a different one.
std::vector<std::pair<std::uint64_t, std::uint64_t>> stochastic_trajectory(
    std::uint64_t seed) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kFirstAvailable);
  SlottedNetwork net(&s, &router, fast_config());
  FaultInjectorOptions opts;
  opts.node_mtbf_slots = 400.0;
  opts.node_mttr_slots = 100.0;
  opts.circuit_mtbf_slots = 40000.0;
  opts.circuit_mttr_slots = 200.0;
  opts.seed = seed;
  FaultInjector injector(FaultScript{}, opts);
  EXPECT_TRUE(injector.stochastic());

  std::vector<std::pair<std::uint64_t, std::uint64_t>> trajectory;
  for (Slot t = 0; t < 4000; ++t) {
    injector.tick(net);
    trajectory.emplace_back(net.failure_view().failed_node_count(),
                            net.failure_view().failed_circuit_count());
    net.step();
  }
  // The MTBF/MTTR above make both directions near-certain in 4000 slots.
  EXPECT_GT(injector.stochastic_failures(), 0u);
  EXPECT_GT(injector.stochastic_heals(), 0u);
  return trajectory;
}

TEST(FaultInjectorTest, StochasticTimelineIsSeedDeterministic) {
  const auto a = stochastic_trajectory(7);
  const auto b = stochastic_trajectory(7);
  EXPECT_EQ(a, b);
  const auto c = stochastic_trajectory(8);
  EXPECT_NE(a, c) << "different seeds should yield different timelines";
}

TEST(FaultInjectorTest, MttrHealsWhatMtbfBreaks) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kFirstAvailable);
  SlottedNetwork net(&s, &router, fast_config());
  FaultInjectorOptions opts;
  opts.node_mtbf_slots = 200.0;
  opts.node_mttr_slots = 50.0;
  opts.seed = 3;
  FaultInjector injector(FaultScript{}, opts);
  for (Slot t = 0; t < 20000; ++t) {
    injector.tick(net);
    net.step();
  }
  // Steady state: MTTR/(MTBF+MTTR) = 20% of nodes down on average, so
  // over 20k slots the fleet cannot be entirely dead or entirely pristine.
  EXPECT_GT(injector.stochastic_failures(), 10u);
  EXPECT_GT(injector.stochastic_heals(), 10u);
  EXPECT_LT(net.failure_view().failed_node_count(), 8u);
}

}  // namespace
}  // namespace sorn
