#include "topo/matching.h"

#include <gtest/gtest.h>

#include "topo/matching_set.h"

namespace sorn {
namespace {

TEST(MatchingTest, CyclicShiftMapsCorrectly) {
  const Matching m = Matching::cyclic_shift(5, 2);
  EXPECT_EQ(m.dst_of(0), 2);
  EXPECT_EQ(m.dst_of(3), 0);
  EXPECT_EQ(m.dst_of(4), 1);
  EXPECT_EQ(m.src_of(2), 0);
  EXPECT_TRUE(m.is_perfect());
  EXPECT_EQ(m.active_circuits(), 5);
}

TEST(MatchingTest, IdleMatchingHasNoCircuits) {
  const Matching m = Matching::idle(4);
  EXPECT_FALSE(m.is_perfect());
  EXPECT_EQ(m.active_circuits(), 0);
  for (NodeId i = 0; i < 4; ++i) EXPECT_TRUE(m.is_idle(i));
}

TEST(MatchingTest, InverseIsConsistent) {
  const Matching m = Matching::cyclic_shift(7, 3);
  for (NodeId i = 0; i < 7; ++i) EXPECT_EQ(m.src_of(m.dst_of(i)), i);
}

TEST(MatchingTest, RejectsNonPermutation) {
  EXPECT_DEATH(Matching({0, 0, 1}), "not a permutation");
}

TEST(MatchingTest, RejectsOutOfRange) {
  EXPECT_DEATH(Matching({0, 5, 1}), "out of range");
}

TEST(MatchingTest, EqualityComparesMaps) {
  EXPECT_EQ(Matching::cyclic_shift(4, 1), Matching::cyclic_shift(4, 1));
  EXPECT_FALSE(Matching::cyclic_shift(4, 1) == Matching::cyclic_shift(4, 2));
}

TEST(MatchingSetTest, AwgrFamilyCoversAllPairs) {
  const MatchingSet set = MatchingSet::awgr_family(8);
  EXPECT_EQ(set.size(), 7u);
  EXPECT_TRUE(set.covers_all_pairs());
}

TEST(MatchingSetTest, FindLocatesMembers) {
  const MatchingSet set = MatchingSet::awgr_family(6);
  const auto idx = set.find(Matching::cyclic_shift(6, 3));
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 2u);  // k=1 at index 0
  EXPECT_FALSE(set.find(Matching::idle(6)).has_value());
}

TEST(MatchingSetTest, PartialFamilyDoesNotCoverAllPairs) {
  std::vector<Matching> partial{Matching::cyclic_shift(5, 1)};
  EXPECT_FALSE(MatchingSet(std::move(partial)).covers_all_pairs());
}

// Paper Fig. 2(b): the 8-node example provides matchings m1..m5; a set of
// cyclic shifts behaves as a wavelength table where row=source,
// column=matching.
TEST(MatchingSetTest, EveryMatchingIsPerfectInAwgrFamily) {
  const MatchingSet set = MatchingSet::awgr_family(8);
  for (std::size_t k = 0; k < set.size(); ++k)
    EXPECT_TRUE(set.at(k).is_perfect());
}

}  // namespace
}  // namespace sorn
