#include "topo/matching.h"

#include <gtest/gtest.h>

#include "topo/matching_set.h"

namespace sorn {
namespace {

TEST(MatchingTest, CyclicShiftMapsCorrectly) {
  const Matching m = Matching::cyclic_shift(5, 2);
  EXPECT_EQ(m.dst_of(0), 2);
  EXPECT_EQ(m.dst_of(3), 0);
  EXPECT_EQ(m.dst_of(4), 1);
  EXPECT_EQ(m.src_of(2), 0);
  EXPECT_TRUE(m.is_perfect());
  EXPECT_EQ(m.active_circuits(), 5);
}

TEST(MatchingTest, IdleMatchingHasNoCircuits) {
  const Matching m = Matching::idle(4);
  EXPECT_FALSE(m.is_perfect());
  EXPECT_EQ(m.active_circuits(), 0);
  for (NodeId i = 0; i < 4; ++i) EXPECT_TRUE(m.is_idle(i));
}

TEST(MatchingTest, InverseIsConsistent) {
  const Matching m = Matching::cyclic_shift(7, 3);
  for (NodeId i = 0; i < 7; ++i) EXPECT_EQ(m.src_of(m.dst_of(i)), i);
}

TEST(MatchingTest, RejectsNonPermutation) {
  EXPECT_DEATH(Matching({0, 0, 1}), "not a permutation");
}

TEST(MatchingTest, RejectsOutOfRange) {
  EXPECT_DEATH(Matching({0, 5, 1}), "out of range");
}

TEST(MatchingTest, EqualityComparesMaps) {
  EXPECT_EQ(Matching::cyclic_shift(4, 1), Matching::cyclic_shift(4, 1));
  EXPECT_FALSE(Matching::cyclic_shift(4, 1) == Matching::cyclic_shift(4, 2));
}

// ---- Compact (shift) vs explicit representation ----

// Every accessor must agree between a compact matching and its explicit
// materialization — dst_of, src_of, is_idle, is_perfect, active_circuits,
// and operator== in both directions.
void expect_representation_equivalent(const Matching& compact) {
  ASSERT_TRUE(compact.is_compact());
  const Matching explicit_copy = compact.materialized();
  EXPECT_FALSE(explicit_copy.is_compact());
  ASSERT_EQ(explicit_copy.size(), compact.size());
  for (NodeId i = 0; i < compact.size(); ++i) {
    EXPECT_EQ(compact.dst_of(i), explicit_copy.dst_of(i)) << "node " << i;
    EXPECT_EQ(compact.src_of(i), explicit_copy.src_of(i)) << "node " << i;
    EXPECT_EQ(compact.is_idle(i), explicit_copy.is_idle(i)) << "node " << i;
    EXPECT_EQ(compact.src_of(compact.dst_of(i)), i) << "node " << i;
  }
  EXPECT_EQ(compact.is_perfect(), explicit_copy.is_perfect());
  EXPECT_EQ(compact.active_circuits(), explicit_copy.active_circuits());
  EXPECT_TRUE(compact == explicit_copy);
  EXPECT_TRUE(explicit_copy == compact);
}

TEST(MatchingTest, CompactFormsMatchExplicitMaterialization) {
  expect_representation_equivalent(Matching::idle(9));
  expect_representation_equivalent(Matching::cyclic_shift(16, 5));
  // SORN intra slot: per-clique shift, clique level unshifted.
  expect_representation_equivalent(Matching::radix_shift(1, 0, 4, 0, 8, 3));
  // SORN inter slot: clique shift + port rotation.
  expect_representation_equivalent(Matching::radix_shift(1, 0, 4, 2, 8, 5));
  // Hierarchical pod-level slot: cluster fixed, pod + index shifted.
  expect_representation_equivalent(Matching::radix_shift(2, 0, 3, 1, 4, 2));
  // orn-hd middle-digit shift: untouched digits above and below.
  expect_representation_equivalent(Matching::radix_shift(4, 0, 4, 3, 4, 0));
}

TEST(MatchingTest, RadixShiftMatchesHandBuiltPermutation) {
  // 2x3x4 = 24 nodes, digit shifts (1, 2, 3).
  const Matching m = Matching::radix_shift(2, 1, 3, 2, 4, 3);
  for (NodeId i = 0; i < 24; ++i) {
    const NodeId a = i / 12, b = (i / 4) % 3, c = i % 4;
    const NodeId want = ((a + 1) % 2) * 12 + ((b + 2) % 3) * 4 + (c + 3) % 4;
    EXPECT_EQ(m.dst_of(i), want) << "node " << i;
  }
}

TEST(MatchingTest, EqualityBridgesRepresentations) {
  // Compact vs explicit with the same permutation.
  const Matching compact = Matching::cyclic_shift(6, 2);
  EXPECT_TRUE(compact == compact.materialized());
  EXPECT_FALSE(compact == Matching::cyclic_shift(6, 3).materialized());
  // Different factorizations of the same shift canonicalize together: an
  // unshifted inner digit folds into the outer level, so (3, 1) over
  // (2, 0) is the cyclic shift by 2 over 6 nodes.
  EXPECT_TRUE(Matching::radix_shift(1, 0, 3, 1, 2, 0) ==
              Matching::cyclic_shift(6, 2));
  // Offsets reduce mod their radix.
  EXPECT_TRUE(Matching::cyclic_shift(5, 7) == Matching::cyclic_shift(5, 2));
  // An explicitly-built cyclic shift equals the compact one.
  EXPECT_TRUE(Matching({1, 2, 3, 0}) == Matching::cyclic_shift(4, 1));
}

TEST(MatchingTest, CompactFormOwnsNoHeap) {
  // The memory_bytes() bugfix: the shift form must report its true O(1)
  // footprint, not a phantom destination vector.
  const Matching compact = Matching::cyclic_shift(4096, 17);
  EXPECT_EQ(compact.memory_bytes(), 0u);
  const Matching explicit_copy = compact.materialized();
  EXPECT_GE(explicit_copy.memory_bytes(), 4096u * sizeof(NodeId));
  // >100x is the profiled-smoke gate at N=4096; at the unit level the
  // compact form is strictly free.
  EXPECT_GT(explicit_copy.memory_bytes(), 100u * (compact.memory_bytes() + 1));
}

TEST(MatchingTest, ShiftFormIsIdleAllOrNothing) {
  const Matching idle = Matching::radix_shift(2, 0, 3, 0, 4, 0);
  EXPECT_EQ(idle.active_circuits(), 0);
  EXPECT_TRUE(idle == Matching::idle(24));
  for (NodeId i = 0; i < 24; ++i) EXPECT_TRUE(idle.is_idle(i));
  const Matching moved = Matching::radix_shift(2, 0, 3, 1, 4, 0);
  EXPECT_EQ(moved.active_circuits(), 24);
  for (NodeId i = 0; i < 24; ++i) EXPECT_FALSE(moved.is_idle(i));
}

TEST(MatchingSetTest, AwgrFamilyCoversAllPairs) {
  const MatchingSet set = MatchingSet::awgr_family(8);
  EXPECT_EQ(set.size(), 7u);
  EXPECT_TRUE(set.covers_all_pairs());
}

TEST(MatchingSetTest, FindLocatesMembers) {
  const MatchingSet set = MatchingSet::awgr_family(6);
  const auto idx = set.find(Matching::cyclic_shift(6, 3));
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 2u);  // k=1 at index 0
  EXPECT_FALSE(set.find(Matching::idle(6)).has_value());
}

TEST(MatchingSetTest, PartialFamilyDoesNotCoverAllPairs) {
  std::vector<Matching> partial{Matching::cyclic_shift(5, 1)};
  EXPECT_FALSE(MatchingSet(std::move(partial)).covers_all_pairs());
}

// Paper Fig. 2(b): the 8-node example provides matchings m1..m5; a set of
// cyclic shifts behaves as a wavelength table where row=source,
// column=matching.
TEST(MatchingSetTest, EveryMatchingIsPerfectInAwgrFamily) {
  const MatchingSet set = MatchingSet::awgr_family(8);
  for (std::size_t k = 0; k < set.size(); ++k)
    EXPECT_TRUE(set.at(k).is_perfect());
}

}  // namespace
}  // namespace sorn
