// Weighted-inter SORN schedules (paper Sec. 5 expressivity): inter-clique
// bandwidth follows a demand aggregate while all structural invariants of
// the uniform schedule are preserved.
#include <gtest/gtest.h>

#include "analysis/schedule_metrics.h"
#include "topo/logical_topology.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

// 4 cliques of 4 with a hot 0 -> 1 clique pair.
std::vector<double> hot_pair_weights() {
  std::vector<double> w(16, 1.0);
  for (int c = 0; c < 4; ++c) w[static_cast<std::size_t>(c * 4 + c)] = 0.0;
  w[0 * 4 + 1] = 6.0;
  return w;
}

CircuitSchedule build_weighted(double alpha) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  ScheduleBuilder::WeightedOptions opts;
  opts.demand_alpha = alpha;
  return ScheduleBuilder::sorn_weighted(cliques, Rational{2, 1},
                                        hot_pair_weights(), opts);
}

TEST(WeightedScheduleTest, EverySlotIsPerfectMatching) {
  const CircuitSchedule s = build_weighted(0.7);
  for (Slot t = 0; t < s.period(); ++t)
    EXPECT_TRUE(s.matching_at(t).is_perfect()) << "slot " << t;
}

TEST(WeightedScheduleTest, QRatioStillExact) {
  const CircuitSchedule s = build_weighted(0.7);
  EXPECT_NEAR(s.kind_fraction(SlotKind::kIntra) /
                  s.kind_fraction(SlotKind::kInter),
              2.0, 1e-9);
}

TEST(WeightedScheduleTest, KindsConsistentWithCliques) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = build_weighted(0.7);
  std::vector<CliqueId> map(16);
  for (NodeId i = 0; i < 16; ++i) map[static_cast<std::size_t>(i)] =
      cliques.clique_of(i);
  EXPECT_TRUE(s.kinds_consistent(map));
}

TEST(WeightedScheduleTest, HotPairGetsMoreBandwidth) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = build_weighted(0.7);
  const LogicalTopology topo(s);
  const double hot = topo.clique_bandwidth(0, 1, cliques);
  const double cold = topo.clique_bandwidth(2, 0, cliques);
  EXPECT_GT(hot, cold * 1.5);
}

TEST(WeightedScheduleTest, FullNeighborSupersetPreserved) {
  // Even with a strongly skewed demand, the uniform floor keeps every
  // ordered node pair connected within a period (fixed superset of
  // neighbors, paper Sec. 5).
  const CircuitSchedule s = build_weighted(0.85);
  const LogicalTopology topo(s);
  for (NodeId i = 0; i < 16; ++i) EXPECT_EQ(topo.degree(i), 15);
}

TEST(WeightedScheduleTest, AlphaZeroApproximatesUniformSchedule) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = build_weighted(0.0);
  const LogicalTopology topo(s);
  // All clique pairs within ~35% of each other (quantization leaves some
  // unevenness; the uniform builder is exact).
  double lo = 1e9;
  double hi = 0.0;
  for (CliqueId a = 0; a < 4; ++a) {
    for (CliqueId b = 0; b < 4; ++b) {
      if (a == b) continue;
      const double bw = topo.clique_bandwidth(a, b, cliques);
      lo = std::min(lo, bw);
      hi = std::max(hi, bw);
    }
  }
  EXPECT_LT(hi / lo, 1.35);
}

TEST(WeightedScheduleTest, InterGapStaysBounded) {
  // The uniform floor guarantees every (node, clique) inter wait is
  // finite and not wildly above the uniform schedule's.
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = build_weighted(0.7);
  const auto gaps = analysis::inter_gap_stats(s, cliques);
  EXPECT_GT(gaps.worst, 0);
  EXPECT_LT(gaps.worst, s.period());
}

TEST(WeightedScheduleTest, RejectsSingletonCliques) {
  const auto cliques = CliqueAssignment::flat(4);
  std::vector<double> w(16, 1.0);
  EXPECT_DEATH(ScheduleBuilder::sorn_weighted(cliques, Rational{2, 1}, w),
               "size >= 2");
}

}  // namespace
}  // namespace sorn
