// Physical realizability of schedules (paper Sec. 4-5): which schedules a
// given OCS setup supports.
//
// With a *synchronous* AWGR (all nodes emit the same wavelength in a
// slot), only the cyclic-shift matchings are available; the flat round
// robin is realizable but SORN's per-clique matchings are not. With
// fast-tunable lasers per node ("nodes could choose to emit different
// wavelengths at the same time", Sec. 5), any permutation becomes
// realizable — which is exactly what SORN's schedule needs.
#include <gtest/gtest.h>

#include "topo/schedule_builder.h"

namespace sorn {
namespace {

TEST(RealizabilityTest, RoundRobinRealizableWithSynchronousAwgr) {
  const MatchingSet awgr = MatchingSet::awgr_family(8);
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  EXPECT_TRUE(rr.realizable_with(awgr));
}

TEST(RealizabilityTest, RotorRealizableWithSynchronousAwgr) {
  const MatchingSet awgr = MatchingSet::awgr_family(8);
  const CircuitSchedule rotor = ScheduleBuilder::rotor(8, 5);
  EXPECT_TRUE(rotor.realizable_with(awgr));
}

TEST(RealizabilityTest, SornNeedsPerNodeWavelengthChoice) {
  // SORN's intra matchings are per-clique shifts, not global shifts: the
  // bare synchronous wavelength family cannot realize them...
  const MatchingSet awgr = MatchingSet::awgr_family(8);
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule sorn_sched = ScheduleBuilder::sorn(cliques, {3, 1});
  EXPECT_FALSE(sorn_sched.realizable_with(awgr));

  // ...but every slot is still a permutation, i.e. realizable once each
  // node picks its own wavelength k_i = dst(i) - i (mod N): receivers
  // never collide because the map is a permutation.
  for (Slot t = 0; t < sorn_sched.period(); ++t)
    EXPECT_TRUE(sorn_sched.matching_at(t).is_perfect());
}

TEST(RealizabilityTest, ExplicitSetMatchesItsOwnSchedule) {
  // A schedule built from an explicit configuration set is trivially
  // realizable with that set.
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule sorn_sched = ScheduleBuilder::sorn(cliques, {3, 1});
  std::vector<Matching> configs;
  for (Slot t = 0; t < sorn_sched.period(); ++t) {
    bool seen = false;
    for (const auto& m : configs)
      if (m == sorn_sched.matching_at(t)) seen = true;
    if (!seen) configs.push_back(sorn_sched.matching_at(t));
  }
  // The 8-node q=3 schedule uses 3 intra + 4 inter distinct matchings.
  EXPECT_EQ(configs.size(), 7u);
  const MatchingSet set(std::move(configs));
  EXPECT_TRUE(sorn_sched.realizable_with(set));
}

TEST(RealizabilityTest, NodeCountMismatchIsUnrealizable) {
  const MatchingSet awgr = MatchingSet::awgr_family(16);
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  EXPECT_FALSE(rr.realizable_with(awgr));
}

}  // namespace
}  // namespace sorn
