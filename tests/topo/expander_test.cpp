#include "topo/expander.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(ExpanderTest, DegreeIsBounded) {
  Rng rng(3);
  const Expander e = Expander::random_regular(32, 4, rng);
  for (NodeId i = 0; i < 32; ++i) {
    EXPECT_GE(e.neighbors(i).size(), 1u);
    EXPECT_LE(e.neighbors(i).size(), 4u);
  }
}

TEST(ExpanderTest, NoSelfLoops) {
  Rng rng(5);
  const Expander e = Expander::random_regular(16, 3, rng);
  for (NodeId i = 0; i < 16; ++i)
    for (const NodeId j : e.neighbors(i)) EXPECT_NE(j, i);
}

TEST(ExpanderTest, ShortestPathEndsAtDestination) {
  Rng rng(7);
  const Expander e = Expander::random_regular(64, 5, rng);
  for (NodeId dst = 1; dst < 64; dst += 7) {
    const auto path = e.shortest_path(0, dst);
    ASSERT_FALSE(path.empty()) << "unreachable " << dst;
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), dst);
    // Every hop is an actual edge.
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      const auto& nbrs = e.neighbors(path[k]);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), path[k + 1]), nbrs.end());
    }
  }
}

TEST(ExpanderTest, TrivialPathToSelf) {
  Rng rng(9);
  const Expander e = Expander::random_regular(8, 2, rng);
  const auto path = e.shortest_path(3, 3);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 3);
}

TEST(ExpanderTest, DiameterIsLogarithmic) {
  // Opera's premise: a degree-u expander on N nodes has diameter ~log N.
  // For 256 nodes and degree 8 the diameter should be well under 5.
  Rng rng(11);
  const Expander e = Expander::random_regular(256, 8, rng);
  EXPECT_LE(e.diameter(), 4);
  EXPECT_GE(e.diameter(), 2);
}

class ExpanderSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExpanderSweep, ConnectedForModestDegrees) {
  Rng rng(100 + GetParam());
  const Expander e = Expander::random_regular(48, GetParam(), rng);
  for (NodeId dst = 1; dst < 48; ++dst)
    EXPECT_FALSE(e.shortest_path(0, dst).empty()) << "degree " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Degrees, ExpanderSweep, ::testing::Values(3, 4, 6, 8));

}  // namespace
}  // namespace sorn
