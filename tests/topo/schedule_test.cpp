#include "topo/schedule.h"

#include <gtest/gtest.h>

#include "topo/logical_topology.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

TEST(ScheduleTest, RoundRobinEmulatesFigure1) {
  // Paper Fig. 1: 5 nodes, round-robin schedule; slot t connects node i to
  // (i + t + 1) mod 5.
  const CircuitSchedule s = ScheduleBuilder::round_robin(5);
  EXPECT_EQ(s.period(), 4);
  EXPECT_EQ(s.dst_of(0, 0), 1);  // row 1 of the figure: A->B
  EXPECT_EQ(s.dst_of(4, 0), 0);  // E->A
  EXPECT_EQ(s.dst_of(0, 3), 4);  // row 4: A->E
  for (Slot t = 0; t < 4; ++t) EXPECT_TRUE(s.matching_at(t).is_perfect());
}

TEST(ScheduleTest, RoundRobinVisitsEveryCircuitOncePerPeriod) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(9);
  for (NodeId i = 0; i < 9; ++i)
    for (NodeId j = 0; j < 9; ++j)
      if (i != j) {
        EXPECT_DOUBLE_EQ(s.edge_fraction(i, j), 1.0 / 8.0)
            << "circuit " << i << "->" << j;
      }
}

TEST(ScheduleTest, NextSlotConnectingWrapsAroundPeriod) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(6);
  // Circuit 0->3 is up when (t+1) mod 6 == 3, i.e. t == 2 (mod 5)... use
  // the query itself as ground truth and verify the connection property.
  const Slot t = s.next_slot_connecting(0, 3, 0);
  ASSERT_GE(t, 0);
  EXPECT_EQ(s.dst_of(0, t), 3);
  // From just after that slot, the next hit is exactly one period later.
  const Slot t2 = s.next_slot_connecting(0, 3, t + 1);
  EXPECT_EQ(t2, t + s.period());
}

TEST(ScheduleTest, NextSlotConnectingReturnsMinusOneWhenAbsent) {
  // A one-slot schedule only connects i -> i+1.
  std::vector<Matching> slots{Matching::cyclic_shift(4, 1)};
  const CircuitSchedule s(std::move(slots));
  EXPECT_EQ(s.next_slot_connecting(0, 2, 0), -1);
  EXPECT_GE(s.next_slot_connecting(0, 1, 5), 5);
}

TEST(ScheduleTest, KindFractionsDefaultToUniform) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  EXPECT_DOUBLE_EQ(s.kind_fraction(SlotKind::kUniform), 1.0);
  EXPECT_DOUBLE_EQ(s.kind_fraction(SlotKind::kIntra), 0.0);
}

TEST(ScheduleTest, LanePhasesSpreadEvenly) {
  EXPECT_EQ(lane_phase(16, 4, 0), 0);
  EXPECT_EQ(lane_phase(16, 4, 1), 4);
  EXPECT_EQ(lane_phase(16, 4, 3), 12);
  EXPECT_EQ(lane_phase(5, 2, 1), 2);  // rounded when not divisible
}

// ---- Fig. 2(d): topology A, two cliques of four, q = 3 ----

TEST(ScheduleTest, Figure2dTopologyA) {
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{3, 1});
  // Slot shares: intra = 3/4, inter = 1/4.
  EXPECT_DOUBLE_EQ(s.kind_fraction(SlotKind::kIntra), 0.75);
  EXPECT_DOUBLE_EQ(s.kind_fraction(SlotKind::kInter), 0.25);

  const LogicalTopology topo(s);
  // Node bandwidth within the clique is three times that across: each node
  // spends 3/4 of slots on 3 intra neighbors and 1/4 on 4 inter neighbors.
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_NEAR(topo.intra_fraction(i, cliques), 0.75, 1e-12);
    EXPECT_NEAR(topo.inter_fraction(i, cliques), 0.25, 1e-12);
  }
  // Every intra virtual edge has equal bandwidth; same for inter.
  EXPECT_NEAR(topo.edge_fraction(0, 1), 0.25, 1e-12);
  EXPECT_NEAR(topo.edge_fraction(0, 3), 0.25, 1e-12);
  EXPECT_GT(topo.edge_fraction(0, 4), 0.0);
  // Example paths from the paper: 0->3->7->6 requires edges (3,7) inter
  // and (7,6) intra to exist.
  EXPECT_GT(topo.edge_fraction(3, 7), 0.0);
  EXPECT_GT(topo.edge_fraction(7, 6), 0.0);
}

// ---- Fig. 2(e): topology B, four cliques of two ----

TEST(ScheduleTest, Figure2eTopologyB) {
  const auto cliques = CliqueAssignment::contiguous(8, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{1, 1});
  EXPECT_TRUE(s.kinds_consistent({0, 0, 1, 1, 2, 2, 3, 3}));
  const LogicalTopology topo(s);
  // Every node reaches its clique partner and all six external nodes.
  for (NodeId i = 0; i < 8; ++i) EXPECT_EQ(topo.degree(i), 7);
}

TEST(ScheduleTest, KindsConsistencyDetectsMislabeling) {
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{3, 1});
  // Consistent with the true grouping...
  EXPECT_TRUE(s.kinds_consistent({0, 0, 0, 0, 1, 1, 1, 1}));
  // ...but not with a shuffled one.
  EXPECT_FALSE(s.kinds_consistent({0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(ScheduleTest, CycleTimeScalesWithPeriod) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(100);
  EXPECT_EQ(s.cycle_time(50 * 1000), 99 * 50 * 1000);  // 50 ns slots
}

}  // namespace
}  // namespace sorn
