#include "topo/schedule_builder.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "topo/logical_topology.h"

namespace sorn {
namespace {

TEST(RationalTest, ApproximatesSimpleFractions) {
  const Rational half = Rational::approximate(0.5, 10);
  EXPECT_EQ(half.num, 1);
  EXPECT_EQ(half.den, 2);
  const Rational three = Rational::approximate(3.0, 10);
  EXPECT_EQ(three.num, 3);
  EXPECT_EQ(three.den, 1);
}

TEST(RationalTest, ApproximatesPaperOptimalQ) {
  // q* = 2/(1-0.56) = 50/11 = 4.5454...
  const Rational q = Rational::approximate(2.0 / 0.44, 11);
  EXPECT_EQ(q.num, 50);
  EXPECT_EQ(q.den, 11);
}

TEST(RationalTest, RespectsDenominatorCap) {
  const Rational q = Rational::approximate(2.0 / 0.44, 4);
  EXPECT_LE(q.den, 4);
  EXPECT_NEAR(q.value(), 4.5454, 0.3);
}

TEST(OrnHdTest, TwoDimensionalScheduleShape) {
  const CircuitSchedule s = ScheduleBuilder::orn_hd(16, 2);  // r = 4
  EXPECT_EQ(s.period(), 2 * 3);
  for (Slot t = 0; t < s.period(); ++t)
    EXPECT_TRUE(s.matching_at(t).is_perfect());
  // Dimension-0 slots change the low digit only.
  EXPECT_EQ(s.dst_of(0, 0), 1);
  EXPECT_EQ(s.dst_of(3, 0), 0);  // wraps within the digit
  // Dimension-1 slots change the high digit only.
  EXPECT_EQ(s.dst_of(0, 3), 4);
}

TEST(OrnHdTest, RejectsNonPowerNodeCounts) {
  EXPECT_DEATH(ScheduleBuilder::orn_hd(15, 2), "perfect h-th power");
}

TEST(OrnHdTest, OneDimensionEqualsRoundRobin) {
  const CircuitSchedule a = ScheduleBuilder::orn_hd(8, 1);
  const CircuitSchedule b = ScheduleBuilder::round_robin(8);
  ASSERT_EQ(a.period(), b.period());
  for (Slot t = 0; t < a.period(); ++t)
    for (NodeId i = 0; i < 8; ++i) EXPECT_EQ(a.dst_of(i, t), b.dst_of(i, t));
}

TEST(SornBuilderTest, SingleCliqueIsFlatRoundRobin) {
  const auto cliques = CliqueAssignment::contiguous(6, 1);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{1, 1});
  EXPECT_EQ(s.period(), 5);
  EXPECT_DOUBLE_EQ(s.kind_fraction(SlotKind::kIntra), 1.0);
}

TEST(SornBuilderTest, SingletonCliquesAreFlatInterRoundRobin) {
  const auto cliques = CliqueAssignment::flat(6);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{1, 1});
  EXPECT_EQ(s.period(), 5);
  EXPECT_DOUBLE_EQ(s.kind_fraction(SlotKind::kInter), 1.0);
  // Full connectivity: every pair appears.
  const LogicalTopology topo(s);
  for (NodeId i = 0; i < 6; ++i) EXPECT_EQ(topo.degree(i), 5);
}

TEST(SornBuilderTest, RejectsPeriodBlowup) {
  const auto cliques = CliqueAssignment::contiguous(64, 8);
  EXPECT_DEATH(ScheduleBuilder::sorn(cliques, Rational{6007, 1301}, 1 << 10),
               "period too large");
}

TEST(SornBuilderTest, RationalQRealizedExactly) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{50, 11});
  const double intra = s.kind_fraction(SlotKind::kIntra);
  const double inter = s.kind_fraction(SlotKind::kInter);
  EXPECT_NEAR(intra / inter, 50.0 / 11.0, 1e-9);
}

// ---- Parameterized property sweep over (N, Nc, q) ----

struct SornCase {
  NodeId n;
  CliqueId nc;
  Rational q;
};

class SornScheduleProperties : public ::testing::TestWithParam<SornCase> {};

TEST_P(SornScheduleProperties, EverySlotIsPerfectMatching) {
  const auto& c = GetParam();
  const auto cliques = CliqueAssignment::contiguous(c.n, c.nc);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, c.q);
  for (Slot t = 0; t < s.period(); ++t)
    EXPECT_TRUE(s.matching_at(t).is_perfect()) << "slot " << t;
}

TEST_P(SornScheduleProperties, SlotSharesMatchQ) {
  const auto& c = GetParam();
  const auto cliques = CliqueAssignment::contiguous(c.n, c.nc);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, c.q);
  const double intra = s.kind_fraction(SlotKind::kIntra);
  const double inter = s.kind_fraction(SlotKind::kInter);
  EXPECT_NEAR(intra / inter, c.q.value(), 1e-9);
}

TEST_P(SornScheduleProperties, KindsMatchCliqueStructure) {
  const auto& c = GetParam();
  const auto cliques = CliqueAssignment::contiguous(c.n, c.nc);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, c.q);
  std::vector<CliqueId> map(static_cast<std::size_t>(c.n));
  for (NodeId i = 0; i < c.n; ++i)
    map[static_cast<std::size_t>(i)] = cliques.clique_of(i);
  EXPECT_TRUE(s.kinds_consistent(map));
}

TEST_P(SornScheduleProperties, FullNeighborSupersetWithinPeriod) {
  // Paper Sec. 5: the abstraction maintains a fixed superset of neighbors.
  // Our schedules connect every ordered pair at least once per period.
  const auto& c = GetParam();
  const auto cliques = CliqueAssignment::contiguous(c.n, c.nc);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, c.q);
  const LogicalTopology topo(s);
  for (NodeId i = 0; i < c.n; ++i)
    EXPECT_EQ(topo.degree(i), c.n - 1) << "node " << i;
}

TEST_P(SornScheduleProperties, IntraBandwidthUniformWithinClique) {
  const auto& c = GetParam();
  const auto cliques = CliqueAssignment::contiguous(c.n, c.nc);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, c.q);
  const LogicalTopology topo(s);
  // All intra-clique virtual edges of node 0 carry equal bandwidth
  // (uniform density inside cliques, paper Sec. 4).
  const NodeId size = c.n / c.nc;
  const double expected =
      s.kind_fraction(SlotKind::kIntra) / static_cast<double>(size - 1);
  for (NodeId j = 1; j < size; ++j)
    EXPECT_NEAR(topo.edge_fraction(0, j), expected, 1e-9) << "edge 0->" << j;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SornScheduleProperties,
    ::testing::Values(SornCase{8, 2, {3, 1}},      // Fig. 2d
                      SornCase{8, 4, {1, 1}},      // Fig. 2e-like
                      SornCase{16, 4, {2, 1}},
                      SornCase{16, 2, {5, 1}},
                      SornCase{32, 4, {50, 11}},   // paper's q*
                      SornCase{24, 3, {7, 2}},
                      SornCase{64, 8, {9, 2}},
                      SornCase{128, 8, {50, 11}}),  // Fig. 2f scale
    [](const ::testing::TestParamInfo<SornCase>& info) {
      return "N" + std::to_string(info.param.n) + "_Nc" +
             std::to_string(info.param.nc) + "_q" +
             std::to_string(info.param.q.num) + "over" +
             std::to_string(info.param.q.den);
    });

}  // namespace
}  // namespace sorn
