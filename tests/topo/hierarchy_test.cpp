#include "topo/hierarchy.h"

#include <gtest/gtest.h>

#include "analysis/schedule_metrics.h"
#include "topo/logical_topology.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(HierarchyTest, RegularLayout) {
  const Hierarchy h = Hierarchy::regular(64, 4, 4);  // 4x4 pods of 4
  EXPECT_EQ(h.pod_size(), 4);
  EXPECT_EQ(h.cluster_size(), 16);
  EXPECT_EQ(h.pod_count(), 16);
  EXPECT_EQ(h.pod_of(0), 0);
  EXPECT_EQ(h.pod_of(5), 1);
  EXPECT_EQ(h.cluster_of(15), 0);
  EXPECT_EQ(h.cluster_of(16), 1);
  EXPECT_TRUE(h.same_pod(0, 3));
  EXPECT_FALSE(h.same_pod(3, 4));
  EXPECT_TRUE(h.same_cluster(3, 12));
  EXPECT_FALSE(h.same_cluster(12, 20));
  EXPECT_EQ(h.position_in_cluster(17), 1);
  EXPECT_EQ(h.node_at(1, 1), 17);
}

TEST(HierarchyTest, PodAndClusterAssignmentsAgree) {
  const Hierarchy h = Hierarchy::regular(32, 2, 4);
  const CliqueAssignment pods = h.pods();
  const CliqueAssignment clusters = h.clusters();
  for (NodeId i = 0; i < 32; ++i) {
    EXPECT_EQ(pods.clique_of(i), h.pod_of(i));
    EXPECT_EQ(clusters.clique_of(i), h.cluster_of(i));
  }
}

TEST(HierarchyTest, RejectsIndivisibleNodes) {
  EXPECT_DEATH(Hierarchy::regular(30, 4, 2), "divide evenly");
}

TEST(HierLocalityMixTest, RecoversTargets) {
  const Hierarchy h = Hierarchy::regular(64, 4, 4);
  const TrafficMatrix tm = patterns::hier_locality_mix(h, 0.5, 0.3);
  const HierLocality loc = patterns::hier_locality(h, tm);
  EXPECT_NEAR(loc.pod, 0.5, 1e-9);
  EXPECT_NEAR(loc.cluster, 0.3, 1e-9);
  EXPECT_NEAR(loc.global(), 0.2, 1e-9);
}

struct HierCase {
  NodeId n;
  CliqueId clusters;
  CliqueId pods;
  ScheduleBuilder::HierShares shares;
};

class HierScheduleSweep : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierScheduleSweep, EverySlotIsPerfectMatching) {
  const auto& c = GetParam();
  const Hierarchy h = Hierarchy::regular(c.n, c.clusters, c.pods);
  const CircuitSchedule s = ScheduleBuilder::sorn_hierarchical(h, c.shares);
  for (Slot t = 0; t < s.period(); ++t)
    EXPECT_TRUE(s.matching_at(t).is_perfect()) << "slot " << t;
}

TEST_P(HierScheduleSweep, SharesRealizedExactly) {
  const auto& c = GetParam();
  const Hierarchy h = Hierarchy::regular(c.n, c.clusters, c.pods);
  const CircuitSchedule s = ScheduleBuilder::sorn_hierarchical(h, c.shares);
  const double total =
      static_cast<double>(c.shares.intra + c.shares.inter + c.shares.global);
  EXPECT_NEAR(s.kind_fraction(SlotKind::kIntra),
              c.shares.intra / total, 1e-9);
  EXPECT_NEAR(s.kind_fraction(SlotKind::kInter),
              c.shares.inter / total, 1e-9);
  EXPECT_NEAR(s.kind_fraction(SlotKind::kGlobal),
              c.shares.global / total, 1e-9);
}

TEST_P(HierScheduleSweep, SlotClassesMatchHierarchy) {
  const auto& c = GetParam();
  const Hierarchy h = Hierarchy::regular(c.n, c.clusters, c.pods);
  const CircuitSchedule s = ScheduleBuilder::sorn_hierarchical(h, c.shares);
  for (Slot t = 0; t < s.period(); ++t) {
    const Matching& m = s.matching_at(t);
    for (NodeId i = 0; i < c.n; ++i) {
      if (m.is_idle(i)) continue;
      const NodeId j = m.dst_of(i);
      switch (s.kind_at(t)) {
        case SlotKind::kIntra:
          EXPECT_TRUE(h.same_pod(i, j));
          break;
        case SlotKind::kInter:
          EXPECT_TRUE(h.same_cluster(i, j) && !h.same_pod(i, j));
          break;
        case SlotKind::kGlobal:
          EXPECT_FALSE(h.same_cluster(i, j));
          break;
        case SlotKind::kUniform:
          FAIL() << "hierarchical schedules never emit kUniform";
      }
    }
  }
}

TEST_P(HierScheduleSweep, FullNeighborSuperset) {
  const auto& c = GetParam();
  const Hierarchy h = Hierarchy::regular(c.n, c.clusters, c.pods);
  const CircuitSchedule s = ScheduleBuilder::sorn_hierarchical(h, c.shares);
  const LogicalTopology topo(s);
  for (NodeId i = 0; i < c.n; ++i) EXPECT_EQ(topo.degree(i), c.n - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierScheduleSweep,
    ::testing::Values(HierCase{16, 2, 2, {2, 1, 1}},
                      HierCase{64, 4, 4, {2, 1, 1}},
                      HierCase{64, 4, 4, {6, 2, 1}},
                      HierCase{48, 3, 2, {4, 1, 2}},
                      HierCase{128, 4, 4, {24, 7, 5}}),
    [](const ::testing::TestParamInfo<HierCase>& info) {
      return "N" + std::to_string(info.param.n) + "_C" +
             std::to_string(info.param.clusters) + "_P" +
             std::to_string(info.param.pods) + "_s" +
             std::to_string(info.param.shares.intra) +
             std::to_string(info.param.shares.inter) +
             std::to_string(info.param.shares.global);
    });

TEST(HierScheduleTest, RejectsShareLevelMismatch) {
  const Hierarchy h = Hierarchy::regular(16, 1, 4);  // one cluster
  EXPECT_DEATH(
      ScheduleBuilder::sorn_hierarchical(h, ScheduleBuilder::HierShares{2, 1, 1}),
      "global share");
}

TEST(HierScheduleTest, MeasuredGapsTrackShares) {
  // More intra share -> shorter intra recurrence gaps.
  const Hierarchy h = Hierarchy::regular(32, 2, 4);
  const CircuitSchedule lo =
      ScheduleBuilder::sorn_hierarchical(h, ScheduleBuilder::HierShares{2, 1, 1});
  const CircuitSchedule hi =
      ScheduleBuilder::sorn_hierarchical(h, ScheduleBuilder::HierShares{8, 1, 1});
  const auto pods = h.pods();
  EXPECT_LT(analysis::intra_gap_stats(hi, pods).mean,
            analysis::intra_gap_stats(lo, pods).mean);
}

}  // namespace
}  // namespace sorn
