// Non-uniform clique sizes via ghost padding (paper Sec. 5).
#include <gtest/gtest.h>

#include "routing/sorn_routing.h"
#include "sim/network.h"
#include "sim/saturation.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(PaddedCliqueTest, PadsToLargestClique) {
  // Cliques of sizes 5 and 3.
  const CliqueAssignment uneven({0, 0, 0, 0, 0, 1, 1, 1});
  const PaddedAssignment padded = uneven.padded_to_equal();
  EXPECT_EQ(padded.real_nodes, 8);
  EXPECT_EQ(padded.padded_nodes, 10);
  EXPECT_FALSE(padded.is_ghost(7));
  EXPECT_TRUE(padded.is_ghost(8));
  const CliqueAssignment equal(padded.clique_of);
  EXPECT_TRUE(equal.equal_sized());
  EXPECT_EQ(equal.clique_size(0), 5);
  // Ghosts joined the small clique.
  EXPECT_EQ(equal.clique_of(8), 1);
  EXPECT_EQ(equal.clique_of(9), 1);
}

TEST(PaddedCliqueTest, AlreadyEqualAddsNoGhosts) {
  const auto even = CliqueAssignment::contiguous(8, 2);
  const PaddedAssignment padded = even.padded_to_equal();
  EXPECT_EQ(padded.real_nodes, padded.padded_nodes);
}

TEST(PaddedCliqueTest, ScheduleOverPaddedAssignmentIsValid) {
  const CliqueAssignment uneven({0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2});
  const PaddedAssignment padded = uneven.padded_to_equal();  // 3 cliques of 6
  const CliqueAssignment equal(padded.clique_of);
  const CircuitSchedule s = ScheduleBuilder::sorn(equal, Rational{2, 1});
  for (Slot t = 0; t < s.period(); ++t)
    EXPECT_TRUE(s.matching_at(t).is_perfect());
}

TEST(PaddedCliqueTest, RealTrafficFlowsAroundGhosts) {
  const CliqueAssignment uneven({0, 0, 0, 0, 0, 1, 1, 1});
  const PaddedAssignment padded = uneven.padded_to_equal();
  const CliqueAssignment equal(padded.clique_of);
  const CircuitSchedule s = ScheduleBuilder::sorn(equal, Rational{2, 1});
  const SornRouter router(&s, &equal, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&s, &router, cfg);
  // Real-node traffic, including to the undersized clique.
  net.inject_cell(0, 4);  // intra big clique
  net.inject_cell(0, 7);  // inter to real node of the small clique
  net.inject_cell(6, 1);  // reverse direction
  net.run(500);
  EXPECT_EQ(net.metrics().delivered_cells(), 3u);
}

TEST(PaddedCliqueTest, GhostSlotsCostThroughput) {
  // A padded fabric wastes the slots whose circuits touch ghosts: its
  // saturation throughput on uniform real traffic is measurably below an
  // equal-clique fabric of the same real size.
  const auto equal8 = CliqueAssignment::contiguous(12, 2);  // 2 cliques of 6
  const CircuitSchedule s_equal = ScheduleBuilder::sorn(equal8, Rational{2, 1});
  const SornRouter r_equal(&s_equal, &equal8, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net_equal(&s_equal, &r_equal, cfg);
  const TrafficMatrix tm_equal = patterns::locality_mix(equal8, 0.5);
  SaturationSource src_equal(&tm_equal, SaturationConfig{});
  const double r_even = src_equal.measure(net_equal, 3000, 5000);

  // Same 12 real nodes, but as cliques of 8 and 4 -> padded to 16 with 4
  // ghosts.
  std::vector<CliqueId> uneven_map(12, 0);
  for (NodeId i = 8; i < 12; ++i) uneven_map[static_cast<std::size_t>(i)] = 1;
  const CliqueAssignment uneven(uneven_map);
  const PaddedAssignment padded = uneven.padded_to_equal();
  const CliqueAssignment equal_padded(padded.clique_of);
  const CircuitSchedule s_pad = ScheduleBuilder::sorn(equal_padded, {2, 1});
  const SornRouter r_pad(&s_pad, &equal_padded, LbMode::kRandom);
  SlottedNetwork net_pad(&s_pad, &r_pad, cfg);
  // Traffic only between real nodes; ghosts idle.
  TrafficMatrix tm_pad(padded.padded_nodes);
  for (NodeId i = 0; i < padded.real_nodes; ++i)
    for (NodeId j = 0; j < padded.real_nodes; ++j)
      if (i != j) tm_pad.set(i, j, 1.0);
  tm_pad.normalize_node_load();
  SaturationSource src_pad(&tm_pad, SaturationConfig{});
  // Throughput per *real* node.
  SlottedNetwork& net = net_pad;
  src_pad.measure(net, 3000, 5000);
  const double r_uneven =
      static_cast<double>(net.metrics().delivered_cells()) /
      (static_cast<double>(net.metrics().slots_run()) *
       static_cast<double>(padded.real_nodes));

  EXPECT_GT(r_even, 0.2);
  EXPECT_GT(r_uneven, 0.1);  // still functional
  // Note: per-real-node throughput can exceed the equal case because
  // ghosts donate relay capacity; what matters is that both fabrics are
  // functional and the padded one wastes ghost-directed slots. Check the
  // fabric-level utilization instead: delivered per padded node is lower.
  const double r_per_padded_node =
      r_uneven * static_cast<double>(padded.real_nodes) /
      static_cast<double>(padded.padded_nodes);
  EXPECT_LT(r_per_padded_node, r_even + 0.05);
}

}  // namespace
}  // namespace sorn
