#include "topo/bvn.h"

#include <gtest/gtest.h>

#include <set>

namespace sorn {
namespace {

std::vector<double> uniform_weights(CliqueId nc) {
  std::vector<double> w(static_cast<std::size_t>(nc) *
                        static_cast<std::size_t>(nc), 1.0);
  for (CliqueId c = 0; c < nc; ++c)
    w[static_cast<std::size_t>(c) * static_cast<std::size_t>(nc) +
      static_cast<std::size_t>(c)] = 0.0;
  return w;
}

TEST(BvnTest, UniformDecomposesIntoDerangements) {
  const auto bvn = BvnDecomposition::compute(uniform_weights(4), 4);
  EXPECT_GE(bvn.terms().size(), 1u);
  EXPECT_NEAR(bvn.total_coefficient(), 1.0, 1e-2);
  for (const auto& term : bvn.terms()) {
    // Valid permutation with no fixed points.
    std::set<CliqueId> targets;
    for (CliqueId c = 0; c < 4; ++c) {
      EXPECT_NE(term.perm[static_cast<std::size_t>(c)], c);
      targets.insert(term.perm[static_cast<std::size_t>(c)]);
    }
    EXPECT_EQ(targets.size(), 4u);
    EXPECT_GT(term.coeff, 0.0);
  }
}

TEST(BvnTest, ReconstructionMatchesDoublyStochasticScaling) {
  // A gravity-ish asymmetric matrix.
  std::vector<double> w{0.0, 5.0, 1.0, 1.0,   //
                        5.0, 0.0, 1.0, 1.0,   //
                        1.0, 1.0, 0.0, 3.0,   //
                        1.0, 1.0, 3.0, 0.0};
  BvnOptions opts;
  opts.residual_tolerance = 1e-4;
  opts.max_terms = 256;
  const auto bvn = BvnDecomposition::compute(w, 4, opts);
  const auto recon = bvn.reconstruct();
  // Rows and columns of the reconstruction sum to ~1 (doubly stochastic).
  for (CliqueId i = 0; i < 4; ++i) {
    double row = 0.0;
    double col = 0.0;
    for (CliqueId j = 0; j < 4; ++j) {
      row += recon[static_cast<std::size_t>(i) * 4 + static_cast<std::size_t>(j)];
      col += recon[static_cast<std::size_t>(j) * 4 + static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(row, 1.0, 2e-3);
    EXPECT_NEAR(col, 1.0, 2e-3);
  }
  // The hot pair 0<->1 keeps more mass than the cold pair 0->2.
  EXPECT_GT(recon[0 * 4 + 1], recon[0 * 4 + 2] * 2.0);
}

TEST(BvnTest, RespectsMaxTerms) {
  std::vector<double> w{0.0, 7.0, 2.0, 1.0,  //
                        1.0, 0.0, 7.0, 2.0,  //
                        2.0, 1.0, 0.0, 7.0,  //
                        7.0, 2.0, 1.0, 0.0};
  BvnOptions opts;
  opts.max_terms = 2;
  const auto bvn = BvnDecomposition::compute(w, 4, opts);
  EXPECT_LE(bvn.terms().size(), 2u);
}

TEST(BvnTest, RejectsZeroOffDiagonal) {
  std::vector<double> w = uniform_weights(3);
  w[0 * 3 + 1] = 0.0;
  EXPECT_DEATH(BvnDecomposition::compute(w, 3), "positive");
}

TEST(BvnTest, MixWithUniformFloorsZeros) {
  std::vector<double> w(16, 0.0);
  w[0 * 4 + 1] = 8.0;  // single hot pair
  const auto mixed = mix_with_uniform(w, 4, 0.7);
  for (CliqueId i = 0; i < 4; ++i)
    for (CliqueId j = 0; j < 4; ++j)
      if (i != j) {
        EXPECT_GT(mixed[static_cast<std::size_t>(i) * 4 +
                        static_cast<std::size_t>(j)], 0.0);
      }
  // The hot pair stays hottest.
  EXPECT_GT(mixed[0 * 4 + 1], mixed[1 * 4 + 0] * 2.0);
}

TEST(BvnTest, MixAlphaZeroIsUniform) {
  std::vector<double> w(9, 0.0);
  w[0 * 3 + 1] = 100.0;
  const auto mixed = mix_with_uniform(w, 3, 0.0);
  EXPECT_DOUBLE_EQ(mixed[0 * 3 + 1], mixed[1 * 3 + 2]);
}

}  // namespace
}  // namespace sorn
