#include "topo/logical_topology.h"

#include <gtest/gtest.h>

#include "topo/schedule_builder.h"

namespace sorn {
namespace {

TEST(LogicalTopologyTest, RoundRobinIsUniformClique) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const LogicalTopology topo(s);
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_EQ(topo.degree(i), 7);
    for (NodeId j = 0; j < 8; ++j)
      if (i != j) {
        EXPECT_DOUBLE_EQ(topo.edge_fraction(i, j), 1.0 / 7.0);
      }
    EXPECT_DOUBLE_EQ(topo.edge_fraction(i, i), 0.0);
  }
}

TEST(LogicalTopologyTest, FractionsSumToOneForPerfectSchedules) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, {3, 1});
  const LogicalTopology topo(s);
  for (NodeId i = 0; i < 16; ++i) {
    double total = 0.0;
    for (NodeId j = 0; j < 16; ++j) total += topo.edge_fraction(i, j);
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(topo.intra_fraction(i, cliques) +
                    topo.inter_fraction(i, cliques),
                1.0, 1e-12);
  }
}

TEST(LogicalTopologyTest, CliqueBandwidthIsPerNodeAverage) {
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, {3, 1});
  const LogicalTopology topo(s);
  // Per node, inter fraction is 1/4; aggregate from clique 0 to clique 1
  // normalized by clique size equals that.
  EXPECT_NEAR(topo.clique_bandwidth(0, 1, cliques), 0.25, 1e-12);
  // Intra aggregate: 3/4 per node.
  EXPECT_NEAR(topo.clique_bandwidth(0, 0, cliques), 0.75, 1e-12);
}

TEST(LogicalTopologyTest, IdleSlotsReduceTotals) {
  // A schedule with idle nodes: one matching pairing only 0<->1 of 4.
  std::vector<NodeId> map{1, 0, 2, 3};  // 2 and 3 idle
  std::vector<Matching> slots{Matching(std::move(map))};
  const CircuitSchedule s(std::move(slots));
  const LogicalTopology topo(s);
  EXPECT_DOUBLE_EQ(topo.edge_fraction(0, 1), 1.0);
  EXPECT_EQ(topo.degree(2), 0);
}

}  // namespace
}  // namespace sorn
