#include "topo/clique.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(CliqueTest, ContiguousPartition) {
  const auto c = CliqueAssignment::contiguous(8, 2);
  EXPECT_EQ(c.node_count(), 8);
  EXPECT_EQ(c.clique_count(), 2);
  EXPECT_EQ(c.clique_of(0), 0);
  EXPECT_EQ(c.clique_of(3), 0);
  EXPECT_EQ(c.clique_of(4), 1);
  EXPECT_EQ(c.clique_size(0), 4);
  EXPECT_TRUE(c.equal_sized());
  EXPECT_TRUE(c.same_clique(0, 3));
  EXPECT_FALSE(c.same_clique(3, 4));
}

TEST(CliqueTest, IndexInClique) {
  const auto c = CliqueAssignment::contiguous(8, 2);
  EXPECT_EQ(c.index_in_clique(0), 0);
  EXPECT_EQ(c.index_in_clique(3), 3);
  EXPECT_EQ(c.index_in_clique(4), 0);
  EXPECT_EQ(c.index_in_clique(7), 3);
}

TEST(CliqueTest, FlatAssignmentIsSingletons) {
  const auto c = CliqueAssignment::flat(5);
  EXPECT_EQ(c.clique_count(), 5);
  for (NodeId i = 0; i < 5; ++i) EXPECT_EQ(c.clique_size(i), 1);
}

TEST(CliqueTest, NonContiguousAssignment) {
  const CliqueAssignment c({0, 1, 0, 1});
  EXPECT_EQ(c.clique_count(), 2);
  EXPECT_EQ(c.members(0), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(c.members(1), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(c.index_in_clique(2), 1);
}

TEST(CliqueTest, UnequalSizesDetected) {
  const CliqueAssignment c({0, 0, 0, 1});
  EXPECT_FALSE(c.equal_sized());
}

TEST(CliqueTest, RejectsSparseCliqueIds) {
  EXPECT_DEATH(CliqueAssignment({0, 2}), "dense");
}

TEST(CliqueTest, RejectsIndivisibleContiguous) {
  EXPECT_DEATH(CliqueAssignment::contiguous(7, 2), "divisible");
}

TEST(CliqueTest, EqualityComparesMaps) {
  EXPECT_TRUE(CliqueAssignment::contiguous(4, 2) ==
              CliqueAssignment::contiguous(4, 2));
  EXPECT_FALSE(CliqueAssignment::contiguous(4, 2) ==
               CliqueAssignment::flat(4));
}

}  // namespace
}  // namespace sorn
