// Verifies the closed-form models reproduce the paper's Table 1 and the
// Fig. 2(f) theory curve. Expected values are transcribed from the paper;
// see EXPERIMENTS.md for the two rounding-level deviations.
#include "analysis/models.h"

#include <gtest/gtest.h>

namespace sorn {
namespace analysis {
namespace {

TEST(ModelsTest, OptimalQAtPaperLocality) {
  EXPECT_NEAR(sorn_optimal_q(0.56), 2.0 / 0.44, 1e-12);
  EXPECT_NEAR(sorn_optimal_q(0.0), 2.0, 1e-12);
  // x = 1 diverges and is clamped.
  EXPECT_DOUBLE_EQ(sorn_optimal_q(1.0, 100.0), 100.0);
}

TEST(ModelsTest, ThroughputFormulaEndpoints) {
  // Fig. 2(f): r ranges from 1/3 (no locality) to 1/2 (full locality).
  EXPECT_NEAR(sorn_throughput(0.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(sorn_throughput(1.0), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(sorn_throughput(0.56), 0.4098, 5e-5);
}

TEST(ModelsTest, ThroughputAtQIsMaximizedAtQStar) {
  for (double x : {0.0, 0.2, 0.56, 0.8}) {
    const double q_star = sorn_optimal_q(x);
    const double best = sorn_throughput_at_q(x, q_star);
    EXPECT_NEAR(best, sorn_throughput(x), 1e-12) << "x=" << x;
    for (double q : {1.0, 2.0, 3.0, 8.0, 20.0}) {
      EXPECT_LE(sorn_throughput_at_q(x, q), best + 1e-12)
          << "x=" << x << " q=" << q;
    }
  }
}

TEST(ModelsTest, ThroughputAtFullLocalityIgnoresInterBound) {
  EXPECT_NEAR(sorn_throughput_at_q(1.0, 4.0), 4.0 / 10.0, 1e-12);
}

TEST(ModelsTest, MeanHopsIsInverseThroughput) {
  for (double x : {0.0, 0.3, 0.56, 1.0})
    EXPECT_NEAR(sorn_mean_hops(x) * sorn_throughput(x), 1.0, 1e-12);
}

// ---- Table 1 deltas ----

TEST(ModelsTest, Table1DeltaM) {
  const double q = sorn_optimal_q(0.56);
  EXPECT_DOUBLE_EQ(orn1d_delta_m(4096), 4095.0);
  EXPECT_DOUBLE_EQ(orn_hd_delta_m(4096, 2), 252.0);
  EXPECT_DOUBLE_EQ(sorn_delta_m_intra(4096, 64, q), 77.0);
  EXPECT_DOUBLE_EQ(sorn_delta_m_inter_table(4096, 64, q), 364.0);
  EXPECT_DOUBLE_EQ(sorn_delta_m_intra(4096, 32, q), 155.0);
  EXPECT_DOUBLE_EQ(sorn_delta_m_inter_table(4096, 32, q), 296.0);
}

TEST(ModelsTest, TextFormulaDiffersFromTable) {
  // The body text's inter-clique formula gives different values than the
  // table; we keep both (see DESIGN.md Sec. 4).
  const double q = sorn_optimal_q(0.56);
  const double text = sorn_delta_m_inter_text(4096, 64, q);
  EXPECT_NEAR(text, 426.2, 0.5);
  EXPECT_GT(text, sorn_delta_m_inter_table(4096, 64, q));
}

TEST(ModelsTest, Table1Latencies) {
  const DeploymentParams p;
  // Sirius: 4095/16 * 100 ns + 2 * 500 ns = 26.59 us.
  EXPECT_NEAR(min_latency_us(4095, 16, 100, 2, 500), 26.59, 0.005);
  // 2D ORN: 252/16 * 100 ns + 4 * 500 ns = 3.575 us (paper prints 3.57).
  EXPECT_NEAR(min_latency_us(252, 16, 100, 4, 500), 3.575, 0.001);
  // SORN Nc=64 intra: 77/16 * 100 + 2 * 500 = 1.481 us.
  EXPECT_NEAR(min_latency_us(77, 16, 100, 2, 500), 1.481, 0.001);
  // SORN Nc=64 inter: 364/16 * 100 + 3 * 500 = 3.775 us (paper: 3.77).
  EXPECT_NEAR(min_latency_us(364, 16, 100, 3, 500), 3.775, 0.001);
  // SORN Nc=32 intra: 155/16 * 100 + 2 * 500 = 1.969 us (paper: 1.97).
  EXPECT_NEAR(min_latency_us(155, 16, 100, 2, 500), 1.969, 0.001);
  // SORN Nc=32 inter: 296/16 * 100 + 3 * 500 = 3.35 us.
  EXPECT_NEAR(min_latency_us(296, 16, 100, 3, 500), 3.35, 0.001);
  (void)p;
}

TEST(ModelsTest, Table1RowsComplete) {
  const auto rows = table1(DeploymentParams{});
  ASSERT_EQ(rows.size(), 8u);

  // Row 0: Sirius.
  EXPECT_EQ(rows[0].max_hops, 2);
  EXPECT_DOUBLE_EQ(rows[0].delta_m, 4095.0);
  EXPECT_NEAR(rows[0].min_latency_us, 26.59, 0.01);
  EXPECT_DOUBLE_EQ(rows[0].throughput, 0.5);
  EXPECT_DOUBLE_EQ(rows[0].bw_cost, 2.0);

  // Rows 1-2: Opera short / bulk.
  EXPECT_EQ(rows[1].max_hops, 4);
  EXPECT_NEAR(rows[1].min_latency_us, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(rows[1].throughput, 0.3125);
  EXPECT_NEAR(rows[1].bw_cost, 3.2, 1e-12);
  EXPECT_EQ(rows[2].max_hops, 2);
  EXPECT_NEAR(rows[2].min_latency_us, 23034.4, 1.0);

  // Row 3: 2D ORN.
  EXPECT_EQ(rows[3].max_hops, 4);
  EXPECT_DOUBLE_EQ(rows[3].delta_m, 252.0);
  EXPECT_DOUBLE_EQ(rows[3].throughput, 0.25);
  EXPECT_DOUBLE_EQ(rows[3].bw_cost, 4.0);

  // Rows 4-5: SORN Nc=64.
  EXPECT_EQ(rows[4].traffic_class, "intra-clique");
  EXPECT_DOUBLE_EQ(rows[4].delta_m, 77.0);
  EXPECT_NEAR(rows[4].min_latency_us, 1.48, 0.005);
  EXPECT_NEAR(rows[4].throughput, 0.4098, 5e-5);
  EXPECT_NEAR(rows[4].bw_cost, 2.44, 0.005);
  EXPECT_DOUBLE_EQ(rows[5].delta_m, 364.0);
  EXPECT_NEAR(rows[5].min_latency_us, 3.775, 0.005);

  // Rows 6-7: SORN Nc=32.
  EXPECT_DOUBLE_EQ(rows[6].delta_m, 155.0);
  EXPECT_NEAR(rows[6].min_latency_us, 1.97, 0.005);
  EXPECT_DOUBLE_EQ(rows[7].delta_m, 296.0);
  EXPECT_NEAR(rows[7].min_latency_us, 3.35, 0.005);
}

// The headline scaling claim (Sec. 4): SORN cuts intrinsic latency by an
// order of magnitude versus a 1D ORN while keeping throughput close to it.
TEST(ModelsTest, OrderOfMagnitudeLatencyReduction) {
  const DeploymentParams p;
  const auto rows = table1(p);
  const double sirius_latency = rows[0].min_latency_us;
  const double sorn_inter_latency = rows[5].min_latency_us;
  EXPECT_GT(sirius_latency / sorn_inter_latency, 7.0);
  EXPECT_GT(rows[4].throughput / rows[3].throughput, 1.6);  // vs 2D ORN
}

class HdSweep : public ::testing::TestWithParam<int> {};

TEST_P(HdSweep, ThroughputLatencyTradeoff) {
  // More dimensions: exponentially lower delta_m, linearly lower
  // throughput — the ORN scaling barrier (Sec. 2).
  const int h = GetParam();
  EXPECT_NEAR(orn_hd_throughput(h), 1.0 / (2.0 * h), 1e-12);
  if (h > 1) {
    EXPECT_LT(orn_hd_delta_m(4096, h), orn_hd_delta_m(4096, h - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HdSweep, ::testing::Values(1, 2, 3, 4));

TEST(ModelsTest, Section2CycleTimeExample) {
  // "for 10,000 nodes, a round robin schedule with 50 ns time slots can
  // take 500 us to cycle through" (Sec. 2; one uplink).
  EXPECT_NEAR(min_latency_us(orn1d_delta_m(10000), 1, 50, 0, 0), 499.95,
              0.01);
}

}  // namespace
}  // namespace analysis
}  // namespace sorn
