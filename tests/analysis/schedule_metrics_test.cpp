// Validates the analytic delta_m formulas against gaps measured on real
// schedules — the built Bresenham interleave must realize the even-spread
// assumption the paper's Sec. 4 analysis makes.
#include "analysis/schedule_metrics.h"

#include <gtest/gtest.h>

#include "topo/schedule_builder.h"
#include "analysis/models.h"

namespace sorn {
namespace analysis {
namespace {

TEST(ScheduleMetricsTest, RoundRobinGapIsPeriod) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  // Every circuit appears exactly once per period of 7.
  EXPECT_EQ(max_circuit_gap(s, 0, 3), 7);
  EXPECT_EQ(max_circuit_gap(s, 5, 2), 7);
}

TEST(ScheduleMetricsTest, MissingCircuitReportsMinusOne) {
  std::vector<Matching> slots{Matching::cyclic_shift(4, 1)};
  const CircuitSchedule s(std::move(slots));
  EXPECT_EQ(max_circuit_gap(s, 0, 2), -1);
  EXPECT_EQ(max_circuit_gap(s, 0, 0), -1);  // self circuit never counts
}

TEST(ScheduleMetricsTest, CliqueGapShorterThanCircuitGap) {
  // Reaching *some* node of a clique is much more frequent than reaching
  // one specific node.
  const auto cliques = CliqueAssignment::contiguous(16, 2);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{3, 1});
  const Slot any = max_clique_gap(s, cliques, 0, 1);
  const Slot specific = max_circuit_gap(s, 0, 12);
  ASSERT_GT(any, 0);
  ASSERT_GT(specific, 0);
  EXPECT_LT(any, specific);
}

struct Case {
  NodeId n;
  CliqueId nc;
  Rational q;
};

class MeasuredDeltaM : public ::testing::TestWithParam<Case> {};

TEST_P(MeasuredDeltaM, IntraGapTracksAnalyticFormula) {
  const auto& c = GetParam();
  const auto cliques = CliqueAssignment::contiguous(c.n, c.nc);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, c.q);
  const double analytic = sorn_delta_m_intra(c.n, c.nc, c.q.value());
  const double measured = measured_delta_m_intra(s, cliques);
  // The interleave cannot beat the analytic bound by much, and should not
  // exceed it by more than the rounding granularity of the interleave.
  EXPECT_GE(measured, analytic * 0.8) << "suspiciously good interleave";
  EXPECT_LE(measured, analytic + c.q.value() + 2.0)
      << "interleave too uneven";
}

TEST_P(MeasuredDeltaM, InterWaitBoundedByTextFormula) {
  const auto& c = GetParam();
  const auto cliques = CliqueAssignment::contiguous(c.n, c.nc);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, c.q);
  const GapStats inter = inter_gap_stats(s, cliques);
  // The inter hop waits for any circuit to the target clique. Its worst
  // wait is at most (q+1)(Nc-1) slots (the body-text accounting), within
  // interleave rounding.
  const double bound = (c.q.value() + 1.0) * (c.nc - 1);
  EXPECT_LE(static_cast<double>(inter.worst), bound + c.q.value() + 2.0);
  EXPECT_GT(inter.worst, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MeasuredDeltaM,
    ::testing::Values(Case{8, 2, {3, 1}}, Case{16, 4, {2, 1}},
                      Case{32, 4, {4, 1}}, Case{32, 8, {9, 2}},
                      Case{64, 8, {50, 11}}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "N" + std::to_string(info.param.n) + "_Nc" +
             std::to_string(info.param.nc) + "_q" +
             std::to_string(info.param.q.num) + "over" +
             std::to_string(info.param.q.den);
    });

TEST(ScheduleMetricsTest, MeasuredInterCombinesBothHops) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{2, 1});
  EXPECT_EQ(measured_delta_m_inter(s, cliques),
            static_cast<double>(inter_gap_stats(s, cliques).worst +
                                intra_gap_stats(s, cliques).worst));
}

}  // namespace
}  // namespace analysis
}  // namespace sorn
