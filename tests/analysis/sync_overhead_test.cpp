#include <gtest/gtest.h>

#include "analysis/models.h"

namespace sorn {
namespace analysis {
namespace {

TEST(SyncOverheadTest, GuardGrowsLogarithmically) {
  const double g1 = sync_guard_ns(5.0, 3.0, 64);
  const double g2 = sync_guard_ns(5.0, 3.0, 128);
  EXPECT_NEAR(g2 - g1, 3.0, 1e-9);  // one doubling = one per-level term
  EXPECT_NEAR(sync_guard_ns(5.0, 3.0, 1), 5.0, 1e-9);
}

TEST(SyncOverheadTest, EfficiencyBounds) {
  EXPECT_DOUBLE_EQ(slot_efficiency(100.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(slot_efficiency(100.0, 25.0), 0.75);
  EXPECT_DOUBLE_EQ(slot_efficiency(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(slot_efficiency(100.0, 150.0), 0.0);
}

TEST(SyncOverheadTest, SmallerDomainsAlwaysWin) {
  for (NodeId domain : {2, 16, 256, 4096}) {
    EXPECT_LT(sync_guard_ns(5.0, 3.0, domain),
              sync_guard_ns(5.0, 3.0, domain * 2));
  }
}

// The paper's qualitative claim: at datacenter scale and small slots, the
// guard penalty hits a flat fabric harder than a modular one.
TEST(SyncOverheadTest, ModularityBeatsFlatAtScale) {
  const NodeId n = 65536;
  const CliqueId nc = 256;
  const double slot = 50.0;
  const double flat = slot_efficiency(slot, sync_guard_ns(5.0, 3.0, n));
  const double modular =
      slot_efficiency(slot, sync_guard_ns(5.0, 3.0, n / nc));
  EXPECT_GT(modular, flat + 0.1);
}

}  // namespace
}  // namespace analysis
}  // namespace sorn
