// Sec. 6 "Other Structural Patterns": tuning the number of indirect hops
// per traffic class. On a SORN fabric, bulk flows can skip both
// load-balancing hops and ride the direct circuit (every pair recurs in
// the schedule), trading latency for a bandwidth tax of 1.
#include <gtest/gtest.h>

#include "routing/direct.h"
#include "routing/sorn_routing.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

TEST(BulkDirectTest, DirectCellsUseOneHopOnSornFabric) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, {2, 1});
  const SornRouter sorn_router(&s, &cliques, LbMode::kRandom);
  const DirectRouter direct;
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&s, &sorn_router, cfg);

  // Same src/dst pair, one flow per class.
  net.inject_flow(1, 0, 13, 4 * 256, /*flow_class=*/0);            // SORN
  net.inject_flow_with(direct, 2, 0, 13, 4 * 256, /*flow_class=*/1);
  net.run(2000);
  ASSERT_EQ(net.metrics().completed_flows(), 2u);
  // Bandwidth tax: the network forwarded relay cells only for the SORN
  // flow (forwards = transmissions that were not deliveries).
  EXPECT_GT(net.metrics().mean_hops(), 1.0);
  EXPECT_LT(net.metrics().mean_hops(), 3.0);
}

TEST(BulkDirectTest, DirectTradesLatencyForBandwidth) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, {4, 1});
  // First-available mode gives the paper's latency semantics: the inter
  // hop rides the *next* circuit into the target clique. (kRandom picks a
  // specific landing node and waits for that exact circuit — fine for
  // throughput, pessimistic for latency.)
  const SornRouter sorn_router(&s, &cliques, LbMode::kFirstAvailable);
  const DirectRouter direct;
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;

  // Measure each class alone on an idle fabric (intrinsic latency).
  auto median_latency = [&](const Router& router) {
    SlottedNetwork net(&s, &sorn_router, cfg);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
      const auto src = static_cast<NodeId>(rng.next_below(32));
      auto dst = static_cast<NodeId>(rng.next_below(32));
      if (dst == src) dst = (dst + 1) % 32;
      net.inject_flow_with(router, static_cast<FlowId>(i + 1), src, dst, 256);
      net.run(20);  // spread injections across slots
    }
    for (Slot t = 0; t < 100000 && net.cells_in_flight() > 0; ++t) net.step();
    return net.metrics().cell_latency_ps().percentile(50.0);
  };

  const double lat_sorn = median_latency(sorn_router);
  const double lat_direct = median_latency(direct);
  // A direct inter-clique cell waits for its specific circuit (rare);
  // SORN's 3-hop route rides frequent circuits.
  EXPECT_GT(lat_direct, lat_sorn);
}

}  // namespace
}  // namespace sorn
