#include "routing/path.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(PathTest, BasicConstruction) {
  const Path p = Path::of({0, 3, 7, 6});
  EXPECT_EQ(p.size(), 4);
  EXPECT_EQ(p.hop_count(), 3);
  EXPECT_EQ(p.src(), 0);
  EXPECT_EQ(p.dst(), 6);
  EXPECT_EQ(p.at(1), 3);
}

TEST(PathTest, CollapsesConsecutiveDuplicates) {
  const Path p = Path::of({0, 0, 5, 5, 2});
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.at(0), 0);
  EXPECT_EQ(p.at(1), 5);
  EXPECT_EQ(p.at(2), 2);
}

TEST(PathTest, ContainsAndUsesEdge) {
  const Path p = Path::of({1, 4, 6});
  EXPECT_TRUE(p.contains(4));
  EXPECT_FALSE(p.contains(5));
  EXPECT_TRUE(p.uses_edge(1, 4));
  EXPECT_TRUE(p.uses_edge(4, 6));
  EXPECT_FALSE(p.uses_edge(6, 4));  // directed
  EXPECT_FALSE(p.uses_edge(1, 6));
}

TEST(PathTest, EqualityIsElementwise) {
  EXPECT_EQ(Path::of({1, 2, 3}), Path::of({1, 2, 3}));
  EXPECT_FALSE(Path::of({1, 2}) == Path::of({1, 2, 3}));
  EXPECT_FALSE(Path::of({1, 2, 4}) == Path::of({1, 2, 3}));
}

TEST(PathTest, HopBudgetEnforced) {
  Path p;
  for (NodeId i = 0; i < Path::kMaxNodes; ++i) p.push_back(i);
  EXPECT_DEATH(p.push_back(99), "hop budget");
}

TEST(PathTest, EmptyPathHasZeroHops) {
  const Path p;
  EXPECT_EQ(p.size(), 0);
  EXPECT_EQ(p.hop_count(), 0);
}

}  // namespace
}  // namespace sorn
