#include "routing/hier_routing.h"

#include <gtest/gtest.h>

#include "analysis/models.h"
#include "sim/network.h"
#include "sim/saturation.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

struct Fixture {
  Hierarchy h;
  CircuitSchedule schedule;
  explicit Fixture(ScheduleBuilder::HierShares shares = {2, 1, 1})
      : h(Hierarchy::regular(64, 4, 4)),
        schedule(ScheduleBuilder::sorn_hierarchical(h, shares)) {}
};

TEST(HierRoutingTest, SamePodIsTwoHops) {
  Fixture f;
  const HierSornRouter router(&f.schedule, &f.h, LbMode::kRandom);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Path p = router.route(0, 3, 0, rng);
    EXPECT_LE(p.hop_count(), 2);
    for (int k = 0; k < p.size(); ++k) EXPECT_TRUE(f.h.same_pod(p.at(k), 0));
  }
}

TEST(HierRoutingTest, SameClusterIsThreeHops) {
  Fixture f;
  const HierSornRouter router(&f.schedule, &f.h, LbMode::kRandom);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Path p = router.route(0, 13, 0, rng);  // pod 0 -> pod 3, cluster 0
    EXPECT_LE(p.hop_count(), 3);
    // All nodes stay in cluster 0.
    for (int k = 0; k < p.size(); ++k)
      EXPECT_TRUE(f.h.same_cluster(p.at(k), 0));
    // Exactly one pod-crossing hop.
    int pod_crossings = 0;
    for (int k = 0; k + 1 < p.size(); ++k)
      if (!f.h.same_pod(p.at(k), p.at(k + 1))) ++pod_crossings;
    EXPECT_EQ(pod_crossings, 1);
  }
}

TEST(HierRoutingTest, CrossClusterIsAtMostFourHops) {
  Fixture f;
  const HierSornRouter router(&f.schedule, &f.h, LbMode::kRandom);
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const Path p = router.route(0, 55, 0, rng);  // cluster 0 -> cluster 3
    EXPECT_LE(p.hop_count(), 4);
    EXPECT_EQ(p.dst(), 55);
    // Exactly one cluster-crossing hop.
    int cluster_crossings = 0;
    for (int k = 0; k + 1 < p.size(); ++k)
      if (!f.h.same_cluster(p.at(k), p.at(k + 1))) ++cluster_crossings;
    EXPECT_EQ(cluster_crossings, 1);
  }
}

struct ModeCase {
  LbMode mode;
};

class HierRoutingSweep : public ::testing::TestWithParam<LbMode> {};

TEST_P(HierRoutingSweep, AllHopsExistInSchedule) {
  Fixture f;
  const HierSornRouter router(&f.schedule, &f.h, GetParam());
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    const auto src = static_cast<NodeId>(rng.next_below(64));
    auto dst = static_cast<NodeId>(rng.next_below(64));
    if (dst == src) dst = (dst + 1) % 64;
    const auto now = static_cast<Slot>(
        rng.next_below(static_cast<std::uint64_t>(f.schedule.period())));
    const Path p = router.route(src, dst, now, rng);
    EXPECT_EQ(p.src(), src);
    EXPECT_EQ(p.dst(), dst);
    for (int k = 0; k + 1 < p.size(); ++k)
      EXPECT_GE(f.schedule.next_slot_connecting(p.at(k), p.at(k + 1), 0), 0)
          << p.at(k) << "->" << p.at(k + 1) << " never scheduled";
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, HierRoutingSweep,
                         ::testing::Values(LbMode::kRandom,
                                           LbMode::kFirstAvailable),
                         [](const ::testing::TestParamInfo<LbMode>& info) {
                           return info.param == LbMode::kRandom ? "random"
                                                                : "first";
                         });

TEST(HierRoutingTest, SimulatedThroughputTracksClosedForm) {
  // x1 = 0.5, x2 = 0.3, x3 = 0.2 -> r = 1/(2 + 0.3 + 0.4) = 0.370.
  const double x1 = 0.5;
  const double x2 = 0.3;
  const auto shares = analysis::hier_optimal_shares(x1, x2);
  Fixture f({shares.intra, shares.inter, shares.global});
  const HierSornRouter router(&f.schedule, &f.h, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&f.schedule, &router, cfg);
  const TrafficMatrix tm = patterns::hier_locality_mix(f.h, x1, x2);
  SaturationSource source(&tm, SaturationConfig{});
  const double r = source.measure(net, 6000, 8000);
  EXPECT_NEAR(r, analysis::hier_throughput(x1, x2), 0.05);
}

TEST(HierRoutingTest, DegenerateMatchesFlatSorn) {
  // x3 = 0: the hierarchical bound equals the paper's flat 1/(3-x).
  EXPECT_NEAR(analysis::hier_throughput(0.56, 0.44),
              analysis::sorn_throughput(0.56), 1e-12);
  EXPECT_NEAR(analysis::hier_throughput(0.5, 0.5),
              analysis::sorn_throughput(0.5), 1e-12);
}

TEST(HierRoutingTest, DeltaMOrderingMatchesLevels) {
  const auto shares = analysis::hier_optimal_shares(0.5, 0.3);
  const double pod = analysis::hier_delta_m_pod(16, shares);
  const double cluster = analysis::hier_delta_m_cluster(16, 8, shares);
  const double global = analysis::hier_delta_m_global(16, 8, 8, shares);
  EXPECT_LT(pod, cluster);
  EXPECT_LT(cluster, global);
}

}  // namespace
}  // namespace sorn
