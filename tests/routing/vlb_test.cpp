#include "routing/vlb.h"

#include <gtest/gtest.h>

#include <map>

#include "topo/schedule_builder.h"

namespace sorn {
namespace {

TEST(VlbTest, PathsHaveAtMostTwoHops) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kRandom);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Path p = router.route(3, 9, 0, rng);
    EXPECT_LE(p.hop_count(), router.max_hops());
    EXPECT_GE(p.hop_count(), 1);
    EXPECT_EQ(p.src(), 3);
    EXPECT_EQ(p.dst(), 9);
  }
}

TEST(VlbTest, FirstAvailablePicksUpcomingNeighbor) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kFirstAvailable);
  Rng rng(2);
  // At slot 0, node 0 connects to node 1; a route to node 5 should relay
  // via node 1.
  const Path p = router.route(0, 5, 0, rng);
  ASSERT_EQ(p.size(), 3);
  EXPECT_EQ(p.at(1), 1);
  // At slot 4, node 0 connects to node 5 == dst: route direct.
  const Path direct = router.route(0, 5, 4, rng);
  EXPECT_EQ(direct.hop_count(), 1);
}

TEST(VlbTest, RandomIntermediateIsLoadBalanced) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(16);
  const VlbRouter router(&s, LbMode::kRandom);
  Rng rng(3);
  std::map<NodeId, int> mids;
  const int draws = 16000;
  for (int i = 0; i < draws; ++i) {
    const Path p = router.route(0, 1, 0, rng);
    if (p.size() == 3) ++mids[p.at(1)];
  }
  // All 14 possible intermediates (everything except src and dst) appear,
  // each within 3x of the uniform share.
  EXPECT_EQ(mids.size(), 14u);
  for (const auto& [mid, count] : mids) {
    EXPECT_NE(mid, 0);
    EXPECT_NE(mid, 1);
    EXPECT_GT(count, draws / 14 / 3);
    EXPECT_LT(count, draws / 14 * 3);
  }
}

TEST(VlbTest, DirectHelperBuildsOneHop) {
  const Path p = VlbRouter::direct(2, 6);
  EXPECT_EQ(p.hop_count(), 1);
}

TEST(VlbTest, RejectsSelfRoute) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const VlbRouter router(&s, LbMode::kRandom);
  Rng rng(4);
  EXPECT_DEATH(router.route(2, 2, 0, rng), "itself");
}

}  // namespace
}  // namespace sorn
