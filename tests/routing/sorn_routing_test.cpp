#include "routing/sorn_routing.h"

#include <gtest/gtest.h>

#include "topo/schedule_builder.h"

namespace sorn {
namespace {

struct Fixture {
  CliqueAssignment cliques;
  CircuitSchedule schedule;
  Fixture(NodeId n, CliqueId nc, Rational q)
      : cliques(CliqueAssignment::contiguous(n, nc)),
        schedule(ScheduleBuilder::sorn(cliques, q)) {}
};

TEST(SornRoutingTest, IntraCliqueUsesAtMostTwoHops) {
  Fixture f(8, 2, {3, 1});
  const SornRouter router(&f.schedule, &f.cliques, LbMode::kRandom);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const Path p = router.route(0, 3, 0, rng);
    EXPECT_LE(p.hop_count(), 2);
    EXPECT_EQ(p.src(), 0);
    EXPECT_EQ(p.dst(), 3);
    // Both hops stay inside the clique.
    for (int k = 0; k < p.size(); ++k)
      EXPECT_TRUE(f.cliques.same_clique(p.at(k), 0));
  }
}

TEST(SornRoutingTest, InterCliqueUsesAtMostThreeHops) {
  Fixture f(8, 2, {3, 1});
  const SornRouter router(&f.schedule, &f.cliques, LbMode::kRandom);
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const Path p = router.route(0, 6, 0, rng);
    EXPECT_LE(p.hop_count(), 3);
    EXPECT_GE(p.hop_count(), 1);
    EXPECT_EQ(p.dst(), 6);
    // Exactly one hop crosses cliques.
    int crossings = 0;
    for (int k = 0; k + 1 < p.size(); ++k)
      if (!f.cliques.same_clique(p.at(k), p.at(k + 1))) ++crossings;
    EXPECT_EQ(crossings, 1);
  }
}

TEST(SornRoutingTest, PaperExamplePathsArePossible) {
  // Paper Sec. 4: "a flow from 0 to 6 could be routed as 0->3->7->6, or
  // 0->1->4->6, besides other paths."
  Fixture f(8, 2, {3, 1});
  const SornRouter router(&f.schedule, &f.cliques, LbMode::kRandom);
  Rng rng(3);
  bool saw_via_3 = false;
  bool saw_via_1 = false;
  for (int i = 0; i < 3000; ++i) {
    const Path p = router.route(0, 6, 0, rng);
    if (p.size() == 4 && p.at(1) == 3) saw_via_3 = true;
    if (p.size() == 4 && p.at(1) == 1) saw_via_1 = true;
  }
  EXPECT_TRUE(saw_via_3);
  EXPECT_TRUE(saw_via_1);
}

TEST(SornRoutingTest, FirstAvailableIsDeterministicGivenSlot) {
  Fixture f(16, 4, {2, 1});
  const SornRouter router(&f.schedule, &f.cliques, LbMode::kFirstAvailable);
  Rng rng(4);
  const Path a = router.route(0, 13, 5, rng);
  const Path b = router.route(0, 13, 5, rng);
  EXPECT_EQ(a, b);
}

TEST(SornRoutingTest, SingletonCliquesRouteDirectInter) {
  const auto cliques = CliqueAssignment::flat(6);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{1, 1});
  const SornRouter router(&s, &cliques, LbMode::kRandom);
  Rng rng(5);
  const Path p = router.route(0, 4, 0, rng);
  // No intra hop exists on either side: the path is the single inter hop.
  EXPECT_EQ(p.hop_count(), 1);
}

// Property sweep: every consecutive pair of a routed path must be realized
// by some slot of the schedule (otherwise the cell could never move).
struct SweepCase {
  NodeId n;
  CliqueId nc;
  Rational q;
  LbMode mode;
};

class SornRoutingSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SornRoutingSweep, AllHopsExistInSchedule) {
  const auto& c = GetParam();
  const auto cliques = CliqueAssignment::contiguous(c.n, c.nc);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, c.q);
  const SornRouter router(&s, &cliques, c.mode);
  Rng rng(17);
  for (int trial = 0; trial < 400; ++trial) {
    const auto src = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(c.n)));
    auto dst = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(c.n)));
    if (dst == src) dst = (dst + 1) % c.n;
    const auto now = static_cast<Slot>(rng.next_below(
        static_cast<std::uint64_t>(s.period())));
    const Path p = router.route(src, dst, now, rng);
    EXPECT_EQ(p.src(), src);
    EXPECT_EQ(p.dst(), dst);
    for (int k = 0; k + 1 < p.size(); ++k)
      EXPECT_GE(s.next_slot_connecting(p.at(k), p.at(k + 1), 0), 0)
          << "edge " << p.at(k) << "->" << p.at(k + 1) << " never scheduled";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SornRoutingSweep,
    ::testing::Values(SweepCase{8, 2, {3, 1}, LbMode::kRandom},
                      SweepCase{8, 2, {3, 1}, LbMode::kFirstAvailable},
                      SweepCase{16, 4, {2, 1}, LbMode::kRandom},
                      SweepCase{32, 4, {50, 11}, LbMode::kFirstAvailable},
                      SweepCase{64, 8, {9, 2}, LbMode::kRandom},
                      SweepCase{128, 8, {50, 11}, LbMode::kRandom}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "N" + std::to_string(info.param.n) + "_Nc" +
             std::to_string(info.param.nc) +
             (info.param.mode == LbMode::kRandom ? "_rand" : "_first");
    });

}  // namespace
}  // namespace sorn
