#include "routing/opera_routing.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(OperaRoutingTest, ShortFlowPathsWithinBudget) {
  Rng rng(1);
  const Expander e = Expander::random_regular(128, 7, rng);
  const OperaRouter router(&e, 4);
  Rng route_rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<NodeId>(route_rng.next_below(128));
    auto dst = static_cast<NodeId>(route_rng.next_below(128));
    if (dst == src) dst = (dst + 1) % 128;
    const Path p = router.route_short(src, dst);
    EXPECT_EQ(p.src(), src);
    EXPECT_EQ(p.dst(), dst);
    EXPECT_LE(p.hop_count(), 4);
    // Hops follow expander edges.
    for (int k = 0; k + 1 < p.size(); ++k) {
      const auto& nbrs = e.neighbors(p.at(k));
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), p.at(k + 1)), nbrs.end());
    }
  }
}

TEST(OperaRoutingTest, BulkIsDirect) {
  const Path p = OperaRouter::route_bulk(3, 9);
  EXPECT_EQ(p.hop_count(), 1);
  EXPECT_EQ(p.src(), 3);
  EXPECT_EQ(p.dst(), 9);
}

TEST(OperaRoutingTest, TightBudgetAborts) {
  Rng rng(3);
  // Degree 2 on 64 nodes: diameter clearly exceeds 1 hop.
  const Expander e = Expander::random_regular(64, 2, rng);
  const OperaRouter router(&e, 1);
  bool found_far_pair = false;
  for (NodeId dst = 1; dst < 64 && !found_far_pair; ++dst) {
    const auto path = e.shortest_path(0, dst);
    if (path.size() > 2) {
      found_far_pair = true;
      EXPECT_DEATH(router.route_short(0, dst), "hop budget");
    }
  }
  EXPECT_TRUE(found_far_pair);
}

}  // namespace
}  // namespace sorn
