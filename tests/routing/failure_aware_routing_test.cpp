// Failure-aware routing: the FailureView's semantics, its exposure on
// SlottedNetwork, and the routers' detours around failed intermediates.
#include <gtest/gtest.h>

#include "routing/failure_view.h"
#include "routing/sorn_routing.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

NetworkConfig fast_config() {
  NetworkConfig c;
  c.propagation_per_hop = 0;
  return c;
}

TEST(FailureViewTest, MutatorsAreIdempotentAndVersioned) {
  FailureView view(8);
  EXPECT_FALSE(view.any_failures());
  const std::uint64_t v0 = view.version();

  EXPECT_TRUE(view.fail_node(3));
  EXPECT_FALSE(view.fail_node(3));  // already failed: no-op
  EXPECT_TRUE(view.any_failures());
  EXPECT_TRUE(view.is_node_failed(3));
  EXPECT_EQ(view.failed_node_count(), 1u);
  const std::uint64_t v1 = view.version();
  EXPECT_GT(v1, v0);
  EXPECT_EQ(view.version(), v1) << "no-op must not bump the version";

  EXPECT_TRUE(view.fail_circuit(1, 5));
  EXPECT_FALSE(view.fail_circuit(1, 5));
  EXPECT_TRUE(view.is_circuit_failed(1, 5));
  EXPECT_FALSE(view.is_circuit_failed(5, 1)) << "circuits are directed";
  EXPECT_EQ(view.failed_circuit_count(), 1u);

  // usable() folds endpoint and circuit state together.
  EXPECT_FALSE(view.usable(0, 3));  // dst failed
  EXPECT_FALSE(view.usable(3, 0));  // src failed
  EXPECT_FALSE(view.usable(1, 5));  // circuit failed
  EXPECT_TRUE(view.usable(0, 1));

  EXPECT_TRUE(view.heal_node(3));
  EXPECT_FALSE(view.heal_node(3));
  EXPECT_TRUE(view.heal_circuit(1, 5));
  EXPECT_FALSE(view.any_failures());
}

TEST(FailureViewTest, HealAllClearsEverythingAndReportsCount) {
  FailureView view(6);
  view.fail_node(0);
  view.fail_node(4);
  view.fail_circuit(1, 2);
  const std::uint64_t before = view.version();
  EXPECT_EQ(view.heal_all(), 3u);
  EXPECT_FALSE(view.any_failures());
  EXPECT_EQ(view.failed_node_count(), 0u);
  EXPECT_EQ(view.failed_circuit_count(), 0u);
  EXPECT_GT(view.version(), before);
  EXPECT_EQ(view.heal_all(), 0u) << "nothing left to heal";
}

TEST(FailureViewTest, NetworkExposesCircuitStateAndHealAll) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kFirstAvailable);
  SlottedNetwork net(&s, &router, fast_config());

  EXPECT_TRUE(net.fail_circuit(2, 6));
  EXPECT_FALSE(net.fail_circuit(2, 6)) << "idempotent";
  EXPECT_TRUE(net.is_circuit_failed(2, 6));
  EXPECT_FALSE(net.is_circuit_failed(6, 2));
  EXPECT_TRUE(net.fail_node(1));
  EXPECT_EQ(&net.failure_view(), &net.failure_view()) << "stable reference";
  EXPECT_EQ(net.heal_all(), 2u);
  EXPECT_FALSE(net.is_circuit_failed(2, 6));
  EXPECT_FALSE(net.is_failed(1));
}

TEST(FailureAwareRoutingTest, VlbAvoidsFailedIntermediates) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  FailureView view(8);
  view.fail_node(3);

  for (const LbMode mode : {LbMode::kRandom, LbMode::kFirstAvailable}) {
    VlbRouter router(&s, mode);
    router.set_failure_view(&view);
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
      const Path p = router.route(0, 5, i % 8, rng);
      EXPECT_FALSE(p.contains(3))
          << "failed node used as intermediate (mode "
          << static_cast<int>(mode) << ")";
    }
  }
}

TEST(FailureAwareRoutingTest, VlbWithoutFailuresMatchesLegacyDraws) {
  // An attached view with nothing failed must not perturb the RNG
  // consumption: paths are identical to a router with no view at all.
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter plain(&s, LbMode::kRandom);
  VlbRouter viewed(&s, LbMode::kRandom);
  FailureView view(8);
  viewed.set_failure_view(&view);
  Rng rng_a(7);
  Rng rng_b(7);
  for (int i = 0; i < 100; ++i) {
    const Path a = plain.route(1, 6, i, rng_a);
    const Path b = viewed.route(1, 6, i, rng_b);
    ASSERT_EQ(a.size(), b.size());
    for (int h = 0; h < a.size(); ++h) EXPECT_EQ(a.at(h), b.at(h));
  }
}

TEST(FailureAwareRoutingTest, SornAvoidsFailedLoadBalancerAndLanding) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{2, 1});
  FailureView view(16);
  view.fail_node(1);  // clique 0: candidate LB hop for src 0
  view.fail_node(5);  // clique 1: candidate landing for dst 6
  SornRouter router(&s, &cliques, LbMode::kRandom);
  router.set_failure_view(&view);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const Path p = router.route(0, 6, i % s.period(), rng);
    EXPECT_FALSE(p.contains(1)) << "failed LB candidate used";
    EXPECT_FALSE(p.contains(5)) << "failed landing candidate used";
  }
}

TEST(FailureAwareRoutingTest, SornFallsBackWhenAllCandidatesAreFailed) {
  // Every node of the destination clique is down: there is no usable
  // landing. The router must degrade gracefully (legacy pick, no assert)
  // rather than crash — the cells will simply wait out the outage.
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule s = ScheduleBuilder::sorn(cliques, Rational{2, 1});
  FailureView view(16);
  for (NodeId v = 4; v < 8; ++v) view.fail_node(v);  // all of clique 1
  SornRouter router(&s, &cliques, LbMode::kRandom);
  router.set_failure_view(&view);
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const Path p = router.route(0, 6, i % s.period(), rng);
    EXPECT_EQ(p.src(), 0);
    EXPECT_EQ(p.dst(), 6);
    EXPECT_GE(p.size(), 2);
  }
}

TEST(FailureAwareRoutingTest, DetoursKeepTrafficFlowingDuringOutage) {
  // End-to-end: with the view attached, an outage of a relay node leaves
  // zero cells stranded on it — every injected cell still delivers.
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  VlbRouter router(&s, LbMode::kRandom);
  SlottedNetwork net(&s, &router, fast_config());
  router.set_failure_view(&net.failure_view());

  net.fail_node(3);
  Rng rng(21);
  for (int round = 0; round < 200; ++round) {
    const auto src = static_cast<NodeId>(rng.next_below(8));
    auto dst = static_cast<NodeId>(rng.next_below(8));
    if (dst == src) dst = (dst + 1) % 8;
    if (src == 3 || dst == 3) continue;  // endpoints on the failed node
    net.inject_cell(src, dst);
    net.step();
  }
  net.run(100);
  EXPECT_EQ(net.cells_in_flight(), 0u)
      << "failure-aware routing must not strand cells on the failed relay";
  EXPECT_GT(net.metrics().delivered_cells(), 0u);
}

}  // namespace
}  // namespace sorn
