// Mixed-radix optimal ORN ([35]: all N, not just perfect powers).
#include "routing/orn_mixed_routing.h"

#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/saturation.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(OrnMixedScheduleTest, PeriodIsSumOfRadixCycles) {
  // 24 = 4 * 3 * 2: period (4-1) + (3-1) + (2-1) = 6.
  const CircuitSchedule s = ScheduleBuilder::orn_mixed(24, {4, 3, 2});
  EXPECT_EQ(s.period(), 6);
  for (Slot t = 0; t < s.period(); ++t)
    EXPECT_TRUE(s.matching_at(t).is_perfect());
}

TEST(OrnMixedScheduleTest, EqualRadicesMatchOrnHd) {
  const CircuitSchedule mixed = ScheduleBuilder::orn_mixed(16, {4, 4});
  const CircuitSchedule hd = ScheduleBuilder::orn_hd(16, 2);
  ASSERT_EQ(mixed.period(), hd.period());
  for (Slot t = 0; t < mixed.period(); ++t)
    for (NodeId i = 0; i < 16; ++i)
      EXPECT_EQ(mixed.dst_of(i, t), hd.dst_of(i, t));
}

TEST(OrnMixedScheduleTest, RejectsBadRadices) {
  EXPECT_DEATH(ScheduleBuilder::orn_mixed(24, {4, 3}), "multiply to n");
  EXPECT_DEATH(ScheduleBuilder::orn_mixed(24, {24, 1}), "at least 2");
}

TEST(OrnMixedRouterTest, DigitHelpers) {
  const OrnMixedRouter router(24, {4, 3, 2});
  // node 17 = 1 + 4*(1 + 3*1) -> digits (1, 1, 1)... check: 1 + 4 + 12 = 17.
  EXPECT_EQ(router.digit(17, 0), 1);
  EXPECT_EQ(router.digit(17, 1), 1);
  EXPECT_EQ(router.digit(17, 2), 1);
  EXPECT_EQ(router.with_digit(17, 0, 3), 19);
  EXPECT_EQ(router.with_digit(17, 2, 0), 5);
}

TEST(OrnMixedRouterTest, EveryHopChangesOneDigitAndExistsInSchedule) {
  const CircuitSchedule s = ScheduleBuilder::orn_mixed(24, {4, 3, 2});
  const OrnMixedRouter router(24, {4, 3, 2});
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const auto src = static_cast<NodeId>(rng.next_below(24));
    auto dst = static_cast<NodeId>(rng.next_below(24));
    if (dst == src) dst = (dst + 1) % 24;
    const Path p = router.route(src, dst, 0, rng);
    EXPECT_EQ(p.src(), src);
    EXPECT_EQ(p.dst(), dst);
    EXPECT_LE(p.hop_count(), 6);
    for (int k = 0; k + 1 < p.size(); ++k) {
      int changed = 0;
      for (int d = 0; d < 3; ++d)
        if (router.digit(p.at(k), d) != router.digit(p.at(k + 1), d))
          ++changed;
      EXPECT_EQ(changed, 1);
      EXPECT_GE(s.next_slot_connecting(p.at(k), p.at(k + 1), 0), 0);
    }
  }
}

TEST(OrnMixedRouterTest, ThroughputNearOneOverTwoH) {
  // 2 dimensions -> worst-case throughput 1/4, also for uneven radices.
  const CircuitSchedule s = ScheduleBuilder::orn_mixed(24, {6, 4});
  const OrnMixedRouter router(24, {6, 4});
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&s, &router, cfg);
  const TrafficMatrix tm = patterns::uniform(24);
  SaturationSource source(&tm, SaturationConfig{});
  const double r = source.measure(net, 4000, 8000);
  EXPECT_NEAR(r, 0.25, 0.05);
}

}  // namespace
}  // namespace sorn
