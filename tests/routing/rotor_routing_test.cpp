#include "routing/rotor_routing.h"

#include <gtest/gtest.h>

#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

TEST(RotorScheduleTest, DwellRepeatsMatchings) {
  const CircuitSchedule s = ScheduleBuilder::rotor(8, 5);
  EXPECT_EQ(s.period(), 7 * 5);
  // First five slots identical, then the shift changes.
  for (Slot t = 0; t < 5; ++t) EXPECT_EQ(s.dst_of(0, t), 1);
  EXPECT_EQ(s.dst_of(0, 5), 2);
  // Edge fraction unchanged by dwell: each circuit 1/(n-1) of slots.
  EXPECT_DOUBLE_EQ(s.edge_fraction(0, 3), 1.0 / 7.0);
}

TEST(RotorRouterTest, ActiveNeighborsOnePerLane) {
  const CircuitSchedule s = ScheduleBuilder::rotor(16, 10);
  const RotorRouter router(&s, 4, 4);
  const auto nbrs = router.active_neighbors(0, 0);
  EXPECT_GE(nbrs.size(), 2u);  // distinct shifts, possibly deduplicated
  EXPECT_LE(nbrs.size(), 4u);
  for (const NodeId v : nbrs) EXPECT_NE(v, 0);
}

TEST(RotorScheduleTest, RandomRotorIsProperOneFactorization) {
  const CircuitSchedule s = ScheduleBuilder::rotor_random(16, 3, 42);
  EXPECT_EQ(s.period(), 15 * 3);
  for (Slot t = 0; t < s.period(); ++t)
    EXPECT_TRUE(s.matching_at(t).is_perfect());
  // Every ordered pair appears (bulk flows always get a direct circuit).
  for (NodeId i = 0; i < 16; ++i)
    for (NodeId j = 0; j < 16; ++j)
      if (i != j) {
        EXPECT_NEAR(s.edge_fraction(i, j), 1.0 / 15.0, 1e-12)
            << i << "->" << j;
      }
}

TEST(RotorRouterTest, PathsFollowActiveCircuitsOrFallBackDirect) {
  const CircuitSchedule s = ScheduleBuilder::rotor_random(32, 20, 7);
  const RotorRouter router(&s, 4, 6);
  Rng rng(1);
  int expander_paths = 0;
  for (NodeId dst = 1; dst < 32; ++dst) {
    const Path p = router.route(0, dst, 7, rng);
    EXPECT_EQ(p.src(), 0);
    EXPECT_EQ(p.dst(), dst);
    EXPECT_LE(p.hop_count(), 6);
    bool followed_union = true;
    for (int k = 0; k + 1 < p.size(); ++k) {
      const auto nbrs = router.active_neighbors(p.at(k), 7);
      if (std::find(nbrs.begin(), nbrs.end(), p.at(k + 1)) == nbrs.end())
        followed_union = false;
    }
    if (followed_union) {
      ++expander_paths;
    } else {
      // Fallback must be the direct circuit, nothing else.
      EXPECT_EQ(p.hop_count(), 1);
    }
  }
  // On a random 1-factorization with 4 lanes the expander covers nearly
  // everything.
  EXPECT_GE(expander_paths, 28);
}

TEST(RotorRouterTest, FallbackFractionSmallWithEnoughLanes) {
  const CircuitSchedule s = ScheduleBuilder::rotor_random(32, 4, 11);
  const RotorRouter router(&s, 4, 6);
  EXPECT_LT(router.fallback_fraction(), 0.05);
}

TEST(RotorRouterTest, ShortFlowsDeliverWithinDwell) {
  // The Opera premise: a short flow's multi-hop path is live immediately
  // — delivery takes ~hops slots, far less than one dwell.
  const Slot dwell = 200;
  const CircuitSchedule s = ScheduleBuilder::rotor_random(32, dwell, 3);
  const RotorRouter router(&s, 4, 6);
  NetworkConfig cfg;
  cfg.lanes = 4;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&s, &router, cfg);
  net.inject_flow(1, 0, 17, 4 * 256);  // 4 cells
  net.run(dwell / 4);
  EXPECT_EQ(net.metrics().delivered_cells(), 4u);
}

TEST(RotorRouterTest, BulkWaitsForRotation) {
  const Slot dwell = 50;
  const CircuitSchedule s = ScheduleBuilder::rotor_random(16, dwell, 5);
  const RotorRouter router(&s, 2, 6);
  NetworkConfig cfg;
  cfg.lanes = 2;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&s, &router, cfg);
  // Direct circuit 0 -> 8 is up when shift k = 8 rotates in; worst case
  // (n-1)/lanes * dwell slots.
  class BulkRouter : public Router {
   public:
    Path route(NodeId a, NodeId b, Slot, Rng&) const override {
      return RotorRouter::route_bulk(a, b);
    }
    int max_hops() const override { return 1; }
  } bulk;
  net.inject_flow_with(bulk, 2, 0, 8, 256);
  net.run(16 * dwell);  // a full rotation guarantees the direct circuit
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
  // Its latency is on the rotation scale, not the hop scale — unless the
  // direct circuit happened to be active at injection; with seed 5 the
  // wait is at least one dwell.
  EXPECT_GT(net.metrics().cell_latency_ps().percentile(50.0),
            static_cast<double>(dwell) * 100e3 / 2.0);
}

TEST(RotorRouterTest, MixedClassesShareOneFabric) {
  const CircuitSchedule s = ScheduleBuilder::rotor_random(32, 100, 9);
  const RotorRouter short_router(&s, 4, 6);
  NetworkConfig cfg;
  cfg.lanes = 4;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&s, &short_router, cfg);
  class BulkRouter : public Router {
   public:
    Path route(NodeId a, NodeId b, Slot, Rng&) const override {
      return RotorRouter::route_bulk(a, b);
    }
    int max_hops() const override { return 1; }
  } bulk;
  net.inject_flow(1, 0, 9, 2 * 256, /*flow_class=*/0);
  net.inject_flow_with(bulk, 2, 3, 20, 2 * 256, /*flow_class=*/1);
  net.run(3000);
  EXPECT_EQ(net.metrics().completed_flows(), 2u);
  // Short class completes much faster than bulk class.
  EXPECT_LT(net.metrics().fct_ps_class(0).percentile(50.0),
            net.metrics().fct_ps_class(1).percentile(50.0));
}

}  // namespace
}  // namespace sorn
