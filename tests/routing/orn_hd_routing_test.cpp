#include "routing/orn_hd_routing.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

// Count differing digits between consecutive path nodes: every hop of an
// h-D ORN path changes exactly one digit.
int digits_changed(const OrnHdRouter& router, NodeId a, NodeId b) {
  int changed = 0;
  for (int d = 0; d < router.dims(); ++d)
    if (router.digit(a, d) != router.digit(b, d)) ++changed;
  return changed;
}

TEST(OrnHdRoutingTest, DigitHelpers) {
  const OrnHdRouter router(64, 2);  // r = 8
  EXPECT_EQ(router.radix(), 8);
  EXPECT_EQ(router.digit(013, 0), 3);
  EXPECT_EQ(router.digit(013, 1), 1);
  EXPECT_EQ(router.with_digit(013, 0, 7), 017);
  EXPECT_EQ(router.with_digit(013, 1, 0), 3);
}

TEST(OrnHdRoutingTest, EveryHopChangesOneDigit) {
  const OrnHdRouter router(64, 2);
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    const auto src = static_cast<NodeId>(rng.next_below(64));
    auto dst = static_cast<NodeId>(rng.next_below(64));
    if (dst == src) dst = (dst + 1) % 64;
    const Path p = router.route(src, dst, 0, rng);
    EXPECT_EQ(p.src(), src);
    EXPECT_EQ(p.dst(), dst);
    EXPECT_LE(p.hop_count(), router.max_hops());
    for (int k = 0; k + 1 < p.size(); ++k)
      EXPECT_EQ(digits_changed(router, p.at(k), p.at(k + 1)), 1);
  }
}

class OrnHdSweep : public ::testing::TestWithParam<std::pair<NodeId, int>> {};

TEST_P(OrnHdSweep, PathsValidAcrossDimensions) {
  const auto [n, h] = GetParam();
  const OrnHdRouter router(n, h);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    auto dst = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    if (dst == src) dst = (dst + 1) % n;
    const Path p = router.route(src, dst, 0, rng);
    EXPECT_EQ(p.dst(), dst);
    EXPECT_LE(p.hop_count(), 2 * h);
    for (int k = 0; k + 1 < p.size(); ++k)
      EXPECT_EQ(digits_changed(router, p.at(k), p.at(k + 1)), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, OrnHdSweep,
                         ::testing::Values(std::pair<NodeId, int>{16, 1},
                                           std::pair<NodeId, int>{16, 2},
                                           std::pair<NodeId, int>{64, 2},
                                           std::pair<NodeId, int>{64, 3},
                                           std::pair<NodeId, int>{256, 2}));

TEST(OrnHdRoutingTest, MaxHopsAttainable) {
  // For some src/dst pair with all digits differing and an intermediate
  // with all digits differing from both, the path reaches 2h hops.
  const OrnHdRouter router(16, 2);
  Rng rng(11);
  int longest = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const Path p = router.route(0, 15, 0, rng);  // digits (0,0) -> (3,3)
    longest = std::max(longest, p.hop_count());
  }
  EXPECT_EQ(longest, 4);
}

}  // namespace
}  // namespace sorn
