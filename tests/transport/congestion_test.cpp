// DCTCP congestion-control unit tests: window arithmetic only, no
// network. The invariants the transport layer leans on: clean rounds
// grow additively, marked rounds shrink multiplicatively through the
// smoothed alpha, the integer window stays inside [min, max], and round
// boundaries are latched from the window at round start.
#include <gtest/gtest.h>

#include "transport/congestion.h"

namespace sorn {
namespace {

CongestionConfig small_config() {
  CongestionConfig c;
  c.init_cwnd_cells = 4;
  c.min_cwnd_cells = 1;
  c.max_cwnd_cells = 16;
  return c;
}

TEST(CongestionTest, StartsAtInitialWindow) {
  CongestionControl cc(small_config());
  EXPECT_EQ(cc.window_cells(), 4u);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4.0);
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.0);
  EXPECT_EQ(cc.rounds(), 0u);
}

TEST(CongestionTest, CleanRoundGrowsAdditively) {
  CongestionControl cc(small_config());
  // One round = window_cells() acks at round start (4).
  for (int i = 0; i < 4; ++i) cc.on_ack(/*ecn_marked=*/false);
  EXPECT_EQ(cc.rounds(), 1u);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 5.0);
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.0) << "no marks, no alpha";
  EXPECT_EQ(cc.window_cells(), 5u);
}

TEST(CongestionTest, MarkedRoundShrinksThroughAlpha) {
  CongestionConfig cfg = small_config();
  cfg.gain = 0.5;
  CongestionControl cc(cfg);
  // Fully marked round: F = 1, alpha <- 0.5 * 0 + 0.5 * 1 = 0.5,
  // cwnd <- 4 * (1 - 0.25) = 3.
  for (int i = 0; i < 4; ++i) cc.on_ack(/*ecn_marked=*/true);
  EXPECT_EQ(cc.rounds(), 1u);
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.5);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 3.0);
  EXPECT_EQ(cc.window_cells(), 3u);
}

TEST(CongestionTest, PartialMarkingUsesMarkedFraction) {
  CongestionConfig cfg = small_config();
  cfg.gain = 1.0;  // alpha = this round's fraction exactly
  CongestionControl cc(cfg);
  cc.on_ack(true);
  cc.on_ack(false);
  cc.on_ack(false);
  cc.on_ack(false);
  // F = 1/4, alpha = 0.25, cwnd = 4 * (1 - 0.125) = 3.5.
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.25);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 3.5);
  EXPECT_EQ(cc.window_cells(), 3u) << "integer window truncates";
}

TEST(CongestionTest, WindowClampsToMinUnderSustainedMarking) {
  CongestionConfig cfg = small_config();
  cfg.gain = 1.0;
  CongestionControl cc(cfg);
  for (int round = 0; round < 64; ++round) {
    const std::uint64_t acks = cc.window_cells();
    for (std::uint64_t i = 0; i < acks; ++i) cc.on_ack(true);
  }
  EXPECT_EQ(cc.window_cells(), cfg.min_cwnd_cells)
      << "persistent congestion floors at min, never zero";
}

TEST(CongestionTest, WindowClampsToMaxUnderCleanRounds) {
  CongestionControl cc(small_config());
  for (int round = 0; round < 64; ++round) {
    const std::uint64_t acks = cc.window_cells();
    for (std::uint64_t i = 0; i < acks; ++i) cc.on_ack(false);
  }
  EXPECT_EQ(cc.window_cells(), 16u);
}

TEST(CongestionTest, RoundLengthLatchedAtRoundStart) {
  // After a clean round the window is 5; the next round must take 5 acks
  // (the latched value), not re-read the window mid-round.
  CongestionControl cc(small_config());
  for (int i = 0; i < 4; ++i) cc.on_ack(false);
  ASSERT_EQ(cc.rounds(), 1u);
  for (int i = 0; i < 4; ++i) cc.on_ack(false);
  EXPECT_EQ(cc.rounds(), 1u) << "round 2 needs 5 acks now";
  cc.on_ack(false);
  EXPECT_EQ(cc.rounds(), 2u);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 6.0);
}

TEST(CongestionTest, AlphaDecaysAcrossCleanRounds) {
  CongestionConfig cfg = small_config();
  cfg.gain = 0.5;
  CongestionControl cc(cfg);
  for (int i = 0; i < 4; ++i) cc.on_ack(true);  // alpha = 0.5
  const double after_marked = cc.alpha();
  const std::uint64_t acks = cc.window_cells();
  for (std::uint64_t i = 0; i < acks; ++i) cc.on_ack(false);
  EXPECT_LT(cc.alpha(), after_marked) << "EWMA decays when rounds are clean";
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.25);
}

}  // namespace
}  // namespace sorn
