// DctcpTransport integration with the slotted network: windowed release
// through inject_flow_segment, first-copy ack echo, ECN feedback closing
// the loop, bulk-router path classes, and exact completion accounting.
#include <gtest/gtest.h>

#include <cstdint>

#include "routing/vlb.h"
#include "sim/network.h"
#include "sim/workload_driver.h"
#include "topo/schedule_builder.h"
#include "transport/transport.h"

namespace sorn {
namespace {

NetworkConfig fast_config() {
  NetworkConfig c;
  c.propagation_per_hop = 0;
  return c;
}

class DirectRouter : public Router {
 public:
  Path route(NodeId src, NodeId dst, Slot, Rng&) const override {
    return Path::of({src, dst});
  }
  int max_hops() const override { return 1; }
};

class CountingRouter : public Router {
 public:
  explicit CountingRouter(const Router* inner) : inner_(inner) {}
  Path route(NodeId src, NodeId dst, Slot now, Rng& rng) const override {
    ++calls_;
    return inner_->route(src, dst, now, rng);
  }
  int max_hops() const override { return inner_->max_hops(); }
  std::uint64_t calls() const { return calls_; }

 private:
  const Router* inner_;
  mutable std::uint64_t calls_ = 0;
};

// Drive the transport the way the WorkloadDriver does: pump between
// slots on the coordinating thread.
void run_pumped(DctcpTransport& transport, SlottedNetwork& net, Slot slots) {
  for (Slot t = 0; t < slots; ++t) {
    transport.pump(net);
    net.step();
  }
}

TEST(TransportTest, WindowPacesInjection) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  DctcpTransport::Options opts;
  opts.congestion.init_cwnd_cells = 4;
  opts.congestion.max_cwnd_cells = 4;
  DctcpTransport transport(opts);
  net.set_transport(&transport);

  // 16 cells, window 4: the first pump must release exactly the window,
  // not the whole flow (the open-loop behavior this layer replaces).
  transport.open_flow(net, nullptr, /*flow=*/1, /*src=*/0, /*dst=*/1,
                      /*bytes=*/16 * 256, /*flow_class=*/0);
  EXPECT_EQ(net.metrics().injected_cells(), 0u) << "open_flow injects nothing";
  EXPECT_TRUE(transport.has_backlog());

  EXPECT_EQ(transport.pump(net), 4u);
  EXPECT_EQ(net.metrics().injected_cells(), 4u);
  EXPECT_EQ(transport.pump(net), 0u) << "window full, nothing more to send";

  run_pumped(transport, net, 200);
  EXPECT_EQ(net.metrics().injected_cells(), 16u);
  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_FALSE(transport.has_backlog()) << "completed flow is erased";

  const TransportStats stats = transport.stats();
  EXPECT_EQ(stats.flows_opened, 1u);
  EXPECT_EQ(stats.flows_completed, 1u);
  EXPECT_EQ(stats.cells_sent, 16u);
  EXPECT_EQ(stats.acked_cells, 16u);
  EXPECT_EQ(stats.ecn_acked_cells, 0u) << "no threshold, no marks";
}

TEST(TransportTest, EcnMarksCloseTheLoop) {
  // Tiny ECN threshold on a fan-in hotspot: marks must flow back through
  // acks and shrink the windows below their unmarked trajectory.
  const CircuitSchedule s = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&s, LbMode::kRandom);
  NetworkConfig config = fast_config();
  config.ecn_threshold_cells = 2;
  SlottedNetwork net(&s, &router, config);

  DctcpTransport::Options opts;
  opts.congestion.init_cwnd_cells = 8;
  opts.congestion.gain = 0.5;
  DctcpTransport transport(opts);
  net.set_transport(&transport);

  // 7:1 incast into node 0; every sender's cells pile into the same VOQs.
  for (NodeId src = 1; src < 8; ++src) {
    transport.open_flow(net, nullptr, static_cast<FlowId>(src), src,
                        /*dst=*/0, /*bytes=*/64 * 256, /*flow_class=*/0);
  }
  run_pumped(transport, net, 4000);

  EXPECT_EQ(net.metrics().completed_flows(), 7u);
  EXPECT_GT(net.metrics().ecn_marked_cells(), 0u);
  const TransportStats stats = transport.stats();
  EXPECT_GT(stats.ecn_acked_cells, 0u) << "marks must echo back as acks";
  EXPECT_EQ(stats.acked_cells, 7u * 64u);
  EXPECT_LT(stats.cwnd_cells.min(), 8.0)
      << "sustained marking must shrink some window below its start";
}

TEST(TransportTest, AcksIgnoreDuplicateDeliveries) {
  // Stall retransmission re-admits copies of windowed cells; the receiver
  // acks only first copies, so the transport's inflight accounting must
  // stay exact and the flow completes exactly once.
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  DctcpTransport::Options opts;
  opts.congestion.init_cwnd_cells = 4;
  DctcpTransport transport(opts);
  net.set_transport(&transport);

  net.fail_node(2);
  transport.open_flow(net, nullptr, /*flow=*/1, /*src=*/0, /*dst=*/2,
                      /*bytes=*/4 * 256, /*flow_class=*/0);
  transport.pump(net);
  // Originals are stranded behind the failed node; force one
  // retransmission round so copies of the same seqs join them.
  net.run(64);
  EXPECT_GT(net.retransmit_stalled({/*timeout_slots=*/16,
                                    /*max_attempts=*/8}),
            0u);
  net.heal_node(2);
  run_pumped(transport, net, 400);

  EXPECT_EQ(net.metrics().completed_flows(), 1u);
  EXPECT_GT(net.metrics().duplicate_cells(), 0u)
      << "both generations must arrive for the dedup path to be on trial";
  const TransportStats stats = transport.stats();
  EXPECT_EQ(stats.acked_cells, 4u) << "one ack per seq, not per copy";
  EXPECT_EQ(stats.flows_completed, 1u);
  EXPECT_FALSE(transport.has_backlog());
}

TEST(TransportTest, BulkFlowsInjectThroughBulkRouter) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter direct;
  const CountingRouter primary(&direct);
  const CountingRouter bulk(&direct);
  SlottedNetwork net(&s, &primary, fast_config());
  net.set_bulk_router(&bulk);

  DctcpTransport transport{DctcpTransport::Options{}};
  net.set_transport(&transport);

  transport.open_flow(net, &bulk, /*flow=*/1, /*src=*/0, /*dst=*/1,
                      /*bytes=*/2 * 256, /*flow_class=*/1);
  transport.open_flow(net, nullptr, /*flow=*/2, /*src=*/0, /*dst=*/2,
                      /*bytes=*/2 * 256, /*flow_class=*/0);
  transport.pump(net);
  EXPECT_EQ(bulk.calls(), 2u) << "bulk flow routes via the bulk path class";
  EXPECT_EQ(primary.calls(), 2u) << "short flow routes via the primary";
}

TEST(TransportTest, DriverWiresTransportEndToEnd) {
  // Through the WorkloadDriver: arrivals become open_flow calls, pump runs
  // once per slot, and the drain loop waits for the transport backlog.
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());

  DctcpTransport::Options opts;
  opts.congestion.init_cwnd_cells = 2;
  opts.congestion.max_cwnd_cells = 2;
  DctcpTransport transport(opts);
  net.set_transport(&transport);

  // Three bursts of 8 cells each at t=0; window 2 forces multi-slot
  // pacing, so completion depends on the drain loop pumping the backlog.
  struct BurstStream : ArrivalStream {
    int emitted = 0;
    FlowArrival next() override {
      if (emitted >= 3) return {kNoMoreArrivals, 0, 1, 1};
      const auto src = static_cast<NodeId>(emitted++);
      return {0, src, 3, 8 * 256};
    }
  } arrivals;

  WorkloadDriver driver(&arrivals);
  driver.set_transport(&transport);
  driver.run_until(net, 1 * net.config().slot_duration, /*drain_slots=*/2000);

  EXPECT_EQ(driver.flows_injected(), 3u);
  EXPECT_EQ(net.metrics().completed_flows(), 3u);
  EXPECT_EQ(transport.stats().flows_completed, 3u);
  EXPECT_FALSE(transport.has_backlog());
}

}  // namespace
}  // namespace sorn
