// Golden metrics: one small pinned scenario per registered design. The
// exact flow counts, delivered cells, mean hops and median cell latency
// are part of the determinism contract — any change to schedules,
// routing, the slot engine or the scenario wiring that moves these
// numbers must be intentional and update them here.
#include <gtest/gtest.h>

#include <string>

#include "core/sorn.h"
#include "scenario/scenario_runner.h"
#include "sim/saturation.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

// 16 nodes fits every design: even (opera), 4^2 (orn-hd), 4x4
// (orn-mixed), 4 cliques (sorn), 2 clusters x 2 pods (hier).
ScenarioConfig pinned_config(const std::string& design) {
  ScenarioConfig cfg;
  cfg.design = design;
  cfg.nodes = 16;
  cfg.cliques = 4;
  cfg.clusters = 2;
  cfg.pods_per_cluster = 2;
  cfg.orn_dims = 2;
  cfg.dwell_slots = 10;
  cfg.slots = 2000;
  cfg.load = 0.3;
  cfg.flow_size = FlowSizeKind::kFixed;
  cfg.fixed_flow_bytes = 2560;  // 10 cells per flow
  cfg.threads = 1;
  return cfg;
}

struct Golden {
  const char* design;
  std::uint64_t flows;
  std::uint64_t delivered_cells;
  double mean_hops;
  double cell_lat_p50_ps;
};

// Captured from a --threads 1 run of pinned_config(); identical at any
// thread count (parallel engine byte-equivalence).
constexpr Golden kGolden[] = {
    {"hier", 961u, 9610u, 2.256400, 4550000},
    {"opera", 961u, 9610u, 1.000000, 13000000},
    {"orn-hd", 961u, 9610u, 2.998231, 11100000},
    {"orn-mixed", 961u, 9610u, 3.483247, 48900000},
    {"rotor", 961u, 9610u, 1.934131, 14300000},
    {"sorn", 961u, 9610u, 2.121228, 4200000},
    {"vlb", 961u, 9610u, 1.934131, 4200000},
};

std::unique_ptr<ScenarioRunner> run_pinned(const ScenarioConfig& cfg) {
  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  EXPECT_NE(runner, nullptr) << cfg.design << ": " << error;
  if (runner == nullptr) return nullptr;
  EXPECT_TRUE(runner->run(&error)) << cfg.design << ": " << error;
  return runner;
}

TEST(GoldenMetricsTest, EveryDesignMatchesPinnedMetrics) {
  // The golden table covers exactly the registered designs.
  const std::vector<std::string> names = DesignRegistry::instance().names();
  ASSERT_EQ(names.size(), std::size(kGolden));

  for (const Golden& g : kGolden) {
    auto runner = run_pinned(pinned_config(g.design));
    ASSERT_NE(runner, nullptr);
    EXPECT_EQ(runner->flows_injected(), g.flows) << g.design;
    EXPECT_EQ(runner->metrics().delivered_cells(), g.delivered_cells)
        << g.design;
    EXPECT_NEAR(runner->metrics().mean_hops(), g.mean_hops, 1e-6) << g.design;
    EXPECT_DOUBLE_EQ(runner->metrics().cell_latency_ps().percentile(50.0),
                     g.cell_lat_p50_ps)
        << g.design;
    EXPECT_EQ(runner->metrics().dropped_cells(), 0u) << g.design;
  }
}

TEST(GoldenMetricsTest, MetricsIdenticalAtFourThreads) {
  for (const Golden& g : kGolden) {
    ScenarioConfig cfg = pinned_config(g.design);
    auto one = run_pinned(cfg);
    cfg.threads = 4;
    auto four = run_pinned(cfg);
    ASSERT_NE(one, nullptr);
    ASSERT_NE(four, nullptr);
    // The full exported document — every counter, histogram and
    // percentile — must be byte-identical across thread counts.
    EXPECT_EQ(one->metrics_json(), four->metrics_json()) << g.design;
  }
}

TEST(GoldenMetricsTest, RunnerMatchesHandBuiltSorn) {
  // The scenario path must be observationally identical to building the
  // same fabric by hand, the way pre-scenario callers did.
  ScenarioConfig cfg = pinned_config("sorn");
  cfg.workload = WorkloadKind::kSaturation;
  cfg.warmup_slots = 1000;
  cfg.measure_slots = 2000;
  auto runner = run_pinned(cfg);
  ASSERT_NE(runner, nullptr);

  SornConfig scfg;
  scfg.nodes = cfg.nodes;
  scfg.cliques = cfg.cliques;
  scfg.locality_x = cfg.locality_x;
  scfg.max_q_denominator = cfg.max_q_denominator;
  const SornNetwork net = SornNetwork::build(scfg);
  NetworkConfig ncfg;
  ncfg.slot_duration = cfg.slot_ns * 1000;
  ncfg.propagation_per_hop = cfg.propagation_ns * 1000;
  SlottedNetwork sim(&net.schedule(), &net.router(), ncfg);
  sim.set_threads(1);
  const TrafficMatrix tm = patterns::locality_mix(net.cliques(),
                                                  cfg.locality_x);
  SaturationSource source(&tm, SaturationConfig{});
  const double by_hand = source.measure(sim, 1000, 2000);

  EXPECT_DOUBLE_EQ(runner->saturation_r(), by_hand);
  EXPECT_EQ(runner->metrics().delivered_cells(),
            sim.metrics().delivered_cells());
}

}  // namespace
}  // namespace sorn
