// End-to-end control-plane fault scenarios: a gray-failure blast plus a
// controller outage window whose epochs fall mid-outage (a reconfigure
// attempt while the controller is dark), checked for parallel
// byte-equivalence at 1, 4 and 7 threads with invariants on every slot;
// retransmit-jitter determinism; and a chaos-campaign smoke run.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "control/control_faults.h"
#include "control/control_plane.h"
#include "control/safe_mode.h"
#include "scenario/chaos.h"
#include "scenario/scenario_runner.h"
#include "sim/invariants.h"

namespace sorn {
namespace {

// A 16-node SORN fabric in a bad week: two gray circuits and a fail-stop
// flap in the first half, then the controller dies across two epoch
// boundaries (600 and 800 never replan) and recovers at 900.
ScenarioConfig stress_config() {
  ScenarioConfig cfg;
  cfg.design = "sorn";
  cfg.nodes = 16;
  cfg.cliques = 4;
  cfg.locality_x = 0.6;
  cfg.propagation_ns = 0;
  cfg.load = 0.3;
  cfg.slots = 1200;
  cfg.epoch_slots = 200;
  cfg.flow_size = FlowSizeKind::kFixed;
  cfg.fixed_flow_bytes = 2560;
  cfg.threads = 1;
  cfg.control_outages = {500, 900};
  cfg.safe_mode = "vlb";
  cfg.check_invariants = true;
  cfg.retransmit_timeout = 64;
  cfg.retransmit_jitter = 0.25;
  cfg.fault_script =
      "300 degrade-circuit 0 5 0.3\n"
      "300 throttle-circuit 2 9 0.5\n"
      "350 fail-circuit 1 8\n"
      "600 heal-circuit 1 8\n"
      "700 restore-circuit 0 5\n"
      "700 restore-circuit 2 9\n";
  return cfg;
}

std::unique_ptr<ScenarioRunner> run_config(const ScenarioConfig& cfg) {
  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  EXPECT_NE(runner, nullptr) << error;
  if (runner == nullptr) return nullptr;
  EXPECT_TRUE(runner->run(&error)) << error;
  return runner;
}

TEST(ControlOutageTest, OutageSuppressesEpochsAndSafeModeEngages) {
  auto runner = run_config(stress_config());
  ASSERT_NE(runner, nullptr);

  ASSERT_NE(runner->control_faults(), nullptr);
  EXPECT_EQ(runner->control_faults()->outages_started(), 1u);
  EXPECT_EQ(runner->control_faults()->outage_slots(), 400u);
  // Epochs at 600 and 800 fall inside [500, 900): both reconfigure
  // attempts must be suppressed, not queued.
  EXPECT_EQ(runner->control_faults()->suppressed_epochs(), 2u);

  ASSERT_NE(runner->safe_mode(), nullptr);
  EXPECT_EQ(runner->safe_mode()->policy(), SafeModePolicy::kVlb);
  EXPECT_EQ(runner->safe_mode()->activations(), 1u);
  EXPECT_FALSE(runner->safe_mode()->active());  // restored at 900

  ASSERT_NE(runner->control(), nullptr);
  EXPECT_GT(runner->control()->replans(), 0u);  // epochs outside the outage

  ASSERT_NE(runner->invariant_checker(), nullptr);
  EXPECT_TRUE(runner->invariant_checker()->ok());
  EXPECT_GT(runner->invariant_checker()->slots_checked(), 1200u);

  // Gray losses happened and retransmission recovered them: every
  // injected flow completes despite a lossy first half.
  EXPECT_GT(runner->metrics().gray_dropped_cells(), 0u);
  EXPECT_GT(runner->metrics().retransmit_events(), 0u);
  EXPECT_EQ(runner->metrics().completed_flows(), runner->flows_injected());
}

TEST(ControlOutageTest, ByteEquivalentAcrossThreadCounts) {
  ScenarioConfig cfg = stress_config();
  auto one = run_config(cfg);
  ASSERT_NE(one, nullptr);
  const std::string golden = one->metrics_json();
  for (int threads : {4, 7}) {
    cfg.threads = threads;
    auto many = run_config(cfg);
    ASSERT_NE(many, nullptr);
    EXPECT_EQ(golden, many->metrics_json()) << threads << " threads";
  }
}

TEST(ControlOutageTest, HoldPolicyAlsoHoldsTheContract) {
  ScenarioConfig cfg = stress_config();
  cfg.safe_mode = "hold";
  auto one = run_config(cfg);
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->safe_mode()->policy(), SafeModePolicy::kHold);
  EXPECT_EQ(one->safe_mode()->activations(), 1u);
  EXPECT_EQ(one->metrics().completed_flows(), one->flows_injected());
  cfg.threads = 4;
  auto four = run_config(cfg);
  ASSERT_NE(four, nullptr);
  EXPECT_EQ(one->metrics_json(), four->metrics_json());
}

TEST(ControlOutageTest, RetransmitJitterIsSeededAndReproducible) {
  // Same seed, same jitter amplitude: the whole degraded timeline —
  // backoff factors included — must reproduce exactly.
  const ScenarioConfig cfg = stress_config();
  auto a = run_config(cfg);
  auto b = run_config(cfg);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(a->metrics().retransmit_events(), 0u);
  EXPECT_EQ(a->metrics_json(), b->metrics_json());

  // Jitter off is a different (also valid) timeline: the knob is wired
  // through, not ignored.
  ScenarioConfig no_jitter = cfg;
  no_jitter.retransmit_jitter = 0.0;
  auto c = run_config(no_jitter);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(a->metrics_json(), c->metrics_json());
}

TEST(ChaosCampaignTest, SmokeSeedPassesWithReplayRecipe) {
  ChaosKnobs knobs;
  knobs.nodes = 16;
  knobs.slots = 1500;
  knobs.compare_threads = 2;
  const ChaosResult r = run_chaos(3, knobs);
  EXPECT_TRUE(r.ok) << r.error << "\nreplay: " << r.replay;
  EXPECT_GT(r.invariant_slots, 1500u);
  EXPECT_NE(r.replay.find("--seed 3"), std::string::npos);
  EXPECT_NE(r.replay.find("chaos"), std::string::npos);
}

TEST(ChaosCampaignTest, ConfigGenerationIsPureInTheSeed) {
  ChaosKnobs knobs;
  knobs.nodes = 16;
  knobs.slots = 1500;
  EXPECT_EQ(make_chaos_config(9, knobs).to_json(),
            make_chaos_config(9, knobs).to_json());
  EXPECT_NE(make_chaos_config(9, knobs).to_json(),
            make_chaos_config(10, knobs).to_json());
}

}  // namespace
}  // namespace sorn
