// DesignRegistry: every builtin design is listed and builds a working
// schedule/router pair from a ScenarioConfig; unknown names fail with the
// available set; private registries support custom designs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "scenario/design.h"
#include "scenario/scenario_config.h"
#include "topo/schedule.h"

namespace sorn {
namespace {

// A config every builtin design can build: 16 nodes is even (opera),
// 4^2 (orn-hd at 2 dims), 4x4 (orn-mixed), and divides into 4 cliques
// (sorn) or 2 clusters x 2 pods (hier).
ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.nodes = 16;
  cfg.cliques = 4;
  cfg.clusters = 2;
  cfg.pods_per_cluster = 2;
  cfg.orn_dims = 2;
  return cfg;
}

TEST(DesignRegistryTest, ListsEveryBuiltinDesign) {
  const std::vector<std::string> names = DesignRegistry::instance().names();
  for (const char* expected :
       {"hier", "opera", "orn-hd", "orn-mixed", "rotor", "sorn", "vlb"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing design " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : names) {
    const Design* design = DesignRegistry::instance().find(name);
    ASSERT_NE(design, nullptr);
    EXPECT_EQ(design->name(), name);
    EXPECT_FALSE(design->description().empty());
  }
}

TEST(DesignRegistryTest, BuildsEveryBuiltinDesign) {
  const ScenarioConfig cfg = small_config();
  for (const std::string& name : DesignRegistry::instance().names()) {
    BuiltDesign built;
    std::string error;
    ASSERT_TRUE(
        DesignRegistry::instance().build(name, cfg, &built, &error))
        << name << ": " << error;
    ASSERT_NE(built.schedule, nullptr) << name;
    ASSERT_NE(built.router, nullptr) << name;
    EXPECT_EQ(built.schedule->node_count(), cfg.nodes) << name;
    EXPECT_GE(built.schedule->period(), 1) << name;
    EXPECT_GT(built.predicted_throughput, 0.0) << name;
    EXPECT_FALSE(built.summary.empty()) << name;
    EXPECT_NE(built.owner, nullptr) << name;  // keepalive set
  }
}

TEST(DesignRegistryTest, UnknownDesignListsAvailable) {
  BuiltDesign built;
  std::string error;
  EXPECT_FALSE(DesignRegistry::instance().build("warp-drive", small_config(),
                                                &built, &error));
  EXPECT_NE(error.find("warp-drive"), std::string::npos) << error;
  EXPECT_NE(error.find("sorn"), std::string::npos) << error;
  EXPECT_EQ(DesignRegistry::instance().find("warp-drive"), nullptr);
}

TEST(DesignRegistryTest, InvalidGeometryFailsWithMessage) {
  BuiltDesign built;
  std::string error;

  ScenarioConfig cfg = small_config();
  cfg.nodes = 15;  // not divisible into 4 cliques
  EXPECT_FALSE(DesignRegistry::instance().build("sorn", cfg, &built, &error));
  EXPECT_FALSE(error.empty());

  cfg = small_config();
  cfg.nodes = 15;  // odd: opera needs a perfect matching per slot
  EXPECT_FALSE(
      DesignRegistry::instance().build("opera", cfg, &built, &error));

  cfg = small_config();
  cfg.nodes = 15;  // not r^2 for any integer r
  EXPECT_FALSE(
      DesignRegistry::instance().build("orn-hd", cfg, &built, &error));

  cfg = small_config();
  cfg.radices = {3, 4};  // product 12 != 16 nodes
  EXPECT_FALSE(
      DesignRegistry::instance().build("orn-mixed", cfg, &built, &error));
}

TEST(DesignRegistryTest, SornDesignExposesItsNetworkHandle) {
  BuiltDesign built;
  std::string error;
  ASSERT_TRUE(DesignRegistry::instance().build("sorn", small_config(), &built,
                                               &error))
      << error;
  ASSERT_NE(built.sorn_network, nullptr);
  ASSERT_NE(built.cliques, nullptr);
  EXPECT_EQ(built.cliques->clique_count(), 4);

  ASSERT_TRUE(DesignRegistry::instance().build("vlb", small_config(), &built,
                                               &error))
      << error;
  EXPECT_EQ(built.sorn_network, nullptr);
}

// Private registries let tests (and experiments) stage custom designs
// without mutating the global one.
class EchoDesign : public Design {
 public:
  std::string name() const override { return "echo"; }
  std::string description() const override { return "test-only design"; }
  bool build(const ScenarioConfig&, BuiltDesign*,
             std::string* error) const override {
    if (error != nullptr) *error = "echo cannot build";
    return false;
  }
};

TEST(DesignRegistryTest, PrivateRegistrySupportsCustomDesigns) {
  DesignRegistry registry;
  EXPECT_TRUE(registry.names().empty());
  registry.add(std::make_unique<EchoDesign>());
  ASSERT_EQ(registry.names(), std::vector<std::string>{"echo"});
  BuiltDesign built;
  std::string error;
  EXPECT_FALSE(registry.build("echo", small_config(), &built, &error));
  EXPECT_EQ(error, "echo cannot build");
  // The global registry is untouched.
  EXPECT_EQ(DesignRegistry::instance().find("echo"), nullptr);
}

}  // namespace
}  // namespace sorn
