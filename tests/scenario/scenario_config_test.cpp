// ScenarioConfig JSON codec: round-trip fidelity, strict unknown-key
// handling (a typo must be an error, not a silently-defaulted field),
// and cross-field validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "scenario/scenario_config.h"

namespace sorn {
namespace {

ScenarioConfig non_default_config() {
  ScenarioConfig cfg;
  cfg.design = "opera";
  cfg.nodes = 96;
  cfg.cliques = 12;
  cfg.locality_x = 0.71;
  cfg.q_num = 3;
  cfg.q_den = 2;
  cfg.max_q_denominator = 8;
  cfg.lb_first_available = true;
  cfg.inter_clique_weights = {0.0, 2.0, 2.0, 0.0};
  cfg.weighted_alpha = 0.9;
  cfg.clusters = 3;
  cfg.pods_per_cluster = 2;
  cfg.pod_locality_x1 = 0.45;
  cfg.cluster_locality_x2 = 0.25;
  cfg.dwell_slots = 64;
  cfg.schedule_seed = 99;
  cfg.max_short_hops = 4;
  cfg.bulk_cutoff_bytes = 1 << 20;
  cfg.orn_dims = 3;
  cfg.radices = {4, 6};
  cfg.lanes = 2;
  cfg.slot_ns = 200;
  cfg.propagation_ns = 500;
  cfg.cell_bytes = 512;
  cfg.max_queue_cells = 64;
  cfg.seed = 1234;
  cfg.threads = 4;
  cfg.traffic = TrafficKind::kRing;
  cfg.ring_heavy_share = 0.75;
  cfg.traffic_backend = DemandBackend::kProcedural;
  cfg.workload = WorkloadKind::kIncast;
  cfg.load = 0.55;
  cfg.slots = 12345;
  cfg.drain_slots = 42;
  cfg.warmup_slots = 11;
  cfg.measure_slots = 22;
  cfg.flow_size = FlowSizeKind::kFixed;
  cfg.fixed_flow_bytes = 4096;
  cfg.flow_size_cap = 65536;
  cfg.classify = ClassifyKind::kSize;
  cfg.arrival_seed = 5;
  cfg.workload_seed = 6;
  cfg.incast_fanin = 12;
  cfg.incast_bytes = 32768;
  cfg.incast_period_slots = 128;
  cfg.collective_kind = "tree";
  cfg.collective_bytes = 1 << 19;
  cfg.collective_phase_gap_slots = 96;
  cfg.rack_local_frac = 0.8;
  cfg.oversub_factor = 2.5;
  cfg.transport = "dctcp";
  cfg.ecn_threshold_cells = 8;
  cfg.init_cwnd_cells = 16;
  cfg.max_cwnd_cells = 128;
  cfg.dctcp_gain = 0.125;
  cfg.trace_path = "out.jsonl";
  cfg.metrics_json_path = "out.json";
  cfg.timeseries_csv_path = "out.csv";
  cfg.sample_every = 10;
  cfg.fault_script = "fail node 3 @ 100";
  cfg.node_mtbf_slots = 5000.0;
  cfg.node_mttr_slots = 400.0;
  cfg.circuit_mtbf_slots = 9000.0;
  cfg.circuit_mttr_slots = 300.0;
  cfg.fault_seed = 77;
  cfg.retransmit_timeout = 256;
  cfg.retransmit_max_attempts = 4;
  cfg.retransmit_jitter = 0.3;
  cfg.epoch_slots = 400;
  cfg.update_delay_slots = 24;
  cfg.control_outages = {100, 300, 900, 1100};
  cfg.controller_mtbf_slots = 7000.0;
  cfg.controller_mttr_slots = 600.0;
  cfg.control_fault_seed = 21;
  cfg.replan_apply_delay = 16;
  cfg.estimate_stale_epochs = 2;
  cfg.estimate_noise = 0.15;
  cfg.safe_mode = "vlb";
  cfg.check_invariants = true;
  return cfg;
}

TEST(ScenarioConfigTest, DefaultsRoundTrip) {
  const ScenarioConfig cfg;
  ScenarioConfig back;
  std::string error;
  ASSERT_TRUE(ScenarioConfig::from_json(cfg.to_json(), &back, &error))
      << error;
  EXPECT_EQ(cfg.to_json(), back.to_json());
}

TEST(ScenarioConfigTest, EveryFieldRoundTrips) {
  const ScenarioConfig cfg = non_default_config();
  const std::string doc = cfg.to_json();
  ScenarioConfig back;
  std::string error;
  ASSERT_TRUE(ScenarioConfig::from_json(doc, &back, &error)) << error;
  // Byte-identical re-serialization proves every serializable field
  // survived (the writer emits all of them in a fixed order).
  EXPECT_EQ(doc, back.to_json());
  EXPECT_EQ(back.design, "opera");
  EXPECT_EQ(back.nodes, 96);
  EXPECT_EQ(back.radices, (std::vector<NodeId>{4, 6}));
  EXPECT_EQ(back.workload, WorkloadKind::kIncast);
  EXPECT_EQ(back.traffic, TrafficKind::kRing);
  EXPECT_EQ(back.traffic_backend, DemandBackend::kProcedural);
  EXPECT_EQ(back.flow_size, FlowSizeKind::kFixed);
  EXPECT_EQ(back.classify, ClassifyKind::kSize);
  EXPECT_DOUBLE_EQ(back.node_mtbf_slots, 5000.0);
  EXPECT_EQ(back.retransmit_timeout, 256);
  EXPECT_EQ(back.incast_fanin, 12);
  EXPECT_EQ(back.incast_bytes, 32768u);
  EXPECT_EQ(back.incast_period_slots, 128);
  EXPECT_EQ(back.collective_kind, "tree");
  EXPECT_DOUBLE_EQ(back.oversub_factor, 2.5);
  EXPECT_EQ(back.transport, "dctcp");
  EXPECT_EQ(back.ecn_threshold_cells, 8u);
  EXPECT_DOUBLE_EQ(back.dctcp_gain, 0.125);
}

TEST(ScenarioConfigTest, AbsentFieldsKeepDefaults) {
  ScenarioConfig back;
  std::string error;
  ASSERT_TRUE(ScenarioConfig::from_json(R"({"design": "vlb", "nodes": 16})",
                                        &back, &error))
      << error;
  EXPECT_EQ(back.design, "vlb");
  EXPECT_EQ(back.nodes, 16);
  const ScenarioConfig defaults;
  EXPECT_EQ(back.cliques, defaults.cliques);
  EXPECT_DOUBLE_EQ(back.load, defaults.load);
  EXPECT_EQ(back.workload, defaults.workload);
}

TEST(ScenarioConfigTest, UnknownKeyIsAnError) {
  ScenarioConfig back;
  std::string error;
  EXPECT_FALSE(
      ScenarioConfig::from_json(R"({"nodez": 16})", &back, &error));
  EXPECT_NE(error.find("nodez"), std::string::npos) << error;
}

TEST(ScenarioConfigTest, TypeMismatchIsAnError) {
  ScenarioConfig back;
  std::string error;
  EXPECT_FALSE(
      ScenarioConfig::from_json(R"({"nodes": "many"})", &back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ScenarioConfigTest, BadEnumValueIsAnError) {
  ScenarioConfig back;
  std::string error;
  EXPECT_FALSE(ScenarioConfig::from_json(R"({"workload": "turbo"})", &back,
                                         &error));
  EXPECT_FALSE(error.empty());
}

TEST(ScenarioConfigTest, BadTrafficBackendIsAnError) {
  ScenarioConfig back;
  std::string error;
  EXPECT_FALSE(ScenarioConfig::from_json(
      R"({"traffic_backend": "hologram"})", &back, &error));
  EXPECT_NE(error.find("backend"), std::string::npos) << error;
}

TEST(ScenarioConfigTest, MalformedJsonLeavesOutputUntouched) {
  ScenarioConfig back;
  back.design = "sentinel";
  std::string error;
  EXPECT_FALSE(ScenarioConfig::from_json("{\"nodes\": ", &back, &error));
  EXPECT_EQ(back.design, "sentinel");
}

TEST(ScenarioConfigTest, ValidateRejectsBadRanges) {
  std::string error;
  ScenarioConfig cfg;
  cfg.nodes = 1;
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.locality_x = 1.5;
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.node_mtbf_slots = 1000.0;  // MTBF without MTTR
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("MTTR"), std::string::npos) << error;

  cfg = ScenarioConfig{};
  cfg.fault_script = "fail node 0 @ 1";
  cfg.fault_script_path = "script.txt";
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  EXPECT_TRUE(cfg.validate(&error)) << error;
}

TEST(ScenarioConfigTest, ValidateRejectsBadControlFaultFields) {
  std::string error;
  ScenarioConfig cfg;
  cfg.epoch_slots = 100;
  cfg.control_outages = {10, 20, 30};  // odd length: not (start, end) pairs
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.epoch_slots = 100;
  cfg.control_outages = {50, 40};  // end before start
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.epoch_slots = 100;
  cfg.controller_mtbf_slots = 1000.0;  // MTBF without MTTR
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.epoch_slots = 100;
  cfg.safe_mode = "panic";
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("safe_mode"), std::string::npos) << error;

  cfg = ScenarioConfig{};
  cfg.epoch_slots = 100;
  cfg.estimate_noise = 1.5;
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.retransmit_jitter = -0.1;
  EXPECT_FALSE(cfg.validate(&error));

  // Any control-plane fault knob without a control plane to break is a
  // config error, not a silent no-op.
  cfg = ScenarioConfig{};
  cfg.control_outages = {10, 20};
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("epoch_slots"), std::string::npos) << error;

  // The same knobs with a control loop are fine.
  cfg.epoch_slots = 100;
  EXPECT_TRUE(cfg.validate(&error)) << error;
}

TEST(ScenarioConfigTest, ValidateRejectsBadWorkloadAndTransportFields) {
  std::string error;
  ScenarioConfig cfg;
  cfg.workload = WorkloadKind::kIncast;
  cfg.nodes = 16;
  cfg.incast_fanin = 16;  // fanin must leave room for the receiver
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("incast_fanin"), std::string::npos) << error;

  // Other workloads tolerate any default fanin at small N.
  cfg = ScenarioConfig{};
  cfg.nodes = 16;
  cfg.cliques = 4;
  EXPECT_TRUE(cfg.validate(&error)) << error;

  cfg = ScenarioConfig{};
  cfg.workload = WorkloadKind::kCollective;
  cfg.collective_kind = "butterfly";
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("collective_kind"), std::string::npos) << error;

  cfg = ScenarioConfig{};
  cfg.rack_local_frac = 1.5;
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.oversub_factor = 0.5;
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.transport = "quic";
  EXPECT_FALSE(cfg.validate(&error));
  EXPECT_NE(error.find("transport"), std::string::npos) << error;

  // The closed-loop transport needs a flow driver to pump it.
  cfg = ScenarioConfig{};
  cfg.transport = "dctcp";
  cfg.workload = WorkloadKind::kSaturation;
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.transport = "dctcp";
  cfg.init_cwnd_cells = 64;
  cfg.max_cwnd_cells = 32;  // init above max
  EXPECT_FALSE(cfg.validate(&error));

  cfg = ScenarioConfig{};
  cfg.dctcp_gain = 0.0;
  EXPECT_FALSE(cfg.validate(&error));

  // The happy paths: each new workload and the transport validate.
  cfg = ScenarioConfig{};
  cfg.workload = WorkloadKind::kIncast;
  cfg.transport = "dctcp";
  cfg.ecn_threshold_cells = 8;
  EXPECT_TRUE(cfg.validate(&error)) << error;
  cfg.workload = WorkloadKind::kCollective;
  EXPECT_TRUE(cfg.validate(&error)) << error;
  cfg.workload = WorkloadKind::kOversubRack;
  EXPECT_TRUE(cfg.validate(&error)) << error;
}

TEST(ScenarioConfigTest, LoadFileRoundTrips) {
  const ScenarioConfig cfg = non_default_config();
  const std::string path = ::testing::TempDir() + "scenario_cfg_test.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  const std::string doc = cfg.to_json();
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);

  ScenarioConfig back;
  std::string error;
  ASSERT_TRUE(ScenarioConfig::load_file(path, &back, &error)) << error;
  EXPECT_EQ(doc, back.to_json());
  std::remove(path.c_str());

  EXPECT_FALSE(
      ScenarioConfig::load_file("/nonexistent/scenario.json", &back, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace sorn
