// Backend equivalence at the scenario level: the demand backend is a
// memory-layout choice, never a semantics choice. The same scenario run
// with dense, sparse, and procedural demand — across thread counts, with
// a fault blast, a mid-run reconfigure, and the closed-loop control plane
// (including the degraded-estimate filter) in play — must produce
// byte-identical metrics JSON, time-series CSV and trace JSONL.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario_runner.h"

namespace sorn {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct Artifacts {
  std::string metrics_json;
  std::string timeseries_csv;
  std::string trace_jsonl;
  std::uint64_t delivered = 0;
};

Artifacts run_scenario(DemandBackend backend, int threads) {
  // PID-unique path: ctest runs each TEST of this binary as its own
  // concurrent process, so a fixed name would collide.
  const std::string trace_path =
      testing::TempDir() + "backend_eq_" + std::to_string(::getpid()) + "_" +
      demand_backend_name(backend) + "_" + std::to_string(threads) +
      ".jsonl";

  ScenarioConfig cfg;
  cfg.design = "sorn";
  cfg.nodes = 64;
  cfg.cliques = 8;
  cfg.locality_x = 0.6;
  cfg.traffic_backend = backend;
  cfg.propagation_ns = 0;
  cfg.threads = threads;
  cfg.load = 0.4;
  cfg.slots = 400;
  cfg.drain_slots = 2000;
  cfg.sample_every = 10;
  cfg.retransmit_timeout = 64;
  // Fault blast mid-run, while the control loop replans over a stale,
  // noisy estimate — the paths where a backend could smuggle in a
  // different fold order or RNG consumption.
  cfg.fault_script = "100 fail-node 3\n100 fail-node 17\n"
                     "220 heal-node 3\n220 heal-node 17\n";
  cfg.epoch_slots = 100;
  cfg.estimate_stale_epochs = 1;
  cfg.estimate_noise = 0.1;
  cfg.trace_path = trace_path;

  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  EXPECT_NE(runner, nullptr) << error;
  EXPECT_EQ(runner->traffic().backend(), backend);
  // Mid-run reconfigure from the slot hook: a schedule swap on top of the
  // fault window.
  const BuiltDesign& design = runner->design();
  runner->set_slot_hook([&design](SlottedNetwork& net, Slot slot) {
    if (slot == 150) net.reconfigure(design.schedule, design.router);
  });
  EXPECT_TRUE(runner->run(&error)) << error;

  Artifacts out;
  out.metrics_json = runner->metrics_json();
  out.timeseries_csv = runner->timeseries_csv();
  out.trace_jsonl = slurp(trace_path);
  out.delivered = runner->metrics().delivered_cells();
  std::remove(trace_path.c_str());
  return out;
}

TEST(BackendEquivalenceTest, ArtifactsAreByteIdenticalAcrossBackends) {
  const Artifacts want = run_scenario(DemandBackend::kDense, 1);
  EXPECT_GT(want.delivered, 0u);
  EXPECT_FALSE(want.trace_jsonl.empty());
  for (const DemandBackend backend :
       {DemandBackend::kDense, DemandBackend::kSparse,
        DemandBackend::kProcedural}) {
    for (const int threads : {1, 4, 7}) {
      if (backend == DemandBackend::kDense && threads == 1) continue;
      const Artifacts got = run_scenario(backend, threads);
      const std::string label = std::string(demand_backend_name(backend)) +
                                "/" + std::to_string(threads) + " threads";
      EXPECT_EQ(got.metrics_json, want.metrics_json) << label;
      EXPECT_EQ(got.timeseries_csv, want.timeseries_csv) << label;
      EXPECT_EQ(got.trace_jsonl, want.trace_jsonl) << label;
    }
  }
}

TEST(BackendEquivalenceTest, SaturationWorkloadMatchesAcrossBackends) {
  // The closed-loop saturation sources draw destinations straight from
  // the demand (sample_dst) — cover that RNG path too.
  auto run_sat = [](DemandBackend backend) {
    ScenarioConfig cfg;
    cfg.design = "sorn";
    cfg.nodes = 32;
    cfg.cliques = 4;
    cfg.locality_x = 0.7;
    cfg.traffic_backend = backend;
    cfg.propagation_ns = 0;
    cfg.threads = 1;
    cfg.workload = WorkloadKind::kSaturation;
    cfg.warmup_slots = 500;
    cfg.measure_slots = 1000;
    std::string error;
    auto runner = ScenarioRunner::create(cfg, &error);
    EXPECT_NE(runner, nullptr) << error;
    EXPECT_TRUE(runner->run(&error)) << error;
    return std::pair<double, std::string>(runner->saturation_r(),
                                          runner->metrics_json());
  };
  const auto want = run_sat(DemandBackend::kDense);
  const auto sparse = run_sat(DemandBackend::kSparse);
  const auto proc = run_sat(DemandBackend::kProcedural);
  EXPECT_GT(want.first, 0.0);
  EXPECT_EQ(sparse.first, want.first);
  EXPECT_EQ(proc.first, want.first);
  EXPECT_EQ(sparse.second, want.second);
  EXPECT_EQ(proc.second, want.second);
}

TEST(BackendEquivalenceTest, TrafficAccessorAssertsBeforeCreate) {
  // Satellite of the handle refactor: the runner exposes the demand only
  // after create() built it; there is no placeholder matrix to read.
  std::string error;
  ScenarioConfig cfg;
  cfg.nodes = 16;
  cfg.cliques = 4;
  auto runner = ScenarioRunner::create(cfg, &error);
  ASSERT_NE(runner, nullptr) << error;
  EXPECT_EQ(runner->traffic().node_count(), 16);
}

}  // namespace
}  // namespace sorn
