#include "obs/timeseries.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(TimeSeriesTest, DecimationGatesSamples) {
  TimeSeriesSampler s(10);
  EXPECT_TRUE(s.due(0));
  EXPECT_FALSE(s.due(1));
  EXPECT_FALSE(s.due(9));
  EXPECT_TRUE(s.due(10));
  EXPECT_TRUE(s.due(2000));
}

TEST(TimeSeriesTest, RecordsDeltasOfCumulativeCounters) {
  TimeSeriesSampler s(1);
  s.record(0, /*injected*/ 10, /*delivered*/ 5, /*dropped*/ 1,
           /*forwarded*/ 2, /*queued*/ 4, /*max_voq*/ 3, /*open*/ 1);
  s.record(1, 25, 20, 1, 6, 5, 2, 0);
  ASSERT_EQ(s.samples().size(), 2u);
  EXPECT_EQ(s.samples()[0].injected, 10u);
  EXPECT_EQ(s.samples()[0].delivered, 5u);
  EXPECT_EQ(s.samples()[1].injected, 15u);   // 25 - 10
  EXPECT_EQ(s.samples()[1].delivered, 15u);  // 20 - 5
  EXPECT_EQ(s.samples()[1].dropped, 0u);     // unchanged counter
  EXPECT_EQ(s.samples()[1].forwarded, 4u);
  // Gauges are instantaneous, not differenced.
  EXPECT_EQ(s.samples()[1].queued_cells, 5u);
  EXPECT_EQ(s.samples()[1].max_voq_depth, 2u);
  EXPECT_EQ(s.samples()[1].open_flows, 0u);
}

TEST(TimeSeriesTest, CsvRendering) {
  TimeSeriesSampler s(5);
  s.record(0, 1, 2, 3, 4, 5, 6, 7);
  EXPECT_EQ(s.to_csv(),
            "slot,injected,delivered,dropped,forwarded,queued_cells,"
            "max_voq_depth,open_flows\n"
            "0,1,2,3,4,5,6,7\n");
}

TEST(TimeSeriesTest, ClearResetsDeltaBaseline) {
  TimeSeriesSampler s(1);
  s.record(0, 100, 100, 0, 0, 0, 0, 0);
  s.clear();
  EXPECT_TRUE(s.samples().empty());
  s.record(5, 10, 10, 0, 0, 0, 0, 0);
  EXPECT_EQ(s.samples()[0].injected, 10u);
}

}  // namespace
}  // namespace sorn
