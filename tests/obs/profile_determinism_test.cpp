// Profiling must sit outside the simulation: attaching the profiler may
// not change a single byte of the sim artifacts (metrics JSON, trace
// JSONL, time-series CSV), at any thread count, even with scripted
// faults, retransmission, and a mid-run reconfigure in play. The
// profile.json itself is wall-clock data and is NOT compared — only its
// presence and shape are checked.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/scenario_runner.h"

namespace sorn {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct Artifacts {
  std::string metrics_json;
  std::string timeseries_csv;
  std::string trace_jsonl;
  std::string profile_json;
  std::uint64_t delivered = 0;
};

Artifacts run_scenario(int threads, bool profile) {
  // PID-unique path: ctest runs each TEST of this binary as its own
  // concurrent process, so a fixed name would be written by several
  // processes at once.
  const std::string trace_path =
      testing::TempDir() + "prof_det_" + std::to_string(::getpid()) + "_" +
      std::to_string(threads) + (profile ? "_p" : "_np") + ".jsonl";

  ScenarioConfig cfg;
  cfg.design = "sorn";
  cfg.nodes = 32;
  cfg.cliques = 8;
  cfg.locality_x = 0.6;
  cfg.propagation_ns = 0;
  cfg.threads = threads;
  cfg.load = 0.4;
  cfg.slots = 400;
  cfg.drain_slots = 2000;
  cfg.sample_every = 10;
  cfg.retransmit_timeout = 64;
  cfg.fault_script = "100 fail-node 3\n100 fail-node 17\n"
                     "220 heal-node 3\n220 heal-node 17\n";
  cfg.trace_path = trace_path;
  cfg.profile = profile;

  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  EXPECT_NE(runner, nullptr) << error;
  // Mid-run reconfigure from the slot hook (profiled under slot_hook):
  // exercises the schedule-advance + gauge paths across a schedule swap.
  const BuiltDesign& design = runner->design();
  runner->set_slot_hook([&design](SlottedNetwork& net, Slot slot) {
    if (slot == 150) net.reconfigure(design.schedule, design.router);
  });
  EXPECT_TRUE(runner->run(&error)) << error;

  Artifacts out;
  out.metrics_json = runner->metrics_json();
  out.timeseries_csv = runner->timeseries_csv();
  out.trace_jsonl = slurp(trace_path);
  out.profile_json = runner->profile_json();
  out.delivered = runner->metrics().delivered_cells();
  std::remove(trace_path.c_str());
  return out;
}

TEST(ProfileDeterminismTest, ArtifactsByteIdenticalWithProfilingOnOrOff) {
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Artifacts off = run_scenario(threads, false);
    const Artifacts on = run_scenario(threads, true);
    ASSERT_GT(off.delivered, 0u);
    EXPECT_EQ(on.metrics_json, off.metrics_json);
    EXPECT_EQ(on.timeseries_csv, off.timeseries_csv);
    ASSERT_FALSE(off.trace_jsonl.empty());
    EXPECT_EQ(on.trace_jsonl, off.trace_jsonl);
    EXPECT_TRUE(off.profile_json.empty());
    EXPECT_FALSE(on.profile_json.empty());
  }
}

TEST(ProfileDeterminismTest, ProfiledArtifactsByteIdenticalAcrossThreads) {
  const Artifacts t1 = run_scenario(1, true);
  const Artifacts t4 = run_scenario(4, true);
  EXPECT_EQ(t1.metrics_json, t4.metrics_json);
  EXPECT_EQ(t1.timeseries_csv, t4.timeseries_csv);
  EXPECT_EQ(t1.trace_jsonl, t4.trace_jsonl);
}

TEST(ProfileDeterminismTest, ProfileReportsEveryExercisedPhase) {
  const Artifacts prof = run_scenario(4, true);
  const std::string& json = prof.profile_json;
  EXPECT_NE(json.find("\"schema\":\"sorn-profile-v1\""), std::string::npos);
  // The scenario exercises faults, retransmission, the slot hook, the
  // parallel merge, and (from set_threads) the pool; all must appear.
  for (const char* phase :
       {"schedule_advance", "lane_sweep", "merge_replay", "voq_settle",
        "retransmit", "fault_tick", "slot_hook"}) {
    EXPECT_NE(json.find(std::string("\"phase\":\"") + phase + "\""),
              std::string::npos)
        << phase;
  }
  // Multi-threaded run: the pool utilization block carries the workers.
  EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
  // Gauges the network registers on attach.
  for (const char* gauge :
       {"voq_cells", "schedule_matchings", "flow_records",
        "retransmit_state", "metrics_distributions"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + gauge + "\""),
              std::string::npos)
        << gauge;
  }
}

}  // namespace
}  // namespace sorn
