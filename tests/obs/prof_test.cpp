// Unit tests for the self-profiling layer: PhaseProfiler aggregation,
// ScopedPhase nesting, MemoryAccountant gauges/cadence, ThreadPool
// utilization counters, and the profile.json export shape.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "obs/prof/memory_accountant.h"
#include "obs/prof/phase_profiler.h"
#include "obs/prof/profile_export.h"
#include "obs/prof/profiler.h"
#include "sim/parallel.h"

namespace sorn {
namespace {

TEST(PhaseProfilerTest, RecordAggregatesIntoSlotsAndTotals) {
  PhaseProfiler prof;
  // Slot 0: lane sweep runs twice (two lanes), settle once.
  prof.record(ProfPhase::kLaneSweep, 100);
  prof.record(ProfPhase::kLaneSweep, 50);
  prof.record(ProfPhase::kVoqSettle, 10);
  prof.end_slot();
  // Slot 1: lane sweep only.
  prof.record(ProfPhase::kLaneSweep, 200);
  prof.end_slot();

  EXPECT_EQ(prof.slots(), 2u);
  const auto& sweep = prof.stats(ProfPhase::kLaneSweep);
  EXPECT_EQ(sweep.calls, 3u);
  EXPECT_EQ(sweep.total_ns, 350u);
  EXPECT_EQ(sweep.active_slots, 2u);
  // Per-slot samples are the slot sums: {150, 200}.
  ASSERT_EQ(sweep.slot_ns.count(), 2u);
  EXPECT_DOUBLE_EQ(sweep.slot_ns.percentile(0.0), 150.0);
  EXPECT_DOUBLE_EQ(sweep.slot_ns.percentile(100.0), 200.0);

  const auto& settle = prof.stats(ProfPhase::kVoqSettle);
  EXPECT_EQ(settle.calls, 1u);
  EXPECT_EQ(settle.total_ns, 10u);
  // Only slots where the phase actually ran are sampled: no zero from
  // slot 1 diluting the distribution.
  EXPECT_EQ(settle.active_slots, 1u);
  EXPECT_EQ(settle.slot_ns.count(), 1u);
  EXPECT_DOUBLE_EQ(settle.slot_ns.percentile(50.0), 10.0);
}

TEST(PhaseProfilerTest, PhaseThatNeverRanStaysZero) {
  PhaseProfiler prof;
  prof.record(ProfPhase::kLaneSweep, 1);
  prof.end_slot();
  const auto& retx = prof.stats(ProfPhase::kRetransmit);
  EXPECT_EQ(retx.calls, 0u);
  EXPECT_EQ(retx.total_ns, 0u);
  EXPECT_EQ(retx.active_slots, 0u);
  EXPECT_EQ(retx.slot_ns.count(), 0u);
}

TEST(PhaseProfilerTest, PhaseNamesAreStableIdentifiers) {
  EXPECT_STREQ(prof_phase_name(ProfPhase::kScheduleAdvance),
               "schedule_advance");
  EXPECT_STREQ(prof_phase_name(ProfPhase::kLaneSweep), "lane_sweep");
  EXPECT_STREQ(prof_phase_name(ProfPhase::kTelemetryFlush),
               "telemetry_flush");
}

TEST(ScopedPhaseTest, NullProfilerIsANoOp) {
  // The detached configuration every caller gets by default.
  ScopedPhase scope(nullptr, ProfPhase::kLaneSweep);
}

TEST(ScopedPhaseTest, NestingCountsInclusively) {
  PhaseProfiler prof;
  {
    ScopedPhase outer(&prof, ProfPhase::kSlotHook);
    ScopedPhase inner(&prof, ProfPhase::kFaultTick);
    // Inner closes first, then outer: both record, outer spans inner.
  }
  prof.end_slot();
  const auto& outer = prof.stats(ProfPhase::kSlotHook);
  const auto& inner = prof.stats(ProfPhase::kFaultTick);
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_EQ(inner.calls, 1u);
  EXPECT_GE(outer.total_ns, inner.total_ns);
}

TEST(MemoryAccountantTest, ProvidersTrackValueAndPeak) {
  MemoryAccountant mem;
  std::uint64_t voq = 100;
  mem.register_provider("voq_cells", [&voq] { return voq; });
  mem.sample();
  voq = 500;
  mem.sample();
  voq = 200;
  mem.sample();

  const auto gauges = mem.snapshot();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].name, "voq_cells");
  EXPECT_EQ(gauges[0].bytes, 200u);       // last sample
  EXPECT_EQ(gauges[0].peak_bytes, 500u);  // high-water mark
  EXPECT_EQ(mem.samples(), 3u);
  EXPECT_GT(mem.peak_rss_bytes(), 0u);  // process RSS is never zero
}

TEST(MemoryAccountantTest, SetBytesGaugeAndSortedSnapshot) {
  MemoryAccountant mem;
  mem.set_bytes("zeta", 10);
  mem.set_bytes("alpha", 20);
  mem.set_bytes("zeta", 5);  // drops the value, keeps the peak
  const auto gauges = mem.snapshot();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0].name, "alpha");
  EXPECT_EQ(gauges[1].name, "zeta");
  EXPECT_EQ(gauges[1].bytes, 5u);
  EXPECT_EQ(gauges[1].peak_bytes, 10u);
}

TEST(MemoryAccountantTest, RegisterReplacesProviderOfSameName) {
  MemoryAccountant mem;
  mem.register_provider("g", [] { return std::uint64_t{1}; });
  mem.register_provider("g", [] { return std::uint64_t{7}; });
  mem.sample();
  const auto gauges = mem.snapshot();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].bytes, 7u);
}

TEST(MemoryAccountantTest, TickSamplesOnTheCadence) {
  MemoryAccountant mem;
  mem.set_sample_every(4);
  mem.register_provider("g", [] { return std::uint64_t{1}; });
  for (Slot s = 0; s < 10; ++s) mem.tick(s);
  EXPECT_EQ(mem.samples(), 3u);  // slots 0, 4, 8
}

TEST(ThreadPoolProfilingTest, DisabledByDefaultAndCountersAccumulate) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.profiling_enabled());
  pool.enable_profiling(true);

  std::atomic<int> ran{0};
  pool.run_shards(8, [&ran](int) {
    // Enough work that at least some busy time registers on most clocks.
    volatile double x = 1.0;
    for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 0.5;
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 8);

  const PoolUtilization u = pool.utilization();
  EXPECT_EQ(u.threads, 2);
  EXPECT_EQ(u.batches, 1u);
  EXPECT_EQ(u.shards, 8u);
  EXPECT_GT(u.window_ns, 0u);
  ASSERT_EQ(u.workers.size(), 2u);
  std::uint64_t worker_shards = 0;
  std::uint64_t busy = 0;
  for (const PoolWorkerStats& w : u.workers) {
    worker_shards += w.shards;
    busy += w.busy_ns;
  }
  EXPECT_EQ(worker_shards, 8u);
  EXPECT_GT(busy, 0u);
}

TEST(ThreadPoolProfilingTest, InlinePoolAttributesToWorkerZero) {
  ThreadPool pool(1);
  pool.enable_profiling(true);
  pool.run_shards(3, [](int) {});
  const PoolUtilization u = pool.utilization();
  EXPECT_EQ(u.threads, 1);
  EXPECT_EQ(u.shards, 3u);
  ASSERT_EQ(u.workers.size(), 1u);
  EXPECT_EQ(u.workers[0].shards, 3u);
}

TEST(ProfileExportTest, JsonCarriesSchemaPhasesPoolAndGauges) {
  Profiler prof;
  prof.phases().record(ProfPhase::kLaneSweep, 1000);
  prof.phases().end_slot();
  prof.memory().set_bytes("schedule_matchings", 4096);
  prof.memory().sample();
  PoolUtilization pool;
  pool.threads = 2;
  pool.batches = 5;
  pool.workers.resize(2);
  prof.set_pool_utilization(pool);

  const std::string json = profile_to_json(prof);
  EXPECT_NE(json.find("\"schema\":\"sorn-profile-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"lane_sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"telemetry_flush\""), std::string::npos);
  EXPECT_NE(json.find("\"schedule_matchings\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(json.find("\"workers\":["), std::string::npos);
}

TEST(ProfileExportTest, SingleThreadedProfileHasEmptyPoolBlock) {
  Profiler prof;
  prof.phases().end_slot();
  const std::string json = profile_to_json(prof);
  EXPECT_FALSE(prof.has_pool_utilization());
  EXPECT_NE(json.find("\"threads\":1"), std::string::npos);
  EXPECT_NE(json.find("\"workers\":[]"), std::string::npos);
}

}  // namespace
}  // namespace sorn
