#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "routing/direct.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

NetworkConfig fast_config() {
  NetworkConfig c;
  c.lanes = 1;
  c.propagation_per_hop = 0;
  return c;
}

TEST(ExportTest, RunningStatsBlock) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  JsonWriter w;
  json_running_stats(w, s);
  EXPECT_EQ(w.str(),
            R"({"count":2,"mean":2,"stddev":1.4142135623730951,)"
            R"("min":1,"max":3})");
}

TEST(ExportTest, EmptyRunningStatsHasNullExtrema) {
  RunningStats s;
  JsonWriter w;
  json_running_stats(w, s);
  // min/max of the empty object are +/-inf, which JSON renders as null.
  EXPECT_NE(w.str().find("\"min\":null"), std::string::npos);
  EXPECT_NE(w.str().find("\"max\":null"), std::string::npos);
}

TEST(ExportTest, PercentilesBlockHasFixedKeys) {
  Percentiles p;
  for (int i = 1; i <= 4; ++i) p.add(static_cast<double>(i));
  JsonWriter w;
  json_percentiles(w, p);
  const std::string& s = w.str();
  for (const char* key : {"\"count\":4", "\"mean\":2.5", "\"p0\":1",
                          "\"p50\":2.5", "\"p100\":4"})
    EXPECT_NE(s.find(key), std::string::npos) << "missing " << key;
}

TEST(ExportTest, HistogramBlock) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  JsonWriter w;
  json_histogram(w, h);
  EXPECT_EQ(w.str(),
            R"({"total":3,"bins":[{"low":0,"count":1},{"low":1,"count":2}]})");
}

TEST(ExportTest, RunJsonCoversAggregatesAndTimeseries) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  Telemetry telemetry(TelemetryOptions{.sample_every = 1});
  net.set_telemetry(&telemetry);
  net.inject_flow(1, 0, 1, 512, /*flow_class=*/3);
  net.run(10);

  ExportOptions opts;
  opts.nodes = 4;
  const std::string json = run_to_json(net.metrics(), &telemetry, opts);
  for (const char* key :
       {"\"counters\"", "\"slots_run\":10", "\"completed_flows\":1",
        "\"delivered_per_slot\"", "\"cell_latency_ps\"",
        "\"cell_latency_histogram\"", "\"fct_ps\"", "\"fct_ps_by_class\"",
        "\"3\":", "\"queue_occupancy\"", "\"registry\"",
        "\"sim.flows_injected\":1", "\"timeseries\"", "\"sample_every\":1",
        "\"rows\""})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  // 10 sampled slots.
  EXPECT_EQ(telemetry.timeseries()->samples().size(), 10u);
}

TEST(ExportTest, RunJsonWithoutTelemetryOmitsRegistry) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  net.inject_cell(0, 1);
  net.run(2);
  const std::string json = run_to_json(net.metrics(), nullptr);
  EXPECT_EQ(json.find("\"registry\""), std::string::npos);
  EXPECT_EQ(json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("\"delivered_cells\":1"), std::string::npos);
}

TEST(ExportTest, WriteTextFileRoundTrip) {
  const std::string path = testing::TempDir() + "/sorn_export_test.json";
  ASSERT_TRUE(write_text_file(path, "{\"ok\":true}\n"));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "{\"ok\":true}\n");
  std::remove(path.c_str());
}

TEST(ExportTest, WriteTextFileFailsOnBadPath) {
  EXPECT_FALSE(write_text_file("/nonexistent-dir-xyz/out.json", "x"));
}

}  // namespace
}  // namespace sorn
