// Integration of the telemetry facade with the simulator and the control
// plane: events land in the trace with the right shape, counters count,
// and the sampler sees the per-slot trajectory.
#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include "control/control_plane.h"
#include "routing/direct.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"
#include "traffic/trace.h"

namespace sorn {
namespace {

NetworkConfig fast_config() {
  NetworkConfig c;
  c.lanes = 1;
  c.propagation_per_hop = 0;
  return c;
}

bool has_event(const MemoryTraceSink& sink, const std::string& needle) {
  for (const auto& line : sink.lines())
    if (line.find(needle) != std::string::npos) return true;
  return false;
}

TEST(TelemetryIntegrationTest, FlowLifecycleIsTraced) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  Telemetry telemetry;
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  net.set_telemetry(&telemetry);

  net.inject_flow(/*flow=*/7, /*src=*/0, /*dst=*/1, /*bytes=*/256,
                  /*flow_class=*/1);
  net.run(5);
  EXPECT_TRUE(has_event(sink, "\"ev\":\"flow_inject\",\"slot\":0,\"flow\":7"));
  EXPECT_TRUE(has_event(sink, "\"ev\":\"flow_complete\""));
  EXPECT_TRUE(has_event(sink, "\"class\":1"));
  EXPECT_EQ(telemetry.registry().counter("sim.flows_injected")->value(), 1u);
}

TEST(TelemetryIntegrationTest, DropAndFailureEventsAreTraced) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  NetworkConfig cfg = fast_config();
  cfg.max_queue_cells = 1;
  SlottedNetwork net(&s, &router, cfg);
  Telemetry telemetry;
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  net.set_telemetry(&telemetry);

  // Two cells into the same (0 -> 3) VOQ: the second tail-drops.
  net.inject_cell(0, 3);
  net.inject_cell(0, 3);
  EXPECT_EQ(net.metrics().dropped_cells(), 1u);
  EXPECT_TRUE(has_event(sink, "\"ev\":\"cell_drop\""));
  EXPECT_EQ(telemetry.registry().counter("sim.cells_dropped")->value(), 1u);

  net.fail_node(2);
  net.fail_circuit(0, 1);
  net.heal_node(2);
  net.heal_circuit(0, 1);
  EXPECT_TRUE(has_event(sink, "\"ev\":\"node_fail\",\"slot\":0,\"node\":2"));
  EXPECT_TRUE(has_event(sink, "\"ev\":\"circuit_fail\""));
  EXPECT_TRUE(has_event(sink, "\"ev\":\"node_heal\""));
  EXPECT_TRUE(has_event(sink, "\"ev\":\"circuit_heal\""));
  EXPECT_EQ(telemetry.registry().counter("sim.failures")->value(), 2u);
}

TEST(TelemetryIntegrationTest, SamplerRecordsDecimatedTrajectory) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  Telemetry telemetry(TelemetryOptions{.sample_every = 4});
  net.set_telemetry(&telemetry);

  net.inject_cell(0, 1);
  net.run(9);  // slots 0..8 -> samples at 0, 4, 8
  ASSERT_NE(telemetry.timeseries(), nullptr);
  const auto& samples = telemetry.timeseries()->samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].slot, 0);
  EXPECT_EQ(samples[1].slot, 4);
  EXPECT_EQ(samples[2].slot, 8);
  // The single cell was injected before slot 0's sample and delivered in
  // slot 0 (circuit 0->1 up at slot 0).
  EXPECT_EQ(samples[0].injected, 1u);
  EXPECT_EQ(samples[0].delivered, 1u);
  EXPECT_EQ(samples[0].queued_cells, 0u);
}

TEST(TelemetryIntegrationTest, ReconfigureIsTraced) {
  const CircuitSchedule s = ScheduleBuilder::round_robin(4);
  const CircuitSchedule s2 = ScheduleBuilder::round_robin(4);
  const DirectRouter router;
  SlottedNetwork net(&s, &router, fast_config());
  Telemetry telemetry;
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  net.set_telemetry(&telemetry);

  net.run(3);
  net.reconfigure(&s2, &router);
  EXPECT_TRUE(has_event(sink, "\"ev\":\"reconfigure\",\"slot\":3"));
  EXPECT_EQ(telemetry.registry().counter("sim.reconfigures")->value(), 1u);
}

TEST(TelemetryIntegrationTest, ControlPlaneReplanReasonsAreTraced) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 32;
  cfg.group_size = 8;
  cfg.burst_sigma = 0.2;
  cfg.seed = 9;
  SyntheticTrace trace(cfg);

  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {4, 8};
  opts.replan_threshold = 0.4;
  ControlPlane cp(32, opts);
  Telemetry telemetry;
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  cp.set_tracer(&telemetry.tracer());

  // First epoch plans unconditionally.
  EXPECT_TRUE(cp.on_epoch(trace.epoch_matrix(), 0));
  EXPECT_TRUE(has_event(sink, "\"ev\":\"replan\""));
  EXPECT_TRUE(has_event(sink, "\"reason\":\"first_observation\""));
  EXPECT_TRUE(has_event(sink, "\"ev\":\"reconfig_staged\""));

  // A placement shuffle moves the macro pattern past the threshold.
  cp.on_epoch(trace.epoch_matrix(), 100);
  trace.shuffle_roles();
  bool replanned = false;
  for (int e = 2; e < 6 && !replanned; ++e)
    replanned = cp.on_epoch(trace.epoch_matrix(), e * 100);
  ASSERT_TRUE(replanned);
  EXPECT_TRUE(has_event(sink, "\"reason\":\"threshold\""));

  // Applying the staged swap emits reconfig_applied (and the network's
  // own reconfigure event when the network is instrumented too).
  const CircuitSchedule initial = ScheduleBuilder::round_robin(32);
  const VlbRouter vlb(&initial, LbMode::kRandom);
  NetworkConfig netcfg;
  netcfg.propagation_per_hop = 0;
  SlottedNetwork net(&initial, &vlb, netcfg);
  net.set_telemetry(&telemetry);
  // Tick well past the staged swap's due slot (epoch slot + update delay).
  EXPECT_TRUE(cp.tick(net, 100000));
  EXPECT_TRUE(has_event(sink, "\"ev\":\"reconfig_applied\""));
  EXPECT_TRUE(has_event(sink, "\"ev\":\"reconfigure\""));
}

}  // namespace
}  // namespace sorn
