#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace sorn {
namespace {

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.begin_object()
      .field("a", std::int64_t{1})
      .key("b")
      .begin_array()
      .value(std::int64_t{2})
      .value("x")
      .end_array()
      .field("c", true)
      .end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,"x"],"c":true})");
}

TEST(JsonWriterTest, EscapesStrings) {
  std::string out;
  json_escape(out, "a\"b\\c\nd");
  EXPECT_EQ(out, R"("a\"b\\c\nd")");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(json_double(0.5), "0.5");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(std::nan("")), "null");
}

TEST(TracerTest, DisabledTracerEmitsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.flow_inject(0, 1, 2, 3, 4096, 0);  // must be a no-op, not a crash
  t.replan(0, "threshold", 0.5, 0.1, 0.7, 8, 2.0, 1);
}

TEST(TracerTest, FlowEventSchema) {
  MemoryTraceSink sink;
  Tracer t(&sink);
  t.flow_inject(5, 42, 1, 9, 4096, 2);
  t.flow_complete(17, 42, 1200000, 2);
  ASSERT_EQ(sink.lines().size(), 2u);
  EXPECT_EQ(sink.lines()[0],
            R"({"ev":"flow_inject","slot":5,"flow":42,"src":1,"dst":9,)"
            R"("bytes":4096,"class":2})");
  EXPECT_EQ(sink.lines()[1],
            R"({"ev":"flow_complete","slot":17,"flow":42,)"
            R"("fct_ps":1200000,"class":2})");
}

TEST(TracerTest, ControlPlaneEventSchema) {
  MemoryTraceSink sink;
  Tracer t(&sink);
  t.replan(100, "locality_degradation", 0.125, 0.25, 0.5, 8, 2.0, 3);
  t.reconfig_staged(100, 150, 8, 2.0, false);
  t.reconfig_applied(150, 2);
  ASSERT_EQ(sink.lines().size(), 3u);
  EXPECT_EQ(sink.lines()[0],
            R"({"ev":"replan","slot":100,"reason":"locality_degradation",)"
            R"("macro_change":0.125,"locality_estimate":0.25,)"
            R"("planned_locality":0.5,"cliques":8,"q":2,"replans":3})");
  EXPECT_EQ(sink.lines()[1],
            R"({"ev":"reconfig_staged","slot":100,"due":150,"cliques":8,)"
            R"("q":2,"weighted":false})");
  EXPECT_EQ(sink.lines()[2],
            R"({"ev":"reconfig_applied","slot":150,"swaps_applied":2})");
}

TEST(TracerTest, FailureEventSchema) {
  MemoryTraceSink sink;
  Tracer t(&sink);
  t.node_fail(7, 3);
  t.circuit_fail(8, 1, 2);
  t.node_heal(9, 3);
  t.circuit_heal(10, 1, 2);
  ASSERT_EQ(sink.lines().size(), 4u);
  EXPECT_EQ(sink.lines()[0], R"({"ev":"node_fail","slot":7,"node":3})");
  EXPECT_EQ(sink.lines()[1],
            R"({"ev":"circuit_fail","slot":8,"src":1,"dst":2})");
  EXPECT_EQ(sink.lines()[2], R"({"ev":"node_heal","slot":9,"node":3})");
  EXPECT_EQ(sink.lines()[3],
            R"({"ev":"circuit_heal","slot":10,"src":1,"dst":2})");
}

TEST(FileTraceSinkTest, WritesJsonlFraming) {
  const std::string path =
      testing::TempDir() + "/sorn_trace_test.jsonl";
  {
    FileTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    Tracer t(&sink);
    t.reconfigure(3);
    t.cell_drop(4, 0, 1, 99);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(),
            "{\"ev\":\"reconfigure\",\"slot\":3}\n"
            "{\"ev\":\"cell_drop\",\"slot\":4,\"at\":0,\"next_hop\":1,"
            "\"flow\":99}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sorn
