#include "obs/registry.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(CounterRegistryTest, CreatesOnFirstUseAndReturnsSameCounter) {
  CounterRegistry reg;
  Counter* a = reg.counter("cells.dropped");
  Counter* b = reg.counter("cells.dropped");
  EXPECT_EQ(a, b);
  a->inc();
  b->inc(3);
  EXPECT_EQ(reg.counter("cells.dropped")->value(), 4u);
}

TEST(CounterRegistryTest, PointersSurviveLaterRegistrations) {
  CounterRegistry reg;
  Counter* first = reg.counter("a");
  // Force rebalancing / new node allocations.
  for (int i = 0; i < 100; ++i)
    reg.counter(("c" + std::to_string(i)).c_str())->inc();
  first->inc(7);
  EXPECT_EQ(reg.counter("a")->value(), 7u);
}

TEST(CounterRegistryTest, SnapshotIsNameSorted) {
  CounterRegistry reg;
  reg.counter("zebra")->inc(1);
  reg.counter("alpha")->inc(2);
  reg.counter("mid")->inc(3);
  const auto snap = reg.counters();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "alpha");
  EXPECT_EQ(snap[0].second, 2u);
  EXPECT_EQ(snap[1].first, "mid");
  EXPECT_EQ(snap[2].first, "zebra");
}

TEST(CounterRegistryTest, GaugesKeepLastValue) {
  CounterRegistry reg;
  Gauge* g = reg.gauge("queue.depth");
  g->set(1.5);
  g->set(4.25);
  EXPECT_DOUBLE_EQ(reg.gauge("queue.depth")->value(), 4.25);
  const auto snap = reg.gauges();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "queue.depth");
}

TEST(CounterRegistryTest, ResetZeroesCountersOnly) {
  CounterRegistry reg;
  reg.counter("n")->inc(9);
  reg.gauge("g")->set(2.0);
  reg.reset();
  EXPECT_EQ(reg.counter("n")->value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g")->value(), 2.0);
}

}  // namespace
}  // namespace sorn
