// Determinism regression: telemetry must not perturb the simulation, and
// two runs of the same seed/config must export byte-identical artifacts
// (JSON summary, CSV time series, JSONL trace). Guards against
// nondeterminism creeping in via hash-map iteration order, uninitialized
// state, or pointer-keyed output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sorn.h"
#include "obs/export.h"
#include "sim/workload_driver.h"
#include "traffic/flow_size.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

struct RunArtifacts {
  std::string metrics_json;
  std::string timeseries_csv;
  std::vector<std::string> trace_lines;
  std::uint64_t delivered = 0;
};

RunArtifacts run_workload(bool with_telemetry) {
  SornConfig cfg;
  cfg.nodes = 16;
  cfg.cliques = 4;
  cfg.locality_x = 0.5;
  cfg.propagation_per_hop = 0;
  const SornNetwork net = SornNetwork::build(cfg);
  SlottedNetwork sim = net.make_network();

  Telemetry telemetry(TelemetryOptions{.sample_every = 5});
  MemoryTraceSink sink;
  telemetry.set_trace_sink(&sink);
  if (with_telemetry) sim.set_telemetry(&telemetry);

  const TrafficMatrix tm = patterns::locality_mix(net.cliques(), 0.5);
  const FlowSizeDist sizes = FlowSizeDist::pfabric_web_search();
  const double node_bw =
      static_cast<double>(sim.config().cell_bytes) * 8.0 /
      (static_cast<double>(sim.config().slot_duration) * 1e-12);
  FlowArrivals arrivals(&tm, &sizes, node_bw, /*load=*/0.4, Rng(1));
  WorkloadDriver driver(&arrivals);
  driver.run_until(sim, 3000 * sim.config().slot_duration, 2000);

  RunArtifacts out;
  ExportOptions eopts;
  eopts.nodes = cfg.nodes;
  out.metrics_json =
      run_to_json(sim.metrics(), with_telemetry ? &telemetry : nullptr, eopts);
  if (with_telemetry) out.timeseries_csv = telemetry.timeseries()->to_csv();
  out.trace_lines = sink.lines();
  out.delivered = sim.metrics().delivered_cells();
  return out;
}

TEST(DeterminismTest, IdenticalRunsExportByteIdenticalArtifacts) {
  const RunArtifacts a = run_workload(true);
  const RunArtifacts b = run_workload(true);
  ASSERT_GT(a.delivered, 0u);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.timeseries_csv, b.timeseries_csv);
  ASSERT_FALSE(a.trace_lines.empty());
  EXPECT_EQ(a.trace_lines, b.trace_lines);
}

TEST(DeterminismTest, TelemetryDoesNotPerturbTheSimulation) {
  const RunArtifacts with = run_workload(true);
  const RunArtifacts without = run_workload(false);
  EXPECT_EQ(with.delivered, without.delivered);
}

}  // namespace
}  // namespace sorn
