// SafeModeGuard: the data plane's behavior when the controller goes
// dark. kHold must not touch the live generation; kVlb must swap to the
// oblivious floor on the down edge and restore the saved generation on
// recovery — and cells must keep flowing throughout.
#include "control/safe_mode.h"

#include <gtest/gtest.h>

#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {
namespace {

NetworkConfig fast_config() {
  NetworkConfig c;
  c.lanes = 1;
  c.slot_duration = 100 * 1000;
  c.propagation_per_hop = 0;
  return c;
}

TEST(SafeModeGuardTest, HoldPolicyAccountsWithoutSwapping) {
  const CircuitSchedule sched = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&sched, LbMode::kFirstAvailable);
  SlottedNetwork net(&sched, &router, fast_config());
  SafeModeGuard guard(8, SafeModePolicy::kHold);

  guard.on_controller_state(net, true, 0);
  EXPECT_FALSE(guard.active());
  guard.on_controller_state(net, false, 1);
  EXPECT_TRUE(guard.active());
  // Holding the last committed generation means exactly that: the live
  // schedule and router are untouched.
  EXPECT_EQ(net.schedule(), &sched);
  EXPECT_EQ(net.router(), &router);
  guard.on_controller_state(net, false, 2);
  guard.on_controller_state(net, true, 3);
  EXPECT_FALSE(guard.active());
  EXPECT_EQ(guard.activations(), 1u);
  EXPECT_EQ(guard.slots_in_safe_mode(), 2u);
}

TEST(SafeModeGuardTest, VlbPolicySwapsAndRestores) {
  const CircuitSchedule sched = ScheduleBuilder::round_robin(8);
  const VlbRouter router(&sched, LbMode::kFirstAvailable);
  SlottedNetwork net(&sched, &router, fast_config());
  SafeModeGuard guard(8, SafeModePolicy::kVlb);

  guard.on_controller_state(net, false, 0);
  EXPECT_TRUE(guard.active());
  EXPECT_NE(net.schedule(), &sched);  // swapped to the guard's fallback
  EXPECT_NE(net.router(), &router);

  // The fabric still moves cells while in safe mode.
  net.inject_cell(0, 5);
  net.run(2 * net.schedule()->period());
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);

  guard.on_controller_state(net, true, 10);
  EXPECT_FALSE(guard.active());
  EXPECT_EQ(net.schedule(), &sched);  // saved generation restored
  EXPECT_EQ(net.router(), &router);
  EXPECT_EQ(guard.activations(), 1u);
}

TEST(SafeModeGuardTest, RepeatedOutagesCountEachActivation) {
  const CircuitSchedule sched = ScheduleBuilder::round_robin(4);
  const VlbRouter router(&sched, LbMode::kFirstAvailable);
  SlottedNetwork net(&sched, &router, fast_config());
  SafeModeGuard guard(4, SafeModePolicy::kVlb);

  for (int episode = 0; episode < 3; ++episode) {
    guard.on_controller_state(net, false, episode * 10);
    guard.on_controller_state(net, false, episode * 10 + 1);
    guard.on_controller_state(net, true, episode * 10 + 2);
  }
  EXPECT_EQ(guard.activations(), 3u);
  EXPECT_EQ(guard.slots_in_safe_mode(), 6u);
  EXPECT_EQ(net.schedule(), &sched);
  EXPECT_EQ(net.router(), &router);
}

}  // namespace
}  // namespace sorn
