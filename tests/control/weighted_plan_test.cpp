// Weighted plans end-to-end: optimizer emits inter_weights, the reconfig
// manager builds a weighted schedule, and gravity traffic benefits.
#include <gtest/gtest.h>

#include "control/reconfig.h"
#include "core/sorn.h"
#include "sim/saturation.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(WeightedPlanTest, OptimizerEmitsWeightsWhenEnabled) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::gravity(cliques, {3.0, 1.0, 1.0, 1.0});
  SornOptimizer::Options opts;
  opts.weighted_inter = true;
  const SornOptimizer optimizer(opts);
  const SornPlan plan = optimizer.plan_for_nc(tm, 4);
  ASSERT_EQ(plan.inter_weights.size(), 16u);
  // Aggregate reflects the gravity skew: pairs touching clique 0 carry
  // more demand. Clique labels may permute, so just check the aggregate
  // is non-uniform.
  double lo = 1e300;
  double hi = 0.0;
  for (CliqueId a = 0; a < 4; ++a) {
    for (CliqueId b = 0; b < 4; ++b) {
      if (a == b) continue;
      const double w = plan.inter_weights[static_cast<std::size_t>(a) * 4 +
                                          static_cast<std::size_t>(b)];
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
  }
  EXPECT_GT(hi, lo * 1.5);
}

TEST(WeightedPlanTest, OptimizerOmitsWeightsByDefault) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::gravity(cliques, {3.0, 1.0, 1.0, 1.0});
  const SornOptimizer optimizer;
  EXPECT_TRUE(optimizer.plan_for_nc(tm, 4).inter_weights.empty());
}

TEST(WeightedPlanTest, ReconfigBuildsWeightedSchedule) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::gravity(cliques, {4.0, 1.0, 1.0, 1.0});
  SornOptimizer::Options oopts;
  oopts.weighted_inter = true;
  const SornOptimizer optimizer(oopts);
  SornPlan plan = optimizer.plan_for_nc(tm, 4);

  const CircuitSchedule initial = ScheduleBuilder::round_robin(32);
  const SornRouter* unused = nullptr;
  (void)unused;
  NetworkConfig ncfg;
  ncfg.propagation_per_hop = 0;
  // Bootstrap with a VLB-ish direct router via a SORN flat build instead:
  SornConfig bootstrap;
  bootstrap.nodes = 32;
  bootstrap.cliques = 32;
  bootstrap.propagation_per_hop = 0;
  const SornNetwork flat = SornNetwork::build(bootstrap);
  SlottedNetwork net = flat.make_network();

  ReconfigManager mgr;
  mgr.request_swap(std::move(plan), net.now());
  EXPECT_TRUE(mgr.tick(net, net.now()));
  ASSERT_NE(mgr.schedule(), nullptr);
  // The swapped-in schedule has both slot kinds and remains routable.
  EXPECT_GT(mgr.schedule()->kind_fraction(SlotKind::kIntra), 0.0);
  EXPECT_GT(mgr.schedule()->kind_fraction(SlotKind::kInter), 0.0);
  net.inject_cell(0, 31);
  net.run(2000);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

TEST(WeightedPlanTest, WeightedBeatsUniformOnSkewedPairTraffic) {
  // Clique-ring: balanced node loads, skewed pair structure — the regime
  // where inter-slot reweighting helps (a hot-*clique* gravity pattern
  // would bottleneck on node bandwidth instead).
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::clique_ring(cliques, 0.4, 0.9);
  const double x = tm.locality_ratio(cliques);
  const Rational q = Rational::approximate(analysis::sorn_optimal_q(x), 6);

  SornConfig uniform_cfg;
  uniform_cfg.nodes = 32;
  uniform_cfg.cliques = 4;
  uniform_cfg.q = q;
  uniform_cfg.propagation_per_hop = 0;
  const SornNetwork uniform_net = SornNetwork::build(uniform_cfg);

  SornConfig weighted_cfg = uniform_cfg;
  weighted_cfg.inter_clique_weights = tm.aggregate(cliques);
  weighted_cfg.weighted_options.demand_alpha = 0.8;
  const SornNetwork weighted_net = SornNetwork::build(weighted_cfg);

  auto measure = [&](const SornNetwork& net) {
    SlottedNetwork sim = net.make_network();
    SaturationSource source(&tm, SaturationConfig{});
    return source.measure(sim, 5000, 6000);
  };
  const double r_uniform = measure(uniform_net);
  const double r_weighted = measure(weighted_net);
  EXPECT_GT(r_weighted, r_uniform * 1.05)
      << "uniform=" << r_uniform << " weighted=" << r_weighted;
}

}  // namespace
}  // namespace sorn
