// Control-plane recovery: a change in the failure set triggers a re-plan
// (traced with reason "failure"), failed nodes are masked out of the
// demand the optimizer sees, and the reconfiguration manager hands the
// failure view to every router generation it builds.
#include <gtest/gtest.h>

#include <string>

#include "control/control_plane.h"
#include "obs/trace.h"
#include "routing/failure_view.h"
#include "routing/vlb.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

ControlPlane::Options quiet_options() {
  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {4};
  // Thresholds high enough that only the failure trigger can fire after
  // the first plan.
  opts.replan_threshold = 10.0;
  opts.locality_degradation = 5.0;
  return opts;
}

TEST(FailureReplanTest, FailureSetChangeTriggersReplanWithReason) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::locality_mix(cliques, 0.7);
  FailureView view(32);

  ControlPlane cp(32, quiet_options());
  cp.set_failure_view(&view);
  Tracer tracer;
  MemoryTraceSink sink;
  tracer.set_sink(&sink);
  cp.set_tracer(&tracer);

  EXPECT_TRUE(cp.on_epoch(tm, 0));  // first observation
  EXPECT_FALSE(cp.on_epoch(tm, 1));
  EXPECT_EQ(cp.replans(), 1u);

  view.fail_node(5);
  EXPECT_TRUE(cp.on_epoch(tm, 2)) << "failure-set change must re-plan";
  EXPECT_EQ(cp.replans(), 2u);
  bool saw_failure_reason = false;
  for (const std::string& line : sink.lines())
    if (line.find("\"ev\":\"replan\"") != std::string::npos &&
        line.find("\"reason\":\"failure\"") != std::string::npos)
      saw_failure_reason = true;
  EXPECT_TRUE(saw_failure_reason) << "replan must be traced as \"failure\"";

  // Steady state with the failure in place: no further re-plans...
  EXPECT_FALSE(cp.on_epoch(tm, 3));
  // ...until the heal changes the set again.
  view.heal_node(5);
  EXPECT_TRUE(cp.on_epoch(tm, 4));
  EXPECT_EQ(cp.replans(), 3u);
}

TEST(FailureReplanTest, WithoutViewFailureTriggerIsInert) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::locality_mix(cliques, 0.7);
  ControlPlane cp(32, quiet_options());
  cp.on_epoch(tm, 0);
  for (int e = 1; e < 5; ++e) EXPECT_FALSE(cp.on_epoch(tm, e));
  EXPECT_EQ(cp.replans(), 1u);
}

TEST(FailureReplanTest, FailedNodesAreMaskedOutOfTheDemand) {
  // A hot node dominates the matrix. After it fails, the re-plan must see
  // zero demand for it — the plan's locality is computed over the masked
  // matrix, so the hot row/column no longer shapes the cliques.
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  TrafficMatrix tm = patterns::locality_mix(cliques, 0.7);
  const NodeId hot = 3;
  for (NodeId j = 0; j < 32; ++j) {
    if (j == hot) continue;
    tm.set(hot, j, tm.at(hot, j) + 100.0);
    tm.set(j, hot, tm.at(j, hot) + 100.0);
  }
  FailureView view(32);

  ControlPlane cp(32, quiet_options());
  cp.set_failure_view(&view);
  cp.on_epoch(tm, 0);
  view.fail_node(hot);
  ASSERT_TRUE(cp.on_epoch(tm, 1));
  // The plan is still a valid full partition (masking changes the demand,
  // not the node set — a healed node must have a clique to return to).
  EXPECT_EQ(cp.last_plan().cliques.node_count(), 32);
  EXPECT_EQ(cp.last_plan().cliques.clique_count(), 4);
}

TEST(FailureReplanTest, ReconfigHandsViewToEveryRouterGeneration) {
  const CircuitSchedule rr = ScheduleBuilder::round_robin(32);
  const VlbRouter vlb(&rr, LbMode::kRandom);
  NetworkConfig ncfg;
  ncfg.propagation_per_hop = 0;
  SlottedNetwork net(&rr, &vlb, ncfg);

  FailureView view(32);
  ReconfigManager::Options ropts;
  ropts.update_delay_slots = 0;
  ReconfigManager reconfig(ropts);
  reconfig.set_failure_view(&view);

  SornPlan plan;
  plan.cliques = CliqueAssignment::contiguous(32, 4);
  plan.q = Rational{2, 1};
  plan.locality_x = 0.7;
  reconfig.request_swap(plan, /*now=*/0);
  ASSERT_TRUE(reconfig.swap_pending());
  ASSERT_TRUE(reconfig.tick(net, 0)) << "zero-delay swap applies at once";
  ASSERT_NE(reconfig.router(), nullptr);
  // Every generation's router is born failure-aware.
  EXPECT_EQ(reconfig.router()->failure_view(), &view);

  // The next generation too.
  plan.cliques = CliqueAssignment::contiguous(32, 8);
  reconfig.request_swap(plan, /*now=*/1);
  ASSERT_TRUE(reconfig.tick(net, 1));
  EXPECT_EQ(reconfig.router()->failure_view(), &view);
}

}  // namespace
}  // namespace sorn
