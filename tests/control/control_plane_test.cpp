#include "control/control_plane.h"

#include <gtest/gtest.h>

#include "routing/vlb.h"
#include "topo/schedule_builder.h"
#include "traffic/trace.h"

namespace sorn {
namespace {

ControlPlane::Options test_options() {
  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {4, 8};
  opts.replan_threshold = 0.3;
  return opts;
}

TEST(ControlPlaneTest, FirstEpochAlwaysPlans) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 32;
  cfg.group_size = 8;
  SyntheticTrace trace(cfg);
  ControlPlane cp(32, test_options());
  EXPECT_TRUE(cp.on_epoch(trace.epoch_matrix(), 0));
  EXPECT_EQ(cp.replans(), 1u);
  EXPECT_TRUE(cp.reconfig().swap_pending());
}

TEST(ControlPlaneTest, StableEpochsDoNotReplan) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 32;
  cfg.group_size = 8;
  cfg.burst_sigma = 0.3;
  SyntheticTrace trace(cfg);
  ControlPlane cp(32, test_options());
  cp.on_epoch(trace.epoch_matrix(), 0);
  int replans = 0;
  for (int e = 1; e <= 6; ++e)
    if (cp.on_epoch(trace.epoch_matrix(), e * 100)) ++replans;
  EXPECT_EQ(replans, 0);
}

TEST(ControlPlaneTest, WorkloadShiftTriggersReplan) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 32;
  cfg.group_size = 8;
  cfg.burst_sigma = 0.2;
  cfg.seed = 9;
  SyntheticTrace trace(cfg);
  ControlPlane::Options opts = test_options();
  opts.replan_threshold = 0.4;
  ControlPlane cp(32, opts);
  cp.on_epoch(trace.epoch_matrix(), 0);
  cp.on_epoch(trace.epoch_matrix(), 100);
  trace.shuffle_roles();
  bool replanned = false;
  for (int e = 2; e < 5 && !replanned; ++e)
    replanned = cp.on_epoch(trace.epoch_matrix(), e * 100);
  EXPECT_TRUE(replanned);
  EXPECT_GE(cp.replans(), 2u);
}

TEST(ControlPlaneTest, EndToEndSwapIntoNetwork) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 32;
  cfg.group_size = 8;
  SyntheticTrace trace(cfg);

  const CircuitSchedule initial = ScheduleBuilder::round_robin(32);
  const VlbRouter vlb(&initial, LbMode::kRandom);
  NetworkConfig netcfg;
  netcfg.propagation_per_hop = 0;
  SlottedNetwork net(&initial, &vlb, netcfg);

  ControlPlane cp(32, test_options());
  cp.on_epoch(trace.epoch_matrix(), net.now());
  EXPECT_TRUE(cp.tick(net, net.now()));
  // The plan's locality should reflect the trace's planted structure.
  EXPECT_GT(cp.last_plan().locality_x, 0.2);
  net.inject_cell(0, 31);
  net.run(200);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

}  // namespace
}  // namespace sorn
