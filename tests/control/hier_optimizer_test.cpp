#include "control/hier_optimizer.h"

#include <gtest/gtest.h>

#include "traffic/patterns.h"
#include "util/rng.h"

namespace sorn {
namespace {

TEST(PermuteMatrixTest, ReindexesEntries) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 5.0);
  tm.set(2, 0, 3.0);
  const TrafficMatrix out = permute_matrix(tm, {2, 0, 1});
  EXPECT_DOUBLE_EQ(out.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(out.at(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(out.total(), tm.total());
}

TEST(HierOptimizerTest, RecoversPlantedTwoLevelStructure) {
  // Ground truth: regular 4x2x4 hierarchy with strong two-level locality,
  // scrambled by a random node relabeling.
  const NodeId n = 32;
  const Hierarchy truth = Hierarchy::regular(n, 4, 2);
  const TrafficMatrix clean = patterns::hier_locality_mix(truth, 0.55, 0.3);

  Rng rng(13);
  std::vector<NodeId> scramble(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) scramble[static_cast<std::size_t>(i)] = i;
  rng.shuffle(scramble);
  const TrafficMatrix observed = permute_matrix(clean, scramble);

  HierOptimizer::Options opts;
  opts.clusters = 4;
  opts.pods_per_cluster = 2;
  const HierOptimizer optimizer(opts);
  const HierPlan plan = optimizer.plan(observed);

  EXPECT_NEAR(plan.x1, 0.55, 0.05);
  EXPECT_NEAR(plan.x2, 0.3, 0.07);
  EXPECT_NEAR(plan.predicted_throughput,
              analysis::hier_throughput(plan.x1, plan.x2), 1e-12);
}

TEST(HierOptimizerTest, PositionsFormAPermutation) {
  const TrafficMatrix tm = patterns::uniform(24);
  HierOptimizer::Options opts;
  opts.clusters = 3;
  opts.pods_per_cluster = 2;
  const HierOptimizer optimizer(opts);
  const HierPlan plan = optimizer.plan(tm);
  std::vector<bool> seen(24, false);
  for (const NodeId pos : plan.position_of_node) {
    ASSERT_GE(pos, 0);
    ASSERT_LT(pos, 24);
    EXPECT_FALSE(seen[static_cast<std::size_t>(pos)]);
    seen[static_cast<std::size_t>(pos)] = true;
  }
}

TEST(HierOptimizerTest, SharesMatchLocality) {
  const Hierarchy truth = Hierarchy::regular(32, 4, 2);
  const TrafficMatrix tm = patterns::hier_locality_mix(truth, 0.5, 0.3);
  HierOptimizer::Options opts;
  opts.clusters = 4;
  opts.pods_per_cluster = 2;
  const HierOptimizer optimizer(opts);
  const HierPlan plan = optimizer.plan(tm);
  // Already in position space: the plan may relabel but the split is
  // label-invariant.
  const auto expected = analysis::hier_optimal_shares(plan.x1, plan.x2);
  EXPECT_EQ(plan.shares.intra, expected.intra);
  EXPECT_EQ(plan.shares.inter, expected.inter);
  EXPECT_EQ(plan.shares.global, expected.global);
}

TEST(HierOptimizerTest, RejectsIndivisibleDimensions) {
  const TrafficMatrix tm = patterns::uniform(30);
  HierOptimizer::Options opts;
  opts.clusters = 4;
  opts.pods_per_cluster = 2;
  const HierOptimizer optimizer(opts);
  EXPECT_DEATH(optimizer.plan(tm), "divide evenly");
}

}  // namespace
}  // namespace sorn
