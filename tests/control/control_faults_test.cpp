// ControlFaultModel: scripted and stochastic outage timelines, the
// degraded-estimate filter (staleness + seeded noise), and the
// determinism contract (same seed, same timeline, always).
#include "control/control_faults.h"

#include <gtest/gtest.h>

#include <vector>

#include "traffic/traffic_matrix.h"

namespace sorn {
namespace {

TEST(ControlFaultModelTest, ScriptedWindowsMergeAndCount) {
  ControlFaultOptions opts;
  opts.outages = {{10, 20}, {15, 30}};  // overlap: down on [10, 30)
  ControlFaultModel model(opts);
  std::vector<bool> up;
  for (Slot s = 0; s < 40; ++s) {
    model.tick(s);
    up.push_back(model.controller_up());
  }
  for (Slot s = 0; s < 40; ++s) {
    EXPECT_EQ(up[static_cast<std::size_t>(s)], !(s >= 10 && s < 30))
        << "slot " << s;
  }
  EXPECT_EQ(model.outages_started(), 1u);  // merged windows = one outage
  EXPECT_EQ(model.outage_slots(), 20u);
}

TEST(ControlFaultModelTest, DisjointWindowsAreSeparateOutages) {
  ControlFaultOptions opts;
  opts.outages = {{5, 8}, {20, 25}};
  ControlFaultModel model(opts);
  for (Slot s = 0; s < 40; ++s) model.tick(s);
  EXPECT_EQ(model.outages_started(), 2u);
  EXPECT_EQ(model.outage_slots(), 8u);
}

TEST(ControlFaultModelTest, TickReportsEdgesOnly) {
  ControlFaultOptions opts;
  opts.outages = {{3, 6}};
  ControlFaultModel model(opts);
  std::vector<Slot> edges;
  for (Slot s = 0; s < 10; ++s) {
    if (model.tick(s)) edges.push_back(s);
  }
  EXPECT_EQ(edges, (std::vector<Slot>{3, 6}));
}

TEST(ControlFaultModelTest, StochasticTimelineIsSeedDeterministic) {
  ControlFaultOptions opts;
  opts.mtbf_slots = 200.0;
  opts.mttr_slots = 50.0;
  opts.seed = 99;
  ControlFaultModel a(opts);
  ControlFaultModel b(opts);
  opts.seed = 100;
  ControlFaultModel c(opts);
  bool any_down = false, diverged = false;
  for (Slot s = 0; s < 5000; ++s) {
    a.tick(s);
    b.tick(s);
    c.tick(s);
    ASSERT_EQ(a.controller_up(), b.controller_up()) << "slot " << s;
    if (!a.controller_up()) any_down = true;
    if (a.controller_up() != c.controller_up()) diverged = true;
  }
  EXPECT_TRUE(any_down);  // mtbf 200 over 5000 slots: outages happen
  EXPECT_TRUE(diverged);  // a different seed gives a different timeline
  EXPECT_EQ(a.outages_started(), b.outages_started());
  EXPECT_EQ(a.outage_slots(), b.outage_slots());
}

TEST(ControlFaultModelTest, FilterIsIdentityWhenDisabled) {
  ControlFaultModel model(ControlFaultOptions{});
  TrafficMatrix tm(4);
  tm.set(0, 1, 0.5);
  // No staleness, no noise: the same object comes back, no copy.
  EXPECT_EQ(&model.filter(tm), &tm);
}

TEST(ControlFaultModelTest, StaleFilterServesTheMatrixFromKEpochsAgo) {
  ControlFaultOptions opts;
  opts.estimate_stale_epochs = 2;
  ControlFaultModel model(opts);
  TrafficMatrix a(2), b(2), c(2), d(2);
  a.set(0, 1, 1.0);
  b.set(0, 1, 2.0);
  c.set(0, 1, 3.0);
  d.set(0, 1, 4.0);
  // Until the lag fills, the oldest available observation is served.
  EXPECT_DOUBLE_EQ(model.filter(a).at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.filter(b).at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.filter(c).at(0, 1), 1.0);
  // From here on, exactly two epochs behind.
  EXPECT_DOUBLE_EQ(model.filter(d).at(0, 1), 2.0);
}

TEST(ControlFaultModelTest, NoiseIsBoundedSeededAndSparesZeros) {
  ControlFaultOptions opts;
  opts.estimate_noise = 0.2;
  opts.seed = 7;
  ControlFaultModel a(opts);
  ControlFaultModel b(opts);
  TrafficMatrix tm(3);
  tm.set(0, 1, 1.0);
  tm.set(1, 2, 0.5);
  const DemandModel& da = a.filter(tm);
  const DemandModel& db = b.filter(tm);
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 0; j < 3; ++j) {
      const double rate = tm.at(i, j);
      if (rate <= 0.0) {
        // A telemetry pipeline that lies about magnitudes still does not
        // invent demand between silent pairs.
        EXPECT_DOUBLE_EQ(da.at(i, j), 0.0);
      } else {
        EXPECT_GE(da.at(i, j), rate * 0.8);
        EXPECT_LE(da.at(i, j), rate * 1.2);
        EXPECT_NE(da.at(i, j), rate);  // noise actually applied
      }
      EXPECT_DOUBLE_EQ(da.at(i, j), db.at(i, j));  // seeded, reproducible
    }
  }
}

TEST(ControlFaultModelTest, StaleHistoryIsBoundedByTheLag) {
  // Regression: the handle history must stay at estimate_stale_epochs + 1
  // entries no matter how long the run is — an unbounded deque here was an
  // O(epochs * N^2) leak on long staleness runs.
  ControlFaultOptions opts;
  opts.estimate_stale_epochs = 3;
  ControlFaultModel model(opts);
  TrafficMatrix tm(8);
  tm.set(0, 1, 1.0);
  tm.set(2, 3, 0.5);
  std::size_t bytes_at_fill = 0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    (void)model.filter(tm);
    EXPECT_LE(model.history_entries(), 4u) << "epoch " << epoch;
    if (epoch == 3) bytes_at_fill = model.history_bytes();
    if (epoch > 3) {
      // Memory is flat once the window fills: same matrices, same bytes.
      EXPECT_EQ(model.history_bytes(), bytes_at_fill) << "epoch " << epoch;
    }
  }
  EXPECT_EQ(model.history_entries(), 4u);
  EXPECT_GT(bytes_at_fill, 0u);
}

TEST(ControlFaultModelTest, ReplanDelayAndSuppressionAccounting) {
  ControlFaultOptions opts;
  opts.replan_apply_delay = 37;
  ControlFaultModel model(opts);
  EXPECT_EQ(model.extra_replan_delay(), 37);
  EXPECT_EQ(model.suppressed_epochs(), 0u);
  model.note_suppressed_epoch();
  model.note_suppressed_epoch();
  EXPECT_EQ(model.suppressed_epochs(), 2u);
}

}  // namespace
}  // namespace sorn
