// NIC state banks and update rollout (paper Fig. 2(c), Sec. 5).
#include "control/nic_state.h"

#include <gtest/gtest.h>

#include "topo/schedule_builder.h"

namespace sorn {
namespace {

TEST(NicStateTest, ActiveBankMirrorsSchedule) {
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  const NicState nic(3, rr);
  EXPECT_EQ(nic.period(), rr.period());
  for (Slot t = 0; t < rr.period(); ++t)
    EXPECT_EQ(nic.dst_at(t), rr.dst_of(3, t));
  EXPECT_EQ(nic.version(), 1u);
}

TEST(NicStateTest, StagingLeavesActiveUntouched) {
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule sorn_sched = ScheduleBuilder::sorn(cliques, {3, 1});
  NicState nic(0, rr);
  const std::size_t entries = nic.stage(sorn_sched);
  EXPECT_EQ(entries, static_cast<std::size_t>(sorn_sched.period()));
  EXPECT_TRUE(nic.has_staged());
  // Still transmitting per the old schedule.
  for (Slot t = 0; t < rr.period(); ++t)
    EXPECT_EQ(nic.dst_at(t), rr.dst_of(0, t));
}

TEST(NicStateTest, CommitFlipsBanksAndBumpsVersion) {
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const CircuitSchedule sorn_sched = ScheduleBuilder::sorn(cliques, {3, 1});
  NicState nic(5, rr);
  nic.stage(sorn_sched);
  nic.commit();
  EXPECT_EQ(nic.version(), 2u);
  EXPECT_FALSE(nic.has_staged());
  for (Slot t = 0; t < sorn_sched.period(); ++t)
    EXPECT_EQ(nic.dst_at(t), sorn_sched.dst_of(5, t));
}

TEST(NicStateTest, CommitWithoutStagingAborts) {
  const CircuitSchedule rr = ScheduleBuilder::round_robin(4);
  NicState nic(0, rr);
  EXPECT_DEATH(nic.commit(), "staged");
}

TEST(NicStateTest, SornSwapsHaveEmptyDrainSet) {
  // The paper's Sec. 5 claim: the fixed neighbor superset means schedule
  // updates create no stranded queues.
  const auto cliques_a = CliqueAssignment::contiguous(16, 4);
  const auto cliques_b = CliqueAssignment::contiguous(16, 2);
  const CircuitSchedule a = ScheduleBuilder::sorn(cliques_a, {2, 1});
  const CircuitSchedule b = ScheduleBuilder::sorn(cliques_b, {5, 1});
  for (NodeId i = 0; i < 16; ++i) {
    NicState nic(i, a);
    nic.stage(b);
    EXPECT_TRUE(nic.drain_set().empty()) << "node " << i;
  }
}

TEST(NicStateTest, DrainSetDetectsLostNeighbors) {
  // Moving from full connectivity to a single-matching schedule strands
  // every neighbor except one.
  const CircuitSchedule rr = ScheduleBuilder::round_robin(8);
  std::vector<Matching> single{Matching::cyclic_shift(8, 1)};
  const CircuitSchedule narrow{std::move(single)};
  NicState nic(0, rr);
  nic.stage(narrow);
  EXPECT_EQ(nic.drain_set().size(), 6u);  // keeps only neighbor 1
}

TEST(UpdateCoordinatorTest, RolloutSynchronizesVersions) {
  const CircuitSchedule rr = ScheduleBuilder::round_robin(16);
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const CircuitSchedule next = ScheduleBuilder::sorn(cliques, {2, 1});
  const UpdateCoordinator coordinator;
  auto nics = coordinator.bootstrap(rr);
  ASSERT_EQ(nics.size(), 16u);
  const auto report = coordinator.roll_out(nics, next);
  EXPECT_EQ(report.nodes, 16u);
  EXPECT_EQ(report.total_entries,
            16u * static_cast<std::size_t>(next.period()));
  EXPECT_EQ(report.drain_neighbors_total, 0u);
  for (const NicState& nic : nics) EXPECT_EQ(nic.version(), 2u);
}

TEST(UpdateCoordinatorTest, UpdateLatencyOnSecondsNotMicroseconds) {
  // Sanity-check the paper's "within a few seconds" at scale: 4096 nodes,
  // schedule period ~20k entries, 10 ns per entry + 50 us per node.
  UpdateCoordinator::Options opts;
  opts.per_entry_us = 0.01;
  opts.per_node_us = 50.0;
  const UpdateCoordinator coordinator(opts);
  const auto cliques = CliqueAssignment::contiguous(128, 8);
  const CircuitSchedule a = ScheduleBuilder::sorn(cliques, {2, 1});
  const CircuitSchedule b = ScheduleBuilder::sorn(cliques, {5, 1});
  auto nics = coordinator.bootstrap(a);
  const auto report = coordinator.roll_out(nics, b);
  // Staging dominates per node; total well under a second at this scale.
  EXPECT_GT(report.total_update_us, opts.per_node_us);
  EXPECT_LT(report.total_update_us, 1e6);
}

}  // namespace
}  // namespace sorn
