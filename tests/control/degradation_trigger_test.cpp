// The control plane's second re-planning trigger: plan-quality
// degradation. Even when epoch-to-epoch aggregates look steady (macro
// change below threshold), a plan whose assumed locality has evaporated
// must be replaced.
#include <gtest/gtest.h>

#include "control/control_plane.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

ControlPlane::Options options(double replan_threshold,
                              double degradation) {
  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {4};
  opts.replan_threshold = replan_threshold;
  opts.locality_degradation = degradation;
  return opts;
}

TEST(DegradationTriggerTest, GradualDriftEventuallyReplans) {
  // The pattern drifts slowly from grouping A to grouping B: each epoch's
  // macro change is small (below the change threshold), but the plan's
  // locality decays until the degradation trigger fires.
  const auto group_a = CliqueAssignment::contiguous(32, 4);
  std::vector<CliqueId> interleaved(32);
  for (NodeId i = 0; i < 32; ++i)
    interleaved[static_cast<std::size_t>(i)] = i % 4;
  const CliqueAssignment group_b(interleaved);
  const TrafficMatrix tm_a = patterns::locality_mix(group_a, 0.8);
  const TrafficMatrix tm_b = patterns::locality_mix(group_b, 0.8);

  // High macro-change threshold: only the degradation trigger can fire.
  ControlPlane cp(32, options(/*replan_threshold=*/10.0,
                              /*degradation=*/0.2));
  cp.on_epoch(tm_a, 0);
  EXPECT_EQ(cp.replans(), 1u);
  const double planned_locality = cp.last_plan().locality_x;
  EXPECT_NEAR(planned_locality, 0.8, 0.05);

  bool replanned = false;
  for (int e = 1; e <= 12 && !replanned; ++e) {
    const double w = std::min(1.0, e / 8.0);  // drift A -> B
    TrafficMatrix blend(32);
    for (NodeId i = 0; i < 32; ++i)
      for (NodeId j = 0; j < 32; ++j)
        if (i != j)
          blend.set(i, j, (1.0 - w) * tm_a.at(i, j) + w * tm_b.at(i, j));
    replanned = cp.on_epoch(blend, e);
  }
  EXPECT_TRUE(replanned);
  EXPECT_EQ(cp.replans(), 2u);
  // The new plan recovers locality on the drifted pattern.
  EXPECT_GT(cp.last_plan().locality_x, 0.5);
}

TEST(DegradationTriggerTest, HealthyPlanNeverDegrades) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::locality_mix(cliques, 0.7);
  ControlPlane cp(32, options(10.0, 0.15));
  cp.on_epoch(tm, 0);
  for (int e = 1; e <= 8; ++e) EXPECT_FALSE(cp.on_epoch(tm, e));
  EXPECT_EQ(cp.replans(), 1u);
}

TEST(DegradationTriggerTest, DisabledWithLargeMargin) {
  // With a huge degradation margin the trigger cannot fire even on a
  // complete shift (and the macro threshold is set high too).
  const auto group_a = CliqueAssignment::contiguous(32, 4);
  std::vector<CliqueId> interleaved(32);
  for (NodeId i = 0; i < 32; ++i)
    interleaved[static_cast<std::size_t>(i)] = i % 4;
  const CliqueAssignment group_b(interleaved);
  ControlPlane cp(32, options(10.0, 5.0));
  cp.on_epoch(patterns::locality_mix(group_a, 0.8), 0);
  for (int e = 1; e <= 5; ++e)
    EXPECT_FALSE(cp.on_epoch(patterns::locality_mix(group_b, 0.8), e));
}

}  // namespace
}  // namespace sorn
