#include "control/reconfig.h"

#include <gtest/gtest.h>

#include "routing/vlb.h"
#include "topo/schedule_builder.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

SornPlan make_plan(NodeId n, CliqueId nc, double x) {
  const auto cliques = CliqueAssignment::contiguous(n, nc);
  const TrafficMatrix tm = patterns::locality_mix(cliques, x);
  SornOptimizer optimizer;
  return optimizer.plan_for_nc(tm, nc);
}

TEST(ReconfigTest, SwapAppliesAfterDelay) {
  const CircuitSchedule initial = ScheduleBuilder::round_robin(16);
  const VlbRouter vlb(&initial, LbMode::kRandom);
  NetworkConfig nc;
  nc.propagation_per_hop = 0;
  SlottedNetwork net(&initial, &vlb, nc);

  ReconfigManager::Options opts;
  opts.update_delay_slots = 5;
  ReconfigManager mgr(opts);
  EXPECT_FALSE(mgr.swap_pending());

  mgr.request_swap(make_plan(16, 4, 0.5), net.now());
  EXPECT_TRUE(mgr.swap_pending());
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(mgr.tick(net, net.now()));
    net.step();
  }
  EXPECT_TRUE(mgr.tick(net, net.now()));
  EXPECT_FALSE(mgr.swap_pending());
  EXPECT_EQ(mgr.swaps_applied(), 1u);
  ASSERT_NE(mgr.schedule(), nullptr);
  EXPECT_EQ(mgr.cliques()->clique_count(), 4);
}

TEST(ReconfigTest, InFlightCellsSurviveSwap) {
  const CircuitSchedule initial = ScheduleBuilder::round_robin(16);
  const VlbRouter vlb(&initial, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&initial, &vlb, cfg);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    auto dst = static_cast<NodeId>(rng.next_below(16));
    if (dst == src) dst = (dst + 1) % 16;
    net.inject_cell(src, dst);
  }
  ReconfigManager mgr;
  mgr.request_swap(make_plan(16, 4, 0.6), net.now());
  mgr.tick(net, net.now());
  net.run(500);
  EXPECT_EQ(net.metrics().delivered_cells(), 100u);
  EXPECT_EQ(net.cells_in_flight(), 0u);
}

TEST(ReconfigTest, NicRolloutTracked) {
  const CircuitSchedule initial = ScheduleBuilder::round_robin(16);
  const VlbRouter vlb(&initial, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&initial, &vlb, cfg);

  ReconfigManager::Options opts;
  opts.track_nic_rollout = true;
  ReconfigManager mgr(opts);
  // First swap bootstraps the NIC fleet (no staged rollout to report).
  mgr.request_swap(make_plan(16, 4, 0.5), net.now());
  mgr.tick(net, net.now());
  ASSERT_TRUE(mgr.last_rollout().has_value());
  EXPECT_EQ(mgr.last_rollout()->nodes, 16u);
  EXPECT_EQ(mgr.last_rollout()->total_entries, 0u);

  // Second swap stages every NIC's table; the SORN-to-SORN drain set is
  // empty (fixed neighbor superset).
  mgr.request_swap(make_plan(16, 2, 0.7), net.now());
  mgr.tick(net, net.now());
  ASSERT_TRUE(mgr.last_rollout().has_value());
  EXPECT_EQ(mgr.last_rollout()->nodes, 16u);
  EXPECT_GT(mgr.last_rollout()->total_entries, 0u);
  EXPECT_EQ(mgr.last_rollout()->drain_neighbors_total, 0u);
  EXPECT_GT(mgr.last_rollout()->total_update_us, 0.0);
}

TEST(ReconfigTest, RolloutNotTrackedByDefault) {
  const CircuitSchedule initial = ScheduleBuilder::round_robin(16);
  const VlbRouter vlb(&initial, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&initial, &vlb, cfg);
  ReconfigManager mgr;
  mgr.request_swap(make_plan(16, 4, 0.5), net.now());
  mgr.tick(net, net.now());
  EXPECT_FALSE(mgr.last_rollout().has_value());
}

TEST(ReconfigTest, SecondSwapKeepsPreviousGenerationAlive) {
  const CircuitSchedule initial = ScheduleBuilder::round_robin(16);
  const VlbRouter vlb(&initial, LbMode::kRandom);
  NetworkConfig cfg;
  cfg.propagation_per_hop = 0;
  SlottedNetwork net(&initial, &vlb, cfg);
  ReconfigManager mgr;
  mgr.request_swap(make_plan(16, 4, 0.5), net.now());
  mgr.tick(net, net.now());
  const CircuitSchedule* first_gen = mgr.schedule();
  net.inject_cell(0, 9);
  mgr.request_swap(make_plan(16, 2, 0.7), net.now());
  mgr.tick(net, net.now());
  EXPECT_NE(mgr.schedule(), first_gen);
  EXPECT_EQ(mgr.swaps_applied(), 2u);
  net.run(300);
  EXPECT_EQ(net.metrics().delivered_cells(), 1u);
}

}  // namespace
}  // namespace sorn
