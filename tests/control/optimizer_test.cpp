#include "control/optimizer.h"

#include <gtest/gtest.h>

#include "analysis/models.h"
#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(OptimizerTest, PlanForNcDerivesOptimalQ) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::locality_mix(cliques, 0.5);
  const SornOptimizer optimizer;
  const SornPlan plan = optimizer.plan_for_nc(tm, 4);
  EXPECT_NEAR(plan.locality_x, 0.5, 1e-6);
  EXPECT_NEAR(plan.q.value(), 4.0, 0.05);  // q* = 2/(1-0.5)
  EXPECT_NEAR(plan.predicted_throughput, 0.4, 0.005);
}

TEST(OptimizerTest, PredictionsMatchClosedForms) {
  const auto cliques = CliqueAssignment::contiguous(64, 8);
  const TrafficMatrix tm = patterns::locality_mix(cliques, 0.56);
  const SornOptimizer optimizer;
  const SornPlan plan = optimizer.plan_for_nc(tm, 8);
  const double q = plan.q.value();
  EXPECT_DOUBLE_EQ(plan.predicted_delta_m_intra,
                   analysis::sorn_delta_m_intra(64, 8, q));
  EXPECT_DOUBLE_EQ(plan.predicted_delta_m_inter,
                   analysis::sorn_delta_m_inter_table(64, 8, q));
  EXPECT_NEAR(plan.predicted_mean_delta_m,
              0.56 * plan.predicted_delta_m_intra +
                  0.44 * plan.predicted_delta_m_inter,
              1e-9);
}

TEST(OptimizerTest, PlanPicksCliqueStructureMatchingTraffic) {
  // Traffic local under 8 cliques of 4; the optimizer should find a plan
  // whose locality is much higher than a mismatched grouping would give.
  const auto truth = CliqueAssignment::contiguous(32, 8);
  const TrafficMatrix tm = patterns::locality_mix(truth, 0.75);
  SornOptimizer::Options opts;
  opts.candidate_nc = {2, 4, 8, 16};
  const SornOptimizer optimizer(opts);
  const SornPlan plan = optimizer.plan(tm);
  EXPECT_GT(plan.locality_x, 0.5);
  EXPECT_GT(plan.predicted_throughput, 1.0 / 3.0);
}

TEST(OptimizerTest, QRespectsDenominatorCap) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::locality_mix(cliques, 0.56);
  SornOptimizer::Options opts;
  opts.max_q_denominator = 3;
  const SornOptimizer optimizer(opts);
  const SornPlan plan = optimizer.plan_for_nc(tm, 4);
  EXPECT_LE(plan.q.den, 3);
  EXPECT_GE(plan.q.value(), 1.0);
}

TEST(OptimizerTest, QIsCapped) {
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const TrafficMatrix tm = patterns::locality_mix(cliques, 1.0);  // q* -> inf
  SornOptimizer::Options opts;
  opts.max_q = 16.0;
  const SornOptimizer optimizer(opts);
  const SornPlan plan = optimizer.plan_for_nc(tm, 4);
  EXPECT_LE(plan.q.value(), 16.0 + 1e-9);
}

TEST(OptimizerTest, SkipsInvalidCandidates) {
  const TrafficMatrix tm = patterns::uniform(30);  // not divisible by 4/8/16
  SornOptimizer::Options opts;
  opts.candidate_nc = {4, 5, 8, 16};  // only 5 divides 30
  const SornOptimizer optimizer(opts);
  const SornPlan plan = optimizer.plan(tm);
  EXPECT_EQ(plan.cliques.clique_count(), 5);
}

TEST(OptimizerTest, AbortsWhenNoCandidateFits) {
  const TrafficMatrix tm = patterns::uniform(7);
  SornOptimizer::Options opts;
  opts.candidate_nc = {2, 4};
  const SornOptimizer optimizer(opts);
  EXPECT_DEATH(optimizer.plan(tm), "no valid clique count");
}

}  // namespace
}  // namespace sorn
