#include "control/estimator.h"

#include <gtest/gtest.h>

#include "traffic/patterns.h"
#include "traffic/trace.h"

namespace sorn {
namespace {

TEST(EstimatorTest, FirstObservationIsAdoptedWholesale) {
  TrafficEstimator est(8);
  EXPECT_FALSE(est.has_estimate());
  const TrafficMatrix tm = patterns::uniform(8);
  est.observe(tm);
  EXPECT_TRUE(est.has_estimate());
  EXPECT_NEAR(est.estimate().at(0, 1), tm.at(0, 1), 1e-12);
}

TEST(EstimatorTest, EwmaConvergesToStationaryPattern) {
  TrafficEstimator est(16, 0.5);
  const auto cliques = CliqueAssignment::contiguous(16, 4);
  const TrafficMatrix target = patterns::locality_mix(cliques, 0.7);
  for (int i = 0; i < 20; ++i) est.observe(target);
  EXPECT_NEAR(est.locality(cliques), 0.7, 1e-6);
}

TEST(EstimatorTest, MacroChangeLowForStableTraffic) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 64;
  cfg.group_size = 8;
  SyntheticTrace trace(cfg);
  TrafficEstimator est(64);
  est.set_reference_grouping(trace.ground_truth_cliques());
  est.observe(trace.epoch_matrix());
  EXPECT_FALSE(est.macro_change().has_value());
  double worst = 0.0;
  for (int i = 0; i < 5; ++i) {
    est.observe(trace.epoch_matrix());
    ASSERT_TRUE(est.macro_change().has_value());
    worst = std::max(worst, *est.macro_change());
  }
  EXPECT_LT(worst, 0.35);  // bursty micro noise, stable macro pattern
}

TEST(EstimatorTest, MacroChangeSpikesOnWorkloadShift) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 64;
  cfg.group_size = 8;
  cfg.seed = 3;
  SyntheticTrace trace(cfg);
  TrafficEstimator est(64);
  est.set_reference_grouping(trace.ground_truth_cliques());
  est.observe(trace.epoch_matrix());
  est.observe(trace.epoch_matrix());
  const double stable = est.macro_change().value();
  // Shift the role layout: the clique-level aggregate jumps.
  trace.shuffle_roles();
  est.observe(trace.epoch_matrix());
  const double shifted = est.macro_change().value();
  EXPECT_GT(shifted, stable * 1.5);
}

TEST(EstimatorTest, ReferenceGroupingResetClearsHistory) {
  TrafficEstimator est(8);
  est.set_reference_grouping(CliqueAssignment::contiguous(8, 2));
  est.observe(patterns::uniform(8));
  est.observe(patterns::uniform(8));
  EXPECT_TRUE(est.macro_change().has_value());
  est.set_reference_grouping(CliqueAssignment::contiguous(8, 4));
  EXPECT_FALSE(est.macro_change().has_value());
}

TEST(EstimatorTest, RejectsAlphaOutOfRange) {
  EXPECT_DEATH(TrafficEstimator(4, 0.0), "EWMA");
  EXPECT_DEATH(TrafficEstimator(4, 1.5), "EWMA");
}

}  // namespace
}  // namespace sorn
