#include "control/clustering.h"

#include <gtest/gtest.h>

#include "traffic/patterns.h"
#include "util/rng.h"

namespace sorn {
namespace {

// Build a locality-mix matrix over a "hidden" non-contiguous grouping and
// check the clusterer recovers it.
TEST(ClusteringTest, RecoversPlantedCliques) {
  // Hidden grouping: node i belongs to clique i % 4 (interleaved).
  std::vector<CliqueId> hidden(32);
  for (NodeId i = 0; i < 32; ++i) hidden[static_cast<std::size_t>(i)] = i % 4;
  const CliqueAssignment truth(hidden);
  const TrafficMatrix tm = patterns::locality_mix(truth, 0.8);

  const CliqueClusterer clusterer;
  const CliqueAssignment found = clusterer.cluster(tm, 4);
  // Recovered locality should match the planted 0.8 (clique labels may
  // permute; locality ratio is label-invariant).
  EXPECT_NEAR(tm.locality_ratio(found), 0.8, 1e-9);
}

TEST(ClusteringTest, ProducesBalancedCliques) {
  Rng rng(5);
  TrafficMatrix tm(24);
  for (NodeId i = 0; i < 24; ++i)
    for (NodeId j = 0; j < 24; ++j)
      if (i != j) tm.set(i, j, rng.next_double());
  const CliqueClusterer clusterer;
  const CliqueAssignment found = clusterer.cluster(tm, 6);
  EXPECT_EQ(found.clique_count(), 6);
  EXPECT_TRUE(found.equal_sized());
  EXPECT_EQ(found.clique_size(0), 4);
}

TEST(ClusteringTest, BeatsContiguousOnShuffledTraffic) {
  // Traffic is local under an interleaved grouping; the naive contiguous
  // grouping sees almost none of it.
  std::vector<CliqueId> hidden(32);
  for (NodeId i = 0; i < 32; ++i) hidden[static_cast<std::size_t>(i)] = i % 4;
  const CliqueAssignment truth(hidden);
  const TrafficMatrix tm = patterns::locality_mix(truth, 0.7);

  const double naive =
      tm.locality_ratio(CliqueAssignment::contiguous(32, 4));
  const CliqueClusterer clusterer;
  const double clustered =
      tm.locality_ratio(clusterer.cluster(tm, 4));
  EXPECT_GT(clustered, naive + 0.3);
}

TEST(ClusteringTest, UniformTrafficStillBalanced) {
  // No structure to find: result must still be a valid balanced
  // assignment (the paper: "even in the absence of traffic locality, the
  // network can still be optimized accordingly").
  const TrafficMatrix tm = patterns::uniform(16);
  const CliqueClusterer clusterer;
  const CliqueAssignment found = clusterer.cluster(tm, 4);
  EXPECT_TRUE(found.equal_sized());
}

TEST(ClusteringTest, ObjectiveIsLocalityRatio) {
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const TrafficMatrix tm = patterns::locality_mix(cliques, 0.6);
  EXPECT_NEAR(CliqueClusterer::objective(tm, cliques), 0.6, 1e-9);
}

TEST(ClusteringTest, SingleCliqueIsTrivial) {
  const TrafficMatrix tm = patterns::uniform(8);
  const CliqueClusterer clusterer;
  const CliqueAssignment found = clusterer.cluster(tm, 1);
  EXPECT_EQ(found.clique_count(), 1);
  EXPECT_DOUBLE_EQ(tm.locality_ratio(found), 1.0);
}

TEST(ClusteringTest, RejectsIndivisibleCounts) {
  const TrafficMatrix tm = patterns::uniform(10);
  const CliqueClusterer clusterer;
  EXPECT_DEATH(clusterer.cluster(tm, 4), "equal cliques");
}

}  // namespace
}  // namespace sorn
