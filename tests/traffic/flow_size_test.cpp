#include "traffic/flow_size.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(FlowSizeTest, FixedDistributionIsConstant) {
  const FlowSizeDist d = FlowSizeDist::fixed(1500);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 1500u);
}

TEST(FlowSizeTest, WebSearchSamplesWithinSupport) {
  const FlowSizeDist d = FlowSizeDist::pfabric_web_search();
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const auto s = d.sample(rng);
    EXPECT_GE(s, 6000u);
    EXPECT_LE(s, 30000000u);
  }
}

TEST(FlowSizeTest, DataMiningIsHeavyTailed) {
  // The hallmark of the data-mining workload: most flows are tiny, most
  // bytes are in huge flows.
  const FlowSizeDist d = FlowSizeDist::pfabric_data_mining();
  Rng rng(3);
  const int n = 20000;
  int small_flows = 0;
  double total_bytes = 0.0;
  double big_bytes = 0.0;
  for (int i = 0; i < n; ++i) {
    const double s = static_cast<double>(d.sample(rng));
    if (s <= 10e3) ++small_flows;
    total_bytes += s;
    if (s > 1e6) big_bytes += s;
  }
  EXPECT_GT(static_cast<double>(small_flows) / n, 0.7);
  EXPECT_GT(big_bytes / total_bytes, 0.5);
}

TEST(FlowSizeTest, EmpiricalMeanMatchesAnalytic) {
  const FlowSizeDist d = FlowSizeDist::pfabric_web_search();
  Rng rng(4);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  const double empirical = sum / n;
  EXPECT_NEAR(empirical / d.mean_bytes(), 1.0, 0.15);
}

TEST(FlowSizeTest, CdfIsMonotone) {
  const FlowSizeDist d = FlowSizeDist::pfabric_web_search();
  double prev = -1.0;
  for (double b = 1e3; b < 1e8; b *= 1.5) {
    const double c = d.cdf(b);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(d.cdf(1e9), 1.0);
}

TEST(FlowSizeTest, ShortFlowShareRoughlyMatchesPaperAssumption) {
  // Table 1 assumes a short-flow traffic share around 75% (median from a
  // production trace). The data-mining CDF has ~80% of flows <= 10 KB.
  const FlowSizeDist d = FlowSizeDist::pfabric_data_mining();
  EXPECT_NEAR(d.short_flow_share(10e3), 0.8, 0.05);
}

TEST(FlowSizeTest, RejectsMalformedCdf) {
  EXPECT_DEATH(FlowSizeDist("bad", {{10.0, 0.5}, {5.0, 1.0}}),
               "strictly increasing");
  EXPECT_DEATH(FlowSizeDist("bad", {{1.0, 0.0}, {2.0, 0.9}}),
               "end at probability 1");
}

}  // namespace
}  // namespace sorn
