#include "traffic/arrivals.h"

#include <gtest/gtest.h>

#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(ArrivalsTest, TimesAreNondecreasing) {
  const TrafficMatrix tm = patterns::uniform(8);
  const FlowSizeDist sizes = FlowSizeDist::fixed(10000);
  FlowArrivals arrivals(&tm, &sizes, 100e9, 0.5, Rng(1));
  Picoseconds prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const FlowArrival a = arrivals.next();
    EXPECT_GE(a.time, prev);
    EXPECT_NE(a.src, a.dst);
    EXPECT_EQ(a.bytes, 10000u);
    prev = a.time;
  }
}

TEST(ArrivalsTest, RateMatchesTargetLoad) {
  // 8 nodes * 100 Gb/s * load 0.5 = 400 Gb/s = 50 GB/s aggregate.
  // With 10 KB flows: 5e6 flows/s -> mean gap 200 ns.
  const TrafficMatrix tm = patterns::uniform(8);
  const FlowSizeDist sizes = FlowSizeDist::fixed(10000);
  FlowArrivals arrivals(&tm, &sizes, 100e9, 0.5, Rng(2));
  EXPECT_NEAR(static_cast<double>(arrivals.mean_interarrival()),
              200e3 /* ps */, 1e3);
}

TEST(ArrivalsTest, EmpiricalRateTracksCalibration) {
  const TrafficMatrix tm = patterns::uniform(4);
  const FlowSizeDist sizes = FlowSizeDist::fixed(5000);
  FlowArrivals arrivals(&tm, &sizes, 10e9, 1.0, Rng(3));
  const int n = 20000;
  Picoseconds last = 0;
  for (int i = 0; i < n; ++i) last = arrivals.next().time;
  const double mean_gap = static_cast<double>(last) / n;
  EXPECT_NEAR(mean_gap / static_cast<double>(arrivals.mean_interarrival()),
              1.0, 0.05);
}

TEST(ArrivalsTest, PairsFollowMatrix) {
  TrafficMatrix tm(3);
  tm.set(0, 2, 1.0);
  const FlowSizeDist sizes = FlowSizeDist::fixed(100);
  FlowArrivals arrivals(&tm, &sizes, 1e9, 0.1, Rng(4));
  for (int i = 0; i < 200; ++i) {
    const FlowArrival a = arrivals.next();
    EXPECT_EQ(a.src, 0);
    EXPECT_EQ(a.dst, 2);
  }
}

}  // namespace
}  // namespace sorn
