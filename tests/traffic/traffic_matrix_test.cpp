#include "traffic/traffic_matrix.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(TrafficMatrixTest, DiagonalStaysZero) {
  TrafficMatrix tm(4);
  tm.set(1, 1, 5.0);
  tm.add(2, 2, 3.0);
  EXPECT_DOUBLE_EQ(tm.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(tm.at(2, 2), 0.0);
}

TEST(TrafficMatrixTest, SumsAndLoads) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 1.0);
  tm.set(0, 2, 2.0);
  tm.set(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(tm.total(), 7.0);
  EXPECT_DOUBLE_EQ(tm.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(tm.col_sum(2), 6.0);
  EXPECT_DOUBLE_EQ(tm.max_node_load(), 6.0);  // node 2 receives 6
}

TEST(TrafficMatrixTest, NormalizeNodeLoad) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 4.0);
  tm.set(2, 1, 4.0);
  tm.normalize_node_load();
  EXPECT_DOUBLE_EQ(tm.max_node_load(), 1.0);
  EXPECT_DOUBLE_EQ(tm.at(0, 1), 0.5);
}

TEST(TrafficMatrixTest, NormalizeEmptyIsNoop) {
  TrafficMatrix tm(3);
  tm.normalize_node_load();
  EXPECT_DOUBLE_EQ(tm.total(), 0.0);
}

TEST(TrafficMatrixTest, LocalityRatio) {
  const auto cliques = CliqueAssignment::contiguous(4, 2);
  TrafficMatrix tm(4);
  tm.set(0, 1, 3.0);  // intra (clique {0,1})
  tm.set(0, 2, 1.0);  // inter
  EXPECT_DOUBLE_EQ(tm.locality_ratio(cliques), 0.75);
}

TEST(TrafficMatrixTest, AggregateByClique) {
  const auto cliques = CliqueAssignment::contiguous(4, 2);
  TrafficMatrix tm(4);
  tm.set(0, 1, 3.0);
  tm.set(0, 2, 1.0);
  tm.set(3, 0, 2.0);
  const auto agg = tm.aggregate(cliques);
  EXPECT_DOUBLE_EQ(agg[0 * 2 + 0], 3.0);
  EXPECT_DOUBLE_EQ(agg[0 * 2 + 1], 1.0);
  EXPECT_DOUBLE_EQ(agg[1 * 2 + 0], 2.0);
  EXPECT_DOUBLE_EQ(agg[1 * 2 + 1], 0.0);
}

TEST(TrafficMatrixTest, SamplePairFollowsWeights) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 9.0);
  tm.set(1, 2, 1.0);
  Rng rng(1);
  int heavy = 0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    const auto [s, d] = tm.sample_pair(rng);
    EXPECT_NE(s, d);
    if (s == 0 && d == 1) ++heavy;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / draws, 0.9, 0.02);
}

TEST(TrafficMatrixTest, SamplePairAfterMutationUsesNewWeights) {
  TrafficMatrix tm(3);
  tm.set(0, 1, 1.0);
  Rng rng(2);
  (void)tm.sample_pair(rng);  // builds the CDF cache
  tm.set(0, 1, 0.0);
  tm.set(2, 0, 1.0);
  for (int i = 0; i < 100; ++i) {
    const auto [s, d] = tm.sample_pair(rng);
    EXPECT_EQ(s, 2);
    EXPECT_EQ(d, 0);
  }
}

}  // namespace
}  // namespace sorn
