// Cross-backend byte-identity: for every scenario pattern generator the
// dense, sparse and procedural backends must agree BIT-FOR-BIT on every
// entry, every statistic, and every seeded sample sequence. These are the
// golden-value tests that pin the contract demand_model.h documents — any
// fold-order or clamp-semantics regression in a backend shows up here as
// an exact-equality failure at small N.
#include "traffic/demand_model.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "topo/clique.h"
#include "topo/hierarchy.h"
#include "traffic/patterns.h"
#include "traffic/procedural_demand.h"
#include "traffic/sparse_demand.h"
#include "traffic/traffic_matrix.h"

namespace sorn {
namespace {

struct BackendSet {
  std::string name;
  std::unique_ptr<DemandModel> dense;
  std::unique_ptr<DemandModel> sparse;
  std::unique_ptr<DemandModel> procedural;

  std::vector<const DemandModel*> all() const {
    return {dense.get(), sparse.get(), procedural.get()};
  }
};

// Every generator the scenario layer can select, at a small N where the
// dense reference is cheap.
std::vector<BackendSet> scenario_patterns() {
  std::vector<BackendSet> sets;
  {
    BackendSet s;
    s.name = "uniform";
    s.dense = patterns::make_uniform(24, DemandBackend::kDense);
    s.sparse = patterns::make_uniform(24, DemandBackend::kSparse);
    s.procedural = patterns::make_uniform(24, DemandBackend::kProcedural);
    sets.push_back(std::move(s));
  }
  {
    const auto cliques = CliqueAssignment::contiguous(24, 4);
    BackendSet s;
    s.name = "locality_mix";
    s.dense = patterns::make_locality_mix(cliques, 0.7, DemandBackend::kDense);
    s.sparse =
        patterns::make_locality_mix(cliques, 0.7, DemandBackend::kSparse);
    s.procedural =
        patterns::make_locality_mix(cliques, 0.7, DemandBackend::kProcedural);
    sets.push_back(std::move(s));
  }
  {
    // x = 1.0: inter demand vanishes, the sparse support is genuinely
    // sparse, and the diagonal-adjacent clamp paths differ most.
    const auto cliques = CliqueAssignment::contiguous(24, 4);
    BackendSet s;
    s.name = "locality_mix_x1";
    s.dense = patterns::make_locality_mix(cliques, 1.0, DemandBackend::kDense);
    s.sparse =
        patterns::make_locality_mix(cliques, 1.0, DemandBackend::kSparse);
    s.procedural =
        patterns::make_locality_mix(cliques, 1.0, DemandBackend::kProcedural);
    sets.push_back(std::move(s));
  }
  {
    const auto cliques = CliqueAssignment::contiguous(24, 4);
    BackendSet s;
    s.name = "clique_ring";
    s.dense = patterns::make_clique_ring(cliques, 0.5, 0.6,
                                         DemandBackend::kDense);
    s.sparse = patterns::make_clique_ring(cliques, 0.5, 0.6,
                                          DemandBackend::kSparse);
    s.procedural = patterns::make_clique_ring(cliques, 0.5, 0.6,
                                              DemandBackend::kProcedural);
    sets.push_back(std::move(s));
  }
  {
    const Hierarchy h = Hierarchy::regular(24, 2, 3);
    BackendSet s;
    s.name = "hier_locality_mix";
    s.dense =
        patterns::make_hier_locality_mix(h, 0.5, 0.3, DemandBackend::kDense);
    s.sparse =
        patterns::make_hier_locality_mix(h, 0.5, 0.3, DemandBackend::kSparse);
    s.procedural = patterns::make_hier_locality_mix(
        h, 0.5, 0.3, DemandBackend::kProcedural);
    sets.push_back(std::move(s));
  }
  return sets;
}

TEST(DemandModelGolden, FactoriesProduceTheRequestedBackend) {
  for (const BackendSet& s : scenario_patterns()) {
    EXPECT_EQ(s.dense->backend(), DemandBackend::kDense) << s.name;
    EXPECT_EQ(s.sparse->backend(), DemandBackend::kSparse) << s.name;
    EXPECT_EQ(s.procedural->backend(), DemandBackend::kProcedural) << s.name;
  }
}

TEST(DemandModelGolden, EntriesAreBitIdenticalAcrossBackends) {
  for (const BackendSet& s : scenario_patterns()) {
    const NodeId n = s.dense->node_count();
    for (const DemandModel* m : s.all()) ASSERT_EQ(m->node_count(), n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        const double want = s.dense->at(i, j);
        // EXPECT_EQ on doubles is exact — bit identity, not tolerance.
        EXPECT_EQ(s.sparse->at(i, j), want)
            << s.name << " sparse (" << i << "," << j << ")";
        EXPECT_EQ(s.procedural->at(i, j), want)
            << s.name << " procedural (" << i << "," << j << ")";
      }
    }
  }
}

TEST(DemandModelGolden, StatisticsAreBitIdenticalAcrossBackends) {
  const auto cliques = CliqueAssignment::contiguous(24, 4);
  const auto coarse = CliqueAssignment::contiguous(24, 2);
  for (const BackendSet& s : scenario_patterns()) {
    const NodeId n = s.dense->node_count();
    for (const DemandModel* m : {s.sparse.get(), s.procedural.get()}) {
      EXPECT_EQ(m->total(), s.dense->total()) << s.name;
      EXPECT_EQ(m->max_node_load(), s.dense->max_node_load()) << s.name;
      for (NodeId i = 0; i < n; ++i) {
        EXPECT_EQ(m->row_sum(i), s.dense->row_sum(i))
            << s.name << " row " << i;
        EXPECT_EQ(m->col_sum(i), s.dense->col_sum(i))
            << s.name << " col " << i;
      }
      // Clique-level views through both the generating assignment and a
      // coarser re-grouping (exercises the generic fold paths).
      for (const CliqueAssignment* ca : {&cliques, &coarse}) {
        EXPECT_EQ(m->locality_ratio(*ca), s.dense->locality_ratio(*ca))
            << s.name;
        EXPECT_EQ(m->aggregate(*ca), s.dense->aggregate(*ca)) << s.name;
      }
    }
  }
}

TEST(DemandModelGolden, NonzeroVisitMatchesTheDenseRowMajorWalk) {
  for (const BackendSet& s : scenario_patterns()) {
    std::vector<std::tuple<NodeId, NodeId, double>> want;
    s.dense->for_each_nonzero([&want](NodeId i, NodeId j, double d) {
      want.emplace_back(i, j, d);
    });
    for (const DemandModel* m : {s.sparse.get(), s.procedural.get()}) {
      std::vector<std::tuple<NodeId, NodeId, double>> got;
      m->for_each_nonzero([&got](NodeId i, NodeId j, double d) {
        got.emplace_back(i, j, d);
      });
      EXPECT_EQ(got, want) << s.name;
    }
  }
}

TEST(DemandModelGolden, SeededSamplePairSequencesAreIdentical) {
  constexpr int kDraws = 4000;
  for (const BackendSet& s : scenario_patterns()) {
    Rng dense_rng(42), sparse_rng(42), proc_rng(42);
    std::map<std::pair<NodeId, NodeId>, int> histogram;
    for (int k = 0; k < kDraws; ++k) {
      const auto want = s.dense->sample_pair(dense_rng);
      EXPECT_EQ(s.sparse->sample_pair(sparse_rng), want)
          << s.name << " draw " << k;
      EXPECT_EQ(s.procedural->sample_pair(proc_rng), want)
          << s.name << " draw " << k;
      ++histogram[want];
    }
    // The identical sequences imply identical histograms; sanity-check the
    // distribution actually spread over the support.
    EXPECT_GT(histogram.size(), 16u) << s.name;
    for (const auto& [pair, count] : histogram)
      EXPECT_NE(pair.first, pair.second)
          << s.name << ": diagonal pair sampled";
  }
}

TEST(DemandModelGolden, SeededSampleDstSequencesAreIdentical) {
  constexpr int kDraws = 200;
  for (const BackendSet& s : scenario_patterns()) {
    const NodeId n = s.dense->node_count();
    for (NodeId src = 0; src < n; ++src) {
      if (!(s.dense->row_sum(src) > 0.0)) continue;
      Rng dense_rng(src + 7), sparse_rng(src + 7), proc_rng(src + 7);
      for (int k = 0; k < kDraws; ++k) {
        const NodeId want = s.dense->sample_dst(src, dense_rng);
        EXPECT_EQ(s.sparse->sample_dst(src, sparse_rng), want)
            << s.name << " src " << src << " draw " << k;
        EXPECT_EQ(s.procedural->sample_dst(src, proc_rng), want)
            << s.name << " src " << src << " draw " << k;
      }
    }
  }
}

TEST(DemandModelGolden, ClonePreservesBackendAndValues) {
  for (const BackendSet& s : scenario_patterns()) {
    for (const DemandModel* m : s.all()) {
      const std::unique_ptr<DemandModel> copy = m->clone();
      EXPECT_EQ(copy->backend(), m->backend()) << s.name;
      EXPECT_EQ(copy->total(), m->total()) << s.name;
      EXPECT_EQ(copy->at(0, 1), m->at(0, 1)) << s.name;
      // Seeded sampling through the clone matches the original.
      Rng a(3), b(3);
      EXPECT_EQ(copy->sample_pair(a), m->sample_pair(b)) << s.name;
    }
  }
}

TEST(DemandModelGolden, ProceduralStateIsFarSmallerThanDense) {
  // N = 512 uniform: the dense array alone is N^2 doubles (2 MB). The
  // procedural form is O(N) even after its lazy sampling caches build.
  const auto dense = patterns::make_uniform(512, DemandBackend::kDense);
  const auto proc = patterns::make_uniform(512, DemandBackend::kProcedural);
  Rng rng(1);
  (void)proc->sample_pair(rng);
  (void)proc->sample_dst(3, rng);
  EXPECT_LT(proc->memory_bytes(), dense->memory_bytes() / 8);
}

TEST(DemandModelGolden, ProceduralFallsBackToSparseOffCanonicalLayout) {
  // Interleaved (non-contiguous) cliques are outside the procedural
  // closed form; the factory must silently produce the sparse backend
  // with the same values instead.
  std::vector<CliqueId> assign;
  for (NodeId i = 0; i < 8; ++i) assign.push_back(i % 2);
  const CliqueAssignment cliques{std::move(assign)};
  ASSERT_FALSE(ProceduralDemand::supports(cliques));
  const auto fallback =
      patterns::make_locality_mix(cliques, 0.6, DemandBackend::kProcedural);
  const auto dense =
      patterns::make_locality_mix(cliques, 0.6, DemandBackend::kDense);
  EXPECT_EQ(fallback->backend(), DemandBackend::kSparse);
  for (NodeId i = 0; i < 8; ++i)
    for (NodeId j = 0; j < 8; ++j)
      EXPECT_EQ(fallback->at(i, j), dense->at(i, j));
}

TEST(DemandModelGolden, SparseFromModelRoundTripsTheDenseMatrix) {
  const auto cliques = CliqueAssignment::contiguous(12, 3);
  const TrafficMatrix tm = patterns::clique_ring(cliques, 0.4, 0.5);
  const auto sparse = SparseDemand::from_model(tm);
  for (NodeId i = 0; i < 12; ++i)
    for (NodeId j = 0; j < 12; ++j)
      EXPECT_EQ(sparse->at(i, j), tm.at(i, j));
  EXPECT_EQ(sparse->total(), tm.total());
}

}  // namespace
}  // namespace sorn
