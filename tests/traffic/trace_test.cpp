#include "traffic/trace.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

SyntheticTrace::Config small_config() {
  SyntheticTrace::Config c;
  c.nodes = 64;
  c.group_size = 8;
  c.seed = 11;
  return c;
}

TEST(TraceTest, MacroMatrixIsStable) {
  SyntheticTrace trace(small_config());
  const TrafficMatrix a = trace.macro_matrix();
  const TrafficMatrix b = trace.macro_matrix();
  for (NodeId i = 0; i < 64; ++i)
    for (NodeId j = 0; j < 64; ++j) EXPECT_DOUBLE_EQ(a.at(i, j), b.at(i, j));
}

TEST(TraceTest, GroundTruthGroupingHasElevatedLocality) {
  SyntheticTrace trace(small_config());
  const TrafficMatrix macro = trace.macro_matrix();
  const auto truth = trace.ground_truth_cliques();
  const double x_truth = macro.locality_ratio(truth);
  // Uniform traffic over 8 groups of 8 would give x = 7/63 = 0.111; the
  // co-location boost must push locality well above that.
  EXPECT_GT(x_truth, 0.25);
}

TEST(TraceTest, EpochNoisePerturbssPairsButNotMacroStructure) {
  SyntheticTrace trace(small_config());
  const TrafficMatrix macro = trace.macro_matrix();
  TrafficMatrix epoch = trace.epoch_matrix();
  // Micro scale: individual pairs deviate noticeably.
  int deviating = 0;
  for (NodeId i = 0; i < 64; ++i)
    for (NodeId j = 0; j < 64; ++j)
      if (i != j &&
          std::abs(epoch.at(i, j) - macro.at(i, j)) > 0.2 * macro.at(i, j))
        ++deviating;
  EXPECT_GT(deviating, 500);
  // Macro scale: clique-aggregated structure stays close.
  const auto truth = trace.ground_truth_cliques();
  const auto agg_macro = macro.aggregate(truth);
  const auto agg_epoch = epoch.aggregate(truth);
  double diff = 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < agg_macro.size(); ++k) {
    diff += std::abs(agg_macro[k] - agg_epoch[k]);
    total += agg_macro[k];
  }
  EXPECT_LT(diff / total, 0.25);
}

TEST(TraceTest, ShuffleRolesChangesMacroPattern) {
  SyntheticTrace trace(small_config());
  const auto truth = trace.ground_truth_cliques();
  const auto before = trace.macro_matrix().aggregate(truth);
  trace.shuffle_roles();
  const auto after = trace.macro_matrix().aggregate(truth);
  double diff = 0.0;
  for (std::size_t k = 0; k < before.size(); ++k)
    diff += std::abs(before[k] - after[k]);
  EXPECT_GT(diff, 0.0);
}

TEST(TraceTest, RoleAffinityShape) {
  // Web's strongest partner is cache; hadoop is self-affine.
  EXPECT_GT(role_affinity(ServiceRole::kWeb, ServiceRole::kCache),
            role_affinity(ServiceRole::kWeb, ServiceRole::kHadoop));
  EXPECT_GE(role_affinity(ServiceRole::kHadoop, ServiceRole::kHadoop),
            role_affinity(ServiceRole::kHadoop, ServiceRole::kWeb));
  EXPECT_STREQ(service_role_name(ServiceRole::kStorage), "storage");
}

TEST(TraceTest, RejectsIndivisibleGroups) {
  SyntheticTrace::Config c;
  c.nodes = 10;
  c.group_size = 4;
  EXPECT_DEATH(SyntheticTrace{c}, "equal groups");
}

}  // namespace
}  // namespace sorn
