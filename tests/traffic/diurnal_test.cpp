// Diurnal utilization patterns (paper Sec. 6, "Other Structural
// Patterns"): the trace's macro matrix evolves smoothly over a simulated
// day, and the control plane only re-plans when the slow drift has
// accumulated.
#include <gtest/gtest.h>

#include "control/control_plane.h"
#include "traffic/trace.h"

namespace sorn {
namespace {

TEST(DiurnalTest, ActivityShapes) {
  // Web peaks at midday, hadoop at midnight, storage flat.
  EXPECT_GT(role_diurnal_activity(ServiceRole::kWeb, 0.5),
            role_diurnal_activity(ServiceRole::kWeb, 0.0));
  EXPECT_GT(role_diurnal_activity(ServiceRole::kHadoop, 0.0),
            role_diurnal_activity(ServiceRole::kHadoop, 0.5));
  EXPECT_DOUBLE_EQ(role_diurnal_activity(ServiceRole::kStorage, 0.1),
                   role_diurnal_activity(ServiceRole::kStorage, 0.7));
}

TEST(DiurnalTest, PhaseShiftsTheMacroMix) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 64;
  cfg.group_size = 8;
  SyntheticTrace trace(cfg);

  // Pick a web group and a hadoop group.
  NodeId web_group = -1;
  NodeId hadoop_group = -1;
  for (NodeId g = 0; g < trace.group_count(); ++g) {
    if (trace.role_of_group(g) == ServiceRole::kWeb && web_group < 0)
      web_group = g;
    if (trace.role_of_group(g) == ServiceRole::kHadoop && hadoop_group < 0)
      hadoop_group = g;
  }
  ASSERT_GE(web_group, 0);
  ASSERT_GE(hadoop_group, 0);
  const NodeId web_node = web_group * cfg.group_size;
  const NodeId hadoop_node = hadoop_group * cfg.group_size;

  trace.set_phase(0.5);  // midday
  const double web_day = trace.macro_matrix().row_sum(web_node);
  const double hadoop_day = trace.macro_matrix().row_sum(hadoop_node);
  trace.set_phase(0.0);  // midnight
  const double web_night = trace.macro_matrix().row_sum(web_node);
  const double hadoop_night = trace.macro_matrix().row_sum(hadoop_node);

  // Relative dominance flips between day and night.
  EXPECT_GT(web_day / hadoop_day, web_night / hadoop_night);
}

TEST(DiurnalTest, SmoothDriftKeepsReplansBounded) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 64;
  cfg.group_size = 8;
  cfg.burst_sigma = 0.2;
  SyntheticTrace trace(cfg);

  ControlPlane::Options opts;
  opts.optimizer.candidate_nc = {8};
  opts.replan_threshold = 0.3;
  opts.locality_degradation = 0.2;
  ControlPlane cp(64, opts);

  // One simulated day in 24 hourly epochs.
  for (int hour = 0; hour < 24; ++hour) {
    trace.set_phase(hour / 24.0);
    cp.on_epoch(trace.epoch_matrix(), hour);
  }
  // The drift is slow and the co-location structure never moves: the
  // control plane should not thrash (a handful of re-plans at most).
  EXPECT_GE(cp.replans(), 1u);
  EXPECT_LE(cp.replans(), 6u);
}

TEST(DiurnalTest, RejectsOutOfRangePhase) {
  SyntheticTrace::Config cfg;
  cfg.nodes = 8;
  cfg.group_size = 2;
  SyntheticTrace trace(cfg);
  EXPECT_DEATH(trace.set_phase(1.0), "phase");
}

}  // namespace
}  // namespace sorn
