#include "traffic/matrix_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "traffic/patterns.h"

namespace sorn {
namespace {

TEST(MatrixIoTest, RoundTripPreservesValues) {
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  const TrafficMatrix original = patterns::locality_mix(cliques, 0.6);
  const auto parsed = matrix_from_csv(matrix_to_csv(original));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->node_count(), 8);
  for (NodeId i = 0; i < 8; ++i)
    for (NodeId j = 0; j < 8; ++j)
      EXPECT_NEAR(parsed->at(i, j), original.at(i, j), 1e-12);
}

TEST(MatrixIoTest, FileRoundTrip) {
  const TrafficMatrix original = patterns::uniform(5);
  const std::string path = ::testing::TempDir() + "/tm_roundtrip.csv";
  ASSERT_TRUE(save_matrix_csv(original, path));
  const auto loaded = load_matrix_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_NEAR(loaded->total(), original.total(), 1e-9);
  std::remove(path.c_str());
}

TEST(MatrixIoTest, RejectsRaggedRows) {
  EXPECT_FALSE(matrix_from_csv("0,1,2\n1,0\n2,1,0\n").has_value());
}

TEST(MatrixIoTest, RejectsNonSquare) {
  EXPECT_FALSE(matrix_from_csv("0,1\n1,0\n0,1\n").has_value());
}

TEST(MatrixIoTest, RejectsNonNumeric) {
  EXPECT_FALSE(matrix_from_csv("0,abc\n1,0\n").has_value());
}

TEST(MatrixIoTest, RejectsNegativeDemand) {
  EXPECT_FALSE(matrix_from_csv("0,-1\n1,0\n").has_value());
}

TEST(MatrixIoTest, RejectsNonzeroDiagonal) {
  EXPECT_FALSE(matrix_from_csv("5,1\n1,0\n").has_value());
}

TEST(MatrixIoTest, RejectsEmptyInput) {
  EXPECT_FALSE(matrix_from_csv("").has_value());
  EXPECT_FALSE(matrix_from_csv("\n\n").has_value());
}

TEST(MatrixIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_matrix_csv("/nonexistent/path/tm.csv").has_value());
}

}  // namespace
}  // namespace sorn
