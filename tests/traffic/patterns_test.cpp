#include "traffic/patterns.h"

#include <gtest/gtest.h>

namespace sorn {
namespace {

TEST(PatternsTest, UniformHasUnitPeakLoad) {
  const TrafficMatrix tm = patterns::uniform(8);
  EXPECT_NEAR(tm.max_node_load(), 1.0, 1e-12);
  // Every off-diagonal entry equal.
  EXPECT_DOUBLE_EQ(tm.at(0, 1), tm.at(5, 2));
}

// Property sweep: the locality mix must reproduce its target x exactly.
class LocalityMixSweep : public ::testing::TestWithParam<double> {};

TEST_P(LocalityMixSweep, RecoversTargetLocality) {
  const double x = GetParam();
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::locality_mix(cliques, x);
  EXPECT_NEAR(tm.locality_ratio(cliques), x, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(X, LocalityMixSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.56, 0.75,
                                           0.9, 1.0));

TEST(PatternsTest, LocalityMixSingletonCliquesAllInter) {
  const auto cliques = CliqueAssignment::flat(8);
  const TrafficMatrix tm = patterns::locality_mix(cliques, 0.8);
  EXPECT_DOUBLE_EQ(tm.locality_ratio(cliques), 0.0);
  EXPECT_GT(tm.total(), 0.0);
}

TEST(PatternsTest, PermutationHasOneDestinationPerSource) {
  Rng rng(5);
  const TrafficMatrix tm = patterns::permutation(10, rng);
  for (NodeId i = 0; i < 10; ++i) {
    int dsts = 0;
    for (NodeId j = 0; j < 10; ++j)
      if (tm.at(i, j) > 0.0) ++dsts;
    EXPECT_EQ(dsts, 1);
    EXPECT_DOUBLE_EQ(tm.row_sum(i), 1.0);
  }
  // Permutation: every node also receives exactly once.
  for (NodeId j = 0; j < 10; ++j) EXPECT_DOUBLE_EQ(tm.col_sum(j), 1.0);
}

TEST(PatternsTest, HotspotElevatesSomePairs) {
  Rng rng(6);
  const TrafficMatrix uni = patterns::uniform(16);
  const TrafficMatrix hot = patterns::hotspot(16, 4, 50.0, rng);
  // After renormalization the max entry must exceed the uniform entry.
  double max_hot = 0.0;
  for (NodeId i = 0; i < 16; ++i)
    for (NodeId j = 0; j < 16; ++j) max_hot = std::max(max_hot, hot.at(i, j));
  EXPECT_GT(max_hot, uni.at(0, 1) * 5.0);
}

TEST(PatternsTest, GravityProportionalToWeights) {
  const auto cliques = CliqueAssignment::contiguous(8, 4);
  const TrafficMatrix tm = patterns::gravity(cliques, {1.0, 2.0, 1.0, 1.0});
  // Demand clique0 -> clique1 should be double clique0 -> clique2 per pair.
  EXPECT_NEAR(tm.at(0, 2) / tm.at(0, 4), 2.0, 1e-9);
}

TEST(PatternsTest, CliqueRingBalancesNodeLoads) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::clique_ring(cliques, 0.4, 0.9);
  // Every node sends and receives exactly the same total.
  for (NodeId i = 0; i < 32; ++i) {
    EXPECT_NEAR(tm.row_sum(i), 1.0, 1e-9);
    EXPECT_NEAR(tm.col_sum(i), 1.0, 1e-9);
  }
  EXPECT_NEAR(tm.locality_ratio(cliques), 0.4, 1e-9);
}

TEST(PatternsTest, CliqueRingSkewsPairStructure) {
  const auto cliques = CliqueAssignment::contiguous(32, 4);
  const TrafficMatrix tm = patterns::clique_ring(cliques, 0.4, 0.9);
  const auto agg = tm.aggregate(cliques);
  // Clique 0 -> 1 (ring neighbor) dominates clique 0 -> 2.
  EXPECT_GT(agg[0 * 4 + 1], agg[0 * 4 + 2] * 5.0);
}

TEST(PatternsTest, CliqueRingRejectsTooFewCliques) {
  const auto cliques = CliqueAssignment::contiguous(8, 2);
  EXPECT_DEATH(patterns::clique_ring(cliques, 0.4, 0.9), "three cliques");
}

TEST(PatternsTest, GravityRejectsWrongWeightCount) {
  const auto cliques = CliqueAssignment::contiguous(8, 4);
  EXPECT_DEATH(patterns::gravity(cliques, {1.0, 2.0}), "one weight per clique");
}

}  // namespace
}  // namespace sorn
