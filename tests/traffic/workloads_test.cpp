// Burst workload generators: incast wave structure, collective phase
// schedules (ring and tree), and the oversubscribed-rack mix.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "topo/clique.h"
#include "traffic/patterns.h"
#include "traffic/workloads.h"

namespace sorn {
namespace {

constexpr Picoseconds kSlotPs = 100000;

TEST(IncastArrivalsTest, WavesAreSynchronizedWithDistinctSenders) {
  IncastArrivals stream(/*nodes=*/8, /*fanin=*/3, /*bytes_per_sender=*/1000,
                        /*period_slots=*/50, kSlotPs, Rng(7));
  for (int wave = 0; wave < 20; ++wave) {
    const Picoseconds expected_time =
        static_cast<Picoseconds>(wave) * 50 * kSlotPs;
    std::set<NodeId> senders;
    NodeId receiver = -1;
    for (int k = 0; k < 3; ++k) {
      const FlowArrival a = stream.next();
      EXPECT_EQ(a.time, expected_time) << "wave bursts are simultaneous";
      EXPECT_EQ(a.bytes, 1000u);
      if (k == 0) receiver = a.dst;
      EXPECT_EQ(a.dst, receiver) << "one receiver per wave";
      EXPECT_NE(a.src, a.dst);
      senders.insert(a.src);
    }
    EXPECT_EQ(senders.size(), 3u) << "senders are distinct within a wave";
  }
}

TEST(IncastArrivalsTest, FullFaninUsesEveryOtherNode) {
  IncastArrivals stream(/*nodes=*/6, /*fanin=*/5, /*bytes_per_sender=*/256,
                        /*period_slots=*/10, kSlotPs, Rng(3));
  std::set<NodeId> senders;
  NodeId receiver = -1;
  for (int k = 0; k < 5; ++k) {
    const FlowArrival a = stream.next();
    receiver = a.dst;
    senders.insert(a.src);
  }
  EXPECT_EQ(senders.size(), 5u);
  EXPECT_EQ(senders.count(receiver), 0u);
}

TEST(IncastArrivalsTest, ReceiversVaryAcrossWaves) {
  IncastArrivals stream(/*nodes=*/16, /*fanin=*/4, /*bytes_per_sender=*/512,
                        /*period_slots=*/8, kSlotPs, Rng(11));
  std::set<NodeId> receivers;
  for (int wave = 0; wave < 32; ++wave)
    for (int k = 0; k < 4; ++k) receivers.insert(stream.next().dst);
  EXPECT_GT(receivers.size(), 4u) << "the hotspot must move between waves";
}

TEST(CollectiveArrivalsTest, RingPhasesPassChunksToSuccessors) {
  const TrafficMatrix tm = patterns::uniform(4);
  CollectiveArrivals stream(&tm, CollectiveArrivals::Kind::kRing,
                            /*bytes_per_node=*/4096, /*phase_gap_slots=*/100,
                            kSlotPs);
  // 2(N-1) = 6 phases per iteration, N flows per phase, chunk = 4096/4.
  for (int phase = 0; phase < 12; ++phase) {
    const Picoseconds expected_time =
        static_cast<Picoseconds>(phase) * 100 * kSlotPs;
    for (NodeId i = 0; i < 4; ++i) {
      const FlowArrival a = stream.next();
      EXPECT_EQ(a.time, expected_time);
      EXPECT_EQ(a.src, i) << "phase flows ascend by source";
      EXPECT_EQ(a.dst, (i + 1) % 4) << "ring successor";
      EXPECT_EQ(a.bytes, 1024u);
    }
  }
}

TEST(CollectiveArrivalsTest, TreeReduceThenBroadcastMirrors) {
  const TrafficMatrix tm = patterns::uniform(4);
  CollectiveArrivals stream(&tm, CollectiveArrivals::Kind::kTree,
                            /*bytes_per_node=*/1 << 20,
                            /*phase_gap_slots=*/10, kSlotPs);
  // N=4: 2*log2(4) = 4 phases. Reduce: (1->0, 3->2), then (2->0).
  // Broadcast mirrors: (0->2), then (0->1, 2->3).
  struct Edge {
    NodeId src, dst;
  };
  const std::vector<std::vector<Edge>> expected = {
      {{1, 0}, {3, 2}}, {{2, 0}}, {{0, 2}}, {{0, 1}, {2, 3}}};
  for (int iter = 0; iter < 2; ++iter) {
    for (std::size_t p = 0; p < expected.size(); ++p) {
      for (const Edge& e : expected[p]) {
        const FlowArrival a = stream.next();
        EXPECT_EQ(a.src, e.src) << "iter " << iter << " phase " << p;
        EXPECT_EQ(a.dst, e.dst) << "iter " << iter << " phase " << p;
        EXPECT_EQ(a.bytes, static_cast<std::uint64_t>(1) << 20);
      }
    }
  }
}

TEST(CollectiveArrivalsTest, DemandRowShareScalesContributions) {
  // Node 0 carries 3x the demand of each other node (row sums 3:1:1:1,
  // mean 1.5): its gradient scales to 2x bytes_per_node, the rest to 2/3.
  TrafficMatrix tm(4);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      if (i == j) continue;
      tm.set(i, j, i == 0 ? 1.0 : 1.0 / 3.0);
    }
  }
  CollectiveArrivals stream(&tm, CollectiveArrivals::Kind::kRing,
                            /*bytes_per_node=*/3000, /*phase_gap_slots=*/10,
                            kSlotPs);
  // Ring chunk = scaled whole / N.
  const FlowArrival a0 = stream.next();
  EXPECT_EQ(a0.src, 0);
  EXPECT_EQ(a0.bytes, 1500u) << "3000 * 2.0 / 4";
  const FlowArrival a1 = stream.next();
  EXPECT_EQ(a1.src, 1);
  EXPECT_EQ(a1.bytes, 500u) << "3000 * (2/3) / 4";
}

TEST(OversubRackArrivalsTest, LocalityExtremesPinTheMix) {
  const auto racks = CliqueAssignment::contiguous(16, 4);
  const FlowSizeDist sizes = FlowSizeDist::fixed(2560);
  {
    // All-local mix: every arrival stays inside its source's rack.
    OversubRackArrivals stream(&racks, &sizes, /*node_bandwidth_bps=*/1e9,
                               /*load=*/0.3, /*rack_local_frac=*/1.0,
                               /*oversub_factor=*/4.0, Rng(5));
    for (int k = 0; k < 200; ++k) {
      const FlowArrival a = stream.next();
      EXPECT_NE(a.src, a.dst);
      EXPECT_TRUE(racks.same_clique(a.src, a.dst));
    }
  }
  {
    // All-inter mix: every arrival crosses racks.
    OversubRackArrivals stream(&racks, &sizes, /*node_bandwidth_bps=*/1e9,
                               /*load=*/0.3, /*rack_local_frac=*/0.0,
                               /*oversub_factor=*/4.0, Rng(5));
    for (int k = 0; k < 200; ++k) {
      const FlowArrival a = stream.next();
      EXPECT_FALSE(racks.same_clique(a.src, a.dst));
    }
  }
}

TEST(OversubRackArrivalsTest, OversubscriptionInflatesInterShareAndLoad) {
  const auto racks = CliqueAssignment::contiguous(16, 4);
  const FlowSizeDist sizes = FlowSizeDist::fixed(2560);
  auto measure = [&](double factor, double* inter_frac) {
    OversubRackArrivals stream(&racks, &sizes, /*node_bandwidth_bps=*/1e9,
                               /*load=*/0.3, /*rack_local_frac=*/0.5, factor,
                               Rng(9));
    constexpr int kFlows = 4000;
    Picoseconds last = 0;
    int inter = 0;
    for (int k = 0; k < kFlows; ++k) {
      const FlowArrival a = stream.next();
      EXPECT_GE(a.time, last) << "arrival times are nondecreasing";
      last = a.time;
      if (!racks.same_clique(a.src, a.dst)) ++inter;
    }
    *inter_frac = static_cast<double>(inter) / kFlows;
    return last;  // horizon of kFlows arrivals ~ 1 / offered load
  };
  double inter_f1 = 0.0, inter_f4 = 0.0;
  const Picoseconds span_f1 = measure(1.0, &inter_f1);
  const Picoseconds span_f4 = measure(4.0, &inter_f4);
  // x = 0.5: F=1 splits 50/50; F=4 crosses racks 4/(1+4) = 80%.
  EXPECT_NEAR(inter_f1, 0.5, 0.05);
  EXPECT_NEAR(inter_f4, 0.8, 0.05);
  // Total offered load scales by (x + F(1-x)) = 2.5x, so the same flow
  // count arrives in proportionally less time.
  EXPECT_LT(span_f4, span_f1);
  EXPECT_NEAR(static_cast<double>(span_f1) / static_cast<double>(span_f4),
              2.5, 0.5);
}

}  // namespace
}  // namespace sorn
