#!/usr/bin/env python3
"""Bench-baseline regression gate and profile.json schema validator.

Usage:
  check_bench.py compare <current.json> <baseline.json> [--tol name=bound]...
  check_bench.py write-baseline <run.json> <baseline.json>
  check_bench.py --schema <profile.json>
  check_bench.py --self-test

compare
  Reads the "metrics" object from both documents (every bench emits one:
  a flat map of metric name -> number) and checks each baseline metric
  against the current run under a per-metric tolerance class chosen by
  name:

    equivalent / recovered          exact match (the bool-as-0/1 gates)
    *slots_per_sec*                 higher is better; current must reach
                                    0.5x baseline (shared-runner noise)
    speedup_*                       higher is better; 0.6x baseline
    peak_rss_mb                     lower is better; at most 1.25x baseline
    *_ns_per_slot                   lower is better; at most 2.0x baseline
    *_overhead_pct                  at most baseline + 3.0 points
    everything else                 simulator-deterministic counts: within
                                    0.1% of baseline

  --tol name=bound overrides the numeric bound for one metric (a ratio
  for the ratio classes, points for overhead, relative fraction for the
  deterministic class). Scalar config keys outside "metrics"/"rows"
  (bench, nodes, slots, ...) must match exactly — a baseline recorded
  under a different configuration is a failure, not a comparison.

write-baseline
  Regenerates a committed BENCH_*.json baseline from a bench run's JSON
  output — no more hand-edited baselines. Validates that the run carries
  a non-empty "metrics" object, prints every metric that changes against
  the existing baseline (if any), and writes the run document in the
  canonical flat formatting the repo commits.

--schema
  Validates a profile.json against the sorn-profile-v1 layout: the nine
  slot phases in enum order with per-slot percentile stats, the pool
  utilization block, and the memory gauge block.

Exit status: 0 on pass, 1 on any regression / schema violation.
"""
import json
import sys

PROFILE_SCHEMA = "sorn-profile-v1"
PROFILE_PHASES = [
    "schedule_advance", "lane_sweep", "merge_replay", "voq_settle",
    "retransmit", "control_tick", "fault_tick", "slot_hook",
    "telemetry_flush",
]
PERCENTILE_KEYS = ["count", "mean", "p0", "p25", "p50", "p90", "p99",
                   "p99.9", "p100"]


def fail(message):
    print(f"FAIL: {message}")
    return 1


# ---- tolerance classes -------------------------------------------------

def classify(name):
    """Return (kind, default_bound) for a metric name."""
    if name in ("equivalent", "recovered"):
        return "exact", 0.0
    if "slots_per_sec" in name:
        return "min_ratio", 0.5
    if name.startswith("speedup"):
        return "min_ratio", 0.6
    if name == "peak_rss_mb":
        return "max_ratio", 1.25
    if name.endswith("_ns_per_slot"):
        return "max_ratio", 2.0
    if name.endswith("_overhead_pct"):
        return "max_abs_increase", 3.0
    return "near_exact", 0.001


def check_metric(name, current, baseline, bound_override):
    """Return None on pass, an error string on regression."""
    for label, value in (("baseline", baseline), ("current", current)):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return (f"{name}: {label} value {value!r} is not a number — "
                    f"the gate cannot compare it")
    kind, bound = classify(name)
    if bound_override is not None:
        bound = bound_override
    if kind in ("min_ratio", "max_ratio") and baseline <= 0:
        # A zero baseline makes a ratio gate vacuous (every current value
        # passes a floor of 0) or impossible (a ceiling of 0); either way
        # the baseline is broken, not the run.
        return (f"{name}: baseline {baseline:g} makes the {kind} gate "
                f"meaningless — regenerate the baseline")
    if kind == "exact":
        if current != baseline:
            return f"{name}: {current} != baseline {baseline} (exact)"
        return None
    if kind == "min_ratio":
        floor = bound * baseline
        if current < floor:
            return (f"{name}: {current:g} below {bound:g}x baseline "
                    f"{baseline:g} (floor {floor:g})")
        return None
    if kind == "max_ratio":
        ceiling = bound * baseline
        if current > ceiling:
            return (f"{name}: {current:g} above {bound:g}x baseline "
                    f"{baseline:g} (ceiling {ceiling:g})")
        return None
    if kind == "max_abs_increase":
        if current > baseline + bound:
            return (f"{name}: {current:g} exceeds baseline {baseline:g} "
                    f"by more than {bound:g}")
        return None
    # near_exact: deterministic sim counts, tolerate float formatting only.
    scale = max(abs(baseline), 1.0)
    if abs(current - baseline) > bound * scale:
        return (f"{name}: {current:g} deviates from deterministic "
                f"baseline {baseline:g} by more than {bound * 100:g}%")
    return None


def compare(current_doc, baseline_doc, overrides):
    errors = []
    # Config keys must agree: comparing against a baseline recorded at a
    # different scale would pass or fail for the wrong reason.
    for key, base_val in baseline_doc.items():
        if key in ("metrics", "rows"):
            continue
        if not isinstance(base_val, (str, int, float, bool)):
            continue
        if key not in current_doc:
            errors.append(f"config key {key!r} missing from current run")
        elif current_doc[key] != base_val:
            errors.append(f"config mismatch: {key} = "
                          f"{current_doc[key]!r}, baseline {base_val!r}")
    base_metrics = baseline_doc.get("metrics", {})
    cur_metrics = current_doc.get("metrics", {})
    if not base_metrics:
        errors.append("baseline has no \"metrics\" object")
    for name, base_val in sorted(base_metrics.items()):
        if name not in cur_metrics:
            errors.append(f"metric {name!r} missing from current run")
            continue
        err = check_metric(name, cur_metrics[name], base_val,
                           overrides.get(name))
        if err is not None:
            errors.append(err)
        else:
            print(f"  ok: {name} = {cur_metrics[name]:g} "
                  f"(baseline {base_val:g})")
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        print(f"  note: new metric {name!r} not in baseline (ignored)")
    return errors


def cmd_compare(argv):
    paths, overrides = [], {}
    it = iter(argv)
    for arg in it:
        if arg == "--tol":
            name, _, bound = next(it).partition("=")
            overrides[name] = float(bound)
        else:
            paths.append(arg)
    if len(paths) != 2:
        return fail("compare needs <current.json> <baseline.json>")
    current = json.load(open(paths[0]))
    baseline = json.load(open(paths[1]))
    print(f"comparing {paths[0]} against baseline {paths[1]}")
    errors = compare(current, baseline, overrides)
    for err in errors:
        print(f"  REGRESSION: {err}")
    if errors:
        return fail(f"{len(errors)} regression(s) vs baseline")
    print("PASS: no regressions vs baseline")
    return 0


# ---- baseline regeneration ---------------------------------------------

def write_baseline(run_doc, baseline_path, old_doc=None):
    """Validate run_doc and write it as the new baseline. Returns errors."""
    metrics = run_doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        return ["run has no non-empty \"metrics\" object; refusing to "
                "write a baseline nothing can compare against"]
    for name, value in sorted(metrics.items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return [f"metric {name!r} is not a number: {value!r}"]
    if old_doc is not None:
        old_metrics = old_doc.get("metrics", {})
        for name in sorted(set(old_metrics) | set(metrics)):
            old, new = old_metrics.get(name), metrics.get(name)
            if old is None:
                print(f"  new metric: {name} = {new:g}")
            elif new is None:
                print(f"  dropped metric: {name} (was {old:g})")
            elif old != new:
                print(f"  {name}: {old:g} -> {new:g}")
        for key in sorted(set(old_doc) | set(run_doc) - {"metrics", "rows"}):
            if key in ("metrics", "rows"):
                continue
            if old_doc.get(key) != run_doc.get(key):
                print(f"  config {key}: {old_doc.get(key)!r} -> "
                      f"{run_doc.get(key)!r}")
    # Canonical flat formatting: one line, "rows" entries one per line —
    # the shape the repo's committed baselines use, so diffs stay small.
    rows = run_doc.get("rows")
    doc = {k: v for k, v in run_doc.items() if k != "rows"}
    text = json.dumps(doc, separators=(", ", ": "))
    if rows is not None:
        body = ",\n".join(
            "  " + json.dumps(r, separators=(", ", ": ")) for r in rows)
        text = text[:-1] + ", \"rows\": [\n" + body + "\n]\n}"
    with open(baseline_path, "w") as f:
        f.write(text + "\n")
    return []


def cmd_write_baseline(argv):
    if len(argv) != 2:
        return fail("write-baseline needs <run.json> <baseline.json>")
    run_path, baseline_path = argv
    run_doc = json.load(open(run_path))
    old_doc = None
    try:
        old_doc = json.load(open(baseline_path))
    except (FileNotFoundError, json.JSONDecodeError):
        pass
    print(f"writing baseline {baseline_path} from {run_path}")
    errors = write_baseline(run_doc, baseline_path, old_doc)
    for err in errors:
        print(f"  REJECTED: {err}")
    if errors:
        return fail("run is not baseline-worthy")
    print(f"wrote {baseline_path} "
          f"({len(run_doc['metrics'])} metrics)")
    return 0


# ---- profile.json schema ----------------------------------------------

def check_profile(doc):
    errors = []

    def need(obj, key, types, where):
        if not isinstance(obj, dict) or key not in obj:
            errors.append(f"{where}: missing key {key!r}")
            return None
        if not isinstance(obj[key], types):
            errors.append(f"{where}: {key!r} has type "
                          f"{type(obj[key]).__name__}")
            return None
        return obj[key]

    if doc.get("schema") != PROFILE_SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, "
                      f"want {PROFILE_SCHEMA!r}")
    need(doc, "slots", int, "top-level")

    phases = need(doc, "phases", list, "top-level") or []
    names = [p.get("phase") for p in phases if isinstance(p, dict)]
    if names != PROFILE_PHASES:
        errors.append(f"phases are {names}, want {PROFILE_PHASES}")
    for p in phases:
        where = f"phase {p.get('phase')!r}"
        for key in ("calls", "total_ns", "active_slots"):
            need(p, key, int, where)
        slot_ns = need(p, "slot_ns", dict, where)
        if slot_ns is not None:
            for key in PERCENTILE_KEYS:
                need(slot_ns, key, (int, float), f"{where} slot_ns")

    pool = need(doc, "pool", dict, "top-level")
    if pool is not None:
        for key in ("threads", "batches", "shards", "owner_wait_ns",
                    "window_ns"):
            need(pool, key, int, "pool")
        workers = need(pool, "workers", list, "pool") or []
        for w in workers:
            for key in ("worker", "busy_ns", "idle_ns", "shards"):
                need(w, key, int, f"pool worker {w.get('worker')}")
        if pool.get("threads", 1) > 1 and pool.get("batches", 0) > 0 \
                and len(workers) != pool["threads"]:
            errors.append(f"pool ran {pool['threads']} threads but "
                          f"reports {len(workers)} workers")

    memory = need(doc, "memory", dict, "top-level")
    if memory is not None:
        need(memory, "samples", int, "memory")
        need(memory, "peak_rss_bytes", int, "memory")
        gauges = need(memory, "gauges", list, "memory") or []
        for g in gauges:
            need(g, "name", str, "gauge")
            need(g, "bytes", int, f"gauge {g.get('name')!r}")
            need(g, "peak_bytes", int, f"gauge {g.get('name')!r}")
        gauge_names = [g.get("name") for g in gauges if isinstance(g, dict)]
        if gauge_names != sorted(gauge_names):
            errors.append(f"gauges not name-sorted: {gauge_names}")
    return errors


def cmd_schema(path):
    doc = json.load(open(path))
    errors = check_profile(doc)
    for err in errors:
        print(f"  SCHEMA: {err}")
    if errors:
        return fail(f"{path}: {len(errors)} schema violation(s)")
    phases = {p["phase"]: p for p in doc["phases"]}
    timed = sum(p["total_ns"] for p in doc["phases"])
    print(f"schema OK: {path} — {doc['slots']} slots, "
          f"{timed / 1e6:.1f} ms timed across phases, "
          f"{len(doc['memory']['gauges'])} gauges, "
          f"lane_sweep {phases['lane_sweep']['calls']} calls")
    return 0


# ---- self test ---------------------------------------------------------

def cmd_self_test():
    baseline = {
        "bench": "bench_large_n", "nodes": 4096, "slots": 400,
        "metrics": {"slots_per_sec_t1": 100.0, "slots_per_sec_t4": 250.0,
                    "peak_rss_mb": 800.0, "delivered_cells": 123456,
                    "equivalent": 1},
    }

    def clone(**metric_changes):
        doc = json.loads(json.dumps(baseline))
        doc["metrics"].update(metric_changes)
        return doc

    cases = [
        ("identical run passes", clone(), {}, 0),
        ("noise within tolerance passes",
         clone(slots_per_sec_t1=60.0, peak_rss_mb=900.0), {}, 0),
        ("slots/sec regression fails",
         clone(slots_per_sec_t4=50.0), {}, 1),
        ("RSS blow-up fails", clone(peak_rss_mb=2000.0), {}, 1),
        ("deterministic count drift fails",
         clone(delivered_cells=123956), {}, 1),
        ("equivalence break fails", clone(equivalent=0), {}, 1),
        ("--tol override tightens the gate",
         clone(slots_per_sec_t1=60.0), {"slots_per_sec_t1": 0.9}, 1),
        ("zero ratio baseline is an explicit error, not a vacuous pass",
         clone(), {}, 1, {"slots_per_sec_t1": 0.0}),
        ("non-numeric baseline is an explicit error",
         clone(), {}, 1, {"delivered_cells": "123456"}),
        ("non-numeric current value is an explicit error",
         clone(delivered_cells="oops"), {}, 1),
    ]
    failures = 0
    for name, current, overrides, want, *extra in cases:
        base = baseline
        if extra:
            base = json.loads(json.dumps(baseline))
            base["metrics"].update(extra[0])
        errors = compare(current, base, overrides)
        got = 1 if errors else 0
        status = "ok" if got == want else "SELF-TEST FAILURE"
        if got != want:
            failures += 1
        print(f"[{status}] {name}")

    mismatched = clone()
    mismatched["nodes"] = 1024
    if not compare(mismatched, baseline, {}):
        failures += 1
        print("[SELF-TEST FAILURE] config mismatch must fail")
    else:
        print("[ok] config mismatch fails")

    profile = {
        "schema": PROFILE_SCHEMA, "slots": 10,
        "phases": [{"phase": name, "calls": 10, "total_ns": 1000,
                    "active_slots": 10,
                    "slot_ns": {k: 0 for k in PERCENTILE_KEYS}}
                   for name in PROFILE_PHASES],
        "pool": {"threads": 1, "batches": 0, "shards": 0,
                 "owner_wait_ns": 0, "window_ns": 0, "workers": []},
        "memory": {"samples": 1, "peak_rss_bytes": 1 << 20,
                   "gauges": [{"name": "a", "bytes": 1, "peak_bytes": 2}]},
    }
    if check_profile(profile):
        failures += 1
        print("[SELF-TEST FAILURE] valid profile must pass schema")
    else:
        print("[ok] valid profile passes schema")
    profile["phases"] = profile["phases"][:-1]
    if not check_profile(profile):
        failures += 1
        print("[SELF-TEST FAILURE] missing phase must fail schema")
    else:
        print("[ok] missing phase fails schema")

    # write-baseline round-trip: a regenerated baseline must compare clean
    # against the run that produced it, and a metrics-free run must be
    # rejected.
    import os
    import tempfile
    run_doc = clone(slots_per_sec_t1=140.0, peak_rss_mb=750.0)
    run_doc["rows"] = [{"threads": "1", "slots/sec": "140"}]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "BENCH_test.json")
        if write_baseline(run_doc, path, baseline):
            failures += 1
            print("[SELF-TEST FAILURE] write-baseline must accept a run "
                  "with metrics")
        else:
            written = json.load(open(path))
            if written != run_doc:
                failures += 1
                print("[SELF-TEST FAILURE] written baseline must round-trip")
            elif compare(run_doc, written, {}):
                failures += 1
                print("[SELF-TEST FAILURE] run must compare clean against "
                      "its own baseline")
            else:
                print("[ok] write-baseline round-trips and compares clean")
        bad = {"bench": "x", "rows": []}
        if not write_baseline(bad, os.path.join(tmp, "bad.json")):
            failures += 1
            print("[SELF-TEST FAILURE] metrics-free run must be rejected")
        else:
            print("[ok] write-baseline rejects a metrics-free run")

    if failures:
        return fail(f"{failures} self-test case(s) wrong")
    print("self-test OK")
    return 0


def main():
    argv = sys.argv[1:]
    if not argv:
        print(__doc__)
        return 2
    if argv[0] == "--self-test":
        return cmd_self_test()
    if argv[0] == "--schema":
        if len(argv) != 2:
            return fail("--schema needs exactly one profile.json path")
        return cmd_schema(argv[1])
    if argv[0] == "compare":
        return cmd_compare(argv[1:])
    if argv[0] == "write-baseline":
        return cmd_write_baseline(argv[1:])
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main())
