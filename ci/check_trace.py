#!/usr/bin/env python3
"""Validate sorn_tool simulate artifacts: JSONL trace, metrics JSON, CSV.

Usage: check_trace.py <trace.jsonl> <metrics.json> <timeseries.csv>
"""
import csv
import json
import sys


def main() -> None:
    trace_path, metrics_path, csv_path = sys.argv[1:4]

    events = [json.loads(line) for line in open(trace_path)]
    assert events, "trace is empty"
    assert all("ev" in e and "slot" in e for e in events), \
        "malformed trace event"
    assert any(e["ev"] == "flow_inject" for e in events), \
        "no flow_inject events"

    metrics = json.load(open(metrics_path))
    for key in ("counters", "fct_ps", "timeseries", "registry"):
        assert key in metrics, f"metrics JSON missing {key!r}"
    assert metrics["counters"]["delivered_cells"] > 0

    rows = list(csv.DictReader(open(csv_path)))
    assert rows and "queued_cells" in rows[0], "bad time-series CSV"
    print(f"trace OK: {len(events)} events, "
          f"{len(rows)} time-series samples")


if __name__ == "__main__":
    main()
