#!/usr/bin/env python3
"""Validate sorn_tool simulate artifacts: JSONL trace, metrics JSON, CSV.

Usage: check_trace.py <trace.jsonl> <metrics.json> <timeseries.csv>
                      [--expect-faults]

With --expect-faults the trace must additionally contain the fault
pipeline's events: node_fail, node_heal, and retransmit.
"""
import csv
import json
import sys


def main() -> None:
    args = sys.argv[1:]
    expect_faults = "--expect-faults" in args
    if expect_faults:
        args.remove("--expect-faults")
    trace_path, metrics_path, csv_path = args[:3]

    events = [json.loads(line) for line in open(trace_path)]
    assert events, "trace is empty"
    assert all("ev" in e and "slot" in e for e in events), \
        "malformed trace event"
    assert any(e["ev"] == "flow_inject" for e in events), \
        "no flow_inject events"

    if expect_faults:
        kinds = {e["ev"] for e in events}
        for needed in ("node_fail", "node_heal", "retransmit"):
            assert needed in kinds, f"no {needed} events in trace"
        heals = [e for e in events if e["ev"] == "node_heal"]
        fails = [e for e in events if e["ev"] == "node_fail"]
        assert len(heals) == len(fails), \
            "every scripted blast victim must heal"

    metrics = json.load(open(metrics_path))
    for key in ("counters", "fct_ps", "timeseries", "registry"):
        assert key in metrics, f"metrics JSON missing {key!r}"
    assert metrics["counters"]["delivered_cells"] > 0

    rows = list(csv.DictReader(open(csv_path)))
    assert rows and "queued_cells" in rows[0], "bad time-series CSV"
    print(f"trace OK: {len(events)} events, "
          f"{len(rows)} time-series samples")


if __name__ == "__main__":
    main()
