#include "scenario/design.h"

#include <algorithm>

#include "scenario/scenario_config.h"

namespace sorn {

DesignRegistry& DesignRegistry::instance() {
  static DesignRegistry* registry = [] {
    auto* r = new DesignRegistry();
    register_builtin_designs(*r);
    return r;
  }();
  return *registry;
}

void DesignRegistry::add(std::unique_ptr<Design> design) {
  const std::string name = design->name();
  for (auto& d : designs_) {
    if (d->name() == name) {
      d = std::move(design);
      return;
    }
  }
  const auto pos = std::lower_bound(
      designs_.begin(), designs_.end(), name,
      [](const std::unique_ptr<Design>& d, const std::string& key) {
        return d->name() < key;
      });
  designs_.insert(pos, std::move(design));
}

const Design* DesignRegistry::find(const std::string& name) const {
  for (const auto& d : designs_)
    if (d->name() == name) return d.get();
  return nullptr;
}

std::vector<std::string> DesignRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(designs_.size());
  for (const auto& d : designs_) out.push_back(d->name());
  return out;
}

bool DesignRegistry::build(const std::string& name,
                           const ScenarioConfig& config, BuiltDesign* out,
                           std::string* error) const {
  const Design* design = find(name);
  if (design == nullptr) {
    if (error != nullptr) {
      std::string msg = "unknown design '" + name + "' (available:";
      for (const auto& n : names()) msg += " " + n;
      msg += ")";
      *error = msg;
    }
    return false;
  }
  // Hand the factory a fresh value so no field of a previous build (an
  // old sorn_network handle, a stale bulk_router) can leak through, and
  // so *out really is untouched on failure.
  BuiltDesign built;
  if (!design->build(config, &built, error)) return false;
  *out = std::move(built);
  return true;
}

}  // namespace sorn
