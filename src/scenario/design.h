// Design: the common construction interface over the routing designs the
// paper compares (Table 1 / Fig. 2f) — SORN, hierarchical SORN,
// RotorNet-style, Opera-style, h-dimensional ORN, mixed-radix ORN, and
// the flat 1D ORN + VLB baseline.
//
// Each design registers a factory that, given a ScenarioConfig, produces
// its circuit schedule and router(s); DesignRegistry lets every tool,
// bench and example enumerate and build them through one code path
// (`sorn_tool simulate --design <d>`, `sorn_tool compare`), instead of
// the per-design construction that used to be copy-pasted across
// examples/ and bench/.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "routing/router.h"
#include "topo/clique.h"
#include "topo/hierarchy.h"
#include "topo/schedule.h"

namespace sorn {

struct ScenarioConfig;
class SornNetwork;

// A built fabric: borrowed pointers into design-owned state, kept alive
// by `owner`. The pointers stay valid for the lifetime of the BuiltDesign
// (move-sharing the owner keeps them valid across copies).
struct BuiltDesign {
  const CircuitSchedule* schedule = nullptr;
  const Router* router = nullptr;
  // Secondary router for designs that split traffic classes (Opera: bulk
  // flows on the direct rotation circuit). Null for single-router designs.
  const Router* bulk_router = nullptr;
  // Clique structure locality traffic is generated over; null for designs
  // without one (each node treated as its own clique by the runner).
  const CliqueAssignment* cliques = nullptr;
  // Hierarchy for hier-locality traffic; null otherwise.
  const Hierarchy* hierarchy = nullptr;
  // Closed-form worst-case throughput r of this configuration.
  double predicted_throughput = 0.0;
  // Human-oriented description of the materialized configuration
  // ("q = 3/1, period 24"), for tool output.
  std::string summary;
  // Route around the given live failure state (nullptr restores oblivious
  // routing). Always callable.
  std::function<void(const FailureView*)> set_failure_view;
  // Set only by the "sorn" design: the full facade, for callers that
  // drive macro-reconfiguration (SornNetwork::adapt) on top of the
  // scenario machinery. Shares ownership with `owner`.
  std::shared_ptr<SornNetwork> sorn_network;
  // Keeps everything the pointers reference alive.
  std::shared_ptr<void> owner;
};

class Design {
 public:
  virtual ~Design() = default;

  // Registry key ("sorn", "orn-hd", ...).
  virtual std::string name() const = 0;
  // One-line description for `sorn_tool designs`.
  virtual std::string description() const = 0;

  // Materialize schedule + router(s) for the config. On failure returns
  // false and sets *error (config invalid for this design, e.g. orn-hd
  // with a node count that is not a perfect power); out is untouched.
  virtual bool build(const ScenarioConfig& config, BuiltDesign* out,
                     std::string* error) const = 0;
};

// Process-wide design registry. Builtin designs are registered on first
// access (no static-initialization-order games); libraries and tests may
// add their own. Lookup and listing are deterministic: names are kept
// sorted.
class DesignRegistry {
 public:
  // An empty registry; tests compose their own. instance() is the
  // builtin-populated process-wide one.
  DesignRegistry() = default;

  static DesignRegistry& instance();

  // Register a design; replaces any existing design of the same name.
  void add(std::unique_ptr<Design> design);

  // nullptr when unknown.
  const Design* find(const std::string& name) const;

  // All registered names, sorted.
  std::vector<std::string> names() const;

  // Convenience: find + build, with an "unknown design" error naming the
  // available ones when the name does not resolve.
  bool build(const std::string& name, const ScenarioConfig& config,
             BuiltDesign* out, std::string* error) const;

 private:
  std::vector<std::unique_ptr<Design>> designs_;  // sorted by name
};

// Registers the seven builtin designs into `registry`. Called once by
// DesignRegistry::instance(); exposed for tests that build a private
// registry.
void register_builtin_designs(DesignRegistry& registry);

}  // namespace sorn
