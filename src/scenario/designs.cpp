// The seven builtin designs: each factory maps a ScenarioConfig onto the
// exact construction the examples and benches used to hand-roll, so a
// scenario built through the registry is byte-for-byte the fabric those
// binaries simulated before the port.
#include <cmath>
#include <memory>
#include <utility>

#include "analysis/models.h"
#include "core/hier_sorn.h"
#include "core/sorn.h"
#include "routing/orn_hd_routing.h"
#include "routing/orn_mixed_routing.h"
#include "routing/rotor_routing.h"
#include "routing/vlb.h"
#include "scenario/design.h"
#include "scenario/scenario_config.h"
#include "topo/schedule_builder.h"
#include "util/table.h"

namespace sorn {
namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

LbMode lb_mode_of(const ScenarioConfig& config) {
  return config.lb_first_available ? LbMode::kFirstAvailable : LbMode::kRandom;
}

// ---- sorn ----------------------------------------------------------------

class SornDesign final : public Design {
 public:
  std::string name() const override { return "sorn"; }
  std::string description() const override {
    return "flat SORN: clique schedule with oversubscription q = q*(x) "
           "(the paper's design)";
  }

  bool build(const ScenarioConfig& config, BuiltDesign* out,
             std::string* error) const override {
    if (config.overrides.cliques == nullptr &&
        config.nodes % config.cliques != 0) {
      return fail(error, format("sorn: nodes (%lld) must divide into %lld "
                                "equal cliques",
                                static_cast<long long>(config.nodes),
                                static_cast<long long>(config.cliques)));
    }
    if (!config.inter_clique_weights.empty() &&
        config.inter_clique_weights.size() !=
            static_cast<std::size_t>(config.cliques) *
                static_cast<std::size_t>(config.cliques)) {
      return fail(error,
                  format("sorn: inter_clique_weights must be cliques x "
                         "cliques = %lld values (got %zu)",
                         static_cast<long long>(config.cliques) *
                             static_cast<long long>(config.cliques),
                         config.inter_clique_weights.size()));
    }

    SornConfig cfg;
    cfg.nodes = config.nodes;
    cfg.cliques = config.cliques;
    cfg.locality_x = config.locality_x;
    cfg.q = Rational{config.q_num, config.q_den};
    cfg.max_q_denominator = config.max_q_denominator;
    cfg.uplinks = config.lanes;
    cfg.slot_duration = config.slot_ns * 1000;
    cfg.propagation_per_hop = config.propagation_ns * 1000;
    cfg.lb_mode = lb_mode_of(config);
    cfg.inter_clique_weights = config.inter_clique_weights;
    cfg.weighted_options.demand_alpha = config.weighted_alpha;

    auto net = std::make_shared<SornNetwork>(
        config.overrides.cliques != nullptr
            ? SornNetwork::build_with_assignment(cfg, *config.overrides.cliques)
            : SornNetwork::build(cfg));
    out->schedule = &net->schedule();
    out->router = &net->router();
    out->cliques = &net->cliques();
    out->predicted_throughput = net->predicted_throughput();
    out->summary = format("q = %lld/%lld, period %lld slots",
                          static_cast<long long>(net->q().num),
                          static_cast<long long>(net->q().den),
                          static_cast<long long>(net->schedule().period()));
    out->set_failure_view = [net](const FailureView* view) {
      net->set_failure_view(view);
    };
    out->sorn_network = net;
    out->owner = net;
    return true;
  }
};

// ---- hier ----------------------------------------------------------------

class HierDesign final : public Design {
 public:
  std::string name() const override { return "hier"; }
  std::string description() const override {
    return "two-level hierarchical SORN: pods within clusters, slot shares "
           "derived from the locality split (paper Sec. 6)";
  }

  bool build(const ScenarioConfig& config, BuiltDesign* out,
             std::string* error) const override {
    const auto pods = static_cast<std::int64_t>(config.clusters) *
                      static_cast<std::int64_t>(config.pods_per_cluster);
    if (pods <= 0 || config.nodes % pods != 0) {
      return fail(error,
                  format("hier: nodes (%lld) must divide into %lld clusters "
                         "x %lld pods",
                         static_cast<long long>(config.nodes),
                         static_cast<long long>(config.clusters),
                         static_cast<long long>(config.pods_per_cluster)));
    }

    HierSornConfig cfg;
    cfg.nodes = config.nodes;
    cfg.clusters = config.clusters;
    cfg.pods_per_cluster = config.pods_per_cluster;
    cfg.pod_locality_x1 = config.pod_locality_x1;
    cfg.cluster_locality_x2 = config.cluster_locality_x2;
    cfg.uplinks = config.lanes;
    cfg.slot_duration = config.slot_ns * 1000;
    cfg.propagation_per_hop = config.propagation_ns * 1000;
    cfg.lb_mode = lb_mode_of(config);

    struct Holder {
      HierSornNetwork net;
      CliqueAssignment pods;
      explicit Holder(HierSornNetwork n)
          : net(std::move(n)), pods(net.hierarchy().pods()) {}
    };
    auto holder = std::make_shared<Holder>(HierSornNetwork::build(cfg));
    out->schedule = &holder->net.schedule();
    out->router = &holder->net.router();
    out->cliques = &holder->pods;
    out->hierarchy = &holder->net.hierarchy();
    out->predicted_throughput = holder->net.predicted_throughput();
    const auto shares = holder->net.shares();
    out->summary =
        format("shares %lld:%lld:%lld, period %lld slots",
               static_cast<long long>(shares.intra),
               static_cast<long long>(shares.inter),
               static_cast<long long>(shares.global),
               static_cast<long long>(holder->net.schedule().period()));
    out->set_failure_view = [holder](const FailureView* view) {
      holder->net.set_failure_view(view);
    };
    out->owner = holder;
    return true;
  }
};

// ---- vlb / rotor (round-robin schedules + VLB routing) -------------------

struct VlbHolder {
  CircuitSchedule schedule;
  VlbRouter router;
  VlbHolder(CircuitSchedule s, LbMode mode)
      : schedule(std::move(s)), router(&schedule, mode) {}
};

void fill_vlb(std::shared_ptr<VlbHolder> holder, BuiltDesign* out) {
  out->schedule = &holder->schedule;
  out->router = &holder->router;
  out->predicted_throughput = 0.5;
  out->set_failure_view = [holder](const FailureView* view) {
    holder->router.set_failure_view(view);
  };
  out->owner = std::move(holder);
}

class VlbDesign final : public Design {
 public:
  std::string name() const override { return "vlb"; }
  std::string description() const override {
    return "flat 1D ORN: round-robin schedule + 2-hop VLB (Sirius/Shoal "
           "baseline)";
  }

  bool build(const ScenarioConfig& config, BuiltDesign* out,
             std::string* error) const override {
    (void)error;
    auto holder = std::make_shared<VlbHolder>(
        ScheduleBuilder::round_robin(config.nodes), lb_mode_of(config));
    fill_vlb(holder, out);
    out->summary = format("round robin, period %lld slots",
                          static_cast<long long>(config.nodes - 1));
    return true;
  }
};

class RotorDesign final : public Design {
 public:
  std::string name() const override { return "rotor"; }
  std::string description() const override {
    return "RotorNet-style slow rotation: cyclic shifts held for "
           "dwell_slots, 2-hop VLB routing";
  }

  bool build(const ScenarioConfig& config, BuiltDesign* out,
             std::string* error) const override {
    if (config.dwell_slots < 1)
      return fail(error, "rotor: dwell_slots must be >= 1");
    auto holder = std::make_shared<VlbHolder>(
        ScheduleBuilder::rotor(config.nodes, config.dwell_slots),
        lb_mode_of(config));
    fill_vlb(holder, out);
    out->summary =
        format("dwell %lld slots, period %lld slots",
               static_cast<long long>(config.dwell_slots),
               static_cast<long long>(holder->schedule.period()));
    return true;
  }
};

// ---- opera ---------------------------------------------------------------

// Bulk flows wait for the direct rotation circuit (Opera's split).
class OperaBulkRouter final : public Router {
 public:
  Path route(NodeId src, NodeId dst, Slot, Rng&) const override {
    return RotorRouter::route_bulk(src, dst);
  }
  int max_hops() const override { return 1; }
};

class OperaDesign final : public Design {
 public:
  std::string name() const override { return "opera"; }
  std::string description() const override {
    return "Opera-style fabric: random 1-factorization rotation, "
           "expander multi-hop for short flows, direct circuit for bulk";
  }

  bool build(const ScenarioConfig& config, BuiltDesign* out,
             std::string* error) const override {
    if (config.nodes % 2 != 0)
      return fail(error, "opera: nodes must be even (1-factorization of "
                         "the complete graph)");
    if (config.dwell_slots < 1)
      return fail(error, "opera: dwell_slots must be >= 1");

    struct Holder {
      CircuitSchedule schedule;
      RotorRouter short_router;
      OperaBulkRouter bulk_router;
      Holder(CircuitSchedule s, int lanes, int max_hops)
          : schedule(std::move(s)), short_router(&schedule, lanes, max_hops) {}
    };
    auto holder = std::make_shared<Holder>(
        ScheduleBuilder::rotor_random(config.nodes, config.dwell_slots,
                                      config.schedule_seed),
        config.lanes, config.max_short_hops);
    out->schedule = &holder->schedule;
    out->router = &holder->short_router;
    out->bulk_router = &holder->bulk_router;
    out->predicted_throughput = analysis::kOperaThroughput;
    out->summary =
        format("dwell %lld slots, %d lanes, short hop budget %d",
               static_cast<long long>(config.dwell_slots), config.lanes,
               config.max_short_hops);
    out->set_failure_view = [holder](const FailureView* view) {
      holder->short_router.set_failure_view(view);
      holder->bulk_router.set_failure_view(view);
    };
    out->owner = std::move(holder);
    return true;
  }
};

// ---- orn-hd / orn-mixed --------------------------------------------------

// r with r^h == n, or 0 when n is not a perfect h-th power.
NodeId hd_radix(NodeId n, int h) {
  const auto r = static_cast<NodeId>(
      std::llround(std::pow(static_cast<double>(n), 1.0 / h)));
  for (NodeId cand = r > 1 ? r - 1 : 1; cand <= r + 1; ++cand) {
    NodeId p = 1;
    for (int i = 0; i < h; ++i) p *= cand;
    if (p == n) return cand;
  }
  return 0;
}

class OrnHdDesign final : public Design {
 public:
  std::string name() const override { return "orn-hd"; }
  std::string description() const override {
    return "h-dimensional optimal ORN: nodes on an r^h grid, per-dimension "
           "round robin with VLB inside each dimension";
  }

  bool build(const ScenarioConfig& config, BuiltDesign* out,
             std::string* error) const override {
    const int h = config.orn_dims;
    if (h < 1 || h > 3)
      return fail(error, format("orn-hd: orn_dims must be in [1, 3] "
                                "(got %d; paths cap at 8 nodes)",
                                h));
    const NodeId r = hd_radix(config.nodes, h);
    if (r < 2) {
      return fail(error,
                  format("orn-hd: nodes (%lld) must be r^%d for some "
                         "radix r >= 2",
                         static_cast<long long>(config.nodes), h));
    }

    struct Holder {
      CircuitSchedule schedule;
      OrnHdRouter router;
      Holder(CircuitSchedule s, NodeId n, int dims)
          : schedule(std::move(s)), router(n, dims) {}
    };
    auto holder = std::make_shared<Holder>(
        ScheduleBuilder::orn_hd(config.nodes, h), config.nodes, h);
    out->schedule = &holder->schedule;
    out->router = &holder->router;
    out->predicted_throughput = analysis::orn_hd_throughput(h);
    out->summary = format("%dD grid, radix %lld, period %lld slots", h,
                          static_cast<long long>(r),
                          static_cast<long long>(holder->schedule.period()));
    out->set_failure_view = [holder](const FailureView* view) {
      holder->router.set_failure_view(view);
    };
    out->owner = std::move(holder);
    return true;
  }
};

class OrnMixedDesign final : public Design {
 public:
  std::string name() const override { return "orn-mixed"; }
  std::string description() const override {
    return "mixed-radix ORN: per-dimension round robin over radices "
           "r1 x r2 x ... = nodes (non-square node counts)";
  }

  bool build(const ScenarioConfig& config, BuiltDesign* out,
             std::string* error) const override {
    std::vector<NodeId> radices = config.radices;
    if (radices.empty()) radices = factor(config.nodes);
    if (radices.empty() || radices.size() > 3) {
      return fail(error,
                  format("orn-mixed: need 1..3 radices multiplying to "
                         "nodes (%lld); give `radices` explicitly",
                         static_cast<long long>(config.nodes)));
    }
    NodeId product = 1;
    for (const NodeId r : radices) {
      if (r < 2) return fail(error, "orn-mixed: every radix must be >= 2");
      product *= r;
    }
    if (product != config.nodes) {
      return fail(error,
                  format("orn-mixed: radices multiply to %lld, not nodes "
                         "(%lld)",
                         static_cast<long long>(product),
                         static_cast<long long>(config.nodes)));
    }

    struct Holder {
      CircuitSchedule schedule;
      OrnMixedRouter router;
      Holder(CircuitSchedule s, NodeId n, std::vector<NodeId> r)
          : schedule(std::move(s)), router(n, std::move(r)) {}
    };
    auto holder = std::make_shared<Holder>(
        ScheduleBuilder::orn_mixed(config.nodes, radices), config.nodes,
        radices);
    out->schedule = &holder->schedule;
    out->router = &holder->router;
    out->predicted_throughput =
        analysis::orn_hd_throughput(static_cast<int>(radices.size()));
    std::string dims;
    for (std::size_t i = 0; i < radices.size(); ++i) {
      if (i > 0) dims += "x";
      dims += format("%lld", static_cast<long long>(radices[i]));
    }
    out->summary = format("radices %s, period %lld slots", dims.c_str(),
                          static_cast<long long>(holder->schedule.period()));
    out->set_failure_view = [holder](const FailureView* view) {
      holder->router.set_failure_view(view);
    };
    out->owner = std::move(holder);
    return true;
  }

 private:
  // Factor n into at most 3 radices >= 2, largest-balanced first: peel the
  // largest divisor <= sqrt(remainder) repeatedly. {} when impossible.
  static std::vector<NodeId> factor(NodeId n) {
    if (n < 2) return {};
    std::vector<NodeId> out;
    NodeId rest = n;
    while (rest > 1 && out.size() < 3) {
      if (out.size() == 2) {  // last dimension takes the remainder
        out.push_back(rest);
        rest = 1;
        break;
      }
      NodeId best = rest;  // prime remainder: single dimension
      for (NodeId d = 2; d * d <= rest; ++d)
        if (rest % d == 0) best = rest / d;
      out.push_back(best);
      rest /= best;
    }
    if (rest != 1) return {};
    return out;
  }
};

}  // namespace

void register_builtin_designs(DesignRegistry& registry) {
  registry.add(std::make_unique<SornDesign>());
  registry.add(std::make_unique<HierDesign>());
  registry.add(std::make_unique<VlbDesign>());
  registry.add(std::make_unique<RotorDesign>());
  registry.add(std::make_unique<OperaDesign>());
  registry.add(std::make_unique<OrnHdDesign>());
  registry.add(std::make_unique<OrnMixedDesign>());
}

}  // namespace sorn
