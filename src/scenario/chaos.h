// Chaos campaign: seeded randomized fault soup with invariants asserted
// every slot.
//
// One chaos run derives a complete ScenarioConfig from a single seed —
// data-plane blast (fail/heal, gray degrade/throttle, flapping links,
// stochastic MTBF/MTTR), a closed-loop control plane with outage windows,
// stochastic controller crashes, degraded telemetry and a safe-mode
// policy, plus retransmission with jitter — runs it with the invariant
// checker attached, and re-runs it at a different thread count to
// byte-compare the metrics artifact. A seed therefore indicts itself: any
// failure reproduces from `sorn_tool chaos --seed S` alone, and the
// result carries that one-line replay recipe.
//
// Everything is a pure function of the seed and knobs — a failing seed in
// CI replays identically on a laptop.
#pragma once

#include <cstdint>
#include <string>

#include "scenario/scenario_config.h"

namespace sorn {

struct ChaosKnobs {
  NodeId nodes = 32;
  Slot slots = 3000;        // arrival horizon per run
  Slot drain_slots = 60000;  // bounded drain budget
  // Second leg of the determinism cross-check; the first always runs at
  // 1 thread. <= 1 skips the cross-check.
  int compare_threads = 3;
};

struct ChaosResult {
  std::uint64_t seed = 0;
  bool ok = false;
  // Failure detail: invariant violations, a runner error, or the
  // thread-count mismatch. Empty when ok.
  std::string error;
  // One-line reproduction command for this seed.
  std::string replay;
  // Run color, for logs.
  std::uint64_t faults_applied = 0;
  std::uint64_t gray_drops = 0;
  std::uint64_t controller_outages = 0;
  std::uint64_t safe_mode_activations = 0;
  std::uint64_t replans = 0;
  std::uint64_t invariant_slots = 0;  // slots the checker validated
  std::uint64_t flows_injected = 0;
  std::uint64_t delivered_cells = 0;
};

// The randomized scenario for one seed (deterministic; no global state).
ScenarioConfig make_chaos_config(std::uint64_t seed, const ChaosKnobs& knobs);

// Run one seed: scenario + invariants at 1 thread, then byte-compare the
// metrics artifact against compare_threads.
ChaosResult run_chaos(std::uint64_t seed, const ChaosKnobs& knobs);

}  // namespace sorn
