// ScenarioRunner: owns the full lifecycle of one scenario — build the
// design through the registry, wire the simulator (threads, failure view,
// telemetry sinks, fault injector, retransmission), generate traffic, run
// the configured workload, and flush the artifacts — so every tool, bench
// and example drives an experiment through one code path.
//
// Construction is separate from running: benches that need the raw
// simulator (adaptation experiments stepping it by hand) call create()
// and use network()/design() directly without run().
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "scenario/design.h"
#include "scenario/scenario_config.h"
#include "sim/invariants.h"
#include "sim/network.h"
#include "sim/workload_driver.h"
#include "traffic/demand_model.h"
#include "util/assert.h"

namespace sorn {

class ControlFaultModel;
class ControlPlane;
class DctcpTransport;
class FaultInjector;
class FileTraceSink;
class SafeModeGuard;
class Telemetry;

class ScenarioRunner {
 public:
  // Validate the config, build the design and wire the simulator, traffic,
  // telemetry and faults. On failure returns null and sets *error.
  static std::unique_ptr<ScenarioRunner> create(const ScenarioConfig& config,
                                                std::string* error);
  ~ScenarioRunner();

  const ScenarioConfig& config() const { return config_; }
  const BuiltDesign& design() const { return design_; }
  SlottedNetwork& network() { return *network_; }
  const SlottedNetwork& network() const { return *network_; }
  // The scenario's demand, in whichever backend config.traffic_backend
  // selected (an override matrix keeps its own backend). Only valid after
  // create() — there is no placeholder matrix.
  const DemandModel& traffic() const {
    SORN_ASSERT(traffic_ != nullptr, "traffic accessed before create()");
    return *traffic_;
  }
  // The clique structure traffic was generated over (the design's, or a
  // contiguous fallback for designs without one).
  const CliqueAssignment& traffic_cliques() const { return traffic_cliques_; }
  // Non-null only when the config enables faults.
  const FaultInjector* injector() const {
    return faults_enabled_ ? injector_.get() : nullptr;
  }
  // Non-null only when a telemetry sink is configured.
  Telemetry* telemetry() {
    return telemetry_attached_ ? telemetry_.get() : nullptr;
  }
  // Non-null only when the config enables profiling (profile flag or a
  // profile_json path).
  Profiler* profiler() { return profiler_.get(); }
  // Non-null only when epoch_slots > 0 enables the control loop.
  const ControlPlane* control() const { return control_.get(); }
  // Non-null only when the config describes control-plane faults.
  const ControlFaultModel* control_faults() const {
    return control_faults_.get();
  }
  // Non-null only when the control loop runs with faults (the guard is
  // what keeps the data plane defined during outages).
  const SafeModeGuard* safe_mode() const { return safe_mode_.get(); }
  // Non-null only when check_invariants is set.
  const InvariantChecker* invariant_checker() const {
    return checker_.get();
  }
  // Non-null only when config.transport == "dctcp" wires the closed-loop
  // transport (window/ack counters live here, not in SimMetrics).
  const DctcpTransport* transport() const { return transport_.get(); }

  // Runs on the coordinating thread at the start of every slot, before
  // the fault injector's tick. Set before run().
  void set_slot_hook(WorkloadDriver::SlotHook hook) {
    user_hook_ = std::move(hook);
  }

  // Run the configured workload and write the configured artifacts.
  // Returns false (and sets *error) when an artifact cannot be written;
  // the simulation itself has no failure mode. One-shot.
  bool run(std::string* error);

  // ---- results (valid after run()) ----
  const SimMetrics& metrics() const { return network_->metrics(); }
  // Closed-loop delivered throughput r (saturation workloads; 0 for
  // open-loop flows).
  double saturation_r() const { return saturation_r_; }
  std::uint64_t flows_injected() const { return flows_injected_; }

  // Artifact bodies, regenerable on demand (run() writes these to the
  // configured paths).
  std::string metrics_json() const;
  std::string timeseries_csv() const;
  // The profile.json body; empty when profiling is off. Wall-clock data —
  // unlike the two artifacts above it is NOT byte-deterministic.
  std::string profile_json() const;

 private:
  ScenarioRunner() = default;

  bool run_flows(std::string* error);
  void run_saturation();

  ScenarioConfig config_;
  BuiltDesign design_;
  std::unique_ptr<SlottedNetwork> network_;
  std::unique_ptr<DemandModel> traffic_;  // set by create(), never null after
  CliqueAssignment traffic_cliques_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<Profiler> profiler_;
  std::unique_ptr<FileTraceSink> trace_sink_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<ControlPlane> control_;
  std::unique_ptr<ControlFaultModel> control_faults_;
  std::unique_ptr<SafeModeGuard> safe_mode_;
  std::unique_ptr<InvariantChecker> checker_;
  std::unique_ptr<DctcpTransport> transport_;
  WorkloadDriver::SlotHook user_hook_;
  bool telemetry_attached_ = false;
  bool faults_enabled_ = false;
  bool ran_ = false;
  double saturation_r_ = 0.0;
  std::uint64_t flows_injected_ = 0;
};

}  // namespace sorn
