#include "scenario/chaos.h"

#include <string>
#include <utility>

#include "control/control_faults.h"
#include "control/control_plane.h"
#include "control/safe_mode.h"
#include "fault/fault_injector.h"
#include "scenario/scenario_runner.h"
#include "util/rng.h"
#include "util/table.h"

namespace sorn {
namespace {

// Stream-splitting salt so the soup's shape and the sub-seeds fed to the
// simulator are independent functions of the campaign seed.
constexpr std::uint64_t kSoupSalt = 0x6368616f73536f75ULL;  // "chaosSou"

NodeId pick_other(Rng& rng, NodeId nodes, NodeId not_this) {
  NodeId other = static_cast<NodeId>(rng.next_below(
      static_cast<std::uint64_t>(nodes - 1)));
  if (other >= not_this) ++other;
  return other;
}

}  // namespace

ScenarioConfig make_chaos_config(std::uint64_t seed, const ChaosKnobs& knobs) {
  Rng rng(seed ^ kSoupSalt);
  ScenarioConfig cfg;
  const NodeId nodes = knobs.nodes;
  const Slot slots = knobs.slots;

  cfg.design = "sorn";
  cfg.nodes = nodes;
  cfg.cliques = nodes % 8 == 0 && rng.next_below(2) == 0
                    ? 8
                    : nodes % 4 == 0 ? 4 : 2;
  cfg.locality_x = 0.3 + 0.4 * rng.next_double();
  cfg.lb_first_available = rng.next_below(2) == 0;
  cfg.propagation_ns = 0;
  cfg.seed = seed;
  cfg.arrival_seed = rng.next_u64();

  cfg.workload = WorkloadKind::kFlows;
  cfg.load = 0.15 + 0.25 * rng.next_double();
  cfg.slots = slots;
  cfg.drain_slots = knobs.drain_slots;
  cfg.flow_size = FlowSizeKind::kFixed;
  cfg.fixed_flow_bytes = 1280 + 256 * rng.next_below(8);

  // Losses and outages below are recoverable end-to-end only with
  // retransmission on; keep it always on, with randomized backoff jitter.
  cfg.retransmit_timeout = 48 + static_cast<Slot>(rng.next_below(80));
  cfg.retransmit_max_attempts = 12;
  cfg.retransmit_jitter = 0.5 * rng.next_double();

  // ---- data-plane fault soup ----
  // Scripted blast in the first half, healed/restored before the horizon
  // so the bounded drain has a fighting chance; ids validated at parse
  // time against `nodes` by the runner.
  std::string script;
  const auto window = [&](Slot* at, Slot* until) {
    *at = static_cast<Slot>(rng.next_below(
        static_cast<std::uint64_t>(slots / 2)));
    *until = *at + 50 +
             static_cast<Slot>(rng.next_below(
                 static_cast<std::uint64_t>(slots / 4)));
  };
  const std::uint64_t node_faults = rng.next_below(3);
  for (std::uint64_t i = 0; i < node_faults; ++i) {
    const NodeId n = static_cast<NodeId>(rng.next_below(nodes));
    Slot at = 0, until = 0;
    window(&at, &until);
    script += format("%lld fail-node %lld\n", static_cast<long long>(at),
                     static_cast<long long>(n));
    script += format("%lld heal-node %lld\n", static_cast<long long>(until),
                     static_cast<long long>(n));
  }
  const std::uint64_t circuit_faults = rng.next_below(3);
  for (std::uint64_t i = 0; i < circuit_faults; ++i) {
    const NodeId src = static_cast<NodeId>(rng.next_below(nodes));
    const NodeId dst = pick_other(rng, nodes, src);
    Slot at = 0, until = 0;
    window(&at, &until);
    script += format("%lld fail-circuit %lld %lld\n",
                     static_cast<long long>(at), static_cast<long long>(src),
                     static_cast<long long>(dst));
    script += format("%lld heal-circuit %lld %lld\n",
                     static_cast<long long>(until),
                     static_cast<long long>(src),
                     static_cast<long long>(dst));
  }
  const std::uint64_t gray = 1 + rng.next_below(3);
  for (std::uint64_t i = 0; i < gray; ++i) {
    const NodeId src = static_cast<NodeId>(rng.next_below(nodes));
    const NodeId dst = pick_other(rng, nodes, src);
    Slot at = 0, until = 0;
    window(&at, &until);
    if (rng.next_below(2) == 0) {
      script += format("%lld degrade-circuit %lld %lld %.3f\n",
                       static_cast<long long>(at),
                       static_cast<long long>(src),
                       static_cast<long long>(dst),
                       0.05 + 0.25 * rng.next_double());
    } else {
      script += format("%lld throttle-circuit %lld %lld %.3f\n",
                       static_cast<long long>(at),
                       static_cast<long long>(src),
                       static_cast<long long>(dst),
                       0.3 + 0.6 * rng.next_double());
    }
    script += format("%lld restore-circuit %lld %lld\n",
                     static_cast<long long>(until),
                     static_cast<long long>(src),
                     static_cast<long long>(dst));
  }
  if (rng.next_below(2) == 0) {
    const NodeId src = static_cast<NodeId>(rng.next_below(nodes));
    const NodeId dst = pick_other(rng, nodes, src);
    script += format(
        "%lld flap-circuit %lld %lld %lld %lld %lld\n",
        static_cast<long long>(rng.next_below(
            static_cast<std::uint64_t>(slots / 2))),
        static_cast<long long>(src), static_cast<long long>(dst),
        static_cast<long long>(1 + rng.next_below(3)),
        static_cast<long long>(2 + rng.next_below(8)),
        static_cast<long long>(4 + rng.next_below(16)));
  }
  cfg.fault_script = std::move(script);
  if (rng.next_below(2) == 0) {
    cfg.circuit_mtbf_slots = 20000.0 + 20000.0 * rng.next_double();
    cfg.circuit_mttr_slots = 150.0 + 300.0 * rng.next_double();
  }
  cfg.fault_seed = rng.next_u64();

  // ---- control plane + its faults ----
  cfg.epoch_slots = 150 + static_cast<Slot>(rng.next_below(150));
  const std::uint64_t outages = rng.next_below(3);
  for (std::uint64_t i = 0; i < outages; ++i) {
    const Slot start = static_cast<Slot>(rng.next_below(
        static_cast<std::uint64_t>(slots)));
    const Slot end = start + 100 + static_cast<Slot>(rng.next_below(400));
    cfg.control_outages.push_back(start);
    cfg.control_outages.push_back(end);
  }
  if (rng.next_below(2) == 0) {
    cfg.controller_mtbf_slots = 1500.0 + 3000.0 * rng.next_double();
    cfg.controller_mttr_slots = 200.0 + 400.0 * rng.next_double();
  }
  cfg.control_fault_seed = rng.next_u64();
  cfg.replan_apply_delay = static_cast<Slot>(rng.next_below(120));
  cfg.estimate_stale_epochs = static_cast<std::int64_t>(rng.next_below(3));
  cfg.estimate_noise = 0.3 * rng.next_double();
  cfg.safe_mode = rng.next_below(2) == 0 ? "vlb" : "hold";

  cfg.check_invariants = true;
  return cfg;
}

ChaosResult run_chaos(std::uint64_t seed, const ChaosKnobs& knobs) {
  ChaosResult result;
  result.seed = seed;
  result.replay = format(
      "sorn_tool chaos --seed %llu --nodes %lld --slots %lld",
      static_cast<unsigned long long>(seed),
      static_cast<long long>(knobs.nodes),
      static_cast<long long>(knobs.slots));

  ScenarioConfig cfg = make_chaos_config(seed, knobs);
  cfg.threads = 1;
  std::string error;
  auto runner = ScenarioRunner::create(cfg, &error);
  if (runner == nullptr) {
    result.error = "create: " + error;
    return result;
  }
  if (!runner->run(&error)) {
    result.error = error;
    return result;
  }

  if (runner->injector() != nullptr)
    result.faults_applied = runner->injector()->faults_applied();
  result.gray_drops = runner->metrics().gray_dropped_cells();
  if (runner->control_faults() != nullptr)
    result.controller_outages = runner->control_faults()->outages_started();
  if (runner->safe_mode() != nullptr)
    result.safe_mode_activations = runner->safe_mode()->activations();
  if (runner->control() != nullptr)
    result.replans = runner->control()->replans();
  if (runner->invariant_checker() != nullptr)
    result.invariant_slots = runner->invariant_checker()->slots_checked();
  result.flows_injected = runner->flows_injected();
  result.delivered_cells = runner->metrics().delivered_cells();

  // Determinism cross-check: the identical scenario at another thread
  // count must produce the byte-identical metrics artifact.
  if (knobs.compare_threads > 1) {
    ScenarioConfig cfg2 = make_chaos_config(seed, knobs);
    cfg2.threads = knobs.compare_threads;
    auto runner2 = ScenarioRunner::create(cfg2, &error);
    if (runner2 == nullptr) {
      result.error = "create (threads=" +
                     std::to_string(knobs.compare_threads) + "): " + error;
      return result;
    }
    if (!runner2->run(&error)) {
      result.error = "threads=" + std::to_string(knobs.compare_threads) +
                     ": " + error;
      return result;
    }
    if (runner2->metrics_json() != runner->metrics_json()) {
      result.error = format(
          "metrics artifact differs between --threads 1 and --threads %d "
          "(determinism contract broken)",
          knobs.compare_threads);
      return result;
    }
  }

  result.ok = true;
  return result;
}

}  // namespace sorn
