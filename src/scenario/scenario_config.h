// ScenarioConfig: one declarative description of a full experiment —
// fabric design, scale, traffic, workload, telemetry sinks, faults and
// retransmission — serializable to/from JSON so a scenario is a
// reproducible artifact (`sorn_tool simulate --scenario file.json`).
//
// Determinism contract: two runs of the same config (same seeds) produce
// byte-identical metrics/trace/CSV artifacts at any thread count; the
// scenario smoke job in CI byte-diffs --threads 1 vs 4 to keep this true.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/clique.h"
#include "traffic/demand_model.h"
#include "util/time.h"
#include "util/types.h"

namespace sorn {

class FaultScript;

// How the runner drives traffic.
enum class WorkloadKind {
  // Open-loop Poisson flow arrivals at `load`, run to `slots`, then drain.
  kFlows,
  // Closed-loop single-cell backlog (SaturationSource): warmup, then
  // measure `measure_slots`; ScenarioRunner::saturation_r() reports r.
  kSaturation,
  // Closed-loop flow-granular backlog (FlowSaturationSource).
  kFlowSaturation,
  // Synchronized incast waves: every incast_period_slots a fresh receiver
  // gets incast_fanin simultaneous flows of incast_bytes each.
  kIncast,
  // Allreduce phases (ring or binary tree per collective_kind), barrier-
  // separated by collective_phase_gap_slots, sized off the demand model.
  kCollective,
  // Rack-local/inter-rack Poisson mix with the inter-rack share
  // multiplied by oversub_factor (racks = the scenario's cliques).
  kOversubRack,
};

// True for the workloads the flow driver runs (arrivals + FCTs + drain):
// these all support faults, the control loop, retransmission and the
// closed-loop transport; the saturation workloads do not.
bool workload_uses_flow_driver(WorkloadKind k);

// Traffic matrix family (patterns.h) the scenario draws demand from.
enum class TrafficKind {
  kLocality,   // patterns::locality_mix(cliques, locality_x)
  kUniform,    // patterns::uniform(nodes)
  kRing,       // patterns::clique_ring(cliques, locality_x, ring_heavy_share)
  kHierLocality,  // patterns::hier_locality_mix(hierarchy, x1, x2)
};

// Flow size population for flow-granular workloads.
enum class FlowSizeKind {
  kPfabricWebSearch,
  kPfabricDataMining,
  kFixed,  // every flow is fixed_flow_bytes
};

// How flows are labeled for split FCT percentiles.
enum class ClassifyKind {
  kNone,    // every flow is class 0
  kClique,  // class 0 = intra-clique, class 1 = inter-clique
  kSize,    // class 0 = bytes <= bulk_cutoff_bytes, class 1 = larger
};

struct ScenarioConfig {
  // ---- fabric design ----
  // A name registered in DesignRegistry: "sorn", "hier", "rotor",
  // "opera", "orn-hd", "orn-mixed", "vlb".
  std::string design = "sorn";
  NodeId nodes = 64;
  CliqueId cliques = 8;
  double locality_x = 0.56;
  // Explicit oversubscription ratio; {0, 1} derives q*(x) capped at
  // max_q_denominator (sorn design only).
  std::int64_t q_num = 0;
  std::int64_t q_den = 1;
  std::int64_t max_q_denominator = 6;
  bool lb_first_available = false;  // LbMode for sorn/vlb/rotor designs
  // Weighted-inter SORN: apportion inter slots to this cliques x cliques
  // aggregate (empty = uniform round robin).
  std::vector<double> inter_clique_weights;
  double weighted_alpha = 0.7;

  // hier design.
  CliqueId clusters = 4;
  CliqueId pods_per_cluster = 4;
  double pod_locality_x1 = 0.5;
  double cluster_locality_x2 = 0.3;

  // rotor / opera designs.
  Slot dwell_slots = 900;
  std::uint64_t schedule_seed = 17;  // opera's random 1-factorization
  int max_short_hops = 6;            // opera expander hop budget
  // Flows larger than this ride the direct rotation circuit (opera's
  // short/bulk split); 0 = no split, everything on the primary router.
  std::uint64_t bulk_cutoff_bytes = 0;

  // orn-hd / orn-mixed designs.
  int orn_dims = 2;
  std::vector<NodeId> radices;  // orn-mixed; empty = factor automatically

  // ---- fabric parameters ----
  int lanes = 1;
  std::int64_t slot_ns = 100;
  std::int64_t propagation_ns = 0;
  std::uint64_t cell_bytes = 256;
  std::uint64_t max_queue_cells = 0;  // 0 = unbounded
  std::uint64_t seed = 42;            // network RNG (routing spray)
  // Engine threads; 0 = hardware default. Artifacts are byte-identical
  // at any value (parallel engine equivalence).
  int threads = 0;

  // ---- traffic ----
  TrafficKind traffic = TrafficKind::kLocality;
  double ring_heavy_share = 0.85;
  // Storage backend for the generated demand (traffic/demand_model.h):
  // "dense" (N^2 array, the historical default), "sparse" (CSR) or
  // "procedural" (closed form; falls back to sparse when the clique
  // layout is not contiguous equal blocks). All three produce
  // byte-identical artifacts; only memory/speed differ.
  DemandBackend traffic_backend = DemandBackend::kDense;

  // ---- workload ----
  WorkloadKind workload = WorkloadKind::kFlows;
  double load = 0.3;          // flows: fraction of node bandwidth
  Slot slots = 30000;         // flows: arrival horizon in slots
  Slot drain_slots = 200000;  // flows: post-horizon drain budget
  Slot warmup_slots = 4000;   // saturation: slots before reset_metrics
  Slot measure_slots = 8000;  // saturation: measured slots
  FlowSizeKind flow_size = FlowSizeKind::kPfabricWebSearch;
  std::uint64_t fixed_flow_bytes = 2560;
  std::uint64_t flow_size_cap = 0;  // truncate sizes; 0 = no cap
  ClassifyKind classify = ClassifyKind::kNone;
  std::uint64_t arrival_seed = 1;   // flows: FlowArrivals RNG
  std::uint64_t workload_seed = 7;  // saturation: SaturationConfig::seed

  // ---- incast workload ----
  NodeId incast_fanin = 32;                 // senders per wave
  std::uint64_t incast_bytes = 16384;       // bytes per sender per wave
  Slot incast_period_slots = 512;           // wave spacing

  // ---- collective workload ----
  std::string collective_kind = "ring";     // "ring" | "tree"
  std::uint64_t collective_bytes = 262144;  // per-node gradient bytes
  Slot collective_phase_gap_slots = 256;    // barrier between phases

  // ---- oversub-rack workload ----
  double rack_local_frac = 0.6;   // share of demand staying in-rack
  double oversub_factor = 4.0;    // multiplier on the inter-rack share

  // ---- closed-loop transport ----
  // "open-loop" injects each flow's cells at arrival (the historical
  // behavior); "dctcp" attaches the windowed transport (src/transport)
  // with ECN marking at ecn_threshold_cells. Transport knobs only apply
  // to flow-driver workloads.
  std::string transport = "open-loop";
  std::uint64_t ecn_threshold_cells = 0;  // 0 = no marking
  std::uint64_t init_cwnd_cells = 8;
  std::uint64_t max_cwnd_cells = 256;
  double dctcp_gain = 0.0625;

  // ---- telemetry sinks ----
  std::string trace_path;
  std::string metrics_json_path;
  std::string timeseries_csv_path;
  Slot sample_every = 1;

  // ---- profiling (obs/prof) ----
  // Attach the profiler: slot-phase timers, pool utilization, memory
  // gauges. Implied by a non-empty profile_json_path. Sim artifacts stay
  // byte-identical with profiling on or off; profile.json itself is wall
  // clock and outside the determinism contract.
  bool profile = false;
  std::string profile_json_path;

  // ---- faults ----
  std::string fault_script;       // inline script text (trumps the path)
  std::string fault_script_path;  // file with FaultScript grammar
  double node_mtbf_slots = 0.0;
  double node_mttr_slots = 0.0;
  double circuit_mtbf_slots = 0.0;
  double circuit_mttr_slots = 0.0;
  std::uint64_t fault_seed = 1;

  // ---- closed-loop control plane (sorn design only) ----
  // Epoch length in slots; 0 disables the control loop. When > 0 the
  // runner feeds the scenario's demand matrix to ControlPlane::on_epoch
  // every epoch (perfect telemetry — degrade it with the estimate_*
  // knobs below) and ticks the reconfiguration manager every slot.
  Slot epoch_slots = 0;
  // Replan-staging delay of the reconfiguration manager (state push).
  Slot update_delay_slots = 0;

  // ---- control-plane faults (require epoch_slots > 0) ----
  // Scenario-scripted controller outage windows: flattened [start, end)
  // pairs, e.g. [1000, 3000, 8000, 9000] = two outages.
  std::vector<Slot> control_outages;
  // Stochastic controller outage model (ControlFaultOptions).
  double controller_mtbf_slots = 0.0;
  double controller_mttr_slots = 0.0;
  std::uint64_t control_fault_seed = 1;
  // Extra slots between a replan and its application (on top of
  // update_delay_slots).
  Slot replan_apply_delay = 0;
  // Degraded telemetry: observations lag this many epochs / carry this
  // much seeded multiplicative noise (amplitude in [0, 1]).
  std::int64_t estimate_stale_epochs = 0;
  double estimate_noise = 0.0;
  // Data-plane policy while the controller is down: "hold" keeps the last
  // committed schedule, "vlb" swaps to the pure-oblivious round-robin +
  // VLB floor until recovery.
  std::string safe_mode = "hold";

  // ---- invariant checking ----
  // Attach the per-slot invariant checker (sim/invariants.h): cell
  // conservation, no forwarding through failed elements, delivery
  // dedup sanity. run() fails listing the violations if any fire.
  // Zero-overhead when false.
  bool check_invariants = false;

  // ---- end-host retransmission ----
  Slot retransmit_timeout = 0;  // 0 disables
  std::uint32_t retransmit_max_attempts = 8;
  // Seeded jitter amplitude on the exponential backoff (fraction of the
  // deterministic wait, in [0, 1]; 0 = exact legacy timeline).
  double retransmit_jitter = 0.0;

  // ---- programmatic overrides (never serialized) ----
  // Borrowed pointers for callers that already hold richer objects than
  // the config can describe (a control-plane clique assignment, a
  // measured demand model, a generated fault script). All optional;
  // must outlive the runner.
  struct Overrides {
    const CliqueAssignment* cliques = nullptr;
    const DemandModel* traffic = nullptr;
    const FaultScript* fault_script = nullptr;
  };
  Overrides overrides;

  // ---- JSON round trip ----
  // Every serializable field, in a fixed order, with enum fields as
  // strings; byte-deterministic (obs/json.h writer).
  std::string to_json() const;
  // Parse a JSON object; unknown keys and type mismatches are errors
  // (a typo must not silently fall back to a default). Fields absent
  // from the document keep their defaults. On failure returns false and
  // sets *error; *out is untouched.
  static bool from_json(std::string_view text, ScenarioConfig* out,
                        std::string* error);
  // Same, reading the file at `path`.
  static bool load_file(const std::string& path, ScenarioConfig* out,
                        std::string* error);

  // Basic cross-field validation shared by every entry point (positive
  // counts, mtbf/mttr pairing, known design name not checked here — the
  // registry owns that). Returns false and sets *error on problems.
  bool validate(std::string* error) const;
};

// Enum <-> string helpers (shared by the JSON codec and CLI flags).
const char* workload_kind_name(WorkloadKind k);
const char* traffic_kind_name(TrafficKind k);
const char* flow_size_kind_name(FlowSizeKind k);
const char* classify_kind_name(ClassifyKind k);
bool parse_workload_kind(std::string_view name, WorkloadKind* out);
bool parse_traffic_kind(std::string_view name, TrafficKind* out);
bool parse_flow_size_kind(std::string_view name, FlowSizeKind* out);
bool parse_classify_kind(std::string_view name, ClassifyKind* out);

}  // namespace sorn
