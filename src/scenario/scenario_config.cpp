#include "scenario/scenario_config.h"

#include <cstdio>

#include "obs/json.h"
#include "obs/json_parse.h"

namespace sorn {

namespace {

struct EnumEntry {
  const char* name;
  int value;
};

constexpr EnumEntry kWorkloads[] = {
    {"flows", static_cast<int>(WorkloadKind::kFlows)},
    {"saturation", static_cast<int>(WorkloadKind::kSaturation)},
    {"flow-saturation", static_cast<int>(WorkloadKind::kFlowSaturation)},
    {"incast", static_cast<int>(WorkloadKind::kIncast)},
    {"collective", static_cast<int>(WorkloadKind::kCollective)},
    {"oversub-rack", static_cast<int>(WorkloadKind::kOversubRack)},
};
constexpr EnumEntry kTraffics[] = {
    {"locality", static_cast<int>(TrafficKind::kLocality)},
    {"uniform", static_cast<int>(TrafficKind::kUniform)},
    {"ring", static_cast<int>(TrafficKind::kRing)},
    {"hier-locality", static_cast<int>(TrafficKind::kHierLocality)},
};
constexpr EnumEntry kFlowSizes[] = {
    {"pfabric-web-search", static_cast<int>(FlowSizeKind::kPfabricWebSearch)},
    {"pfabric-data-mining",
     static_cast<int>(FlowSizeKind::kPfabricDataMining)},
    {"fixed", static_cast<int>(FlowSizeKind::kFixed)},
};
constexpr EnumEntry kClassifies[] = {
    {"none", static_cast<int>(ClassifyKind::kNone)},
    {"clique", static_cast<int>(ClassifyKind::kClique)},
    {"size", static_cast<int>(ClassifyKind::kSize)},
};

template <std::size_t N>
const char* enum_name(const EnumEntry (&table)[N], int value) {
  for (const EnumEntry& e : table)
    if (e.value == value) return e.name;
  return "?";
}

template <std::size_t N>
bool enum_parse(const EnumEntry (&table)[N], std::string_view name,
                int* out) {
  for (const EnumEntry& e : table) {
    if (name == e.name) {
      *out = e.value;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* workload_kind_name(WorkloadKind k) {
  return enum_name(kWorkloads, static_cast<int>(k));
}

bool workload_uses_flow_driver(WorkloadKind k) {
  return k == WorkloadKind::kFlows || k == WorkloadKind::kIncast ||
         k == WorkloadKind::kCollective || k == WorkloadKind::kOversubRack;
}
const char* traffic_kind_name(TrafficKind k) {
  return enum_name(kTraffics, static_cast<int>(k));
}
const char* flow_size_kind_name(FlowSizeKind k) {
  return enum_name(kFlowSizes, static_cast<int>(k));
}
const char* classify_kind_name(ClassifyKind k) {
  return enum_name(kClassifies, static_cast<int>(k));
}

bool parse_workload_kind(std::string_view name, WorkloadKind* out) {
  int v = 0;
  if (!enum_parse(kWorkloads, name, &v)) return false;
  *out = static_cast<WorkloadKind>(v);
  return true;
}
bool parse_traffic_kind(std::string_view name, TrafficKind* out) {
  int v = 0;
  if (!enum_parse(kTraffics, name, &v)) return false;
  *out = static_cast<TrafficKind>(v);
  return true;
}
bool parse_flow_size_kind(std::string_view name, FlowSizeKind* out) {
  int v = 0;
  if (!enum_parse(kFlowSizes, name, &v)) return false;
  *out = static_cast<FlowSizeKind>(v);
  return true;
}
bool parse_classify_kind(std::string_view name, ClassifyKind* out) {
  int v = 0;
  if (!enum_parse(kClassifies, name, &v)) return false;
  *out = static_cast<ClassifyKind>(v);
  return true;
}

std::string ScenarioConfig::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("design", design);
  w.field("nodes", static_cast<std::int64_t>(nodes));
  w.field("cliques", static_cast<std::int64_t>(cliques));
  w.field("locality", locality_x);
  w.field("q_num", q_num);
  w.field("q_den", q_den);
  w.field("max_q_denominator", max_q_denominator);
  w.field("lb_first_available", lb_first_available);
  w.key("inter_clique_weights").begin_array();
  for (const double v : inter_clique_weights) w.value(v);
  w.end_array();
  w.field("weighted_alpha", weighted_alpha);
  w.field("clusters", static_cast<std::int64_t>(clusters));
  w.field("pods_per_cluster", static_cast<std::int64_t>(pods_per_cluster));
  w.field("pod_locality_x1", pod_locality_x1);
  w.field("cluster_locality_x2", cluster_locality_x2);
  w.field("dwell_slots", static_cast<std::int64_t>(dwell_slots));
  w.field("schedule_seed", schedule_seed);
  w.field("max_short_hops", static_cast<std::int64_t>(max_short_hops));
  w.field("bulk_cutoff_bytes", bulk_cutoff_bytes);
  w.field("orn_dims", static_cast<std::int64_t>(orn_dims));
  w.key("radices").begin_array();
  for (const NodeId r : radices) w.value(static_cast<std::int64_t>(r));
  w.end_array();
  w.field("lanes", static_cast<std::int64_t>(lanes));
  w.field("slot_ns", slot_ns);
  w.field("propagation_ns", propagation_ns);
  w.field("cell_bytes", cell_bytes);
  w.field("max_queue_cells", max_queue_cells);
  w.field("seed", seed);
  w.field("threads", static_cast<std::int64_t>(threads));
  w.field("traffic", traffic_kind_name(traffic));
  w.field("ring_heavy_share", ring_heavy_share);
  w.field("traffic_backend", demand_backend_name(traffic_backend));
  w.field("workload", workload_kind_name(workload));
  w.field("load", load);
  w.field("slots", static_cast<std::int64_t>(slots));
  w.field("drain_slots", static_cast<std::int64_t>(drain_slots));
  w.field("warmup_slots", static_cast<std::int64_t>(warmup_slots));
  w.field("measure_slots", static_cast<std::int64_t>(measure_slots));
  w.field("flow_size", flow_size_kind_name(flow_size));
  w.field("fixed_flow_bytes", fixed_flow_bytes);
  w.field("flow_size_cap", flow_size_cap);
  w.field("classify", classify_kind_name(classify));
  w.field("arrival_seed", arrival_seed);
  w.field("workload_seed", workload_seed);
  w.field("incast_fanin", static_cast<std::int64_t>(incast_fanin));
  w.field("incast_bytes", incast_bytes);
  w.field("incast_period_slots",
          static_cast<std::int64_t>(incast_period_slots));
  w.field("collective_kind", collective_kind);
  w.field("collective_bytes", collective_bytes);
  w.field("collective_phase_gap_slots",
          static_cast<std::int64_t>(collective_phase_gap_slots));
  w.field("rack_local_frac", rack_local_frac);
  w.field("oversub_factor", oversub_factor);
  w.field("transport", transport);
  w.field("ecn_threshold_cells", ecn_threshold_cells);
  w.field("init_cwnd_cells", init_cwnd_cells);
  w.field("max_cwnd_cells", max_cwnd_cells);
  w.field("dctcp_gain", dctcp_gain);
  w.field("trace", trace_path);
  w.field("metrics_json", metrics_json_path);
  w.field("timeseries_csv", timeseries_csv_path);
  w.field("sample_every", static_cast<std::int64_t>(sample_every));
  w.field("profile", profile);
  w.field("profile_json", profile_json_path);
  w.field("fault_script", fault_script);
  w.field("fault_script_path", fault_script_path);
  w.field("mtbf", node_mtbf_slots);
  w.field("mttr", node_mttr_slots);
  w.field("circuit_mtbf", circuit_mtbf_slots);
  w.field("circuit_mttr", circuit_mttr_slots);
  w.field("fault_seed", fault_seed);
  w.field("epoch_slots", static_cast<std::int64_t>(epoch_slots));
  w.field("update_delay_slots", static_cast<std::int64_t>(update_delay_slots));
  w.key("control_outages").begin_array();
  for (const Slot s : control_outages) w.value(static_cast<std::int64_t>(s));
  w.end_array();
  w.field("controller_mtbf", controller_mtbf_slots);
  w.field("controller_mttr", controller_mttr_slots);
  w.field("control_fault_seed", control_fault_seed);
  w.field("replan_apply_delay",
          static_cast<std::int64_t>(replan_apply_delay));
  w.field("estimate_stale_epochs", estimate_stale_epochs);
  w.field("estimate_noise", estimate_noise);
  w.field("safe_mode", safe_mode);
  w.field("check_invariants", check_invariants);
  w.field("retransmit_timeout", static_cast<std::int64_t>(retransmit_timeout));
  w.field("retransmit_max_attempts",
          static_cast<std::int64_t>(retransmit_max_attempts));
  w.field("retransmit_jitter", retransmit_jitter);
  w.end_object();
  std::string out = w.take();
  out += "\n";
  return out;
}

namespace {

// Field decoding helpers: each checks the JSON type and reports the key
// on mismatch.
bool want_int(const JsonValue& v, const std::string& key, std::int64_t* out,
              std::string* error) {
  if (!v.is_number() || !v.is_integer()) {
    *error = "field '" + key + "' must be an integer";
    return false;
  }
  *out = v.as_int();
  return true;
}

bool want_double(const JsonValue& v, const std::string& key, double* out,
                 std::string* error) {
  if (!v.is_number()) {
    *error = "field '" + key + "' must be a number";
    return false;
  }
  *out = v.as_double();
  return true;
}

bool want_string(const JsonValue& v, const std::string& key,
                 std::string* out, std::string* error) {
  if (!v.is_string()) {
    *error = "field '" + key + "' must be a string";
    return false;
  }
  *out = v.as_string();
  return true;
}

bool want_bool(const JsonValue& v, const std::string& key, bool* out,
               std::string* error) {
  if (!v.is_bool()) {
    *error = "field '" + key + "' must be true or false";
    return false;
  }
  *out = v.as_bool();
  return true;
}

}  // namespace

bool ScenarioConfig::from_json(std::string_view text, ScenarioConfig* out,
                               std::string* error) {
  JsonValue doc;
  if (!json_parse(text, &doc, error)) return false;
  if (!doc.is_object()) {
    *error = "scenario document must be a JSON object";
    return false;
  }

  ScenarioConfig cfg;  // defaults; *out untouched until full success
  for (const auto& [key, v] : doc.fields()) {
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
    if (key == "design") {
      if (!want_string(v, key, &cfg.design, error)) return false;
    } else if (key == "nodes") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.nodes = static_cast<NodeId>(i);
    } else if (key == "cliques") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.cliques = static_cast<CliqueId>(i);
    } else if (key == "locality") {
      if (!want_double(v, key, &cfg.locality_x, error)) return false;
    } else if (key == "q_num") {
      if (!want_int(v, key, &cfg.q_num, error)) return false;
    } else if (key == "q_den") {
      if (!want_int(v, key, &cfg.q_den, error)) return false;
    } else if (key == "max_q_denominator") {
      if (!want_int(v, key, &cfg.max_q_denominator, error)) return false;
    } else if (key == "lb_first_available") {
      if (!want_bool(v, key, &cfg.lb_first_available, error)) return false;
    } else if (key == "inter_clique_weights") {
      if (!v.is_array()) {
        *error = "field 'inter_clique_weights' must be an array";
        return false;
      }
      cfg.inter_clique_weights.clear();
      for (const JsonValue& item : v.items()) {
        if (!want_double(item, key, &d, error)) return false;
        cfg.inter_clique_weights.push_back(d);
      }
    } else if (key == "weighted_alpha") {
      if (!want_double(v, key, &cfg.weighted_alpha, error)) return false;
    } else if (key == "clusters") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.clusters = static_cast<CliqueId>(i);
    } else if (key == "pods_per_cluster") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.pods_per_cluster = static_cast<CliqueId>(i);
    } else if (key == "pod_locality_x1") {
      if (!want_double(v, key, &cfg.pod_locality_x1, error)) return false;
    } else if (key == "cluster_locality_x2") {
      if (!want_double(v, key, &cfg.cluster_locality_x2, error)) return false;
    } else if (key == "dwell_slots") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.dwell_slots = i;
    } else if (key == "schedule_seed") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.schedule_seed = static_cast<std::uint64_t>(i);
    } else if (key == "max_short_hops") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.max_short_hops = static_cast<int>(i);
    } else if (key == "bulk_cutoff_bytes") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.bulk_cutoff_bytes = static_cast<std::uint64_t>(i);
    } else if (key == "orn_dims") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.orn_dims = static_cast<int>(i);
    } else if (key == "radices") {
      if (!v.is_array()) {
        *error = "field 'radices' must be an array";
        return false;
      }
      cfg.radices.clear();
      for (const JsonValue& item : v.items()) {
        if (!want_int(item, key, &i, error)) return false;
        cfg.radices.push_back(static_cast<NodeId>(i));
      }
    } else if (key == "lanes") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.lanes = static_cast<int>(i);
    } else if (key == "slot_ns") {
      if (!want_int(v, key, &cfg.slot_ns, error)) return false;
    } else if (key == "propagation_ns") {
      if (!want_int(v, key, &cfg.propagation_ns, error)) return false;
    } else if (key == "cell_bytes") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.cell_bytes = static_cast<std::uint64_t>(i);
    } else if (key == "max_queue_cells") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.max_queue_cells = static_cast<std::uint64_t>(i);
    } else if (key == "seed") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.seed = static_cast<std::uint64_t>(i);
    } else if (key == "threads") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.threads = static_cast<int>(i);
    } else if (key == "traffic") {
      if (!want_string(v, key, &s, error)) return false;
      if (!parse_traffic_kind(s, &cfg.traffic)) {
        *error = "unknown traffic pattern '" + s + "'";
        return false;
      }
    } else if (key == "ring_heavy_share") {
      if (!want_double(v, key, &cfg.ring_heavy_share, error)) return false;
    } else if (key == "traffic_backend") {
      if (!want_string(v, key, &s, error)) return false;
      if (!parse_demand_backend(s, &cfg.traffic_backend)) {
        *error = "unknown traffic backend '" + s + "'";
        return false;
      }
    } else if (key == "workload") {
      if (!want_string(v, key, &s, error)) return false;
      if (!parse_workload_kind(s, &cfg.workload)) {
        *error = "unknown workload kind '" + s + "'";
        return false;
      }
    } else if (key == "load") {
      if (!want_double(v, key, &cfg.load, error)) return false;
    } else if (key == "slots") {
      if (!want_int(v, key, &cfg.slots, error)) return false;
    } else if (key == "drain_slots") {
      if (!want_int(v, key, &cfg.drain_slots, error)) return false;
    } else if (key == "warmup_slots") {
      if (!want_int(v, key, &cfg.warmup_slots, error)) return false;
    } else if (key == "measure_slots") {
      if (!want_int(v, key, &cfg.measure_slots, error)) return false;
    } else if (key == "flow_size") {
      if (!want_string(v, key, &s, error)) return false;
      if (!parse_flow_size_kind(s, &cfg.flow_size)) {
        *error = "unknown flow size distribution '" + s + "'";
        return false;
      }
    } else if (key == "fixed_flow_bytes") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.fixed_flow_bytes = static_cast<std::uint64_t>(i);
    } else if (key == "flow_size_cap") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.flow_size_cap = static_cast<std::uint64_t>(i);
    } else if (key == "classify") {
      if (!want_string(v, key, &s, error)) return false;
      if (!parse_classify_kind(s, &cfg.classify)) {
        *error = "unknown classifier '" + s + "'";
        return false;
      }
    } else if (key == "arrival_seed") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.arrival_seed = static_cast<std::uint64_t>(i);
    } else if (key == "workload_seed") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.workload_seed = static_cast<std::uint64_t>(i);
    } else if (key == "incast_fanin") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.incast_fanin = static_cast<NodeId>(i);
    } else if (key == "incast_bytes") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.incast_bytes = static_cast<std::uint64_t>(i);
    } else if (key == "incast_period_slots") {
      if (!want_int(v, key, &cfg.incast_period_slots, error)) return false;
    } else if (key == "collective_kind") {
      if (!want_string(v, key, &cfg.collective_kind, error)) return false;
    } else if (key == "collective_bytes") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.collective_bytes = static_cast<std::uint64_t>(i);
    } else if (key == "collective_phase_gap_slots") {
      if (!want_int(v, key, &cfg.collective_phase_gap_slots, error))
        return false;
    } else if (key == "rack_local_frac") {
      if (!want_double(v, key, &cfg.rack_local_frac, error)) return false;
    } else if (key == "oversub_factor") {
      if (!want_double(v, key, &cfg.oversub_factor, error)) return false;
    } else if (key == "transport") {
      if (!want_string(v, key, &cfg.transport, error)) return false;
    } else if (key == "ecn_threshold_cells") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.ecn_threshold_cells = static_cast<std::uint64_t>(i);
    } else if (key == "init_cwnd_cells") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.init_cwnd_cells = static_cast<std::uint64_t>(i);
    } else if (key == "max_cwnd_cells") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.max_cwnd_cells = static_cast<std::uint64_t>(i);
    } else if (key == "dctcp_gain") {
      if (!want_double(v, key, &cfg.dctcp_gain, error)) return false;
    } else if (key == "trace") {
      if (!want_string(v, key, &cfg.trace_path, error)) return false;
    } else if (key == "metrics_json") {
      if (!want_string(v, key, &cfg.metrics_json_path, error)) return false;
    } else if (key == "timeseries_csv") {
      if (!want_string(v, key, &cfg.timeseries_csv_path, error))
        return false;
    } else if (key == "sample_every") {
      if (!want_int(v, key, &cfg.sample_every, error)) return false;
    } else if (key == "profile") {
      if (!want_bool(v, key, &cfg.profile, error)) return false;
    } else if (key == "profile_json") {
      if (!want_string(v, key, &cfg.profile_json_path, error)) return false;
    } else if (key == "fault_script") {
      if (!want_string(v, key, &cfg.fault_script, error)) return false;
    } else if (key == "fault_script_path") {
      if (!want_string(v, key, &cfg.fault_script_path, error)) return false;
    } else if (key == "mtbf") {
      if (!want_double(v, key, &cfg.node_mtbf_slots, error)) return false;
    } else if (key == "mttr") {
      if (!want_double(v, key, &cfg.node_mttr_slots, error)) return false;
    } else if (key == "circuit_mtbf") {
      if (!want_double(v, key, &cfg.circuit_mtbf_slots, error)) return false;
    } else if (key == "circuit_mttr") {
      if (!want_double(v, key, &cfg.circuit_mttr_slots, error)) return false;
    } else if (key == "fault_seed") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.fault_seed = static_cast<std::uint64_t>(i);
    } else if (key == "epoch_slots") {
      if (!want_int(v, key, &cfg.epoch_slots, error)) return false;
    } else if (key == "update_delay_slots") {
      if (!want_int(v, key, &cfg.update_delay_slots, error)) return false;
    } else if (key == "control_outages") {
      if (!v.is_array()) {
        *error = "field 'control_outages' must be an array";
        return false;
      }
      cfg.control_outages.clear();
      for (const JsonValue& item : v.items()) {
        if (!want_int(item, key, &i, error)) return false;
        cfg.control_outages.push_back(i);
      }
    } else if (key == "controller_mtbf") {
      if (!want_double(v, key, &cfg.controller_mtbf_slots, error))
        return false;
    } else if (key == "controller_mttr") {
      if (!want_double(v, key, &cfg.controller_mttr_slots, error))
        return false;
    } else if (key == "control_fault_seed") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.control_fault_seed = static_cast<std::uint64_t>(i);
    } else if (key == "replan_apply_delay") {
      if (!want_int(v, key, &cfg.replan_apply_delay, error)) return false;
    } else if (key == "estimate_stale_epochs") {
      if (!want_int(v, key, &cfg.estimate_stale_epochs, error)) return false;
    } else if (key == "estimate_noise") {
      if (!want_double(v, key, &cfg.estimate_noise, error)) return false;
    } else if (key == "safe_mode") {
      if (!want_string(v, key, &cfg.safe_mode, error)) return false;
    } else if (key == "check_invariants") {
      if (!want_bool(v, key, &cfg.check_invariants, error)) return false;
    } else if (key == "retransmit_timeout") {
      if (!want_int(v, key, &cfg.retransmit_timeout, error)) return false;
    } else if (key == "retransmit_max_attempts") {
      if (!want_int(v, key, &i, error)) return false;
      cfg.retransmit_max_attempts = static_cast<std::uint32_t>(i);
    } else if (key == "retransmit_jitter") {
      if (!want_double(v, key, &cfg.retransmit_jitter, error)) return false;
    } else {
      *error = "unknown scenario field '" + key + "'";
      return false;
    }
  }

  if (!cfg.validate(error)) return false;
  *out = std::move(cfg);
  return true;
}

bool ScenarioConfig::load_file(const std::string& path, ScenarioConfig* out,
                          std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  if (!from_json(text, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool ScenarioConfig::validate(std::string* error) const {
  auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (nodes < 2) return fail("nodes must be >= 2");
  if (cliques < 1) return fail("cliques must be >= 1");
  if (lanes < 1) return fail("lanes must be >= 1");
  if (threads < 0) return fail("threads must be >= 0");
  if (slot_ns <= 0) return fail("slot_ns must be positive");
  if (propagation_ns < 0) return fail("propagation_ns must be >= 0");
  if (locality_x < 0.0 || locality_x > 1.0)
    return fail("locality must be in [0, 1]");
  if (q_num < 0 || q_den <= 0) return fail("q must be a nonnegative rational");
  if (load <= 0.0) return fail("load must be positive");
  if (slots < 1) return fail("slots must be >= 1");
  if (drain_slots < 0) return fail("drain_slots must be >= 0");
  if (warmup_slots < 0) return fail("warmup_slots must be >= 0");
  if (measure_slots < 1) return fail("measure_slots must be >= 1");
  if (sample_every < 1) return fail("sample_every must be >= 1");
  if (retransmit_timeout < 0) return fail("retransmit_timeout must be >= 0");
  if ((node_mtbf_slots > 0.0 && node_mttr_slots <= 0.0) ||
      (circuit_mtbf_slots > 0.0 && circuit_mttr_slots <= 0.0))
    return fail("an MTBF needs a matching positive MTTR");
  if (!fault_script.empty() && !fault_script_path.empty())
    return fail("give fault_script or fault_script_path, not both");
  if (epoch_slots < 0) return fail("epoch_slots must be >= 0");
  if (update_delay_slots < 0) return fail("update_delay_slots must be >= 0");
  if (control_outages.size() % 2 != 0)
    return fail("control_outages must be flattened [start, end) pairs");
  for (std::size_t i = 0; i + 1 < control_outages.size(); i += 2) {
    if (control_outages[i] < 0 ||
        control_outages[i + 1] <= control_outages[i])
      return fail("control_outages windows must satisfy 0 <= start < end");
  }
  if (controller_mtbf_slots < 0.0 || controller_mttr_slots < 0.0)
    return fail("controller mtbf/mttr must be >= 0");
  if (controller_mtbf_slots > 0.0 && controller_mttr_slots <= 0.0)
    return fail("controller_mtbf needs a matching positive controller_mttr");
  if (replan_apply_delay < 0) return fail("replan_apply_delay must be >= 0");
  if (estimate_stale_epochs < 0)
    return fail("estimate_stale_epochs must be >= 0");
  if (estimate_noise < 0.0 || estimate_noise > 1.0)
    return fail("estimate_noise must be in [0, 1]");
  if (safe_mode != "hold" && safe_mode != "vlb")
    return fail("safe_mode must be \"hold\" or \"vlb\"");
  const bool control_faults = !control_outages.empty() ||
                              controller_mtbf_slots > 0.0 ||
                              replan_apply_delay > 0 ||
                              estimate_stale_epochs > 0 ||
                              estimate_noise > 0.0;
  if (control_faults && epoch_slots <= 0)
    return fail("control-plane faults require epoch_slots > 0");
  if (retransmit_jitter < 0.0 || retransmit_jitter > 1.0)
    return fail("retransmit_jitter must be in [0, 1]");
  // Fan-in is bounded by the node count, so only enforce it when the
  // incast workload is actually selected (the default fanin must not
  // invalidate small-N configs of other workloads).
  if (workload == WorkloadKind::kIncast &&
      (incast_fanin < 1 || incast_fanin > nodes - 1))
    return fail("incast_fanin must be in [1, nodes - 1]");
  if (incast_bytes < 1) return fail("incast_bytes must be >= 1");
  if (incast_period_slots < 1)
    return fail("incast_period_slots must be >= 1");
  if (collective_kind != "ring" && collective_kind != "tree")
    return fail("collective_kind must be \"ring\" or \"tree\"");
  if (collective_bytes < 1) return fail("collective_bytes must be >= 1");
  if (collective_phase_gap_slots < 1)
    return fail("collective_phase_gap_slots must be >= 1");
  if (rack_local_frac < 0.0 || rack_local_frac > 1.0)
    return fail("rack_local_frac must be in [0, 1]");
  if (oversub_factor < 1.0) return fail("oversub_factor must be >= 1");
  if (workload == WorkloadKind::kOversubRack && cliques < 2 &&
      rack_local_frac < 1.0)
    return fail("oversub-rack inter-rack traffic needs cliques >= 2");
  if (transport != "open-loop" && transport != "dctcp")
    return fail("transport must be \"open-loop\" or \"dctcp\"");
  if (transport == "dctcp" && !workload_uses_flow_driver(workload))
    return fail("transport \"dctcp\" requires a flow-driver workload");
  if (init_cwnd_cells < 1 || max_cwnd_cells < init_cwnd_cells)
    return fail("need 1 <= init_cwnd_cells <= max_cwnd_cells");
  if (dctcp_gain <= 0.0 || dctcp_gain > 1.0)
    return fail("dctcp_gain must be in (0, 1]");
  return true;
}

}  // namespace sorn
