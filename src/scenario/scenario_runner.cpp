#include "scenario/scenario_runner.h"

#include <utility>

#include "control/control_faults.h"
#include "control/control_plane.h"
#include "control/safe_mode.h"
#include "fault/fault_injector.h"
#include "obs/export.h"
#include "obs/prof/profile_export.h"
#include "obs/telemetry.h"
#include "sim/parallel.h"
#include "sim/saturation.h"
#include "traffic/arrivals.h"
#include "traffic/flow_size.h"
#include "traffic/patterns.h"
#include "traffic/workloads.h"
#include "transport/transport.h"

namespace sorn {
namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

FlowSizeDist flow_sizes_of(const ScenarioConfig& config) {
  switch (config.flow_size) {
    case FlowSizeKind::kPfabricWebSearch:
      return FlowSizeDist::pfabric_web_search();
    case FlowSizeKind::kPfabricDataMining:
      return FlowSizeDist::pfabric_data_mining();
    case FlowSizeKind::kFixed:
      break;
  }
  return FlowSizeDist::fixed(config.fixed_flow_bytes);
}

}  // namespace

ScenarioRunner::~ScenarioRunner() = default;

std::unique_ptr<ScenarioRunner> ScenarioRunner::create(
    const ScenarioConfig& config, std::string* error) {
  std::string local_error;
  if (error == nullptr) error = &local_error;
  if (!config.validate(error)) return nullptr;

  auto runner = std::unique_ptr<ScenarioRunner>(new ScenarioRunner());
  runner->config_ = config;

  if (!DesignRegistry::instance().build(config.design, config,
                                        &runner->design_, error)) {
    return nullptr;
  }

  // Simulator, engine threads, failure-aware routing. Routing always
  // consults the live failure state; with no faults the view stays empty
  // and the fast path is untouched.
  NetworkConfig net_cfg;
  net_cfg.lanes = config.lanes;
  net_cfg.slot_duration = config.slot_ns * 1000;
  net_cfg.propagation_per_hop = config.propagation_ns * 1000;
  net_cfg.cell_bytes = config.cell_bytes;
  net_cfg.max_queue_cells = config.max_queue_cells;
  net_cfg.ecn_threshold_cells = config.ecn_threshold_cells;
  net_cfg.seed = config.seed;
  runner->network_ = std::make_unique<SlottedNetwork>(
      runner->design_.schedule, runner->design_.router, net_cfg);
  runner->network_->set_threads(config.threads > 0
                                    ? config.threads
                                    : ThreadPool::default_threads());
  runner->design_.set_failure_view(&runner->network_->failure_view());

  // Faults: scripted timeline (override > inline text > file) plus the
  // stochastic MTBF/MTTR model.
  FaultScript script;
  if (config.overrides.fault_script != nullptr) {
    script = *config.overrides.fault_script;
  } else if (!config.fault_script.empty()) {
    if (!FaultScript::parse(config.fault_script, config.nodes, &script,
                            error)) {
      *error = "fault_script: " + *error;
      return nullptr;
    }
  } else if (!config.fault_script_path.empty()) {
    if (!FaultScript::load(config.fault_script_path, config.nodes, &script,
                           error))
      return nullptr;
  }
  FaultInjectorOptions fopts;
  fopts.node_mtbf_slots = config.node_mtbf_slots;
  fopts.node_mttr_slots = config.node_mttr_slots;
  fopts.circuit_mtbf_slots = config.circuit_mtbf_slots;
  fopts.circuit_mttr_slots = config.circuit_mttr_slots;
  fopts.seed = config.fault_seed;
  runner->faults_enabled_ = !script.empty() ||
                            fopts.node_mtbf_slots > 0.0 ||
                            fopts.circuit_mtbf_slots > 0.0;
  if (runner->faults_enabled_ &&
      !workload_uses_flow_driver(config.workload)) {
    *error = "faults require a flow-driver workload (the closed-loop "
             "saturation sources do not tick the injector)";
    return nullptr;
  }
  runner->injector_ =
      std::make_unique<FaultInjector>(std::move(script), fopts);

  // Closed-loop control plane: epoch_slots > 0 turns on periodic
  // replanning over the scenario's demand (perfect telemetry unless the
  // control-fault knobs degrade it). Only the sorn design can consume the
  // resulting SornPlans, and only the flows workload ticks slot hooks.
  if (config.epoch_slots > 0) {
    if (config.design != "sorn") {
      *error = "epoch_slots (the control loop) requires the sorn design";
      return nullptr;
    }
    if (!workload_uses_flow_driver(config.workload)) {
      *error =
          "epoch_slots (the control loop) requires a flow-driver workload";
      return nullptr;
    }
    ControlPlane::Options copts;
    copts.optimizer.max_q_denominator = config.max_q_denominator;
    copts.reconfig.update_delay_slots = config.update_delay_slots;
    copts.reconfig.lb_mode = config.lb_first_available
                                 ? LbMode::kFirstAvailable
                                 : LbMode::kRandom;
    runner->control_ = std::make_unique<ControlPlane>(config.nodes, copts);
    runner->control_->set_failure_view(&runner->network_->failure_view());

    const bool control_faults = !config.control_outages.empty() ||
                                config.controller_mtbf_slots > 0.0 ||
                                config.replan_apply_delay > 0 ||
                                config.estimate_stale_epochs > 0 ||
                                config.estimate_noise > 0.0;
    if (control_faults) {
      ControlFaultOptions cf;
      for (std::size_t i = 0; i + 1 < config.control_outages.size(); i += 2) {
        cf.outages.emplace_back(config.control_outages[i],
                                config.control_outages[i + 1]);
      }
      cf.mtbf_slots = config.controller_mtbf_slots;
      cf.mttr_slots = config.controller_mttr_slots;
      cf.seed = config.control_fault_seed;
      cf.replan_apply_delay = config.replan_apply_delay;
      cf.estimate_stale_epochs =
          static_cast<std::uint32_t>(config.estimate_stale_epochs);
      cf.estimate_noise = config.estimate_noise;
      runner->control_faults_ =
          std::make_unique<ControlFaultModel>(std::move(cf));
      runner->control_->set_fault_model(runner->control_faults_.get());
      runner->safe_mode_ = std::make_unique<SafeModeGuard>(
          config.nodes, config.safe_mode == "vlb" ? SafeModePolicy::kVlb
                                                  : SafeModePolicy::kHold);
    }
  }

  // Invariant checker: attach before any traffic so the conservation
  // baseline starts from zeroed counters.
  if (config.check_invariants) {
    runner->checker_ = std::make_unique<InvariantChecker>();
    runner->network_->set_invariant_checker(runner->checker_.get());
  }

  // Telemetry: any export path attaches the facade; time-series sampling
  // only when the CSV or the JSON summary (which embeds it) is wanted.
  const bool want_trace = !config.trace_path.empty();
  const bool want_json = !config.metrics_json_path.empty();
  const bool want_csv = !config.timeseries_csv_path.empty();
  TelemetryOptions topts;
  if (want_csv || want_json) topts.sample_every = config.sample_every;
  runner->telemetry_ = std::make_unique<Telemetry>(topts);
  if (want_trace) {
    runner->trace_sink_ = std::make_unique<FileTraceSink>(config.trace_path);
    if (!runner->trace_sink_->ok()) {
      *error = "cannot open " + config.trace_path + " for writing";
      return nullptr;
    }
    runner->telemetry_->set_trace_sink(runner->trace_sink_.get());
  }
  if (want_trace || want_json || want_csv) {
    runner->network_->set_telemetry(runner->telemetry_.get());
    runner->telemetry_attached_ = true;
  }
  if (runner->telemetry_attached_) {
    Tracer* tracer = &runner->telemetry_->tracer();
    if (runner->control_ != nullptr) runner->control_->set_tracer(tracer);
    if (runner->control_faults_ != nullptr)
      runner->control_faults_->set_tracer(tracer);
    if (runner->safe_mode_ != nullptr) runner->safe_mode_->set_tracer(tracer);
  }

  // Profiling: the network registers its byte gauges and wraps its phases
  // in timers; the runner adds the gauges only it can see. The profiler
  // reads clocks and sizes, never RNG or metrics, so the sim artifacts
  // above stay byte-identical whether or not it is attached.
  if (config.profile || !config.profile_json_path.empty()) {
    runner->profiler_ = std::make_unique<Profiler>();
    runner->network_->set_profiler(runner->profiler_.get());
    if (runner->control_ != nullptr)
      runner->control_->set_profiler(runner->profiler_.get());
    if (runner->telemetry_attached_ &&
        runner->telemetry_->timeseries() != nullptr) {
      const TimeSeriesSampler* ts = runner->telemetry_->timeseries();
      runner->profiler_->memory().register_provider(
          "timeseries_samples", [ts] { return ts->memory_bytes(); });
    }
  }

  // Closed-loop transport: arrivals become open_flow() calls and the
  // window paces injection; the network echoes ECN-marked deliveries back
  // as acks on the coordinating thread, so artifacts stay byte-identical
  // at any thread count.
  if (config.transport == "dctcp") {
    DctcpTransport::Options topt;
    topt.congestion.init_cwnd_cells = config.init_cwnd_cells;
    topt.congestion.max_cwnd_cells = config.max_cwnd_cells;
    topt.congestion.gain = config.dctcp_gain;
    runner->transport_ = std::make_unique<DctcpTransport>(topt);
    runner->network_->set_transport(runner->transport_.get());
    if (runner->profiler_ != nullptr) {
      const DctcpTransport* t = runner->transport_.get();
      runner->profiler_->memory().register_provider(
          "transport_state", [t] { return t->memory_bytes(); });
    }
  }

  // Traffic: an override matrix wins; otherwise generate the configured
  // pattern over the design's clique structure (or, for designs without
  // one, the override assignment / a contiguous fallback). The same
  // assignment labels flows under ClassifyKind::kClique.
  runner->traffic_cliques_ =
      runner->design_.cliques != nullptr ? *runner->design_.cliques
      : config.overrides.cliques != nullptr
          ? *config.overrides.cliques
          : CliqueAssignment::contiguous(config.nodes, config.cliques);
  if (config.overrides.traffic != nullptr) {
    if (config.overrides.traffic->node_count() != config.nodes) {
      *error = "override traffic matrix node count does not match the "
               "scenario";
      return nullptr;
    }
    runner->traffic_ = config.overrides.traffic->clone();
  } else {
    switch (config.traffic) {
      case TrafficKind::kLocality:
        runner->traffic_ = patterns::make_locality_mix(
            runner->traffic_cliques_, config.locality_x,
            config.traffic_backend);
        break;
      case TrafficKind::kUniform:
        runner->traffic_ =
            patterns::make_uniform(config.nodes, config.traffic_backend);
        break;
      case TrafficKind::kRing:
        runner->traffic_ = patterns::make_clique_ring(
            runner->traffic_cliques_, config.locality_x,
            config.ring_heavy_share, config.traffic_backend);
        break;
      case TrafficKind::kHierLocality:
        if (runner->design_.hierarchy == nullptr) {
          *error = "hier-locality traffic requires a design with a "
                   "hierarchy (hier)";
          return nullptr;
        }
        runner->traffic_ = patterns::make_hier_locality_mix(
            *runner->design_.hierarchy, config.pod_locality_x1,
            config.cluster_locality_x2, config.traffic_backend);
        break;
    }
  }
  if (runner->profiler_ != nullptr) {
    const DemandModel* traffic = runner->traffic_.get();
    runner->profiler_->memory().register_provider(
        "traffic_demand", [traffic] { return traffic->memory_bytes(); });
  }
  return runner;
}

bool ScenarioRunner::run_flows(std::string* error) {
  const FlowSizeDist sizes = flow_sizes_of(config_);
  const Picoseconds slot_ps = network_->config().slot_duration;
  const double node_bw =
      static_cast<double>(network_->config().cell_bytes) * 8.0 /
      (static_cast<double>(slot_ps) * 1e-12);
  std::unique_ptr<ArrivalStream> arrivals;
  switch (config_.workload) {
    case WorkloadKind::kIncast:
      arrivals = std::make_unique<IncastArrivals>(
          config_.nodes, config_.incast_fanin, config_.incast_bytes,
          config_.incast_period_slots, slot_ps, Rng(config_.arrival_seed));
      break;
    case WorkloadKind::kCollective:
      arrivals = std::make_unique<CollectiveArrivals>(
          traffic_.get(),
          config_.collective_kind == "tree" ? CollectiveArrivals::Kind::kTree
                                           : CollectiveArrivals::Kind::kRing,
          config_.collective_bytes, config_.collective_phase_gap_slots,
          slot_ps);
      break;
    case WorkloadKind::kOversubRack:
      arrivals = std::make_unique<OversubRackArrivals>(
          &traffic_cliques_, &sizes, node_bw, config_.load,
          config_.rack_local_frac, config_.oversub_factor,
          Rng(config_.arrival_seed));
      break;
    default:
      arrivals = std::make_unique<FlowArrivals>(traffic_.get(), &sizes,
                                                node_bw, config_.load,
                                                Rng(config_.arrival_seed));
      break;
  }

  WorkloadDriver::Classifier classifier;
  if (config_.classify == ClassifyKind::kClique) {
    const CliqueAssignment* cliques = &traffic_cliques_;
    classifier = [cliques](const FlowArrival& a) {
      return cliques->same_clique(a.src, a.dst) ? 0 : 1;
    };
  } else if (config_.classify == ClassifyKind::kSize) {
    const std::uint64_t cutoff = config_.bulk_cutoff_bytes;
    classifier = [cutoff](const FlowArrival& a) {
      return a.bytes > cutoff ? 1 : 0;
    };
  }
  WorkloadDriver driver(arrivals.get(), std::move(classifier));
  if (config_.flow_size_cap > 0)
    driver.set_flow_size_cap(config_.flow_size_cap);
  if (design_.bulk_router != nullptr && config_.bulk_cutoff_bytes > 0)
    driver.set_bulk_router(design_.bulk_router, config_.bulk_cutoff_bytes);
  if (transport_ != nullptr) driver.set_transport(transport_.get());
  if (user_hook_ || faults_enabled_ || control_ != nullptr) {
    driver.set_slot_hook([this](SlottedNetwork& net, Slot slot) {
      PhaseProfiler* const prof =
          profiler_ != nullptr ? &profiler_->phases() : nullptr;
      if (user_hook_) {
        ScopedPhase scope(prof, ProfPhase::kSlotHook);
        user_hook_(net, slot);
      }
      if (faults_enabled_) {
        ScopedPhase scope(prof, ProfPhase::kFaultTick);
        injector_->tick(net);
      }
      if (control_ != nullptr) {
        // Fault model first (the controller's state for this slot), then
        // the safe-mode guard (data-plane response to that state), then
        // the epoch observation and the reconfig tick — both of which the
        // control plane suppresses on its own while the controller is
        // down.
        if (control_faults_ != nullptr) {
          control_faults_->tick(slot);
          safe_mode_->on_controller_state(
              net, control_faults_->controller_up(), slot);
        }
        if (slot > 0 && slot % config_.epoch_slots == 0)
          control_->on_epoch(*traffic_, slot);
        control_->tick(net, slot);
      }
    });
  }
  if (config_.retransmit_timeout > 0) {
    WorkloadDriver::RetransmitOptions ropts;
    ropts.timeout_slots = config_.retransmit_timeout;
    ropts.max_attempts = config_.retransmit_max_attempts;
    ropts.jitter_frac = config_.retransmit_jitter;
    driver.set_retransmit(ropts);
  }
  driver.run_until(*network_,
                   config_.slots * network_->config().slot_duration,
                   config_.drain_slots);
  flows_injected_ = driver.flows_injected();
  (void)error;
  return true;
}

void ScenarioRunner::run_saturation() {
  SaturationConfig sat;
  sat.seed = config_.workload_seed;
  if (config_.workload == WorkloadKind::kSaturation) {
    SaturationSource source(traffic_.get(), sat);
    saturation_r_ = source.measure(*network_, config_.warmup_slots,
                                   config_.measure_slots);
  } else {
    const FlowSizeDist sizes = flow_sizes_of(config_);
    FlowSaturationSource source(traffic_.get(), &sizes, sat);
    saturation_r_ = source.measure(*network_, config_.warmup_slots,
                                   config_.measure_slots);
  }
}

bool ScenarioRunner::run(std::string* error) {
  if (ran_) return fail(error, "scenario already ran (one-shot)");
  ran_ = true;

  if (workload_uses_flow_driver(config_.workload)) {
    if (!run_flows(error)) return false;
  } else {
    run_saturation();
  }

  // Invariant verdict: any violation fails the run, naming the first few.
  // The checker's full list stays inspectable via invariant_checker().
  if (checker_ != nullptr && !checker_->ok()) {
    std::string msg = "invariant violations (" +
                      std::to_string(checker_->violation_count()) + "):";
    for (const std::string& v : checker_->violations()) msg += "\n  " + v;
    return fail(error, std::move(msg));
  }

  // Close out the profile: a final gauge sample (end-of-run state + peak
  // RSS) and the pool's utilization counters.
  if (profiler_ != nullptr) {
    profiler_->memory().sample();
    network_->snapshot_pool_utilization();
  }

  // Flush artifacts. The trace sink is detached and closed first so the
  // JSONL file is complete as soon as run() returns.
  if (trace_sink_ != nullptr) {
    telemetry_->set_trace_sink(nullptr);
    trace_sink_.reset();
  }
  if (!config_.metrics_json_path.empty() &&
      !write_text_file(config_.metrics_json_path, metrics_json())) {
    return fail(error, "cannot write " + config_.metrics_json_path);
  }
  if (!config_.timeseries_csv_path.empty() &&
      !write_text_file(config_.timeseries_csv_path, timeseries_csv())) {
    return fail(error, "cannot write " + config_.timeseries_csv_path);
  }
  if (!config_.profile_json_path.empty() &&
      !write_text_file(config_.profile_json_path, profile_json())) {
    return fail(error, "cannot write " + config_.profile_json_path);
  }
  return true;
}

std::string ScenarioRunner::metrics_json() const {
  ExportOptions eopts;
  eopts.nodes = config_.nodes;
  eopts.lanes = network_->config().lanes;
  TransportStats tstats;
  if (transport_ != nullptr) {
    tstats = transport_->stats();
    eopts.transport = &tstats;
  }
  return run_to_json(network_->metrics(),
                     telemetry_attached_ ? telemetry_.get() : nullptr, eopts);
}

std::string ScenarioRunner::timeseries_csv() const {
  if (telemetry_ == nullptr || telemetry_->timeseries() == nullptr) return "";
  return timeseries_to_csv(*telemetry_->timeseries());
}

std::string ScenarioRunner::profile_json() const {
  if (profiler_ == nullptr) return "";
  return profile_to_json(*profiler_);
}

}  // namespace sorn
