#include "sim/network.h"

#include <algorithm>
#include <optional>

#include "util/assert.h"

namespace sorn {

SlottedNetwork::SlottedNetwork(const CircuitSchedule* schedule,
                               const Router* router, NetworkConfig config)
    : schedule_(schedule),
      router_(router),
      config_(config),
      n_(schedule->node_count()),
      voqs_(n_),
      metrics_(config.slot_duration, config.propagation_per_hop),
      rng_(config.seed),
      failures_(n_),
      gray_(n_) {
  // Gray-failure decisions hash their own derived seed so enabling them
  // never perturbs the main Rng stream (routing, injection).
  gray_.set_seed(config.seed ^ 0x6772617946617573ULL);
  SORN_ASSERT(schedule_ != nullptr && router_ != nullptr,
              "network needs a schedule and a router");
  SORN_ASSERT(config_.lanes >= 1, "need at least one uplink lane");
  SORN_ASSERT(config_.cell_bytes >= 1, "cells must carry at least one byte");
}

void SlottedNetwork::inject_flow(FlowId flow, NodeId src, NodeId dst,
                                 std::uint64_t bytes, int flow_class) {
  inject_flow_with(*router_, flow, src, dst, bytes, flow_class);
}

void SlottedNetwork::inject_flow_with(const Router& router, FlowId flow,
                                      NodeId src, NodeId dst,
                                      std::uint64_t bytes, int flow_class) {
  SORN_ASSERT(src != dst, "flow endpoints must differ");
  // Routing draws from rng_; a draw inside the parallel sweep would make
  // the stream depend on thread scheduling (see DESIGN.md).
  SORN_ASSERT(!in_parallel_sweep_, "inject during parallel sweep");
  const std::uint64_t cells =
      (bytes + config_.cell_bytes - 1) / config_.cell_bytes;
  // Remember which path class injected the flow: stalled cells must be
  // retransmitted through the same router (a bulk flow re-routed onto the
  // short-flow path class would jump queues and skew both path classes).
  const bool bulk = bulk_router_ != nullptr && &router == bulk_router_;
  if (telemetry_ != nullptr)
    telemetry_->on_flow_inject(now_, flow, src, dst, bytes, flow_class);
  if (checker_ != nullptr) checker_->on_flow_inject(flow, cells);
  for (std::uint64_t c = 0; c < cells; ++c) {
    Cell cell;
    cell.flow = flow;
    cell.seq = static_cast<std::uint32_t>(c);
    // Stagger the routing reference slot across the flow's cells: cell c
    // will leave the source no earlier than c/lanes slots from now, and
    // "first available link" load balancing must be evaluated at each
    // cell's own departure opportunity (otherwise a whole flow convoys
    // onto one queue; cf. the paper's footnote on long flows spreading
    // across all intra-clique links).
    cell.path = router.route(
        src, dst, now_ + static_cast<Slot>(c) / config_.lanes, rng_);
    cell.hop = 0;
    cell.inject_slot = now_;
    cell.ready_slot = now_;
    metrics_.on_inject(cell, cells, bytes, flow_class, bulk);
    enqueue_or_drop(cell);
  }
}

void SlottedNetwork::inject_flow_segment(const Router& router, FlowId flow,
                                         NodeId src, NodeId dst,
                                         std::uint64_t bytes,
                                         std::uint64_t first_cell,
                                         std::uint64_t cell_count,
                                         int flow_class) {
  SORN_ASSERT(src != dst, "flow endpoints must differ");
  SORN_ASSERT(!in_parallel_sweep_, "inject during parallel sweep");
  const std::uint64_t cells =
      (bytes + config_.cell_bytes - 1) / config_.cell_bytes;
  SORN_ASSERT(first_cell + cell_count <= cells, "segment past end of flow");
  const bool bulk = bulk_router_ != nullptr && &router == bulk_router_;
  // Flow-level events fire once, with the first segment; the flow record
  // (created by the first on_inject with the full totals) completes when
  // every cell — across all segments — has been delivered.
  if (first_cell == 0) {
    if (telemetry_ != nullptr)
      telemetry_->on_flow_inject(now_, flow, src, dst, bytes, flow_class);
    if (checker_ != nullptr) checker_->on_flow_inject(flow, cells);
  }
  for (std::uint64_t c = 0; c < cell_count; ++c) {
    Cell cell;
    cell.flow = flow;
    cell.seq = static_cast<std::uint32_t>(first_cell + c);
    // Stagger routing by each cell's departure opportunity within this
    // segment, same as inject_flow_with does across a whole flow.
    cell.path = router.route(
        src, dst, now_ + static_cast<Slot>(c) / config_.lanes, rng_);
    cell.hop = 0;
    cell.inject_slot = now_;
    cell.ready_slot = now_;
    metrics_.on_inject(cell, cells, bytes, flow_class, bulk);
    enqueue_or_drop(cell);
  }
}

void SlottedNetwork::inject_cell(NodeId src, NodeId dst) {
  SORN_ASSERT(src != dst, "cell endpoints must differ");
  SORN_ASSERT(!in_parallel_sweep_, "inject during parallel sweep");
  Cell cell;
  cell.flow = kNoFlow;
  cell.path = router_->route(src, dst, now_, rng_);
  cell.hop = 0;
  cell.inject_slot = now_;
  cell.ready_slot = now_;
  metrics_.on_inject(cell, 1, config_.cell_bytes);
  enqueue_or_drop(cell);
}

void SlottedNetwork::drop(const Cell& cell) {
  metrics_.on_drop();
  if (telemetry_ != nullptr)
    telemetry_->on_cell_drop(now_, cell.current(), cell.next_hop(), cell.flow);
}

void SlottedNetwork::enqueue_or_drop(Cell& cell) {
  if (config_.ecn_threshold_cells == 0) {
    // ECN off: the capacity check lives inside try_push (the pre-ECN hot
    // path, one queue lookup).
    if (!voqs_.try_push(cell, config_.max_queue_cells)) drop(cell);
    return;
  }
  const std::uint64_t size = voqs_.size_of(cell.current(), cell.next_hop());
  if (config_.max_queue_cells > 0 && size >= config_.max_queue_cells) {
    drop(cell);
    return;
  }
  if (size >= config_.ecn_threshold_cells) {
    cell.ecn = true;
    metrics_.on_ecn_mark();
    if (telemetry_ != nullptr) telemetry_->on_ecn_mark();
  }
  voqs_.push(cell);
}

void SlottedNetwork::deliver(const Cell& cell) {
  if (checker_ != nullptr) checker_->on_deliver(now_, cell);
  // The cell arrives at the end of the slot; only first copies that
  // advanced an open flow are echoed to the transport as acks.
  const bool first_copy = metrics_.on_deliver(cell, now_ + 1);
  if (transport_ != nullptr && first_copy) transport_->on_ack(cell, now_ + 1);
}

void SlottedNetwork::transmit(NodeId node, NodeId peer) {
  if (failures_.any_failures() && !failures_.usable(node, peer)) return;
  const GrayCircuit* gray = nullptr;
  if (gray_.any()) {
    gray = gray_.find(node, peer);
    // A throttled circuit's inactive slot behaves like a one-slot outage:
    // the head cell stays queued and retries next opportunity.
    if (gray != nullptr && !gray_.slot_active(now_, node, peer, *gray))
      return;
  }
  const Cell* head = voqs_.peek(node, peer, now_);
  if (head == nullptr) return;
  Cell cell = *head;
  voqs_.pop(node, peer);
  if (checker_ != nullptr) checker_->on_transmit(now_, node, peer);
  if (gray != nullptr && gray_.cell_lost(now_, node, peer, *gray, cell)) {
    // Transmitted but lost in flight; the end-host retransmission policy
    // recovers the flow, duplicates are dedupped at the receiver.
    metrics_.on_gray_drop();
    if (telemetry_ != nullptr)
      telemetry_->on_gray_drop(now_, node, peer, cell.flow);
    return;
  }
  ++cell.hop;
  if (cell.at_destination()) {
    deliver(cell);
    return;
  }
  metrics_.on_forward();
  // Turnaround at the relay: receivable next slot at the earliest; the
  // propagation delay is modelled in readiness as whole slots (rounded up)
  // and in wall-clock latency exactly (metrics).
  const Slot prop_slots =
      (config_.propagation_per_hop + config_.slot_duration - 1) /
      config_.slot_duration;
  cell.ready_slot = now_ + 1 + prop_slots;
  enqueue_or_drop(cell);
}

void SlottedNetwork::step_lane_sequential(const Matching& m) {
  for (NodeId i = 0; i < n_; ++i) {
    const NodeId peer = m.dst_of(i);
    if (peer != i) transmit(i, peer);
  }
}

// One lane's sweep, sharded across the pool. Phase 1 (parallel): each
// shard scans its contiguous node range in order, popping transmittable
// heads — node i only ever pops its own queues, so pops are disjoint
// across shards — and staging the advanced cells. Phase 2 (sequential):
// stages are merged in shard order, which is node order, so every side
// effect with observable ordering (metrics, trace events, pushes, drops)
// replays in exactly the sequence the sequential sweep would produce.
//
// The one way deferred pushes could diverge from the interleaved
// sequential sweep is the bounded-queue capacity check: sequentially,
// node i pushes into its peer's queue *before* nodes j > i pop, and a
// pushed cell is never transmittable in the same slot (ready_slot > now),
// so only queue *sizes* can differ, never heads. The merge reconstructs
// the sequential-order size from the popped_ marks below.
void SlottedNetwork::step_lane_parallel(const Matching& m,
                                        PhaseProfiler* prof) {
  const bool capped = config_.max_queue_cells > 0;
  const bool ecn_on = config_.ecn_threshold_cells > 0;
  // Both the capacity check and the ECN mark decision need the
  // sequential-order queue size, reconstructed from the popped_ marks.
  const bool sized = capped || ecn_on;
  if (sized) std::fill(popped_.begin(), popped_.end(), std::uint8_t{0});
  const Slot prop_slots =
      (config_.propagation_per_hop + config_.slot_duration - 1) /
      config_.slot_duration;
  in_parallel_sweep_ = true;
  try {
    ScopedPhase sweep(prof, ProfPhase::kLaneSweep);
    pool_->run_shards(
        static_cast<int>(shard_plan_.size()), [&, this](int s) {
          const ShardRange range = shard_plan_[static_cast<std::size_t>(s)];
          ShardStage& stage = stages_[static_cast<std::size_t>(s)];
          stage.events.clear();
          stage.pops = 0;
          for (NodeId i = range.begin; i < range.end; ++i) {
            const NodeId peer = m.dst_of(i);
            if (peer == i) continue;
            if (failures_.any_failures() && !failures_.usable(i, peer))
              continue;
            // Gray decisions are stateless seeded hashes (no shared Rng),
            // so shards can evaluate them; the merge replays the outcome
            // in node order like every other side effect.
            const GrayCircuit* gray = nullptr;
            if (gray_.any()) {
              gray = gray_.find(i, peer);
              if (gray != nullptr &&
                  !gray_.slot_active(now_, i, peer, *gray))
                continue;
            }
            const Cell* head = voqs_.peek(i, peer, now_);
            if (head == nullptr) continue;
            StagedEvent ev;
            ev.cell = *head;
            voqs_.pop_sharded(i, peer);
            ++stage.pops;
            if (sized) popped_[static_cast<std::size_t>(i)] = 1;
            if (gray != nullptr &&
                gray_.cell_lost(now_, i, peer, *gray, ev.cell)) {
              ev.gray_drop = true;
              stage.events.push_back(ev);
              continue;
            }
            ++ev.cell.hop;
            ev.deliver = ev.cell.at_destination();
            if (!ev.deliver) ev.cell.ready_slot = now_ + 1 + prop_slots;
            stage.events.push_back(ev);
          }
        });
  } catch (...) {
    // A throwing shard increments stage.pops before the statement that can
    // throw, so summing the stages restores the VoqSet size invariant even
    // for the partial sweep. The cells staged this sweep are discarded —
    // the network stays usable but this slot under-delivers.
    in_parallel_sweep_ = false;
    std::uint64_t pops = 0;
    for (const ShardStage& stage : stages_) pops += stage.pops;
    voqs_.settle_total(pops);
    throw;
  }
  in_parallel_sweep_ = false;
  std::uint64_t pops = 0;
  // optional<> so the merge scope closes before the settle scope opens
  // without re-nesting the whole replay loop.
  std::optional<ScopedPhase> merge;
  if (prof != nullptr) merge.emplace(prof, ProfPhase::kMergeReplay);
  for (ShardStage& stage : stages_) {
    pops += stage.pops;
    for (StagedEvent& ev : stage.events) {
      if (ev.gray_drop) {
        // hop was not advanced for a lost cell: current()/next_hop() are
        // still the circuit it was popped from.
        if (checker_ != nullptr)
          checker_->on_transmit(now_, ev.cell.current(), ev.cell.next_hop());
        metrics_.on_gray_drop();
        if (telemetry_ != nullptr)
          telemetry_->on_gray_drop(now_, ev.cell.current(),
                                   ev.cell.next_hop(), ev.cell.flow);
        continue;
      }
      if (checker_ != nullptr)
        checker_->on_transmit(now_, ev.cell.path.at(ev.cell.hop - 1),
                              ev.cell.current());
      if (ev.deliver) {
        deliver(ev.cell);
        continue;
      }
      metrics_.on_forward();
      if (sized) {
        const NodeId src = ev.cell.path.at(ev.cell.hop - 1);
        const NodeId at = ev.cell.current();
        const NodeId next = ev.cell.next_hop();
        // Sequentially, node `at`'s own pop this lane happens after the
        // push from src when at > src; the parallel phase already popped,
        // so add that cell back when sizing the capacity check. (`at` is
        // the only node popping queue (at, next), and src the only node
        // pushing into it this lane — the matching is a permutation.)
        const std::uint64_t adj =
            (at > src && popped_[static_cast<std::size_t>(at)] &&
             m.dst_of(at) == next)
                ? 1
                : 0;
        const std::uint64_t size = voqs_.size_of(at, next) + adj;
        if (capped && size >= config_.max_queue_cells) {
          drop(ev.cell);
          continue;
        }
        // Same reconstructed size as the capacity check, so the mark is
        // byte-identical to the one the sequential sweep would set.
        if (ecn_on && size >= config_.ecn_threshold_cells) {
          ev.cell.ecn = true;
          metrics_.on_ecn_mark();
          if (telemetry_ != nullptr) telemetry_->on_ecn_mark();
        }
      }
      voqs_.push(ev.cell);
    }
  }
  merge.reset();
  {
    ScopedPhase settle(prof, ProfPhase::kVoqSettle);
    voqs_.settle_total(pops);
  }
}

void SlottedNetwork::step() {
  PhaseProfiler* const prof =
      profiler_ != nullptr ? &profiler_->phases() : nullptr;
  const Slot period = schedule_->period();
  for (int lane = 0; lane < config_.lanes; ++lane) {
    const Slot t = now_ + lane_phase(period, config_.lanes, lane);
    const Matching* m;
    {
      ScopedPhase advance(prof, ProfPhase::kScheduleAdvance);
      m = &schedule_->matching_at(t);
    }
    if (pool_ != nullptr) {
      step_lane_parallel(*m, prof);
    } else {
      ScopedPhase sweep(prof, ProfPhase::kLaneSweep);
      step_lane_sequential(*m);
    }
  }
  metrics_.on_slot(voqs_.total_queued());
  if (checker_ != nullptr) {
    checker_->on_slot_end(now_, metrics_.injected_cells(),
                          metrics_.delivered_cells(),
                          metrics_.dropped_cells(), voqs_.total_queued());
  }
  // Sample before advancing: the row is stamped with the slot it covers.
  // The max-VOQ-depth scan is only paid on sampled slots.
  if (telemetry_ != nullptr && telemetry_->sample_due(now_)) {
    ScopedPhase flush(prof, ProfPhase::kTelemetryFlush);
    telemetry_->sample(now_, metrics_.injected_cells(),
                       metrics_.delivered_cells(), metrics_.dropped_cells(),
                       metrics_.forwarded_cells(), voqs_.total_queued(),
                       voqs_.max_queue_depth(), metrics_.open_flows());
  }
  if (profiler_ != nullptr) {
    // Gauges read sizes only; metrics/RNG are untouched, so the sampled
    // artifacts cannot diverge between profiled and unprofiled runs.
    profiler_->memory().tick(now_);
    prof->end_slot();
  }
  ++now_;
}

void SlottedNetwork::run(Slot slots) {
  for (Slot s = 0; s < slots; ++s) step();
}

void SlottedNetwork::reconfigure(const CircuitSchedule* schedule,
                                 const Router* router) {
  SORN_ASSERT(schedule != nullptr && router != nullptr,
              "cannot reconfigure to a null schedule/router");
  SORN_ASSERT(schedule->node_count() == n_,
              "reconfiguration must preserve the node count");
  schedule_ = schedule;
  router_ = router;
  if (telemetry_ != nullptr) telemetry_->on_reconfigure(now_);
}

void SlottedNetwork::reset_metrics() {
  metrics_.reset_counters();
  if (checker_ != nullptr) checker_->on_counter_reset(voqs_.total_queued());
}

void SlottedNetwork::set_invariant_checker(InvariantChecker* checker) {
  checker_ = checker;
  if (checker_ != nullptr) {
    checker_->on_attach(&failures_, metrics_.injected_cells(),
                        metrics_.delivered_cells(), metrics_.dropped_cells(),
                        voqs_.total_queued());
  }
}

void SlottedNetwork::set_threads(int threads) {
  SORN_ASSERT(threads >= 1, "need at least one engine thread");
  if (threads <= 1) {
    pool_.reset();
    shard_plan_.clear();
    stages_.clear();
    popped_.clear();
    return;
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  shard_plan_ = shard_ranges(n_, threads);
  stages_.assign(shard_plan_.size(), ShardStage{});
  popped_.assign(static_cast<std::size_t>(n_), 0);
  // A pool created while a profiler is attached starts accounting
  // immediately (set_threads after set_profiler and vice versa both work).
  if (profiler_ != nullptr) pool_->enable_profiling(true);
}

void SlottedNetwork::set_profiler(Profiler* profiler) {
  profiler_ = profiler;
  if (pool_ != nullptr) pool_->enable_profiling(profiler != nullptr);
  if (profiler == nullptr) return;
  // Register this network's byte gauges. The lambdas borrow `this`; the
  // attachment must be cleared (set_profiler(nullptr) does not unregister
  // — the profiler simply must not be sampled after the network dies).
  MemoryAccountant& mem = profiler->memory();
  mem.register_provider("voq_cells", [this] { return voqs_.memory_bytes(); });
  mem.register_provider("schedule_matchings",
                        [this] { return schedule_->memory_bytes(); });
  mem.register_provider("flow_records",
                        [this] { return metrics_.flow_records_bytes(); });
  mem.register_provider("retransmit_state", [this] {
    return metrics_.retransmit_state_bytes();
  });
  mem.register_provider("metrics_distributions", [this] {
    return metrics_.distributions_bytes();
  });
}

void SlottedNetwork::snapshot_pool_utilization() {
  if (profiler_ != nullptr && pool_ != nullptr)
    profiler_->set_pool_utilization(pool_->utilization());
}

void SlottedNetwork::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  metrics_.set_tracer(telemetry != nullptr ? &telemetry->tracer() : nullptr);
}

bool SlottedNetwork::fail_node(NodeId node) {
  if (!failures_.fail_node(node)) return false;
  if (telemetry_ != nullptr) telemetry_->on_node_fail(now_, node);
  return true;
}

bool SlottedNetwork::heal_node(NodeId node) {
  if (!failures_.heal_node(node)) return false;
  if (telemetry_ != nullptr) telemetry_->on_node_heal(now_, node);
  return true;
}

bool SlottedNetwork::fail_circuit(NodeId src, NodeId dst) {
  if (!failures_.fail_circuit(src, dst)) return false;
  if (telemetry_ != nullptr) telemetry_->on_circuit_fail(now_, src, dst);
  return true;
}

bool SlottedNetwork::heal_circuit(NodeId src, NodeId dst) {
  if (!failures_.heal_circuit(src, dst)) return false;
  if (telemetry_ != nullptr) telemetry_->on_circuit_heal(now_, src, dst);
  return true;
}

bool SlottedNetwork::degrade_circuit(NodeId src, NodeId dst, double loss_p) {
  if (!gray_.degrade_circuit(src, dst, loss_p)) return false;
  if (telemetry_ != nullptr) {
    const GrayCircuit* g = gray_.find(src, dst);
    telemetry_->on_circuit_degrade(now_, src, dst, loss_p,
                                   g != nullptr ? g->capacity : 1.0);
  }
  return true;
}

bool SlottedNetwork::throttle_circuit(NodeId src, NodeId dst,
                                      double capacity) {
  if (!gray_.throttle_circuit(src, dst, capacity)) return false;
  if (telemetry_ != nullptr) {
    const GrayCircuit* g = gray_.find(src, dst);
    telemetry_->on_circuit_degrade(now_, src, dst,
                                   g != nullptr ? g->loss_p : 0.0, capacity);
  }
  return true;
}

bool SlottedNetwork::restore_circuit(NodeId src, NodeId dst) {
  if (!gray_.restore_circuit(src, dst)) return false;
  if (telemetry_ != nullptr) telemetry_->on_circuit_restore(now_, src, dst);
  return true;
}

std::uint64_t SlottedNetwork::restore_all_gray() {
  std::uint64_t restored = 0;
  for (const auto& [s, d, g] : gray_.degraded_circuits())
    restored += restore_circuit(s, d) ? 1 : 0;
  return restored;
}

std::uint64_t SlottedNetwork::heal_all() {
  std::uint64_t healed = 0;
  for (NodeId i = 0; i < n_; ++i)
    if (failures_.is_node_failed(i)) healed += heal_node(i) ? 1 : 0;
  // Iterate a copy of the failed set (heal_circuit mutates it). The set
  // is sorted by (src, dst), so telemetry fires in the same order the old
  // all-pairs scan produced — without the O(N^2) sweep.
  const std::vector<std::pair<NodeId, NodeId>> failed =
      failures_.failed_circuits();
  for (const auto& [s, d] : failed) healed += heal_circuit(s, d) ? 1 : 0;
  return healed;
}

std::uint64_t SlottedNetwork::retransmit_stalled(
    const RetransmitPolicy& policy) {
  if (policy.timeout_slots <= 0) return 0;
  // Re-admission routes with rng_; a draw inside the parallel sweep would
  // break cross-thread-count determinism (same contract as injection).
  SORN_ASSERT(!in_parallel_sweep_, "retransmit during parallel sweep");
  // Runs between slots; the interval lands in the next slot's breakdown.
  ScopedPhase scope(profiler_ != nullptr ? &profiler_->phases() : nullptr,
                    ProfPhase::kRetransmit);
  const std::vector<SimMetrics::StalledFlow> stalled =
      metrics_.collect_retransmits(now_, policy.timeout_slots,
                                   policy.max_attempts, policy.jitter_frac,
                                   config_.seed ^ 0x62636b6f66664a74ULL);
  std::uint64_t cells = 0;
  for (const SimMetrics::StalledFlow& sf : stalled) {
    // Bulk-classified flows were injected via the bulk router
    // (inject_flow_with) and must be re-admitted through it: the two
    // routers are different path classes (Opera: bulk rides the direct
    // rotation circuit), not interchangeable load-balancers.
    const Router& router =
        sf.bulk && bulk_router_ != nullptr ? *bulk_router_ : *router_;
    for (const std::uint32_t seq : sf.missing) {
      Cell cell;
      cell.flow = sf.flow;
      cell.seq = seq;
      cell.path = router.route(sf.src, sf.dst, now_, rng_);
      cell.hop = 0;
      cell.inject_slot = now_;  // copy latency; FCT uses the flow record
      cell.ready_slot = now_;
      metrics_.on_retransmit_cell();
      ++cells;
      enqueue_or_drop(cell);
    }
    if (telemetry_ != nullptr) {
      telemetry_->on_retransmit(now_, sf.flow, sf.missing.size(),
                                sf.attempt);
    }
  }
  return cells;
}

}  // namespace sorn
