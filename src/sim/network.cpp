#include "sim/network.h"

#include "util/assert.h"

namespace sorn {

SlottedNetwork::SlottedNetwork(const CircuitSchedule* schedule,
                               const Router* router, NetworkConfig config)
    : schedule_(schedule),
      router_(router),
      config_(config),
      n_(schedule->node_count()),
      voqs_(n_),
      metrics_(config.slot_duration, config.propagation_per_hop),
      rng_(config.seed),
      failed_nodes_(static_cast<std::size_t>(n_), false),
      failed_circuits_(
          static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
          false) {
  SORN_ASSERT(schedule_ != nullptr && router_ != nullptr,
              "network needs a schedule and a router");
  SORN_ASSERT(config_.lanes >= 1, "need at least one uplink lane");
  SORN_ASSERT(config_.cell_bytes >= 1, "cells must carry at least one byte");
}

void SlottedNetwork::inject_flow(FlowId flow, NodeId src, NodeId dst,
                                 std::uint64_t bytes, int flow_class) {
  inject_flow_with(*router_, flow, src, dst, bytes, flow_class);
}

void SlottedNetwork::inject_flow_with(const Router& router, FlowId flow,
                                      NodeId src, NodeId dst,
                                      std::uint64_t bytes, int flow_class) {
  SORN_ASSERT(src != dst, "flow endpoints must differ");
  const std::uint64_t cells =
      (bytes + config_.cell_bytes - 1) / config_.cell_bytes;
  if (telemetry_ != nullptr)
    telemetry_->on_flow_inject(now_, flow, src, dst, bytes, flow_class);
  for (std::uint64_t c = 0; c < cells; ++c) {
    Cell cell;
    cell.flow = flow;
    // Stagger the routing reference slot across the flow's cells: cell c
    // will leave the source no earlier than c/lanes slots from now, and
    // "first available link" load balancing must be evaluated at each
    // cell's own departure opportunity (otherwise a whole flow convoys
    // onto one queue; cf. the paper's footnote on long flows spreading
    // across all intra-clique links).
    cell.path = router.route(
        src, dst, now_ + static_cast<Slot>(c) / config_.lanes, rng_);
    cell.hop = 0;
    cell.inject_slot = now_;
    cell.ready_slot = now_;
    metrics_.on_inject(cell, cells, bytes, flow_class);
    if (!voqs_.try_push(cell, config_.max_queue_cells)) drop(cell);
  }
}

void SlottedNetwork::inject_cell(NodeId src, NodeId dst) {
  SORN_ASSERT(src != dst, "cell endpoints must differ");
  Cell cell;
  cell.flow = kNoFlow;
  cell.path = router_->route(src, dst, now_, rng_);
  cell.hop = 0;
  cell.inject_slot = now_;
  cell.ready_slot = now_;
  metrics_.on_inject(cell, 1, config_.cell_bytes);
  if (!voqs_.try_push(cell, config_.max_queue_cells)) drop(cell);
}

void SlottedNetwork::drop(const Cell& cell) {
  metrics_.on_drop();
  if (telemetry_ != nullptr)
    telemetry_->on_cell_drop(now_, cell.current(), cell.next_hop(), cell.flow);
}

void SlottedNetwork::transmit(NodeId node, NodeId peer) {
  if (any_failures_ &&
      (failed_nodes_[static_cast<std::size_t>(node)] ||
       failed_nodes_[static_cast<std::size_t>(peer)] ||
       failed_circuits_[edge_index(node, peer)])) {
    return;
  }
  const Cell* head = voqs_.peek(node, peer, now_);
  if (head == nullptr) return;
  Cell cell = *head;
  voqs_.pop(node, peer);
  ++cell.hop;
  if (cell.at_destination()) {
    metrics_.on_deliver(cell, now_ + 1);  // arrives at the end of the slot
    return;
  }
  metrics_.on_forward();
  // Turnaround at the relay: receivable next slot at the earliest; the
  // propagation delay is modelled in readiness as whole slots (rounded up)
  // and in wall-clock latency exactly (metrics).
  const Slot prop_slots =
      (config_.propagation_per_hop + config_.slot_duration - 1) /
      config_.slot_duration;
  cell.ready_slot = now_ + 1 + prop_slots;
  if (!voqs_.try_push(cell, config_.max_queue_cells)) drop(cell);
}

void SlottedNetwork::step() {
  const Slot period = schedule_->period();
  for (int lane = 0; lane < config_.lanes; ++lane) {
    const Slot t = now_ + lane_phase(period, config_.lanes, lane);
    const Matching& m = schedule_->matching_at(t);
    for (NodeId i = 0; i < n_; ++i) {
      const NodeId peer = m.dst_of(i);
      if (peer != i) transmit(i, peer);
    }
  }
  metrics_.on_slot(voqs_.total_queued());
  // Sample before advancing: the row is stamped with the slot it covers.
  // The max-VOQ-depth scan is only paid on sampled slots.
  if (telemetry_ != nullptr && telemetry_->sample_due(now_)) {
    telemetry_->sample(now_, metrics_.injected_cells(),
                       metrics_.delivered_cells(), metrics_.dropped_cells(),
                       metrics_.forwarded_cells(), voqs_.total_queued(),
                       voqs_.max_queue_depth(), metrics_.open_flows());
  }
  ++now_;
}

void SlottedNetwork::run(Slot slots) {
  for (Slot s = 0; s < slots; ++s) step();
}

void SlottedNetwork::reconfigure(const CircuitSchedule* schedule,
                                 const Router* router) {
  SORN_ASSERT(schedule != nullptr && router != nullptr,
              "cannot reconfigure to a null schedule/router");
  SORN_ASSERT(schedule->node_count() == n_,
              "reconfiguration must preserve the node count");
  schedule_ = schedule;
  router_ = router;
  if (telemetry_ != nullptr) telemetry_->on_reconfigure(now_);
}

void SlottedNetwork::reset_metrics() { metrics_.reset_counters(); }

void SlottedNetwork::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  metrics_.set_tracer(telemetry != nullptr ? &telemetry->tracer() : nullptr);
}

void SlottedNetwork::fail_node(NodeId node) {
  failed_nodes_[static_cast<std::size_t>(node)] = true;
  any_failures_ = true;
  if (telemetry_ != nullptr) telemetry_->on_node_fail(now_, node);
}

void SlottedNetwork::heal_node(NodeId node) {
  failed_nodes_[static_cast<std::size_t>(node)] = false;
  if (telemetry_ != nullptr) telemetry_->on_node_heal(now_, node);
}

void SlottedNetwork::fail_circuit(NodeId src, NodeId dst) {
  failed_circuits_[edge_index(src, dst)] = true;
  any_failures_ = true;
  if (telemetry_ != nullptr) telemetry_->on_circuit_fail(now_, src, dst);
}

void SlottedNetwork::heal_circuit(NodeId src, NodeId dst) {
  failed_circuits_[edge_index(src, dst)] = false;
  if (telemetry_ != nullptr) telemetry_->on_circuit_heal(now_, src, dst);
}

}  // namespace sorn
