// Gray (partial) circuit failures: links that stay up but misbehave.
//
// Complements routing/failure_view.h's fail-stop model with two degraded
// modes per directed circuit, freely combined:
//
//   lossy     — each transmitted cell is independently lost with
//               probability loss_p (optics with a marginal transceiver);
//   throttled — the circuit only serves a `capacity` fraction of its
//               slots (a lane running below line rate); in an inactive
//               slot the head cell stays queued, exactly like a fail-stop
//               outage slot.
//
// Determinism contract: both decisions are *stateless* — a splitmix64
// hash of (seed, slot, circuit, cell identity) compared against the
// probability — so they can be evaluated inside the parallel lane sweep
// by any shard without drawing the shared Rng or keeping per-thread
// state. The same (seed, slot, cell) always gives the same verdict, which
// keeps runs byte-identical at any thread count (see DESIGN.md §12).
//
// Mutation happens only between slots on the coordinating thread
// (FaultInjector::tick); the sweep reads the map concurrently, which is
// safe because readers never co-exist with writers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/cell.h"
#include "util/assert.h"
#include "util/time.h"
#include "util/types.h"

namespace sorn {

struct GrayCircuit {
  double loss_p = 0.0;    // per-cell loss probability, [0, 1]
  double capacity = 1.0;  // fraction of slots the circuit serves, [0, 1]
};

class GrayFailureView {
 public:
  explicit GrayFailureView(NodeId nodes) : n_(nodes) {}

  // Fast path for the sweep: no degraded circuits, no lookups.
  bool any() const { return !circuits_.empty(); }

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  std::uint64_t seed() const { return seed_; }

  // ---- Mutators (coordinating thread, between slots) ----
  // Idempotent: the return value reports whether state actually changed,
  // so injectors can skip duplicate telemetry.
  bool degrade_circuit(NodeId src, NodeId dst, double loss_p) {
    SORN_ASSERT(loss_p >= 0.0 && loss_p <= 1.0,
                "loss probability must be in [0, 1]");
    GrayCircuit& g = circuits_[key(src, dst)];
    if (g.loss_p == loss_p) {
      prune(src, dst, g);
      return false;
    }
    g.loss_p = loss_p;
    prune(src, dst, g);
    return true;
  }
  bool throttle_circuit(NodeId src, NodeId dst, double capacity) {
    SORN_ASSERT(capacity >= 0.0 && capacity <= 1.0,
                "capacity must be in [0, 1]");
    GrayCircuit& g = circuits_[key(src, dst)];
    if (g.capacity == capacity) {
      prune(src, dst, g);
      return false;
    }
    g.capacity = capacity;
    prune(src, dst, g);
    return true;
  }
  bool restore_circuit(NodeId src, NodeId dst) {
    return circuits_.erase(key(src, dst)) > 0;
  }
  std::uint64_t restore_all() {
    const std::uint64_t n = circuits_.size();
    circuits_.clear();
    return n;
  }

  // ---- Sweep-side queries (any thread, read-only) ----
  // The degraded state of (src, dst), or nullptr when healthy. The
  // pointer stays valid for the whole sweep (no mutation during sweeps).
  const GrayCircuit* find(NodeId src, NodeId dst) const {
    const auto it = circuits_.find(key(src, dst));
    return it == circuits_.end() ? nullptr : &it->second;
  }

  // Whether a throttled circuit serves this slot: a seeded hash of
  // (slot, circuit) thins the slot stream to the capacity fraction.
  bool slot_active(Slot slot, NodeId src, NodeId dst,
                   const GrayCircuit& g) const {
    if (g.capacity >= 1.0) return true;
    std::uint64_t h = mix(seed_ ^ kCapacityDomain ^
                          static_cast<std::uint64_t>(slot));
    h = mix(h ^ key(src, dst));
    return to_unit(h) < g.capacity;
  }

  // Whether this particular transmission is lost. Keyed on the cell's
  // identity (flow, seq, hop) as well as the slot, so a retransmitted
  // copy crossing the same circuit re-rolls its fate.
  bool cell_lost(Slot slot, NodeId src, NodeId dst, const GrayCircuit& g,
                 const Cell& cell) const {
    if (g.loss_p <= 0.0) return false;
    std::uint64_t h = mix(seed_ ^ kLossDomain ^
                          static_cast<std::uint64_t>(slot));
    h = mix(h ^ key(src, dst));
    h = mix(h ^ cell.flow);
    h = mix(h ^ ((static_cast<std::uint64_t>(cell.seq) << 16) |
                 static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(cell.hop) & 0xffff)));
    return to_unit(h) < g.loss_p;
  }

  // ---- Introspection ----
  std::uint64_t degraded_circuit_count() const { return circuits_.size(); }
  // Sorted by (src, dst) for deterministic reporting.
  std::vector<std::tuple<NodeId, NodeId, GrayCircuit>> degraded_circuits()
      const {
    std::vector<std::tuple<NodeId, NodeId, GrayCircuit>> out;
    out.reserve(circuits_.size());
    for (const auto& [k, g] : circuits_) {
      out.emplace_back(static_cast<NodeId>(k / static_cast<std::uint64_t>(n_)),
                       static_cast<NodeId>(k % static_cast<std::uint64_t>(n_)),
                       g);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) {
                return std::make_pair(std::get<0>(a), std::get<1>(a)) <
                       std::make_pair(std::get<0>(b), std::get<1>(b));
              });
    return out;
  }

 private:
  static constexpr std::uint64_t kLossDomain = 0x6c6f73737943656cULL;
  static constexpr std::uint64_t kCapacityDomain = 0x746872746c536c74ULL;

  std::uint64_t key(NodeId src, NodeId dst) const {
    return static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(n_) +
           static_cast<std::uint64_t>(dst);
  }
  // A circuit degraded back to the healthy point is dropped from the map
  // so any() stays an exact fast path.
  void prune(NodeId src, NodeId dst, const GrayCircuit& g) {
    if (g.loss_p <= 0.0 && g.capacity >= 1.0)
      circuits_.erase(key(src, dst));
  }
  // splitmix64 finalizer: cheap, stateless, well mixed.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  static double to_unit(std::uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  NodeId n_;
  std::uint64_t seed_ = 1;
  // Sparse: only degraded circuits are stored, keyed src * n + dst.
  std::unordered_map<std::uint64_t, GrayCircuit> circuits_;
};

}  // namespace sorn
