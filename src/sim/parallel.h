// Persistent worker pool and deterministic sharding for the slot engine.
//
// The pool executes one "batch" at a time: run_shards(k, fn) calls
// fn(0..k-1) across the workers and returns when every shard finished.
// Shards are claimed dynamically (an atomic ticket counter), which is safe
// for determinism because the engine never lets execution order leak into
// results: each shard writes only shard-local staging buffers that the
// caller merges in fixed shard order afterwards (see network.cpp).
//
// Dispatch latency matters more than fairness here — a 128-node lane sweep
// is only a few microseconds of work — so idle workers spin briefly before
// parking on a condition variable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/prof/pool_stats.h"
#include "util/types.h"

namespace sorn {

// A contiguous slice [begin, end) of the node index space.
struct ShardRange {
  NodeId begin = 0;
  NodeId end = 0;
};

// Split [0, n) into at most `shards` near-equal contiguous ranges (never
// an empty range; fewer ranges when n < shards). Depends only on
// (n, shards), so a given thread count always produces the same plan.
std::vector<ShardRange> shard_ranges(NodeId n, int shards);

class ThreadPool {
 public:
  // threads >= 1. A pool of 1 owns no workers: batches run inline on the
  // calling thread, so the single-threaded engine pays no synchronization.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  // Dispatch a batch without blocking (inline pools run it right here).
  // A previous batch must have been wait()ed for. fn may be called
  // concurrently from several workers with distinct shard indices.
  void begin(int shards, std::function<void(int)> fn);

  // Block until the current batch completes. If any shard threw, rethrows
  // the exception of the lowest-indexed throwing shard (deterministic
  // regardless of scheduling). No-op when no batch is active.
  void wait();

  // begin() + wait().
  void run_shards(int shards, const std::function<void(int)>& fn);

  // std::thread::hardware_concurrency with a floor of 1 (the standard
  // allows it to return 0).
  static int default_threads();

  // ---- Utilization accounting (obs/prof) ----
  // When enabled, each worker times its shard bodies (two clock reads per
  // shard, written to its own cache-line-padded counters with relaxed
  // atomics) and the owner times its wait()s. Disabled — the default —
  // the hot paths pay one relaxed flag load. Call between batches, from
  // the owner thread; enabling resets the counters and starts the
  // utilization window.
  void enable_profiling(bool on);
  bool profiling_enabled() const {
    return profiling_.load(std::memory_order_relaxed);
  }
  // Snapshot of the counters since enable_profiling(true). Owner thread,
  // between batches. window_ns spans enable to this call.
  PoolUtilization utilization() const;

 private:
  void worker_loop(int worker);
  // Claim and run shards of the current batch until none remain.
  void execute_shards(int worker);
  void rethrow_first_error();

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex m_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool batch_active_ = false;  // owner-thread bookkeeping (begin/wait/dtor)

  // Batch state. Written in begin() before the ticket store releases it
  // to the workers. ticket_ is the single source of truth: it packs
  // (batch generation << kShardBits) | next shard, so one counter both
  // wakes idle workers (generation bits changed) and hands out claims
  // (fetch_add). A straggler's claim from a drained batch carries a stale
  // generation tag and is discarded, so it can never collide with — or
  // be double-executed against — a claim on the current batch.
  static constexpr int kShardBits = 20;
  std::function<void(int)> fn_;
  std::atomic<int> shards_{0};
  // remaining_ == 0 is the batch-completion signal wait() observes; it is
  // deliberately the *only* one. A boolean "done" flag set by the last
  // worker would race: the owner can exit wait() through the spin path and
  // begin() the next batch before that worker gets around to setting it,
  // leaving a stale done mark that ends the next wait() early.
  std::atomic<int> remaining_{0};
  std::atomic<std::uint64_t> ticket_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::exception_ptr> errors_;  // one slot per shard

  // Profiling counters. Per-worker entries are padded so concurrent
  // relaxed writes from different workers never share a cache line; the
  // owner-side fields (batches, wait time, window start) are touched only
  // from the owner thread.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> shards{0};
  };
  std::atomic<bool> profiling_{false};
  std::vector<WorkerCounters> worker_counters_;  // sized threads_, fixed
  std::uint64_t prof_batches_ = 0;
  std::uint64_t owner_wait_ns_ = 0;
  std::uint64_t window_start_ns_ = 0;
};

}  // namespace sorn
