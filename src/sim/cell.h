// The unit of transmission: a fixed-size cell.
//
// Like Sirius and Shoal, the fabric transports fixed-size cells — one cell
// per uplink per time slot. A cell carries its full source-selected path
// (source routing), the index of the node currently holding it, and the
// timestamps needed for latency accounting.
#pragma once

#include <cstdint>

#include "routing/path.h"
#include "util/time.h"

namespace sorn {

using FlowId = std::uint64_t;
constexpr FlowId kNoFlow = ~FlowId{0};

struct Cell {
  FlowId flow = kNoFlow;
  Path path;
  // Position of this cell within its flow (0-based). Lets the receiver
  // deduplicate retransmitted copies; always 0 for anonymous cells.
  std::uint32_t seq = 0;
  // Index into path of the node currently buffering the cell.
  std::int32_t hop = 0;
  // Slot at which the cell entered the source queue.
  Slot inject_slot = 0;
  // Earliest slot at which the cell may be transmitted from the current
  // node (models propagation + forwarding turnaround after each hop).
  Slot ready_slot = 0;
  // ECN-like congestion mark: set when the cell is enqueued into a VOQ
  // already holding at least NetworkConfig::ecn_threshold_cells cells.
  // Carried to the receiver and echoed to the transport at delivery.
  bool ecn = false;

  NodeId current() const { return path.at(hop); }
  NodeId next_hop() const { return path.at(hop + 1); }
  bool at_destination() const { return hop == path.size() - 1; }
};

}  // namespace sorn
