// Measurement collection for simulator runs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "sim/cell.h"
#include "util/stats.h"
#include "util/time.h"

namespace sorn {

struct FlowRecord {
  Slot inject_slot = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t cells_remaining = 0;
  std::uint64_t bytes = 0;
  // Caller-defined class (e.g. intra/inter-clique, short/bulk) used to
  // split FCT percentiles.
  int flow_class = 0;
};

class SimMetrics {
 public:
  // slot_duration and per-hop propagation convert slot counts to wall time.
  SimMetrics(Picoseconds slot_duration, Picoseconds propagation_per_hop);

  void on_inject(const Cell& cell, std::uint64_t flow_cells,
                 std::uint64_t flow_bytes, int flow_class = 0);
  void on_forward() { ++forwarded_cells_; }
  void on_deliver(const Cell& cell, Slot now);
  void on_drop() { ++dropped_cells_; }
  void on_slot(std::uint64_t queued_cells);

  std::uint64_t injected_cells() const { return injected_cells_; }
  std::uint64_t delivered_cells() const { return delivered_cells_; }
  std::uint64_t forwarded_cells() const { return forwarded_cells_; }
  std::uint64_t dropped_cells() const { return dropped_cells_; }
  std::uint64_t slots_run() const { return slots_run_; }
  std::uint64_t completed_flows() const { return completed_flows_; }
  // Flows injected but not yet fully delivered.
  std::uint64_t open_flows() const { return open_flows_.size(); }

  // Average hops each delivered cell took (the bandwidth-tax measure).
  double mean_hops() const;

  // Delivered cells per node per lane per slot — the throughput r of the
  // paper when sources are saturated.
  double delivered_per_slot(NodeId nodes, int lanes) const;

  // Cell latency in wall time: (deliver - inject) slots * slot_duration
  // + hops * propagation.
  const Percentiles& cell_latency_ps() const { return cell_latency_ps_; }
  // Flow completion times (same wall-time convention).
  const Percentiles& fct_ps() const { return fct_ps_; }
  // FCTs of one flow class only (empty Percentiles if the class is unseen).
  const Percentiles& fct_ps_class(int flow_class) const;
  // The classes with at least one completed flow, ascending (deterministic
  // export order).
  std::vector<int> flow_classes() const;
  const RunningStats& queue_occupancy() const { return queue_occupancy_; }

  // Zero all counters and distributions but keep the open-flow records:
  // flows in flight across a warmup boundary still complete and count
  // (their FCT spans the reset). The attached tracer also survives.
  void reset_counters();

  // Borrowed tracer for flow_complete events; nullptr disables.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  Picoseconds slot_duration_;
  Picoseconds propagation_per_hop_;

  std::uint64_t injected_cells_ = 0;
  std::uint64_t delivered_cells_ = 0;
  std::uint64_t forwarded_cells_ = 0;
  std::uint64_t dropped_cells_ = 0;
  std::uint64_t slots_run_ = 0;
  std::uint64_t completed_flows_ = 0;
  std::uint64_t delivered_hops_ = 0;

  Percentiles cell_latency_ps_;
  Percentiles fct_ps_;
  std::unordered_map<int, Percentiles> fct_by_class_;
  RunningStats queue_occupancy_;
  std::unordered_map<FlowId, FlowRecord> open_flows_;
  Tracer* tracer_ = nullptr;
};

}  // namespace sorn
