// Measurement collection for simulator runs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "sim/cell.h"
#include "util/arena.h"
#include "util/stats.h"
#include "util/time.h"

namespace sorn {

struct FlowRecord {
  Slot inject_slot = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t cells_remaining = 0;
  std::uint64_t bytes = 0;
  // Caller-defined class (e.g. intra/inter-clique, short/bulk) used to
  // split FCT percentiles.
  int flow_class = 0;
  // True when the flow was injected through the network's registered bulk
  // router (SlottedNetwork::set_bulk_router); retransmissions must go back
  // out through that router, not the primary path class.
  bool bulk = false;

  // ---- End-host retransmission state ----
  NodeId src = 0;
  NodeId dst = 0;
  // Highest seq + 1 the source has actually injected. Open-loop flows
  // inject all cells at once, but a windowed transport releases them
  // gradually — the stall detector must only re-admit cells that were
  // sent at least once (an unsent seq is not "missing", and re-admitting
  // it would bypass the congestion window).
  std::uint64_t cells_sent = 0;
  // Per-seq delivery marks: lets the receiver drop duplicate copies when
  // both an original and its retransmission eventually arrive (outage
  // semantics never lose the original).
  std::vector<bool> delivered;
  // Slot of the last first-copy delivery (or the last retransmission
  // re-admission); the stall detector compares against this.
  Slot last_progress_slot = 0;
  // Slot progress stopped before the first stall was detected; time-to-
  // recover for the flow is completion - first_stall_slot.
  Slot first_stall_slot = 0;
  bool stalled = false;
  // Retransmission rounds already spent on this flow (exponential backoff
  // doubles the timeout each round).
  std::uint32_t attempts = 0;
};

class SimMetrics {
 public:
  // A flow the stall detector flagged: its undelivered cell seqs, for the
  // source to re-admit.
  struct StalledFlow {
    FlowId flow = kNoFlow;
    NodeId src = 0;
    NodeId dst = 0;
    int flow_class = 0;
    bool bulk = false;  // re-admit via the bulk router (FlowRecord::bulk)
    std::uint32_t attempt = 0;  // 1 on the first retransmission
    std::vector<std::uint32_t> missing;
  };

  // slot_duration and per-hop propagation convert slot counts to wall time.
  SimMetrics(Picoseconds slot_duration, Picoseconds propagation_per_hop);

  // `bulk` marks flows injected through the network's bulk router so
  // their retransmissions can be routed back through it.
  void on_inject(const Cell& cell, std::uint64_t flow_cells,
                 std::uint64_t flow_bytes, int flow_class = 0,
                 bool bulk = false);
  void on_forward() { ++forwarded_cells_; }
  // Returns true when the cell was the first copy to advance an open flow
  // (false for anonymous cells and receiver-dedup duplicates) — the
  // signal the network echoes to an attached transport as an ack.
  bool on_deliver(const Cell& cell, Slot now);
  void on_drop() { ++dropped_cells_; }
  // A cell was ECN-marked at enqueue (VOQ depth at or above the
  // configured threshold).
  void on_ecn_mark() { ++ecn_marked_cells_; }
  void on_slot(std::uint64_t queued_cells);
  // A retransmitted copy entered the source queue: counts as an injected
  // cell (so the injected = delivered + dropped + in-flight invariant
  // holds) and is tallied separately.
  void on_retransmit_cell() {
    ++injected_cells_;
    ++retransmitted_cells_;
  }
  // A cell lost on a gray (lossy) circuit: counted in dropped_cells so
  // the conservation identity holds, and tallied separately from
  // tail drops.
  void on_gray_drop() {
    ++dropped_cells_;
    ++gray_dropped_cells_;
  }

  // Scan open flows for stalls: a flow whose last progress is at least
  // timeout * 2^attempts slots old (and under max_attempts rounds) is
  // flagged, its backoff advanced, and its missing cell seqs returned,
  // sorted by flow id so re-admission order is deterministic. Mutates the
  // flow records (attempts, stall bookkeeping); call once per check
  // interval, on the coordinating thread.
  //
  // jitter_frac > 0 scales each flow's wait by a stateless per-(flow,
  // round) hash factor in [1 - jitter/2, 1 + jitter/2] (seeded by
  // jitter_seed) so flows stalled by the same outage don't all re-admit
  // on the same slot; 0 keeps the exact unjittered timeline.
  std::vector<StalledFlow> collect_retransmits(Slot now, Slot timeout_slots,
                                               std::uint32_t max_attempts,
                                               double jitter_frac = 0.0,
                                               std::uint64_t jitter_seed = 0);

  std::uint64_t injected_cells() const { return injected_cells_; }
  std::uint64_t delivered_cells() const { return delivered_cells_; }
  std::uint64_t forwarded_cells() const { return forwarded_cells_; }
  std::uint64_t dropped_cells() const { return dropped_cells_; }
  // Subset of dropped_cells lost to gray circuits (vs. tail drops).
  std::uint64_t gray_dropped_cells() const { return gray_dropped_cells_; }
  // Cells that received an ECN mark at enqueue.
  std::uint64_t ecn_marked_cells() const { return ecn_marked_cells_; }
  std::uint64_t slots_run() const { return slots_run_; }
  std::uint64_t completed_flows() const { return completed_flows_; }
  // Flows injected but not yet fully delivered.
  std::uint64_t open_flows() const { return open_flows_.size(); }

  // ---- Retransmission / recovery counters ----
  // Cells re-admitted by the retransmission policy (subset of injected).
  std::uint64_t retransmitted_cells() const { return retransmitted_cells_; }
  // Stall-detector firings (one per flow per backoff round).
  std::uint64_t retransmit_events() const { return retransmit_events_; }
  // Delivered copies discarded by receiver dedup (also counted in
  // delivered_cells — both sides of the invariant see them).
  std::uint64_t duplicate_cells() const { return duplicate_cells_; }
  // Sum over stall detections of slots-since-last-progress.
  std::uint64_t stalled_flow_slots() const { return stalled_flow_slots_; }
  // Flows that stalled at least once and later completed.
  std::uint64_t recovered_flows() const { return recovered_flows_; }
  // Sum over recovered flows of completion - first_stall (slots).
  std::uint64_t recovery_slots_total() const { return recovery_slots_total_; }
  double mean_recovery_slots() const {
    return recovered_flows_ == 0
               ? 0.0
               : static_cast<double>(recovery_slots_total_) /
                     static_cast<double>(recovered_flows_);
  }

  // Average hops each delivered cell took (the bandwidth-tax measure).
  double mean_hops() const;

  // Delivered cells per node per lane per slot — the throughput r of the
  // paper when sources are saturated.
  double delivered_per_slot(NodeId nodes, int lanes) const;

  // Cell latency in wall time: (deliver - inject) slots * slot_duration
  // + hops * propagation.
  const Percentiles& cell_latency_ps() const { return cell_latency_ps_; }
  // Flow completion times (same wall-time convention).
  const Percentiles& fct_ps() const { return fct_ps_; }
  // FCTs of one flow class only (empty Percentiles if the class is unseen).
  const Percentiles& fct_ps_class(int flow_class) const;
  // The classes with at least one completed flow, ascending (deterministic
  // export order).
  std::vector<int> flow_classes() const;
  const RunningStats& queue_occupancy() const { return queue_occupancy_; }

  // ---- Memory estimates (profiler gauges, obs/prof) ----
  // In-flight flow records: the open-flow hash map plus the record
  // structs (excluding the per-seq delivery bitmaps, reported separately).
  std::uint64_t flow_records_bytes() const;
  // Retransmit/stall state: the per-seq delivered bitmaps that receiver
  // dedup and the stall detector maintain per open flow.
  std::uint64_t retransmit_state_bytes() const;
  // Latency/FCT distributions (Percentiles keep every sample).
  std::uint64_t distributions_bytes() const;

  // Zero all counters and distributions but keep the open-flow records:
  // flows in flight across a warmup boundary still complete and count
  // (their FCT spans the reset). The attached tracer also survives.
  void reset_counters();

  // Borrowed tracer for flow_complete events; nullptr disables.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  Picoseconds slot_duration_;
  Picoseconds propagation_per_hop_;

  std::uint64_t injected_cells_ = 0;
  std::uint64_t delivered_cells_ = 0;
  std::uint64_t forwarded_cells_ = 0;
  std::uint64_t dropped_cells_ = 0;
  std::uint64_t gray_dropped_cells_ = 0;
  std::uint64_t ecn_marked_cells_ = 0;
  std::uint64_t slots_run_ = 0;
  std::uint64_t completed_flows_ = 0;
  std::uint64_t delivered_hops_ = 0;
  std::uint64_t retransmitted_cells_ = 0;
  std::uint64_t retransmit_events_ = 0;
  std::uint64_t duplicate_cells_ = 0;
  std::uint64_t stalled_flow_slots_ = 0;
  std::uint64_t recovered_flows_ = 0;
  std::uint64_t recovery_slots_total_ = 0;

  Percentiles cell_latency_ps_;
  Percentiles fct_ps_;
  std::unordered_map<int, Percentiles> fct_by_class_;
  RunningStats queue_occupancy_;
  // Flow records live in a recycling arena (util/arena.h): a completed
  // flow's record — including its delivered-bitmap capacity — is reused by
  // the next flow, so steady-state flow churn stops allocating. The map
  // only holds arena indices.
  std::unordered_map<FlowId, std::uint32_t> open_flows_;
  SlotArena<FlowRecord> flow_arena_;
  Tracer* tracer_ = nullptr;
};

}  // namespace sorn
