#include "sim/parallel.h"

#include <algorithm>
#include <chrono>

#include "util/assert.h"

namespace sorn {

namespace {

// How long an idle worker (or the waiting caller) polls before parking on
// the condition variable. At the slot cadence of a large sweep (~10 us)
// the next batch almost always arrives well inside the spin window.
constexpr int kSpinIters = 1 << 14;

inline void cpu_relax(int spins) {
  // Yield the timeslice periodically so oversubscribed configurations
  // (more threads than cores, sanitizer runs) make progress instead of
  // burning a quantum per poll.
  if ((spins & 1023) == 0) {
    std::this_thread::yield();
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

inline std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::vector<ShardRange> shard_ranges(NodeId n, int shards) {
  std::vector<ShardRange> out;
  if (n <= 0 || shards <= 0) return out;
  const NodeId k = std::min<NodeId>(n, static_cast<NodeId>(shards));
  const NodeId base = n / k;
  const NodeId rem = n % k;
  out.reserve(static_cast<std::size_t>(k));
  NodeId begin = 0;
  for (NodeId s = 0; s < k; ++s) {
    const NodeId len = base + (s < rem ? 1 : 0);
    out.push_back(ShardRange{begin, begin + len});
    begin += len;
  }
  return out;
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads),
      worker_counters_(static_cast<std::size_t>(threads)) {
  SORN_ASSERT(threads >= 1, "thread pool needs at least one thread");
  if (threads_ == 1) return;
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int t = 0; t < threads_; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  // Drain a batch begun but never waited for; its exceptions (if any)
  // have nowhere to go and are dropped.
  if (batch_active_) {
    try {
      wait();
    } catch (...) {
    }
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_.store(true, std::memory_order_release);
    work_cv_.notify_all();
  }
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::begin(int shards, std::function<void(int)> fn) {
  SORN_ASSERT(!batch_active_, "previous batch not waited for");
  SORN_ASSERT(shards >= 0, "negative shard count");
  batch_active_ = true;
  errors_.assign(static_cast<std::size_t>(shards), nullptr);
  const bool prof = profiling_.load(std::memory_order_relaxed);
  if (prof) ++prof_batches_;
  if (workers_.empty()) {
    // Inline pool: run the whole batch here; wait() only rethrows.
    // Profiled inline batches attribute their time to "worker" 0 — the
    // calling thread is the only executor a 1-thread pool has.
    for (int s = 0; s < shards; ++s) {
      const std::uint64_t t0 = prof ? steady_now_ns() : 0;
      try {
        fn(s);
      } catch (...) {
        errors_[static_cast<std::size_t>(s)] = std::current_exception();
      }
      if (prof) {
        worker_counters_[0].busy_ns.fetch_add(steady_now_ns() - t0,
                                              std::memory_order_relaxed);
        worker_counters_[0].shards.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return;
  }
  // Leave headroom in the shard field: every worker can burn at most one
  // stray ticket per batch, and the shard bits must never overflow into
  // the generation tag.
  SORN_ASSERT(shards < (1 << kShardBits) - threads_ - 1,
              "shard count exceeds ticket space");
  {
    std::lock_guard<std::mutex> lk(m_);
    fn_ = std::move(fn);
    shards_.store(shards, std::memory_order_relaxed);
    remaining_.store(shards, std::memory_order_relaxed);
    const std::uint64_t gen =
        (ticket_.load(std::memory_order_relaxed) >> kShardBits) + 1;
    // The release store publishes fn_/shards_/errors_ to any worker whose
    // first contact with this batch is a ticket claim.
    ticket_.store(gen << kShardBits, std::memory_order_release);
    work_cv_.notify_all();
  }
}

void ThreadPool::wait() {
  if (!batch_active_) return;
  const bool prof = profiling_.load(std::memory_order_relaxed);
  const std::uint64_t wait_start = prof ? steady_now_ns() : 0;
  if (!workers_.empty()) {
    // Poll for completion inside the spin window, then park. remaining_
    // itself is the predicate: it is reset only by the owner's next
    // begin(), so unlike a done flag it cannot carry a stale completion
    // mark from one batch into the next (the finishing worker notifies
    // under the lock, so the wakeup cannot be lost either).
    bool done = false;
    for (int i = 0; i < kSpinIters; ++i) {
      if (remaining_.load(std::memory_order_acquire) == 0) {
        done = true;
        break;
      }
      cpu_relax(i);
    }
    if (!done) {
      std::unique_lock<std::mutex> lk(m_);
      done_cv_.wait(lk, [this] {
        return remaining_.load(std::memory_order_acquire) == 0;
      });
    }
  }
  if (prof) owner_wait_ns_ += steady_now_ns() - wait_start;
  batch_active_ = false;
  rethrow_first_error();
}

void ThreadPool::run_shards(int shards, const std::function<void(int)>& fn) {
  begin(shards, fn);
  wait();
}

void ThreadPool::rethrow_first_error() {
  for (std::exception_ptr& e : errors_) {
    if (e != nullptr) {
      std::exception_ptr first = e;
      e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

void ThreadPool::execute_shards(int worker) {
  for (;;) {
    const std::uint64_t t = ticket_.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t ticket_gen = t >> kShardBits;
    const int s = static_cast<int>(t & ((1ULL << kShardBits) - 1));
    // Validate against the counter's *current* generation bits. A valid
    // claim pins its batch (remaining_ cannot hit zero, so no new batch
    // can begin, until the shard executes), hence a same-generation
    // re-read. A claim raced against a begin() reset reads the newer
    // generation and is discarded.
    if (ticket_gen != (ticket_.load(std::memory_order_acquire) >> kShardBits) ||
        s >= shards_.load(std::memory_order_acquire))
      return;
    const bool prof = profiling_.load(std::memory_order_relaxed);
    const std::uint64_t t0 = prof ? steady_now_ns() : 0;
    try {
      fn_(s);
    } catch (...) {
      errors_[static_cast<std::size_t>(s)] = std::current_exception();
    }
    if (prof) {
      WorkerCounters& wc = worker_counters_[static_cast<std::size_t>(worker)];
      wc.busy_ns.fetch_add(steady_now_ns() - t0, std::memory_order_relaxed);
      wc.shards.fetch_add(1, std::memory_order_relaxed);
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Taking the lock before notifying closes the window between the
      // owner's predicate check and its park — a bare notify there could
      // be lost. If the owner already left via the spin path this notify
      // is harmless: the next wait() re-checks remaining_, which begin()
      // will have reset, so a straggler cannot signal the wrong batch.
      std::lock_guard<std::mutex> lk(m_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;  // generation this worker has fully drained
  const auto current_gen = [this] {
    return ticket_.load(std::memory_order_acquire) >> kShardBits;
  };
  for (;;) {
    std::uint64_t gen = current_gen();
    int spins = 0;
    while (gen == seen && !stop_.load(std::memory_order_acquire)) {
      if (++spins >= kSpinIters) {
        std::unique_lock<std::mutex> lk(m_);
        work_cv_.wait(lk, [&] {
          return current_gen() != seen ||
                 stop_.load(std::memory_order_acquire);
        });
        spins = 0;
      } else {
        cpu_relax(spins);
      }
      gen = current_gen();
    }
    if (gen == seen) return;  // stopped with no newer batch
    seen = gen;
    execute_shards(worker);
  }
}

void ThreadPool::enable_profiling(bool on) {
  SORN_ASSERT(!batch_active_, "enable_profiling during an active batch");
  if (on) {
    for (WorkerCounters& wc : worker_counters_) {
      wc.busy_ns.store(0, std::memory_order_relaxed);
      wc.shards.store(0, std::memory_order_relaxed);
    }
    prof_batches_ = 0;
    owner_wait_ns_ = 0;
    window_start_ns_ = steady_now_ns();
  }
  profiling_.store(on, std::memory_order_relaxed);
}

PoolUtilization ThreadPool::utilization() const {
  PoolUtilization u;
  u.threads = threads_;
  u.batches = prof_batches_;
  u.owner_wait_ns = owner_wait_ns_;
  u.window_ns =
      window_start_ns_ == 0 ? 0 : steady_now_ns() - window_start_ns_;
  u.workers.reserve(worker_counters_.size());
  for (const WorkerCounters& wc : worker_counters_) {
    PoolWorkerStats ws;
    ws.busy_ns = wc.busy_ns.load(std::memory_order_relaxed);
    ws.shards = wc.shards.load(std::memory_order_relaxed);
    u.shards += ws.shards;
    u.workers.push_back(ws);
  }
  return u;
}

}  // namespace sorn
