// Saturation (closed-loop) sources for worst-case throughput measurement.
//
// Every node keeps a bounded backlog of single-cell demands drawn from a
// traffic matrix; each slot, backlogs are topped up unless the network
// already holds too many in-flight cells. Under permanent backpressure the
// delivered rate converges to the saturation throughput r — the quantity
// the paper's analysis bounds (r = 1/(3-x) for SORN with optimal q).
#pragma once

#include <cstdint>

#include "sim/network.h"
#include "traffic/flow_size.h"
#include "traffic/demand_model.h"
#include "util/rng.h"

namespace sorn {

struct SaturationConfig {
  // New cells injected per node per slot while below the caps. Should be
  // at least lanes (so injection can outrun delivery).
  int cells_per_node_per_slot = 2;
  // Stop injecting while the network holds more than this many cells per
  // node (bounds memory; does not bias steady-state throughput).
  std::uint64_t max_in_flight_per_node = 512;
  std::uint64_t seed = 7;
};

class SaturationSource {
 public:
  // tm rows select destinations per source; must outlive the source.
  SaturationSource(const DemandModel* tm, SaturationConfig config);

  // Inject this slot's new demands into the network.
  void pump(SlottedNetwork& network);

  // Run warmup then a measured phase; returns delivered cells per node per
  // lane per slot over the measured phase (the throughput r).
  double measure(SlottedNetwork& network, Slot warmup_slots,
                 Slot measure_slots);

 private:
  const DemandModel* tm_;
  SaturationConfig config_;
  // Per-node row totals: the silent-row skip check. Destination draws go
  // through DemandModel::sample_dst, so no N^2 CDF copy is kept here.
  std::vector<double> row_sums_;
  Rng rng_;
};

// Flow-granular saturation: each node keeps `concurrency` open *flows*
// (destination + remaining cells) with sizes drawn from a flow-size
// distribution, cycling cell injections across them — a host multiplexing
// several transfers. This is the "real-world traffic" flavor of
// Fig. 2(f): bursty per-pair demand at the cell timescale, the matrix
// only in aggregate.
class FlowSaturationSource {
 public:
  FlowSaturationSource(const DemandModel* tm, const FlowSizeDist* sizes,
                       SaturationConfig config, int concurrency = 8);

  void pump(SlottedNetwork& network);
  double measure(SlottedNetwork& network, Slot warmup_slots,
                 Slot measure_slots);

 private:
  struct OpenFlow {
    NodeId dst = kNoNode;
    std::uint64_t cells_left = 0;
  };

  const DemandModel* tm_;
  const FlowSizeDist* sizes_;
  SaturationConfig config_;
  int concurrency_;
  std::vector<double> row_sums_;
  // concurrency_ open flows per node, row-major.
  std::vector<OpenFlow> open_;
  std::vector<int> cursor_;
  Rng rng_;
};

}  // namespace sorn
