// Open-loop flow workload driver: feeds a Poisson flow arrival stream into
// the slotted network and runs it to a time horizon, collecting FCTs.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/network.h"
#include "traffic/arrivals.h"

namespace sorn {

class WorkloadDriver {
 public:
  // Maps an arrival to a flow class for split FCT percentiles.
  using Classifier = std::function<int(const FlowArrival&)>;

  // arrivals must outlive the driver.
  explicit WorkloadDriver(FlowArrivals* arrivals,
                          Classifier classifier = nullptr);

  // Run the network until `horizon`; flows whose arrival time falls in a
  // slot are injected at that slot's start. Optionally keep running
  // (without new arrivals) until in-flight cells drain or `drain_slots`
  // elapse.
  void run_until(SlottedNetwork& network, Picoseconds horizon,
                 Slot drain_slots = 0);

  std::uint64_t flows_injected() const { return flows_injected_; }

 private:
  FlowArrivals* arrivals_;
  Classifier classifier_;
  FlowArrival pending_{};
  bool has_pending_ = false;
  std::uint64_t flows_injected_ = 0;
  FlowId next_flow_id_ = 1;
};

}  // namespace sorn
