// Flow workload driver: feeds an arrival stream (Poisson, incast waves,
// collective phases, …) into the slotted network and runs it to a time
// horizon, collecting FCTs. Open-loop by default — arrivals inject all
// their cells at once; attach a Transport (set_transport) to run closed
// loop, with arrivals opening windowed flows that release cells as acks
// come back.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/network.h"
#include "sim/transport_hook.h"
#include "traffic/arrivals.h"

namespace sorn {

class WorkloadDriver {
 public:
  // Maps an arrival to a flow class for split FCT percentiles.
  using Classifier = std::function<int(const FlowArrival&)>;
  // Called once per slot on the coordinating thread, before that slot's
  // arrivals are injected and before step(). Fault injectors hook in here
  // (FaultInjector::tick), keeping all fault RNG off the parallel sweep.
  using SlotHook = std::function<void(SlottedNetwork&, Slot)>;

  // End-host retransmission: when timeout_slots > 0, the driver checks
  // every check_every slots for flows that made no delivery progress for
  // timeout_slots * 2^attempts slots and re-admits their missing cells
  // (SlottedNetwork::retransmit_stalled). The check keeps running through
  // the drain phase, and the drain also waits on open flows — a flow whose
  // every queued cell was tail-dropped has nothing in flight but is still
  // completable by retransmission.
  struct RetransmitOptions {
    Slot timeout_slots = 0;  // 0 disables
    std::uint32_t max_attempts = 8;
    // 0 = timeout_slots / 4 (at least 1).
    Slot check_every = 0;
    // Backoff jitter amplitude (SlottedNetwork::RetransmitPolicy).
    double jitter_frac = 0.0;
  };

  // arrivals must outlive the driver.
  explicit WorkloadDriver(ArrivalStream* arrivals,
                          Classifier classifier = nullptr);

  void set_retransmit(RetransmitOptions options);
  void set_slot_hook(SlotHook hook) { slot_hook_ = std::move(hook); }

  // Attach a closed-loop transport (borrowed; must outlive the driver).
  // Arrivals are registered via Transport::open_flow instead of injected
  // directly, and the transport is pumped once per slot — after that
  // slot's arrivals, before step() — on the coordinating thread. The
  // caller wires the same transport into the network (set_transport) so
  // deliveries are acked. The drain phase also waits on the transport's
  // backlog: a windowed flow can be fully un-injected yet still pending.
  void set_transport(Transport* transport) { transport_ = transport; }

  // Truncate every arrival to at most `cap` bytes before classification
  // and injection (bounded-drain demos); 0 disables.
  void set_flow_size_cap(std::uint64_t cap) { size_cap_ = cap; }

  // Opera-style short/bulk split: flows strictly larger than
  // `cutoff_bytes` (after the size cap) are injected through `bulk`
  // instead of the network's primary router. bulk must outlive the
  // driver; nullptr disables.
  void set_bulk_router(const Router* bulk, std::uint64_t cutoff_bytes) {
    bulk_router_ = bulk;
    bulk_cutoff_ = cutoff_bytes;
  }

  // Run the network until `horizon`; flows whose arrival time falls in a
  // slot are injected at that slot's start. Optionally keep running
  // (without new arrivals) until in-flight cells drain or `drain_slots`
  // elapse.
  void run_until(SlottedNetwork& network, Picoseconds horizon,
                 Slot drain_slots = 0);

  std::uint64_t flows_injected() const { return flows_injected_; }

 private:
  // Hook + retransmission work for one slot; called before network.step().
  void before_step(SlottedNetwork& network);

  ArrivalStream* arrivals_;
  Classifier classifier_;
  SlotHook slot_hook_;
  Transport* transport_ = nullptr;
  RetransmitOptions retransmit_{};
  Slot retransmit_every_ = 0;
  std::uint64_t size_cap_ = 0;
  const Router* bulk_router_ = nullptr;
  std::uint64_t bulk_cutoff_ = 0;
  FlowArrival pending_{};
  bool has_pending_ = false;
  std::uint64_t flows_injected_ = 0;
  FlowId next_flow_id_ = 1;
};

}  // namespace sorn
