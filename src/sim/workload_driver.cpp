#include "sim/workload_driver.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

WorkloadDriver::WorkloadDriver(FlowArrivals* arrivals, Classifier classifier)
    : arrivals_(arrivals), classifier_(std::move(classifier)) {
  SORN_ASSERT(arrivals_ != nullptr, "driver needs an arrival stream");
}

void WorkloadDriver::set_retransmit(RetransmitOptions options) {
  SORN_ASSERT(options.timeout_slots >= 0, "timeout must be nonnegative");
  retransmit_ = options;
  retransmit_every_ = options.check_every > 0
                          ? options.check_every
                          : std::max<Slot>(1, options.timeout_slots / 4);
}

void WorkloadDriver::before_step(SlottedNetwork& network) {
  const Slot now = network.now();
  if (slot_hook_) slot_hook_(network, now);
  if (retransmit_.timeout_slots > 0 && now % retransmit_every_ == 0) {
    SlottedNetwork::RetransmitPolicy policy;
    policy.timeout_slots = retransmit_.timeout_slots;
    policy.max_attempts = retransmit_.max_attempts;
    policy.jitter_frac = retransmit_.jitter_frac;
    network.retransmit_stalled(policy);
  }
}

void WorkloadDriver::run_until(SlottedNetwork& network, Picoseconds horizon,
                               Slot drain_slots) {
  // Register the bulk router so bulk-class injections are flagged and
  // retransmit_stalled re-routes them through the same path class.
  network.set_bulk_router(bulk_router_);
  const Picoseconds slot_ps = network.config().slot_duration;
  while (network.now() * slot_ps < horizon) {
    const Picoseconds slot_start = network.now() * slot_ps;
    before_step(network);
    // Inject every flow that arrives before the end of this slot.
    for (;;) {
      if (!has_pending_) {
        pending_ = arrivals_->next();
        has_pending_ = true;
      }
      if (pending_.time > slot_start + slot_ps || pending_.time > horizon)
        break;
      FlowArrival arrival = pending_;
      if (size_cap_ > 0)
        arrival.bytes = std::min(arrival.bytes, size_cap_);
      const int cls = classifier_ ? classifier_(arrival) : 0;
      if (bulk_router_ != nullptr && arrival.bytes > bulk_cutoff_) {
        network.inject_flow_with(*bulk_router_, next_flow_id_++, arrival.src,
                                 arrival.dst, arrival.bytes, cls);
      } else {
        network.inject_flow(next_flow_id_++, arrival.src, arrival.dst,
                            arrival.bytes, cls);
      }
      ++flows_injected_;
      has_pending_ = false;
    }
    network.step();
  }
  const bool wait_on_flows = retransmit_.timeout_slots > 0;
  for (Slot s = 0; s < drain_slots; ++s) {
    if (network.cells_in_flight() == 0 &&
        !(wait_on_flows && network.metrics().open_flows() > 0)) {
      break;
    }
    before_step(network);
    network.step();
  }
}

}  // namespace sorn
