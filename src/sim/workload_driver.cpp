#include "sim/workload_driver.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

WorkloadDriver::WorkloadDriver(ArrivalStream* arrivals, Classifier classifier)
    : arrivals_(arrivals), classifier_(std::move(classifier)) {
  SORN_ASSERT(arrivals_ != nullptr, "driver needs an arrival stream");
}

void WorkloadDriver::set_retransmit(RetransmitOptions options) {
  SORN_ASSERT(options.timeout_slots >= 0, "timeout must be nonnegative");
  retransmit_ = options;
  retransmit_every_ = options.check_every > 0
                          ? options.check_every
                          : std::max<Slot>(1, options.timeout_slots / 4);
}

void WorkloadDriver::before_step(SlottedNetwork& network) {
  const Slot now = network.now();
  if (slot_hook_) slot_hook_(network, now);
  if (retransmit_.timeout_slots > 0 && now % retransmit_every_ == 0) {
    SlottedNetwork::RetransmitPolicy policy;
    policy.timeout_slots = retransmit_.timeout_slots;
    policy.max_attempts = retransmit_.max_attempts;
    policy.jitter_frac = retransmit_.jitter_frac;
    network.retransmit_stalled(policy);
  }
}

void WorkloadDriver::run_until(SlottedNetwork& network, Picoseconds horizon,
                               Slot drain_slots) {
  // Register the bulk router so bulk-class injections are flagged and
  // retransmit_stalled re-routes them through the same path class.
  network.set_bulk_router(bulk_router_);
  const Picoseconds slot_ps = network.config().slot_duration;
  while (network.now() * slot_ps < horizon) {
    const Picoseconds slot_start = network.now() * slot_ps;
    before_step(network);
    // Inject every flow that arrives before the end of this slot.
    for (;;) {
      if (!has_pending_) {
        pending_ = arrivals_->next();
        has_pending_ = true;
      }
      if (pending_.time > slot_start + slot_ps || pending_.time > horizon)
        break;
      FlowArrival arrival = pending_;
      // The cap truncates before classification and before injection, so
      // the classifier, the trace `flow` event, and the flow record all
      // observe the same (capped) size.
      if (size_cap_ > 0)
        arrival.bytes = std::min(arrival.bytes, size_cap_);
      const int cls = classifier_ ? classifier_(arrival) : 0;
      const bool bulk =
          bulk_router_ != nullptr && arrival.bytes > bulk_cutoff_;
      if (transport_ != nullptr) {
        transport_->open_flow(network, bulk ? bulk_router_ : nullptr,
                              next_flow_id_++, arrival.src, arrival.dst,
                              arrival.bytes, cls);
      } else if (bulk) {
        network.inject_flow_with(*bulk_router_, next_flow_id_++, arrival.src,
                                 arrival.dst, arrival.bytes, cls);
      } else {
        network.inject_flow(next_flow_id_++, arrival.src, arrival.dst,
                            arrival.bytes, cls);
      }
      ++flows_injected_;
      has_pending_ = false;
    }
    if (transport_ != nullptr) transport_->pump(network);
    network.step();
  }
  const bool wait_on_flows = retransmit_.timeout_slots > 0;
  for (Slot s = 0; s < drain_slots; ++s) {
    if (network.cells_in_flight() == 0 &&
        !(wait_on_flows && network.metrics().open_flows() > 0) &&
        !(transport_ != nullptr && transport_->has_backlog())) {
      break;
    }
    before_step(network);
    if (transport_ != nullptr) transport_->pump(network);
    network.step();
  }
}

}  // namespace sorn
