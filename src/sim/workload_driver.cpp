#include "sim/workload_driver.h"

#include "util/assert.h"

namespace sorn {

WorkloadDriver::WorkloadDriver(FlowArrivals* arrivals, Classifier classifier)
    : arrivals_(arrivals), classifier_(std::move(classifier)) {
  SORN_ASSERT(arrivals_ != nullptr, "driver needs an arrival stream");
}

void WorkloadDriver::run_until(SlottedNetwork& network, Picoseconds horizon,
                               Slot drain_slots) {
  const Picoseconds slot_ps = network.config().slot_duration;
  while (network.now() * slot_ps < horizon) {
    const Picoseconds slot_start = network.now() * slot_ps;
    // Inject every flow that arrives before the end of this slot.
    for (;;) {
      if (!has_pending_) {
        pending_ = arrivals_->next();
        has_pending_ = true;
      }
      if (pending_.time > slot_start + slot_ps || pending_.time > horizon)
        break;
      const int cls = classifier_ ? classifier_(pending_) : 0;
      network.inject_flow(next_flow_id_++, pending_.src, pending_.dst,
                          pending_.bytes, cls);
      ++flows_injected_;
      has_pending_ = false;
    }
    network.step();
  }
  for (Slot s = 0; s < drain_slots && network.cells_in_flight() > 0; ++s)
    network.step();
}

}  // namespace sorn
