#include "sim/saturation.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

SaturationSource::SaturationSource(const DemandModel* tm,
                                   SaturationConfig config)
    : tm_(tm), config_(config), rng_(config.seed) {
  SORN_ASSERT(tm_ != nullptr, "saturation source needs a traffic matrix");
  const NodeId n = tm_->node_count();
  row_sums_.resize(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i)
    row_sums_[static_cast<std::size_t>(i)] = tm_->row_sum(i);
}

void SaturationSource::pump(SlottedNetwork& network) {
  const NodeId n = network.node_count();
  const std::uint64_t cap =
      config_.max_in_flight_per_node * static_cast<std::uint64_t>(n);
  if (network.cells_in_flight() >= cap) return;
  for (NodeId i = 0; i < n; ++i) {
    if (row_sums_[static_cast<std::size_t>(i)] <= 0.0)
      continue;  // node sends nothing in this matrix
    for (int c = 0; c < config_.cells_per_node_per_slot; ++c) {
      const NodeId j = tm_->sample_dst(i, rng_);
      if (j == i) continue;  // zero-demand diagonal draw; skip
      network.inject_cell(i, j);
    }
  }
}

double SaturationSource::measure(SlottedNetwork& network, Slot warmup_slots,
                                 Slot measure_slots) {
  for (Slot s = 0; s < warmup_slots; ++s) {
    pump(network);
    network.step();
  }
  network.reset_metrics();
  for (Slot s = 0; s < measure_slots; ++s) {
    pump(network);
    network.step();
  }
  return network.metrics().delivered_per_slot(network.node_count(),
                                              network.config().lanes);
}

FlowSaturationSource::FlowSaturationSource(const DemandModel* tm,
                                           const FlowSizeDist* sizes,
                                           SaturationConfig config,
                                           int concurrency)
    : tm_(tm),
      sizes_(sizes),
      config_(config),
      concurrency_(concurrency),
      rng_(config.seed) {
  SORN_ASSERT(tm_ != nullptr && sizes_ != nullptr,
              "flow saturation source needs a matrix and sizes");
  SORN_ASSERT(concurrency_ >= 1, "need at least one open flow per node");
  const NodeId n = tm_->node_count();
  row_sums_.resize(static_cast<std::size_t>(n));
  open_.resize(static_cast<std::size_t>(n) *
               static_cast<std::size_t>(concurrency_));
  cursor_.assign(static_cast<std::size_t>(n), 0);
  for (NodeId i = 0; i < n; ++i)
    row_sums_[static_cast<std::size_t>(i)] = tm_->row_sum(i);
}

void FlowSaturationSource::pump(SlottedNetwork& network) {
  const NodeId n = network.node_count();
  const std::uint64_t cap =
      config_.max_in_flight_per_node * static_cast<std::uint64_t>(n);
  if (network.cells_in_flight() >= cap) return;
  const std::uint64_t cell_bytes = network.config().cell_bytes;
  for (NodeId i = 0; i < n; ++i) {
    if (row_sums_[static_cast<std::size_t>(i)] <= 0.0) continue;
    for (int c = 0; c < config_.cells_per_node_per_slot; ++c) {
      // Round-robin across the node's open flows.
      auto& slot = cursor_[static_cast<std::size_t>(i)];
      auto& flow = open_[static_cast<std::size_t>(i) *
                             static_cast<std::size_t>(concurrency_) +
                         static_cast<std::size_t>(slot)];
      slot = (slot + 1) % concurrency_;
      if (flow.cells_left == 0) {
        // Draw the next flow: destination from the matrix row, size from
        // the flow-size distribution.
        const NodeId j = tm_->sample_dst(i, rng_);
        if (j == i) continue;
        flow.dst = j;
        flow.cells_left =
            (sizes_->sample(rng_) + cell_bytes - 1) / cell_bytes;
      }
      network.inject_cell(i, flow.dst);
      --flow.cells_left;
    }
  }
}

double FlowSaturationSource::measure(SlottedNetwork& network,
                                     Slot warmup_slots, Slot measure_slots) {
  for (Slot s = 0; s < warmup_slots; ++s) {
    pump(network);
    network.step();
  }
  network.reset_metrics();
  for (Slot s = 0; s < measure_slots; ++s) {
    pump(network);
    network.step();
  }
  return network.metrics().delivered_per_slot(network.node_count(),
                                              network.config().lanes);
}

}  // namespace sorn
