// Per-node virtual output queues, stored sparsely.
//
// Each node keeps one FIFO per next-hop neighbor (the NIC state of the
// paper's Fig. 2c). Cells are enqueued with a ready slot; because every
// enqueue uses the same fixed delay, FIFO order coincides with ready order
// and only the head needs checking.
//
// Storage is per-node and sparse: a node owns a small sorted index of its
// *occupied* queues (next-hop -> FIFO), created on first push and erased
// when drained. Memory is O(nodes + occupied queues) instead of the dense
// N x N deque array the simulator started with — at the paper's Table-1
// scale (N = 4096) the dense layout alone was ~16.7M empty deques, several
// gigabytes of overhead before the first cell moved. total_queued() is O(1)
// and max_queue_depth() scans only occupied queues (O(active)), so
// telemetry sampling no longer pays an O(N^2) sweep per sample.
//
// Cell storage is arena-allocated (util/arena.h): each FIFO is a chain of
// fixed-size chunks drawn from a per-node ChunkPool, so steady-state push/
// pop traffic recycles chunks instead of hitting the heap, and a drained
// burst's storage is reused by the next one.
//
// Thread contract (sim/parallel.h): shards of the parallel sweep own
// disjoint node ranges and only peek()/pop_sharded() their own nodes.
// All state a pop touches — the node's queue index, its cell count, and
// its chunk pool — is per-node, so sharded pops stay race-free; the one
// global, total_, is deliberately NOT updated by pop_sharded and is
// settled once per lane by the coordinating thread (settle_total).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cell.h"
#include "util/arena.h"
#include "util/types.h"

namespace sorn {

class VoqSet {
 public:
  // Queues for `nodes` nodes, one per possible next hop, materialized
  // lazily on first use.
  explicit VoqSet(NodeId nodes);

  void push(const Cell& cell);

  // Push unless the target FIFO already holds `cap` cells (cap 0 means
  // unbounded). Returns false on a (tail-)drop.
  bool try_push(const Cell& cell, std::uint64_t cap);

  // Head cell queued at `node` for `next_hop` if transmittable at `now`,
  // else nullptr. Does not pop. The pointer is valid until the next
  // mutation of this (node, next_hop) queue.
  const Cell* peek(NodeId node, NodeId next_hop, Slot now) const;
  void pop(NodeId node, NodeId next_hop);

  // ---- Parallel-shard variants (sim/parallel.h) ----
  // Pop without touching the global total. Shards pop only their own
  // nodes' queues — disjoint state — but total_ is shared, so each shard
  // counts its pops locally and the engine settles once per lane.
  void pop_sharded(NodeId node, NodeId next_hop);
  void settle_total(std::uint64_t pops) { total_ -= pops; }
  // Raw FIFO depth, for the merge phase's sequential-order capacity check.
  // 0 when the queue is not materialized.
  std::uint64_t size_of(NodeId node, NodeId next_hop) const;

  std::uint64_t queued_at(NodeId node) const {
    return nodes_[static_cast<std::size_t>(node)].count;
  }
  std::uint64_t total_queued() const { return total_; }
  // Deepest occupied FIFO; O(occupied queues), not O(N^2).
  std::uint64_t max_queue_depth() const;
  // Number of occupied (node, next-hop) queues right now; O(nodes).
  std::uint64_t occupied_queues() const;

  // Bytes of queue storage: the per-node index plus every pool chunk
  // (live and recyclable — allocator truth). O(nodes + occupied); a
  // profiler gauge (obs/prof), sampled, not a hot-path call.
  std::uint64_t memory_bytes() const;

 private:
  // Cells per pool chunk: sized so a chunk is a few cache lines (~600 B
  // at Cell's inline-path size) — shallow queues stay one-chunk, deep
  // bursts chain without large-block allocation.
  static constexpr std::size_t kChunkCells = 8;
  using CellFifo = PooledFifo<Cell, kChunkCells>;

  // One occupied queue of a node. The index stays sorted by next_hop and
  // holds only non-empty FIFOs (entries are erased when drained), so a
  // node's memory tracks its live fan-out, not the full N next hops.
  struct Voq {
    NodeId next_hop = 0;
    CellFifo fifo;
  };
  struct NodeQueues {
    std::vector<Voq> occupied;  // sorted by next_hop; every fifo non-empty
    std::uint64_t count = 0;    // cells queued at this node
    // Chunk storage for every FIFO of this node. Per-node so the shard
    // contract above covers allocator state too.
    ChunkPool<Cell, kChunkCells> pool;
  };

  // Sorted-index lookup; nullptr when (node, next_hop) is unoccupied.
  const CellFifo* find(NodeId node, NodeId next_hop) const;
  // Shared pop path: FIFO head removal, erase-on-empty, per-node count.
  void pop_impl(NodeId node, NodeId next_hop);

  NodeId n_;
  std::vector<NodeQueues> nodes_;
  std::uint64_t total_ = 0;
};

}  // namespace sorn
