// Per-node virtual output queues.
//
// Each node keeps one FIFO per next-hop neighbor (the NIC state of the
// paper's Fig. 2c). Cells are enqueued with a ready slot; because every
// enqueue uses the same fixed delay, FIFO order coincides with ready order
// and only the head needs checking.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/cell.h"
#include "util/types.h"

namespace sorn {

class VoqSet {
 public:
  // Queues for `nodes` nodes, one per possible next hop.
  explicit VoqSet(NodeId nodes);

  void push(const Cell& cell);

  // Push unless the target FIFO already holds `cap` cells (cap 0 means
  // unbounded). Returns false on a (tail-)drop.
  bool try_push(const Cell& cell, std::uint64_t cap);

  // Head cell queued at `node` for `next_hop` if transmittable at `now`,
  // else nullptr. Does not pop.
  const Cell* peek(NodeId node, NodeId next_hop, Slot now) const;
  void pop(NodeId node, NodeId next_hop);

  // ---- Parallel-shard variants (sim/parallel.h) ----
  // Pop without touching the global total. Shards pop only their own
  // nodes' queues — disjoint state — but total_ is shared, so each shard
  // counts its pops locally and the engine settles once per lane.
  void pop_sharded(NodeId node, NodeId next_hop);
  void settle_total(std::uint64_t pops) { total_ -= pops; }
  // Raw FIFO depth, for the merge phase's sequential-order capacity check.
  std::uint64_t size_of(NodeId node, NodeId next_hop) const {
    return queues_[index(node, next_hop)].size();
  }

  std::uint64_t queued_at(NodeId node) const {
    return per_node_count_[static_cast<std::size_t>(node)];
  }
  std::uint64_t total_queued() const { return total_; }
  std::uint64_t max_queue_depth() const;

 private:
  std::size_t index(NodeId node, NodeId next_hop) const {
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(next_hop);
  }

  NodeId n_;
  std::vector<std::deque<Cell>> queues_;
  std::vector<std::uint64_t> per_node_count_;
  std::uint64_t total_ = 0;
};

}  // namespace sorn
