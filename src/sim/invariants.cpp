#include "sim/invariants.h"

#include <cstdio>

namespace sorn {

void InvariantChecker::on_attach(const FailureView* failures,
                                 std::uint64_t injected,
                                 std::uint64_t delivered, std::uint64_t dropped,
                                 std::uint64_t in_flight) {
  failures_ = failures;
  baseline_ = static_cast<std::int64_t>(delivered + dropped + in_flight) -
              static_cast<std::int64_t>(injected);
}

void InvariantChecker::on_counter_reset(std::uint64_t in_flight) {
  // Counters are zero again; the cells still queued become the anchor.
  baseline_ = static_cast<std::int64_t>(in_flight);
}

void InvariantChecker::on_flow_inject(FlowId flow, std::uint64_t cells) {
  auto [it, inserted] = flows_.try_emplace(flow);
  if (!inserted) return;  // re-injection of an open flow id; keep the first
  it->second.total = cells;
  it->second.delivered.assign(static_cast<std::size_t>(cells), false);
}

void InvariantChecker::on_transmit(Slot slot, NodeId src, NodeId dst) {
  ++transmits_checked_;
  if (failures_ == nullptr || !failures_->any_failures()) return;
  if (failures_->is_node_failed(src))
    violate(slot, "cell transmitted from failed node " + std::to_string(src));
  if (failures_->is_node_failed(dst))
    violate(slot, "cell transmitted into failed node " + std::to_string(dst));
  if (failures_->is_circuit_failed(src, dst))
    violate(slot, "cell transmitted across failed circuit " +
                      std::to_string(src) + "->" + std::to_string(dst));
}

void InvariantChecker::on_deliver(Slot slot, const Cell& cell) {
  ++delivers_checked_;
  if (cell.flow == kNoFlow) return;
  const auto it = flows_.find(cell.flow);
  // Unknown flow: either injected before the checker attached, or a late
  // retransmitted copy of a flow that already completed — both legal.
  if (it == flows_.end()) return;
  FlowTrack& track = it->second;
  if (cell.seq >= track.total) {
    violate(slot, "flow " + std::to_string(cell.flow) + " delivered seq " +
                      std::to_string(cell.seq) + " beyond its " +
                      std::to_string(track.total) + " cells");
    return;
  }
  if (track.delivered[cell.seq]) return;  // duplicate copy; receiver dedups
  track.delivered[cell.seq] = true;
  if (++track.distinct >= track.total) flows_.erase(it);
}

void InvariantChecker::on_slot_end(Slot slot, std::uint64_t injected,
                                   std::uint64_t delivered,
                                   std::uint64_t dropped,
                                   std::uint64_t in_flight) {
  ++slots_checked_;
  const std::int64_t lhs = static_cast<std::int64_t>(injected) + baseline_;
  const std::int64_t rhs =
      static_cast<std::int64_t>(delivered + dropped + in_flight);
  if (lhs != rhs) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "cell conservation broken: injected %llu + baseline %lld "
                  "!= delivered %llu + dropped %llu + in-flight %llu",
                  static_cast<unsigned long long>(injected),
                  static_cast<long long>(baseline_),
                  static_cast<unsigned long long>(delivered),
                  static_cast<unsigned long long>(dropped),
                  static_cast<unsigned long long>(in_flight));
    violate(slot, buf);
  }
}

void InvariantChecker::violate(Slot slot, const std::string& what) {
  ++violation_count_;
  if (violations_.size() < kMaxRecorded)
    violations_.push_back("slot " + std::to_string(slot) + ": " + what);
}

}  // namespace sorn
