#include "sim/voq.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

VoqSet::VoqSet(NodeId nodes)
    : n_(nodes),
      queues_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes)),
      per_node_count_(static_cast<std::size_t>(nodes), 0) {
  SORN_ASSERT(nodes > 0, "VOQ set needs at least one node");
}

void VoqSet::push(const Cell& cell) {
  SORN_ASSERT(!cell.at_destination(), "delivered cells must not be queued");
  const NodeId node = cell.current();
  queues_[index(node, cell.next_hop())].push_back(cell);
  ++per_node_count_[static_cast<std::size_t>(node)];
  ++total_;
}

bool VoqSet::try_push(const Cell& cell, std::uint64_t cap) {
  if (cap > 0 &&
      queues_[index(cell.current(), cell.next_hop())].size() >= cap)
    return false;
  push(cell);
  return true;
}

const Cell* VoqSet::peek(NodeId node, NodeId next_hop, Slot now) const {
  const auto& q = queues_[index(node, next_hop)];
  if (q.empty() || q.front().ready_slot > now) return nullptr;
  return &q.front();
}

void VoqSet::pop(NodeId node, NodeId next_hop) {
  pop_sharded(node, next_hop);
  --total_;
}

void VoqSet::pop_sharded(NodeId node, NodeId next_hop) {
  auto& q = queues_[index(node, next_hop)];
  SORN_ASSERT(!q.empty(), "pop from empty VOQ");
  q.pop_front();
  --per_node_count_[static_cast<std::size_t>(node)];
}

std::uint64_t VoqSet::max_queue_depth() const {
  std::uint64_t depth = 0;
  for (const auto& q : queues_) depth = std::max<std::uint64_t>(depth, q.size());
  return depth;
}

}  // namespace sorn
