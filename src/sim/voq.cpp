#include "sim/voq.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

VoqSet::VoqSet(NodeId nodes)
    : n_(nodes), nodes_(static_cast<std::size_t>(nodes)) {
  SORN_ASSERT(nodes > 0, "VOQ set needs at least one node");
}

void VoqSet::push(const Cell& cell) {
  SORN_ASSERT(!cell.at_destination(), "delivered cells must not be queued");
  const NodeId node = cell.current();
  const NodeId hop = cell.next_hop();
  NodeQueues& nq = nodes_[static_cast<std::size_t>(node)];
  auto it = std::lower_bound(
      nq.occupied.begin(), nq.occupied.end(), hop,
      [](const Voq& v, NodeId key) { return v.next_hop < key; });
  if (it == nq.occupied.end() || it->next_hop != hop) {
    it = nq.occupied.insert(it, Voq{});
    it->next_hop = hop;
  }
  it->fifo.push_back(nq.pool, cell);
  ++nq.count;
  ++total_;
}

bool VoqSet::try_push(const Cell& cell, std::uint64_t cap) {
  if (cap > 0 && size_of(cell.current(), cell.next_hop()) >= cap)
    return false;
  push(cell);
  return true;
}

const VoqSet::CellFifo* VoqSet::find(NodeId node, NodeId next_hop) const {
  const NodeQueues& nq = nodes_[static_cast<std::size_t>(node)];
  const auto it = std::lower_bound(
      nq.occupied.begin(), nq.occupied.end(), next_hop,
      [](const Voq& v, NodeId key) { return v.next_hop < key; });
  if (it == nq.occupied.end() || it->next_hop != next_hop) return nullptr;
  return &it->fifo;
}

const Cell* VoqSet::peek(NodeId node, NodeId next_hop, Slot now) const {
  const CellFifo* q = find(node, next_hop);
  if (q == nullptr || q->front().ready_slot > now) return nullptr;
  return &q->front();
}

std::uint64_t VoqSet::size_of(NodeId node, NodeId next_hop) const {
  const CellFifo* q = find(node, next_hop);
  return q == nullptr ? 0 : q->size();
}

void VoqSet::pop_impl(NodeId node, NodeId next_hop) {
  NodeQueues& nq = nodes_[static_cast<std::size_t>(node)];
  const auto it = std::lower_bound(
      nq.occupied.begin(), nq.occupied.end(), next_hop,
      [](const Voq& v, NodeId key) { return v.next_hop < key; });
  SORN_ASSERT(it != nq.occupied.end() && it->next_hop == next_hop,
              "pop from empty VOQ");
  it->fifo.pop_front(nq.pool);
  if (it->fifo.empty()) nq.occupied.erase(it);
  --nq.count;
}

void VoqSet::pop(NodeId node, NodeId next_hop) {
  pop_impl(node, next_hop);
  --total_;
}

void VoqSet::pop_sharded(NodeId node, NodeId next_hop) {
  pop_impl(node, next_hop);
}

std::uint64_t VoqSet::max_queue_depth() const {
  std::uint64_t depth = 0;
  for (const NodeQueues& nq : nodes_) {
    if (nq.count == 0) continue;
    for (const Voq& v : nq.occupied)
      depth = std::max<std::uint64_t>(depth, v.fifo.size());
  }
  return depth;
}

std::uint64_t VoqSet::occupied_queues() const {
  std::uint64_t queues = 0;
  for (const NodeQueues& nq : nodes_) queues += nq.occupied.size();
  return queues;
}

std::uint64_t VoqSet::memory_bytes() const {
  std::uint64_t bytes = nodes_.capacity() * sizeof(NodeQueues);
  for (const NodeQueues& nq : nodes_) {
    bytes += nq.occupied.capacity() * sizeof(Voq);
    // The per-node pool holds every chunk the node ever chained
    // (live + recyclable) — allocator truth, not an estimate.
    bytes += nq.pool.memory_bytes();
  }
  return bytes;
}

}  // namespace sorn
