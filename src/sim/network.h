// The slot-synchronous circuit network simulator.
//
// One step() is one time slot: every node, on each of its uplink lanes,
// looks up the peer its circuit connects to in this slot and transmits the
// head cell of the matching VOQ. Delivered cells are recorded; relayed
// cells become available at the next node after a fixed turnaround
// (1 slot + propagation). This is the htsim-style substrate all ORN papers
// evaluate on (see DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>

#include "obs/prof/profiler.h"
#include "obs/telemetry.h"
#include "routing/failure_view.h"
#include "routing/router.h"
#include "sim/cell.h"
#include "sim/gray_failures.h"
#include "sim/invariants.h"
#include "sim/metrics.h"
#include "sim/parallel.h"
#include "sim/transport_hook.h"
#include "sim/voq.h"
#include "topo/schedule.h"
#include "util/rng.h"
#include "util/time.h"

namespace sorn {

struct NetworkConfig {
  // Parallel uplinks per node; lane l runs the schedule phase-shifted by
  // lane_phase(period, lanes, l).
  int lanes = 1;
  Picoseconds slot_duration = 100 * 1000;      // 100 ns, Table 1
  Picoseconds propagation_per_hop = 500 * 1000;  // 500 ns, Table 1
  std::uint64_t cell_bytes = 256;
  // Per-(node, next-hop) FIFO depth; 0 = unbounded. Overflowing cells are
  // tail-dropped and counted in SimMetrics::dropped_cells (NIC buffers
  // are finite; loss experiments set this).
  std::uint64_t max_queue_cells = 0;
  // ECN-like marking: a cell enqueued into a VOQ already holding at least
  // this many cells is marked (Cell::ecn) and counted in
  // SimMetrics::ecn_marked_cells; the mark is echoed to an attached
  // transport at delivery. 0 disables. The mark decision observes the
  // same sequential-order queue size the capacity check does, so results
  // stay byte-identical at any thread count.
  std::uint64_t ecn_threshold_cells = 0;
  std::uint64_t seed = 42;
};

class SlottedNetwork {
 public:
  // schedule and router must outlive the network (or be replaced via
  // reconfigure() before destruction of the old ones).
  SlottedNetwork(const CircuitSchedule* schedule, const Router* router,
                 NetworkConfig config);

  NodeId node_count() const { return n_; }
  Slot now() const { return now_; }
  const NetworkConfig& config() const { return config_; }
  const SimMetrics& metrics() const { return metrics_; }
  SimMetrics& metrics() { return metrics_; }
  std::uint64_t cells_in_flight() const { return voqs_.total_queued(); }

  // Inject one flow: bytes are split into cells, each routed independently
  // (per-cell spraying) and enqueued at the source now. flow_class labels
  // the flow for split FCT percentiles (SimMetrics::fct_ps_class).
  void inject_flow(FlowId flow, NodeId src, NodeId dst, std::uint64_t bytes,
                   int flow_class = 0);

  // Same, but routed by `router` instead of the network's default — used
  // by designs that route flow classes differently (Opera: short flows on
  // expander paths, bulk on the direct rotation circuit).
  void inject_flow_with(const Router& router, FlowId flow, NodeId src,
                        NodeId dst, std::uint64_t bytes, int flow_class = 0);

  // Inject a contiguous window segment [first_cell, first_cell +
  // cell_count) of a flow whose full size is `bytes` — the closed-loop
  // transport's release path. The flow record is created with the full
  // totals on the first segment (first_cell == 0), which is also when the
  // flow-inject telemetry/invariant events fire; the flow completes when
  // every cell is delivered, exactly like an atomic injection.
  void inject_flow_segment(const Router& router, FlowId flow, NodeId src,
                           NodeId dst, std::uint64_t bytes,
                           std::uint64_t first_cell, std::uint64_t cell_count,
                           int flow_class = 0);

  // Register the secondary (bulk) router so the network can recognize
  // bulk-class injections and retransmit their stalled cells through the
  // same path class (retransmit_stalled). Callers that split traffic
  // (WorkloadDriver::set_bulk_router) register it before injecting;
  // nullptr disables the split. Borrowed; must outlive the network or be
  // cleared first.
  void set_bulk_router(const Router* bulk) { bulk_router_ = bulk; }
  const Router* bulk_router() const { return bulk_router_; }

  // Inject a single anonymous cell (saturation sources).
  void inject_cell(NodeId src, NodeId dst);

  // Advance one slot.
  void step();
  void run(Slot slots);

  // ---- Parallel slot engine ----
  // Shard each lane's node sweep across `threads` persistent workers.
  // Results — metrics, traces, time-series rows — are byte-identical to
  // the sequential engine for the same seed at any thread count: shards
  // stage their transmit outcomes in node order and the merge replays
  // every side effect (metrics, pushes, drops, telemetry) in exactly the
  // sequential sweep's order (see DESIGN.md, "Parallel slot engine").
  // threads <= 1 tears the pool down and restores the plain sequential
  // path, which is the default every caller starts with.
  void set_threads(int threads);
  int threads() const { return pool_ != nullptr ? pool_->thread_count() : 1; }

  // Swap in a new schedule/router (the control plane's epoch-synchronous
  // update, paper Sec. 5). In-flight cells keep their old paths; this is
  // safe because every schedule built in this library keeps the full
  // neighbor superset reachable (all pairs recur within a period).
  void reconfigure(const CircuitSchedule* schedule, const Router* router);

  // ---- Failure injection (paper Sec. 6, blast radius) ----
  // A failed node neither transmits nor receives; a failed circuit
  // disables one directed virtual edge. Cells whose next hop is failed
  // stay queued (outage semantics) and resume after heal_*. Mutators are
  // idempotent — repeated fail/heal of the same entity is a no-op and
  // emits no duplicate telemetry; the return value reports whether the
  // state actually changed.
  bool fail_node(NodeId node);
  bool heal_node(NodeId node);
  bool fail_circuit(NodeId src, NodeId dst);
  bool heal_circuit(NodeId src, NodeId dst);
  // Heal every failed node and circuit (telemetry fires per entity);
  // returns the number of entities healed.
  std::uint64_t heal_all();
  bool is_failed(NodeId node) const {
    return failures_.is_node_failed(node);
  }
  bool is_circuit_failed(NodeId src, NodeId dst) const {
    return failures_.is_circuit_failed(src, dst);
  }
  // The live failure state; routers and the control plane borrow this
  // (Router::set_failure_view, ControlPlane::set_failure_view) to route
  // and plan around outages. Valid for the network's lifetime.
  const FailureView& failure_view() const { return failures_; }

  // ---- Gray (partial) circuit failures (sim/gray_failures.h) ----
  // A degraded circuit stays up but loses each cell with probability
  // loss_p (counted in dropped_cells and gray_dropped_cells; recovered by
  // end-host retransmission); a throttled circuit serves only a
  // `capacity` fraction of its slots (head cells stay queued in inactive
  // slots, like a fail-stop outage). Both decisions are stateless seeded
  // hashes, so results stay byte-identical at any thread count. Mutators
  // are idempotent like fail_*/heal_*.
  bool degrade_circuit(NodeId src, NodeId dst, double loss_p);
  bool throttle_circuit(NodeId src, NodeId dst, double capacity);
  bool restore_circuit(NodeId src, NodeId dst);
  std::uint64_t restore_all_gray();
  const GrayFailureView& gray_view() const { return gray_; }

  // ---- End-host retransmission ----
  // A stalled flow (no delivery progress for timeout_slots * 2^attempts)
  // has its undelivered cells re-admitted at the source, routed by the
  // current router — which, if failure-aware, detours around the outage
  // that stranded the originals. Duplicate copies are discarded at the
  // receiver (Cell::seq), so FCT accounting stays exact. Call between
  // slots from the coordinating thread; returns cells re-admitted.
  struct RetransmitPolicy {
    Slot timeout_slots = 0;  // 0 disables
    std::uint32_t max_attempts = 8;
    // Fractional backoff jitter: each flow's wait for round k is scaled
    // by a deterministic per-(flow, round) factor in
    // [1 - jitter/2, 1 + jitter/2], desynchronizing the retransmit
    // stampede when many flows stall on the same outage and would
    // otherwise all fire into the source VOQs on the same slot. 0 (the
    // default) reproduces the exact pre-jitter timeline. The factor is a
    // stateless hash seeded from the network seed — no draw from the
    // shared Rng, so determinism at any thread count is preserved.
    double jitter_frac = 0.0;
  };
  std::uint64_t retransmit_stalled(const RetransmitPolicy& policy);

  // True while the parallel sweep is running; anything that draws rng_ or
  // mutates shared state (injection, fault ticks) must see false.
  bool in_parallel_sweep() const { return in_parallel_sweep_; }

  // Reset counters but keep queued cells and open-flow records (used to
  // exclude warmup; flows straddling the boundary still complete and are
  // counted, with FCTs measured from their true inject slot).
  void reset_metrics();

  // ---- Telemetry (src/obs) ----
  // Attach a borrowed telemetry facade: events (flow inject/complete,
  // drops, reconfigure, fail/heal) flow to its tracer and counters, and
  // its sampler — when enabled — records the per-slot time series. Pass
  // nullptr to detach. With nothing attached every instrumentation site
  // is one predictable null check (see bench_obs_overhead).
  void set_telemetry(Telemetry* telemetry);
  Telemetry* telemetry() const { return telemetry_; }

  // ---- Profiling (src/obs/prof) ----
  // Attach a borrowed profiler: step() wraps each engine phase in a
  // scoped timer, the pool (if any) starts utilization accounting, and
  // the network registers its byte gauges (VOQ storage, stored matchings,
  // flow records, retransmit state, distributions) with the profiler's
  // MemoryAccountant. Profiling only reads clocks and sizes — sim results
  // stay byte-identical with a profiler attached or not. Pass nullptr to
  // detach; detached sites cost one null check (bench_obs_overhead gates
  // this at <= 2%). The profiler must outlive the attachment.
  void set_profiler(Profiler* profiler);
  Profiler* profiler() const { return profiler_; }
  // Copy the pool's utilization counters into the attached profiler
  // (no-op without both a profiler and a pool). Call at end of run.
  void snapshot_pool_utilization();

  // ---- Invariant checking (sim/invariants.h) ----
  // Attach a borrowed checker: the engine feeds it every transmit,
  // delivery and slot end (always from the coordinating thread) so it can
  // independently verify cell conservation, no-forwarding-through-failed-
  // elements and receiver seq sanity. nullptr detaches; detached sites
  // cost one null check. Attachment captures the conservation baseline
  // from the current counters, so mid-run attach is exact.
  void set_invariant_checker(InvariantChecker* checker);
  InvariantChecker* invariant_checker() const { return checker_; }

  // ---- Closed-loop transport (sim/transport_hook.h) ----
  // Attach a borrowed transport: every first-copy delivery is echoed back
  // through Transport::on_ack, always on the coordinating thread (the
  // sequential sweep or the parallel merge replay), so the §6 determinism
  // contract holds with a transport attached. nullptr detaches; detached
  // sites cost one null check.
  void set_transport(Transport* transport) { transport_ = transport; }
  Transport* transport() const { return transport_; }

  // The schedule currently driving the network (reconfigure() may have
  // swapped it since construction).
  const CircuitSchedule* schedule() const { return schedule_; }
  // The router currently routing injections (for safe-mode save/restore).
  const Router* router() const { return router_; }

 private:
  // Staged outcome of one transmit, produced by the parallel sweep and
  // replayed in node order by the merge phase. The cell is already
  // advanced (hop incremented, ready_slot set for forwards).
  struct StagedEvent {
    Cell cell;
    bool deliver = false;
    // Lost to a gray (lossy) circuit: the pop happened but the cell is
    // discarded at merge instead of delivered/forwarded.
    bool gray_drop = false;
  };
  struct ShardStage {
    std::vector<StagedEvent> events;  // in ascending node order
    std::uint64_t pops = 0;           // settled into VoqSet::total_ at merge
  };

  void transmit(NodeId node, NodeId peer);
  void step_lane_sequential(const Matching& m);
  void step_lane_parallel(const Matching& m, PhaseProfiler* prof);
  // Tail-drop accounting + telemetry for a cell that failed to enqueue.
  void drop(const Cell& cell);
  // Enqueue with the capacity check and ECN marking evaluated against the
  // same queue size, in sequential-site order. Used by every push site
  // except the parallel merge, which reconstructs the sequential-order
  // size from popped_ first (see step_lane_parallel).
  void enqueue_or_drop(Cell& cell);
  // Delivery bookkeeping shared by both engines: invariant hook, metrics,
  // and the transport ack echo for first copies.
  void deliver(const Cell& cell);

  const CircuitSchedule* schedule_;
  const Router* router_;
  // Secondary path class for bulk-classified flows; flows injected
  // through it retransmit through it (see retransmit_stalled).
  const Router* bulk_router_ = nullptr;
  NetworkConfig config_;
  NodeId n_;
  Slot now_ = 0;
  VoqSet voqs_;
  SimMetrics metrics_;
  Rng rng_;
  FlowId next_anonymous_flow_ = 1ULL << 62;
  FailureView failures_;
  GrayFailureView gray_;
  Telemetry* telemetry_ = nullptr;
  Profiler* profiler_ = nullptr;
  InvariantChecker* checker_ = nullptr;
  Transport* transport_ = nullptr;

  // Parallel engine state. rng_ must never be drawn inside the parallel
  // sweep (injection — the only RNG consumer — happens between slots);
  // in_parallel_sweep_ guards against that ever regressing.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<ShardRange> shard_plan_;
  std::vector<ShardStage> stages_;
  // Per-node "popped its VOQ head this lane" marks, used by the merge to
  // reconstruct the sequential-order queue size for capacity checks and
  // ECN mark decisions.
  std::vector<std::uint8_t> popped_;
  bool in_parallel_sweep_ = false;
};

}  // namespace sorn
