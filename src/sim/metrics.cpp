#include "sim/metrics.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

SimMetrics::SimMetrics(Picoseconds slot_duration,
                       Picoseconds propagation_per_hop)
    : slot_duration_(slot_duration), propagation_per_hop_(propagation_per_hop) {
  SORN_ASSERT(slot_duration > 0, "slot duration must be positive");
  SORN_ASSERT(propagation_per_hop >= 0, "propagation must be nonnegative");
}

void SimMetrics::on_inject(const Cell& cell, std::uint64_t flow_cells,
                           std::uint64_t flow_bytes, int flow_class,
                           bool bulk) {
  ++injected_cells_;
  if (cell.flow == kNoFlow) return;
  auto [it, inserted] = open_flows_.try_emplace(cell.flow, 0);
  if (inserted) {
    const std::uint32_t idx = flow_arena_.allocate();
    it->second = idx;
    // The record may be recycled from a completed flow — every field must
    // be re-initialized here (the delivered bitmap's assign() reuses the
    // old capacity, which is the point of the arena).
    FlowRecord& rec = flow_arena_[idx];
    rec.inject_slot = cell.inject_slot;
    rec.cells_total = flow_cells;
    rec.cells_remaining = flow_cells;
    rec.bytes = flow_bytes;
    rec.flow_class = flow_class;
    rec.bulk = bulk;
    rec.src = cell.path.src();
    rec.dst = cell.path.dst();
    rec.delivered.assign(static_cast<std::size_t>(flow_cells), false);
    rec.last_progress_slot = cell.inject_slot;
    rec.first_stall_slot = 0;
    rec.stalled = false;
    rec.attempts = 0;
    rec.cells_sent = 0;
  }
  // Track the frontier of first transmissions: a windowed transport
  // injects a flow's cells across many slots, and the stall detector must
  // not "retransmit" seqs that were never sent (collect_retransmits).
  FlowRecord& rec = flow_arena_[it->second];
  if (cell.seq >= rec.cells_sent) rec.cells_sent = cell.seq + 1;
}

bool SimMetrics::on_deliver(const Cell& cell, Slot now) {
  ++delivered_cells_;
  const auto hops = static_cast<std::uint64_t>(cell.path.hop_count());
  delivered_hops_ += hops;
  const Picoseconds latency =
      (now - cell.inject_slot) * slot_duration_ +
      static_cast<Picoseconds>(hops) * propagation_per_hop_;
  cell_latency_ps_.add(static_cast<double>(latency));
  if (cell.flow == kNoFlow) return false;
  const auto it = open_flows_.find(cell.flow);
  if (it == open_flows_.end()) {
    // A retransmitted copy arriving after its flow already completed.
    ++duplicate_cells_;
    return false;
  }
  FlowRecord& rec = flow_arena_[it->second];
  if (cell.seq < rec.delivered.size()) {
    if (rec.delivered[cell.seq]) {
      // The original and a retransmission both made it; keep the first.
      ++duplicate_cells_;
      return false;
    }
    rec.delivered[cell.seq] = true;
  }
  rec.last_progress_slot = now;
  SORN_ASSERT(rec.cells_remaining > 0, "flow over-delivered");
  if (--rec.cells_remaining == 0) {
    const Picoseconds fct =
        (now - rec.inject_slot) * slot_duration_ +
        static_cast<Picoseconds>(hops) * propagation_per_hop_;
    fct_ps_.add(static_cast<double>(fct));
    fct_by_class_[rec.flow_class].add(static_cast<double>(fct));
    ++completed_flows_;
    if (rec.stalled) {
      ++recovered_flows_;
      recovery_slots_total_ +=
          static_cast<std::uint64_t>(now - rec.first_stall_slot);
    }
    if (tracer_ != nullptr)
      tracer_->flow_complete(now, cell.flow, fct, rec.flow_class);
    flow_arena_.release(it->second);
    open_flows_.erase(it);
  }
  return true;
}

namespace {

// splitmix64 finalizer; same construction as GrayFailureView's hash.
std::uint64_t jitter_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<SimMetrics::StalledFlow> SimMetrics::collect_retransmits(
    Slot now, Slot timeout_slots, std::uint32_t max_attempts,
    double jitter_frac, std::uint64_t jitter_seed) {
  std::vector<StalledFlow> out;
  if (timeout_slots <= 0) return out;
  for (auto& [flow, idx] : open_flows_) {
    FlowRecord& rec = flow_arena_[idx];
    if (rec.attempts >= max_attempts) continue;
    Slot wait = timeout_slots << std::min<std::uint32_t>(rec.attempts, 30);
    if (jitter_frac > 0.0) {
      // Deterministic per-(flow, round) factor in [1 - j/2, 1 + j/2]:
      // flows stalled by one outage spread their re-admissions instead of
      // stampeding the source VOQs on the same slot after heal. Hash, not
      // Rng: the draw count must not depend on which flows are open.
      const std::uint64_t h =
          jitter_mix(jitter_mix(jitter_seed ^ flow) ^ rec.attempts);
      const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
      const double factor = 1.0 + jitter_frac * (unit - 0.5);
      wait = std::max<Slot>(
          1, static_cast<Slot>(static_cast<double>(wait) * factor));
    }
    if (now - rec.last_progress_slot < wait) continue;
    StalledFlow sf;
    sf.flow = flow;
    sf.src = rec.src;
    sf.dst = rec.dst;
    sf.flow_class = rec.flow_class;
    sf.bulk = rec.bulk;
    // Only seqs the source actually injected at least once are missing;
    // cells still held back by a transport window are not (re-admitting
    // them here would bypass the congestion window). Open-loop flows
    // inject everything up front, so sent == delivered.size() for them.
    const std::size_t sent = std::min<std::size_t>(
        rec.delivered.size(), static_cast<std::size_t>(rec.cells_sent));
    for (std::size_t s = 0; s < sent; ++s) {
      if (!rec.delivered[s])
        sf.missing.push_back(static_cast<std::uint32_t>(s));
    }
    if (sf.missing.empty()) continue;  // all copies in flight already landed
    sf.attempt = ++rec.attempts;
    stalled_flow_slots_ +=
        static_cast<std::uint64_t>(now - rec.last_progress_slot);
    if (!rec.stalled) {
      rec.stalled = true;
      rec.first_stall_slot = rec.last_progress_slot;
    }
    // Restart the clock: the next round waits timeout * 2^attempts from
    // this re-admission.
    rec.last_progress_slot = now;
    ++retransmit_events_;
    out.push_back(std::move(sf));
  }
  // open_flows_ iteration order is unspecified; sort so re-admission (and
  // the RNG draws it triggers) is deterministic across platforms and runs.
  std::sort(out.begin(), out.end(),
            [](const StalledFlow& a, const StalledFlow& b) {
              return a.flow < b.flow;
            });
  return out;
}

const Percentiles& SimMetrics::fct_ps_class(int flow_class) const {
  static const Percentiles kEmpty;
  const auto it = fct_by_class_.find(flow_class);
  return it == fct_by_class_.end() ? kEmpty : it->second;
}

std::vector<int> SimMetrics::flow_classes() const {
  std::vector<int> classes;
  classes.reserve(fct_by_class_.size());
  for (const auto& [cls, ps] : fct_by_class_) classes.push_back(cls);
  std::sort(classes.begin(), classes.end());
  return classes;
}

void SimMetrics::reset_counters() {
  injected_cells_ = 0;
  delivered_cells_ = 0;
  forwarded_cells_ = 0;
  dropped_cells_ = 0;
  gray_dropped_cells_ = 0;
  ecn_marked_cells_ = 0;
  slots_run_ = 0;
  completed_flows_ = 0;
  delivered_hops_ = 0;
  retransmitted_cells_ = 0;
  retransmit_events_ = 0;
  duplicate_cells_ = 0;
  stalled_flow_slots_ = 0;
  recovered_flows_ = 0;
  recovery_slots_total_ = 0;
  cell_latency_ps_ = Percentiles();
  fct_ps_ = Percentiles();
  fct_by_class_.clear();
  queue_occupancy_ = RunningStats();
}

void SimMetrics::on_slot(std::uint64_t queued_cells) {
  ++slots_run_;
  queue_occupancy_.add(static_cast<double>(queued_cells));
}

double SimMetrics::mean_hops() const {
  return delivered_cells_ == 0 ? 0.0
                               : static_cast<double>(delivered_hops_) /
                                     static_cast<double>(delivered_cells_);
}

double SimMetrics::delivered_per_slot(NodeId nodes, int lanes) const {
  if (slots_run_ == 0) return 0.0;
  return static_cast<double>(delivered_cells_) /
         (static_cast<double>(slots_run_) * static_cast<double>(nodes) *
          static_cast<double>(lanes));
}

std::uint64_t SimMetrics::flow_records_bytes() const {
  // Hash-map node (key + arena index + bucket pointer, libstdc++ layout
  // approximation) plus the record arena itself (live + recyclable slots
  // — allocator truth for the structs).
  return open_flows_.size() *
             (sizeof(FlowId) + sizeof(std::uint32_t) + 2 * sizeof(void*)) +
         flow_arena_.memory_bytes();
}

std::uint64_t SimMetrics::retransmit_state_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [flow, idx] : open_flows_)
    bytes += flow_arena_[idx].delivered.capacity() / 8;  // one bit per seq
  return bytes;
}

std::uint64_t SimMetrics::distributions_bytes() const {
  std::uint64_t samples = cell_latency_ps_.count() + fct_ps_.count();
  for (const auto& [cls, p] : fct_by_class_) samples += p.count();
  return samples * sizeof(double);
}

}  // namespace sorn
