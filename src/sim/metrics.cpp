#include "sim/metrics.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

SimMetrics::SimMetrics(Picoseconds slot_duration,
                       Picoseconds propagation_per_hop)
    : slot_duration_(slot_duration), propagation_per_hop_(propagation_per_hop) {
  SORN_ASSERT(slot_duration > 0, "slot duration must be positive");
  SORN_ASSERT(propagation_per_hop >= 0, "propagation must be nonnegative");
}

void SimMetrics::on_inject(const Cell& cell, std::uint64_t flow_cells,
                           std::uint64_t flow_bytes, int flow_class) {
  ++injected_cells_;
  if (cell.flow == kNoFlow) return;
  auto [it, inserted] = open_flows_.try_emplace(cell.flow);
  if (inserted) {
    it->second.inject_slot = cell.inject_slot;
    it->second.cells_total = flow_cells;
    it->second.cells_remaining = flow_cells;
    it->second.bytes = flow_bytes;
    it->second.flow_class = flow_class;
  }
}

void SimMetrics::on_deliver(const Cell& cell, Slot now) {
  ++delivered_cells_;
  const auto hops = static_cast<std::uint64_t>(cell.path.hop_count());
  delivered_hops_ += hops;
  const Picoseconds latency =
      (now - cell.inject_slot) * slot_duration_ +
      static_cast<Picoseconds>(hops) * propagation_per_hop_;
  cell_latency_ps_.add(static_cast<double>(latency));
  if (cell.flow == kNoFlow) return;
  const auto it = open_flows_.find(cell.flow);
  if (it == open_flows_.end()) return;
  SORN_ASSERT(it->second.cells_remaining > 0, "flow over-delivered");
  if (--it->second.cells_remaining == 0) {
    const Picoseconds fct =
        (now - it->second.inject_slot) * slot_duration_ +
        static_cast<Picoseconds>(hops) * propagation_per_hop_;
    fct_ps_.add(static_cast<double>(fct));
    fct_by_class_[it->second.flow_class].add(static_cast<double>(fct));
    ++completed_flows_;
    if (tracer_ != nullptr)
      tracer_->flow_complete(now, cell.flow, fct, it->second.flow_class);
    open_flows_.erase(it);
  }
}

const Percentiles& SimMetrics::fct_ps_class(int flow_class) const {
  static const Percentiles kEmpty;
  const auto it = fct_by_class_.find(flow_class);
  return it == fct_by_class_.end() ? kEmpty : it->second;
}

std::vector<int> SimMetrics::flow_classes() const {
  std::vector<int> classes;
  classes.reserve(fct_by_class_.size());
  for (const auto& [cls, ps] : fct_by_class_) classes.push_back(cls);
  std::sort(classes.begin(), classes.end());
  return classes;
}

void SimMetrics::reset_counters() {
  injected_cells_ = 0;
  delivered_cells_ = 0;
  forwarded_cells_ = 0;
  dropped_cells_ = 0;
  slots_run_ = 0;
  completed_flows_ = 0;
  delivered_hops_ = 0;
  cell_latency_ps_ = Percentiles();
  fct_ps_ = Percentiles();
  fct_by_class_.clear();
  queue_occupancy_ = RunningStats();
}

void SimMetrics::on_slot(std::uint64_t queued_cells) {
  ++slots_run_;
  queue_occupancy_.add(static_cast<double>(queued_cells));
}

double SimMetrics::mean_hops() const {
  return delivered_cells_ == 0 ? 0.0
                               : static_cast<double>(delivered_hops_) /
                                     static_cast<double>(delivered_cells_);
}

double SimMetrics::delivered_per_slot(NodeId nodes, int lanes) const {
  if (slots_run_ == 0) return 0.0;
  return static_cast<double>(delivered_cells_) /
         (static_cast<double>(slots_run_) * static_cast<double>(nodes) *
          static_cast<double>(lanes));
}

}  // namespace sorn
