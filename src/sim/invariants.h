// Runtime invariant checking for the slotted simulator.
//
// An InvariantChecker is attached to a SlottedNetwork like the Telemetry
// and Profiler facades (set_invariant_checker): detached, every hook site
// is one predictable null check; attached, the network re-derives three
// classes of invariants every slot and records violations instead of
// trusting its own bookkeeping:
//
//   conservation — injected = delivered + dropped + in-flight, checked
//     at every slot end against an attach-time baseline (so attaching
//     mid-run or calling reset_metrics() re-anchors, not breaks, the
//     identity). Retransmitted copies count on the injected side and
//     duplicate deliveries on the delivered side, so the identity is
//     exact, not approximate.
//
//   no forwarding through failed elements — every transmitted cell's
//     (src, dst) hop is checked against the live FailureView; a cell
//     moving across a failed node or circuit means the lane sweep and
//     the fault layer disagree about the network state.
//
//   receiver seq sanity — per open flow, delivered seqs must be in
//     [0, cells_total) and the count of *distinct* delivered seqs can
//     never exceed cells_total (duplicates are expected under
//     retransmission; phantom or out-of-range cells are not). Tracking
//     is independent of SimMetrics, so a dedup bug there is caught here.
//
// Threading contract: every hook is invoked from the coordinating thread
// only — the sequential sweep calls them inline and the parallel engine
// calls them during its ordered merge replay — so the checker needs no
// synchronization and, like Telemetry, results are byte-identical at any
// thread count.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "routing/failure_view.h"
#include "sim/cell.h"
#include "util/time.h"
#include "util/types.h"

namespace sorn {

class InvariantChecker {
 public:
  InvariantChecker() = default;

  // ---- Hooks (called by SlottedNetwork; coordinating thread only) ----
  // Attachment captures the conservation baseline from the network's
  // current counters, so mid-run attachment is exact.
  void on_attach(const FailureView* failures, std::uint64_t injected,
                 std::uint64_t delivered, std::uint64_t dropped,
                 std::uint64_t in_flight);
  // reset_metrics() zeroed the counters but kept queued cells; re-anchor.
  void on_counter_reset(std::uint64_t in_flight);
  void on_flow_inject(FlowId flow, std::uint64_t cells);
  // A cell was popped for transmission across (src, dst) this slot.
  void on_transmit(Slot slot, NodeId src, NodeId dst);
  void on_deliver(Slot slot, const Cell& cell);
  void on_slot_end(Slot slot, std::uint64_t injected, std::uint64_t delivered,
                   std::uint64_t dropped, std::uint64_t in_flight);

  // ---- Results ----
  bool ok() const { return violation_count_ == 0; }
  std::uint64_t violation_count() const { return violation_count_; }
  std::uint64_t slots_checked() const { return slots_checked_; }
  std::uint64_t transmits_checked() const { return transmits_checked_; }
  std::uint64_t delivers_checked() const { return delivers_checked_; }
  // The first kMaxRecorded violation messages, each naming the slot and
  // the broken invariant.
  const std::vector<std::string>& violations() const { return violations_; }

  static constexpr std::size_t kMaxRecorded = 32;

 private:
  struct FlowTrack {
    std::uint64_t total = 0;
    std::uint64_t distinct = 0;
    std::vector<bool> delivered;
  };

  void violate(Slot slot, const std::string& what);

  const FailureView* failures_ = nullptr;
  // delivered + dropped + in_flight - injected at attach/reset time; the
  // conservation identity holds relative to this anchor.
  std::int64_t baseline_ = 0;
  std::uint64_t violation_count_ = 0;
  std::uint64_t slots_checked_ = 0;
  std::uint64_t transmits_checked_ = 0;
  std::uint64_t delivers_checked_ = 0;
  std::vector<std::string> violations_;
  std::unordered_map<FlowId, FlowTrack> flows_;
};

}  // namespace sorn
