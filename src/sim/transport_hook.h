// The sim-facing transport interface.
//
// The closed-loop end-host transport (src/transport) sits *above* the
// simulator: it holds per-flow congestion windows and releases cells into
// the network as acknowledgements open the window. The simulator must not
// depend on that library, so the two touch points are abstracted here:
//
//   - SlottedNetwork borrows a Transport* and echoes every first-copy
//     delivery back through on_ack() (always from the coordinating thread,
//     during the merge replay — the §6 determinism contract, see
//     DESIGN.md "Parallel slot engine").
//   - WorkloadDriver borrows the same Transport* and, when attached,
//     registers arrivals via open_flow() and calls pump() once per slot
//     (after that slot's arrivals, before step()) to release windowed
//     cells.
//
// TransportStats is the plain snapshot the exporters consume
// (obs/export.h) without linking the transport library either.
#pragma once

#include <cstdint>

#include "sim/cell.h"
#include "util/stats.h"
#include "util/time.h"

namespace sorn {

class Router;
class SlottedNetwork;

// Exporter-facing snapshot of a transport's lifetime counters.
struct TransportStats {
  std::uint64_t flows_opened = 0;
  std::uint64_t flows_completed = 0;
  // Cells released into the network by pump() (first transmissions only;
  // network-level retransmissions are counted by SimMetrics).
  std::uint64_t cells_sent = 0;
  // First-copy deliveries echoed back via on_ack().
  std::uint64_t acked_cells = 0;
  // Subset of acked cells that carried an ECN mark.
  std::uint64_t ecn_acked_cells = 0;
  // Congestion-window size in cells, sampled once per flow per congestion
  // round (window update), so it summarizes how hard senders were braked.
  RunningStats cwnd_cells;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Register a flow; its cells are released by subsequent pump() calls.
  // bulk_router selects the bulk path class (nullptr = the network's
  // primary router, resolved at each pump so reconfigures are honored).
  virtual void open_flow(SlottedNetwork& network, const Router* bulk_router,
                         FlowId flow, NodeId src, NodeId dst,
                         std::uint64_t bytes, int flow_class) = 0;

  // Release every flow's available window into the network (ascending
  // flow id). Call between slots on the coordinating thread; returns the
  // number of cells injected.
  virtual std::uint64_t pump(SlottedNetwork& network) = 0;

  // A first (non-duplicate) copy of `cell` was delivered at the end of
  // slot `now`. Called by the network on the coordinating thread only.
  virtual void on_ack(const Cell& cell, Slot now) = 0;

  // True while any registered flow still has unsent or unacked cells —
  // the drain phase waits on this like it waits on open flows.
  virtual bool has_backlog() const = 0;
};

}  // namespace sorn
