// Public facade: build, analyze, simulate and adapt a semi-oblivious
// reconfigurable network.
//
// Typical use (see examples/quickstart.cpp):
//
//   sorn::SornConfig config;
//   config.nodes = 128;
//   config.cliques = 8;
//   config.locality_x = 0.56;               // derives q* = 2/(1-x)
//   auto net = sorn::SornNetwork::build(config);
//   auto sim = net.make_network();           // slot-synchronous simulator
//   ...
//   net.adapt(new_assignment, new_q);        // macro-scale reconfiguration
//   sim.reconfigure(&net.schedule(), &net.router());
#pragma once

#include <memory>

#include "analysis/models.h"
#include "routing/sorn_routing.h"
#include "sim/network.h"
#include "topo/clique.h"
#include "topo/logical_topology.h"
#include "topo/schedule_builder.h"

namespace sorn {

struct SornConfig {
  NodeId nodes = 128;
  CliqueId cliques = 8;

  // Expected intra-clique locality ratio x; sets q = q*(x) = 2/(1-x)
  // unless an explicit q is given.
  double locality_x = 0.5;
  // Explicit oversubscription ratio; {0, 1} means "derive from
  // locality_x".
  Rational q{0, 1};
  // Denominator cap when rationalizing q*(x).
  std::int64_t max_q_denominator = 12;

  // Deployment parameters (Table 1 defaults, scaled-down node count).
  int uplinks = 1;
  Picoseconds slot_duration = 100 * 1000;       // 100 ns
  Picoseconds propagation_per_hop = 500 * 1000;  // 500 ns

  LbMode lb_mode = LbMode::kRandom;
  // Cap on the schedule period. AWGR-realizable slots are stored in the
  // compact shift form (O(1) bytes per slot), so a long period costs only
  // ~64 bytes per slot; the cap is a sanity guard against a q whose
  // denominator blows the period up into the millions. N=65536 with 256
  // cliques at q=5 needs 391,680 slots, which fits comfortably.
  Slot max_period = 1 << 22;

  // Non-empty (cliques x cliques, row-major): apportion inter-clique slots
  // to clique pairs in proportion to this demand aggregate
  // (ScheduleBuilder::sorn_weighted). Empty: uniform inter round-robin.
  std::vector<double> inter_clique_weights;
  ScheduleBuilder::WeightedOptions weighted_options;
};

class SornNetwork {
 public:
  // Build the schedule and router for the configuration; nodes must divide
  // into `cliques` equal cliques.
  static SornNetwork build(const SornConfig& config);

  // Same, but with an explicit (possibly non-contiguous) clique
  // assignment, e.g. one produced by the control plane's clusterer.
  static SornNetwork build_with_assignment(const SornConfig& config,
                                           CliqueAssignment assignment);

  const SornConfig& config() const { return config_; }
  const CliqueAssignment& cliques() const { return *cliques_; }
  const CircuitSchedule& schedule() const { return *schedule_; }
  const Router& router() const { return *router_; }
  Rational q() const { return q_; }

  // Make this network's router failure-aware: pass a simulator's
  // &sim.failure_view() (the sim must outlive this SornNetwork's routing
  // use) and load-balancing spray detours around failed nodes/circuits.
  // nullptr restores oblivious routing. Survives adapt().
  void set_failure_view(const FailureView* view) {
    failure_view_ = view;
    router_->set_failure_view(view);
  }

  // Rebuild the macro-configuration in place (new cliques and/or q, and
  // optionally new inter-clique weights). The old schedule/router are
  // destroyed; when a live SlottedNetwork points at them, call
  // sim.reconfigure(&schedule(), &router()) immediately after — or use
  // ReconfigManager, which keeps generations alive.
  void adapt(CliqueAssignment new_assignment, Rational new_q);
  void adapt(CliqueAssignment new_assignment, Rational new_q,
             std::vector<double> inter_clique_weights);

  // ---- Closed-form predictions (analysis/models.h) ----
  double predicted_throughput() const;
  double delta_m_intra() const;
  double delta_m_inter() const;
  double min_latency_intra_us() const;
  double min_latency_inter_us() const;

  // The virtual-edge graph the schedule emulates.
  LogicalTopology logical_topology() const {
    return LogicalTopology(*schedule_);
  }

  // A simulator bound to this network's schedule and router. The returned
  // object borrows them: keep this SornNetwork alive (and call
  // reconfigure() after adapt()).
  SlottedNetwork make_network(std::uint64_t seed = 42) const;

 private:
  SornNetwork(SornConfig config, CliqueAssignment assignment, Rational q);

  SornConfig config_;
  Rational q_;
  std::unique_ptr<CliqueAssignment> cliques_;
  std::unique_ptr<CircuitSchedule> schedule_;
  std::unique_ptr<SornRouter> router_;
  const FailureView* failure_view_ = nullptr;
};

}  // namespace sorn
