#include "core/hier_sorn.h"

#include "util/assert.h"

namespace sorn {
namespace {

ScheduleBuilder::HierShares resolve_shares(const HierSornConfig& config) {
  if (config.shares.intra > 0 || config.shares.inter > 0 ||
      config.shares.global > 0) {
    return config.shares;
  }
  const auto approx = analysis::hier_optimal_shares(
      config.pod_locality_x1, config.cluster_locality_x2, config.share_scale);
  return {approx.intra, approx.inter, approx.global};
}

}  // namespace

HierSornNetwork::HierSornNetwork(HierSornConfig config,
                                 ScheduleBuilder::HierShares shares)
    : config_(config), shares_(shares) {
  hierarchy_ = std::make_unique<Hierarchy>(Hierarchy::regular(
      config_.nodes, config_.clusters, config_.pods_per_cluster));
  schedule_ = std::make_unique<CircuitSchedule>(
      ScheduleBuilder::sorn_hierarchical(*hierarchy_, shares_,
                                         config_.max_period));
  router_ = std::make_unique<HierSornRouter>(schedule_.get(),
                                             hierarchy_.get(),
                                             config_.lb_mode);
}

HierSornNetwork HierSornNetwork::build(const HierSornConfig& config) {
  return HierSornNetwork(config, resolve_shares(config));
}

double HierSornNetwork::predicted_throughput() const {
  return analysis::hier_throughput(config_.pod_locality_x1,
                                   config_.cluster_locality_x2);
}

double HierSornNetwork::delta_m_pod() const {
  return analysis::hier_delta_m_pod(
      hierarchy_->pod_size(), {shares_.intra, shares_.inter, shares_.global});
}

double HierSornNetwork::delta_m_cluster() const {
  return analysis::hier_delta_m_cluster(
      hierarchy_->pod_size(), hierarchy_->pods_per_cluster(),
      {shares_.intra, shares_.inter, shares_.global});
}

double HierSornNetwork::delta_m_global() const {
  return analysis::hier_delta_m_global(
      hierarchy_->pod_size(), hierarchy_->pods_per_cluster(),
      hierarchy_->cluster_count(),
      {shares_.intra, shares_.inter, shares_.global});
}

SlottedNetwork HierSornNetwork::make_network(std::uint64_t seed) const {
  NetworkConfig nc;
  nc.lanes = config_.uplinks;
  nc.slot_duration = config_.slot_duration;
  nc.propagation_per_hop = config_.propagation_per_hop;
  nc.seed = seed;
  return SlottedNetwork(schedule_.get(), router_.get(), nc);
}

}  // namespace sorn
