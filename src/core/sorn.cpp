#include "core/sorn.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {
namespace {

Rational resolve_q(const SornConfig& config) {
  if (config.q.num > 0) {  // explicit q
    SORN_ASSERT(config.q.value() >= 1.0, "explicit q must be >= 1");
    return config.q;
  }
  const double q_star = analysis::sorn_optimal_q(config.locality_x, 1e6);
  return Rational::approximate(std::max(1.0, q_star),
                               config.max_q_denominator);
}

}  // namespace

SornNetwork::SornNetwork(SornConfig config, CliqueAssignment assignment,
                         Rational q)
    : config_(std::move(config)), q_(q) {
  cliques_ = std::make_unique<CliqueAssignment>(std::move(assignment));
  schedule_ = std::make_unique<CircuitSchedule>(
      config_.inter_clique_weights.empty()
          ? ScheduleBuilder::sorn(*cliques_, q_, config_.max_period)
          : ScheduleBuilder::sorn_weighted(
                *cliques_, q_, config_.inter_clique_weights,
                config_.weighted_options, config_.max_period));
  router_ = std::make_unique<SornRouter>(schedule_.get(), cliques_.get(),
                                         config_.lb_mode);
}

SornNetwork SornNetwork::build(const SornConfig& config) {
  SORN_ASSERT(config.cliques >= 1 && config.nodes % config.cliques == 0,
              "nodes must divide into equal cliques");
  return build_with_assignment(
      config, CliqueAssignment::contiguous(config.nodes, config.cliques));
}

SornNetwork SornNetwork::build_with_assignment(const SornConfig& config,
                                               CliqueAssignment assignment) {
  SORN_ASSERT(assignment.node_count() == config.nodes,
              "assignment does not match the configured node count");
  return SornNetwork(config, std::move(assignment), resolve_q(config));
}

void SornNetwork::adapt(CliqueAssignment new_assignment, Rational new_q) {
  adapt(std::move(new_assignment), new_q, {});
}

void SornNetwork::adapt(CliqueAssignment new_assignment, Rational new_q,
                        std::vector<double> inter_clique_weights) {
  SORN_ASSERT(new_assignment.node_count() == config_.nodes,
              "adaptation must preserve the node count");
  q_ = new_q;
  config_.inter_clique_weights = std::move(inter_clique_weights);
  cliques_ = std::make_unique<CliqueAssignment>(std::move(new_assignment));
  schedule_ = std::make_unique<CircuitSchedule>(
      config_.inter_clique_weights.empty()
          ? ScheduleBuilder::sorn(*cliques_, q_, config_.max_period)
          : ScheduleBuilder::sorn_weighted(
                *cliques_, q_, config_.inter_clique_weights,
                config_.weighted_options, config_.max_period));
  router_ = std::make_unique<SornRouter>(schedule_.get(), cliques_.get(),
                                         config_.lb_mode);
  router_->set_failure_view(failure_view_);
  config_.cliques = cliques_->clique_count();
}

double SornNetwork::predicted_throughput() const {
  return analysis::sorn_throughput_at_q(config_.locality_x, q_.value());
}

double SornNetwork::delta_m_intra() const {
  return analysis::sorn_delta_m_intra(config_.nodes, cliques_->clique_count(),
                                      q_.value());
}

double SornNetwork::delta_m_inter() const {
  return analysis::sorn_delta_m_inter_table(
      config_.nodes, cliques_->clique_count(), q_.value());
}

double SornNetwork::min_latency_intra_us() const {
  return analysis::min_latency_us(delta_m_intra(), config_.uplinks,
                                  to_ns(config_.slot_duration), 2,
                                  to_ns(config_.propagation_per_hop));
}

double SornNetwork::min_latency_inter_us() const {
  return analysis::min_latency_us(delta_m_inter(), config_.uplinks,
                                  to_ns(config_.slot_duration), 3,
                                  to_ns(config_.propagation_per_hop));
}

SlottedNetwork SornNetwork::make_network(std::uint64_t seed) const {
  NetworkConfig nc;
  nc.lanes = config_.uplinks;
  nc.slot_duration = config_.slot_duration;
  nc.propagation_per_hop = config_.propagation_per_hop;
  nc.seed = seed;
  return SlottedNetwork(schedule_.get(), router_.get(), nc);
}

}  // namespace sorn
