// Facade for two-level hierarchical SORN networks (paper Sec. 6
// extension), mirroring SornNetwork for the flat design.
#pragma once

#include <memory>

#include "analysis/models.h"
#include "routing/hier_routing.h"
#include "sim/network.h"
#include "topo/schedule_builder.h"

namespace sorn {

struct HierSornConfig {
  NodeId nodes = 64;
  CliqueId clusters = 4;
  CliqueId pods_per_cluster = 4;

  // Expected locality split; derives optimal slot shares
  // intra : inter : global = 2 : (x2 + x3) : x3 unless explicit shares
  // are given.
  double pod_locality_x1 = 0.5;
  double cluster_locality_x2 = 0.3;
  // {0,0,0} means "derive from the locality split".
  ScheduleBuilder::HierShares shares{0, 0, 0};
  int share_scale = 12;

  int uplinks = 1;
  Picoseconds slot_duration = 100 * 1000;
  Picoseconds propagation_per_hop = 500 * 1000;
  LbMode lb_mode = LbMode::kRandom;
  Slot max_period = 1 << 18;
};

class HierSornNetwork {
 public:
  static HierSornNetwork build(const HierSornConfig& config);

  const HierSornConfig& config() const { return config_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const CircuitSchedule& schedule() const { return *schedule_; }
  const Router& router() const { return *router_; }
  ScheduleBuilder::HierShares shares() const { return shares_; }

  // Mirror of SornNetwork::set_failure_view: make the hierarchical router
  // spray around the given live failure state (nullptr restores oblivious
  // routing).
  void set_failure_view(const FailureView* view) {
    router_->set_failure_view(view);
  }

  // Closed-form predictions.
  double predicted_throughput() const;
  double delta_m_pod() const;
  double delta_m_cluster() const;
  double delta_m_global() const;

  SlottedNetwork make_network(std::uint64_t seed = 42) const;

 private:
  HierSornNetwork(HierSornConfig config, ScheduleBuilder::HierShares shares);

  HierSornConfig config_;
  ScheduleBuilder::HierShares shares_;
  std::unique_ptr<Hierarchy> hierarchy_;
  std::unique_ptr<CircuitSchedule> schedule_;
  std::unique_ptr<HierSornRouter> router_;
};

}  // namespace sorn
