// ProceduralDemand: closed-form demand backend with O(N) state.
//
// The analyzable pattern families (uniform, locality mix, clique ring,
// hierarchical locality mix) are block-structured over the canonical
// contiguous equal-block layouts: every row is a short list of
// constant-value column runs, and all rows in the same block share the
// SAME diagonal-less value sequence (removing one element from a constant
// run yields the same list regardless of where the diagonal sits). That
// makes every dense fold replicable from per-class state:
//
//   row/col sums    one O(N) fold per row class / column class,
//   normalization   raw folds -> max node load -> factor, each stored
//                   value = raw * factor exactly as scale() computes it,
//   sample_dst      a lazily built per-class prefix over the class's
//                   diagonal-less sequence (valid for every row of the
//                   class), plus an ordinal -> column mapping that skips
//                   the row's own diagonal,
//   sample_pair     a lazily built row-end carry chain (N doubles): the
//                   dense global CDF evaluated at each row boundary; a
//                   draw binary-searches the row, then re-simulates that
//                   row's fold to find the exact increase point.
//
// Everything is bit-identical to the dense generators because the folds
// visit the same nonzero values in the same order and exact 0.0 entries
// are no-ops. Construction is O(classes * N); queries materialize no N^2
// state (the pair chain is O(N), class prefixes O(classes * N), both
// lazy).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "topo/clique.h"
#include "topo/hierarchy.h"
#include "traffic/demand_model.h"

namespace sorn {

class ProceduralDemand : public DemandModel {
 public:
  // The block layouts the procedural forms can represent: contiguous
  // equal-sized cliques (CliqueAssignment::contiguous_equal_blocks).
  static bool supports(const CliqueAssignment& cliques);

  // Counterparts of the patterns.h generators, bit-identical to
  // generating dense and normalizing. locality_mix/clique_ring require
  // supports(cliques); clique_ring additionally nc >= 3 (as dense).
  static std::unique_ptr<ProceduralDemand> uniform(NodeId n);
  static std::unique_ptr<ProceduralDemand> locality_mix(
      const CliqueAssignment& cliques, double x);
  static std::unique_ptr<ProceduralDemand> clique_ring(
      const CliqueAssignment& cliques, double x, double heavy_share);
  static std::unique_ptr<ProceduralDemand> hier_locality_mix(
      const Hierarchy& hierarchy, double x1, double x2);

  NodeId node_count() const override { return n_; }
  double at(NodeId src, NodeId dst) const override;
  void for_each_nonzero(const NonzeroVisitor& visit) const override;

  double total() const override;
  double row_sum(NodeId src) const override;
  double col_sum(NodeId dst) const override;
  double max_node_load() const override;

  std::pair<NodeId, NodeId> sample_pair(Rng& rng) const override;
  NodeId sample_dst(NodeId src, Rng& rng) const override;

  std::unique_ptr<DemandModel> clone() const override;
  std::size_t memory_bytes() const override;
  DemandBackend backend() const override {
    return DemandBackend::kProcedural;
  }

 private:
  // A constant-value span; value is the post-normalization rate and is
  // never exactly 0 (zero-valued spans are simply not stored — bit-exact
  // no-ops in every dense fold).
  struct Run {
    NodeId begin = 0;
    NodeId end = 0;      // exclusive
    double value = 0.0;  // scaled; `raw` only during construction
  };

  struct ClassSpec {
    std::vector<Run> row_runs;  // column spans, ascending, disjoint
    std::vector<Run> col_runs;  // row spans, ascending, disjoint
    // Index of the run containing the class's diagonal column/row, or -1
    // when the diagonal falls in a zero span. Identical for every member
    // of the class (block layouts put the diagonal in the own-block span).
    int row_diag_run = -1;
    int col_diag_run = -1;
    double row_sum = 0.0;  // scaled diagonal-less fold
    double col_sum = 0.0;
    std::size_t row_seq_len = 0;  // nonzeros per row
    // Lazy per-ordinal prefix of the diagonal-less row sequence (the
    // dense per-row CDF at its increase points); shared by all rows of
    // the class.
    mutable std::vector<double> row_prefix;
  };

  ProceduralDemand(NodeId n, NodeId block_size,
                   std::vector<ClassSpec> classes);

  std::size_t class_of(NodeId node) const {
    return static_cast<std::size_t>(node / block_size_);
  }

  // Fold a class sequence (count per run shortened by one for diag_run),
  // reading Run::value.
  static double fold_runs(const std::vector<Run>& runs, int diag_run);

  // Normalize raw run values in place across all classes, replicating
  // TrafficMatrix::normalize_node_load(1.0), then fill the scaled
  // per-class folds. Called once by every factory.
  void normalize_and_finalize();

  void ensure_pair_chain() const;
  void ensure_row_prefix(const ClassSpec& spec) const;

  NodeId n_ = 1;
  NodeId block_size_ = 1;
  std::vector<ClassSpec> classes_;
  // Lazy sample_pair support: the dense global CDF at each row's end
  // (carry chain across rows), N doubles.
  mutable std::vector<double> row_end_cdf_;
};

}  // namespace sorn
