#include "traffic/demand_model.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

const char* demand_backend_name(DemandBackend backend) {
  switch (backend) {
    case DemandBackend::kDense:
      return "dense";
    case DemandBackend::kSparse:
      return "sparse";
    case DemandBackend::kProcedural:
      return "procedural";
  }
  return "dense";
}

bool parse_demand_backend(std::string_view name, DemandBackend* out) {
  if (name == "dense") {
    *out = DemandBackend::kDense;
  } else if (name == "sparse") {
    *out = DemandBackend::kSparse;
  } else if (name == "procedural") {
    *out = DemandBackend::kProcedural;
  } else {
    return false;
  }
  return true;
}

void DemandModel::for_each_nonzero(const NonzeroVisitor& visit) const {
  const NodeId n = node_count();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      const double d = at(i, j);
      if (d != 0.0) visit(i, j, d);
    }
  }
}

double DemandModel::total() const {
  // Row-major fold over nonzeros == the dense fold over all N^2 entries.
  double t = 0.0;
  for_each_nonzero([&t](NodeId, NodeId, double d) { t += d; });
  return t;
}

double DemandModel::row_sum(NodeId src) const {
  const NodeId n = node_count();
  double t = 0.0;
  for (NodeId j = 0; j < n; ++j) t += at(src, j);
  return t;
}

double DemandModel::col_sum(NodeId dst) const {
  const NodeId n = node_count();
  double t = 0.0;
  for (NodeId i = 0; i < n; ++i) t += at(i, dst);
  return t;
}

double DemandModel::max_node_load() const {
  const NodeId n = node_count();
  double worst = 0.0;
  for (NodeId i = 0; i < n; ++i)
    worst = std::max({worst, row_sum(i), col_sum(i)});
  return worst;
}

double DemandModel::locality_ratio(const CliqueAssignment& cliques) const {
  SORN_ASSERT(cliques.node_count() == node_count(),
              "assignment size mismatch");
  double intra = 0.0;
  double all = 0.0;
  for_each_nonzero([&](NodeId i, NodeId j, double d) {
    all += d;
    if (cliques.same_clique(i, j)) intra += d;
  });
  return all > 0.0 ? intra / all : 0.0;
}

std::vector<double> DemandModel::aggregate(
    const CliqueAssignment& cliques) const {
  SORN_ASSERT(cliques.node_count() == node_count(),
              "assignment size mismatch");
  const auto nc = static_cast<std::size_t>(cliques.clique_count());
  std::vector<double> agg(nc * nc, 0.0);
  for_each_nonzero([&](NodeId i, NodeId j, double d) {
    agg[static_cast<std::size_t>(cliques.clique_of(i)) * nc +
        static_cast<std::size_t>(cliques.clique_of(j))] += d;
  });
  return agg;
}

}  // namespace sorn
