// Synthetic production-style trace generator.
//
// Substitute for the Facebook datacenter trace of [23] (see DESIGN.md):
// machines have service roles (web, cache, hadoop, ...) grouped by cluster,
// role-pair affinities define a *stable macro* traffic structure, and a
// bursty multiplicative noise term makes individual node pairs
// unpredictable — exactly the regime the paper argues for: macro patterns
// predictable, micro patterns not.
#pragma once

#include <string>
#include <vector>

#include "topo/clique.h"
#include "traffic/traffic_matrix.h"
#include "util/rng.h"

namespace sorn {

enum class ServiceRole : int {
  kWeb = 0,
  kCache = 1,
  kHadoop = 2,
  kStorage = 3,
};
constexpr int kServiceRoleCount = 4;

const char* service_role_name(ServiceRole role);

// Affinity of traffic from one role to another, per Roy et al.'s
// qualitative description: web talks mostly to cache, hadoop is
// rack/cluster-local, storage serves everyone moderately.
double role_affinity(ServiceRole from, ServiceRole to);

// Diurnal activity of a role at time-of-day `phase` in [0, 1) (0 =
// midnight). User-facing services (web, cache) peak during the day;
// batch (hadoop) fills the night; storage is flat. Paper Sec. 6 lists
// diurnal utilization as another exploitable structural pattern.
double role_diurnal_activity(ServiceRole role, double phase);

class SyntheticTrace {
 public:
  struct Config {
    NodeId nodes = 128;
    // One role per node group of `group_size` consecutive nodes.
    NodeId group_size = 16;
    // Burst noise: per-pair demand is multiplied by a lognormal factor
    // with this sigma each epoch. 0 disables micro noise.
    double burst_sigma = 0.6;
    // Extra weight for same-group pairs (spatial co-location of a
    // service's machines).
    double colocation_boost = 4.0;
    std::uint64_t seed = 1;
  };

  explicit SyntheticTrace(Config config);

  NodeId node_count() const { return config_.nodes; }
  NodeId group_count() const { return config_.nodes / config_.group_size; }
  ServiceRole role_of_group(NodeId group) const {
    return roles_[static_cast<std::size_t>(group)];
  }

  // Time of day in [0, 1) applied to macro_matrix()/epoch_matrix() via
  // per-role diurnal activity. Default 0.5 (midday-equivalent mix).
  void set_phase(double phase01);
  double phase() const { return phase_; }

  // The stable macro matrix: role affinities + co-location + diurnal
  // activity at the current phase, no burst noise. Repeated calls return
  // the same matrix.
  TrafficMatrix macro_matrix() const;

  // One epoch's observed matrix: macro matrix with fresh burst noise.
  TrafficMatrix epoch_matrix();

  // Re-draw group roles (models a workload-mix shift: which services are
  // popular changes, machine placement does not).
  void shuffle_roles();

  // Re-place nodes across groups (models job migration / re-scheduling:
  // which machines are co-located changes). This is the shift that
  // invalidates an existing clique assignment.
  void shuffle_placement();

  // Group of an individual node under the current placement.
  NodeId group_of_node(NodeId node) const {
    return group_of_node_[static_cast<std::size_t>(node)];
  }

  // Grouping of nodes implied by the trace (the "ground truth" cliques).
  CliqueAssignment ground_truth_cliques() const;

 private:
  Config config_;
  std::vector<ServiceRole> roles_;
  std::vector<NodeId> group_of_node_;
  double phase_ = 0.5;
  Rng rng_;
};

}  // namespace sorn
