#include "traffic/trace.h"

#include <cmath>

#include "util/assert.h"

namespace sorn {

const char* service_role_name(ServiceRole role) {
  switch (role) {
    case ServiceRole::kWeb:
      return "web";
    case ServiceRole::kCache:
      return "cache";
    case ServiceRole::kHadoop:
      return "hadoop";
    case ServiceRole::kStorage:
      return "storage";
  }
  return "unknown";
}

double role_affinity(ServiceRole from, ServiceRole to) {
  // Rows: from; columns: to. Qualitative shape from Roy et al. [23]:
  // web <-> cache dominates, hadoop is self-affine (cluster-local
  // shuffles), storage exchanges moderately with everyone.
  static constexpr double kAffinity[kServiceRoleCount][kServiceRoleCount] = {
      //            web   cache hadoop storage
      /* web    */ {0.2, 1.0, 0.05, 0.3},
      /* cache  */ {0.8, 0.3, 0.05, 0.4},
      /* hadoop */ {0.05, 0.05, 1.0, 0.5},
      /* storage*/ {0.3, 0.4, 0.5, 0.2},
  };
  return kAffinity[static_cast<int>(from)][static_cast<int>(to)];
}

double role_diurnal_activity(ServiceRole role, double phase) {
  SORN_ASSERT(phase >= 0.0 && phase < 1.0, "phase must be in [0,1)");
  // Day factor peaks at phase 0.5 (midday), range [0, 1].
  const double day =
      0.5 - 0.5 * std::cos(2.0 * 3.14159265358979323846 * phase);
  switch (role) {
    case ServiceRole::kWeb:
      return 0.4 + 0.8 * day;
    case ServiceRole::kCache:
      return 0.5 + 0.7 * day;
    case ServiceRole::kHadoop:
      return 1.2 - 0.8 * day;  // batch runs at night
    case ServiceRole::kStorage:
      return 1.0;
  }
  return 1.0;
}

void SyntheticTrace::set_phase(double phase01) {
  SORN_ASSERT(phase01 >= 0.0 && phase01 < 1.0, "phase must be in [0,1)");
  phase_ = phase01;
}

SyntheticTrace::SyntheticTrace(Config config)
    : config_(config), rng_(config.seed) {
  SORN_ASSERT(config_.nodes > 0 && config_.group_size > 0,
              "trace needs positive node and group sizes");
  SORN_ASSERT(config_.nodes % config_.group_size == 0,
              "nodes must divide into equal groups");
  const NodeId groups = group_count();
  roles_.resize(static_cast<std::size_t>(groups));
  for (NodeId g = 0; g < groups; ++g)
    roles_[static_cast<std::size_t>(g)] =
        static_cast<ServiceRole>(g % kServiceRoleCount);
  group_of_node_.resize(static_cast<std::size_t>(config_.nodes));
  for (NodeId i = 0; i < config_.nodes; ++i)
    group_of_node_[static_cast<std::size_t>(i)] = i / config_.group_size;
}

TrafficMatrix SyntheticTrace::macro_matrix() const {
  const NodeId n = config_.nodes;
  TrafficMatrix tm(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId gi = group_of_node(i);
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const NodeId gj = group_of_node(j);
      double d = role_affinity(role_of_group(gi), role_of_group(gj)) *
                 role_diurnal_activity(role_of_group(gi), phase_) *
                 role_diurnal_activity(role_of_group(gj), phase_);
      if (gi == gj) d *= config_.colocation_boost;
      tm.set(i, j, d);
    }
  }
  tm.normalize_node_load();
  return tm;
}

TrafficMatrix SyntheticTrace::epoch_matrix() {
  TrafficMatrix tm = macro_matrix();
  if (config_.burst_sigma > 0.0) {
    const NodeId n = config_.nodes;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        if (i == j) continue;
        const double noise =
            std::exp(config_.burst_sigma * rng_.next_normal() -
                     0.5 * config_.burst_sigma * config_.burst_sigma);
        tm.set(i, j, tm.at(i, j) * noise);
      }
    }
    tm.normalize_node_load();
  }
  return tm;
}

void SyntheticTrace::shuffle_roles() { rng_.shuffle(roles_); }

void SyntheticTrace::shuffle_placement() { rng_.shuffle(group_of_node_); }

CliqueAssignment SyntheticTrace::ground_truth_cliques() const {
  std::vector<CliqueId> map(group_of_node_.begin(), group_of_node_.end());
  return CliqueAssignment(std::move(map));
}

}  // namespace sorn
