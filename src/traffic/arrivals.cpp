#include "traffic/arrivals.h"

#include <cmath>

#include "util/assert.h"

namespace sorn {

FlowArrivals::FlowArrivals(const DemandModel* tm, const FlowSizeDist* sizes,
                           double node_bandwidth_bps, double load, Rng rng)
    : tm_(tm), sizes_(sizes), rng_(rng) {
  SORN_ASSERT(tm_ != nullptr && sizes_ != nullptr, "null workload inputs");
  SORN_ASSERT(load > 0.0, "load must be positive");
  SORN_ASSERT(node_bandwidth_bps > 0.0, "bandwidth must be positive");
  // Target aggregate byte rate: load * N * b / 8 bytes per second. Flow
  // rate lambda = byte_rate / mean_flow_size; mean gap = 1 / lambda.
  const double byte_rate = load * static_cast<double>(tm_->node_count()) *
                           node_bandwidth_bps / 8.0;
  const double lambda = byte_rate / sizes_->mean_bytes();
  const double gap_seconds = 1.0 / lambda;
  mean_gap_ = static_cast<Picoseconds>(std::llround(gap_seconds * 1e12));
  SORN_ASSERT(mean_gap_ > 0, "arrival rate too high for picosecond clock");
}

FlowArrival FlowArrivals::next() {
  now_ += static_cast<Picoseconds>(std::llround(
      rng_.next_exponential(static_cast<double>(mean_gap_))));
  const auto [src, dst] = tm_->sample_pair(rng_);
  return FlowArrival{now_, src, dst, sizes_->sample(rng_)};
}

}  // namespace sorn
