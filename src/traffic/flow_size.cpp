#include "traffic/flow_size.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace sorn {

FlowSizeDist::FlowSizeDist(std::string name,
                           std::vector<std::pair<double, double>> cdf_points)
    : name_(std::move(name)), points_(std::move(cdf_points)) {
  SORN_ASSERT(points_.size() >= 2, "CDF needs at least two points");
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    SORN_ASSERT(points_[i].first < points_[i + 1].first,
                "CDF sizes must be strictly increasing");
    SORN_ASSERT(points_[i].second <= points_[i + 1].second,
                "CDF probabilities must be nondecreasing");
  }
  SORN_ASSERT(points_.front().second >= 0.0 &&
                  std::abs(points_.back().second - 1.0) < 1e-9,
              "CDF must end at probability 1");
}

FlowSizeDist FlowSizeDist::fixed(std::uint64_t bytes) {
  const auto b = static_cast<double>(bytes);
  return FlowSizeDist("fixed", {{b - 0.5, 0.0}, {b, 1.0}});
}

// Piecewise approximations of pFabric Fig. 4 (sizes in bytes). The web
// search curve concentrates flows between 10 KB and 30 MB; the data mining
// curve has ~80% of flows under 10 KB with a tail reaching 1 GB.
FlowSizeDist FlowSizeDist::pfabric_web_search() {
  return FlowSizeDist("pfabric-web-search",
                      {{6e3, 0.0},
                       {10e3, 0.15},
                       {13e3, 0.2},
                       {19e3, 0.3},
                       {33e3, 0.4},
                       {53e3, 0.53},
                       {133e3, 0.6},
                       {667e3, 0.7},
                       {1.333e6, 0.8},
                       {4e6, 0.9},
                       {8e6, 0.97},
                       {30e6, 1.0}});
}

FlowSizeDist FlowSizeDist::pfabric_data_mining() {
  return FlowSizeDist("pfabric-data-mining",
                      {{100.0, 0.0},
                       {180.0, 0.1},
                       {250.0, 0.2},
                       {560.0, 0.3},
                       {900.0, 0.4},
                       {1.1e3, 0.5},
                       {1.87e3, 0.6},
                       {3.16e3, 0.7},
                       {10e3, 0.8},
                       {400e3, 0.9},
                       {3.16e6, 0.95},
                       {100e6, 0.98},
                       {1e9, 1.0}});
}

std::uint64_t FlowSizeDist::sample(Rng& rng) const {
  const double u = rng.next_double();
  // Find the segment [p_i, p_{i+1}] containing u and interpolate sizes
  // log-linearly (flow sizes span many decades).
  auto it = std::lower_bound(
      points_.begin(), points_.end(), u,
      [](const std::pair<double, double>& p, double v) { return p.second < v; });
  if (it == points_.begin()) {
    return static_cast<std::uint64_t>(std::max(1.0, it->first));
  }
  if (it == points_.end()) --it;
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.second - lo.second;
  const double frac = span > 0.0 ? (u - lo.second) / span : 0.0;
  const double log_size =
      std::log(lo.first) + frac * (std::log(hi.first) - std::log(lo.first));
  return static_cast<std::uint64_t>(
      std::max<long long>(1, std::llround(std::exp(log_size))));
}

double FlowSizeDist::mean_bytes() const {
  // Integrate size over the CDF segments using the log-linear
  // interpolation's expected value per segment, approximated by the
  // geometric midpoint (adequate for workload calibration).
  double mean = 0.0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const double p = points_[i + 1].second - points_[i].second;
    const double mid =
        std::exp(0.5 * (std::log(points_[i].first) +
                        std::log(points_[i + 1].first)));
    mean += p * mid;
  }
  mean += points_.front().second * points_.front().first;
  return mean;
}

double FlowSizeDist::cdf(double bytes) const {
  if (bytes <= points_.front().first) return points_.front().second;
  if (bytes >= points_.back().first) return 1.0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    if (bytes <= points_[i + 1].first) {
      const double flo = std::log(points_[i].first);
      const double fhi = std::log(points_[i + 1].first);
      const double frac = (std::log(bytes) - flo) / (fhi - flo);
      return points_[i].second +
             frac * (points_[i + 1].second - points_[i].second);
    }
  }
  return 1.0;
}

}  // namespace sorn
