// SparseDemand: CSR demand backend with O(nnz) statistics and sampling.
//
// Stores only the nonzero entries, row-major with columns ascending, plus
// two prefix-sum arrays over the nonzeros:
//
//   pair_cdf_  one continuous fold across the whole matrix (the dense
//              sample_pair CDF restricted to its increase points), and
//   row_cdf_   per-row folds restarting at zero (the dense per-row
//              sample_dst CDFs restricted to their increase points).
//
// Byte-identity with the dense backend falls out of fold-order
// preservation: every statistic folds the same nonzero values in the same
// order the dense loops visit them, and skipping the exact-0.0 entries is
// a bit-exact no-op. Sampling identity: std::upper_bound on a dense CDF
// can only land on an index where the CDF strictly increased — a nonzero
// entry — except the u >= total clamp, which both backends map to the last
// linear index (n-1, n-1) / column n-1 explicitly.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "traffic/demand_model.h"

namespace sorn {

class SparseDemand : public DemandModel {
 public:
  // Row-major construction sink for the pattern generators: set() rows in
  // nondecreasing row order (any column order within a row; a dense
  // N-sized row buffer absorbs the order), then build(). With normalize
  // true the build replicates TrafficMatrix::normalize_node_load(1.0)
  // bit-for-bit (raw folds including zeros, factor = 1/max_node_load,
  // each stored value = raw * factor).
  class Builder {
   public:
    explicit Builder(NodeId n);
    void set(NodeId src, NodeId dst, double rate);
    std::unique_ptr<SparseDemand> build(bool normalize_node_load);

   private:
    void flush_row();

    NodeId n_;
    NodeId current_row_ = 0;
    std::vector<double> row_buffer_;
    std::vector<NodeId> row_ptr_rows_;  // nonzeros-per-row, running
    std::vector<NodeId> cols_;
    std::vector<double> vals_;
  };

  // Compact any model into CSR by visiting its nonzeros (row-major).
  // With normalize true the copy is normalized to unit peak node load,
  // replicating the dense observe() path of the estimator.
  static std::unique_ptr<SparseDemand> from_model(const DemandModel& model,
                                                  bool normalize = false);

  // Build from row-major sorted, duplicate-free COO triplets (rows
  // ascending, columns ascending within a row, no diagonal entries,
  // nonnegative values). Used by the estimator's sparse-delta merge.
  SparseDemand(NodeId n, std::vector<NodeId> coo_row,
               std::vector<NodeId> coo_col, std::vector<double> coo_val);

  NodeId node_count() const override { return n_; }
  double at(NodeId src, NodeId dst) const override;
  void for_each_nonzero(const NonzeroVisitor& visit) const override;

  double total() const override { return total_; }
  double row_sum(NodeId src) const override {
    return row_sums_[static_cast<std::size_t>(src)];
  }
  double col_sum(NodeId dst) const override {
    return col_sums_[static_cast<std::size_t>(dst)];
  }
  double max_node_load() const override;

  std::pair<NodeId, NodeId> sample_pair(Rng& rng) const override;
  NodeId sample_dst(NodeId src, Rng& rng) const override;

  std::unique_ptr<DemandModel> clone() const override;
  std::size_t memory_bytes() const override;
  DemandBackend backend() const override { return DemandBackend::kSparse; }

  std::size_t nonzero_count() const { return vals_.size(); }

 private:
  SparseDemand(NodeId n) : n_(n) {}

  // Recompute row/col sums, the two CDFs and the total from row_ptr_,
  // cols_, vals_ (called once after construction).
  void finalize();

  NodeId n_ = 1;
  std::vector<std::size_t> row_ptr_;  // n_ + 1
  std::vector<NodeId> cols_;
  std::vector<double> vals_;
  std::vector<double> row_sums_;
  std::vector<double> col_sums_;
  std::vector<double> pair_cdf_;  // continuous fold, aligned with vals_
  std::vector<double> row_cdf_;   // per-row folds, aligned with vals_
  double total_ = 0.0;
};

}  // namespace sorn
