#include "traffic/patterns.h"

#include "traffic/procedural_demand.h"
#include "traffic/sparse_demand.h"
#include "util/assert.h"

namespace sorn {
namespace patterns {
namespace {

// The generator bodies, templated on the write sink (TrafficMatrix or
// SparseDemand::Builder) so the dense and sparse builds run the SAME loop
// in the same order — bit-identity between backends is then just the
// builders' normalization replication.

template <typename Sink>
void fill_uniform(NodeId n, Sink& sink) {
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = 0; j < n; ++j)
      if (i != j) sink.set(i, j, 1.0);
}

template <typename Sink>
void fill_locality_mix(const CliqueAssignment& cliques, double x,
                       Sink& sink) {
  SORN_ASSERT(x >= 0.0 && x <= 1.0, "locality ratio must be in [0,1]");
  const NodeId n = cliques.node_count();
  for (NodeId i = 0; i < n; ++i) {
    const CliqueId c = cliques.clique_of(i);
    const NodeId in_clique = cliques.clique_size(c) - 1;
    const NodeId out_clique = n - cliques.clique_size(c);
    // A singleton clique has no intra peers; all demand goes inter.
    const double intra_share = in_clique > 0 ? x : 0.0;
    const double inter_share = out_clique > 0 ? 1.0 - intra_share : 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      if (cliques.same_clique(i, j)) {
        sink.set(i, j, intra_share / static_cast<double>(in_clique));
      } else {
        sink.set(i, j, inter_share / static_cast<double>(out_clique));
      }
    }
  }
}

template <typename Sink>
void fill_clique_ring(const CliqueAssignment& cliques, double x,
                      double heavy_share, Sink& sink) {
  SORN_ASSERT(x >= 0.0 && x < 1.0, "locality must be in [0,1)");
  SORN_ASSERT(heavy_share >= 0.0 && heavy_share <= 1.0,
              "heavy share must be in [0,1]");
  SORN_ASSERT(cliques.equal_sized(), "clique_ring needs equal cliques");
  const NodeId n = cliques.node_count();
  const CliqueId nc = cliques.clique_count();
  SORN_ASSERT(nc >= 3, "clique_ring needs at least three cliques");
  const NodeId s = cliques.clique_size(0);
  for (NodeId i = 0; i < n; ++i) {
    const CliqueId c = cliques.clique_of(i);
    const CliqueId next = static_cast<CliqueId>((c + 1) % nc);
    // Intra share.
    if (s >= 2) {
      for (const NodeId j : cliques.members(c))
        if (j != i) sink.set(i, j, x / static_cast<double>(s - 1));
    }
    const double inter = s >= 2 ? 1.0 - x : 1.0;
    // Heavy share to the next clique.
    for (const NodeId j : cliques.members(next))
      sink.set(i, j, inter * heavy_share / static_cast<double>(s));
    // The rest spread over the remaining cliques.
    const double rest = inter * (1.0 - heavy_share);
    const double per_node =
        rest / static_cast<double>((nc - 2) * s);
    for (CliqueId other = 0; other < nc; ++other) {
      if (other == c || other == next) continue;
      for (const NodeId j : cliques.members(other)) sink.set(i, j, per_node);
    }
  }
}

template <typename Sink>
void fill_hier_locality_mix(const Hierarchy& h, double x1, double x2,
                            Sink& sink) {
  SORN_ASSERT(x1 >= 0.0 && x2 >= 0.0 && x1 + x2 <= 1.0 + 1e-12,
              "locality shares must be a sub-distribution");
  const NodeId n = h.node_count();
  const NodeId pod_peers = h.pod_size() - 1;
  const NodeId cluster_peers = h.cluster_size() - h.pod_size();
  const NodeId global_peers = n - h.cluster_size();
  for (NodeId i = 0; i < n; ++i) {
    const double pod_share = pod_peers > 0 ? x1 : 0.0;
    const double cluster_share = cluster_peers > 0 ? x2 : 0.0;
    double global_share = global_peers > 0 ? 1.0 - pod_share - cluster_share
                                           : 0.0;
    if (global_share < 0.0) global_share = 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      if (h.same_pod(i, j)) {
        sink.set(i, j, pod_share / static_cast<double>(pod_peers));
      } else if (h.same_cluster(i, j)) {
        sink.set(i, j, cluster_share / static_cast<double>(cluster_peers));
      } else {
        sink.set(i, j, global_share / static_cast<double>(global_peers));
      }
    }
  }
}

}  // namespace

TrafficMatrix uniform(NodeId n) {
  TrafficMatrix tm(n);
  fill_uniform(n, tm);
  tm.normalize_node_load();
  return tm;
}

TrafficMatrix locality_mix(const CliqueAssignment& cliques, double x) {
  TrafficMatrix tm(cliques.node_count());
  fill_locality_mix(cliques, x, tm);
  tm.normalize_node_load();
  return tm;
}

TrafficMatrix permutation(NodeId n, Rng& rng) {
  SORN_ASSERT(n >= 2, "permutation needs at least two nodes");
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  rng.shuffle(perm);
  // Repair fixed points so every node sends to a distinct other node.
  for (NodeId i = 0; i < n; ++i) {
    if (perm[static_cast<std::size_t>(i)] == i) {
      const auto j = static_cast<std::size_t>((i + 1) % n);
      std::swap(perm[static_cast<std::size_t>(i)], perm[j]);
    }
  }
  TrafficMatrix tm(n);
  for (NodeId i = 0; i < n; ++i)
    tm.set(i, perm[static_cast<std::size_t>(i)], 1.0);
  return tm;
}

TrafficMatrix hotspot(NodeId n, NodeId hot_count, double hot_factor,
                      Rng& rng) {
  SORN_ASSERT(hot_factor >= 1.0, "hot factor must be at least 1");
  TrafficMatrix tm = uniform(n);
  for (NodeId h = 0; h < hot_count; ++h) {
    const auto i = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    auto j = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    if (j == i) j = static_cast<NodeId>((j + 1) % n);
    tm.set(i, j, tm.at(i, j) * hot_factor);
  }
  tm.normalize_node_load();
  return tm;
}

TrafficMatrix gravity(const CliqueAssignment& cliques,
                      const std::vector<double>& clique_weight) {
  SORN_ASSERT(clique_weight.size() ==
                  static_cast<std::size_t>(cliques.clique_count()),
              "one weight per clique required");
  const NodeId n = cliques.node_count();
  TrafficMatrix tm(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const double w =
          clique_weight[static_cast<std::size_t>(cliques.clique_of(i))] *
          clique_weight[static_cast<std::size_t>(cliques.clique_of(j))];
      const double pairs =
          static_cast<double>(cliques.clique_size(cliques.clique_of(i))) *
          static_cast<double>(cliques.clique_size(cliques.clique_of(j)));
      tm.set(i, j, w / pairs);
    }
  }
  tm.normalize_node_load();
  return tm;
}

TrafficMatrix clique_ring(const CliqueAssignment& cliques, double x,
                          double heavy_share) {
  TrafficMatrix tm(cliques.node_count());
  fill_clique_ring(cliques, x, heavy_share, tm);
  tm.normalize_node_load();
  return tm;
}

TrafficMatrix hier_locality_mix(const Hierarchy& h, double x1, double x2) {
  TrafficMatrix tm(h.node_count());
  fill_hier_locality_mix(h, x1, x2, tm);
  tm.normalize_node_load();
  return tm;
}

std::unique_ptr<DemandModel> make_uniform(NodeId n, DemandBackend backend) {
  switch (backend) {
    case DemandBackend::kDense:
      return std::make_unique<TrafficMatrix>(uniform(n));
    case DemandBackend::kSparse: {
      SparseDemand::Builder builder(n);
      fill_uniform(n, builder);
      return builder.build(/*normalize_node_load=*/true);
    }
    case DemandBackend::kProcedural:
      return ProceduralDemand::uniform(n);
  }
  return nullptr;
}

std::unique_ptr<DemandModel> make_locality_mix(const CliqueAssignment& cliques,
                                               double x,
                                               DemandBackend backend) {
  if (backend == DemandBackend::kDense)
    return std::make_unique<TrafficMatrix>(locality_mix(cliques, x));
  if (backend == DemandBackend::kProcedural &&
      ProceduralDemand::supports(cliques))
    return ProceduralDemand::locality_mix(cliques, x);
  SparseDemand::Builder builder(cliques.node_count());
  fill_locality_mix(cliques, x, builder);
  return builder.build(/*normalize_node_load=*/true);
}

std::unique_ptr<DemandModel> make_clique_ring(const CliqueAssignment& cliques,
                                              double x, double heavy_share,
                                              DemandBackend backend) {
  if (backend == DemandBackend::kDense)
    return std::make_unique<TrafficMatrix>(
        clique_ring(cliques, x, heavy_share));
  if (backend == DemandBackend::kProcedural &&
      ProceduralDemand::supports(cliques))
    return ProceduralDemand::clique_ring(cliques, x, heavy_share);
  SparseDemand::Builder builder(cliques.node_count());
  fill_clique_ring(cliques, x, heavy_share, builder);
  return builder.build(/*normalize_node_load=*/true);
}

std::unique_ptr<DemandModel> make_hier_locality_mix(const Hierarchy& h,
                                                    double x1, double x2,
                                                    DemandBackend backend) {
  switch (backend) {
    case DemandBackend::kDense:
      return std::make_unique<TrafficMatrix>(hier_locality_mix(h, x1, x2));
    case DemandBackend::kSparse: {
      SparseDemand::Builder builder(h.node_count());
      fill_hier_locality_mix(h, x1, x2, builder);
      return builder.build(/*normalize_node_load=*/true);
    }
    case DemandBackend::kProcedural:
      return ProceduralDemand::hier_locality_mix(h, x1, x2);
  }
  return nullptr;
}

HierLocality hier_locality(const Hierarchy& h, const DemandModel& tm) {
  SORN_ASSERT(tm.node_count() == h.node_count(), "size mismatch");
  double pod = 0.0;
  double cluster = 0.0;
  double all = 0.0;
  for (NodeId i = 0; i < h.node_count(); ++i) {
    for (NodeId j = 0; j < h.node_count(); ++j) {
      const double d = tm.at(i, j);
      all += d;
      if (h.same_pod(i, j)) {
        pod += d;
      } else if (h.same_cluster(i, j)) {
        cluster += d;
      }
    }
  }
  HierLocality loc;
  if (all > 0.0) {
    loc.pod = pod / all;
    loc.cluster = cluster / all;
  }
  return loc;
}

}  // namespace patterns
}  // namespace sorn
