// Dense traffic matrices and their macro-scale aggregates.
//
// tm(i, j) is the demand rate from node i to node j, as a fraction of node
// bandwidth. The control plane never optimizes for the raw matrix (the
// paper argues that is unpredictable); it consumes the two macro statistics
// implemented here: the locality ratio x and the clique-aggregated matrix
// (paper Sec. 3).
//
// TrafficMatrix is the DENSE backend of the DemandModel interface
// (demand_model.h) and the only mutable one; consumers that merely read
// demand take a const DemandModel& so sparse/procedural backends can stand
// in byte-identically.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "topo/clique.h"
#include "traffic/demand_model.h"
#include "util/rng.h"
#include "util/types.h"

namespace sorn {

class TrafficMatrix : public DemandModel {
 public:
  explicit TrafficMatrix(NodeId n);

  NodeId node_count() const override { return n_; }

  double at(NodeId src, NodeId dst) const override {
    return demand_[index(src, dst)];
  }
  void set(NodeId src, NodeId dst, double rate);
  void add(NodeId src, NodeId dst, double rate);

  void for_each_nonzero(const NonzeroVisitor& visit) const override;

  double total() const override;
  double row_sum(NodeId src) const override;
  double col_sum(NodeId dst) const override;
  // Max over nodes of max(row_sum, col_sum): the load the busiest node
  // must carry; normalizing by it makes the matrix admissible at rate 1.
  double max_node_load() const override;

  // Scale all entries by the given factor.
  void scale(double factor);
  // Scale so that max_node_load() == target (no-op on an all-zero matrix).
  void normalize_node_load(double target = 1.0);

  // Fraction of total demand that stays within a clique (the paper's x).
  double locality_ratio(const CliqueAssignment& cliques) const override;

  // Clique-level aggregate: entry (a, b) sums demand from clique a to b.
  std::vector<double> aggregate(
      const CliqueAssignment& cliques) const override;

  // Draw a (src, dst) pair with probability proportional to demand.
  // Requires total() > 0.
  std::pair<NodeId, NodeId> sample_pair(Rng& rng) const override;

  // Draw a destination for src proportional to the row (the historical
  // per-row CDF of the saturation sources, now owned by the matrix).
  NodeId sample_dst(NodeId src, Rng& rng) const override;

  std::unique_ptr<DemandModel> clone() const override;
  std::size_t memory_bytes() const override;
  DemandBackend backend() const override { return DemandBackend::kDense; }

 private:
  std::size_t index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  NodeId n_;
  std::vector<double> demand_;
  // Cached prefix sums for sample_pair; rebuilt lazily after mutation.
  mutable std::vector<double> cdf_;
  mutable bool cdf_valid_ = false;
  // Cached per-row prefix sums (flattened N x N, row folds restarting at
  // zero) for sample_dst; rebuilt lazily after mutation.
  mutable std::vector<double> row_cdf_;
  mutable bool row_cdf_valid_ = false;
};

}  // namespace sorn
