// Dense traffic matrices and their macro-scale aggregates.
//
// tm(i, j) is the demand rate from node i to node j, as a fraction of node
// bandwidth. The control plane never optimizes for the raw matrix (the
// paper argues that is unpredictable); it consumes the two macro statistics
// implemented here: the locality ratio x and the clique-aggregated matrix
// (paper Sec. 3).
#pragma once

#include <cstddef>
#include <vector>

#include "topo/clique.h"
#include "util/rng.h"
#include "util/types.h"

namespace sorn {

class TrafficMatrix {
 public:
  explicit TrafficMatrix(NodeId n);

  NodeId node_count() const { return n_; }

  double at(NodeId src, NodeId dst) const { return demand_[index(src, dst)]; }
  void set(NodeId src, NodeId dst, double rate);
  void add(NodeId src, NodeId dst, double rate);

  double total() const;
  double row_sum(NodeId src) const;
  double col_sum(NodeId dst) const;
  // Max over nodes of max(row_sum, col_sum): the load the busiest node
  // must carry; normalizing by it makes the matrix admissible at rate 1.
  double max_node_load() const;

  // Scale all entries by the given factor.
  void scale(double factor);
  // Scale so that max_node_load() == target (no-op on an all-zero matrix).
  void normalize_node_load(double target = 1.0);

  // Fraction of total demand that stays within a clique (the paper's x).
  double locality_ratio(const CliqueAssignment& cliques) const;

  // Clique-level aggregate: entry (a, b) sums demand from clique a to b.
  std::vector<double> aggregate(const CliqueAssignment& cliques) const;

  // Draw a (src, dst) pair with probability proportional to demand.
  // Requires total() > 0.
  std::pair<NodeId, NodeId> sample_pair(Rng& rng) const;

 private:
  std::size_t index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  NodeId n_;
  std::vector<double> demand_;
  // Cached prefix sums for sample_pair; rebuilt lazily after mutation.
  mutable std::vector<double> cdf_;
  mutable bool cdf_valid_ = false;
};

}  // namespace sorn
