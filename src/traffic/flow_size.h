// Flow-size distributions.
//
// The paper's Fig. 2(f) simulation uses "real-world traffic [2]" — the
// pFabric workloads (Alizadeh et al., SIGCOMM'13). We reproduce the two
// published empirical CDFs (web search, from the DCTCP production cluster;
// data mining, from a large cluster running mining jobs) as piecewise
// log-linear interpolations of their Fig. 4 curves. Both are heavy-tailed:
// most flows are small while most bytes come from large flows, which is
// what stresses the load-balancing hop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace sorn {

class FlowSizeDist {
 public:
  // Empirical CDF given as (size_bytes, cumulative_probability) points.
  // Points must be strictly increasing in both coordinates, start with
  // probability >= 0 and end with probability 1.
  FlowSizeDist(std::string name,
               std::vector<std::pair<double, double>> cdf_points);

  // All flows the same size.
  static FlowSizeDist fixed(std::uint64_t bytes);

  // pFabric web-search workload (DCTCP cluster), mean ~1.6 MB.
  static FlowSizeDist pfabric_web_search();

  // pFabric data-mining workload, mean ~7.4 MB; >95% of bytes in flows
  // larger than 35 MB.
  static FlowSizeDist pfabric_data_mining();

  const std::string& name() const { return name_; }

  // Sample a flow size in bytes (>= 1).
  std::uint64_t sample(Rng& rng) const;

  // Analytic mean of the interpolated distribution, in bytes.
  double mean_bytes() const;

  // Value of the interpolated CDF at the given size.
  double cdf(double bytes) const;

  // Fraction of flows no larger than `bytes` — alias of cdf, kept for
  // readability at call sites reasoning about "short flow share".
  double short_flow_share(double bytes) const { return cdf(bytes); }

 private:
  std::string name_;
  std::vector<std::pair<double, double>> points_;  // (bytes, cum prob)
};

}  // namespace sorn
