// Generators for the traffic patterns the paper discusses (Sec. 3):
// uniform all-to-all, locality mixes with a target intra-clique ratio x,
// gravity models between cliques, permutations and hotspots.
//
// Two entry points per scenario pattern: the historical dense generators
// returning TrafficMatrix, and make_* factories that build the SAME demand
// (bit-identical entries and sample streams) directly in a chosen
// DemandModel backend — sparse generators write straight into CSR, and the
// procedural backend stores only the closed form, so neither ever
// materializes the N^2 array.
#pragma once

#include <memory>

#include "topo/clique.h"
#include "topo/hierarchy.h"
#include "traffic/demand_model.h"
#include "traffic/traffic_matrix.h"
#include "util/rng.h"

namespace sorn {
namespace patterns {

// Uniform all-to-all: every ordered pair gets equal demand; normalized so
// the busiest node sends/receives at rate 1.
TrafficMatrix uniform(NodeId n);

// Locality mix: fraction x of each node's demand is spread uniformly over
// its own clique, the remaining 1-x uniformly over all other cliques
// (paper Sec. 4's analysis workload). Cliques of size 1 put all demand
// inter-clique regardless of x.
TrafficMatrix locality_mix(const CliqueAssignment& cliques, double x);

// Random permutation: each node sends its full rate to one distinct node.
// The classic ORN worst case.
TrafficMatrix permutation(NodeId n, Rng& rng);

// Hotspot: uniform background plus `hot_count` node pairs elevated by
// `hot_factor`.
TrafficMatrix hotspot(NodeId n, NodeId hot_count, double hot_factor, Rng& rng);

// Gravity model over cliques: clique-to-clique demand proportional to
// weight[a] * weight[b]; spread uniformly over member pairs. Models the
// stable aggregated matrices reported for Jupiter (paper Sec. 3).
TrafficMatrix gravity(const CliqueAssignment& cliques,
                      const std::vector<double>& clique_weight);

// Clique ring: fraction x of each node's demand stays in its clique; of
// the inter share, `heavy_share` goes to the next clique (c+1 mod Nc) and
// the rest spreads uniformly over the remaining cliques. Node loads stay
// perfectly balanced while the clique-pair structure is strongly skewed —
// the regime where non-uniform inter-clique bandwidth (weighted
// schedules, paper Sec. 5) pays off. Requires equal cliques, Nc >= 3.
TrafficMatrix clique_ring(const CliqueAssignment& cliques, double x,
                          double heavy_share);

// Two-level locality mix: fraction x1 of each node's demand spread over
// its pod, x2 over the rest of its cluster, and 1 - x1 - x2 over other
// clusters (uniformly within each scope). The hierarchical analogue of
// locality_mix.
TrafficMatrix hier_locality_mix(const Hierarchy& hierarchy, double x1,
                                double x2);

// Backend factories for the scenario patterns. kProcedural needs the
// canonical contiguous equal-block layout (ProceduralDemand::supports);
// other assignments silently fall back to kSparse, which represents any
// pattern. The hierarchical mix is always procedural-representable
// (Hierarchy is regular by construction).
std::unique_ptr<DemandModel> make_uniform(NodeId n, DemandBackend backend);
std::unique_ptr<DemandModel> make_locality_mix(const CliqueAssignment& cliques,
                                               double x,
                                               DemandBackend backend);
std::unique_ptr<DemandModel> make_clique_ring(const CliqueAssignment& cliques,
                                              double x, double heavy_share,
                                              DemandBackend backend);
std::unique_ptr<DemandModel> make_hier_locality_mix(const Hierarchy& hierarchy,
                                                    double x1, double x2,
                                                    DemandBackend backend);

// Demand shares per hierarchy level of an arbitrary matrix.
HierLocality hier_locality(const Hierarchy& hierarchy, const DemandModel& tm);

}  // namespace patterns
}  // namespace sorn
