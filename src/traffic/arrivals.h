// Open-loop flow arrival processes.
//
// FlowArrivals turns a (traffic matrix, flow-size distribution, target
// load) triple into a Poisson stream of flows: inter-arrival times are
// exponential with rate chosen so the injected byte rate equals
// load * N * node_bandwidth, and (src, dst) pairs are drawn proportionally
// to the matrix.
#pragma once

#include <cstdint>
#include <limits>

#include "traffic/flow_size.h"
#include "traffic/demand_model.h"
#include "util/time.h"

namespace sorn {

struct FlowArrival {
  Picoseconds time = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t bytes = 0;
};

// A finite stream signals exhaustion with an arrival stamped at this time
// (past any horizon); infinite streams (Poisson) never emit it.
constexpr Picoseconds kNoMoreArrivals =
    std::numeric_limits<Picoseconds>::max();

// Abstract flow-arrival sequence the WorkloadDriver consumes. Arrival
// times must be nondecreasing; implementations own their RNG so the
// driver stays deterministic regardless of how far it reads ahead.
class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;
  virtual FlowArrival next() = 0;
};

class FlowArrivals : public ArrivalStream {
 public:
  // node_bandwidth_bps: per-node aggregate bandwidth b in bits/second.
  // load in (0, +inf): 1.0 offers exactly the aggregate network capacity.
  FlowArrivals(const DemandModel* tm, const FlowSizeDist* sizes,
               double node_bandwidth_bps, double load, Rng rng);

  // Next flow in arrival order; times are strictly nondecreasing.
  FlowArrival next() override;

  // Mean flow inter-arrival time implied by the calibration.
  Picoseconds mean_interarrival() const { return mean_gap_; }

 private:
  const DemandModel* tm_;
  const FlowSizeDist* sizes_;
  Picoseconds mean_gap_;
  Picoseconds now_ = 0;
  Rng rng_;
};

}  // namespace sorn
