#include "traffic/matrix_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/table.h"

namespace sorn {

std::string matrix_to_csv(const DemandModel& tm) {
  std::string out;
  const NodeId n = tm.node_count();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (j != 0) out += ',';
      out += format("%.12g", tm.at(i, j));
    }
    out += '\n';
  }
  return out;
}

std::optional<TrafficMatrix> matrix_from_csv(const std::string& csv) {
  std::vector<std::vector<double>> rows;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t end = csv.find('\n', pos);
    if (end == std::string::npos) end = csv.size();
    const std::string line = csv.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    std::vector<double> row;
    std::size_t cell_start = 0;
    for (;;) {
      std::size_t comma = line.find(',', cell_start);
      const std::string cell =
          line.substr(cell_start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - cell_start);
      errno = 0;
      char* parse_end = nullptr;
      const double value = std::strtod(cell.c_str(), &parse_end);
      if (parse_end == cell.c_str() || *parse_end != '\0' || errno != 0 ||
          value < 0.0)
        return std::nullopt;
      row.push_back(value);
      if (comma == std::string::npos) break;
      cell_start = comma + 1;
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return std::nullopt;
  const std::size_t n = rows.size();
  for (const auto& row : rows)
    if (row.size() != n) return std::nullopt;  // ragged or non-square
  TrafficMatrix tm(static_cast<NodeId>(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (rows[i][i] != 0.0) return std::nullopt;  // self-demand is invalid
    for (std::size_t j = 0; j < n; ++j)
      if (i != j)
        tm.set(static_cast<NodeId>(i), static_cast<NodeId>(j), rows[i][j]);
  }
  return tm;
}

bool save_matrix_csv(const DemandModel& tm, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = matrix_to_csv(tm);
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

std::optional<TrafficMatrix> load_matrix_csv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string csv;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) csv.append(buf, got);
  std::fclose(f);
  return matrix_from_csv(csv);
}

}  // namespace sorn
