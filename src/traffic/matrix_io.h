// CSV persistence for traffic matrices.
//
// The control plane's measured aggregates are the durable artifact of a
// deployment (the macro pattern is stable for hours — paper Sec. 3);
// operators snapshot them, replay them in planning tools, and seed new
// clusters from them. Format: one CSV row per source node, N columns of
// demand rates; no header.
#pragma once

#include <optional>
#include <string>

#include "traffic/traffic_matrix.h"

namespace sorn {

// Serialize to CSV text.
std::string matrix_to_csv(const DemandModel& tm);

// Parse CSV text; returns nullopt on malformed input (ragged rows,
// non-numeric cells, negative demand, nonzero diagonal, or a non-square
// shape).
std::optional<TrafficMatrix> matrix_from_csv(const std::string& csv);

// File convenience wrappers; return false / nullopt on IO failure.
bool save_matrix_csv(const DemandModel& tm, const std::string& path);
std::optional<TrafficMatrix> load_matrix_csv(const std::string& path);

}  // namespace sorn
