// DemandModel: the read-only traffic-demand abstraction.
//
// The paper's control plane never consumes the raw N x N matrix — only the
// locality ratio x, row/column loads, and the clique-level aggregate
// (Sec. 3). This interface captures exactly that consumer contract so the
// demand can live in one of three backends:
//
//   dense       TrafficMatrix (traffic_matrix.h) — the historical N^2
//               array; still the only mutable backend.
//   sparse      SparseDemand (sparse_demand.h) — CSR over the nonzero
//               entries, O(nnz) statistics and O(log nnz) sampling.
//   procedural  ProceduralDemand (procedural_demand.h) — closed-form
//               generators (uniform / locality-mix / clique-ring /
//               hier-locality) answering everything from per-row run
//               descriptions with O(N) state.
//
// Byte-identity contract: all three backends produce BIT-IDENTICAL values
// for every statistic and for every seeded sample sequence. The key fact
// making that possible: adding an exact 0.0 to a double accumulator is a
// bit-exact no-op, so folding only the nonzero entries in the same order
// as the dense loops (row-major for total/locality/aggregate/sample_pair,
// j-ascending within a row for row_sum, i-ascending for col_sum) yields
// the same bits as folding all N^2 entries. The generic implementations
// below encode the canonical dense fold orders; backends may override them
// with faster equivalents but must preserve the fold order over nonzeros.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "topo/clique.h"
#include "util/rng.h"
#include "util/types.h"

namespace sorn {

// Which backend a scenario materializes its demand into
// (ScenarioConfig::traffic_backend).
enum class DemandBackend {
  kDense,
  kSparse,
  kProcedural,
};

const char* demand_backend_name(DemandBackend backend);
bool parse_demand_backend(std::string_view name, DemandBackend* out);

class DemandModel {
 public:
  virtual ~DemandModel() = default;

  virtual NodeId node_count() const = 0;

  // Demand rate from src to dst (0 on the diagonal).
  virtual double at(NodeId src, NodeId dst) const = 0;

  // Visit every nonzero entry in row-major order (rows ascending, columns
  // ascending within a row) — the canonical fold order. Backends may skip
  // entries whose stored value is exactly 0.0.
  using NonzeroVisitor = std::function<void(NodeId, NodeId, double)>;
  virtual void for_each_nonzero(const NonzeroVisitor& visit) const;

  virtual double total() const;
  virtual double row_sum(NodeId src) const;
  virtual double col_sum(NodeId dst) const;
  // Max over nodes of max(row_sum, col_sum): the load the busiest node
  // must carry.
  virtual double max_node_load() const;

  // Fraction of total demand that stays within a clique (the paper's x).
  virtual double locality_ratio(const CliqueAssignment& cliques) const;

  // Clique-level aggregate: entry (a, b) sums demand from clique a to b.
  virtual std::vector<double> aggregate(const CliqueAssignment& cliques) const;

  // Draw a (src, dst) pair with probability proportional to demand;
  // consumes exactly one rng.next_double(). Requires total() > 0.
  virtual std::pair<NodeId, NodeId> sample_pair(Rng& rng) const = 0;

  // Draw a destination for `src` proportional to the row's demand;
  // consumes exactly one rng.next_double(). Callers must check
  // row_sum(src) > 0 first (the closed-loop sources skip silent rows
  // without touching the RNG). The draw can land on the clamped last
  // column (n - 1) — including src itself — exactly as the historical
  // per-row CDF upper_bound did; callers skip that case themselves.
  virtual NodeId sample_dst(NodeId src, Rng& rng) const = 0;

  // Deep copy preserving the backend (fault-model staleness history holds
  // these instead of dense matrices).
  virtual std::unique_ptr<DemandModel> clone() const = 0;

  // Bytes of heap state currently held (including lazily built sampling
  // caches) — the `traffic_demand` profiler gauge.
  virtual std::size_t memory_bytes() const = 0;

  virtual DemandBackend backend() const = 0;

 protected:
  DemandModel() = default;
  DemandModel(const DemandModel&) = default;
  DemandModel& operator=(const DemandModel&) = default;
};

}  // namespace sorn
