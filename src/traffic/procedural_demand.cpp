#include "traffic/procedural_demand.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

ProceduralDemand::ProceduralDemand(NodeId n, NodeId block_size,
                                   std::vector<ClassSpec> classes)
    : n_(n), block_size_(block_size), classes_(std::move(classes)) {
  SORN_ASSERT(n >= 1, "procedural demand needs at least one node");
  SORN_ASSERT(block_size >= 1 && n % block_size == 0,
              "procedural demand needs equal contiguous blocks");
  SORN_ASSERT(classes_.size() ==
                  static_cast<std::size_t>(n / block_size),
              "one class per block required");
}

bool ProceduralDemand::supports(const CliqueAssignment& cliques) {
  return cliques.contiguous_equal_blocks();
}

double ProceduralDemand::fold_runs(const std::vector<Run>& runs,
                                   int diag_run) {
  double acc = 0.0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    auto count = static_cast<std::size_t>(runs[r].end - runs[r].begin);
    if (static_cast<int>(r) == diag_run) --count;
    for (std::size_t k = 0; k < count; ++k) acc += runs[r].value;
  }
  return acc;
}

void ProceduralDemand::normalize_and_finalize() {
  // Replicate TrafficMatrix::normalize_node_load(1.0): fold raw row and
  // column sums (zeros and the diagonal are no-ops), take the max over
  // nodes in node order, scale by 1/load. Stored values then equal the
  // dense `d *= factor` results bit-for-bit.
  std::vector<double> raw_row(classes_.size(), 0.0);
  std::vector<double> raw_col(classes_.size(), 0.0);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    raw_row[c] = fold_runs(classes_[c].row_runs, classes_[c].row_diag_run);
    raw_col[c] = fold_runs(classes_[c].col_runs, classes_[c].col_diag_run);
  }
  double load = 0.0;
  for (NodeId i = 0; i < n_; ++i) {
    load = std::max({load, raw_row[class_of(i)], raw_col[class_of(i)]});
  }
  if (load > 0.0) {
    const double factor = 1.0 / load;
    for (auto& spec : classes_) {
      for (auto& run : spec.row_runs) run.value *= factor;
      for (auto& run : spec.col_runs) run.value *= factor;
    }
  }
  for (auto& spec : classes_) {
    spec.row_sum = fold_runs(spec.row_runs, spec.row_diag_run);
    spec.col_sum = fold_runs(spec.col_runs, spec.col_diag_run);
    spec.row_seq_len = 0;
    for (std::size_t r = 0; r < spec.row_runs.size(); ++r) {
      spec.row_seq_len +=
          static_cast<std::size_t>(spec.row_runs[r].end -
                                   spec.row_runs[r].begin) -
          (static_cast<int>(r) == spec.row_diag_run ? 1u : 0u);
    }
  }
}

// ------------------------------------------------------------- factories

std::unique_ptr<ProceduralDemand> ProceduralDemand::uniform(NodeId n) {
  SORN_ASSERT(n >= 1, "procedural demand needs at least one node");
  ClassSpec spec;
  if (n >= 2) {
    spec.row_runs.push_back({0, n, 1.0});
    spec.col_runs.push_back({0, n, 1.0});
    spec.row_diag_run = 0;
    spec.col_diag_run = 0;
  }
  std::vector<ClassSpec> classes;
  classes.push_back(std::move(spec));
  auto out = std::unique_ptr<ProceduralDemand>(
      new ProceduralDemand(n, n, std::move(classes)));
  out->normalize_and_finalize();
  return out;
}

std::unique_ptr<ProceduralDemand> ProceduralDemand::locality_mix(
    const CliqueAssignment& cliques, double x) {
  SORN_ASSERT(x >= 0.0 && x <= 1.0, "locality ratio must be in [0,1]");
  SORN_ASSERT(supports(cliques),
              "procedural locality_mix needs contiguous equal blocks");
  const NodeId n = cliques.node_count();
  const auto nc = static_cast<std::size_t>(cliques.clique_count());
  const NodeId s = cliques.clique_size(0);
  const NodeId in_clique = s - 1;
  const NodeId out_clique = n - s;
  const double intra_share = in_clique > 0 ? x : 0.0;
  const double inter_share = out_clique > 0 ? 1.0 - intra_share : 0.0;
  const double intra =
      in_clique > 0 ? intra_share / static_cast<double>(in_clique) : 0.0;
  const double inter =
      out_clique > 0 ? inter_share / static_cast<double>(out_clique) : 0.0;

  std::vector<ClassSpec> classes(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    const NodeId lo = static_cast<NodeId>(c) * s;
    const NodeId hi = lo + s;
    auto emit = [&](std::vector<Run>& runs, int& diag_run) {
      if (lo > 0 && inter != 0.0) runs.push_back({0, lo, inter});
      if (s >= 2 && intra != 0.0) {
        diag_run = static_cast<int>(runs.size());
        runs.push_back({lo, hi, intra});
      }
      if (hi < n && inter != 0.0) runs.push_back({hi, n, inter});
    };
    emit(classes[c].row_runs, classes[c].row_diag_run);
    emit(classes[c].col_runs, classes[c].col_diag_run);
  }
  auto out = std::unique_ptr<ProceduralDemand>(
      new ProceduralDemand(n, s, std::move(classes)));
  out->normalize_and_finalize();
  return out;
}

std::unique_ptr<ProceduralDemand> ProceduralDemand::clique_ring(
    const CliqueAssignment& cliques, double x, double heavy_share) {
  SORN_ASSERT(x >= 0.0 && x < 1.0, "locality must be in [0,1)");
  SORN_ASSERT(heavy_share >= 0.0 && heavy_share <= 1.0,
              "heavy share must be in [0,1]");
  SORN_ASSERT(supports(cliques),
              "procedural clique_ring needs contiguous equal blocks");
  const NodeId n = cliques.node_count();
  const auto nc = cliques.clique_count();
  SORN_ASSERT(nc >= 3, "clique_ring needs at least three cliques");
  const NodeId s = cliques.clique_size(0);

  const double intra = s >= 2 ? x / static_cast<double>(s - 1) : 0.0;
  const double inter = s >= 2 ? 1.0 - x : 1.0;
  const double heavy = inter * heavy_share / static_cast<double>(s);
  const double rest = inter * (1.0 - heavy_share);
  const double per_node = rest / static_cast<double>((nc - 2) * s);

  std::vector<ClassSpec> classes(static_cast<std::size_t>(nc));
  for (CliqueId c = 0; c < nc; ++c) {
    auto& spec = classes[static_cast<std::size_t>(c)];
    const auto next = static_cast<CliqueId>((c + 1) % nc);
    const auto prev = static_cast<CliqueId>((c + nc - 1) % nc);
    // Row runs: columns ascending over cliques; value by the receiver's
    // relation to c. Col runs: rows ascending; value by the sender's
    // relation (sender==c intra, sender==prev heavy, else spread).
    for (CliqueId other = 0; other < nc; ++other) {
      const NodeId lo = other * s;
      const NodeId hi = lo + s;
      const double row_v =
          other == c ? intra : (other == next ? heavy : per_node);
      const double col_v =
          other == c ? intra : (other == prev ? heavy : per_node);
      if (row_v != 0.0) {
        if (other == c) spec.row_diag_run = static_cast<int>(
            spec.row_runs.size());
        spec.row_runs.push_back({lo, hi, row_v});
      }
      if (col_v != 0.0) {
        if (other == c) spec.col_diag_run = static_cast<int>(
            spec.col_runs.size());
        spec.col_runs.push_back({lo, hi, col_v});
      }
    }
  }
  auto out = std::unique_ptr<ProceduralDemand>(
      new ProceduralDemand(n, s, std::move(classes)));
  out->normalize_and_finalize();
  return out;
}

std::unique_ptr<ProceduralDemand> ProceduralDemand::hier_locality_mix(
    const Hierarchy& h, double x1, double x2) {
  SORN_ASSERT(x1 >= 0.0 && x2 >= 0.0 && x1 + x2 <= 1.0 + 1e-12,
              "locality shares must be a sub-distribution");
  const NodeId n = h.node_count();
  const NodeId ps = h.pod_size();
  const NodeId cs = h.cluster_size();
  const NodeId pod_peers = ps - 1;
  const NodeId cluster_peers = cs - ps;
  const NodeId global_peers = n - cs;
  const double pod_share = pod_peers > 0 ? x1 : 0.0;
  const double cluster_share = cluster_peers > 0 ? x2 : 0.0;
  double global_share =
      global_peers > 0 ? 1.0 - pod_share - cluster_share : 0.0;
  if (global_share < 0.0) global_share = 0.0;
  const double pod_v =
      pod_peers > 0 ? pod_share / static_cast<double>(pod_peers) : 0.0;
  const double cluster_v =
      cluster_peers > 0 ? cluster_share / static_cast<double>(cluster_peers)
                        : 0.0;
  const double global_v =
      global_peers > 0 ? global_share / static_cast<double>(global_peers)
                       : 0.0;

  const auto pods = static_cast<std::size_t>(n / ps);
  std::vector<ClassSpec> classes(pods);
  for (std::size_t p = 0; p < pods; ++p) {
    auto& spec = classes[p];
    const NodeId pod_lo = static_cast<NodeId>(p) * ps;
    const NodeId pod_hi = pod_lo + ps;
    const NodeId cluster_lo = (pod_lo / cs) * cs;
    const NodeId cluster_hi = cluster_lo + cs;
    // The values are symmetric in (i, j) — same_pod/same_cluster are —
    // so column runs equal row runs.
    auto emit = [&](std::vector<Run>& runs, int& diag_run) {
      if (cluster_lo > 0 && global_v != 0.0)
        runs.push_back({0, cluster_lo, global_v});
      if (pod_lo > cluster_lo && cluster_v != 0.0)
        runs.push_back({cluster_lo, pod_lo, cluster_v});
      if (ps >= 2 && pod_v != 0.0) {
        diag_run = static_cast<int>(runs.size());
        runs.push_back({pod_lo, pod_hi, pod_v});
      }
      if (cluster_hi > pod_hi && cluster_v != 0.0)
        runs.push_back({pod_hi, cluster_hi, cluster_v});
      if (cluster_hi < n && global_v != 0.0)
        runs.push_back({cluster_hi, n, global_v});
    };
    emit(spec.row_runs, spec.row_diag_run);
    emit(spec.col_runs, spec.col_diag_run);
  }
  auto out = std::unique_ptr<ProceduralDemand>(
      new ProceduralDemand(n, ps, std::move(classes)));
  out->normalize_and_finalize();
  return out;
}

// ---------------------------------------------------------------- queries

double ProceduralDemand::at(NodeId src, NodeId dst) const {
  if (src == dst) return 0.0;
  const auto& runs = classes_[class_of(src)].row_runs;
  // Last run with begin <= dst.
  const auto it = std::upper_bound(
      runs.begin(), runs.end(), dst,
      [](NodeId j, const Run& run) { return j < run.begin; });
  if (it == runs.begin()) return 0.0;
  const Run& run = *(it - 1);
  return dst < run.end ? run.value : 0.0;
}

void ProceduralDemand::for_each_nonzero(const NonzeroVisitor& visit) const {
  for (NodeId i = 0; i < n_; ++i) {
    for (const Run& run : classes_[class_of(i)].row_runs) {
      for (NodeId j = run.begin; j < run.end; ++j) {
        if (j != i) visit(i, j, run.value);
      }
    }
  }
}

double ProceduralDemand::row_sum(NodeId src) const {
  return classes_[class_of(src)].row_sum;
}

double ProceduralDemand::col_sum(NodeId dst) const {
  return classes_[class_of(dst)].col_sum;
}

double ProceduralDemand::max_node_load() const {
  double worst = 0.0;
  for (NodeId i = 0; i < n_; ++i)
    worst = std::max({worst, row_sum(i), col_sum(i)});
  return worst;
}

void ProceduralDemand::ensure_pair_chain() const {
  if (!row_end_cdf_.empty()) return;
  // The dense global CDF evaluated at each row's last column. Carrying the
  // accumulator across rows (rather than summing row_sums) keeps every
  // intermediate rounding identical to the dense fold.
  row_end_cdf_.resize(static_cast<std::size_t>(n_));
  double acc = 0.0;
  for (NodeId i = 0; i < n_; ++i) {
    for (const Run& run : classes_[class_of(i)].row_runs) {
      auto count = static_cast<std::size_t>(run.end - run.begin);
      if (run.begin <= i && i < run.end) --count;
      for (std::size_t k = 0; k < count; ++k) acc += run.value;
    }
    row_end_cdf_[static_cast<std::size_t>(i)] = acc;
  }
}

double ProceduralDemand::total() const {
  ensure_pair_chain();
  return row_end_cdf_.back();
}

std::pair<NodeId, NodeId> ProceduralDemand::sample_pair(Rng& rng) const {
  ensure_pair_chain();
  const double total_demand = row_end_cdf_.back();
  SORN_ASSERT(total_demand > 0.0, "cannot sample from an empty matrix");
  const double u = rng.next_double() * total_demand;
  const auto it =
      std::upper_bound(row_end_cdf_.begin(), row_end_cdf_.end(), u);
  if (it == row_end_cdf_.end()) {
    // Dense clamp: u >= total lands on linear index N*N-1 = (n-1, n-1).
    return {n_ - 1, n_ - 1};
  }
  const auto row = static_cast<NodeId>(it - row_end_cdf_.begin());
  // Re-simulate the row's fold from the carried-in accumulator; the first
  // strictly-greater partial sum is exactly where dense upper_bound lands
  // (zeros never increase the CDF).
  double acc = row > 0 ? row_end_cdf_[static_cast<std::size_t>(row) - 1]
                       : 0.0;
  for (const Run& run : classes_[class_of(row)].row_runs) {
    for (NodeId j = run.begin; j < run.end; ++j) {
      if (j == row) continue;
      acc += run.value;
      if (acc > u) return {row, j};
    }
  }
  return {row, n_ - 1};  // unreachable: row_end_cdf_[row] > u
}

void ProceduralDemand::ensure_row_prefix(const ClassSpec& spec) const {
  if (!spec.row_prefix.empty() || spec.row_seq_len == 0) return;
  // Diagonal-less value sequence of any row of the class: dropping one
  // element from a constant run yields the same list wherever the
  // diagonal sits, so one prefix serves every member row.
  spec.row_prefix.reserve(spec.row_seq_len);
  double acc = 0.0;
  for (std::size_t r = 0; r < spec.row_runs.size(); ++r) {
    const Run& run = spec.row_runs[r];
    auto count = static_cast<std::size_t>(run.end - run.begin);
    if (static_cast<int>(r) == spec.row_diag_run) --count;
    for (std::size_t k = 0; k < count; ++k) {
      acc += run.value;
      spec.row_prefix.push_back(acc);
    }
  }
}

NodeId ProceduralDemand::sample_dst(NodeId src, Rng& rng) const {
  const ClassSpec& spec = classes_[class_of(src)];
  ensure_row_prefix(spec);
  const double u = rng.next_double() * spec.row_sum;
  const auto it =
      std::upper_bound(spec.row_prefix.begin(), spec.row_prefix.end(), u);
  auto m = static_cast<std::size_t>(it - spec.row_prefix.begin());
  if (m >= spec.row_seq_len) return n_ - 1;  // dense clamp: column n-1
  // Map the m-th nonzero ordinal to its column, shifting past the row's
  // own diagonal inside the diagonal run.
  for (std::size_t r = 0; r < spec.row_runs.size(); ++r) {
    const Run& run = spec.row_runs[r];
    const auto len = static_cast<std::size_t>(run.end - run.begin);
    const bool has_diag = static_cast<int>(r) == spec.row_diag_run;
    const auto count = len - (has_diag ? 1u : 0u);
    if (m < count) {
      if (has_diag) {
        const auto p = static_cast<std::size_t>(src - run.begin);
        return run.begin + static_cast<NodeId>(m + (m >= p ? 1 : 0));
      }
      return run.begin + static_cast<NodeId>(m);
    }
    m -= count;
  }
  return n_ - 1;  // unreachable
}

std::unique_ptr<DemandModel> ProceduralDemand::clone() const {
  return std::unique_ptr<ProceduralDemand>(new ProceduralDemand(*this));
}

std::size_t ProceduralDemand::memory_bytes() const {
  std::size_t bytes = row_end_cdf_.capacity() * sizeof(double);
  for (const auto& spec : classes_) {
    bytes += (spec.row_runs.capacity() + spec.col_runs.capacity()) *
                 sizeof(Run) +
             spec.row_prefix.capacity() * sizeof(double) + sizeof(ClassSpec);
  }
  return bytes;
}

}  // namespace sorn
