#include "traffic/workloads.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace sorn {

IncastArrivals::IncastArrivals(NodeId nodes, NodeId fanin,
                               std::uint64_t bytes_per_sender,
                               Slot period_slots, Picoseconds slot_duration,
                               Rng rng)
    : nodes_(nodes),
      fanin_(fanin),
      bytes_(bytes_per_sender),
      period_slots_(period_slots),
      slot_duration_(slot_duration),
      rng_(rng) {
  SORN_ASSERT(nodes_ >= 2, "incast needs at least two nodes");
  SORN_ASSERT(fanin_ >= 1 && fanin_ <= nodes_ - 1,
              "incast fan-in must be in [1, nodes - 1]");
  SORN_ASSERT(bytes_ >= 1, "incast senders must send at least one byte");
  SORN_ASSERT(period_slots_ >= 1, "incast period must be at least one slot");
  SORN_ASSERT(slot_duration_ > 0, "slot duration must be positive");
  senders_.reserve(static_cast<std::size_t>(nodes_));
  start_wave();
}

void IncastArrivals::start_wave() {
  receiver_ = static_cast<NodeId>(
      rng_.next_below(static_cast<std::uint64_t>(nodes_)));
  // Partial Fisher-Yates over the non-receiver nodes: the first fanin_
  // entries are the wave's distinct senders.
  senders_.clear();
  for (NodeId i = 0; i < nodes_; ++i)
    if (i != receiver_) senders_.push_back(i);
  for (NodeId s = 0; s < fanin_; ++s) {
    const std::size_t i = static_cast<std::size_t>(s);
    const std::size_t j =
        i + static_cast<std::size_t>(rng_.next_below(senders_.size() - i));
    std::swap(senders_[i], senders_[j]);
  }
  emitted_ = 0;
}

FlowArrival IncastArrivals::next() {
  if (emitted_ >= static_cast<std::size_t>(fanin_)) {
    ++wave_;
    start_wave();
  }
  const Picoseconds time = static_cast<Picoseconds>(wave_) * period_slots_ *
                           slot_duration_;
  return FlowArrival{time, senders_[emitted_++], receiver_, bytes_};
}

namespace {

std::uint64_t ceil_log2(NodeId n) {
  std::uint64_t levels = 0;
  while ((NodeId{1} << levels) < n) ++levels;
  return levels;
}

}  // namespace

CollectiveArrivals::CollectiveArrivals(const DemandModel* tm, Kind kind,
                                       std::uint64_t bytes_per_node,
                                       Slot phase_gap_slots,
                                       Picoseconds slot_duration)
    : nodes_(tm != nullptr ? tm->node_count() : 0),
      kind_(kind),
      phase_gap_slots_(phase_gap_slots),
      slot_duration_(slot_duration) {
  SORN_ASSERT(tm != nullptr, "collective needs a demand model");
  SORN_ASSERT(nodes_ >= 2, "collective needs at least two nodes");
  SORN_ASSERT(phase_gap_slots_ >= 1, "phase gap must be at least one slot");
  SORN_ASSERT(slot_duration_ > 0, "slot duration must be positive");
  // Size each node's contribution off its demand-model row share: a node
  // responsible for twice the average demand pushes a gradient twice the
  // size. Uniform demand degenerates to bytes_per_node everywhere.
  node_bytes_.assign(static_cast<std::size_t>(nodes_), bytes_per_node);
  const double total = tm->total();
  if (total > 0.0) {
    for (NodeId i = 0; i < nodes_; ++i) {
      const double share =
          tm->row_sum(i) * static_cast<double>(nodes_) / total;
      node_bytes_[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(bytes_per_node) * share));
    }
  }
  phases_per_iter_ = kind_ == Kind::kRing
                         ? 2 * (static_cast<std::uint64_t>(nodes_) - 1)
                         : 2 * ceil_log2(nodes_);
  build_phase();
}

void CollectiveArrivals::build_phase() {
  flows_.clear();
  emitted_ = 0;
  const Picoseconds time = static_cast<Picoseconds>(phase_) *
                           phase_gap_slots_ * slot_duration_;
  const std::uint64_t p = phase_ % phases_per_iter_;
  if (kind_ == Kind::kRing) {
    // Reduce-scatter then allgather: every phase, every node passes one
    // 1/N-sized chunk of its (scaled) gradient to its ring successor.
    for (NodeId i = 0; i < nodes_; ++i) {
      const std::uint64_t whole = node_bytes_[static_cast<std::size_t>(i)];
      if (whole == 0) continue;
      const std::uint64_t chunk = std::max<std::uint64_t>(
          1, whole / static_cast<std::uint64_t>(nodes_));
      flows_.push_back(
          FlowArrival{time, i, (i + 1) % nodes_, chunk});
    }
    return;
  }
  // Binary tree: reduce up for ceil(log2 N) phases (children send their
  // full aggregate to the parent), then broadcast back down mirrored.
  const std::uint64_t levels = phases_per_iter_ / 2;
  const bool reduce = p < levels;
  const std::uint64_t shift = reduce ? p : levels - 1 - (p - levels);
  const NodeId stride = static_cast<NodeId>(std::uint64_t{1} << shift);
  for (NodeId i = 0; i < nodes_; ++i) {
    NodeId src, dst;
    if (reduce) {
      // Senders sit at odd multiples of stride: they fold into i - stride.
      if (i % (2 * stride) != stride) continue;
      src = i;
      dst = i - stride;
    } else {
      if (i % (2 * stride) != 0 || i + stride >= nodes_) continue;
      src = i;
      dst = i + stride;
    }
    const std::uint64_t bytes = node_bytes_[static_cast<std::size_t>(src)];
    if (bytes == 0) continue;
    flows_.push_back(FlowArrival{time, src, dst, bytes});
  }
}

FlowArrival CollectiveArrivals::next() {
  // An empty phase (every participant's scaled bytes rounded to zero) is
  // skipped; if a whole iteration is empty the stream is exhausted.
  std::uint64_t empty_phases = 0;
  while (emitted_ >= flows_.size()) {
    if (flows_.empty() && ++empty_phases > phases_per_iter_)
      return FlowArrival{kNoMoreArrivals, 0, 1, 1};
    ++phase_;
    build_phase();
  }
  return flows_[emitted_++];
}

OversubRackArrivals::OversubRackArrivals(const CliqueAssignment* racks,
                                         const FlowSizeDist* sizes,
                                         double node_bandwidth_bps,
                                         double load, double rack_local_frac,
                                         double oversub_factor, Rng rng)
    : racks_(racks), sizes_(sizes), rng_(rng) {
  SORN_ASSERT(racks_ != nullptr && sizes_ != nullptr, "null workload inputs");
  SORN_ASSERT(racks_->node_count() >= 2, "need at least two nodes");
  SORN_ASSERT(load > 0.0, "load must be positive");
  SORN_ASSERT(node_bandwidth_bps > 0.0, "bandwidth must be positive");
  SORN_ASSERT(rack_local_frac >= 0.0 && rack_local_frac <= 1.0,
              "rack-local fraction must be in [0, 1]");
  SORN_ASSERT(oversub_factor >= 1.0, "oversubscription factor must be >= 1");
  // The inter-rack share of a balanced mix is (1 - x); oversubscription
  // multiplies exactly that share by F (F racks of servers behind one
  // uplink), so the total offered load becomes load * (x + F(1 - x)) and
  // an arrival crosses racks with probability F(1 - x) / (x + F(1 - x)).
  const double inter_weight = oversub_factor * (1.0 - rack_local_frac);
  const double total_weight = rack_local_frac + inter_weight;
  SORN_ASSERT(total_weight > 0.0, "degenerate rack mix: zero offered load");
  inter_prob_ = inter_weight / total_weight;
  if (inter_prob_ > 0.0) {
    SORN_ASSERT(racks_->clique_count() >= 2,
                "inter-rack traffic needs at least two racks");
  }
  const double byte_rate = load * total_weight *
                           static_cast<double>(racks_->node_count()) *
                           node_bandwidth_bps / 8.0;
  const double gap_seconds = sizes_->mean_bytes() / byte_rate;
  mean_gap_ = static_cast<Picoseconds>(std::llround(gap_seconds * 1e12));
  SORN_ASSERT(mean_gap_ > 0, "arrival rate too high for picosecond clock");
}

FlowArrival OversubRackArrivals::next() {
  now_ += static_cast<Picoseconds>(std::llround(
      rng_.next_exponential(static_cast<double>(mean_gap_))));
  const NodeId n = racks_->node_count();
  const NodeId src =
      static_cast<NodeId>(rng_.next_below(static_cast<std::uint64_t>(n)));
  const CliqueId rack = racks_->clique_of(src);
  const bool inter = rng_.next_double() < inter_prob_ ||
                     racks_->clique_size(rack) < 2;
  NodeId dst;
  if (inter) {
    // Rejection over the other racks' nodes; terminates because at least
    // one other rack is nonempty whenever inter traffic is possible.
    do {
      dst = static_cast<NodeId>(
          rng_.next_below(static_cast<std::uint64_t>(n)));
    } while (racks_->clique_of(dst) == rack);
  } else {
    // Uniform rack member other than src (skip src's own position).
    const std::vector<NodeId>& members = racks_->members(rack);
    const NodeId pos = racks_->index_in_clique(src);
    NodeId j = static_cast<NodeId>(
        rng_.next_below(static_cast<std::uint64_t>(members.size() - 1)));
    if (j >= pos) ++j;
    dst = members[static_cast<std::size_t>(j)];
  }
  return FlowArrival{now_, src, dst, sizes_->sample(rng_)};
}

}  // namespace sorn
