// Burst-structured workload generators (ROADMAP item 3).
//
// FlowArrivals (arrivals.h) offers smooth Poisson traffic; the workloads
// here produce the synchronized micro-burst regimes SORN's oblivious lane
// is claimed to absorb (paper Sec. 3), as ArrivalStream implementations
// the WorkloadDriver consumes unchanged:
//
//   IncastArrivals        partition/aggregate request waves — every
//                         `period` a fresh receiver is hit by `fanin`
//                         simultaneous responses.
//   CollectiveArrivals    ML-training allreduce phases (ring or binary
//                         tree) with barrier-synchronized bursts; each
//                         node's contribution is sized off the demand
//                         model's row share.
//   OversubRackArrivals   rack-local/inter-rack Poisson mix where the
//                         inter-rack share is multiplied by an
//                         oversubscription factor, modeling F racks'
//                         worth of servers behind each uplink.
//
// All streams own their Rng (or are RNG-free), emit nondecreasing times,
// and run on the coordinating thread only.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/clique.h"
#include "traffic/arrivals.h"
#include "traffic/demand_model.h"
#include "traffic/flow_size.h"

namespace sorn {

class IncastArrivals : public ArrivalStream {
 public:
  // Every period_slots, a uniformly drawn receiver gets `fanin` flows of
  // `bytes_per_sender` from distinct uniformly drawn senders, all stamped
  // at the wave start (the synchronized request wave). fanin <= nodes - 1.
  IncastArrivals(NodeId nodes, NodeId fanin, std::uint64_t bytes_per_sender,
                 Slot period_slots, Picoseconds slot_duration, Rng rng);

  FlowArrival next() override;

 private:
  void start_wave();

  NodeId nodes_;
  NodeId fanin_;
  std::uint64_t bytes_;
  Slot period_slots_;
  Picoseconds slot_duration_;
  Rng rng_;
  std::uint64_t wave_ = 0;
  NodeId receiver_ = 0;
  std::vector<NodeId> senders_;
  std::size_t emitted_ = 0;
};

class CollectiveArrivals : public ArrivalStream {
 public:
  enum class Kind {
    kRing,  // 2(N-1) phases; node i sends its chunk to (i+1) mod N
    kTree,  // binary-tree reduce then broadcast, 2*ceil(log2 N) phases
  };

  // bytes_per_node is each node's full gradient contribution per
  // allreduce iteration, scaled per node by its demand-model row share
  // (row_sum * N / total; uniform demand leaves every node at exactly
  // bytes_per_node). Phases start phase_gap_slots apart — the barrier —
  // and iterations repeat indefinitely (steady-state training).
  CollectiveArrivals(const DemandModel* tm, Kind kind,
                     std::uint64_t bytes_per_node, Slot phase_gap_slots,
                     Picoseconds slot_duration);

  FlowArrival next() override;

 private:
  // Fill flows_ with this phase's (src, dst, bytes) bursts, ascending src.
  void build_phase();

  NodeId nodes_;
  Kind kind_;
  Slot phase_gap_slots_;
  Picoseconds slot_duration_;
  // Per-node scaled bytes (demand row share applied once, up front).
  std::vector<std::uint64_t> node_bytes_;
  std::uint64_t phase_ = 0;         // global phase counter across iterations
  std::uint64_t phases_per_iter_;
  std::vector<FlowArrival> flows_;  // current phase's bursts
  std::size_t emitted_ = 0;
};

class OversubRackArrivals : public ArrivalStream {
 public:
  // Poisson mix over racks (`racks` assigns nodes to racks): a fraction
  // stays rack-local, the rest crosses racks with its offered load
  // multiplied by `oversub_factor` — so at factor F the fabric sees F
  // times the balanced inter-rack demand, the load profile of F racks of
  // servers sharing one uplink. load/node_bandwidth_bps calibrate the
  // rack-local component exactly like FlowArrivals.
  OversubRackArrivals(const CliqueAssignment* racks, const FlowSizeDist* sizes,
                      double node_bandwidth_bps, double load,
                      double rack_local_frac, double oversub_factor, Rng rng);

  FlowArrival next() override;

 private:
  const CliqueAssignment* racks_;
  const FlowSizeDist* sizes_;
  double inter_prob_;  // probability an arrival crosses racks
  Picoseconds mean_gap_;
  Picoseconds now_ = 0;
  Rng rng_;
};

}  // namespace sorn
