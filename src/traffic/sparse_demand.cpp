#include "traffic/sparse_demand.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

// ---------------------------------------------------------------- Builder

SparseDemand::Builder::Builder(NodeId n) : n_(n) {
  SORN_ASSERT(n >= 1, "sparse demand needs at least one node");
  row_buffer_.assign(static_cast<std::size_t>(n), 0.0);
  row_ptr_rows_.reserve(static_cast<std::size_t>(n));
}

void SparseDemand::Builder::set(NodeId src, NodeId dst, double rate) {
  SORN_ASSERT(rate >= 0.0, "demand must be nonnegative");
  SORN_ASSERT(src >= current_row_,
              "sparse builder rows must be written in nondecreasing order");
  while (current_row_ < src) flush_row();
  if (src != dst) row_buffer_[static_cast<std::size_t>(dst)] = rate;
}

void SparseDemand::Builder::flush_row() {
  NodeId nnz = 0;
  for (NodeId j = 0; j < n_; ++j) {
    const double v = row_buffer_[static_cast<std::size_t>(j)];
    if (v != 0.0) {
      cols_.push_back(j);
      vals_.push_back(v);
      ++nnz;
    }
    row_buffer_[static_cast<std::size_t>(j)] = 0.0;
  }
  row_ptr_rows_.push_back(nnz);
  ++current_row_;
}

std::unique_ptr<SparseDemand> SparseDemand::Builder::build(
    bool normalize_node_load) {
  while (current_row_ < n_) flush_row();

  auto out = std::unique_ptr<SparseDemand>(new SparseDemand(n_));
  out->row_ptr_.resize(static_cast<std::size_t>(n_) + 1, 0);
  for (NodeId i = 0; i < n_; ++i) {
    out->row_ptr_[static_cast<std::size_t>(i) + 1] =
        out->row_ptr_[static_cast<std::size_t>(i)] +
        static_cast<std::size_t>(row_ptr_rows_[static_cast<std::size_t>(i)]);
  }
  out->cols_ = std::move(cols_);
  out->vals_ = std::move(vals_);

  if (normalize_node_load) {
    // Replicate TrafficMatrix::normalize_node_load(1.0): raw row folds
    // (columns ascending) and raw column folds (rows ascending, realized
    // by accumulating row-major), max across nodes, then scale every
    // stored value by 1/load. Skipped zeros are bit-exact no-ops in the
    // dense folds, so these O(nnz) folds produce the same bits.
    std::vector<double> row_fold(static_cast<std::size_t>(n_), 0.0);
    std::vector<double> col_fold(static_cast<std::size_t>(n_), 0.0);
    for (NodeId i = 0; i < n_; ++i) {
      double acc = 0.0;
      for (std::size_t m = out->row_ptr_[static_cast<std::size_t>(i)];
           m < out->row_ptr_[static_cast<std::size_t>(i) + 1]; ++m) {
        acc += out->vals_[m];
        col_fold[static_cast<std::size_t>(out->cols_[m])] += out->vals_[m];
      }
      row_fold[static_cast<std::size_t>(i)] = acc;
    }
    double load = 0.0;
    for (NodeId i = 0; i < n_; ++i) {
      load = std::max({load, row_fold[static_cast<std::size_t>(i)],
                       col_fold[static_cast<std::size_t>(i)]});
    }
    if (load > 0.0) {
      const double factor = 1.0 / load;
      for (double& v : out->vals_) v *= factor;
    }
  }

  out->finalize();
  return out;
}

// ----------------------------------------------------------- construction

std::unique_ptr<SparseDemand> SparseDemand::from_model(
    const DemandModel& model, bool normalize) {
  Builder builder(model.node_count());
  model.for_each_nonzero(
      [&builder](NodeId i, NodeId j, double d) { builder.set(i, j, d); });
  return builder.build(normalize);
}

SparseDemand::SparseDemand(NodeId n, std::vector<NodeId> coo_row,
                           std::vector<NodeId> coo_col,
                           std::vector<double> coo_val)
    : n_(n) {
  SORN_ASSERT(n >= 1, "sparse demand needs at least one node");
  SORN_ASSERT(coo_row.size() == coo_col.size() &&
                  coo_row.size() == coo_val.size(),
              "COO arrays must be parallel");
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  cols_ = std::move(coo_col);
  vals_ = std::move(coo_val);
  NodeId prev_row = 0;
  NodeId prev_col = -1;
  for (std::size_t m = 0; m < coo_row.size(); ++m) {
    const NodeId r = coo_row[m];
    SORN_ASSERT(r >= prev_row, "COO rows must be sorted ascending");
    SORN_ASSERT(r != cols_[m], "diagonal demand is invalid");
    SORN_ASSERT(vals_[m] >= 0.0, "demand must be nonnegative");
    if (r != prev_row) prev_col = -1;
    SORN_ASSERT(cols_[m] > prev_col,
                "COO columns must be strictly ascending within a row");
    prev_row = r;
    prev_col = cols_[m];
    ++row_ptr_[static_cast<std::size_t>(r) + 1];
  }
  for (NodeId i = 0; i < n_; ++i) {
    row_ptr_[static_cast<std::size_t>(i) + 1] +=
        row_ptr_[static_cast<std::size_t>(i)];
  }
  finalize();
}

void SparseDemand::finalize() {
  const auto nnz = vals_.size();
  row_sums_.assign(static_cast<std::size_t>(n_), 0.0);
  col_sums_.assign(static_cast<std::size_t>(n_), 0.0);
  pair_cdf_.resize(nnz);
  row_cdf_.resize(nnz);
  double acc = 0.0;
  for (NodeId i = 0; i < n_; ++i) {
    double row_acc = 0.0;
    for (std::size_t m = row_ptr_[static_cast<std::size_t>(i)];
         m < row_ptr_[static_cast<std::size_t>(i) + 1]; ++m) {
      const double v = vals_[m];
      acc += v;
      pair_cdf_[m] = acc;
      row_acc += v;
      row_cdf_[m] = row_acc;
      col_sums_[static_cast<std::size_t>(cols_[m])] += v;
    }
    row_sums_[static_cast<std::size_t>(i)] = row_acc;
  }
  total_ = nnz > 0 ? pair_cdf_.back() : 0.0;
}

// ---------------------------------------------------------------- queries

double SparseDemand::at(NodeId src, NodeId dst) const {
  const auto begin = cols_.begin() +
                     static_cast<std::ptrdiff_t>(
                         row_ptr_[static_cast<std::size_t>(src)]);
  const auto end = cols_.begin() +
                   static_cast<std::ptrdiff_t>(
                       row_ptr_[static_cast<std::size_t>(src) + 1]);
  const auto it = std::lower_bound(begin, end, dst);
  if (it == end || *it != dst) return 0.0;
  return vals_[static_cast<std::size_t>(it - cols_.begin())];
}

void SparseDemand::for_each_nonzero(const NonzeroVisitor& visit) const {
  for (NodeId i = 0; i < n_; ++i) {
    for (std::size_t m = row_ptr_[static_cast<std::size_t>(i)];
         m < row_ptr_[static_cast<std::size_t>(i) + 1]; ++m) {
      if (vals_[m] != 0.0) visit(i, cols_[m], vals_[m]);
    }
  }
}

double SparseDemand::max_node_load() const {
  double worst = 0.0;
  for (NodeId i = 0; i < n_; ++i) {
    worst = std::max({worst, row_sums_[static_cast<std::size_t>(i)],
                      col_sums_[static_cast<std::size_t>(i)]});
  }
  return worst;
}

std::pair<NodeId, NodeId> SparseDemand::sample_pair(Rng& rng) const {
  SORN_ASSERT(total_ > 0.0, "cannot sample from an empty matrix");
  const double u = rng.next_double() * total_;
  const auto it = std::upper_bound(pair_cdf_.begin(), pair_cdf_.end(), u);
  if (it == pair_cdf_.end()) {
    // Dense clamp: u >= total lands on the last linear index (n-1, n-1).
    return {n_ - 1, n_ - 1};
  }
  const auto m = static_cast<std::size_t>(it - pair_cdf_.begin());
  const auto row_it =
      std::upper_bound(row_ptr_.begin(), row_ptr_.end(), m);
  const auto row = static_cast<NodeId>(row_it - row_ptr_.begin() - 1);
  return {row, cols_[m]};
}

NodeId SparseDemand::sample_dst(NodeId src, Rng& rng) const {
  const double row_total = row_sums_[static_cast<std::size_t>(src)];
  const double u = rng.next_double() * row_total;
  const auto begin = row_cdf_.begin() +
                     static_cast<std::ptrdiff_t>(
                         row_ptr_[static_cast<std::size_t>(src)]);
  const auto end = row_cdf_.begin() +
                   static_cast<std::ptrdiff_t>(
                       row_ptr_[static_cast<std::size_t>(src) + 1]);
  const auto it = std::upper_bound(begin, end, u);
  if (it == end) return n_ - 1;  // dense clamp: column n-1
  return cols_[static_cast<std::size_t>(it - row_cdf_.begin())];
}

std::unique_ptr<DemandModel> SparseDemand::clone() const {
  return std::unique_ptr<SparseDemand>(new SparseDemand(*this));
}

std::size_t SparseDemand::memory_bytes() const {
  return row_ptr_.capacity() * sizeof(std::size_t) +
         cols_.capacity() * sizeof(NodeId) +
         (vals_.capacity() + row_sums_.capacity() + col_sums_.capacity() +
          pair_cdf_.capacity() + row_cdf_.capacity()) *
             sizeof(double);
}

}  // namespace sorn
