#include "traffic/traffic_matrix.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

TrafficMatrix::TrafficMatrix(NodeId n)
    : n_(n),
      demand_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0) {
  SORN_ASSERT(n >= 1, "traffic matrix needs at least one node");
}

void TrafficMatrix::set(NodeId src, NodeId dst, double rate) {
  SORN_ASSERT(rate >= 0.0, "demand must be nonnegative");
  demand_[index(src, dst)] = src == dst ? 0.0 : rate;
  cdf_valid_ = false;
  row_cdf_valid_ = false;
}

void TrafficMatrix::add(NodeId src, NodeId dst, double rate) {
  SORN_ASSERT(rate >= 0.0, "demand must be nonnegative");
  if (src != dst) demand_[index(src, dst)] += rate;
  cdf_valid_ = false;
  row_cdf_valid_ = false;
}

void TrafficMatrix::for_each_nonzero(const NonzeroVisitor& visit) const {
  for (NodeId i = 0; i < n_; ++i) {
    const double* row = demand_.data() + index(i, 0);
    for (NodeId j = 0; j < n_; ++j) {
      if (row[j] != 0.0) visit(i, j, row[j]);
    }
  }
}

double TrafficMatrix::total() const {
  double t = 0.0;
  for (const double d : demand_) t += d;
  return t;
}

double TrafficMatrix::row_sum(NodeId src) const {
  double t = 0.0;
  for (NodeId j = 0; j < n_; ++j) t += at(src, j);
  return t;
}

double TrafficMatrix::col_sum(NodeId dst) const {
  double t = 0.0;
  for (NodeId i = 0; i < n_; ++i) t += at(i, dst);
  return t;
}

double TrafficMatrix::max_node_load() const {
  double worst = 0.0;
  for (NodeId i = 0; i < n_; ++i)
    worst = std::max({worst, row_sum(i), col_sum(i)});
  return worst;
}

void TrafficMatrix::scale(double factor) {
  SORN_ASSERT(factor >= 0.0, "scale factor must be nonnegative");
  for (double& d : demand_) d *= factor;
  cdf_valid_ = false;
  row_cdf_valid_ = false;
}

void TrafficMatrix::normalize_node_load(double target) {
  const double load = max_node_load();
  if (load > 0.0) scale(target / load);
}

double TrafficMatrix::locality_ratio(const CliqueAssignment& cliques) const {
  SORN_ASSERT(cliques.node_count() == n_, "assignment size mismatch");
  double intra = 0.0;
  double all = 0.0;
  for (NodeId i = 0; i < n_; ++i) {
    for (NodeId j = 0; j < n_; ++j) {
      const double d = at(i, j);
      all += d;
      if (cliques.same_clique(i, j)) intra += d;
    }
  }
  return all > 0.0 ? intra / all : 0.0;
}

std::vector<double> TrafficMatrix::aggregate(
    const CliqueAssignment& cliques) const {
  SORN_ASSERT(cliques.node_count() == n_, "assignment size mismatch");
  const auto nc = static_cast<std::size_t>(cliques.clique_count());
  std::vector<double> agg(nc * nc, 0.0);
  for (NodeId i = 0; i < n_; ++i)
    for (NodeId j = 0; j < n_; ++j)
      agg[static_cast<std::size_t>(cliques.clique_of(i)) * nc +
          static_cast<std::size_t>(cliques.clique_of(j))] += at(i, j);
  return agg;
}

std::pair<NodeId, NodeId> TrafficMatrix::sample_pair(Rng& rng) const {
  if (!cdf_valid_) {
    cdf_.resize(demand_.size());
    double acc = 0.0;
    for (std::size_t k = 0; k < demand_.size(); ++k) {
      acc += demand_[k];
      cdf_[k] = acc;
    }
    cdf_valid_ = true;
  }
  const double total_demand = cdf_.back();
  SORN_ASSERT(total_demand > 0.0, "cannot sample from an empty matrix");
  const double u = rng.next_double() * total_demand;
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  auto k = static_cast<std::size_t>(it - cdf_.begin());
  if (k >= demand_.size()) k = demand_.size() - 1;
  return {static_cast<NodeId>(k / static_cast<std::size_t>(n_)),
          static_cast<NodeId>(k % static_cast<std::size_t>(n_))};
}

NodeId TrafficMatrix::sample_dst(NodeId src, Rng& rng) const {
  if (!row_cdf_valid_) {
    row_cdf_.resize(demand_.size());
    for (NodeId i = 0; i < n_; ++i) {
      double acc = 0.0;
      for (NodeId j = 0; j < n_; ++j) {
        acc += at(i, j);
        row_cdf_[index(i, j)] = acc;
      }
    }
    row_cdf_valid_ = true;
  }
  const auto begin = row_cdf_.begin() + static_cast<std::ptrdiff_t>(
                                            index(src, 0));
  const auto end = begin + n_;
  const double row_total = *(end - 1);
  const double u = rng.next_double() * row_total;
  const auto it = std::upper_bound(begin, end, u);
  auto j = static_cast<NodeId>(it - begin);
  if (j >= n_) j = n_ - 1;
  return j;
}

std::unique_ptr<DemandModel> TrafficMatrix::clone() const {
  return std::make_unique<TrafficMatrix>(*this);
}

std::size_t TrafficMatrix::memory_bytes() const {
  return (demand_.capacity() + cdf_.capacity() + row_cdf_.capacity()) *
         sizeof(double);
}

}  // namespace sorn
