// Empirical intrinsic-latency measurement on concrete schedules.
//
// The paper's delta_m formulas (Sec. 4) are derived assuming perfectly even
// interleaving of intra and inter slots. These helpers measure the real
// worst-case recurrence gaps of a built schedule, validating that the
// Bresenham interleave realizes the analytic bounds (tests) and providing
// ground truth for schedules the formulas don't cover (weighted or
// unequal-clique schedules).
#pragma once

#include "topo/clique.h"
#include "topo/schedule.h"

namespace sorn {
namespace analysis {

// Worst gap, in slots, between consecutive occurrences of the circuit
// src -> dst across one period (wrapping). -1 if the circuit never appears.
Slot max_circuit_gap(const CircuitSchedule& schedule, NodeId src, NodeId dst);

// Worst gap until src has *any* circuit into the destination clique.
// -1 if no such circuit exists.
Slot max_clique_gap(const CircuitSchedule& schedule,
                    const CliqueAssignment& cliques, NodeId src,
                    CliqueId dst_clique);

struct GapStats {
  Slot worst = 0;
  double mean = 0.0;
};

// Gap statistics over all intra-clique circuits (direct delivery hops of
// intra traffic; the paper's intra delta_m bounds the worst of these).
GapStats intra_gap_stats(const CircuitSchedule& schedule,
                         const CliqueAssignment& cliques);

// Gap statistics over all (node, other-clique) combinations (the inter
// hop's wait).
GapStats inter_gap_stats(const CircuitSchedule& schedule,
                         const CliqueAssignment& cliques);

// Measured end-to-end intrinsic latency of the SORN routing scheme on this
// schedule: intra = worst direct intra-circuit gap; inter = worst
// inter-hop wait plus the worst final intra-hop gap. Comparable to
// sorn_delta_m_intra / sorn_delta_m_inter_* (models.h).
double measured_delta_m_intra(const CircuitSchedule& schedule,
                              const CliqueAssignment& cliques);
double measured_delta_m_inter(const CircuitSchedule& schedule,
                              const CliqueAssignment& cliques);

}  // namespace analysis
}  // namespace sorn
