#include "analysis/models.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace sorn {
namespace analysis {

double sorn_optimal_q(double x, double q_cap) {
  SORN_ASSERT(x >= 0.0 && x <= 1.0, "locality ratio must be in [0,1]");
  if (x >= 1.0) return q_cap;
  return std::min(q_cap, 2.0 / (1.0 - x));
}

double sorn_throughput(double x) {
  SORN_ASSERT(x >= 0.0 && x <= 1.0, "locality ratio must be in [0,1]");
  return 1.0 / (3.0 - x);
}

double sorn_throughput_at_q(double x, double q) {
  SORN_ASSERT(q >= 1.0, "oversubscription q must be >= 1");
  const double intra_bound = q / (2.0 * q + 2.0);
  if (x >= 1.0) return intra_bound;
  const double inter_bound = 1.0 / ((1.0 - x) * (q + 1.0));
  return std::min(intra_bound, inter_bound);
}

double sorn_mean_hops(double x) { return 3.0 - x; }

double sorn_delta_m_intra(NodeId n, CliqueId nc, double q) {
  SORN_ASSERT(n % nc == 0, "analysis assumes equal cliques");
  const double clique_size = static_cast<double>(n) / static_cast<double>(nc);
  return std::ceil((q + 1.0) / q * (clique_size - 1.0));
}

double sorn_delta_m_inter_text(NodeId n, CliqueId nc, double q) {
  const double clique_size = static_cast<double>(n) / static_cast<double>(nc);
  return (q + 1.0) * (static_cast<double>(nc) - 1.0) +
         (q + 1.0) / q * (clique_size - 1.0);
}

double sorn_delta_m_inter_table(NodeId n, CliqueId nc, double q) {
  return std::ceil(q * (static_cast<double>(nc) - 1.0)) +
         sorn_delta_m_intra(n, nc, q);
}

double orn1d_delta_m(NodeId n) { return static_cast<double>(n) - 1.0; }

double orn_hd_delta_m(NodeId n, int h) {
  SORN_ASSERT(h >= 1, "dimension must be at least 1");
  const double r = std::pow(static_cast<double>(n), 1.0 / h);
  return 2.0 * h * (r - 1.0);
}

double orn_hd_throughput(int h) { return 1.0 / (2.0 * h); }

double min_latency_us(double delta_m, int uplinks, double slot_ns, int hops,
                      double propagation_ns) {
  SORN_ASSERT(uplinks >= 1, "need at least one uplink");
  return (delta_m / uplinks * slot_ns + hops * propagation_ns) / 1000.0;
}

double hier_throughput(double x1, double x2) {
  SORN_ASSERT(x1 >= 0.0 && x2 >= 0.0 && x1 + x2 <= 1.0 + 1e-12,
              "locality shares must be a sub-distribution");
  const double x3 = std::max(0.0, 1.0 - x1 - x2);
  return 1.0 / (2.0 + x2 + 2.0 * x3);
}

HierSharesApprox hier_optimal_shares(double x1, double x2, int scale) {
  SORN_ASSERT(scale >= 1, "scale must be positive");
  const double x3 = std::max(0.0, 1.0 - x1 - x2);
  const double w_intra = 2.0;
  const double w_inter = x2 + x3;
  const double w_global = x3;
  HierSharesApprox shares;
  shares.intra = std::llround(w_intra * scale);
  shares.inter =
      w_inter > 0.0 ? std::max<std::int64_t>(1, std::llround(w_inter * scale))
                    : 0;
  shares.global =
      w_global > 0.0
          ? std::max<std::int64_t>(1, std::llround(w_global * scale))
          : 0;
  return shares;
}

namespace {

double share_total(const HierSharesApprox& s) {
  return static_cast<double>(s.intra + s.inter + s.global);
}

}  // namespace

double hier_delta_m_pod(NodeId pod_size, const HierSharesApprox& shares) {
  SORN_ASSERT(shares.intra > 0, "pod latency needs intra slots");
  return std::ceil(static_cast<double>(pod_size - 1) * share_total(shares) /
                   static_cast<double>(shares.intra));
}

double hier_delta_m_cluster(NodeId pod_size, CliqueId pods_per_cluster,
                            const HierSharesApprox& shares) {
  SORN_ASSERT(shares.inter > 0, "cluster latency needs inter slots");
  return std::ceil(static_cast<double>(pods_per_cluster - 1) *
                   share_total(shares) /
                   static_cast<double>(shares.inter)) +
         hier_delta_m_pod(pod_size, shares);
}

double hier_delta_m_global(NodeId pod_size, CliqueId pods_per_cluster,
                           CliqueId clusters, const HierSharesApprox& shares) {
  SORN_ASSERT(shares.global > 0, "global latency needs global slots");
  return std::ceil(static_cast<double>(clusters - 1) * share_total(shares) /
                   static_cast<double>(shares.global)) +
         hier_delta_m_cluster(pod_size, pods_per_cluster, shares);
}

double sync_guard_ns(double base_guard_ns, double per_level_guard_ns,
                     NodeId domain_nodes) {
  SORN_ASSERT(domain_nodes >= 1, "domain must contain at least one node");
  SORN_ASSERT(base_guard_ns >= 0.0 && per_level_guard_ns >= 0.0,
              "guard components must be nonnegative");
  return base_guard_ns +
         per_level_guard_ns * std::log2(static_cast<double>(domain_nodes));
}

double slot_efficiency(double slot_ns, double guard_ns) {
  SORN_ASSERT(slot_ns > 0.0, "slot must be positive");
  if (guard_ns >= slot_ns) return 0.0;
  return (slot_ns - guard_ns) / slot_ns;
}

std::vector<SystemPoint> table1(const DeploymentParams& p) {
  std::vector<SystemPoint> rows;

  // Optimal ORN 1D (Sirius): flat round robin, 2-hop VLB.
  {
    SystemPoint row;
    row.system = "Optimal ORN 1D (Sirius)";
    row.max_hops = 2;
    row.delta_m = orn1d_delta_m(p.nodes);
    row.min_latency_us = min_latency_us(row.delta_m, p.uplinks, p.slot_ns,
                                        row.max_hops, p.propagation_ns);
    row.throughput = 0.5;
    row.bw_cost = 1.0 / row.throughput;
    rows.push_back(row);
  }

  // Opera: short flows ride the always-up expander; bulk waits for the
  // direct circuit of the slow rotation (delta_m = N-1 over u uplinks at
  // 90 us per slot). Propagation is negligible against the rotation wait.
  {
    SystemPoint short_row;
    short_row.system = "Opera";
    short_row.traffic_class = "short flows";
    short_row.max_hops = kOperaShortHops;
    short_row.delta_m = 0.0;
    short_row.min_latency_us = min_latency_us(
        0.0, p.uplinks, p.opera_slot_ns, short_row.max_hops, p.propagation_ns);
    short_row.throughput = kOperaThroughput;
    short_row.bw_cost = 1.0 / kOperaThroughput;
    rows.push_back(short_row);

    SystemPoint bulk_row;
    bulk_row.system = "Opera";
    bulk_row.traffic_class = "bulk";
    bulk_row.max_hops = kOperaBulkHops;
    bulk_row.delta_m = orn1d_delta_m(p.nodes);
    bulk_row.min_latency_us =
        bulk_row.delta_m / p.uplinks * p.opera_slot_ns / 1000.0;
    bulk_row.throughput = kOperaThroughput;
    bulk_row.bw_cost = 1.0 / kOperaThroughput;
    rows.push_back(bulk_row);
  }

  // Optimal ORN 2D.
  {
    SystemPoint row;
    row.system = "Optimal ORN 2D";
    row.max_hops = 4;
    row.delta_m = orn_hd_delta_m(p.nodes, 2);
    row.min_latency_us = min_latency_us(row.delta_m, p.uplinks, p.slot_ns,
                                        row.max_hops, p.propagation_ns);
    row.throughput = orn_hd_throughput(2);
    row.bw_cost = 1.0 / row.throughput;
    rows.push_back(row);
  }

  // SORN at Nc = 64 and Nc = 32 with q = q*(x).
  const double q = sorn_optimal_q(p.locality_x);
  const double r = sorn_throughput(p.locality_x);
  for (const CliqueId nc : {CliqueId{64}, CliqueId{32}}) {
    SystemPoint intra;
    intra.system = "SORN Nc=" + std::to_string(nc);
    intra.traffic_class = "intra-clique";
    intra.max_hops = 2;
    intra.delta_m = sorn_delta_m_intra(p.nodes, nc, q);
    intra.min_latency_us = min_latency_us(intra.delta_m, p.uplinks, p.slot_ns,
                                          intra.max_hops, p.propagation_ns);
    intra.throughput = r;
    intra.bw_cost = sorn_mean_hops(p.locality_x);
    rows.push_back(intra);

    SystemPoint inter;
    inter.system = intra.system;
    inter.traffic_class = "inter-clique";
    inter.max_hops = 3;
    inter.delta_m = sorn_delta_m_inter_table(p.nodes, nc, q);
    inter.min_latency_us = min_latency_us(inter.delta_m, p.uplinks, p.slot_ns,
                                          inter.max_hops, p.propagation_ns);
    inter.throughput = r;
    inter.bw_cost = sorn_mean_hops(p.locality_x);
    rows.push_back(inter);
  }

  return rows;
}

}  // namespace analysis
}  // namespace sorn
