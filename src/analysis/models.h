// Closed-form latency/throughput models for every system in Table 1.
//
// Conventions (paper Sec. 4):
//   delta_m      intrinsic latency: the maximum number of circuits a packet
//                may need to cycle through across all its hops.
//   min latency  delta_m / uplinks * slot + hops * propagation: with u
//                phase-shifted uplink lanes a node sweeps circuits u times
//                faster, and each hop adds one propagation delay.
//   throughput   worst-case fraction of total bandwidth delivering traffic
//                on its final hop.
//   BW cost      1 / throughput: the bandwidth overprovisioning factor.
//
// The paper's Table 1 numbers are reproduced exactly, including one place
// where the table is inconsistent with the body text (the inter-clique
// delta_m; see sorn_delta_m_inter_text vs sorn_delta_m_inter_table and
// EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace sorn {
namespace analysis {

// ---- SORN closed forms (Sec. 4) ----

// Optimal oversubscription ratio q* = 2/(1-x); +inf at x == 1 is clamped
// to `q_cap`.
double sorn_optimal_q(double x, double q_cap = 1e9);

// Worst-case throughput with the optimal q: r = 1/(3-x).
double sorn_throughput(double x);

// Worst-case throughput at an arbitrary q >= 1:
// r = min(q/(2q+2), 1/((1-x)(q+1))); the second bound vanishes at x == 1.
double sorn_throughput_at_q(double x, double q);

// Average hops under locality x: 2x + 3(1-x) = 3-x. Equals 1/r at q*.
double sorn_mean_hops(double x);

// Intra-clique intrinsic latency: ceil((q+1)/q * (N/Nc - 1)).
double sorn_delta_m_intra(NodeId n, CliqueId nc, double q);

// Inter-clique intrinsic latency, as defined in the paper's body text:
// (q+1)(Nc-1) + (q+1)/q * (N/Nc - 1).
double sorn_delta_m_inter_text(NodeId n, CliqueId nc, double q);

// Inter-clique intrinsic latency as actually used in Table 1:
// ceil(q(Nc-1)) + ceil((q+1)/q * (N/Nc - 1)). Matches rows 364 (Nc=64)
// and 296 (Nc=32) at N=4096, x=0.56.
double sorn_delta_m_inter_table(NodeId n, CliqueId nc, double q);

// ---- Oblivious baselines ----

// 1D ORN (flat round robin, Sirius/RotorNet/Shoal): delta_m = N-1,
// 2 hops, throughput 1/2.
double orn1d_delta_m(NodeId n);

// h-dimensional optimal ORN: delta_m = 2h(N^{1/h} - 1), 2h hops,
// throughput 1/(2h).
double orn_hd_delta_m(NodeId n, int h);
double orn_hd_throughput(int h);

// Opera, with the paper's Table 1 parameterization (90 us slots, 1/4 of
// uplinks reconfiguring, expander short-flow paths of <= 4 hops):
// short flows see delta_m = 0 (paths always up); bulk waits the rotation,
// delta_m = N-1. Throughput 31.25% as reported by the paper.
constexpr double kOperaThroughput = 0.3125;
constexpr int kOperaShortHops = 4;
constexpr int kOperaBulkHops = 2;

// ---- Latency composition ----

// delta_m / uplinks * slot_ns + hops * propagation_ns, in microseconds.
double min_latency_us(double delta_m, int uplinks, double slot_ns, int hops,
                      double propagation_ns);

// ---- Two-level hierarchical SORN (Sec. 6 extension) ----
//
// With pod-locality x1, cluster-locality x2 (and x3 = 1 - x1 - x2 crossing
// clusters), every path makes 2 intra-pod hops, cluster and global traffic
// make 1 inter-pod hop, and global traffic makes 1 cluster hop. Equating
// link-class utilizations (the same argument as the flat q* derivation)
// gives optimal slot shares intra : inter : global = 2 : (x2 + x3) : x3
// and throughput r = 1 / (2 + x2 + 2*x3). At x3 = 0 this degenerates to
// the paper's flat result r = 1/(3 - x1).

double hier_throughput(double x1, double x2);

// Integer slot shares approximating the optimal ratio (scaled and
// rounded; zero shares stay zero so degenerate levels drop out).
struct HierSharesApprox {
  std::int64_t intra = 0;
  std::int64_t inter = 0;
  std::int64_t global = 0;
};
HierSharesApprox hier_optimal_shares(double x1, double x2, int scale = 12);

// Intrinsic latencies (circuits to cycle through) per traffic class, for
// pods of size s, p pods per cluster, nc clusters, given slot shares.
double hier_delta_m_pod(NodeId pod_size, const HierSharesApprox& shares);
double hier_delta_m_cluster(NodeId pod_size, CliqueId pods_per_cluster,
                            const HierSharesApprox& shares);
double hier_delta_m_global(NodeId pod_size, CliqueId pods_per_cluster,
                           CliqueId clusters, const HierSharesApprox& shares);

// ---- Synchronization overhead (Sec. 6, "Practicality benefits") ----
//
// Slot-synchronous fabrics need a guard interval per slot to absorb clock
// skew; skew grows with the diameter of the synchronization domain.
// "Modularity can also relax time-synchronization requirements ... reducing
// the diameter of an individual synchronization domain."

// Guard time needed for a synchronization domain of `domain_nodes` nodes:
// base skew plus a per-doubling term (tree-distribution model, skew
// accumulates per hop of the clock tree: guard = base + per_level * log2).
double sync_guard_ns(double base_guard_ns, double per_level_guard_ns,
                     NodeId domain_nodes);

// Fraction of each slot carrying payload under a guard interval.
double slot_efficiency(double slot_ns, double guard_ns);

// ---- Table 1 ----

struct DeploymentParams {
  NodeId nodes = 4096;
  int uplinks = 16;
  double slot_ns = 100.0;
  double propagation_ns = 500.0;
  double locality_x = 0.56;       // median locality ratio from [23]
  double short_flow_share = 0.75;  // median short-flow traffic share, [23]
  double opera_slot_ns = 90000.0;  // Opera needs 90 us slots [18]
};

struct SystemPoint {
  std::string system;
  std::string traffic_class;  // empty when a single row describes all traffic
  int max_hops = 0;
  double delta_m = 0.0;
  double min_latency_us = 0.0;
  double throughput = 0.0;  // 0 on rows sharing the system-level figure
  double bw_cost = 0.0;
};

// The rows of Table 1, in the paper's order: Optimal ORN 1D (Sirius),
// Opera short/bulk, Optimal ORN 2D, SORN Nc=64 intra/inter,
// SORN Nc=32 intra/inter.
std::vector<SystemPoint> table1(const DeploymentParams& params);

}  // namespace analysis
}  // namespace sorn
