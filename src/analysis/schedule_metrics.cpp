#include "analysis/schedule_metrics.h"

#include <algorithm>
#include <vector>

#include "util/assert.h"

namespace sorn {
namespace analysis {
namespace {

// Worst wrap-around gap between consecutive hits in a sorted slot list
// within a period.
Slot worst_gap(const std::vector<Slot>& hits, Slot period) {
  if (hits.empty()) return -1;
  Slot worst = hits.front() + period - hits.back();
  for (std::size_t i = 1; i < hits.size(); ++i)
    worst = std::max(worst, hits[i] - hits[i - 1]);
  return worst;
}

}  // namespace

Slot max_circuit_gap(const CircuitSchedule& schedule, NodeId src,
                     NodeId dst) {
  std::vector<Slot> hits;
  for (Slot t = 0; t < schedule.period(); ++t)
    if (schedule.dst_of(src, t) == dst && src != dst) hits.push_back(t);
  return worst_gap(hits, schedule.period());
}

Slot max_clique_gap(const CircuitSchedule& schedule,
                    const CliqueAssignment& cliques, NodeId src,
                    CliqueId dst_clique) {
  SORN_ASSERT(schedule.node_count() == cliques.node_count(),
              "schedule and cliques disagree on node count");
  std::vector<Slot> hits;
  for (Slot t = 0; t < schedule.period(); ++t) {
    const NodeId peer = schedule.dst_of(src, t);
    if (peer != src && cliques.clique_of(peer) == dst_clique)
      hits.push_back(t);
  }
  return worst_gap(hits, schedule.period());
}

GapStats intra_gap_stats(const CircuitSchedule& schedule,
                         const CliqueAssignment& cliques) {
  GapStats stats;
  std::int64_t count = 0;
  double sum = 0.0;
  for (NodeId i = 0; i < schedule.node_count(); ++i) {
    for (NodeId j = 0; j < schedule.node_count(); ++j) {
      if (i == j || !cliques.same_clique(i, j)) continue;
      const Slot gap = max_circuit_gap(schedule, i, j);
      if (gap < 0) continue;
      stats.worst = std::max(stats.worst, gap);
      sum += static_cast<double>(gap);
      ++count;
    }
  }
  stats.mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  return stats;
}

GapStats inter_gap_stats(const CircuitSchedule& schedule,
                         const CliqueAssignment& cliques) {
  GapStats stats;
  std::int64_t count = 0;
  double sum = 0.0;
  for (NodeId i = 0; i < schedule.node_count(); ++i) {
    for (CliqueId c = 0; c < cliques.clique_count(); ++c) {
      if (c == cliques.clique_of(i)) continue;
      const Slot gap = max_clique_gap(schedule, cliques, i, c);
      if (gap < 0) continue;
      stats.worst = std::max(stats.worst, gap);
      sum += static_cast<double>(gap);
      ++count;
    }
  }
  stats.mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  return stats;
}

double measured_delta_m_intra(const CircuitSchedule& schedule,
                              const CliqueAssignment& cliques) {
  return static_cast<double>(intra_gap_stats(schedule, cliques).worst);
}

double measured_delta_m_inter(const CircuitSchedule& schedule,
                              const CliqueAssignment& cliques) {
  const GapStats inter = inter_gap_stats(schedule, cliques);
  const GapStats intra = intra_gap_stats(schedule, cliques);
  return static_cast<double>(inter.worst + intra.worst);
}

}  // namespace analysis
}  // namespace sorn
