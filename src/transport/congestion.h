// DCTCP-style per-flow congestion control (Alizadeh et al., SIGCOMM'10),
// adapted to the slotted cell fabric.
//
// The window is counted in cells. Each delivered first copy is an ack;
// acks carrying the cell's ECN mark (set at enqueue when a VOQ crossed
// NetworkConfig::ecn_threshold_cells) feed the marked fraction. Once a
// window's worth of acks has accumulated, the smoothed mark fraction
// alpha is updated and the window reacts:
//
//   alpha <- (1 - g) * alpha + g * F        (F = marked / acked)
//   marked round:   cwnd <- cwnd * (1 - alpha / 2)
//   clean round:    cwnd <- cwnd + additive_increase
//
// All arithmetic is plain double on the coordinating thread — no RNG, no
// wall clock — so a run's windows are byte-identical at any thread count.
#pragma once

#include <cstdint>

namespace sorn {

struct CongestionConfig {
  std::uint64_t init_cwnd_cells = 8;
  std::uint64_t min_cwnd_cells = 1;
  std::uint64_t max_cwnd_cells = 256;
  // DCTCP's alpha EWMA gain g.
  double gain = 0.0625;
  // Cells added per clean (unmarked) round.
  double additive_increase = 1.0;
};

class CongestionControl {
 public:
  explicit CongestionControl(const CongestionConfig& config);

  // One first-copy delivery; ecn_marked echoes the cell's mark.
  void on_ack(bool ecn_marked);

  // The integer window the sender may keep in flight right now.
  std::uint64_t window_cells() const;
  double cwnd() const { return cwnd_; }
  double alpha() const { return alpha_; }
  // Completed congestion rounds (window updates so far).
  std::uint64_t rounds() const { return rounds_; }

 private:
  CongestionConfig config_;
  double cwnd_;
  double alpha_ = 0.0;
  std::uint64_t acked_in_round_ = 0;
  std::uint64_t marked_in_round_ = 0;
  // Acks that close the current round; latched from window_cells() at the
  // round start so a mid-round window change keeps the round length fixed.
  std::uint64_t round_acks_;
  std::uint64_t rounds_ = 0;
};

}  // namespace sorn
