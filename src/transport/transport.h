// The closed-loop end-host transport layer.
//
// DctcpTransport holds one CongestionControl per open flow and releases
// cells into the network in window-sized segments: pump() — called by the
// WorkloadDriver once per slot, between slots on the coordinating thread
// — injects each flow's available window via
// SlottedNetwork::inject_flow_segment, and the network echoes every
// first-copy delivery back through on_ack() (sim/transport_hook.h), which
// advances the window. Everything runs on the coordinating thread over a
// flow map iterated in ascending id order, so runs stay byte-identical at
// any thread count.
//
// Losses are recovered by the network-level stall-timeout retransmission
// (SlottedNetwork::retransmit_stalled), which re-admits only cells the
// transport already released (FlowRecord::cells_sent); the retransmitted
// copies are acked on first delivery like the originals, so the window's
// in-flight accounting stays exact under loss.
#pragma once

#include <cstdint>
#include <map>

#include "sim/network.h"
#include "sim/transport_hook.h"
#include "transport/congestion.h"

namespace sorn {

class DctcpTransport : public Transport {
 public:
  struct Options {
    CongestionConfig congestion;
  };

  explicit DctcpTransport(Options options = {});

  // Transport interface (sim/transport_hook.h). open_flow ignores
  // duplicate ids (callers hand out unique ids); bulk_router == nullptr
  // routes via the network's primary router, resolved at each pump.
  void open_flow(SlottedNetwork& network, const Router* bulk_router,
                 FlowId flow, NodeId src, NodeId dst, std::uint64_t bytes,
                 int flow_class) override;
  std::uint64_t pump(SlottedNetwork& network) override;
  void on_ack(const Cell& cell, Slot now) override;
  bool has_backlog() const override { return !flows_.empty(); }

  std::uint64_t open_flow_count() const { return flows_.size(); }
  TransportStats stats() const;
  // Per-flow window/ack state, for the profiler's memory gauge.
  std::uint64_t memory_bytes() const;

 private:
  struct FlowState {
    const Router* bulk_router = nullptr;  // nullptr = primary path class
    NodeId src = 0;
    NodeId dst = 0;
    std::uint64_t bytes = 0;
    std::uint64_t total_cells = 0;
    std::uint64_t sent_cells = 0;
    std::uint64_t acked_cells = 0;
    int flow_class = 0;
    CongestionControl congestion;
  };

  Options options_;
  // Ordered map: pump() must release windows in ascending flow id so the
  // injection (and its RNG draws) replays identically across runs.
  std::map<FlowId, FlowState> flows_;
  TransportStats stats_;
};

}  // namespace sorn
