#include "transport/congestion.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

CongestionControl::CongestionControl(const CongestionConfig& config)
    : config_(config), cwnd_(static_cast<double>(config.init_cwnd_cells)) {
  SORN_ASSERT(config_.min_cwnd_cells >= 1, "window floor must be >= 1 cell");
  SORN_ASSERT(config_.min_cwnd_cells <= config_.init_cwnd_cells &&
                  config_.init_cwnd_cells <= config_.max_cwnd_cells,
              "need min <= init <= max congestion window");
  SORN_ASSERT(config_.gain > 0.0 && config_.gain <= 1.0,
              "DCTCP gain must be in (0, 1]");
  SORN_ASSERT(config_.additive_increase >= 0.0,
              "additive increase must be nonnegative");
  round_acks_ = window_cells();
}

std::uint64_t CongestionControl::window_cells() const {
  const auto w = static_cast<std::uint64_t>(cwnd_);
  return std::max(config_.min_cwnd_cells, std::min(config_.max_cwnd_cells, w));
}

void CongestionControl::on_ack(bool ecn_marked) {
  ++acked_in_round_;
  if (ecn_marked) ++marked_in_round_;
  if (acked_in_round_ < round_acks_) return;
  const double fraction = static_cast<double>(marked_in_round_) /
                          static_cast<double>(acked_in_round_);
  alpha_ = (1.0 - config_.gain) * alpha_ + config_.gain * fraction;
  if (marked_in_round_ > 0) {
    cwnd_ *= 1.0 - alpha_ / 2.0;
  } else {
    cwnd_ += config_.additive_increase;
  }
  cwnd_ = std::max(static_cast<double>(config_.min_cwnd_cells),
                   std::min(static_cast<double>(config_.max_cwnd_cells),
                            cwnd_));
  acked_in_round_ = 0;
  marked_in_round_ = 0;
  round_acks_ = window_cells();
  ++rounds_;
}

}  // namespace sorn
