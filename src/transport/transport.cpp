#include "transport/transport.h"

#include <algorithm>

#include "util/assert.h"

namespace sorn {

DctcpTransport::DctcpTransport(Options options) : options_(options) {}

void DctcpTransport::open_flow(SlottedNetwork& network,
                               const Router* bulk_router, FlowId flow,
                               NodeId src, NodeId dst, std::uint64_t bytes,
                               int flow_class) {
  SORN_ASSERT(src != dst, "flow endpoints must differ");
  SORN_ASSERT(flow != kNoFlow, "transport flows need a real id");
  const std::uint64_t cell_bytes = network.config().cell_bytes;
  auto [it, inserted] = flows_.try_emplace(
      flow, FlowState{bulk_router, src, dst, bytes,
                      (bytes + cell_bytes - 1) / cell_bytes, 0, 0, flow_class,
                      CongestionControl(options_.congestion)});
  if (!inserted) return;
  ++stats_.flows_opened;
}

std::uint64_t DctcpTransport::pump(SlottedNetwork& network) {
  std::uint64_t injected = 0;
  for (auto& [flow, st] : flows_) {
    const std::uint64_t inflight = st.sent_cells - st.acked_cells;
    const std::uint64_t window = st.congestion.window_cells();
    if (window <= inflight || st.sent_cells >= st.total_cells) continue;
    const std::uint64_t count =
        std::min(window - inflight, st.total_cells - st.sent_cells);
    const Router& router =
        st.bulk_router != nullptr ? *st.bulk_router : *network.router();
    network.inject_flow_segment(router, flow, st.src, st.dst, st.bytes,
                                st.sent_cells, count, st.flow_class);
    st.sent_cells += count;
    injected += count;
  }
  stats_.cells_sent += injected;
  return injected;
}

void DctcpTransport::on_ack(const Cell& cell, Slot now) {
  (void)now;
  const auto it = flows_.find(cell.flow);
  if (it == flows_.end()) return;
  FlowState& st = it->second;
  ++st.acked_cells;
  ++stats_.acked_cells;
  if (cell.ecn) ++stats_.ecn_acked_cells;
  // Sample the window once per congestion round, right after it updates —
  // a per-ack sample would just repeat the same value window-many times.
  const std::uint64_t rounds_before = st.congestion.rounds();
  st.congestion.on_ack(cell.ecn);
  if (st.congestion.rounds() != rounds_before)
    stats_.cwnd_cells.add(st.congestion.cwnd());
  if (st.acked_cells == st.total_cells) {
    ++stats_.flows_completed;
    flows_.erase(it);
  }
}

TransportStats DctcpTransport::stats() const { return stats_; }

std::uint64_t DctcpTransport::memory_bytes() const {
  // Red-black tree node: key + state + parent/left/right pointers + color
  // word (libstdc++ layout approximation).
  return flows_.size() *
         (sizeof(FlowId) + sizeof(FlowState) + 4 * sizeof(void*));
}

}  // namespace sorn
