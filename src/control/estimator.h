// Macro-pattern estimation (paper Sec. 3 and 5).
//
// The control plane never tries to predict per-pair demand; it maintains an
// exponentially weighted average of observed traffic matrices and exposes
// only macro statistics: the smoothed matrix (for clustering), the locality
// ratio under a candidate grouping, and a stability signal comparing
// consecutive clique-level aggregates — the quantity the paper claims is
// predictable over hours.
//
// Storage is sparse-delta: the smoothed and latest estimates live in
// SparseDemand (CSR over the union of observed supports) instead of two
// dense N^2 matrices. The EWMA update merges the sorted supports and
// evaluates keep * s + add * o per union entry — bit-identical to the
// dense per-cell loop because absent entries contribute an exact 0.0.
#pragma once

#include <memory>
#include <optional>

#include "topo/clique.h"
#include "traffic/sparse_demand.h"

namespace sorn {

class TrafficEstimator {
 public:
  // alpha in (0, 1]: weight of the newest observation.
  explicit TrafficEstimator(NodeId nodes, double alpha = 0.3);

  // Feed one measurement epoch's observed demand (any backend).
  void observe(const DemandModel& epoch);

  bool has_estimate() const { return observations_ > 0; }
  std::uint64_t observations() const { return observations_; }

  // The smoothed demand estimate (normalized to unit peak node load).
  // All-zero until the first observation.
  const DemandModel& estimate() const { return *smoothed_; }

  // The most recent (normalized) observation, un-smoothed.
  const DemandModel& latest() const { return *latest_; }

  // Discard the smoothed history and restart from the latest observation.
  // Called after change-point detection: once the macro pattern has
  // shifted, the stale EWMA would otherwise bias the next plan toward the
  // dead pattern for several epochs.
  void reset_to_latest();

  // Locality ratio of the estimate under the given grouping.
  double locality(const CliqueAssignment& cliques) const;

  // Relative L1 change of the clique-level aggregate between the previous
  // and the latest observation: || agg_t - agg_{t-1} ||_1 / || agg_t ||_1.
  // Values near zero mean the macro pattern is stable. nullopt until two
  // observations have been made with set_reference_grouping() in effect.
  std::optional<double> macro_change() const { return macro_change_; }

  // The grouping against which macro_change() aggregates are computed.
  void set_reference_grouping(const CliqueAssignment& cliques);

  // Heap bytes held by the smoothed/latest estimates (profiler gauge).
  std::size_t memory_bytes() const {
    return smoothed_->memory_bytes() + latest_->memory_bytes();
  }

 private:
  NodeId nodes_;
  double alpha_;
  std::unique_ptr<SparseDemand> smoothed_;
  std::unique_ptr<SparseDemand> latest_;
  std::uint64_t observations_ = 0;
  std::optional<CliqueAssignment> reference_;
  std::vector<double> last_aggregate_;
  std::optional<double> macro_change_;
};

}  // namespace sorn
