#include "control/control_faults.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace sorn {

ControlFaultModel::ControlFaultModel(ControlFaultOptions options)
    : options_(std::move(options)),
      outage_rng_(options_.seed ^ 0x6374726c4f757467ULL),
      noise_rng_(options_.seed ^ 0x6374726c4e6f6973ULL) {
  SORN_ASSERT(options_.mtbf_slots >= 0.0, "controller MTBF must be >= 0");
  SORN_ASSERT(options_.mtbf_slots <= 0.0 || options_.mttr_slots > 0.0,
              "controller MTBF without MTTR: nothing would ever recover");
  SORN_ASSERT(options_.estimate_noise >= 0.0 && options_.estimate_noise <= 1.0,
              "estimate_noise must be in [0, 1]");
  SORN_ASSERT(options_.replan_apply_delay >= 0,
              "replan_apply_delay must be >= 0");
  for (const auto& window : options_.outages) {
    SORN_ASSERT(window.first >= 0 && window.second > window.first,
                "outage windows must be non-empty [start, end) slot ranges");
  }
}

bool ControlFaultModel::scripted_down(Slot now) const {
  for (const auto& window : options_.outages) {
    if (now >= window.first && now < window.second) return true;
  }
  return false;
}

bool ControlFaultModel::tick(Slot now) {
  // Stochastic state machine: exponential holding times in each state,
  // drawn when the state is entered (memoryless, so drawing lazily on the
  // first tick is equivalent).
  if (options_.mtbf_slots > 0.0) {
    if (next_transition_ == kNone) {
      next_transition_ =
          now + std::max<Slot>(1, static_cast<Slot>(std::ceil(
                                      outage_rng_.next_exponential(
                                          options_.mtbf_slots))));
    }
    while (next_transition_ != kNone && now >= next_transition_) {
      stochastic_up_ = !stochastic_up_;
      const double mean =
          stochastic_up_ ? options_.mtbf_slots : options_.mttr_slots;
      next_transition_ +=
          std::max<Slot>(1, static_cast<Slot>(
                                std::ceil(outage_rng_.next_exponential(mean))));
    }
  }

  const bool was_up = up_;
  up_ = stochastic_up_ && !scripted_down(now);
  if (!up_) ++outage_slots_;
  if (up_ == was_up) return false;
  if (!up_) {
    ++outages_started_;
    if (tracer_ != nullptr) tracer_->controller_down(now);
  } else {
    if (tracer_ != nullptr) tracer_->controller_up(now);
  }
  return true;
}

const DemandModel& ControlFaultModel::filter(const DemandModel& observed) {
  const bool stale = options_.estimate_stale_epochs > 0;
  const bool noisy = options_.estimate_noise > 0.0;
  if (!stale && !noisy) return observed;

  const DemandModel* source = &observed;
  if (stale) {
    history_.push_back(observed.clone());
    while (history_.size() >
           static_cast<std::size_t>(options_.estimate_stale_epochs) + 1) {
      history_.pop_front();
    }
    source = history_.front().get();
  }
  if (!noisy) return *source;

  // Seeded multiplicative noise as a sparse overlay of the source. The
  // historical dense loop skipped rate <= 0 cells without drawing, so
  // visiting only the nonzeros in row-major order consumes the noise RNG
  // identically on every backend.
  SparseDemand::Builder builder(source->node_count());
  source->for_each_nonzero([this, &builder](NodeId i, NodeId j, double rate) {
    const double factor =
        1.0 + options_.estimate_noise * (2.0 * noise_rng_.next_double() - 1.0);
    builder.set(i, j, rate * factor);
  });
  degraded_ = builder.build(false);
  return *degraded_;
}

std::size_t ControlFaultModel::history_bytes() const {
  std::size_t bytes = 0;
  for (const auto& entry : history_) bytes += entry->memory_bytes();
  return bytes;
}

}  // namespace sorn
