// Balanced clique clustering from a measured traffic matrix.
//
// Finds an assignment of N nodes into Nc equal cliques that maximizes the
// intra-clique share of demand (the locality ratio x), which directly
// maximizes SORN's achievable throughput r = 1/(3-x). Greedy seeded growth
// followed by pairwise swap refinement; exact balance is required because
// the inter-clique matchings need equal-sized cliques.
#pragma once

#include "topo/clique.h"
#include "traffic/demand_model.h"

namespace sorn {

class CliqueClusterer {
 public:
  struct Options {
    // Passes of pairwise swap refinement after greedy growth.
    int refine_passes = 3;
  };

  CliqueClusterer() : CliqueClusterer(Options()) {}
  explicit CliqueClusterer(Options options);

  // tm.node_count() must be divisible by nc.
  CliqueAssignment cluster(const DemandModel& tm, CliqueId nc) const;

  // Intra-clique demand share of an assignment (the objective).
  static double objective(const DemandModel& tm,
                          const CliqueAssignment& cliques);

 private:
  Options options_;
};

}  // namespace sorn
