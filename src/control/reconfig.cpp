#include "control/reconfig.h"

#include "util/assert.h"

namespace sorn {

ReconfigManager::ReconfigManager(Options options) : options_(options) {}

void ReconfigManager::set_failure_view(const FailureView* view) {
  failures_ = view;
  if (current_.router != nullptr) current_.router->set_failure_view(view);
  if (previous_.router != nullptr) previous_.router->set_failure_view(view);
  if (pending_ != nullptr && pending_->router != nullptr)
    pending_->router->set_failure_view(view);
}

void ReconfigManager::request_swap(SornPlan plan, Slot now) {
  auto gen = std::make_unique<Generation>();
  gen->cliques = std::make_unique<CliqueAssignment>(std::move(plan.cliques));
  gen->schedule = std::make_unique<CircuitSchedule>(
      plan.inter_weights.empty()
          ? ScheduleBuilder::sorn(*gen->cliques, plan.q, options_.max_period)
          : ScheduleBuilder::sorn_weighted(*gen->cliques, plan.q,
                                           plan.inter_weights,
                                           options_.weighted,
                                           options_.max_period));
  gen->router = std::make_unique<SornRouter>(gen->schedule.get(),
                                             gen->cliques.get(),
                                             options_.lb_mode);
  gen->router->set_failure_view(failures_);
  pending_ = std::move(gen);
  swap_due_ = now + options_.update_delay_slots + extra_delay_;
  if (tracer_ != nullptr) {
    tracer_->reconfig_staged(now, swap_due_,
                             pending_->cliques->clique_count(),
                             plan.q.value(), !plan.inter_weights.empty());
  }
}

bool ReconfigManager::tick(SlottedNetwork& network, Slot now) {
  if (pending_ == nullptr || now < swap_due_) return false;
  previous_ = std::move(current_);
  current_ = std::move(*pending_);
  pending_.reset();
  if (options_.track_nic_rollout) {
    const UpdateCoordinator coordinator(options_.nic);
    if (nics_.empty()) {
      nics_ = coordinator.bootstrap(*current_.schedule);
      last_rollout_ = UpdateCoordinator::Report{};
      last_rollout_->nodes = nics_.size();
    } else {
      last_rollout_ = coordinator.roll_out(nics_, *current_.schedule);
    }
  }
  network.reconfigure(current_.schedule.get(), current_.router.get());
  ++swaps_applied_;
  if (tracer_ != nullptr) tracer_->reconfig_applied(now, swaps_applied_);
  return true;
}

}  // namespace sorn
