#include "control/control_plane.h"

namespace sorn {

ControlPlane::ControlPlane(NodeId nodes, Options options)
    : options_(options),
      estimator_(nodes, options.estimator_alpha),
      optimizer_(options.optimizer),
      reconfig_(options.reconfig) {}

bool ControlPlane::on_epoch(const TrafficMatrix& observed, Slot now) {
  estimator_.observe(observed);
  const bool first = !has_plan_;
  const double macro_change = estimator_.macro_change().value_or(0.0);
  const bool drifted = macro_change > options_.replan_threshold;
  const double locality_estimate =
      has_plan_ ? estimator_.locality(last_plan_.cliques) : 0.0;
  const bool degraded =
      has_plan_ && locality_estimate <
                       last_plan_.locality_x - options_.locality_degradation;
  if (!first && !drifted && !degraded) return false;

  // After a detected shift the smoothed history describes a dead pattern;
  // restart the estimate from the freshest observation.
  if (drifted || degraded) estimator_.reset_to_latest();

  SornPlan plan = optimizer_.plan(estimator_.estimate());
  estimator_.set_reference_grouping(plan.cliques);
  last_plan_ = plan;
  has_plan_ = true;
  ++replans_;
  if (tracer_ != nullptr) {
    tracer_->replan(now,
                    drifted ? "threshold"
                    : degraded ? "locality_degradation"
                               : "first_observation",
                    macro_change, locality_estimate, plan.locality_x,
                    plan.cliques.clique_count(), plan.q.value(), replans_);
  }
  reconfig_.request_swap(std::move(plan), now);
  return true;
}

}  // namespace sorn
