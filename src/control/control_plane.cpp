#include "control/control_plane.h"

#include <memory>

namespace sorn {

ControlPlane::ControlPlane(NodeId nodes, Options options)
    : options_(options),
      estimator_(nodes, options.estimator_alpha),
      optimizer_(options.optimizer),
      reconfig_(options.reconfig) {}

bool ControlPlane::on_epoch(const DemandModel& observed, Slot now) {
  ScopedPhase scope(profiler_ != nullptr ? &profiler_->phases() : nullptr,
                    ProfPhase::kControlTick);
  // A down controller loses the epoch's measurement entirely — it is not
  // queued for later. When up, the observation passes through the fault
  // model's staleness/noise filter first.
  if (faults_ != nullptr) {
    if (!faults_->controller_up()) {
      faults_->note_suppressed_epoch();
      return false;
    }
    estimator_.observe(faults_->filter(observed));
  } else {
    estimator_.observe(observed);
  }
  const bool first = !has_plan_;
  const double macro_change = estimator_.macro_change().value_or(0.0);
  const bool drifted = macro_change > options_.replan_threshold;
  const double locality_estimate =
      has_plan_ ? estimator_.locality(last_plan_.cliques) : 0.0;
  const bool degraded =
      has_plan_ && locality_estimate <
                       last_plan_.locality_x - options_.locality_degradation;
  // The failure set changed since the plan was made (nodes/circuits failed
  // or healed): the current clique structure routes around it suboptimally
  // — or wastes slots on a dead node — so re-plan even if traffic is
  // steady.
  const bool failure_changed =
      failures_ != nullptr && failures_->version() != planned_failure_version_;
  if (!first && !drifted && !degraded && !failure_changed) return false;

  // After a detected shift the smoothed history describes a dead pattern;
  // restart the estimate from the freshest observation.
  if (drifted || degraded) estimator_.reset_to_latest();

  // Mask failed nodes out of the demand before clustering: a dead node
  // carries no traffic, so letting its stale rows/columns steer the
  // clusterer would keep granting it clique slots.
  const DemandModel* demand = &estimator_.estimate();
  std::unique_ptr<SparseDemand> masked;
  if (failures_ != nullptr && failures_->failed_node_count() > 0) {
    // Rebuild the estimate without the failed nodes' rows/columns. The
    // dense predecessor zeroed them in a full copy; dropping the entries
    // is the same thing (exact zeros are no-ops in every optimizer fold).
    SparseDemand::Builder builder(demand->node_count());
    demand->for_each_nonzero([&](NodeId i, NodeId j, double d) {
      if (!failures_->is_node_failed(i) && !failures_->is_node_failed(j))
        builder.set(i, j, d);
    });
    masked = builder.build(false);
    demand = masked.get();
  }

  SornPlan plan = optimizer_.plan(*demand);
  estimator_.set_reference_grouping(plan.cliques);
  last_plan_ = plan;
  has_plan_ = true;
  if (failures_ != nullptr) planned_failure_version_ = failures_->version();
  ++replans_;
  if (tracer_ != nullptr) {
    tracer_->replan(now,
                    drifted      ? "threshold"
                    : degraded   ? "locality_degradation"
                    : first      ? "first_observation"
                                 : "failure",
                    macro_change, locality_estimate, plan.locality_x,
                    plan.cliques.clique_count(), plan.q.value(), replans_);
  }
  reconfig_.request_swap(std::move(plan), now);
  return true;
}

}  // namespace sorn
